package repro_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro"
)

func TestFacadeLists(t *testing.T) {
	if got := repro.Models(); len(got) != 5 || got[0] != "GPT4" {
		t.Errorf("Models = %v", got)
	}
	if got := repro.Datasets(); len(got) != 3 {
		t.Errorf("Datasets = %v", got)
	}
	exps := repro.Experiments()
	if len(exps) < 20 {
		t.Errorf("Experiments = %d, want >= 20", len(exps))
	}
	title, ok := repro.ExperimentTitle("table3")
	if !ok || !strings.Contains(title, "syntax_error") {
		t.Errorf("ExperimentTitle(table3) = %q, %v", title, ok)
	}
	if _, ok := repro.ExperimentTitle("nosuch"); ok {
		t.Error("ExperimentTitle(nosuch) should fail")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	bench, err := repro.BuildBenchmark(1, false)
	if err != nil {
		t.Fatal(err)
	}
	reg := repro.NewSimRegistry(bench)
	client, err := reg.Get("MistralAI")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	syn, err := repro.RunSyntaxTask(ctx, client, bench, "SQLShare")
	if err != nil {
		t.Fatal(err)
	}
	if len(syn) != len(bench.Syntax["SQLShare"]) {
		t.Errorf("syntax results = %d", len(syn))
	}
	if _, err := repro.RunSyntaxTask(ctx, client, bench, "NoSuch"); err == nil {
		t.Error("unknown dataset should fail")
	}
	tok, err := repro.RunTokenTask(ctx, client, bench, "SDSS")
	if err != nil || len(tok) == 0 {
		t.Fatalf("token task: %v", err)
	}
	eq, err := repro.RunEquivTask(ctx, client, bench, "Join-Order")
	if err != nil || len(eq) == 0 {
		t.Fatalf("equiv task: %v", err)
	}
	pf, err := repro.RunPerfTask(ctx, client, bench)
	if err != nil || len(pf) != 285 {
		t.Fatalf("perf task: %v (%d)", err, len(pf))
	}
	ex, err := repro.RunExplainTask(ctx, client, bench)
	if err != nil || len(ex) != 200 {
		t.Fatalf("explain task: %v (%d)", err, len(ex))
	}
}

func TestFacadeRunExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := repro.RunExperiment("table1", &buf, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Recognition") {
		t.Errorf("table1 output = %q", buf.String())
	}
	if err := repro.RunExperiment("nosuch", &buf, 1); err == nil {
		t.Error("unknown experiment should fail")
	}
}
