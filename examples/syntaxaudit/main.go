// Syntaxaudit: use the benchmark's semantic oracle as a standalone SQL
// linter — the query-recommendation/auditing scenario from the paper's
// introduction. It audits a mixed batch of astronomer queries and reports
// each problem with its error class.
package main

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/semcheck"
)

func main() {
	schema := catalog.SDSS()
	checker := semcheck.New(schema)

	batch := []string{
		// Legitimate queries.
		"SELECT plate , mjd FROM SpecObj WHERE z > 0.5",
		"SELECT class , COUNT(*) FROM SpecObj GROUP BY class",
		// The paper's Listing 1 error gallery.
		"SELECT plate , mjd , COUNT(*) , AVG( z ) FROM SpecObj WHERE z > 0.5",
		"SELECT plate , COUNT(*) AS NumSpectra FROM SpecObj GROUP BY plate HAVING z > 0.5",
		"SELECT p.ra , p.dec , s.z FROM PhotoObj AS p JOIN SpecObj AS s ON s.bestobjid = ( SELECT bestobjid FROM SpecObj )",
		"SELECT plate , mjd , fiberid FROM SpecObj WHERE z = 'high'",
		"SELECT s.plate , s.mjd , z FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = photoobj.bestobjid",
		"SELECT s.plate FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid WHERE ra > 180",
		// Typos an auditing tool should flag too.
		"SELECT plate FROM SpecObjx",
		"SELECT platez FROM SpecObj",
	}

	clean, flagged := 0, 0
	for i, sql := range batch {
		diags := checker.CheckSQL(sql)
		fmt.Printf("[%02d] %s\n", i+1, sql)
		if len(diags) == 0 {
			fmt.Println("     OK")
			clean++
			continue
		}
		flagged++
		fmt.Printf("     PRIMARY: %s\n", semcheck.Primary(diags))
		for _, d := range diags {
			fmt.Printf("     - %s\n", d)
		}
	}
	fmt.Printf("\naudited %d queries: %d clean, %d flagged\n", len(batch), clean, flagged)
}
