// Quickstart: build the benchmark, run one task for one model, and print the
// resulting metrics — the minimal end-to-end use of the public API.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
)

func main() {
	// Assemble the benchmark (seeded, deterministic). Equivalence pairs are
	// engine-verified, which is the slow part; quickstart skips it.
	bench, err := repro.BuildBenchmark(1, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark: %d SDSS syntax examples, %d token examples, %d equivalence pairs\n",
		len(bench.Syntax["SDSS"]), len(bench.Tokens["SDSS"]), len(bench.Equiv["SDSS"]))

	// The simulated models implement the same Client interface a real API
	// wrapper would.
	registry := repro.NewSimRegistry(bench)
	client, err := registry.Get("GPT4")
	if err != nil {
		log.Fatal(err)
	}

	// Run syntax_error on SDSS and score it.
	results, err := repro.RunSyntaxTask(context.Background(), client, bench, "SDSS")
	if err != nil {
		log.Fatal(err)
	}
	conf := core.EvalSyntaxBinary(results)
	fmt.Printf("GPT4 on SDSS syntax_error: precision %.2f, recall %.2f, F1 %.2f over %d queries\n",
		conf.Precision(), conf.Recall(), conf.F1(), conf.Total())

	// Peek at one verbose model response and its parsed label.
	for _, r := range results[:3] {
		fmt.Printf("\n%s\n  truth: hasError=%v type=%s\n  model: %q\n",
			r.Example.SQL, r.Example.HasError, r.Example.Type, r.Response)
	}

	// Every task — the paper's five plus registered extensions — is a
	// registry entry; the type-erased driver runs any of them by id.
	fmt.Printf("\nregistered tasks: %v\n", repro.TaskIDs())
	views, err := repro.RunTask(context.Background(), client, bench, "fill", "SDSS")
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for _, v := range views {
		if v.Correct != nil && *v.Correct {
			correct++
		}
	}
	fmt.Printf("GPT4 on SDSS fill_token: %d/%d exact token recoveries\n", correct, len(views))
}
