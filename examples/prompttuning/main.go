// Prompttuning: the paper's Section 3.4 mock experiments — try each prompt
// variant on a small trial subset, measure accuracy, and pick the best
// formulation for the full run.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
)

func main() {
	bench, err := repro.BuildBenchmark(1, false)
	if err != nil {
		log.Fatal(err)
	}
	registry := repro.NewSimRegistry(bench)
	client, err := registry.Get("GPT3.5")
	if err != nil {
		log.Fatal(err)
	}

	// A small trial subset, as in the paper's mock experiments.
	trial := bench.Syntax["SDSS"]
	if len(trial) > 40 {
		trial = trial[:40]
	}
	results, best, err := core.TunePrompt(context.Background(), client, trial)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prompt tuning on %d trial queries with %s:\n\n", len(trial), client.Name())
	for _, r := range results {
		marker := " "
		if r.Template.ID == best.ID {
			marker = "*"
		}
		fmt.Printf(" %s %-18s accuracy %.2f\n   %q\n\n", marker, r.Template.ID, r.Accuracy, r.Template.Text)
	}
	fmt.Printf("selected: %s\n", best.ID)
}
