// Perfpredict: the workload-management scenario — compare the cost-model
// oracle's runtime labels with each model's text-only predictions on the
// SDSS workload, and show where language models overestimate (the paper's
// positive-bias finding).
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
)

func main() {
	bench, err := repro.BuildBenchmark(1, false)
	if err != nil {
		log.Fatal(err)
	}
	registry := repro.NewSimRegistry(bench)

	fmt.Printf("%-12s %6s %6s %6s   %s\n", "Model", "Prec", "Rec", "F1", "bias")
	for _, name := range repro.Models() {
		client, err := registry.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		results, err := repro.RunPerfTask(context.Background(), client, bench)
		if err != nil {
			log.Fatal(err)
		}
		conf := core.EvalPerf(results)
		bias := "balanced"
		if conf.Recall() > conf.Precision()+0.05 {
			bias = "positive (overestimates runtimes)"
		} else if conf.Precision() > conf.Recall()+0.05 {
			bias = "conservative"
		}
		fmt.Printf("%-12s %6.2f %6.2f %6.2f   %s\n",
			name, conf.Precision(), conf.Recall(), conf.F1(), bias)
	}

	// Show a few false positives of the weakest-precision model: long cheap
	// queries mistaken for costly ones.
	client, _ := registry.Get("MistralAI")
	results, err := repro.RunPerfTask(context.Background(), client, bench)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMistralAI false positives (long but cheap queries):")
	shown := 0
	for _, r := range results {
		if shown >= 3 {
			break
		}
		if !r.Example.Costly && r.PredCostly {
			fmt.Printf("  [%.0f ms, %d words] %.100s...\n",
				r.Example.ElapsedMS, r.Example.Props.WordCount, r.Example.SQL)
			shown++
		}
	}
}
