// Equivalence: the query-optimization scenario — generate rewrites of a
// query, check them with the rule-based normalizer, and confirm empirically
// by executing both forms on synthetic instances with the built-in engine.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/equiv"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

func main() {
	schema := catalog.SDSS()
	checker := equiv.NewChecker(schema)
	r := rand.New(rand.NewSource(7))

	base := "SELECT s.plate , s.mjd FROM SpecObj AS s WHERE s.z BETWEEN 0.5 AND 1.5 AND s.plate IN ( SELECT plate FROM PlateX WHERE mjd > 51000 )"
	sel, err := sqlparse.ParseSelect(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("base query:")
	fmt.Println(" ", base)
	fmt.Println()

	fmt.Println("equivalence-preserving rewrites:")
	for _, typ := range equiv.EquivTypes() {
		out, ok := equiv.Transform(sel, typ, r)
		if !ok {
			continue
		}
		rewritten := sqlast.Print(out)
		provable := equiv.RuleEquivalent(sel, out)
		empirical, err := checker.Equivalent(sel, out)
		status := "EMPIRICALLY EQUAL"
		if err != nil {
			status = "EXEC ERROR: " + err.Error()
		} else if !empirical {
			status = "RESULTS DIFFER"
		}
		fmt.Printf("  [%-18s] rule-provable=%-5v %s\n    %s\n", typ, provable, status, rewritten)
	}

	fmt.Println("\nnon-equivalent mutations (each must change results on some instance):")
	for _, typ := range equiv.NonEquivTypes() {
		out, ok := equiv.Transform(sel, typ, r)
		if !ok {
			continue
		}
		empirical, err := checker.Equivalent(sel, out)
		verdict := "results differ (as labeled)"
		if err != nil {
			verdict = "exec error: " + err.Error()
		} else if empirical {
			verdict = "indistinguishable on test instances (subtle!)"
		}
		fmt.Printf("  [%-20s] %s\n    %s\n", typ, verdict, sqlast.Print(out))
	}
}
