package core_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/core/tasktest"
	"repro/internal/llm/sim"
	"repro/internal/nlgen"
)

// One benchmark + knowledge context for the whole contract-suite file.
var (
	suiteOnce  sync.Once
	suiteBench *core.Benchmark
	suiteKnow  *sim.Knowledge
	suiteErr   error
)

func suiteEnv(t *testing.T) (*core.Benchmark, *sim.Knowledge) {
	t.Helper()
	suiteOnce.Do(func() {
		suiteBench, suiteErr = core.Build(core.BuildConfig{Seed: 1})
		if suiteErr == nil {
			suiteKnow = sim.NewKnowledge(suiteBench.SchemasByDataset())
		}
	})
	if suiteErr != nil {
		t.Fatalf("Build: %v", suiteErr)
	}
	return suiteBench, suiteKnow
}

// findExample returns the first default-cell example whose concrete value
// satisfies pred.
func findExample(t *testing.T, b *core.Benchmark, task core.Task, pred func(any) bool) core.Example {
	t.Helper()
	cell, ok := task.Cell(b, task.DefaultDataset())
	if !ok {
		t.Fatalf("no default cell for %s", task.ID())
	}
	for _, ex := range cell {
		if pred(ex.Value()) {
			return ex
		}
	}
	t.Fatalf("no matching example in %s default cell", task.ID())
	return core.Example{}
}

// field extracts one named field from a result view.
func field(t *testing.T, v core.ResultView, key string) any {
	t.Helper()
	for _, f := range v.Fields {
		if f.Key == key {
			return f.Value
		}
	}
	t.Fatalf("view has no field %q: %+v", key, v.Fields)
	return nil
}

// TestTaskRegistry pins the registry's shape: the paper's five tasks in
// serve-endpoint order, then registered extensions.
func TestTaskRegistry(t *testing.T) {
	ids := core.TaskIDs()
	want := []string{"syntax", "tokens", "equiv", "perf", "explain", "fill", "state"}
	if len(ids) != len(want) {
		t.Fatalf("registered tasks = %v, want %v", ids, want)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("task %d = %q, want %q (all: %v)", i, ids[i], id, ids)
		}
		task, ok := core.TaskByID(id)
		if !ok || task.ID() != id {
			t.Fatalf("TaskByID(%s) broken", id)
		}
	}
	if _, ok := core.TaskByID("nosuch"); ok {
		t.Error("TaskByID(nosuch) should fail")
	}
	if got := len(core.Tasks()); got != len(want) {
		t.Errorf("Tasks() = %d entries", got)
	}
}

// TestTaskContracts runs the reusable contract suite against every
// registered task, with known-good/known-bad grading fixtures per task.
func TestTaskContracts(t *testing.T) {
	b, k := suiteEnv(t)
	client, err := sim.New("GPT4", k)
	if err != nil {
		t.Fatal(err)
	}

	cases := func(task core.Task) []tasktest.GradeCase {
		switch task.ID() {
		case "syntax":
			pos := findExample(t, b, task, func(v any) bool { return v.(core.SyntaxExample).HasError })
			return []tasktest.GradeCase{
				{Name: "good", Example: pos, Response: "yes; type=aggr-attr; detail=x", WantCorrect: true},
				{Name: "bad", Example: pos, Response: "no error", WantCorrect: false},
			}
		case "tokens":
			pos := findExample(t, b, task, func(v any) bool { return v.(core.TokenExample).Missing })
			return []tasktest.GradeCase{
				{Name: "good", Example: pos, Response: "yes; kind=keyword; token=FROM; position=2", WantCorrect: true},
				{Name: "bad", Example: pos, Response: "No. The query appears complete, with no missing words.", WantCorrect: false},
			}
		case "equiv":
			pos := findExample(t, b, task, func(v any) bool { return v.(core.EquivExample).Equivalent })
			return []tasktest.GradeCase{
				{Name: "good", Example: pos, Response: "equivalent; type=cte", WantCorrect: true},
				{Name: "bad", Example: pos, Response: "not equivalent", WantCorrect: false},
			}
		case "perf":
			pos := findExample(t, b, task, func(v any) bool { return v.(core.PerfExample).Costly })
			return []tasktest.GradeCase{
				{Name: "good", Example: pos, Response: "yes; high cost", WantCorrect: true},
				{Name: "bad", Example: pos, Response: "no; low cost", WantCorrect: false},
			}
		case "explain":
			ex := findExample(t, b, task, func(v any) bool { return true })
			full := nlgen.Render(ex.Value().(core.ExplainExample).Facts, nlgen.RenderOptions{})
			coverage := func(min, max float64) func(core.ResultView) error {
				return func(v core.ResultView) error {
					cov, ok := field(t, v, "coverage").(float64)
					if !ok {
						return fmt.Errorf("coverage is not a float: %v", v.Fields)
					}
					if cov < min || cov > max {
						return fmt.Errorf("coverage %.2f outside [%.2f, %.2f]", cov, min, max)
					}
					return nil
				}
			}
			return []tasktest.GradeCase{
				{Name: "good", Example: ex, Response: full, Check: coverage(0.5, 1)},
				{Name: "bad", Example: ex, Response: "This statement does something.", Check: coverage(0, 0.4)},
			}
		case "fill":
			pos := findExample(t, b, task, func(v any) bool {
				fe := v.(core.FillExample)
				return fe.Missing && fe.Removed != ""
			})
			removed := pos.Value().(core.FillExample).Removed
			return []tasktest.GradeCase{
				{Name: "good", Example: pos, Response: fmt.Sprintf("The missing token is %q.", removed), WantCorrect: true},
				{Name: "bad", Example: pos, Response: "The query is complete.", WantCorrect: false},
			}
		case "state":
			pos := findExample(t, b, task, func(v any) bool {
				return len(v.(core.StateExample).Want) > 0
			})
			rows := pos.Value().(core.StateExample).Want
			return []tasktest.GradeCase{
				{Name: "good", Example: pos, Response: "Final contents: " + strings.Join(rows, " "), WantCorrect: true},
				{Name: "bad", Example: pos, Response: "After running the script the table is empty.", WantCorrect: false},
			}
		default:
			t.Fatalf("no grading fixtures for task %s — add them here", task.ID())
			return nil
		}
	}

	for _, task := range core.Tasks() {
		t.Run(task.ID(), func(t *testing.T) {
			tasktest.Run(t, tasktest.Options{
				Task:       task,
				Bench:      b,
				Client:     client,
				GradeCases: cases(task),
			})
		})
	}
}

// TestFillTaskEndToEnd drives the sixth task through the generic driver and
// sanity-checks its scores: detection tracks the miss_token operating
// point, and exact token recovery lands between chance and perfection (the
// repair oracle recovers keywords verbatim but guesses identifiers).
func TestFillTaskEndToEnd(t *testing.T) {
	b, k := suiteEnv(t)
	client, err := sim.New("GPT4", k)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(context.Background(), client, core.FillTask, core.FillTask.Cell(b, core.SDSS))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(b.Tokens[core.SDSS]) {
		t.Fatalf("fill results = %d, want %d", len(res), len(b.Tokens[core.SDSS]))
	}
	s := core.FillTask.Summarize(res)
	if !s.HasPRF || s.F1 < 0.7 {
		t.Errorf("fill detection F1 = %.2f, want >= 0.7 (summary %+v)", s.F1, s)
	}
	if s.Accuracy < 0.2 || s.Accuracy > 0.98 {
		t.Errorf("fill token-recovery accuracy = %.2f, want a non-degenerate middle ground", s.Accuracy)
	}
	// Some recovered tokens must match the ground truth exactly.
	exact := 0
	for _, r := range res {
		if r.Example.Missing && r.PredMiss && r.PredToken == r.Example.Removed {
			exact++
		}
	}
	if exact == 0 {
		t.Error("no exact token recovery at all")
	}
}

// TestStateTaskEndToEnd drives the seventh task through the generic driver:
// every response must parse, a strong model lands well above chance, and a
// weak model stays clearly below a strong one (the error channel separates
// the profiles).
func TestStateTaskEndToEnd(t *testing.T) {
	b, k := suiteEnv(t)
	accuracy := func(model string) float64 {
		client, err := sim.New(model, k)
		if err != nil {
			t.Fatal(err)
		}
		var all []core.StateResult
		for _, ds := range core.TaskDatasets {
			res, err := core.Run(context.Background(), client, core.StateTask, core.StateTask.Cell(b, ds))
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != len(b.State[ds]) {
				t.Fatalf("%s/%s: %d results, want %d", model, ds, len(res), len(b.State[ds]))
			}
			all = append(all, res...)
		}
		for _, r := range all {
			if !r.Parsed {
				t.Errorf("%s: unparseable state response on %s: %q", model, r.Example.ID, r.Response)
			}
		}
		return core.StateTask.Summarize(all).Accuracy
	}
	strong, weak := accuracy("GPT4"), accuracy("Gemini")
	if strong < 0.6 {
		t.Errorf("GPT4 state accuracy = %.2f, want >= 0.6", strong)
	}
	if strong >= 0.999 {
		t.Errorf("GPT4 state accuracy = %.2f: error channel never fired", strong)
	}
	if weak >= strong {
		t.Errorf("Gemini (%.2f) should not beat GPT4 (%.2f) on state tracking", weak, strong)
	}
}

// TestFillDerivedCellsAlign checks the fill cells mirror the miss_token
// ground truth one-to-one.
func TestFillDerivedCellsAlign(t *testing.T) {
	b, _ := suiteEnv(t)
	for _, ds := range core.TaskDatasets {
		fill := core.FillTask.Cell(b, ds)
		toks := b.Tokens[ds]
		if len(fill) != len(toks) {
			t.Fatalf("%s: fill cell = %d examples, tokens = %d", ds, len(fill), len(toks))
		}
		for i, fe := range fill {
			te := toks[i]
			if fe.SQL != te.SQL || fe.Missing != te.Missing || fe.Removed != te.Removed ||
				fe.Kind != te.Kind || fe.Position != te.Position {
				t.Fatalf("%s example %d diverges from its token source", ds, i)
			}
		}
	}
}
