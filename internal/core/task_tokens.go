package core

import (
	"time"

	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/prompt"
	"repro/internal/respparse"
)

// TokenResult is one model prediction on a TokenExample.
type TokenResult struct {
	Example  TokenExample
	PredMiss bool
	PredKind string
	PredPos  int // 0-based; -1 when absent
	Response string
	Usage    llm.Usage
	Latency  time.Duration
}

// TokensTask is the miss_token / miss_token_type / miss_token_loc registry
// entry.
var TokensTask = &TaskDef[TokenExample, TokenResult]{
	TaskID:      "tokens",
	Name:        "miss_token",
	Description: "Decide whether a token was deleted from a query, and report its kind and word position.",
	TaskSkills:  tokenSkills,
	PromptTask:  prompt.MissToken,

	DatasetNames:   TaskDatasets,
	DefaultDataset: SDSS,
	Cell:           func(b *Benchmark, ds string) []TokenExample { return b.Tokens[ds] },

	ExampleID:  func(ex TokenExample) string { return ex.ID },
	ExampleSQL: func(ex TokenExample) []string { return []string{ex.SQL} },
	AdHoc: func(id string, sql []string) (TokenExample, error) {
		return TokenExample{ID: id, SQL: sql[0], Position: -1}, nil
	},

	Render: func(tpl prompt.Template, ex TokenExample) string { return tpl.Render(ex.SQL) },
	Grade:  gradeTokens,

	View: func(r TokenResult, labeled bool) ResultView {
		v := ResultView{
			ID: r.Example.ID, SQL: r.Example.SQL,
			Response: r.Response, Usage: r.Usage, Latency: r.Latency,
		}
		v.Fields = append(v.Fields, Field{"pred_missing", r.PredMiss})
		if r.PredKind != "" {
			v.Fields = append(v.Fields, Field{"pred_kind", r.PredKind})
		}
		v.Fields = append(v.Fields, Field{"pred_position", r.PredPos})
		if labeled {
			v.Fields = append(v.Fields, Field{"want_missing", r.Example.Missing})
			if r.Example.Kind != "" {
				v.Fields = append(v.Fields, Field{"want_kind", string(r.Example.Kind)})
			}
			v.Fields = append(v.Fields, Field{"want_position", r.Example.Position})
			v.Correct = boolp(r.PredMiss == r.Example.Missing)
		}
		return v
	},
	Summarize: func(rs []TokenResult) Summary { return binarySummary(EvalTokenBinary(rs)) },
}

// gradeTokens post-processes one response into a TokenResult.
func gradeTokens(ex TokenExample, resp llm.Response) TokenResult {
	verdict, perr := respparse.ParseMissToken(resp.Text)
	if perr != nil {
		verdict = respparse.MissTokenVerdict{Position: -1}
	}
	return TokenResult{
		Example:  ex,
		PredMiss: verdict.Missing,
		PredKind: verdict.Kind,
		PredPos:  verdict.Position,
		Response: resp.Text,
		Usage:    resp.Usage,
		Latency:  resp.Latency,
	}
}

// ---------------------------------------------------------------------------
// Evaluation aggregations

// EvalTokenBinary computes the miss_token confusion.
func EvalTokenBinary(results []TokenResult) metrics.Binary {
	var b metrics.Binary
	for _, r := range results {
		b.Add(r.Example.Missing, r.PredMiss)
	}
	return b
}

// EvalTokenType computes miss_token_type multi-class scores over positives.
func EvalTokenType(results []TokenResult) *metrics.MultiClass {
	mc := metrics.NewMultiClass()
	for _, r := range results {
		if !r.Example.Missing {
			continue
		}
		pred := r.PredKind
		if !r.PredMiss || pred == "" {
			pred = "(none)"
		}
		mc.Add(string(r.Example.Kind), pred)
	}
	return mc
}

// EvalTokenLocation computes MAE and hit rate over detected positives.
func EvalTokenLocation(results []TokenResult) metrics.Location {
	var loc metrics.Location
	for _, r := range results {
		if !r.Example.Missing || !r.PredMiss || r.PredPos < 0 {
			continue
		}
		loc.Add(r.Example.Position, r.PredPos)
	}
	return loc
}

// TokenFNRateByKind returns the miss rate per removed-token kind (Figure 9).
func TokenFNRateByKind(results []TokenResult) map[string]float64 {
	pos := map[string]int{}
	fn := map[string]int{}
	for _, r := range results {
		if !r.Example.Missing {
			continue
		}
		k := string(r.Example.Kind)
		pos[k]++
		if !r.PredMiss {
			fn[k]++
		}
	}
	out := map[string]float64{}
	for k, n := range pos {
		out[k] = float64(fn[k]) / float64(n)
	}
	return out
}

// TokenBreakdown collects a property per outcome (Figure 8 panels).
func TokenBreakdown(results []TokenResult, property func(TokenExample) float64) *metrics.Breakdown {
	bd := metrics.NewBreakdown()
	for _, r := range results {
		bd.Add(r.Example.Missing, r.PredMiss, property(r.Example))
	}
	return bd
}
