// Package tasktest is the reusable contract suite every registered
// core.Task must pass (the task-level mirror of llm/clienttest): metadata
// present and consistent, the example codec round-trips, known-good and
// known-bad responses grade as expected, and streaming delivers identical
// results to a buffered run at parallel 1 and 8. The core package runs it
// against every registry entry, so "a task is a registry entry" stays an
// enforced contract rather than a comment.
package tasktest

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/runner"
)

// GradeCase is one canned model response graded against a chosen labeled
// example.
type GradeCase struct {
	// Name labels the subtest.
	Name string
	// Example is the labeled benchmark example the response answers.
	Example core.Example
	// Response is the raw model response text to grade.
	Response string
	// WantCorrect is the expected correctness verdict; ignored when Check
	// is set.
	WantCorrect bool
	// Check optionally replaces the default verdict comparison (tasks
	// graded on a continuous score have no Correct field to compare).
	Check func(v core.ResultView) error
}

// Options configures a contract run.
type Options struct {
	// Task is the registry entry under test. Required.
	Task core.Task
	// Bench supplies the labeled cells. Required.
	Bench *core.Benchmark
	// Client is a deterministic model used for the streamed-vs-buffered
	// subtest. Required.
	Client llm.Client
	// GradeCases exercise the response grader; at least one known-good and
	// one known-bad case keep the codec honest.
	GradeCases []GradeCase
	// StreamLimit caps how many examples the determinism subtest evaluates
	// (0 = 48).
	StreamLimit int
}

// Run executes the contract suite as subtests of t.
func Run(t *testing.T, opts Options) {
	t.Helper()
	task := opts.Task
	if task == nil || opts.Bench == nil || opts.Client == nil {
		t.Fatal("tasktest: Options.Task, Bench, and Client are required")
	}

	t.Run("Metadata", func(t *testing.T) {
		if task.ID() == "" || task.Name() == "" || task.Description() == "" {
			t.Fatalf("incomplete identity: id=%q name=%q description=%q",
				task.ID(), task.Name(), task.Description())
		}
		if len(task.Skills()) == 0 {
			t.Error("no skill tags")
		}
		datasets := task.Datasets()
		if len(datasets) == 0 {
			t.Fatal("no datasets")
		}
		found := false
		for _, ds := range datasets {
			if ds == task.DefaultDataset() {
				found = true
			}
		}
		if !found {
			t.Errorf("default dataset %q not in %v", task.DefaultDataset(), datasets)
		}
	})

	t.Run("CellShapes", func(t *testing.T) {
		for _, ds := range task.Datasets() {
			cell, ok := task.Cell(opts.Bench, ds)
			if !ok {
				t.Fatalf("Cell(%s) unknown despite being listed", ds)
			}
			if len(cell) == 0 {
				t.Fatalf("Cell(%s) empty", ds)
			}
			seen := map[string]bool{}
			for i, ex := range cell {
				if ex.ID == "" {
					t.Fatalf("%s example %d has no ID", ds, i)
				}
				if seen[ex.ID] {
					t.Fatalf("%s duplicate example ID %q", ds, ex.ID)
				}
				seen[ex.ID] = true
				want := 1
				if task.PairInput() {
					want = 2
				}
				if len(ex.SQL) != want {
					t.Fatalf("%s example %s carries %d statements, want %d", ds, ex.ID, len(ex.SQL), want)
				}
			}
		}
		if _, ok := task.Cell(opts.Bench, "no-such-dataset"); ok {
			t.Error("Cell accepted an unknown dataset")
		}
	})

	t.Run("CodecRoundTrip", func(t *testing.T) {
		cell, _ := task.Cell(opts.Bench, task.DefaultDataset())
		src := cell[0]
		ex, err := task.AdHoc("adhoc/0", src.SQL)
		if err != nil {
			t.Fatalf("AdHoc: %v", err)
		}
		if ex.ID != "adhoc/0" {
			t.Errorf("AdHoc ID = %q", ex.ID)
		}
		if len(ex.SQL) != len(src.SQL) {
			t.Fatalf("AdHoc statements = %d, want %d", len(ex.SQL), len(src.SQL))
		}
		for i := range ex.SQL {
			if ex.SQL[i] != src.SQL[i] {
				t.Errorf("statement %d did not round-trip: %q vs %q", i, ex.SQL[i], src.SQL[i])
			}
		}
		if ex.Value() == nil {
			t.Error("AdHoc example has no concrete value")
		}
		// Wrong arity must be rejected, not mis-assembled.
		if _, err := task.AdHoc("adhoc/bad", append(append([]string{}, src.SQL...), "SELECT 1")); err == nil {
			t.Error("AdHoc accepted too many statements")
		}
	})

	t.Run("Grade", func(t *testing.T) {
		if len(opts.GradeCases) == 0 {
			t.Skip("no grade cases supplied")
		}
		for _, gc := range opts.GradeCases {
			t.Run(gc.Name, func(t *testing.T) {
				res, err := task.Grade(gc.Example, llm.Response{Text: gc.Response})
				if err != nil {
					t.Fatalf("Grade: %v", err)
				}
				view := task.View(res, true)
				if view.ID != gc.Example.ID {
					t.Errorf("view ID = %q, want %q", view.ID, gc.Example.ID)
				}
				if gc.Check != nil {
					if err := gc.Check(view); err != nil {
						t.Error(err)
					}
					return
				}
				if view.Correct == nil {
					t.Fatalf("labeled view has no correctness verdict: %+v", view)
				}
				if *view.Correct != gc.WantCorrect {
					t.Errorf("correct = %v, want %v (response %q)", *view.Correct, gc.WantCorrect, gc.Response)
				}
			})
		}
	})

	t.Run("StreamedMatchesBufferedParallel", func(t *testing.T) {
		cell, _ := task.Cell(opts.Bench, task.DefaultDataset())
		limit := opts.StreamLimit
		if limit == 0 {
			limit = 48
		}
		if len(cell) > limit {
			cell = cell[:limit]
		}
		run := func(parallel int) []string {
			ctx := runner.WithParallelism(context.Background(), parallel)
			var out []string
			err := task.RunStream(ctx, opts.Client, cell, func(r any) error {
				out = append(out, fmt.Sprintf("%#v", r))
				return nil
			})
			if err != nil {
				t.Fatalf("RunStream (parallel=%d): %v", parallel, err)
			}
			return out
		}
		want := run(1)
		if len(want) != len(cell) {
			t.Fatalf("delivered %d results for %d examples", len(want), len(cell))
		}
		for _, parallel := range []int{1, 8} {
			got := run(parallel)
			if len(got) != len(want) {
				t.Fatalf("parallel=%d delivered %d results, want %d", parallel, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("parallel=%d result %d differs from sequential run", parallel, i)
				}
			}
		}
	})
}
