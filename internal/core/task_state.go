package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/llm"
	"repro/internal/prompt"
	"repro/internal/respparse"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

// The state task is the DML/transaction-understanding family riding on the
// storage engine: given a self-contained script (CREATE, INSERTs, then
// UPDATE/DELETE/INSERT statements, some inside BEGIN..COMMIT or
// BEGIN..ROLLBACK blocks), the model must state the table's final contents.
// Ground truth comes from executing the script on the durable store at
// benchmark build time, so grading is a pure row-set comparison here.

// StateResult is one model state-tracking attempt on a StateExample.
type StateResult struct {
	Example   StateExample
	Pred      []string // predicted rows, canonical form, response order
	PredEmpty bool     // the response claimed an empty table
	Parsed    bool     // false when no verdict could be extracted
	Response  string
	Usage     llm.Usage
	Latency   time.Duration
}

// stateCorrect is the task's correctness criterion: the predicted row
// multiset must equal the labeled final contents exactly (order-free), and
// an empty table must be claimed as empty.
func stateCorrect(r StateResult) bool {
	if !r.Parsed {
		return false
	}
	if len(r.Example.Want) == 0 {
		return r.PredEmpty && len(r.Pred) == 0
	}
	if r.PredEmpty || len(r.Pred) != len(r.Example.Want) {
		return false
	}
	pred := append([]string{}, r.Pred...)
	sort.Strings(pred)
	for i, w := range r.Example.Want {
		if pred[i] != w {
			return false
		}
	}
	return true
}

// scriptTable recovers the target table of an ad-hoc script from its
// CREATE TABLE statement.
func scriptTable(script string) (string, error) {
	stmts, err := sqlparse.ParseAll(script)
	if err != nil {
		return "", fmt.Errorf("parsing script: %w", err)
	}
	for _, s := range stmts {
		if ct, ok := s.(*sqlast.CreateTableStmt); ok {
			return ct.Name, nil
		}
	}
	return "", fmt.Errorf("script contains no CREATE TABLE statement")
}

// StateTask is the table_state registry entry — the seventh task, registered
// without any serve/experiments/report dispatch changes.
var StateTask = &TaskDef[StateExample, StateResult]{
	TaskID:      "state",
	Name:        "table_state",
	Description: "Given a DML/transaction script, state the final contents of the table.",
	TaskSkills:  stateSkills,
	PromptTask:  prompt.TableState,

	DatasetNames:   TaskDatasets,
	DefaultDataset: SDSS,
	Cell: func(b *Benchmark, ds string) []StateExample {
		return append([]StateExample{}, b.State[ds]...)
	},

	ExampleID:  func(ex StateExample) string { return ex.ID },
	ExampleSQL: func(ex StateExample) []string { return []string{ex.Script} },
	AdHoc: func(id string, sql []string) (StateExample, error) {
		table, err := scriptTable(sql[0])
		if err != nil {
			return StateExample{}, err
		}
		return StateExample{ID: id, Script: sql[0], Table: table}, nil
	},

	Render: func(tpl prompt.Template, ex StateExample) string { return tpl.Render(ex.Script) },
	Grade:  gradeState,

	View: func(r StateResult, labeled bool) ResultView {
		v := ResultView{
			ID: r.Example.ID, SQL: r.Example.Script,
			Response: r.Response, Usage: r.Usage, Latency: r.Latency,
		}
		v.Fields = append(v.Fields, Field{"pred_empty", r.PredEmpty})
		if len(r.Pred) > 0 {
			v.Fields = append(v.Fields, Field{"pred_rows", strings.Join(r.Pred, " ")})
		}
		if labeled {
			v.Fields = append(v.Fields, Field{"want_rows", strings.Join(r.Example.Want, " ")})
			v.Correct = boolp(stateCorrect(r))
		}
		return v
	},
	Summarize: func(rs []StateResult) Summary {
		// Exact final-contents match; no meaningful binary PRF.
		correct := 0
		for _, r := range rs {
			if stateCorrect(r) {
				correct++
			}
		}
		s := Summary{N: len(rs)}
		if len(rs) > 0 {
			s.Accuracy = float64(correct) / float64(len(rs))
		}
		return s
	},
}

// gradeState post-processes one response into a StateResult.
func gradeState(ex StateExample, resp llm.Response) StateResult {
	r := StateResult{
		Example:  ex,
		Response: resp.Text,
		Usage:    resp.Usage,
		Latency:  resp.Latency,
	}
	verdict, err := respparse.ParseState(resp.Text)
	if err == nil {
		r.Parsed = true
		r.Pred = verdict.Rows
		r.PredEmpty = verdict.Empty
	}
	return r
}
