package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/nlgen"
	"repro/internal/prompt"
	"repro/internal/respparse"
	"repro/internal/runner"
)

// The Run* drivers fan each example out through runner.MapStream:
// completions run on a bounded worker pool (budget taken from the context
// via runner.WithParallelism, defaulting to GOMAXPROCS) while results are
// delivered to a sink in dataset order as soon as each prefix completes, so
// output order is identical to a sequential run. Every driver has a
// streaming form (RunSyntaxStream, ...) that pushes results to a caller
// sink — the serve layer's NDJSON responses hang off these — and a buffered
// form (RunSyntax, ...) that is nothing but the streaming form with a
// slice-collecting sink, so the whole pipeline, experiments.Env cell
// fetching included, funnels through one code path.

// dropIdx adapts a result-only sink to runner.MapStream's indexed sink.
func dropIdx[R any](sink func(R) error) func(int, R) error {
	return func(_ int, r R) error { return sink(r) }
}

// collect runs a streaming driver with a slice-appending sink and returns
// the buffered results — the bridge from the streaming drivers back to the
// buffered Run* contract.
func collect[R any](n int, stream func(sink func(R) error) error) ([]R, error) {
	out := make([]R, 0, n)
	if err := stream(func(r R) error {
		out = append(out, r)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// SyntaxResult is one model prediction on a SyntaxExample.
type SyntaxResult struct {
	Example  SyntaxExample
	PredHas  bool
	PredType string
	Response string
	Usage    llm.Usage
	Latency  time.Duration
}

func syntaxResult(ex SyntaxExample, resp llm.Response) SyntaxResult {
	verdict, perr := respparse.ParseSyntax(resp.Text)
	if perr != nil {
		// Unparseable output counts as "no error claimed", mirroring the
		// paper's conservative manual post-processing.
		verdict = respparse.SyntaxVerdict{}
	}
	return SyntaxResult{
		Example:  ex,
		PredHas:  verdict.HasError,
		PredType: verdict.ErrorType,
		Response: resp.Text,
		Usage:    resp.Usage,
		Latency:  resp.Latency,
	}
}

// RunSyntaxStream drives one model over a syntax dataset, delivering each
// result to sink in dataset order as soon as its prefix completes.
func RunSyntaxStream(ctx context.Context, client llm.Client, tpl prompt.Template, ds []SyntaxExample, sink func(SyntaxResult) error) error {
	return runner.MapStream(ctx, 0, ds, func(ctx context.Context, _ int, ex SyntaxExample) (SyntaxResult, error) {
		resp, err := client.Do(ctx, llm.NewRequest(tpl.Render(ex.SQL)))
		if err != nil {
			return SyntaxResult{}, fmt.Errorf("completing %s: %w", ex.ID, err)
		}
		return syntaxResult(ex, resp), nil
	}, dropIdx(sink))
}

// RunSyntax drives one model over a syntax dataset and buffers the results.
func RunSyntax(ctx context.Context, client llm.Client, tpl prompt.Template, ds []SyntaxExample) ([]SyntaxResult, error) {
	return collect(len(ds), func(sink func(SyntaxResult) error) error {
		return RunSyntaxStream(ctx, client, tpl, ds, sink)
	})
}

// RunSyntaxFewShot is RunSyntax with worked examples prepended to every
// prompt — the few-shot mitigation the paper's conclusion anticipates.
func RunSyntaxFewShot(ctx context.Context, client llm.Client, tpl prompt.Template, shots []prompt.Shot, ds []SyntaxExample) ([]SyntaxResult, error) {
	return collect(len(ds), func(sink func(SyntaxResult) error) error {
		return runner.MapStream(ctx, 0, ds, func(ctx context.Context, _ int, ex SyntaxExample) (SyntaxResult, error) {
			resp, err := client.Do(ctx, llm.NewRequest(tpl.RenderFewShot(ex.SQL, shots)))
			if err != nil {
				return SyntaxResult{}, fmt.Errorf("completing %s: %w", ex.ID, err)
			}
			return syntaxResult(ex, resp), nil
		}, dropIdx(sink))
	})
}

// TokenResult is one model prediction on a TokenExample.
type TokenResult struct {
	Example  TokenExample
	PredMiss bool
	PredKind string
	PredPos  int // 0-based; -1 when absent
	Response string
	Usage    llm.Usage
	Latency  time.Duration
}

// RunTokensStream drives one model over a miss_token dataset, delivering
// each result to sink in dataset order.
func RunTokensStream(ctx context.Context, client llm.Client, tpl prompt.Template, ds []TokenExample, sink func(TokenResult) error) error {
	return runner.MapStream(ctx, 0, ds, func(ctx context.Context, _ int, ex TokenExample) (TokenResult, error) {
		resp, err := client.Do(ctx, llm.NewRequest(tpl.Render(ex.SQL)))
		if err != nil {
			return TokenResult{}, fmt.Errorf("completing %s: %w", ex.ID, err)
		}
		verdict, perr := respparse.ParseMissToken(resp.Text)
		if perr != nil {
			verdict = respparse.MissTokenVerdict{Position: -1}
		}
		return TokenResult{
			Example:  ex,
			PredMiss: verdict.Missing,
			PredKind: verdict.Kind,
			PredPos:  verdict.Position,
			Response: resp.Text,
			Usage:    resp.Usage,
			Latency:  resp.Latency,
		}, nil
	}, dropIdx(sink))
}

// RunTokens drives one model over a miss_token dataset and buffers the
// results.
func RunTokens(ctx context.Context, client llm.Client, tpl prompt.Template, ds []TokenExample) ([]TokenResult, error) {
	return collect(len(ds), func(sink func(TokenResult) error) error {
		return RunTokensStream(ctx, client, tpl, ds, sink)
	})
}

// EquivResult is one model prediction on an EquivExample.
type EquivResult struct {
	Example   EquivExample
	PredEquiv bool
	PredType  string
	Response  string
	Usage     llm.Usage
	Latency   time.Duration
}

// RunEquivStream drives one model over a query_equiv dataset, delivering
// each result to sink in dataset order.
func RunEquivStream(ctx context.Context, client llm.Client, tpl prompt.Template, ds []EquivExample, sink func(EquivResult) error) error {
	return runner.MapStream(ctx, 0, ds, func(ctx context.Context, _ int, ex EquivExample) (EquivResult, error) {
		resp, err := client.Do(ctx, llm.NewRequest(tpl.RenderPair(ex.SQL1, ex.SQL2)))
		if err != nil {
			return EquivResult{}, fmt.Errorf("completing %s: %w", ex.ID, err)
		}
		verdict, perr := respparse.ParseEquiv(resp.Text)
		if perr != nil {
			verdict = respparse.EquivVerdict{}
		}
		return EquivResult{
			Example:   ex,
			PredEquiv: verdict.Equivalent,
			PredType:  verdict.Type,
			Response:  resp.Text,
			Usage:     resp.Usage,
			Latency:   resp.Latency,
		}, nil
	}, dropIdx(sink))
}

// RunEquiv drives one model over a query_equiv dataset and buffers the
// results.
func RunEquiv(ctx context.Context, client llm.Client, tpl prompt.Template, ds []EquivExample) ([]EquivResult, error) {
	return collect(len(ds), func(sink func(EquivResult) error) error {
		return RunEquivStream(ctx, client, tpl, ds, sink)
	})
}

// PerfResult is one model prediction on a PerfExample.
type PerfResult struct {
	Example    PerfExample
	PredCostly bool
	Response   string
	Usage      llm.Usage
	Latency    time.Duration
}

// RunPerfStream drives one model over the performance_pred dataset,
// delivering each result to sink in dataset order.
func RunPerfStream(ctx context.Context, client llm.Client, tpl prompt.Template, ds []PerfExample, sink func(PerfResult) error) error {
	return runner.MapStream(ctx, 0, ds, func(ctx context.Context, _ int, ex PerfExample) (PerfResult, error) {
		resp, err := client.Do(ctx, llm.NewRequest(tpl.Render(ex.SQL)))
		if err != nil {
			return PerfResult{}, fmt.Errorf("completing %s: %w", ex.ID, err)
		}
		costly, perr := respparse.ParsePerf(resp.Text)
		if perr != nil {
			costly = false
		}
		return PerfResult{
			Example: ex, PredCostly: costly, Response: resp.Text,
			Usage: resp.Usage, Latency: resp.Latency,
		}, nil
	}, dropIdx(sink))
}

// RunPerf drives one model over the performance_pred dataset and buffers
// the results.
func RunPerf(ctx context.Context, client llm.Client, tpl prompt.Template, ds []PerfExample) ([]PerfResult, error) {
	return collect(len(ds), func(sink func(PerfResult) error) error {
		return RunPerfStream(ctx, client, tpl, ds, sink)
	})
}

// ExplainResult is one model explanation with its coverage score.
type ExplainResult struct {
	Example     ExplainExample
	Explanation string
	Coverage    float64 // fraction of reference facts mentioned
	Usage       llm.Usage
	Latency     time.Duration
}

// RunExplainStream drives one model over the query_exp dataset, delivering
// each result to sink in dataset order.
func RunExplainStream(ctx context.Context, client llm.Client, tpl prompt.Template, ds []ExplainExample, sink func(ExplainResult) error) error {
	return runner.MapStream(ctx, 0, ds, func(ctx context.Context, _ int, ex ExplainExample) (ExplainResult, error) {
		resp, err := client.Do(ctx, llm.NewRequest(tpl.Render(ex.SQL)))
		if err != nil {
			return ExplainResult{}, fmt.Errorf("completing %s: %w", ex.ID, err)
		}
		expl := respparse.ParseExplanation(resp.Text)
		return ExplainResult{
			Example:     ex,
			Explanation: expl,
			Coverage:    nlgen.Coverage(expl, ex.Facts),
			Usage:       resp.Usage,
			Latency:     resp.Latency,
		}, nil
	}, dropIdx(sink))
}

// RunExplain drives one model over the query_exp dataset and buffers the
// results.
func RunExplain(ctx context.Context, client llm.Client, tpl prompt.Template, ds []ExplainExample) ([]ExplainResult, error) {
	return collect(len(ds), func(sink func(ExplainResult) error) error {
		return RunExplainStream(ctx, client, tpl, ds, sink)
	})
}

// ---------------------------------------------------------------------------
// Evaluation aggregations

// EvalSyntaxBinary computes the syntax_error confusion.
func EvalSyntaxBinary(results []SyntaxResult) metrics.Binary {
	var b metrics.Binary
	for _, r := range results {
		b.Add(r.Example.HasError, r.PredHas)
	}
	return b
}

// EvalSyntaxType computes the multi-class syntax_error_type scores over
// true positives with a stated type (the paper scores type identification
// on detected errors).
func EvalSyntaxType(results []SyntaxResult) *metrics.MultiClass {
	mc := metrics.NewMultiClass()
	for _, r := range results {
		if !r.Example.HasError {
			continue
		}
		pred := r.PredType
		if !r.PredHas || pred == "" {
			pred = "(none)"
		}
		mc.Add(string(r.Example.Type), pred)
	}
	return mc
}

// SyntaxFNRateByType returns, per injected error type, the fraction of
// positives the model missed (Figure 7's bars).
func SyntaxFNRateByType(results []SyntaxResult) map[string]float64 {
	pos := map[string]int{}
	fn := map[string]int{}
	for _, r := range results {
		if !r.Example.HasError {
			continue
		}
		t := string(r.Example.Type)
		pos[t]++
		if !r.PredHas {
			fn[t]++
		}
	}
	out := map[string]float64{}
	for t, n := range pos {
		out[t] = float64(fn[t]) / float64(n)
	}
	return out
}

// SyntaxBreakdown collects a property per outcome (Figure 6 panels).
func SyntaxBreakdown(results []SyntaxResult, property func(SyntaxExample) float64) *metrics.Breakdown {
	bd := metrics.NewBreakdown()
	for _, r := range results {
		bd.Add(r.Example.HasError, r.PredHas, property(r.Example))
	}
	return bd
}

// EvalTokenBinary computes the miss_token confusion.
func EvalTokenBinary(results []TokenResult) metrics.Binary {
	var b metrics.Binary
	for _, r := range results {
		b.Add(r.Example.Missing, r.PredMiss)
	}
	return b
}

// EvalTokenType computes miss_token_type multi-class scores over positives.
func EvalTokenType(results []TokenResult) *metrics.MultiClass {
	mc := metrics.NewMultiClass()
	for _, r := range results {
		if !r.Example.Missing {
			continue
		}
		pred := r.PredKind
		if !r.PredMiss || pred == "" {
			pred = "(none)"
		}
		mc.Add(string(r.Example.Kind), pred)
	}
	return mc
}

// EvalTokenLocation computes MAE and hit rate over detected positives.
func EvalTokenLocation(results []TokenResult) metrics.Location {
	var loc metrics.Location
	for _, r := range results {
		if !r.Example.Missing || !r.PredMiss || r.PredPos < 0 {
			continue
		}
		loc.Add(r.Example.Position, r.PredPos)
	}
	return loc
}

// TokenFNRateByKind returns the miss rate per removed-token kind (Figure 9).
func TokenFNRateByKind(results []TokenResult) map[string]float64 {
	pos := map[string]int{}
	fn := map[string]int{}
	for _, r := range results {
		if !r.Example.Missing {
			continue
		}
		k := string(r.Example.Kind)
		pos[k]++
		if !r.PredMiss {
			fn[k]++
		}
	}
	out := map[string]float64{}
	for k, n := range pos {
		out[k] = float64(fn[k]) / float64(n)
	}
	return out
}

// TokenBreakdown collects a property per outcome (Figure 8 panels).
func TokenBreakdown(results []TokenResult, property func(TokenExample) float64) *metrics.Breakdown {
	bd := metrics.NewBreakdown()
	for _, r := range results {
		bd.Add(r.Example.Missing, r.PredMiss, property(r.Example))
	}
	return bd
}

// EvalEquivBinary computes the query_equiv confusion.
func EvalEquivBinary(results []EquivResult) metrics.Binary {
	var b metrics.Binary
	for _, r := range results {
		b.Add(r.Example.Equivalent, r.PredEquiv)
	}
	return b
}

// EvalEquivType computes query_equiv_type multi-class scores over all pairs.
func EvalEquivType(results []EquivResult) *metrics.MultiClass {
	mc := metrics.NewMultiClass()
	for _, r := range results {
		pred := r.PredType
		if pred == "" {
			pred = "(none)"
		}
		mc.Add(string(r.Example.Type), pred)
	}
	return mc
}

// EquivBreakdown collects a property per outcome (Figures 11 and 12).
func EquivBreakdown(results []EquivResult, property func(EquivExample) float64) *metrics.Breakdown {
	bd := metrics.NewBreakdown()
	for _, r := range results {
		bd.Add(r.Example.Equivalent, r.PredEquiv, property(r.Example))
	}
	return bd
}

// EvalPerf computes the performance_pred confusion.
func EvalPerf(results []PerfResult) metrics.Binary {
	var b metrics.Binary
	for _, r := range results {
		b.Add(r.Example.Costly, r.PredCostly)
	}
	return b
}

// PerfBreakdown collects a property per outcome (Figure 10 panels).
func PerfBreakdown(results []PerfResult, property func(PerfExample) float64) *metrics.Breakdown {
	bd := metrics.NewBreakdown()
	for _, r := range results {
		bd.Add(r.Example.Costly, r.PredCostly, property(r.Example))
	}
	return bd
}

// MeanCoverage averages explanation fact coverage.
func MeanCoverage(results []ExplainResult) float64 {
	if len(results) == 0 {
		return 0
	}
	var sum float64
	for _, r := range results {
		sum += r.Coverage
	}
	return sum / float64(len(results))
}
