package core

import (
	"time"

	"repro/internal/llm"
	"repro/internal/nlgen"
	"repro/internal/prompt"
	"repro/internal/respparse"
	"repro/internal/sqlparse"
)

// ExplainResult is one model explanation with its coverage score.
type ExplainResult struct {
	Example     ExplainExample
	Explanation string
	Coverage    float64 // fraction of reference facts mentioned
	Usage       llm.Usage
	Latency     time.Duration
}

// ExplainTask is the query_exp registry entry (Spider-only, as in the
// paper). Its grading is continuous — fact coverage — so results carry no
// binary correctness verdict.
var ExplainTask = &TaskDef[ExplainExample, ExplainResult]{
	TaskID:      "explain",
	Name:        "query_exp",
	Description: "Explain in one sentence what a query returns; graded by reference-fact coverage.",
	TaskSkills:  explainSkills,
	PromptTask:  prompt.QueryExp,

	DatasetNames:   []string{Spider},
	DefaultDataset: Spider,
	Cell:           func(b *Benchmark, ds string) []ExplainExample { return b.Explain },

	ExampleID:  func(ex ExplainExample) string { return ex.ID },
	ExampleSQL: func(ex ExplainExample) []string { return []string{ex.SQL} },
	AdHoc: func(id string, sql []string) (ExplainExample, error) {
		ex := ExplainExample{ID: id, SQL: sql[0]}
		// Reference facts for ad-hoc queries come from our own parser;
		// unparseable input gets no facts and coverage is then vacuous.
		if sel, err := sqlparse.ParseSelect(sql[0]); err == nil {
			ex.Facts = nlgen.Extract(sel)
		}
		return ex, nil
	},

	Render: func(tpl prompt.Template, ex ExplainExample) string { return tpl.Render(ex.SQL) },
	Grade:  gradeExplain,

	View: func(r ExplainResult, labeled bool) ResultView {
		// The response is the explanation itself, so it rides as a field and
		// the raw-response slot stays empty.
		v := ResultView{
			ID: r.Example.ID, SQL: r.Example.SQL,
			Usage: r.Usage, Latency: r.Latency,
		}
		if r.Explanation != "" {
			v.Fields = append(v.Fields, Field{"explanation", r.Explanation})
		}
		v.Fields = append(v.Fields, Field{"coverage", r.Coverage})
		return v
	},
	Summarize: func(rs []ExplainResult) Summary {
		return Summary{N: len(rs), Accuracy: MeanCoverage(rs)}
	},
}

// gradeExplain post-processes one response into an ExplainResult.
func gradeExplain(ex ExplainExample, resp llm.Response) ExplainResult {
	expl := respparse.ParseExplanation(resp.Text)
	return ExplainResult{
		Example:     ex,
		Explanation: expl,
		Coverage:    nlgen.Coverage(expl, ex.Facts),
		Usage:       resp.Usage,
		Latency:     resp.Latency,
	}
}

// MeanCoverage averages explanation fact coverage.
func MeanCoverage(results []ExplainResult) float64 {
	if len(results) == 0 {
		return 0
	}
	var sum float64
	for _, r := range results {
		sum += r.Coverage
	}
	return sum / float64(len(results))
}
