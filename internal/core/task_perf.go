package core

import (
	"time"

	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/prompt"
	"repro/internal/respparse"
)

// PerfResult is one model prediction on a PerfExample.
type PerfResult struct {
	Example    PerfExample
	PredCostly bool
	Response   string
	Usage      llm.Usage
	Latency    time.Duration
}

// PerfTask is the performance_pred registry entry (SDSS-only, as in the
// paper).
var PerfTask = &TaskDef[PerfExample, PerfResult]{
	TaskID:      "perf",
	Name:        "performance_pred",
	Description: "Predict whether a query takes longer than usual to run.",
	TaskSkills:  perfSkills,
	PromptTask:  prompt.PerfPred,

	DatasetNames:   []string{SDSS},
	DefaultDataset: SDSS,
	Cell:           func(b *Benchmark, ds string) []PerfExample { return b.Perf },

	ExampleID:  func(ex PerfExample) string { return ex.ID },
	ExampleSQL: func(ex PerfExample) []string { return []string{ex.SQL} },
	AdHoc: func(id string, sql []string) (PerfExample, error) {
		return PerfExample{ID: id, SQL: sql[0]}, nil
	},

	Render: func(tpl prompt.Template, ex PerfExample) string { return tpl.Render(ex.SQL) },
	Grade:  gradePerf,

	View: func(r PerfResult, labeled bool) ResultView {
		v := ResultView{
			ID: r.Example.ID, SQL: r.Example.SQL,
			Response: r.Response, Usage: r.Usage, Latency: r.Latency,
		}
		v.Fields = append(v.Fields, Field{"pred_costly", r.PredCostly})
		if labeled {
			v.Fields = append(v.Fields, Field{"want_costly", r.Example.Costly})
			v.Correct = boolp(r.PredCostly == r.Example.Costly)
		}
		return v
	},
	Summarize: func(rs []PerfResult) Summary { return binarySummary(EvalPerf(rs)) },
}

// gradePerf post-processes one response into a PerfResult.
func gradePerf(ex PerfExample, resp llm.Response) PerfResult {
	costly, perr := respparse.ParsePerf(resp.Text)
	if perr != nil {
		costly = false
	}
	return PerfResult{
		Example: ex, PredCostly: costly, Response: resp.Text,
		Usage: resp.Usage, Latency: resp.Latency,
	}
}

// ---------------------------------------------------------------------------
// Evaluation aggregations

// EvalPerf computes the performance_pred confusion.
func EvalPerf(results []PerfResult) metrics.Binary {
	var b metrics.Binary
	for _, r := range results {
		b.Add(r.Example.Costly, r.PredCostly)
	}
	return b
}

// PerfBreakdown collects a property per outcome (Figure 10 panels).
func PerfBreakdown(results []PerfResult, property func(PerfExample) float64) *metrics.Breakdown {
	bd := metrics.NewBreakdown()
	for _, r := range results {
		bd.Add(r.Example.Costly, r.PredCostly, property(r.Example))
	}
	return bd
}
