package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/prompt"
	"repro/internal/runner"
)

// This file defines the generic task-execution API: one typed contract
// (TaskDef) every SQL-understanding task implements, a package-level
// registry of type-erased entries (Task), and one generic driver
// (Run/RunStream/RunWith) replacing the per-task Run* function families.
// The serve, experiments, and report layers consume tasks only through the
// registry, so adding a task is one definition file plus RegisterTask — no
// dispatch code changes anywhere else.

// Field is one ordered key/value output of a result projection. Values must
// be JSON-encodable (bool, int, float64, string).
type Field struct {
	Key   string
	Value any
}

// ResultView is the task-agnostic projection of one result that generic
// consumers (the serve layer's NDJSON lines, the contract suite) render
// from. Fields carries the task-specific predictions and — on labeled
// examples — expected labels, in the order they should be emitted.
type ResultView struct {
	ID   string
	SQL  string
	SQL2 string // pair tasks: right-hand statement
	// Fields holds the task-specific pred_*/want_* outputs in emission order.
	Fields []Field
	// Correct compares the primary prediction against the label; nil for
	// unlabeled examples and for tasks graded on a continuous score.
	Correct *bool
	// Response is the raw model response ("" for tasks whose response is
	// itself a field, like the explanation).
	Response string
	Usage    llm.Usage
	Latency  time.Duration
	// Err is the failure message of an example that produced no graded
	// result (partial-failure runs). When set, only ID/SQL/SQL2 are
	// meaningful — a failed row renders alongside graded rows so a stream
	// accounts for every example it attempted.
	Err string
}

// FailedView projects a failed example into the generic renderable form —
// the row shape partial-failure streams emit for examples whose completion
// errored.
func FailedView(ex Example, err error) ResultView {
	v := ResultView{ID: ex.ID, Err: err.Error()}
	if len(ex.SQL) > 0 {
		v.SQL = ex.SQL[0]
	}
	if len(ex.SQL) > 1 {
		v.SQL2 = ex.SQL[1]
	}
	return v
}

// Summary is the generic accuracy aggregation of one task cell — the cell
// content of a registry-driven accuracy grid. Accuracy is the task's
// headline score (fraction correct, or mean coverage for continuously
// graded tasks); Prec/Rec/F1 are populated when HasPRF is set.
type Summary struct {
	N             int
	Accuracy      float64
	Prec, Rec, F1 float64
	HasPRF        bool
	// Failed counts examples that produced no graded result in a
	// partial-failure run. N counts graded results only, so N+Failed is the
	// attempted total. Summarize leaves it zero; the layer that ran the
	// cell (experiments, serve) fills it in from its failure records.
	Failed int
}

// binarySummary converts a confusion matrix into the generic summary.
func binarySummary(b metrics.Binary) Summary {
	return Summary{
		N:        b.Total(),
		Accuracy: b.Accuracy(),
		Prec:     b.Precision(),
		Rec:      b.Recall(),
		F1:       b.F1(),
		HasPRF:   true,
	}
}

// TaskDef is the typed contract one task implements: identity and skill
// tags, dataset topology, an example codec, a prompt builder, and a
// response grader. E is the labeled example type, R the graded result type.
// A TaskDef is registered once (RegisterTask) and consumed either typed —
// the generic drivers below — or type-erased through the Task interface.
type TaskDef[E, R any] struct {
	// TaskID is the registry/endpoint id, e.g. "syntax".
	TaskID string
	// Name is the paper task name, e.g. "syntax_error".
	Name string
	// Description is one human-readable sentence for discovery listings.
	Description string
	// TaskSkills maps the paper's four understanding skills to emphasis
	// levels (0 = not probed, 1 = probed, 2 = strongly probed).
	TaskSkills map[Skill]int

	// PromptTask selects the task's prompt-template family; the drivers use
	// prompt.Default(PromptTask) unless a template is supplied explicitly.
	PromptTask prompt.Task
	// Pair marks tasks whose examples are statement pairs (ad-hoc input is
	// then [left, right] pairs instead of single statements).
	Pair bool

	// DatasetNames lists the benchmark datasets this task has cells for;
	// DefaultDataset is used when a caller names none. Single-dataset tasks
	// are pinned: the lone entry is always used.
	DatasetNames   []string
	DefaultDataset string
	// Cell returns the labeled examples of one dataset cell in evaluation
	// order.
	Cell func(b *Benchmark, ds string) []E

	// ExampleID returns an example's stable id; ExampleSQL its statement(s)
	// (one entry, or two for pair tasks); AdHoc builds an unlabeled example
	// from caller-submitted statement(s). AdHoc(ExampleID, ExampleSQL) must
	// round-trip.
	ExampleID  func(E) string
	ExampleSQL func(E) []string
	AdHoc      func(id string, sql []string) (E, error)

	// Render produces the prompt text for one example under a template.
	Render func(tpl prompt.Template, ex E) string
	// Grade post-processes one model response into a result.
	Grade func(ex E, resp llm.Response) R

	// View projects a result into the generic renderable form; labeled
	// selects whether expected labels and a correctness verdict appear.
	View func(r R, labeled bool) ResultView
	// Summarize aggregates a cell's results into the generic summary.
	Summarize func(rs []R) Summary
}

// ---------------------------------------------------------------------------
// Generic drivers

// The drivers fan each example out through runner.MapStream: completions
// run on a bounded worker pool (budget taken from the context via
// runner.WithParallelism, defaulting to GOMAXPROCS) while results are
// delivered to the sink in dataset order as soon as each prefix completes,
// so output order is identical to a sequential run. RunWith is the
// streaming primitive; RunStream fixes the renderer to the task's default
// template; Run and RunTemplate are the buffered forms (a slice-collecting
// sink over the same path), so every consumer — the NDJSON serve layer and
// the buffered experiments cells alike — funnels through one code path.

// dropIdx adapts a result-only sink to runner.MapStream's indexed sink.
func dropIdx[R any](sink func(R) error) func(int, R) error {
	return func(_ int, r R) error { return sink(r) }
}

// collect runs a streaming driver with a slice-appending sink and returns
// the buffered results.
func collect[R any](n int, stream func(sink func(R) error) error) ([]R, error) {
	out := make([]R, 0, n)
	if err := stream(func(r R) error {
		out = append(out, r)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// runExample renders, completes, and grades one example — the shared worker
// body under every driver form. When a tracer rides the context it wraps the
// example in a "task.example" span (task/example/model attributes) with a
// "prompt.render" child covering template rendering; the span tree then
// continues into the client's own llm.request/llm.attempt spans. With no
// tracer the obs calls are nil no-ops.
func runExample[E, R any](ctx context.Context, client llm.Client, t *TaskDef[E, R], render func(E) string, ex E) (R, error) {
	ctx, span := obs.Start(ctx, "task.example")
	if span != nil {
		span.SetString("task", t.TaskID)
		span.SetString("example", t.ExampleID(ex))
		span.SetString("model", client.Name())
	}
	_, rspan := obs.Start(ctx, "prompt.render")
	text := render(ex)
	rspan.End()
	resp, err := client.Do(ctx, llm.NewRequest(text))
	if err != nil {
		span.EndErr(err)
		var zero R
		return zero, fmt.Errorf("completing %s: %w", t.ExampleID(ex), err)
	}
	r := t.Grade(ex, resp)
	span.End()
	return r, nil
}

// RunWith drives one model over a dataset with a custom prompt renderer,
// delivering each graded result to sink in dataset order as soon as its
// prefix completes. It is the primitive under every other driver form
// (few-shot prompting and prompt tuning plug in their own renderers).
func RunWith[E, R any](ctx context.Context, client llm.Client, t *TaskDef[E, R], render func(E) string, ds []E, sink func(R) error) error {
	return runner.MapStream(ctx, 0, ds, func(ctx context.Context, _ int, ex E) (R, error) {
		return runExample(ctx, client, t, render, ex)
	}, dropIdx(sink))
}

// RunStream drives one model over a dataset with the task's default prompt,
// streaming results to sink in dataset order.
func RunStream[E, R any](ctx context.Context, client llm.Client, t *TaskDef[E, R], ds []E, sink func(R) error) error {
	tpl := prompt.Default(t.PromptTask)
	return RunWith(ctx, client, t, func(ex E) string { return t.Render(tpl, ex) }, ds, sink)
}

// Run drives one model over a dataset with the task's default prompt and
// buffers the results.
func Run[E, R any](ctx context.Context, client llm.Client, t *TaskDef[E, R], ds []E) ([]R, error) {
	return collect(len(ds), func(sink func(R) error) error {
		return RunStream(ctx, client, t, ds, sink)
	})
}

// RunTemplate is Run with an explicit prompt template — the form the
// prompt-tuning experiments drive variants through.
func RunTemplate[E, R any](ctx context.Context, client llm.Client, t *TaskDef[E, R], tpl prompt.Template, ds []E) ([]R, error) {
	return collect(len(ds), func(sink func(R) error) error {
		return RunWith(ctx, client, t, func(ex E) string { return t.Render(tpl, ex) }, ds, sink)
	})
}

// RunOpts controls a driver run's failure handling.
type RunOpts struct {
	// ContinueOnError switches the run to partial-failure mode: an example
	// whose completion errors becomes an error row delivered to the sink in
	// its dataset position, and the run keeps going instead of aborting.
	ContinueOnError bool
	// MaxFailures aborts a continuing run once more than this many examples
	// have failed — the budget that bounds wasted work against a dead
	// backend. 0 means unlimited. Ignored unless ContinueOnError is set.
	MaxFailures int
}

// RunStreamPartial drives one model over a dataset in partial-failure mode
// with the task's default prompt: each example yields exactly one sink
// call in dataset order — a graded result, or the completion error. The
// returned error is nil when every example was attempted (even if all
// failed); it is a *runner.BudgetError when the failure budget tripped.
func RunStreamPartial[E, R any](ctx context.Context, client llm.Client, t *TaskDef[E, R], ds []E, maxFailures int, sink func(idx int, r R, err error) error) error {
	tpl := prompt.Default(t.PromptTask)
	return runner.MapStreamPartial(ctx, 0, ds, maxFailures, func(ctx context.Context, _ int, ex E) (R, error) {
		return runExample(ctx, client, t, func(ex E) string { return t.Render(tpl, ex) }, ex)
	}, sink)
}

// ---------------------------------------------------------------------------
// Type-erased view and registry

// Example is one type-erased task example: the stable id and submitted
// statement(s) plus the task's concrete example value underneath.
type Example struct {
	ID    string
	SQL   []string
	value any
}

// Value returns the task's concrete example value (e.g. a SyntaxExample).
func (e Example) Value() any { return e.value }

// Task is the type-erased registry view of a TaskDef — the contract the
// serve, experiments, and report layers drive tasks through without knowing
// their example or result types.
type Task interface {
	// ID is the registry/endpoint id; Name the paper task name.
	ID() string
	Name() string
	Description() string
	// Skills maps the four understanding skills to emphasis levels.
	Skills() map[Skill]int
	// Datasets lists the valid benchmark datasets; DefaultDataset the one
	// used when a caller names none. PairInput marks pair-statement tasks.
	Datasets() []string
	DefaultDataset() string
	PairInput() bool

	// Cell returns one dataset's labeled examples (false for datasets the
	// task has no cell for). AdHoc builds an unlabeled example from
	// caller-submitted statement(s): one, or two for pair tasks.
	Cell(b *Benchmark, ds string) ([]Example, bool)
	AdHoc(id string, sql []string) (Example, error)

	// RunStream drives one model over erased examples, delivering each
	// graded result (the task's concrete result type, boxed) to sink in
	// example order as soon as its prefix completes.
	RunStream(ctx context.Context, client llm.Client, examples []Example, sink func(result any) error) error
	// RunStreamOpts is RunStream with failure control: in partial mode
	// (opts.ContinueOnError) every example yields exactly one sink call in
	// example order — a boxed graded result with a nil error, or a nil
	// result with the completion error — and the run continues past
	// failures until opts.MaxFailures trips the budget.
	RunStreamOpts(ctx context.Context, client llm.Client, examples []Example, opts RunOpts, sink func(idx int, result any, err error) error) error
	// Grade post-processes one raw response for one example (boxed result).
	Grade(ex Example, resp llm.Response) (any, error)
	// View projects one boxed result into the generic renderable form.
	View(result any, labeled bool) ResultView
	// Summarize aggregates boxed results into the generic summary.
	Summarize(results []any) Summary
}

// taskAdapter erases a TaskDef behind the Task interface.
type taskAdapter[E, R any] struct {
	def *TaskDef[E, R]
}

func (a taskAdapter[E, R]) ID() string             { return a.def.TaskID }
func (a taskAdapter[E, R]) Name() string           { return a.def.Name }
func (a taskAdapter[E, R]) Description() string    { return a.def.Description }
func (a taskAdapter[E, R]) PairInput() bool        { return a.def.Pair }
func (a taskAdapter[E, R]) DefaultDataset() string { return a.def.DefaultDataset }

func (a taskAdapter[E, R]) Skills() map[Skill]int {
	out := make(map[Skill]int, len(a.def.TaskSkills))
	for k, v := range a.def.TaskSkills {
		out[k] = v
	}
	return out
}

func (a taskAdapter[E, R]) Datasets() []string {
	return append([]string{}, a.def.DatasetNames...)
}

func (a taskAdapter[E, R]) wrap(ex E) Example {
	return Example{ID: a.def.ExampleID(ex), SQL: a.def.ExampleSQL(ex), value: ex}
}

func (a taskAdapter[E, R]) Cell(b *Benchmark, ds string) ([]Example, bool) {
	known := false
	for _, d := range a.def.DatasetNames {
		if d == ds {
			known = true
			break
		}
	}
	if !known {
		return nil, false
	}
	cell := a.def.Cell(b, ds)
	out := make([]Example, len(cell))
	for i, ex := range cell {
		out[i] = a.wrap(ex)
	}
	return out, true
}

func (a taskAdapter[E, R]) AdHoc(id string, sql []string) (Example, error) {
	want := 1
	if a.def.Pair {
		want = 2
	}
	if len(sql) != want {
		return Example{}, fmt.Errorf("task %s takes %d statement(s) per example, got %d", a.def.TaskID, want, len(sql))
	}
	ex, err := a.def.AdHoc(id, sql)
	if err != nil {
		return Example{}, err
	}
	return a.wrap(ex), nil
}

// unwrap asserts the erased examples back to the task's concrete type.
func (a taskAdapter[E, R]) unwrap(examples []Example) ([]E, error) {
	ds := make([]E, len(examples))
	for i, ex := range examples {
		v, ok := ex.value.(E)
		if !ok {
			return nil, fmt.Errorf("task %s: example %s holds %T, not the task's example type", a.def.TaskID, ex.ID, ex.value)
		}
		ds[i] = v
	}
	return ds, nil
}

func (a taskAdapter[E, R]) RunStream(ctx context.Context, client llm.Client, examples []Example, sink func(any) error) error {
	ds, err := a.unwrap(examples)
	if err != nil {
		return err
	}
	return RunStream(ctx, client, a.def, ds, func(r R) error { return sink(r) })
}

func (a taskAdapter[E, R]) RunStreamOpts(ctx context.Context, client llm.Client, examples []Example, opts RunOpts, sink func(int, any, error) error) error {
	ds, err := a.unwrap(examples)
	if err != nil {
		return err
	}
	if !opts.ContinueOnError {
		idx := 0
		return RunStream(ctx, client, a.def, ds, func(r R) error {
			err := sink(idx, r, nil)
			idx++
			return err
		})
	}
	return RunStreamPartial(ctx, client, a.def, ds, opts.MaxFailures, func(idx int, r R, err error) error {
		if err != nil {
			return sink(idx, nil, err)
		}
		return sink(idx, r, nil)
	})
}

func (a taskAdapter[E, R]) Grade(ex Example, resp llm.Response) (any, error) {
	v, ok := ex.value.(E)
	if !ok {
		return nil, fmt.Errorf("task %s: example %s holds %T, not the task's example type", a.def.TaskID, ex.ID, ex.value)
	}
	return a.def.Grade(v, resp), nil
}

func (a taskAdapter[E, R]) View(result any, labeled bool) ResultView {
	return a.def.View(result.(R), labeled)
}

func (a taskAdapter[E, R]) Summarize(results []any) Summary {
	rs := make([]R, len(results))
	for i, r := range results {
		rs[i] = r.(R)
	}
	return a.def.Summarize(rs)
}

// The package-level registry; the read side is what every generic
// consumer — handlers, experiment grids, the contract suite — iterates.
var (
	taskMu    sync.RWMutex
	taskByID  = map[string]Task{}
	taskOrder []string
)

// The built-in registrations, in the paper's endpoint order. A new task is
// one definition file plus one line here — nothing else in the codebase
// names it.
func init() {
	RegisterTask(SyntaxTask)
	RegisterTask(TokensTask)
	RegisterTask(EquivTask)
	RegisterTask(PerfTask)
	RegisterTask(ExplainTask)
	RegisterTask(FillTask)
	RegisterTask(StateTask)
}

// RegisterTask validates a definition and adds it to the registry. It
// panics on an invalid or duplicate definition, since registration happens
// at init time.
func RegisterTask[E, R any](def *TaskDef[E, R]) {
	switch {
	case def.TaskID == "" || def.Name == "":
		panic("core: task registration without id/name")
	case def.Cell == nil || def.ExampleID == nil || def.ExampleSQL == nil || def.AdHoc == nil:
		panic(fmt.Sprintf("core: task %s lacks its example codec", def.TaskID))
	case def.Render == nil || def.Grade == nil || def.View == nil || def.Summarize == nil:
		panic(fmt.Sprintf("core: task %s lacks prompt/grade/view/summarize hooks", def.TaskID))
	case len(def.DatasetNames) == 0:
		panic(fmt.Sprintf("core: task %s names no datasets", def.TaskID))
	}
	valid := false
	for _, ds := range def.DatasetNames {
		if ds == def.DefaultDataset {
			valid = true
		}
	}
	if !valid {
		panic(fmt.Sprintf("core: task %s default dataset %q is not in its dataset list", def.TaskID, def.DefaultDataset))
	}
	taskMu.Lock()
	defer taskMu.Unlock()
	if _, dup := taskByID[def.TaskID]; dup {
		panic("core: duplicate task id " + def.TaskID)
	}
	taskByID[def.TaskID] = taskAdapter[E, R]{def: def}
	taskOrder = append(taskOrder, def.TaskID)
}

// Tasks returns every registered task in registration order.
func Tasks() []Task {
	taskMu.RLock()
	defer taskMu.RUnlock()
	out := make([]Task, 0, len(taskOrder))
	for _, id := range taskOrder {
		out = append(out, taskByID[id])
	}
	return out
}

// TaskByID looks a task up by its registry id.
func TaskByID(id string) (Task, bool) {
	taskMu.RLock()
	defer taskMu.RUnlock()
	t, ok := taskByID[id]
	return t, ok
}

// TaskIDs returns the registered task ids in registration order.
func TaskIDs() []string {
	taskMu.RLock()
	defer taskMu.RUnlock()
	return append([]string{}, taskOrder...)
}

// boolp builds the optional correctness pointer ResultView uses.
func boolp(b bool) *bool { return &b }
