package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/llm/sim"
	"repro/internal/prompt"
	"repro/internal/runner"
)

// TestStreamingMatchesBuffered is the serving layer's determinism
// guarantee, the streaming analogue of the experiments package's
// TestParallelismDoesNotChangeOutput: for every task, concatenating the
// results a Run*Stream sink receives must be byte-identical to the buffered
// Run* result, at parallel=1 and on a worker pool (parallel=8). An NDJSON
// response is therefore the same bytes whatever the server's concurrency.
func TestStreamingMatchesBuffered(t *testing.T) {
	b := bench(t)
	k := sim.NewKnowledge(b.SchemasByDataset())
	client, err := sim.New("GPT4", k)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}

	// Each case renders the buffered slice and the streamed concatenation
	// with the same %#v serialization so any field-level divergence shows.
	cases := []struct {
		name     string
		buffered func(ctx context.Context) (string, error)
		streamed func(ctx context.Context) (string, error)
	}{
		{
			name: "syntax",
			buffered: func(ctx context.Context) (string, error) {
				rs, err := RunSyntax(ctx, client, prompt.Default(prompt.SyntaxError), b.Syntax[SDSS])
				return dump(rs), err
			},
			streamed: func(ctx context.Context) (string, error) {
				var buf bytes.Buffer
				err := RunSyntaxStream(ctx, client, prompt.Default(prompt.SyntaxError), b.Syntax[SDSS], func(r SyntaxResult) error {
					fmt.Fprintf(&buf, "%#v\n", r)
					return nil
				})
				return buf.String(), err
			},
		},
		{
			name: "tokens",
			buffered: func(ctx context.Context) (string, error) {
				rs, err := RunTokens(ctx, client, prompt.Default(prompt.MissToken), b.Tokens[SDSS])
				return dump(rs), err
			},
			streamed: func(ctx context.Context) (string, error) {
				var buf bytes.Buffer
				err := RunTokensStream(ctx, client, prompt.Default(prompt.MissToken), b.Tokens[SDSS], func(r TokenResult) error {
					fmt.Fprintf(&buf, "%#v\n", r)
					return nil
				})
				return buf.String(), err
			},
		},
		{
			name: "equiv",
			buffered: func(ctx context.Context) (string, error) {
				rs, err := RunEquiv(ctx, client, prompt.Default(prompt.QueryEquiv), b.Equiv[SDSS])
				return dump(rs), err
			},
			streamed: func(ctx context.Context) (string, error) {
				var buf bytes.Buffer
				err := RunEquivStream(ctx, client, prompt.Default(prompt.QueryEquiv), b.Equiv[SDSS], func(r EquivResult) error {
					fmt.Fprintf(&buf, "%#v\n", r)
					return nil
				})
				return buf.String(), err
			},
		},
		{
			name: "perf",
			buffered: func(ctx context.Context) (string, error) {
				rs, err := RunPerf(ctx, client, prompt.Default(prompt.PerfPred), b.Perf)
				return dump(rs), err
			},
			streamed: func(ctx context.Context) (string, error) {
				var buf bytes.Buffer
				err := RunPerfStream(ctx, client, prompt.Default(prompt.PerfPred), b.Perf, func(r PerfResult) error {
					fmt.Fprintf(&buf, "%#v\n", r)
					return nil
				})
				return buf.String(), err
			},
		},
		{
			name: "explain",
			buffered: func(ctx context.Context) (string, error) {
				rs, err := RunExplain(ctx, client, prompt.Default(prompt.QueryExp), b.Explain[:40])
				return dump(rs), err
			},
			streamed: func(ctx context.Context) (string, error) {
				var buf bytes.Buffer
				err := RunExplainStream(ctx, client, prompt.Default(prompt.QueryExp), b.Explain[:40], func(r ExplainResult) error {
					fmt.Fprintf(&buf, "%#v\n", r)
					return nil
				})
				return buf.String(), err
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seqCtx := runner.WithParallelism(context.Background(), 1)
			want, err := tc.buffered(seqCtx)
			if err != nil {
				t.Fatalf("buffered: %v", err)
			}
			if want == "" {
				t.Fatal("buffered output empty")
			}
			for _, parallel := range []int{1, 8} {
				ctx := runner.WithParallelism(context.Background(), parallel)
				got, err := tc.streamed(ctx)
				if err != nil {
					t.Fatalf("streamed (parallel=%d): %v", parallel, err)
				}
				if got != want {
					t.Errorf("streamed output differs from buffered at parallel=%d (%d vs %d bytes)",
						parallel, len(got), len(want))
				}
			}
		})
	}
}

// dump serializes a result slice the same way the streamed side does.
func dump[R any](rs []R) string {
	var buf bytes.Buffer
	for _, r := range rs {
		fmt.Fprintf(&buf, "%#v\n", r)
	}
	return buf.String()
}
