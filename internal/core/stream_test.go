package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/llm/sim"
	"repro/internal/runner"
)

// Streaming-vs-buffered determinism for every registered task — the serving
// layer's guarantee that an NDJSON response is the same bytes whatever the
// server's concurrency — lives in the contract suite
// (tasktest.Run's StreamedMatchesBufferedParallel, driven for each registry
// entry by TestTaskContracts). This file covers the one bridge the suite
// does not: the typed buffered driver agreeing with the erased streaming
// path.

// The typed buffered driver must agree with the erased streaming path.
func TestBufferedMatchesErasedStream(t *testing.T) {
	b := bench(t)
	k := sim.NewKnowledge(b.SchemasByDataset())
	client, err := sim.New("Llama3", k)
	if err != nil {
		t.Fatal(err)
	}
	ctx := runner.WithParallelism(context.Background(), 4)
	ds := b.Syntax[SDSS][:40]

	buffered, err := Run(ctx, client, SyntaxTask, ds)
	if err != nil {
		t.Fatal(err)
	}
	task, ok := TaskByID(SyntaxTask.TaskID)
	if !ok {
		t.Fatal("syntax task not registered")
	}
	cell, _ := task.Cell(b, SDSS)
	var streamed []SyntaxResult
	err = task.RunStream(ctx, client, cell[:40], func(r any) error {
		streamed = append(streamed, r.(SyntaxResult))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if dump(buffered) != dump(streamed) {
		t.Error("typed buffered results differ from erased streamed results")
	}
}

// dump serializes a result slice the same way the streamed side does.
func dump[R any](rs []R) string {
	var buf bytes.Buffer
	for _, r := range rs {
		fmt.Fprintf(&buf, "%#v\n", r)
	}
	return buf.String()
}
