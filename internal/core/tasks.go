package core

import (
	"context"
	"fmt"

	"repro/internal/llm"
	"repro/internal/prompt"
)

// Skill names the four understanding skills from the paper's Section 1.
type Skill string

// Skills.
const (
	Recognition Skill = "Recognition"
	Semantics   Skill = "Semantics"
	Context     Skill = "Context"
	Coherence   Skill = "Coherence"
)

// Skills lists the four in the paper's Table 1 row order.
var Skills = []Skill{Recognition, Semantics, Context, Coherence}

// TaskInfo describes one SQL task and the skills it probes, with emphasis
// levels matching Table 1 (0 = not probed, 1 = probed, 2 = strongly probed).
type TaskInfo struct {
	Name   string
	Skills map[Skill]int
}

// TaskCatalog reproduces Table 1's skill-to-task mapping.
var TaskCatalog = []TaskInfo{
	{Name: "syntax error", Skills: map[Skill]int{Recognition: 2, Semantics: 0, Context: 0, Coherence: 1}},
	{Name: "missing token", Skills: map[Skill]int{Recognition: 1, Semantics: 1, Context: 2, Coherence: 0}},
	{Name: "Q. perf. estimate", Skills: map[Skill]int{Recognition: 0, Semantics: 0, Context: 1, Coherence: 2}},
	{Name: "Q. equiv.", Skills: map[Skill]int{Recognition: 0, Semantics: 2, Context: 0, Coherence: 2}},
	{Name: "Q. explain.", Skills: map[Skill]int{Recognition: 1, Semantics: 2, Context: 2, Coherence: 0}},
}

// TuneResult records the accuracy of one prompt variant during tuning.
type TuneResult struct {
	Template prompt.Template
	Accuracy float64
}

// TunePrompt reproduces the paper's prompt-tuning mock experiments: each
// variant runs on a small trial subset and the most accurate one wins.
// Currently implemented for the syntax_error task, whose binary accuracy is
// the tuning criterion the paper describes.
func TunePrompt(ctx context.Context, client llm.Client, trial []SyntaxExample) ([]TuneResult, prompt.Template, error) {
	var results []TuneResult
	best := prompt.Default(prompt.SyntaxError)
	bestAcc := -1.0
	for _, tpl := range prompt.Variants(prompt.SyntaxError) {
		res, err := RunSyntax(ctx, client, tpl, trial)
		if err != nil {
			return nil, best, fmt.Errorf("tuning with %s: %w", tpl.ID, err)
		}
		acc := EvalSyntaxBinary(res).Accuracy()
		results = append(results, TuneResult{Template: tpl, Accuracy: acc})
		if acc > bestAcc {
			bestAcc = acc
			best = tpl
		}
	}
	return results, best, nil
}
