package core

import (
	"context"
	"fmt"

	"repro/internal/llm"
	"repro/internal/prompt"
)

// Skill names the four understanding skills from the paper's Section 1.
type Skill string

// Skills.
const (
	Recognition Skill = "Recognition"
	Semantics   Skill = "Semantics"
	Context     Skill = "Context"
	Coherence   Skill = "Coherence"
)

// Skills lists the four in the paper's Table 1 row order.
var Skills = []Skill{Recognition, Semantics, Context, Coherence}

// Per-task skill emphasis from Table 1 (0 = not probed, 1 = probed,
// 2 = strongly probed). The registry entries and the rendered Table 1 share
// these maps.
var (
	syntaxSkills  = map[Skill]int{Recognition: 2, Semantics: 0, Context: 0, Coherence: 1}
	tokenSkills   = map[Skill]int{Recognition: 1, Semantics: 1, Context: 2, Coherence: 0}
	perfSkills    = map[Skill]int{Recognition: 0, Semantics: 0, Context: 1, Coherence: 2}
	equivSkills   = map[Skill]int{Recognition: 0, Semantics: 2, Context: 0, Coherence: 2}
	explainSkills = map[Skill]int{Recognition: 1, Semantics: 2, Context: 2, Coherence: 0}
	// fill_token probes the same skills as miss_token: recovering the exact
	// token leans even harder on contextual completion, but the Table 1
	// emphasis grid tops out at 2.
	fillSkills = map[Skill]int{Recognition: 1, Semantics: 1, Context: 2, Coherence: 0}
	// table_state asks for the final table contents after a DML/transaction
	// script: it probes statement semantics directly and coherence across
	// statements (each answer depends on every prior statement and on
	// transaction visibility).
	stateSkills = map[Skill]int{Recognition: 0, Semantics: 2, Context: 1, Coherence: 2}
)

// TaskInfo describes one SQL task and the skills it probes, with emphasis
// levels matching Table 1.
type TaskInfo struct {
	Name   string
	Skills map[Skill]int
}

// TaskCatalog reproduces Table 1's skill-to-task mapping: the paper's five
// tasks under their published display names, in column order. Registered
// extensions (like fill_token) are discoverable via Tasks() but do not
// appear here, so the rendered Table 1 stays faithful to the paper.
var TaskCatalog = []TaskInfo{
	{Name: "syntax error", Skills: syntaxSkills},
	{Name: "missing token", Skills: tokenSkills},
	{Name: "Q. perf. estimate", Skills: perfSkills},
	{Name: "Q. equiv.", Skills: equivSkills},
	{Name: "Q. explain.", Skills: explainSkills},
}

// TuneResult records the accuracy of one prompt variant during tuning.
type TuneResult struct {
	Template prompt.Template
	Accuracy float64
}

// TunePrompt reproduces the paper's prompt-tuning mock experiments: each
// variant runs on a small trial subset and the most accurate one wins.
// Currently implemented for the syntax_error task, whose binary accuracy is
// the tuning criterion the paper describes.
func TunePrompt(ctx context.Context, client llm.Client, trial []SyntaxExample) ([]TuneResult, prompt.Template, error) {
	var results []TuneResult
	best := prompt.Default(prompt.SyntaxError)
	bestAcc := -1.0
	for _, tpl := range prompt.Variants(prompt.SyntaxError) {
		res, err := RunTemplate(ctx, client, SyntaxTask, tpl, trial)
		if err != nil {
			return nil, best, fmt.Errorf("tuning with %s: %w", tpl.ID, err)
		}
		acc := EvalSyntaxBinary(res).Accuracy()
		results = append(results, TuneResult{Template: tpl, Accuracy: acc})
		if acc > bestAcc {
			bestAcc = acc
			best = tpl
		}
	}
	return results, best, nil
}
