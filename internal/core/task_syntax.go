package core

import (
	"time"

	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/prompt"
	"repro/internal/respparse"
)

// SyntaxResult is one model prediction on a SyntaxExample.
type SyntaxResult struct {
	Example  SyntaxExample
	PredHas  bool
	PredType string
	Response string
	Usage    llm.Usage
	Latency  time.Duration
}

// SyntaxTask is the syntax_error / syntax_error_type registry entry.
var SyntaxTask = &TaskDef[SyntaxExample, SyntaxResult]{
	TaskID:      "syntax",
	Name:        "syntax_error",
	Description: "Detect whether a query contains a syntax or semantic error and name the error type.",
	TaskSkills:  syntaxSkills,
	PromptTask:  prompt.SyntaxError,

	DatasetNames:   TaskDatasets,
	DefaultDataset: SDSS,
	Cell:           func(b *Benchmark, ds string) []SyntaxExample { return b.Syntax[ds] },

	ExampleID:  func(ex SyntaxExample) string { return ex.ID },
	ExampleSQL: func(ex SyntaxExample) []string { return []string{ex.SQL} },
	AdHoc: func(id string, sql []string) (SyntaxExample, error) {
		return SyntaxExample{ID: id, SQL: sql[0]}, nil
	},

	Render: func(tpl prompt.Template, ex SyntaxExample) string { return tpl.Render(ex.SQL) },
	Grade:  gradeSyntax,

	View: func(r SyntaxResult, labeled bool) ResultView {
		v := ResultView{
			ID: r.Example.ID, SQL: r.Example.SQL,
			Response: r.Response, Usage: r.Usage, Latency: r.Latency,
		}
		v.Fields = append(v.Fields, Field{"pred_has_error", r.PredHas})
		if r.PredType != "" {
			v.Fields = append(v.Fields, Field{"pred_error_type", r.PredType})
		}
		if labeled {
			v.Fields = append(v.Fields, Field{"want_has_error", r.Example.HasError})
			if r.Example.Type != "" {
				v.Fields = append(v.Fields, Field{"want_error_type", string(r.Example.Type)})
			}
			v.Correct = boolp(r.PredHas == r.Example.HasError)
		}
		return v
	},
	Summarize: func(rs []SyntaxResult) Summary { return binarySummary(EvalSyntaxBinary(rs)) },
}

// gradeSyntax post-processes one response into a SyntaxResult.
func gradeSyntax(ex SyntaxExample, resp llm.Response) SyntaxResult {
	verdict, perr := respparse.ParseSyntax(resp.Text)
	if perr != nil {
		// Unparseable output counts as "no error claimed", mirroring the
		// paper's conservative manual post-processing.
		verdict = respparse.SyntaxVerdict{}
	}
	return SyntaxResult{
		Example:  ex,
		PredHas:  verdict.HasError,
		PredType: verdict.ErrorType,
		Response: resp.Text,
		Usage:    resp.Usage,
		Latency:  resp.Latency,
	}
}

// ---------------------------------------------------------------------------
// Evaluation aggregations

// EvalSyntaxBinary computes the syntax_error confusion.
func EvalSyntaxBinary(results []SyntaxResult) metrics.Binary {
	var b metrics.Binary
	for _, r := range results {
		b.Add(r.Example.HasError, r.PredHas)
	}
	return b
}

// EvalSyntaxType computes the multi-class syntax_error_type scores over
// true positives with a stated type (the paper scores type identification
// on detected errors).
func EvalSyntaxType(results []SyntaxResult) *metrics.MultiClass {
	mc := metrics.NewMultiClass()
	for _, r := range results {
		if !r.Example.HasError {
			continue
		}
		pred := r.PredType
		if !r.PredHas || pred == "" {
			pred = "(none)"
		}
		mc.Add(string(r.Example.Type), pred)
	}
	return mc
}

// SyntaxFNRateByType returns, per injected error type, the fraction of
// positives the model missed (Figure 7's bars).
func SyntaxFNRateByType(results []SyntaxResult) map[string]float64 {
	pos := map[string]int{}
	fn := map[string]int{}
	for _, r := range results {
		if !r.Example.HasError {
			continue
		}
		t := string(r.Example.Type)
		pos[t]++
		if !r.PredHas {
			fn[t]++
		}
	}
	out := map[string]float64{}
	for t, n := range pos {
		out[t] = float64(fn[t]) / float64(n)
	}
	return out
}

// SyntaxBreakdown collects a property per outcome (Figure 6 panels).
func SyntaxBreakdown(results []SyntaxResult, property func(SyntaxExample) float64) *metrics.Breakdown {
	bd := metrics.NewBreakdown()
	for _, r := range results {
		bd.Add(r.Example.HasError, r.PredHas, property(r.Example))
	}
	return bd
}
