package core

import (
	"strings"
	"time"

	"repro/internal/analyze"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/mutate"
	"repro/internal/prompt"
	"repro/internal/respparse"
)

// The fill task is the paper's missing-token variant taken one step
// further: instead of only classifying kind and position, the model must
// recover the deleted token text itself. Its labeled cells derive directly
// from the miss_token datasets (same damaged queries, same ground truth),
// so it costs no benchmark-build changes — it is exactly the "registry
// entry + task file" proof the Task API is designed for.

// FillExample is one labeled query for the fill_token task: a possibly
// damaged statement plus the deleted token's ground truth.
type FillExample struct {
	ID       string
	SQL      string // possibly damaged
	Missing  bool
	Removed  string           // the deleted token's text; "" when intact
	Kind     mutate.TokenKind // "" when intact
	Position int              // 0-based word index; -1 when intact
	Props    analyze.Properties
}

// FillResult is one model token-recovery attempt on a FillExample.
type FillResult struct {
	Example   FillExample
	PredMiss  bool
	PredToken string
	Response  string
	Usage     llm.Usage
	Latency   time.Duration
}

// fillCorrect is the task's correctness criterion: the miss verdict must
// match, and on damaged queries the recovered token must equal the deleted
// one (case-insensitively, ignoring surrounding quotes).
func fillCorrect(r FillResult) bool {
	if r.PredMiss != r.Example.Missing {
		return false
	}
	if !r.Example.Missing {
		return true
	}
	return strings.EqualFold(strings.Trim(r.PredToken, `'"`), strings.Trim(r.Example.Removed, `'"`))
}

// FillTask is the fill_token registry entry — the sixth task, registered
// without any serve/experiments/report dispatch changes.
var FillTask = &TaskDef[FillExample, FillResult]{
	TaskID:      "fill",
	Name:        "fill_token",
	Description: "Recover the exact token deleted from a damaged query, or report the query complete.",
	TaskSkills:  fillSkills,
	PromptTask:  prompt.FillToken,

	DatasetNames:   TaskDatasets,
	DefaultDataset: SDSS,
	Cell: func(b *Benchmark, ds string) []FillExample {
		toks := b.Tokens[ds]
		out := make([]FillExample, len(toks))
		for i, t := range toks {
			out[i] = FillExample{
				ID:       strings.TrimSuffix(t.ID, "/tok") + "/fill",
				SQL:      t.SQL,
				Missing:  t.Missing,
				Removed:  t.Removed,
				Kind:     t.Kind,
				Position: t.Position,
				Props:    t.Props,
			}
		}
		return out
	},

	ExampleID:  func(ex FillExample) string { return ex.ID },
	ExampleSQL: func(ex FillExample) []string { return []string{ex.SQL} },
	AdHoc: func(id string, sql []string) (FillExample, error) {
		return FillExample{ID: id, SQL: sql[0], Position: -1}, nil
	},

	Render: func(tpl prompt.Template, ex FillExample) string { return tpl.Render(ex.SQL) },
	Grade:  gradeFill,

	View: func(r FillResult, labeled bool) ResultView {
		v := ResultView{
			ID: r.Example.ID, SQL: r.Example.SQL,
			Response: r.Response, Usage: r.Usage, Latency: r.Latency,
		}
		v.Fields = append(v.Fields, Field{"pred_missing", r.PredMiss})
		if r.PredToken != "" {
			v.Fields = append(v.Fields, Field{"pred_token", r.PredToken})
		}
		if labeled {
			v.Fields = append(v.Fields, Field{"want_missing", r.Example.Missing})
			if r.Example.Removed != "" {
				v.Fields = append(v.Fields, Field{"want_token", r.Example.Removed})
			}
			v.Correct = boolp(fillCorrect(r))
		}
		return v
	},
	Summarize: func(rs []FillResult) Summary {
		// Headline accuracy is exact token recovery; PRF scores the
		// underlying missing-token detection.
		var b metrics.Binary
		correct := 0
		for _, r := range rs {
			b.Add(r.Example.Missing, r.PredMiss)
			if fillCorrect(r) {
				correct++
			}
		}
		s := binarySummary(b)
		if len(rs) > 0 {
			s.Accuracy = float64(correct) / float64(len(rs))
		}
		return s
	},
}

// gradeFill post-processes one response into a FillResult.
func gradeFill(ex FillExample, resp llm.Response) FillResult {
	verdict, perr := respparse.ParseFill(resp.Text)
	if perr != nil {
		verdict = respparse.FillVerdict{}
	}
	return FillResult{
		Example:   ex,
		PredMiss:  verdict.Missing,
		PredToken: verdict.Token,
		Response:  resp.Text,
		Usage:     resp.Usage,
		Latency:   resp.Latency,
	}
}
