package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/llm/sim"
	"repro/internal/runner"
)

// A batch whose context is cancelled mid-stream must stop promptly with
// ctx.Err() instead of burning through the remaining examples: the sim
// models check the context per completion, and the stream propagates the
// cancellation.
func TestRunStreamStopsOnCancellation(t *testing.T) {
	b := bench(t)
	k := sim.NewKnowledge(b.SchemasByDataset())
	client, err := sim.New("GPT4", k)
	if err != nil {
		t.Fatal(err)
	}
	ds := b.Syntax[SDSS]
	if len(ds) < 20 {
		t.Fatalf("dataset too small: %d", len(ds))
	}

	ctx, cancel := context.WithCancel(runner.WithParallelism(context.Background(), 2))
	delivered := 0
	err = RunStream(ctx, client, SyntaxTask, ds, func(r SyntaxResult) error {
		delivered++
		if delivered == 3 {
			cancel()
		}
		return nil
	})
	if err == nil {
		t.Fatal("cancelled stream completed without error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	// The reorder window bounds how far workers run past the cancellation
	// point; the whole dataset must not have been delivered.
	if delivered >= len(ds) {
		t.Errorf("delivered %d/%d results after cancellation", delivered, len(ds))
	}
}

// A pre-cancelled context fails fast without touching the model.
func TestRunPreCancelled(t *testing.T) {
	b := bench(t)
	k := sim.NewKnowledge(b.SchemasByDataset())
	client, _ := sim.New("GPT4", k)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := Run(ctx, client, SyntaxTask, b.Syntax[SDSS])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("pre-cancelled run took %v", elapsed)
	}
}

// Every task driver must record the completion's usage and latency on its
// results.
func TestRunnersRecordUsage(t *testing.T) {
	b := bench(t)
	k := sim.NewKnowledge(b.SchemasByDataset())
	client, _ := sim.New("GPT4", k)
	ctx := context.Background()

	syn, err := Run(ctx, client, SyntaxTask, b.Syntax[SDSS][:5])
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range syn {
		if r.Usage.PromptTokens <= 0 || r.Usage.CompletionTokens <= 0 || r.Latency <= 0 {
			t.Errorf("syntax result %d has no usage: %+v %v", i, r.Usage, r.Latency)
		}
	}
	tok, err := Run(ctx, client, TokensTask, b.Tokens[SDSS][:5])
	if err != nil {
		t.Fatal(err)
	}
	eq, err := Run(ctx, client, EquivTask, b.Equiv[SDSS][:5])
	if err != nil {
		t.Fatal(err)
	}
	pf, err := Run(ctx, client, PerfTask, b.Perf[:5])
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Run(ctx, client, ExplainTask, b.Explain[:5])
	if err != nil {
		t.Fatal(err)
	}
	if tok[0].Usage.Total() <= 0 || eq[0].Usage.Total() <= 0 || pf[0].Usage.Total() <= 0 || ex[0].Usage.Total() <= 0 {
		t.Errorf("a task driver dropped usage: tok=%v eq=%v pf=%v ex=%v",
			tok[0].Usage, eq[0].Usage, pf[0].Usage, ex[0].Usage)
	}
	if tok[0].Latency <= 0 || eq[0].Latency <= 0 || pf[0].Latency <= 0 || ex[0].Latency <= 0 {
		t.Error("a task driver dropped latency")
	}
}
