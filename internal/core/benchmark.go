// Package core implements the paper's primary contribution: the SQL
// task-driven benchmark. It assembles labeled datasets from the workload
// generators (error injection, token removal, equivalence pairs, runtime
// labels, explanation references), drives models through the prompt →
// complete → post-process pipeline, and aggregates the evaluation
// dimensions the paper reports on (model comparison, workload properties,
// task types).
package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analyze"
	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/equiv"
	"repro/internal/mutate"
	"repro/internal/nlgen"
	"repro/internal/runner"
	"repro/internal/semcheck"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
	"repro/internal/store"
	"repro/internal/workload"
	"repro/internal/workload/joborder"
	"repro/internal/workload/sdss"
	"repro/internal/workload/spider"
	"repro/internal/workload/sqlshare"
)

// Dataset names.
const (
	SDSS      = "SDSS"
	SQLShare  = "SQLShare"
	JoinOrder = "Join-Order"
	Spider    = "Spider"
)

// TaskDatasets lists the datasets used by the classification tasks
// (everything except query_exp, which uses Spider).
var TaskDatasets = []string{SDSS, SQLShare, JoinOrder}

// SyntaxExample is one labeled query for syntax_error / syntax_error_type.
type SyntaxExample struct {
	ID       string
	SQL      string
	HasError bool
	Type     semcheck.Code // "" for clean queries
	Props    analyze.Properties
}

// TokenExample is one labeled query for the miss_token tasks.
type TokenExample struct {
	ID       string
	SQL      string // possibly damaged
	Missing  bool
	Kind     mutate.TokenKind // "" when intact
	Position int              // 0-based word index; -1 when intact
	Removed  string
	Props    analyze.Properties // of the original query
}

// EquivExample is one labeled pair for query_equiv / query_equiv_type.
type EquivExample struct {
	ID         string
	SQL1, SQL2 string
	Equivalent bool
	Type       equiv.Type
	Props      analyze.Properties // of the left query
}

// PerfExample is one labeled query for performance_pred.
type PerfExample struct {
	ID        string
	SQL       string
	Costly    bool
	ElapsedMS float64
	Props     analyze.Properties
}

// StateExample is one labeled script for the state task: a self-contained
// CREATE + DML/transaction script and the table's final contents, obtained
// by executing the script on the durable store.
type StateExample struct {
	ID     string
	Script string   // canonical single-line script, statements joined by " ; "
	Table  string   // the table the script creates and modifies
	Want   []string // final rows in canonical "( 1 , 'alpha' )" form, sorted
}

// ExplainExample is one reference-bearing query for query_exp.
type ExplainExample struct {
	ID          string
	SQL         string
	Description string // workload ground truth
	Facts       nlgen.Facts
	Props       analyze.Properties
}

// Benchmark is the full labeled benchmark.
type Benchmark struct {
	Workloads map[string]*workload.Workload
	Syntax    map[string][]SyntaxExample
	Tokens    map[string][]TokenExample
	Equiv     map[string][]EquivExample
	Perf      []PerfExample
	Explain   []ExplainExample
	State     map[string][]StateExample
	// EngineOps records, per dataset, the engine row operations executed
	// while verifying equivalence pairs (zero when verification is off) —
	// the per-task work counter cmd/sqlbench -stats reports.
	EngineOps map[string]int64
	// StoreStats aggregates the storage-engine counters of the state-task
	// oracle stores (pages read/written, WAL traffic, buffer-pool hit rate) —
	// the second work counter cmd/sqlbench -stats reports.
	StoreStats store.Stats
}

// BuildConfig controls benchmark construction.
type BuildConfig struct {
	// Seed drives workload generation and mutation choices.
	Seed int64
	// VerifyEquivalences runs generated equivalence pairs through the
	// execution engine and drops pairs whose label cannot be confirmed
	// empirically. Slower but guarantees label integrity (default on via
	// Build; disable for quick runs).
	VerifyEquivalences bool
	// Parallel bounds the worker pool used for the per-dataset build stages
	// and the equivalence-verification fan-out. 0 means GOMAXPROCS; 1 forces
	// a sequential build. Output is byte-identical at every setting: each
	// dataset derives its own rand.Rand from Seed, exactly as the sequential
	// build always has, so scheduling never reaches the random streams.
	Parallel int
	// Ctx, when set, is the base context for the build's internal fan-out —
	// it carries an obs tracer/span so engine executions during equivalence
	// verification appear in the trace. It is never used for cancellation;
	// builds always run to completion for determinism.
	Ctx context.Context
	// NoOptimize verifies equivalence pairs with the engine's plan optimizer
	// off. Pair selection and every downstream artifact are byte-identical
	// either way; the switch exists for ablation and differential testing.
	NoOptimize bool
	// StoreDir, when set, roots the per-dataset durable stores the state
	// task's oracle executes its scripts on; the stores persist there after
	// the build (the chaos smoke kills builds mid-run and recovers them).
	// Empty runs the oracle in a temporary directory removed afterwards.
	StoreDir string
	// StorePoolPages sizes the oracle stores' buffer pools (default 8 pages —
	// small enough that realistic scripts force eviction). 0 means default.
	StorePoolPages int
}

// Build assembles the benchmark deterministically.
func Build(cfg BuildConfig) (*Benchmark, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	base := cfg.Ctx
	if base == nil {
		base = context.Background()
	}
	ctx := runner.WithParallelism(base, cfg.Parallel)

	// Stage 1: the four workload generators are independent of one another.
	type gen struct {
		name string
		gen  func(int64) *workload.Workload
	}
	gens := []gen{
		{SDSS, sdss.Generate},
		{SQLShare, sqlshare.Generate},
		{JoinOrder, joborder.Generate},
		{Spider, spider.Generate},
	}
	wls, err := runner.Map(ctx, 0, gens, func(_ context.Context, _ int, g gen) (*workload.Workload, error) {
		return g.gen(cfg.Seed), nil
	})
	if err != nil {
		return nil, err
	}
	b := &Benchmark{
		Workloads: make(map[string]*workload.Workload, len(gens)),
		Syntax:    map[string][]SyntaxExample{},
		Tokens:    map[string][]TokenExample{},
		Equiv:     map[string][]EquivExample{},
	}
	for i, g := range gens {
		b.Workloads[g.name] = wls[i]
	}

	// Stage 2: label the task datasets. Datasets run concurrently; within a
	// dataset the syntax → tokens → equiv stages stay sequential because they
	// consume one shared rand stream.
	type labeled struct {
		syntax    []SyntaxExample
		tokens    []TokenExample
		equiv     []EquivExample
		engineOps int64
	}
	outs, err := runner.Map(ctx, 0, TaskDatasets, func(ctx context.Context, _ int, ds string) (labeled, error) {
		w := b.Workloads[ds]
		r := rand.New(rand.NewSource(cfg.Seed ^ int64(len(ds))*7919))
		var l labeled
		l.syntax = buildSyntax(w, r)
		l.tokens = buildTokens(w, r)
		pairs, ops, err := buildEquiv(ctx, w, r, cfg.VerifyEquivalences, cfg.NoOptimize)
		if err != nil {
			return labeled{}, fmt.Errorf("building %s equivalence pairs: %w", ds, err)
		}
		l.equiv = pairs
		l.engineOps = ops
		return l, nil
	})
	if err != nil {
		return nil, err
	}
	b.EngineOps = make(map[string]int64, len(TaskDatasets))
	for i, ds := range TaskDatasets {
		b.Syntax[ds] = outs[i].syntax
		b.Tokens[ds] = outs[i].tokens
		b.Equiv[ds] = outs[i].equiv
		b.EngineOps[ds] = outs[i].engineOps
	}
	b.Perf = buildPerf(b.Workloads[SDSS])
	b.Explain = buildExplain(b.Workloads[Spider])

	// Stage 3: the state task's scripts, labeled by executing each one on a
	// durable store. Each dataset derives an independent rand stream (seed
	// hashed with the stage name) so adding this stage leaves every stage-2
	// artifact byte-identical to pre-state builds.
	type stateOut struct {
		examples []StateExample
		stats    store.Stats
	}
	b.State = map[string][]StateExample{}
	stateOuts, err := runner.Map(ctx, 0, TaskDatasets, func(_ context.Context, _ int, ds string) (stateOut, error) {
		h := fnv.New64a()
		h.Write([]byte("state/" + ds))
		r := rand.New(rand.NewSource(cfg.Seed ^ int64(h.Sum64())))
		dir := cfg.StoreDir
		if dir != "" {
			dir = filepath.Join(dir, strings.ToLower(ds))
		} else {
			tmp, err := os.MkdirTemp("", "statestore")
			if err != nil {
				return stateOut{}, err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		exs, stats, err := buildState(b.Workloads[ds], r, ds, dir, cfg.StorePoolPages)
		if err != nil {
			return stateOut{}, fmt.Errorf("building %s state scripts: %w", ds, err)
		}
		return stateOut{examples: exs, stats: stats}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, ds := range TaskDatasets {
		b.State[ds] = stateOuts[i].examples
		b.StoreStats.Add(stateOuts[i].stats)
	}
	return b, nil
}

// stateScriptsPerDataset sizes each dataset's state cell.
const stateScriptsPerDataset = 24

// buildState generates DML/transaction scripts and labels each with the
// table's final contents by executing it on the store — the durable engine
// is the task's ground-truth oracle, exactly as the execution engine is for
// equivalence pairs. Rows are canonicalized and sorted, so the label does
// not depend on heap placement.
func buildState(w *workload.Workload, r *rand.Rand, ds, dir string, poolPages int) ([]StateExample, store.Stats, error) {
	if poolPages == 0 {
		poolPages = 8
	}
	st, err := store.Open(dir, store.Options{PoolPages: poolPages})
	if err != nil {
		return nil, store.Stats{}, err
	}
	defer st.Close()
	tables := w.Schema.Tables()
	var out []StateExample
	for i := 0; i < stateScriptsPerDataset; i++ {
		donor := tables[i%len(tables)]
		sc := datagen.GenScript(donor, r)
		ses := store.NewSession(st)
		// A table left by an aborted earlier build (persistent StoreDir)
		// must not leak into this script's contents.
		if _, ok := st.Cols(sc.Table); ok {
			if err := ses.DropTable(sc.Table); err != nil {
				return nil, store.Stats{}, err
			}
		}
		db := engine.NewDB(nil)
		db.Source = ses
		if err := engine.New(db).ApplyScript(ses, sc.Stmts); err != nil {
			if ses.InTxn() {
				ses.Rollback()
			}
			return nil, store.Stats{}, fmt.Errorf("script %d: %w", i, err)
		}
		if ses.InTxn() { // generator always closes its block; belt only
			ses.Rollback()
		}
		rows, err := st.ScanAll(sc.Table)
		if err != nil {
			return nil, store.Stats{}, err
		}
		want := make([]string, len(rows))
		for j, row := range rows {
			want[j] = engine.FormatRow(row)
		}
		sort.Strings(want)
		out = append(out, StateExample{
			ID:     fmt.Sprintf("%s-%03d/state", strings.ToLower(ds), i),
			Script: sc.SQL,
			Table:  sc.Table,
			Want:   want,
		})
		if err := store.NewSession(st).DropTable(sc.Table); err != nil {
			return nil, store.Stats{}, err
		}
	}
	stats := st.Stats()
	return out, stats, nil
}

// buildSyntax labels half the workload with injected errors, cycling the six
// error types for balance, and keeps the other half clean.
func buildSyntax(w *workload.Workload, r *rand.Rand) []SyntaxExample {
	var out []SyntaxExample
	typeCursor := 0
	types := semcheck.PaperErrorTypes
	for i, q := range w.Queries {
		ex := SyntaxExample{
			ID:    fmt.Sprintf("%s/syn", q.ID),
			SQL:   q.SQL,
			Props: q.Props,
		}
		if i%2 == 0 {
			// Try the next types in rotation until one applies.
			injected := false
			for attempt := 0; attempt < len(types); attempt++ {
				code := types[(typeCursor+attempt)%len(types)]
				inj, ok := mutate.InjectError(q.Stmt, w.Schema, code, r)
				if !ok {
					continue
				}
				typeCursor = (typeCursor + attempt + 1) % len(types)
				ex.SQL = inj.SQL
				ex.HasError = true
				ex.Type = inj.Type
				injected = true
				break
			}
			if !injected {
				// No applicable injection (e.g. DECLARE): keep clean.
				ex.HasError = false
			}
		}
		out = append(out, ex)
	}
	return out
}

// buildTokens removes one token from half the workload, cycling the six
// kinds. A removal must be observable — the damaged query either fails to
// parse or trips the semantic checker — otherwise the "missing" label would
// be unfalsifiable (removing the AS keyword, say, leaves a legal query).
func buildTokens(w *workload.Workload, r *rand.Rand) []TokenExample {
	var out []TokenExample
	kinds := mutate.TokenKinds
	checker := semcheck.New(w.Schema)
	cursor := 0
	for i, q := range w.Queries {
		ex := TokenExample{
			ID:       fmt.Sprintf("%s/tok", q.ID),
			SQL:      q.SQL,
			Position: -1,
			Props:    q.Props,
		}
		if i%2 == 0 {
			for attempt := 0; attempt < len(kinds); attempt++ {
				kind := kinds[(cursor+attempt)%len(kinds)]
				rem, ok := mutate.RemoveToken(q.SQL, q.Stmt, kind, r)
				if !ok {
					continue
				}
				if len(checker.CheckSQL(rem.SQL)) == 0 {
					continue // removal left a clean query: not observable
				}
				cursor = (cursor + attempt + 1) % len(kinds)
				ex.SQL = rem.SQL
				ex.Missing = true
				ex.Kind = rem.Kind
				ex.Position = rem.WordIndex
				ex.Removed = rem.Removed
				break
			}
		}
		out = append(out, ex)
	}
	return out
}

// buildEquiv derives labeled pairs: equivalence types on even queries,
// non-equivalence types on odd ones. Equivalence-labeled pairs are
// optionally verified with the execution engine; unverifiable pairs fall
// back to the next applicable type. The second result is the engine row
// operations the verification executed (zero when verify is off).
func buildEquiv(ctx context.Context, w *workload.Workload, r *rand.Rand, verify, noOptimize bool) ([]EquivExample, int64, error) {
	eqTypes := equiv.EquivTypes()
	neTypes := equiv.NonEquivTypes()
	var checker *equiv.Checker
	if verify {
		checker = equiv.NewChecker(w.Schema)
		checker.Seeds = []int64{11, 29}
		checker.Parallel = runner.Parallelism(ctx)
		checker.NoOptimize = noOptimize
	}
	var out []EquivExample
	eqCursor, neCursor := 0, 0
	for i, q := range w.Queries {
		sel, ok := q.Stmt.(*sqlast.SelectStmt)
		if !ok {
			continue
		}
		wantEquiv := i%2 == 0
		var pair *EquivExample
		if wantEquiv {
			for attempt := 0; attempt < len(eqTypes); attempt++ {
				typ := eqTypes[(eqCursor+attempt)%len(eqTypes)]
				out2, ok := equiv.Transform(sel, typ, r)
				if !ok {
					continue
				}
				printed := sqlast.Print(out2)
				if _, err := sqlparse.ParseSelect(printed); err != nil {
					return nil, 0, fmt.Errorf("transform %s produced unparsable SQL %q: %w", typ, printed, err)
				}
				if verify {
					equal, err := checker.EquivalentCtx(ctx, sel, out2)
					if err != nil || !equal {
						continue // unverifiable pair: try another type
					}
				}
				eqCursor = (eqCursor + attempt + 1) % len(eqTypes)
				pair = &EquivExample{
					SQL1: q.SQL, SQL2: printed,
					Equivalent: true, Type: typ,
				}
				break
			}
		} else {
			for attempt := 0; attempt < len(neTypes); attempt++ {
				typ := neTypes[(neCursor+attempt)%len(neTypes)]
				out2, ok := equiv.Transform(sel, typ, r)
				if !ok {
					continue
				}
				printed := sqlast.Print(out2)
				if _, err := sqlparse.ParseSelect(printed); err != nil {
					return nil, 0, fmt.Errorf("transform %s produced unparsable SQL %q: %w", typ, printed, err)
				}
				neCursor = (neCursor + attempt + 1) % len(neTypes)
				pair = &EquivExample{
					SQL1: q.SQL, SQL2: printed,
					Equivalent: false, Type: typ,
				}
				break
			}
		}
		if pair == nil {
			continue
		}
		pair.ID = fmt.Sprintf("%s/eq", q.ID)
		pair.Props = q.Props
		out = append(out, *pair)
	}
	var ops int64
	if checker != nil {
		ops = checker.Ops()
	}
	return out, ops, nil
}

// buildPerf labels SDSS queries by the 200 ms threshold from Figure 5.
func buildPerf(w *workload.Workload) []PerfExample {
	var out []PerfExample
	for _, q := range w.Queries {
		out = append(out, PerfExample{
			ID:        fmt.Sprintf("%s/perf", q.ID),
			SQL:       q.SQL,
			Costly:    q.ElapsedMS > 200,
			ElapsedMS: q.ElapsedMS,
			Props:     q.Props,
		})
	}
	return out
}

// buildExplain pairs Spider queries with reference descriptions and facts.
func buildExplain(w *workload.Workload) []ExplainExample {
	var out []ExplainExample
	for _, q := range w.Queries {
		sel, err := sqlparse.ParseSelect(q.SQL)
		if err != nil {
			continue
		}
		out = append(out, ExplainExample{
			ID:          fmt.Sprintf("%s/exp", q.ID),
			SQL:         q.SQL,
			Description: q.Description,
			Facts:       nlgen.Extract(sel),
			Props:       q.Props,
		})
	}
	return out
}

// SchemasByDataset returns the oracle schema per dataset (the knowledge the
// simulated models are constructed with).
func (b *Benchmark) SchemasByDataset() map[string]*catalog.Schema {
	out := map[string]*catalog.Schema{}
	for name, w := range b.Workloads {
		out[name] = w.Schema
	}
	return out
}
