package core

import (
	"time"

	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/prompt"
	"repro/internal/respparse"
)

// EquivResult is one model prediction on an EquivExample.
type EquivResult struct {
	Example   EquivExample
	PredEquiv bool
	PredType  string
	Response  string
	Usage     llm.Usage
	Latency   time.Duration
}

// EquivTask is the query_equiv / query_equiv_type registry entry.
var EquivTask = &TaskDef[EquivExample, EquivResult]{
	TaskID:      "equiv",
	Name:        "query_equiv",
	Description: "Decide whether two queries always return the same results, and classify the rewrite.",
	TaskSkills:  equivSkills,
	PromptTask:  prompt.QueryEquiv,
	Pair:        true,

	DatasetNames:   TaskDatasets,
	DefaultDataset: SDSS,
	Cell:           func(b *Benchmark, ds string) []EquivExample { return b.Equiv[ds] },

	ExampleID:  func(ex EquivExample) string { return ex.ID },
	ExampleSQL: func(ex EquivExample) []string { return []string{ex.SQL1, ex.SQL2} },
	AdHoc: func(id string, sql []string) (EquivExample, error) {
		return EquivExample{ID: id, SQL1: sql[0], SQL2: sql[1]}, nil
	},

	Render: func(tpl prompt.Template, ex EquivExample) string { return tpl.RenderPair(ex.SQL1, ex.SQL2) },
	Grade:  gradeEquiv,

	View: func(r EquivResult, labeled bool) ResultView {
		v := ResultView{
			ID: r.Example.ID, SQL: r.Example.SQL1, SQL2: r.Example.SQL2,
			Response: r.Response, Usage: r.Usage, Latency: r.Latency,
		}
		v.Fields = append(v.Fields, Field{"pred_equivalent", r.PredEquiv})
		if r.PredType != "" {
			v.Fields = append(v.Fields, Field{"pred_equiv_type", r.PredType})
		}
		if labeled {
			v.Fields = append(v.Fields, Field{"want_equivalent", r.Example.Equivalent})
			if r.Example.Type != "" {
				v.Fields = append(v.Fields, Field{"want_equiv_type", string(r.Example.Type)})
			}
			v.Correct = boolp(r.PredEquiv == r.Example.Equivalent)
		}
		return v
	},
	Summarize: func(rs []EquivResult) Summary { return binarySummary(EvalEquivBinary(rs)) },
}

// gradeEquiv post-processes one response into an EquivResult.
func gradeEquiv(ex EquivExample, resp llm.Response) EquivResult {
	verdict, perr := respparse.ParseEquiv(resp.Text)
	if perr != nil {
		verdict = respparse.EquivVerdict{}
	}
	return EquivResult{
		Example:   ex,
		PredEquiv: verdict.Equivalent,
		PredType:  verdict.Type,
		Response:  resp.Text,
		Usage:     resp.Usage,
		Latency:   resp.Latency,
	}
}

// ---------------------------------------------------------------------------
// Evaluation aggregations

// EvalEquivBinary computes the query_equiv confusion.
func EvalEquivBinary(results []EquivResult) metrics.Binary {
	var b metrics.Binary
	for _, r := range results {
		b.Add(r.Example.Equivalent, r.PredEquiv)
	}
	return b
}

// EvalEquivType computes query_equiv_type multi-class scores over all pairs.
func EvalEquivType(results []EquivResult) *metrics.MultiClass {
	mc := metrics.NewMultiClass()
	for _, r := range results {
		pred := r.PredType
		if pred == "" {
			pred = "(none)"
		}
		mc.Add(string(r.Example.Type), pred)
	}
	return mc
}

// EquivBreakdown collects a property per outcome (Figures 11 and 12).
func EquivBreakdown(results []EquivResult, property func(EquivExample) float64) *metrics.Breakdown {
	bd := metrics.NewBreakdown()
	for _, r := range results {
		bd.Add(r.Example.Equivalent, r.PredEquiv, property(r.Example))
	}
	return bd
}
