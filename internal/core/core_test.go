package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/equiv"
	"repro/internal/llm/sim"
	"repro/internal/semcheck"
	"repro/internal/sqlparse"
)

// buildOnce caches a benchmark across tests (verification off for speed;
// the verified path is covered by TestBuildVerifiedEquivalences).
var cachedBench *Benchmark

func bench(t *testing.T) *Benchmark {
	t.Helper()
	if cachedBench == nil {
		b, err := Build(BuildConfig{Seed: 1})
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		cachedBench = b
	}
	return cachedBench
}

func TestBuildShapes(t *testing.T) {
	b := bench(t)
	if len(b.Workloads) != 4 {
		t.Fatalf("workloads = %d", len(b.Workloads))
	}
	wantSizes := map[string]int{SDSS: 285, SQLShare: 250, JoinOrder: 157}
	for ds, n := range wantSizes {
		if got := len(b.Syntax[ds]); got != n {
			t.Errorf("syntax[%s] = %d, want %d", ds, got, n)
		}
		if got := len(b.Tokens[ds]); got != n {
			t.Errorf("tokens[%s] = %d, want %d", ds, got, n)
		}
		if len(b.Equiv[ds]) == 0 {
			t.Errorf("equiv[%s] empty", ds)
		}
	}
	if len(b.Perf) != 285 {
		t.Errorf("perf = %d", len(b.Perf))
	}
	if len(b.Explain) != 200 {
		t.Errorf("explain = %d", len(b.Explain))
	}
}

// The builder must hold its invariants across arbitrary seeds, not just the
// default one.
func TestBuildSeedRobust(t *testing.T) {
	for _, seed := range []int64{2, 5, 42, 1234} {
		b, err := Build(BuildConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, ds := range TaskDatasets {
			if len(b.Syntax[ds]) == 0 || len(b.Tokens[ds]) == 0 || len(b.Equiv[ds]) == 0 {
				t.Errorf("seed %d: empty dataset for %s", seed, ds)
			}
		}
		var costly int
		for _, ex := range b.Perf {
			if ex.Costly {
				costly++
			}
		}
		if costly != 41 {
			t.Errorf("seed %d: costly = %d, want 41 (Figure 5 split)", seed, costly)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(BuildConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(BuildConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Syntax[SDSS] {
		if a.Syntax[SDSS][i].SQL != b.Syntax[SDSS][i].SQL {
			t.Fatalf("syntax example %d differs across identical seeds", i)
		}
	}
	for i := range a.Equiv[SDSS] {
		if a.Equiv[SDSS][i].SQL2 != b.Equiv[SDSS][i].SQL2 {
			t.Fatalf("equiv pair %d differs across identical seeds", i)
		}
	}
}

// Every positive syntax example must actually trip the oracle with its
// labeled type, and every negative must be clean.
func TestSyntaxLabelsConsistent(t *testing.T) {
	b := bench(t)
	for _, ds := range TaskDatasets {
		checker := semcheck.New(b.Workloads[ds].Schema)
		for _, ex := range b.Syntax[ds] {
			diags := checker.CheckSQL(ex.SQL)
			if ex.HasError {
				found := false
				for _, d := range diags {
					if d.Code == ex.Type {
						found = true
					}
				}
				if !found {
					t.Errorf("%s: labeled %s but oracle says %v\n%s", ex.ID, ex.Type, diags, ex.SQL)
				}
			} else if len(diags) != 0 {
				t.Errorf("%s: labeled clean but oracle says %v\n%s", ex.ID, diags, ex.SQL)
			}
		}
	}
}

// Positive and negative classes stay roughly balanced (the calibration
// math assumes it).
func TestSyntaxBalance(t *testing.T) {
	b := bench(t)
	for _, ds := range TaskDatasets {
		pos := 0
		for _, ex := range b.Syntax[ds] {
			if ex.HasError {
				pos++
			}
		}
		frac := float64(pos) / float64(len(b.Syntax[ds]))
		if frac < 0.35 || frac > 0.6 {
			t.Errorf("%s positives fraction = %.2f, want near 0.5", ds, frac)
		}
	}
}

// Every removal label must be observable: the damaged SQL fails to parse or
// trips the checker.
func TestTokenLabelsObservable(t *testing.T) {
	b := bench(t)
	for _, ds := range TaskDatasets {
		checker := semcheck.New(b.Workloads[ds].Schema)
		for _, ex := range b.Tokens[ds] {
			if !ex.Missing {
				if len(checker.CheckSQL(ex.SQL)) != 0 {
					t.Errorf("%s: intact example trips the oracle", ex.ID)
				}
				continue
			}
			if ex.Position < 0 || ex.Removed == "" {
				t.Errorf("%s: missing ground truth fields", ex.ID)
			}
			if len(checker.CheckSQL(ex.SQL)) == 0 {
				t.Errorf("%s: removal is unobservable\n%s", ex.ID, ex.SQL)
			}
		}
	}
}

// Equivalence pairs must parse on both sides and cover both label classes
// and several types.
func TestEquivPairShapes(t *testing.T) {
	b := bench(t)
	for _, ds := range TaskDatasets {
		var eq, ne int
		types := map[equiv.Type]bool{}
		for _, p := range b.Equiv[ds] {
			if _, err := sqlparse.ParseSelect(p.SQL1); err != nil {
				t.Fatalf("%s left does not parse: %v", p.ID, err)
			}
			if _, err := sqlparse.ParseSelect(p.SQL2); err != nil {
				t.Fatalf("%s right does not parse: %v", p.ID, err)
			}
			types[p.Type] = true
			if p.Equivalent {
				eq++
			} else {
				ne++
			}
		}
		if eq == 0 || ne == 0 {
			t.Errorf("%s pair classes: %d equivalent / %d non-equivalent", ds, eq, ne)
		}
		if len(types) < 8 {
			t.Errorf("%s covers only %d transformation types", ds, len(types))
		}
	}
}

// With verification on, every equivalence-labeled pair must agree on the
// execution engine.
func TestBuildVerifiedEquivalences(t *testing.T) {
	if testing.Short() {
		t.Skip("verification pass is slow")
	}
	b, err := Build(BuildConfig{Seed: 2, VerifyEquivalences: true})
	if err != nil {
		t.Fatal(err)
	}
	checker := equiv.NewChecker(b.Workloads[SDSS].Schema)
	checked := 0
	for _, p := range b.Equiv[SDSS] {
		if !p.Equivalent || checked >= 25 {
			continue
		}
		a, _ := sqlparse.ParseSelect(p.SQL1)
		c, _ := sqlparse.ParseSelect(p.SQL2)
		equal, err := checker.Equivalent(a, c)
		if err != nil {
			t.Fatalf("%s: %v", p.ID, err)
		}
		if !equal {
			t.Errorf("%s labeled equivalent but engine disagrees", p.ID)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no verified pairs checked")
	}
}

func TestPerfLabelsMatchThreshold(t *testing.T) {
	b := bench(t)
	for _, ex := range b.Perf {
		if ex.Costly != (ex.ElapsedMS > 200) {
			t.Errorf("%s: costly=%v but elapsed=%.1f", ex.ID, ex.Costly, ex.ElapsedMS)
		}
	}
}

func TestExplainFactsPresent(t *testing.T) {
	b := bench(t)
	for _, ex := range b.Explain {
		if len(ex.Facts.Tables) == 0 && len(ex.Facts.Columns) == 0 {
			t.Errorf("%s: no facts extracted", ex.ID)
		}
		if ex.Description == "" {
			t.Errorf("%s: no reference description", ex.ID)
		}
	}
}

// End-to-end: run every task for one model and sanity-check aggregate
// metrics and breakdowns.
func TestRunnersEndToEnd(t *testing.T) {
	b := bench(t)
	k := sim.NewKnowledge(b.SchemasByDataset())
	client, err := sim.New("GPT4", k)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	syn, err := Run(ctx, client, SyntaxTask, b.Syntax[SDSS])
	if err != nil {
		t.Fatal(err)
	}
	if conf := EvalSyntaxBinary(syn); conf.F1() < 0.85 {
		t.Errorf("GPT4 syntax F1 = %.2f, expected near paper's 0.97", conf.F1())
	}
	if mc := EvalSyntaxType(syn); mc.WeightedF1() < 0.7 {
		t.Errorf("GPT4 syntax type F1 = %.2f", mc.WeightedF1())
	}
	if rates := SyntaxFNRateByType(syn); len(rates) == 0 {
		t.Error("no FN rates")
	}

	tok, err := Run(ctx, client, TokensTask, b.Tokens[SDSS])
	if err != nil {
		t.Fatal(err)
	}
	if conf := EvalTokenBinary(tok); conf.F1() < 0.9 {
		t.Errorf("GPT4 token F1 = %.2f", conf.F1())
	}
	loc := EvalTokenLocation(tok)
	if loc.N() == 0 || loc.HitRate() <= 0 {
		t.Errorf("location metrics empty: %+v", loc)
	}

	eq, err := Run(ctx, client, EquivTask, b.Equiv[SDSS])
	if err != nil {
		t.Fatal(err)
	}
	if conf := EvalEquivBinary(eq); conf.Recall() < 0.9 {
		t.Errorf("GPT4 equiv recall = %.2f, paper reports ~1.0", conf.Recall())
	}

	pf, err := Run(ctx, client, PerfTask, b.Perf)
	if err != nil {
		t.Fatal(err)
	}
	if conf := EvalPerf(pf); conf.F1() < 0.6 {
		t.Errorf("GPT4 perf F1 = %.2f", conf.F1())
	}
	bd := PerfBreakdown(pf, func(ex PerfExample) float64 { return float64(ex.Props.WordCount) })
	if bd == nil {
		t.Error("nil breakdown")
	}

	exps, err := Run(ctx, client, ExplainTask, b.Explain[:20])
	if err != nil {
		t.Fatal(err)
	}
	if cov := MeanCoverage(exps); cov < 0.7 {
		t.Errorf("GPT4 coverage = %.2f", cov)
	}
}

func TestTaskCatalogMatchesTable1(t *testing.T) {
	if len(TaskCatalog) != 5 {
		t.Fatalf("tasks = %d", len(TaskCatalog))
	}
	// Spot checks from Table 1.
	if TaskCatalog[0].Skills[Recognition] != 2 {
		t.Error("syntax error must strongly probe recognition")
	}
	if TaskCatalog[3].Skills[Semantics] != 2 || TaskCatalog[3].Skills[Coherence] != 2 {
		t.Error("query equivalence must probe semantics and coherence")
	}
}

func TestTunePrompt(t *testing.T) {
	b := bench(t)
	k := sim.NewKnowledge(b.SchemasByDataset())
	client, _ := sim.New("GPT3.5", k)
	trial := b.Syntax[SDSS][:30]
	results, best, err := TunePrompt(context.Background(), client, trial)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 3 {
		t.Fatalf("variants tried = %d", len(results))
	}
	if !strings.HasPrefix(best.ID, "syntax_error/") {
		t.Errorf("best = %q", best.ID)
	}
	for _, r := range results {
		if r.Accuracy < 0 || r.Accuracy > 1 {
			t.Errorf("accuracy out of range: %+v", r)
		}
		if r.Accuracy > results[0].Accuracy && best.ID == results[0].Template.ID {
			t.Error("tuner did not pick the best variant")
		}
	}
}
