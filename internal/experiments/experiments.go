// Package experiments maps every table and figure in the paper's evaluation
// to a runnable experiment that regenerates it from the benchmark. The
// registry backs the sqlbench CLI and the root benchmark harness.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/llm/sim"
	"repro/internal/prompt"
)

// Env carries the shared state experiments run against: the benchmark, the
// model registry, and memoized per-model task results.
type Env struct {
	Bench    *core.Benchmark
	Registry *llm.Registry
	Models   []string

	mu      sync.Mutex
	syntax  map[string][]core.SyntaxResult
	tokens  map[string][]core.TokenResult
	equivs  map[string][]core.EquivResult
	perf    map[string][]core.PerfResult
	explain map[string][]core.ExplainResult
}

// NewEnv builds the benchmark and the five simulated models.
func NewEnv(seed int64, verifyEquiv bool) (*Env, error) {
	bench, err := core.Build(core.BuildConfig{Seed: seed, VerifyEquivalences: verifyEquiv})
	if err != nil {
		return nil, fmt.Errorf("building benchmark: %w", err)
	}
	knowledge := sim.NewKnowledge(bench.SchemasByDataset())
	return &Env{
		Bench:    bench,
		Registry: sim.Registry(knowledge),
		Models:   llm.ModelNames,
		syntax:   map[string][]core.SyntaxResult{},
		tokens:   map[string][]core.TokenResult{},
		equivs:   map[string][]core.EquivResult{},
		perf:     map[string][]core.PerfResult{},
		explain:  map[string][]core.ExplainResult{},
	}, nil
}

func key(model, ds string) string { return model + "\x00" + ds }

// SyntaxResults runs (or returns cached) syntax_error results.
func (e *Env) SyntaxResults(model, ds string) ([]core.SyntaxResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	k := key(model, ds)
	if res, ok := e.syntax[k]; ok {
		return res, nil
	}
	client, err := e.Registry.Get(model)
	if err != nil {
		return nil, err
	}
	res, err := core.RunSyntax(context.Background(), client, prompt.Default(prompt.SyntaxError), e.Bench.Syntax[ds])
	if err != nil {
		return nil, err
	}
	e.syntax[k] = res
	return res, nil
}

// TokenResults runs (or returns cached) miss_token results.
func (e *Env) TokenResults(model, ds string) ([]core.TokenResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	k := key(model, ds)
	if res, ok := e.tokens[k]; ok {
		return res, nil
	}
	client, err := e.Registry.Get(model)
	if err != nil {
		return nil, err
	}
	res, err := core.RunTokens(context.Background(), client, prompt.Default(prompt.MissToken), e.Bench.Tokens[ds])
	if err != nil {
		return nil, err
	}
	e.tokens[k] = res
	return res, nil
}

// EquivResults runs (or returns cached) query_equiv results.
func (e *Env) EquivResults(model, ds string) ([]core.EquivResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	k := key(model, ds)
	if res, ok := e.equivs[k]; ok {
		return res, nil
	}
	client, err := e.Registry.Get(model)
	if err != nil {
		return nil, err
	}
	res, err := core.RunEquiv(context.Background(), client, prompt.Default(prompt.QueryEquiv), e.Bench.Equiv[ds])
	if err != nil {
		return nil, err
	}
	e.equivs[k] = res
	return res, nil
}

// PerfResults runs (or returns cached) performance_pred results (SDSS only).
func (e *Env) PerfResults(model string) ([]core.PerfResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if res, ok := e.perf[model]; ok {
		return res, nil
	}
	client, err := e.Registry.Get(model)
	if err != nil {
		return nil, err
	}
	res, err := core.RunPerf(context.Background(), client, prompt.Default(prompt.PerfPred), e.Bench.Perf)
	if err != nil {
		return nil, err
	}
	e.perf[model] = res
	return res, nil
}

// ExplainResults runs (or returns cached) query_exp results (Spider only).
func (e *Env) ExplainResults(model string) ([]core.ExplainResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if res, ok := e.explain[model]; ok {
		return res, nil
	}
	client, err := e.Registry.Get(model)
	if err != nil {
		return nil, err
	}
	res, err := core.RunExplain(context.Background(), client, prompt.Default(prompt.QueryExp), e.Bench.Explain)
	if err != nil {
		return nil, err
	}
	e.explain[model] = res
	return res, nil
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(env *Env, w io.Writer) error
}

var registry = map[string]Experiment{}
var registryOrder []string

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
	registryOrder = append(registryOrder, e.ID)
}

// All returns every experiment in registration (paper) order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, id := range registryOrder {
		out = append(out, registry[id])
	}
	return out
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs returns all experiment IDs, sorted.
func IDs() []string {
	out := append([]string{}, registryOrder...)
	sort.Strings(out)
	return out
}
