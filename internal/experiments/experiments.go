// Package experiments maps every table and figure in the paper's evaluation
// to a runnable experiment that regenerates it from the benchmark. The
// registry backs the sqlbench CLI and the root benchmark harness.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/llm/httpllm"
	"repro/internal/llm/sim"
	"repro/internal/prompt"
	"repro/internal/runner"
)

// Env carries the shared state experiments run against: the benchmark, the
// model registry, and memoized per-model task results. Result memoization is
// per-key singleflight: distinct model×dataset cells compute concurrently,
// duplicate requests for the same cell coalesce onto one computation, and
// completed cells are served from cache. An Env is safe for concurrent use.
type Env struct {
	Bench    *core.Benchmark
	Registry *llm.Registry
	Models   []string
	// Stats accumulates per-model request/error/token counters and latency
	// histograms across every task run (the Instrument middleware wraps each
	// registered client).
	Stats *llm.Stats
	// Parallel bounds the worker pool used for example fan-out inside each
	// task run and for the model×dataset prefetch in the experiment
	// definitions. 0 means GOMAXPROCS; 1 reproduces the sequential pipeline.
	Parallel int

	syntax  runner.Flight[string, []core.SyntaxResult]
	tokens  runner.Flight[string, []core.TokenResult]
	equivs  runner.Flight[string, []core.EquivResult]
	perf    runner.Flight[string, []core.PerfResult]
	explain runner.Flight[string, []core.ExplainResult]
}

// Config controls environment construction.
type Config struct {
	// Seed drives benchmark generation (0 means 1).
	Seed int64
	// VerifyEquivalences engine-checks generated equivalence pairs.
	VerifyEquivalences bool
	// Parallel is the worker budget for the build and all task runs
	// (0 = GOMAXPROCS, 1 = sequential).
	Parallel int
	// Models optionally replaces the default five simulated models with a
	// config-driven set (the binaries' -models flag): each spec names a
	// provider ("sim" over this environment's knowledge, or "http" for an
	// OpenAI-compatible endpoint) plus its middleware stack.
	Models []llm.Spec
	// Stats optionally shares one telemetry sink across environments (the
	// serve layer passes its own so /v1/metrics aggregates every env); nil
	// means a fresh per-environment Stats.
	Stats *llm.Stats
	// ClientCache optionally shares spec-built clients — and the middleware
	// state that must be global to be meaningful: rate-limit buckets,
	// in-flight semaphores, response caches — across environments. sim specs
	// are always built per environment, since the simulators resolve against
	// the environment's own knowledge context.
	ClientCache *llm.ClientCache
}

// Providers returns the spec provider factories an environment's registry
// builds from: the calibrated simulators over the given knowledge context,
// and the OpenAI-compatible HTTP client.
func Providers(k *sim.Knowledge) map[string]llm.Factory {
	return map[string]llm.Factory{
		"sim":  sim.Factory(k),
		"http": httpllm.Factory,
	}
}

// NewEnvConfig builds the benchmark and the model registry — the five
// calibrated simulators by default, or the configured spec set — with
// explicit parallelism control. Every client is wrapped with llm.Instrument
// so Env.Stats reports usage regardless of backend.
func NewEnvConfig(cfg Config) (*Env, error) {
	bench, err := core.Build(core.BuildConfig{
		Seed:               cfg.Seed,
		VerifyEquivalences: cfg.VerifyEquivalences,
		Parallel:           cfg.Parallel,
	})
	if err != nil {
		return nil, fmt.Errorf("building benchmark: %w", err)
	}
	knowledge := sim.NewKnowledge(bench.SchemasByDataset())
	stats := cfg.Stats
	if stats == nil {
		stats = llm.NewStats()
	}
	reg := llm.NewRegistry()
	models := llm.ModelNames
	if len(cfg.Models) == 0 {
		for _, name := range llm.ModelNames {
			m, err := sim.New(name, knowledge)
			if err != nil {
				return nil, fmt.Errorf("building simulator %s: %w", name, err)
			}
			reg.Register(llm.Chain(m, llm.Instrument(stats)))
		}
	} else {
		providers := Providers(knowledge)
		models = make([]string, 0, len(cfg.Models))
		for _, spec := range cfg.Models {
			var c llm.Client
			if cfg.ClientCache != nil && spec.Provider != "sim" {
				c, err = cfg.ClientCache.Build(spec, providers, stats)
			} else {
				c, err = llm.BuildClient(spec, providers, stats)
			}
			if err != nil {
				return nil, fmt.Errorf("building model registry: %w", err)
			}
			reg.Register(c)
			models = append(models, spec.Name)
		}
	}
	return &Env{
		Bench:    bench,
		Registry: reg,
		Models:   models,
		Stats:    stats,
		Parallel: cfg.Parallel,
	}, nil
}

// NewEnv builds the benchmark and the five simulated models with the default
// worker budget (GOMAXPROCS).
func NewEnv(seed int64, verifyEquiv bool) (*Env, error) {
	return NewEnvConfig(Config{Seed: seed, VerifyEquivalences: verifyEquiv})
}

// ctx returns the context task runs execute under, carrying the worker
// budget for runner.Map fan-out inside core.Run*.
func (e *Env) ctx() context.Context {
	return runner.WithParallelism(context.Background(), e.Parallel)
}

func key(model, ds string) string { return model + "\x00" + ds }

// SyntaxResults runs (or returns cached) syntax_error results.
func (e *Env) SyntaxResults(model, ds string) ([]core.SyntaxResult, error) {
	return e.syntax.Do(key(model, ds), func() ([]core.SyntaxResult, error) {
		client, err := e.Registry.Get(model)
		if err != nil {
			return nil, err
		}
		return core.RunSyntax(e.ctx(), client, prompt.Default(prompt.SyntaxError), e.Bench.Syntax[ds])
	})
}

// TokenResults runs (or returns cached) miss_token results.
func (e *Env) TokenResults(model, ds string) ([]core.TokenResult, error) {
	return e.tokens.Do(key(model, ds), func() ([]core.TokenResult, error) {
		client, err := e.Registry.Get(model)
		if err != nil {
			return nil, err
		}
		return core.RunTokens(e.ctx(), client, prompt.Default(prompt.MissToken), e.Bench.Tokens[ds])
	})
}

// EquivResults runs (or returns cached) query_equiv results.
func (e *Env) EquivResults(model, ds string) ([]core.EquivResult, error) {
	return e.equivs.Do(key(model, ds), func() ([]core.EquivResult, error) {
		client, err := e.Registry.Get(model)
		if err != nil {
			return nil, err
		}
		return core.RunEquiv(e.ctx(), client, prompt.Default(prompt.QueryEquiv), e.Bench.Equiv[ds])
	})
}

// PerfResults runs (or returns cached) performance_pred results (SDSS only).
func (e *Env) PerfResults(model string) ([]core.PerfResult, error) {
	return e.perf.Do(model, func() ([]core.PerfResult, error) {
		client, err := e.Registry.Get(model)
		if err != nil {
			return nil, err
		}
		return core.RunPerf(e.ctx(), client, prompt.Default(prompt.PerfPred), e.Bench.Perf)
	})
}

// ExplainResults runs (or returns cached) query_exp results (Spider only).
func (e *Env) ExplainResults(model string) ([]core.ExplainResult, error) {
	return e.explain.Do(model, func() ([]core.ExplainResult, error) {
		client, err := e.Registry.Get(model)
		if err != nil {
			return nil, err
		}
		return core.RunExplain(e.ctx(), client, prompt.Default(prompt.QueryExp), e.Bench.Explain)
	})
}

// cell identifies one model×dataset unit of work in a prefetch.
type cell struct{ model, ds string }

// prefetch computes the given cells concurrently (bounded by Env.Parallel)
// so the serial rendering loops that follow hit warm caches. Cells already
// cached cost nothing; duplicate in-flight cells coalesce.
func (e *Env) prefetch(cells []cell, fetch func(cell) error) error {
	_, err := runner.Map(e.ctx(), 0, cells, func(_ context.Context, _ int, c cell) (struct{}, error) {
		return struct{}{}, fetch(c)
	})
	return err
}

// cross builds the model×dataset cell grid.
func cross(models, datasets []string) []cell {
	cells := make([]cell, 0, len(models)*len(datasets))
	for _, m := range models {
		for _, ds := range datasets {
			cells = append(cells, cell{m, ds})
		}
	}
	return cells
}

// warmSyntax precomputes syntax_error cells for all models over datasets.
func (e *Env) warmSyntax(datasets ...string) error {
	return e.prefetch(cross(e.Models, datasets), func(c cell) error {
		_, err := e.SyntaxResults(c.model, c.ds)
		return err
	})
}

// warmTokens precomputes miss_token cells for all models over datasets.
func (e *Env) warmTokens(datasets ...string) error {
	return e.prefetch(cross(e.Models, datasets), func(c cell) error {
		_, err := e.TokenResults(c.model, c.ds)
		return err
	})
}

// warmEquiv precomputes query_equiv cells for all models over datasets.
func (e *Env) warmEquiv(datasets ...string) error {
	return e.prefetch(cross(e.Models, datasets), func(c cell) error {
		_, err := e.EquivResults(c.model, c.ds)
		return err
	})
}

// modelCells wraps model-only work (tasks with a fixed dataset) as cells.
func modelCells(models []string) []cell {
	cells := make([]cell, len(models))
	for i, m := range models {
		cells[i] = cell{model: m}
	}
	return cells
}

// warmPerf precomputes performance_pred results for the given models.
func (e *Env) warmPerf(models ...string) error {
	return e.prefetch(modelCells(models), func(c cell) error {
		_, err := e.PerfResults(c.model)
		return err
	})
}

// warmExplain precomputes query_exp results for the given models.
func (e *Env) warmExplain(models ...string) error {
	return e.prefetch(modelCells(models), func(c cell) error {
		_, err := e.ExplainResults(c.model)
		return err
	})
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(env *Env, w io.Writer) error
}

var registry = map[string]Experiment{}
var registryOrder []string

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
	registryOrder = append(registryOrder, e.ID)
}

// All returns every experiment in registration (paper) order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, id := range registryOrder {
		out = append(out, registry[id])
	}
	return out
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs returns all experiment IDs, sorted.
func IDs() []string {
	out := append([]string{}, registryOrder...)
	sort.Strings(out)
	return out
}
