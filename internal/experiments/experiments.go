// Package experiments maps every table and figure in the paper's evaluation
// to a runnable experiment that regenerates it from the benchmark. The
// registry backs the sqlbench CLI and the root benchmark harness.
package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/llm/checkpoint"
	"repro/internal/llm/faultllm"
	"repro/internal/llm/httpllm"
	"repro/internal/llm/sim"
	"repro/internal/obs"
	"repro/internal/runner"
)

// Env carries the shared state experiments run against: the benchmark, the
// model registry, and memoized per-task results. Result memoization is
// per-key singleflight over task×model×dataset cells: distinct cells
// compute concurrently, duplicate requests for the same cell coalesce onto
// one computation, and completed cells are served from cache. The cell grid
// is driven by the core task registry — any registered task gets cells with
// no Env changes. An Env is safe for concurrent use.
type Env struct {
	Bench    *core.Benchmark
	Registry *llm.Registry
	Models   []string
	// Stats accumulates per-model request/error/token counters and latency
	// histograms across every task run (the Instrument middleware wraps each
	// registered client).
	Stats *llm.Stats
	// Parallel bounds the worker pool used for example fan-out inside each
	// task run and for the model×dataset prefetch in the experiment
	// definitions. 0 means GOMAXPROCS; 1 reproduces the sequential pipeline.
	Parallel int
	// ContinueOnError runs cells in partial-failure mode: an example whose
	// completion fails is recorded (see Failures) instead of aborting the
	// cell, and summaries report the failed count. MaxFailures bounds how
	// many failures a cell tolerates before aborting anyway (0 = unlimited).
	ContinueOnError bool
	MaxFailures     int

	// results caches boxed task results per task×model×dataset cell; typed
	// caches the unboxed form of the same cells so repeated typed accesses
	// (the per-figure experiments re-fetch cells constantly) don't re-assert
	// and reallocate per call.
	results runner.Flight[string, []any]
	typed   runner.Flight[string, any]

	// stores holds the open checkpoint stores (one per model) when the
	// environment was built with a CheckpointDir; Close releases them.
	stores []*checkpoint.Store

	// failMu guards failures: per-cell failed-example records accumulated
	// by partial-failure runs.
	failMu   sync.Mutex
	failures map[string][]CellFailure

	// traceCtx carries the environment's tracer and run span (when one was
	// configured) into every task run; runSpan is the root "run" span Close
	// ends.
	traceCtx context.Context
	runSpan  *obs.Span
}

// CellFailure records one failed example of a partial-failure cell run.
type CellFailure struct {
	// Index is the example's position in the cell; ID its stable id.
	Index int
	ID    string
	// Err is the completion error message.
	Err string
}

// Close releases the environment's checkpoint stores, if any, and ends the
// environment's root trace span. Safe to call repeatedly and on
// environments built without checkpointing or tracing.
func (e *Env) Close() error {
	e.runSpan.End() // idempotent, nil-safe
	var first error
	for _, s := range e.stores {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	e.stores = nil
	return first
}

// Config controls environment construction.
type Config struct {
	// Seed drives benchmark generation (0 means 1).
	Seed int64
	// VerifyEquivalences engine-checks generated equivalence pairs.
	VerifyEquivalences bool
	// NoOptimize turns the engine's plan optimizer off during equivalence
	// verification (the -no-optimize flag). Artifacts are byte-identical
	// either way; the switch exists for ablation and differential testing.
	NoOptimize bool
	// Parallel is the worker budget for the build and all task runs
	// (0 = GOMAXPROCS, 1 = sequential).
	Parallel int
	// StoreDir persists the durable stores backing the state task's oracle
	// under this directory (one store per dataset) instead of building them
	// in throwaway temp directories. A rerun over the same directory
	// recovers the stores from their WALs first — the crash-resilience
	// smoke kills a build mid-run and rebuilds over the survivors.
	StoreDir string
	// StorePoolPages caps the oracle stores' buffer pools, in pages
	// (0 = store default). Small values force eviction during the build,
	// exercising datasets larger than the pool.
	StorePoolPages int
	// Models optionally replaces the default five simulated models with a
	// config-driven set (the binaries' -models flag): each spec names a
	// provider ("sim" over this environment's knowledge, or "http" for an
	// OpenAI-compatible endpoint) plus its middleware stack.
	Models []llm.Spec
	// Stats optionally shares one telemetry sink across environments (the
	// serve layer passes its own so /v1/metrics aggregates every env); nil
	// means a fresh per-environment Stats.
	Stats *llm.Stats
	// ClientCache optionally shares spec-built clients — and the middleware
	// state that must be global to be meaningful: rate-limit buckets,
	// in-flight semaphores, response caches — across environments. sim specs
	// are always built per environment, since the simulators resolve against
	// the environment's own knowledge context.
	ClientCache *llm.ClientCache
	// CheckpointDir enables checkpoint/resume: every model's completed
	// responses append to <dir>/<model>.ndjson, and requests recorded there
	// replay without touching the backend. Grading is deterministic given
	// responses, so a resumed run's artifacts are byte-identical to an
	// uninterrupted run's. Empty means no checkpointing.
	CheckpointDir string
	// ContinueOnError runs every cell in partial-failure mode (see
	// Env.ContinueOnError); MaxFailures is the per-cell failure budget
	// (0 = unlimited).
	ContinueOnError bool
	MaxFailures     int
	// Tracer, when set, threads an obs tracer through the environment: the
	// benchmark build and every task cell, example, LLM attempt, and engine
	// execution report spans to it, rooted under one "run" span that
	// Env.Close ends. Nil disables tracing at zero cost.
	Tracer *obs.Tracer
}

// Providers returns the spec provider factories an environment's registry
// builds from: the calibrated simulators over the given knowledge context,
// and the OpenAI-compatible HTTP client. Every factory is wrapped with the
// faultllm harness, so a spec's fault_* fields inject deterministic chaos
// below the middleware stack regardless of provider (fault-free specs build
// the bare client).
func Providers(k *sim.Knowledge) map[string]llm.Factory {
	return map[string]llm.Factory{
		"sim":  faultllm.WrapFactory(sim.Factory(k)),
		"http": faultllm.WrapFactory(httpllm.Factory),
	}
}

// NewEnvConfig builds the benchmark and the model registry — the five
// calibrated simulators by default, or the configured spec set — with
// explicit parallelism control. Every client is wrapped with llm.Instrument
// so Env.Stats reports usage regardless of backend.
func NewEnvConfig(cfg Config) (*Env, error) {
	// Root the whole environment under one "run" span (ended by Env.Close)
	// so cells, examples, and engine executions nest under it. With no
	// tracer, traceCtx stays Background and every span below is a nil no-op.
	traceCtx := obs.With(context.Background(), cfg.Tracer)
	traceCtx, runSpan := obs.Start(traceCtx, "run")
	runSpan.SetInt("seed", cfg.Seed)

	buildCtx, buildSpan := obs.Start(traceCtx, "bench.build")
	bench, err := core.Build(core.BuildConfig{
		Seed:               cfg.Seed,
		VerifyEquivalences: cfg.VerifyEquivalences,
		Parallel:           cfg.Parallel,
		Ctx:                buildCtx,
		NoOptimize:         cfg.NoOptimize,
		StoreDir:           cfg.StoreDir,
		StorePoolPages:     cfg.StorePoolPages,
	})
	buildSpan.EndErr(err)
	if err != nil {
		runSpan.End()
		return nil, fmt.Errorf("building benchmark: %w", err)
	}
	knowledge := sim.NewKnowledge(bench.SchemasByDataset())
	stats := cfg.Stats
	if stats == nil {
		stats = llm.NewStats()
	}
	env := &Env{
		Stats:           stats,
		Parallel:        cfg.Parallel,
		ContinueOnError: cfg.ContinueOnError,
		MaxFailures:     cfg.MaxFailures,
		traceCtx:        traceCtx,
		runSpan:         runSpan,
	}
	// wrap attaches the checkpoint replay/record layer (outermost, above
	// even the cache, so resumed runs replay without re-counting stats or
	// re-spending rate tokens) when a checkpoint directory is configured.
	wrap := func(c llm.Client) (llm.Client, error) {
		if cfg.CheckpointDir == "" {
			return c, nil
		}
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("checkpoint dir: %w", err)
		}
		store, err := checkpoint.Open(filepath.Join(cfg.CheckpointDir, checkpoint.Filename(c.Name())))
		if err != nil {
			return nil, err
		}
		env.stores = append(env.stores, store)
		return llm.Chain(c, checkpoint.Middleware(store)), nil
	}
	reg := llm.NewRegistry()
	models := llm.ModelNames
	if len(cfg.Models) == 0 {
		for _, name := range llm.ModelNames {
			m, err := sim.New(name, knowledge)
			if err != nil {
				env.Close()
				return nil, fmt.Errorf("building simulator %s: %w", name, err)
			}
			c, err := wrap(llm.Chain(m, llm.Trace("llm.request"), llm.Instrument(stats)))
			if err != nil {
				env.Close()
				return nil, err
			}
			reg.Register(c)
		}
	} else {
		providers := Providers(knowledge)
		models = make([]string, 0, len(cfg.Models))
		for _, spec := range cfg.Models {
			var c llm.Client
			if cfg.ClientCache != nil && spec.Provider != "sim" {
				c, err = cfg.ClientCache.Build(spec, providers, stats)
			} else {
				c, err = llm.BuildClient(spec, providers, stats)
			}
			if err == nil {
				c, err = wrap(c)
			}
			if err != nil {
				env.Close()
				return nil, fmt.Errorf("building model registry: %w", err)
			}
			reg.Register(c)
			models = append(models, spec.Name)
		}
	}
	env.Bench = bench
	env.Registry = reg
	env.Models = models
	return env, nil
}

// NewEnv builds the benchmark and the five simulated models with the default
// worker budget (GOMAXPROCS).
func NewEnv(seed int64, verifyEquiv bool) (*Env, error) {
	return NewEnvConfig(Config{Seed: seed, VerifyEquivalences: verifyEquiv})
}

// ctx returns the context task runs execute under, carrying the worker
// budget for runner.Map fan-out inside core.Run* — and the environment's
// tracer and run span when tracing is on.
func (e *Env) ctx() context.Context {
	base := e.traceCtx
	if base == nil {
		base = context.Background()
	}
	return runner.WithParallelism(base, e.Parallel)
}

func key(task, model, ds string) string { return task + "\x00" + model + "\x00" + ds }

// Results runs (or returns cached) one task×model×dataset cell through the
// core registry's generic driver, returning the task's boxed results in
// example order. Unknown tasks and datasets the task has no cell for fail;
// ds "" selects the task's default (and only valid value for pinned tasks).
func (e *Env) Results(taskID, model, ds string) ([]any, error) {
	task, ok := core.TaskByID(taskID)
	if !ok {
		return nil, fmt.Errorf("unknown task %q (registered: %v)", taskID, core.TaskIDs())
	}
	if ds == "" {
		ds = task.DefaultDataset()
	}
	k := key(taskID, model, ds)
	return e.results.Do(k, func() ([]any, error) {
		client, err := e.Registry.Get(model)
		if err != nil {
			return nil, err
		}
		cell, ok := task.Cell(e.Bench, ds)
		if !ok {
			return nil, fmt.Errorf("task %s has no %q cell (datasets: %v)", taskID, ds, task.Datasets())
		}
		ctx, span := obs.Start(e.ctx(), "task.cell")
		if span != nil {
			span.SetString("task", taskID)
			span.SetString("model", model)
			span.SetString("dataset", ds)
			span.SetInt("examples", int64(len(cell)))
		}
		opts := core.RunOpts{ContinueOnError: e.ContinueOnError, MaxFailures: e.MaxFailures}
		out := make([]any, 0, len(cell))
		var failed []CellFailure
		err = task.RunStreamOpts(ctx, client, cell, opts, func(idx int, r any, err error) error {
			if err != nil {
				failed = append(failed, CellFailure{Index: idx, ID: cell[idx].ID, Err: err.Error()})
				return nil
			}
			out = append(out, r)
			return nil
		})
		if span != nil {
			span.SetInt("failed", int64(len(failed)))
		}
		span.EndErr(err)
		if err != nil {
			return nil, err
		}
		if len(failed) > 0 {
			e.failMu.Lock()
			if e.failures == nil {
				e.failures = make(map[string][]CellFailure)
			}
			e.failures[k] = failed
			e.failMu.Unlock()
		}
		return out, nil
	})
}

// Failures returns the failed-example records of one cell's partial run
// (nil when the cell ran clean or has not run). ds "" selects the task's
// default dataset, mirroring Results.
func (e *Env) Failures(taskID, model, ds string) []CellFailure {
	if task, ok := core.TaskByID(taskID); ok && ds == "" {
		ds = task.DefaultDataset()
	}
	e.failMu.Lock()
	defer e.failMu.Unlock()
	return append([]CellFailure{}, e.failures[key(taskID, model, ds)]...)
}

// FailedByModel aggregates recorded example failures per model across every
// cell run so far — the source of the failed column in sqlbench -stats.
func (e *Env) FailedByModel() map[string]int {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	out := make(map[string]int)
	for k, fs := range e.failures {
		parts := strings.SplitN(k, "\x00", 3)
		if len(parts) == 3 {
			out[parts[1]] += len(fs)
		}
	}
	return out
}

// Summary computes the generic accuracy summary of one task cell.
func (e *Env) Summary(taskID, model, ds string) (core.Summary, error) {
	task, ok := core.TaskByID(taskID)
	if !ok {
		return core.Summary{}, fmt.Errorf("unknown task %q", taskID)
	}
	rs, err := e.Results(taskID, model, ds)
	if err != nil {
		return core.Summary{}, err
	}
	s := task.Summarize(rs)
	s.Failed = len(e.Failures(taskID, model, ds))
	return s, nil
}

// typedResults unboxes a cached cell into the task's concrete result type —
// the bridge from the erased registry cells back to the typed evaluation
// aggregations the per-figure experiments use. The typed slice is memoized
// per cell, so repeated accesses cost a cache lookup, not a reallocation.
func typedResults[R any](e *Env, taskID, model, ds string) ([]R, error) {
	if task, ok := core.TaskByID(taskID); ok && ds == "" {
		ds = task.DefaultDataset()
	}
	out, err := e.typed.Do(key(taskID, model, ds), func() (any, error) {
		rs, err := e.Results(taskID, model, ds)
		if err != nil {
			return nil, err
		}
		out := make([]R, len(rs))
		for i, r := range rs {
			v, ok := r.(R)
			if !ok {
				return nil, fmt.Errorf("task %s results hold %T, not the requested type", taskID, r)
			}
			out[i] = v
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return out.([]R), nil
}

// Typed conveniences for the built-in tasks.

// SyntaxResults runs (or returns cached) syntax_error results.
func (e *Env) SyntaxResults(model, ds string) ([]core.SyntaxResult, error) {
	return typedResults[core.SyntaxResult](e, core.SyntaxTask.TaskID, model, ds)
}

// TokenResults runs (or returns cached) miss_token results.
func (e *Env) TokenResults(model, ds string) ([]core.TokenResult, error) {
	return typedResults[core.TokenResult](e, core.TokensTask.TaskID, model, ds)
}

// EquivResults runs (or returns cached) query_equiv results.
func (e *Env) EquivResults(model, ds string) ([]core.EquivResult, error) {
	return typedResults[core.EquivResult](e, core.EquivTask.TaskID, model, ds)
}

// PerfResults runs (or returns cached) performance_pred results (SDSS only).
func (e *Env) PerfResults(model string) ([]core.PerfResult, error) {
	return typedResults[core.PerfResult](e, core.PerfTask.TaskID, model, "")
}

// ExplainResults runs (or returns cached) query_exp results (Spider only).
func (e *Env) ExplainResults(model string) ([]core.ExplainResult, error) {
	return typedResults[core.ExplainResult](e, core.ExplainTask.TaskID, model, "")
}

// cell identifies one task×model×dataset unit of work in a prefetch.
type cell struct{ task, model, ds string }

// prefetch computes the given cells concurrently (bounded by Env.Parallel)
// so the serial rendering loops that follow hit warm caches. Cells already
// cached cost nothing; duplicate in-flight cells coalesce.
func (e *Env) prefetch(cells []cell) error {
	_, err := runner.Map(e.ctx(), 0, cells, func(_ context.Context, _ int, c cell) (struct{}, error) {
		_, err := e.Results(c.task, c.model, c.ds)
		return struct{}{}, err
	})
	return err
}

// cross builds one task's model×dataset cell grid. nil datasets means the
// task's full dataset list from the registry.
func cross(taskID string, models, datasets []string) []cell {
	if datasets == nil {
		if task, ok := core.TaskByID(taskID); ok {
			datasets = task.Datasets()
		}
	}
	cells := make([]cell, 0, len(models)*len(datasets))
	for _, m := range models {
		for _, ds := range datasets {
			cells = append(cells, cell{taskID, m, ds})
		}
	}
	return cells
}

// warm precomputes one task's cells for a model×dataset grid (nil datasets
// = every dataset the registry lists for the task).
func (e *Env) warm(taskID string, models, datasets []string) error {
	return e.prefetch(cross(taskID, models, datasets))
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(env *Env, w io.Writer) error
}

var registry = map[string]Experiment{}
var registryOrder []string

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
	registryOrder = append(registryOrder, e.ID)
}

// All returns every experiment in registration (paper) order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, id := range registryOrder {
		out = append(out, registry[id])
	}
	return out
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs returns all experiment IDs, sorted.
func IDs() []string {
	out := append([]string{}, registryOrder...)
	sort.Strings(out)
	return out
}
