package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

// One environment for the whole package (verification off for speed).
var testEnv *Env

func env(t *testing.T) *Env {
	t.Helper()
	if testEnv == nil {
		e, err := NewEnv(1, false)
		if err != nil {
			t.Fatalf("NewEnv: %v", err)
		}
		testEnv = e
	}
	return testEnv
}

func TestRegistryComplete(t *testing.T) {
	wantIDs := []string{
		"table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5",
		"table3", "fig6", "fig7", "table4", "fig8", "fig9", "table5",
		"table6", "fig10", "table7", "fig11", "fig12", "casestudy",
		"ext-fewshot", "ext-tasks",
	}
	for _, id := range wantIDs {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s missing", id)
		}
	}
	if len(All()) != len(wantIDs) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(wantIDs))
	}
	if _, ok := ByID("nosuch"); ok {
		t.Error("ByID(nosuch) should fail")
	}
	if len(IDs()) != len(wantIDs) {
		t.Errorf("IDs() = %d", len(IDs()))
	}
}

// Every registered experiment must run cleanly and produce output.
func TestAllExperimentsRun(t *testing.T) {
	e := env(t)
	for _, exp := range All() {
		var buf bytes.Buffer
		if err := exp.Run(e, &buf); err != nil {
			t.Fatalf("%s: %v", exp.ID, err)
		}
		if buf.Len() < 40 {
			t.Errorf("%s produced only %d bytes", exp.ID, buf.Len())
		}
	}
}

// Determinism: running the same experiment twice yields identical bytes.
func TestExperimentsDeterministic(t *testing.T) {
	e := env(t)
	for _, id := range []string{"table3", "table6", "table7", "fig5", "fig7"} {
		exp, _ := ByID(id)
		var a, b bytes.Buffer
		if err := exp.Run(e, &a); err != nil {
			t.Fatal(err)
		}
		if err := exp.Run(e, &b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("%s output differs across runs", id)
		}
	}
}

// The headline finding must reproduce: GPT4's F1 tops every dataset column
// of table 3, and Gemini ranks last.
func TestTable3HeadlineShape(t *testing.T) {
	e := env(t)
	for _, ds := range []string{"SDSS", "SQLShare", "Join-Order"} {
		f1 := map[string]float64{}
		for _, model := range e.Models {
			res, err := e.SyntaxResults(model, ds)
			if err != nil {
				t.Fatal(err)
			}
			f1[model] = core.EvalSyntaxBinary(res).F1()
		}
		for model, v := range f1 {
			if model == "GPT4" {
				continue
			}
			if v > f1["GPT4"]+1e-9 {
				t.Errorf("%s: %s F1 %.3f beats GPT4's %.3f", ds, model, v, f1["GPT4"])
			}
		}
		if f1["Gemini"] > f1["GPT3.5"] || f1["Gemini"] > f1["MistralAI"] {
			t.Errorf("%s: Gemini F1 %.3f is not last (gpt3.5 %.3f, mistral %.3f)",
				ds, f1["Gemini"], f1["GPT3.5"], f1["MistralAI"])
		}
	}
}

// Figure 5's output must show the bimodal split with an empty mid-band.
func TestFig5Bimodal(t *testing.T) {
	e := env(t)
	exp, _ := ByID("fig5")
	var buf bytes.Buffer
	if err := exp.Run(e, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, band := range []string{"100-200", "200-300", "300-400", "400-500"} {
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, band) && !strings.Contains(line, "   0  ") {
				t.Errorf("mid band %s not empty: %s", band, line)
			}
		}
	}
}

// Recall exceeds precision in performance_pred for every model except
// possibly Gemini — the paper's positive-bias takeaway.
func TestPerfPositiveBias(t *testing.T) {
	e := env(t)
	biased := 0
	for _, model := range e.Models {
		res, err := e.PerfResults(model)
		if err != nil {
			t.Fatal(err)
		}
		var tp, fp, fn int
		for _, r := range res {
			switch {
			case r.Example.Costly && r.PredCostly:
				tp++
			case !r.Example.Costly && r.PredCostly:
				fp++
			case r.Example.Costly && !r.PredCostly:
				fn++
			}
		}
		prec := float64(tp) / float64(tp+fp)
		rec := float64(tp) / float64(tp+fn)
		if rec > prec {
			biased++
		}
	}
	if biased < 3 {
		t.Errorf("only %d/5 models show positive bias; paper reports it as general", biased)
	}
}
