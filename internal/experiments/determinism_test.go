package experiments

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// TestParallelismDoesNotChangeOutput is the pipeline's core determinism
// guarantee: every registered experiment must produce byte-identical output
// whether the environment runs sequentially (parallel=1) or on a worker pool
// (parallel=8). Both environments build with equivalence verification on, so
// the parallel benchmark build and the checker's seed fan-out are covered
// too, not just the model task runs.
func TestParallelismDoesNotChangeOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two verified environments")
	}
	seq, err := NewEnvConfig(Config{Seed: 1, VerifyEquivalences: true, Parallel: 1})
	if err != nil {
		t.Fatalf("sequential env: %v", err)
	}
	par, err := NewEnvConfig(Config{Seed: 1, VerifyEquivalences: true, Parallel: 8})
	if err != nil {
		t.Fatalf("parallel env: %v", err)
	}

	// The benchmarks themselves must match before any experiment runs.
	for _, ds := range core.TaskDatasets {
		if len(seq.Bench.Syntax[ds]) == 0 {
			t.Fatalf("%s syntax dataset is empty", ds)
		}
		if len(seq.Bench.Syntax[ds]) != len(par.Bench.Syntax[ds]) {
			t.Fatalf("%s syntax dataset size differs: %d vs %d",
				ds, len(seq.Bench.Syntax[ds]), len(par.Bench.Syntax[ds]))
		}
		if len(seq.Bench.Equiv[ds]) != len(par.Bench.Equiv[ds]) {
			t.Fatalf("%s equiv dataset size differs: %d vs %d",
				ds, len(seq.Bench.Equiv[ds]), len(par.Bench.Equiv[ds]))
		}
		for i, ex := range seq.Bench.Equiv[ds] {
			pex := par.Bench.Equiv[ds][i]
			if ex.SQL1 != pex.SQL1 || ex.SQL2 != pex.SQL2 || ex.Equivalent != pex.Equivalent || ex.Type != pex.Type {
				t.Fatalf("%s equiv pair %d differs between sequential and parallel build", ds, i)
			}
		}
	}

	for _, exp := range All() {
		var a, b bytes.Buffer
		if err := exp.Run(seq, &a); err != nil {
			t.Fatalf("%s (parallel=1): %v", exp.ID, err)
		}
		if err := exp.Run(par, &b); err != nil {
			t.Fatalf("%s (parallel=8): %v", exp.ID, err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: output differs between parallel=1 and parallel=8 (%d vs %d bytes)",
				exp.ID, a.Len(), b.Len())
		}
	}
}
