package experiments

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/llm/faultllm"
	"repro/internal/prompt"
)

// TestPartialRunMatchesFaultPlan is the end-to-end chaos guarantee: under a
// deterministic 10% fault plan, a continue-on-error cell run completes with
// zero aborts, and the failed examples are exactly the ones the plan names
// — no more (spurious failures), no fewer (silently dropped errors).
func TestPartialRunMatchesFaultPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("builds an environment")
	}
	plan := faultllm.Plan{Seed: 7, ErrorRate: 0.10}
	env, err := NewEnvConfig(Config{
		Seed:     1,
		Parallel: 8,
		Models: []llm.Spec{{
			Name: llm.GPT4, Provider: "sim",
			FaultRate: plan.ErrorRate, FaultSeed: plan.Seed,
		}},
		ContinueOnError: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	taskID := core.SyntaxTask.TaskID
	ds := core.SyntaxTask.DefaultDataset
	cell := core.SyntaxTask.Cell(env.Bench, ds)
	if len(cell) == 0 {
		t.Fatal("empty cell")
	}
	// The plan is pure, so the expected failure set is computable up front
	// from the exact prompts the driver will issue.
	tpl := prompt.Default(core.SyntaxTask.PromptTask)
	expected := map[string]bool{}
	for _, ex := range cell {
		req := llm.NewRequest(core.SyntaxTask.Render(tpl, ex))
		if plan.Decide(llm.GPT4, req).Fail {
			expected[core.SyntaxTask.ExampleID(ex)] = true
		}
	}
	if len(expected) == 0 {
		t.Fatalf("plan fails nothing over %d examples; pick a different seed", len(cell))
	}

	results, err := env.Results(taskID, llm.GPT4, ds)
	if err != nil {
		t.Fatalf("partial run aborted: %v", err)
	}
	failures := env.Failures(taskID, llm.GPT4, ds)
	if len(results)+len(failures) != len(cell) {
		t.Fatalf("attempted %d+%d examples, cell has %d", len(results), len(failures), len(cell))
	}
	got := map[string]bool{}
	for _, f := range failures {
		if f.Err == "" {
			t.Errorf("failure %s has no error message", f.ID)
		}
		got[f.ID] = true
	}
	if !reflect.DeepEqual(got, expected) {
		t.Errorf("failed set diverges from plan: got %d failures, plan names %d", len(got), len(expected))
	}

	sum, err := env.Summary(taskID, llm.GPT4, ds)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != len(expected) || sum.N != len(cell)-len(expected) {
		t.Errorf("summary N=%d Failed=%d, want N=%d Failed=%d",
			sum.N, sum.Failed, len(cell)-len(expected), len(expected))
	}
}

// TestCheckpointResumeByteIdentical drives the resume guarantee end to end:
// a run interrupted by faults leaves a partial checkpoint; resuming against
// it replays recorded responses (never re-querying the backend for them)
// and produces results identical to a never-interrupted run.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds three environments")
	}
	dir := t.TempDir()
	taskID := core.SyntaxTask.TaskID
	spec := llm.Spec{Name: llm.GPT4, Provider: "sim"}

	// Uninterrupted baseline, no checkpointing.
	baseEnv, err := NewEnvConfig(Config{Seed: 1, Parallel: 8, Models: []llm.Spec{spec}})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := baseEnv.Results(taskID, llm.GPT4, "")
	if err != nil {
		t.Fatal(err)
	}

	// First attempt: 30% of requests fail under a deterministic plan, the
	// run continues past them, and successes land in the checkpoint.
	faulty := spec
	faulty.FaultRate = 0.3
	faulty.FaultSeed = 11
	firstEnv, err := NewEnvConfig(Config{
		Seed: 1, Parallel: 8,
		Models:          []llm.Spec{faulty},
		ContinueOnError: true,
		CheckpointDir:   dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := firstEnv.Results(taskID, llm.GPT4, ""); err != nil {
		t.Fatalf("interrupted run aborted: %v", err)
	}
	failed := len(firstEnv.Failures(taskID, llm.GPT4, ""))
	if failed == 0 {
		t.Fatal("fault plan failed nothing; resume would be trivial")
	}
	if err := firstEnv.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: same checkpoint dir, faults gone (the outage ended).
	resumeEnv, err := NewEnvConfig(Config{
		Seed: 1, Parallel: 8,
		Models:        []llm.Spec{spec},
		CheckpointDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resumeEnv.Close()
	resumed, err := resumeEnv.Results(taskID, llm.GPT4, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, baseline) {
		t.Errorf("resumed results diverge from uninterrupted run (%d vs %d results)", len(resumed), len(baseline))
	}
	// Only the previously-failed examples may touch the backend on resume:
	// the checkpoint layer sits above Instrument, so replayed hits are
	// invisible to stats.
	if got := resumeEnv.Stats.Model(llm.GPT4).Requests.Load(); got != int64(failed) {
		t.Errorf("resume issued %d backend requests, want %d (one per previously-failed example)", got, failed)
	}
}
