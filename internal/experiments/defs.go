package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/analyze"
	"repro/internal/core"
	"repro/internal/mutate"
	promptpkg "repro/internal/prompt"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/semcheck"
	"repro/internal/stats"
)

func init() {
	register(Experiment{ID: "table1", Title: "Table 1: Skill-to-SQL task mapping", Run: runTable1})
	register(Experiment{ID: "table2", Title: "Table 2: Workload statistics overview", Run: runTable2})
	register(Experiment{ID: "fig1", Title: "Figure 1: SDSS statistics", Run: histExperiment(core.SDSS)})
	register(Experiment{ID: "fig2", Title: "Figure 2: SQLShare statistics", Run: histExperiment(core.SQLShare)})
	register(Experiment{ID: "fig3", Title: "Figure 3: Join-Order statistics", Run: histExperiment(core.JoinOrder)})
	register(Experiment{ID: "fig4", Title: "Figure 4: Pairwise property correlations", Run: runFig4})
	register(Experiment{ID: "fig5", Title: "Figure 5: Elapsed time of sampled SDSS queries", Run: runFig5})
	register(Experiment{ID: "table3", Title: "Table 3: syntax_error and syntax_error_type", Run: runTable3})
	register(Experiment{ID: "fig6", Title: "Figure 6: word_count vs outcome in syntax_error (SDSS)", Run: runFig6})
	register(Experiment{ID: "fig7", Title: "Figure 7: FN rate by syntax error type", Run: runFig7})
	register(Experiment{ID: "table4", Title: "Table 4: miss_token and miss_token_type", Run: runTable4})
	register(Experiment{ID: "fig8", Title: "Figure 8: failure vs properties in miss_token (SQLShare)", Run: runFig8})
	register(Experiment{ID: "fig9", Title: "Figure 9: FN rate by missing token type", Run: runFig9})
	register(Experiment{ID: "table5", Title: "Table 5: MAE and Hit Rate for miss_token_loc", Run: runTable5})
	register(Experiment{ID: "table6", Title: "Table 6: performance_pred accuracy", Run: runTable6})
	register(Experiment{ID: "fig10", Title: "Figure 10: MistralAI failure in performance_pred", Run: runFig10})
	register(Experiment{ID: "table7", Title: "Table 7: query_equiv and query_equiv_type", Run: runTable7})
	register(Experiment{ID: "fig11", Title: "Figure 11: word_count vs outcome in query_equiv", Run: runFig11})
	register(Experiment{ID: "fig12", Title: "Figure 12: predicate_count vs outcome in query_equiv", Run: runFig12})
	register(Experiment{ID: "casestudy", Title: "Section 4.5: query explanation case study", Run: runCaseStudy})
	register(Experiment{ID: "ext-fewshot", Title: "Extension: zero-shot vs few-shot prompting (syntax_error, SDSS)", Run: runExtFewShot})
	register(Experiment{ID: "ext-tasks", Title: "Extension: registry-wide task accuracy grid", Run: runTaskGrid})
}

// runTaskGrid renders the generic accuracy table of every registered task —
// the registry-driven view of the paper's per-task tables. It iterates
// core.Tasks(), so tasks registered after this code was written (fill_token
// being the first) appear with zero changes here.
func runTaskGrid(env *Env, w io.Writer) error {
	report.Section(w, "Extension: accuracy across all registered tasks")
	for _, task := range core.Tasks() {
		datasets := task.Datasets()
		if err := env.warm(task.ID(), env.Models, datasets); err != nil {
			return err
		}
		cells := map[string]map[string]report.TaskCell{}
		for _, model := range env.Models {
			cells[model] = map[string]report.TaskCell{}
			for _, ds := range datasets {
				s, err := env.Summary(task.ID(), model, ds)
				if err != nil {
					return err
				}
				cells[model][ds] = report.TaskCell{
					N: s.N, Accuracy: s.Accuracy,
					Prec: s.Prec, Rec: s.Rec, F1: s.F1, HasPRF: s.HasPRF,
				}
			}
		}
		report.TaskGrid(w, fmt.Sprintf("%s (%s)", task.ID(), task.Name()), datasets, env.Models, cells)
	}
	return nil
}

// runExtFewShot goes beyond the paper's zero-shot protocol: the same
// syntax_error run with two worked examples in the prompt, quantifying the
// mitigation the paper's conclusion anticipates.
func runExtFewShot(env *Env, w io.Writer) error {
	report.Section(w, "Extension: few-shot prompting on syntax_error (SDSS)")
	shots := []promptpkg.Shot{
		{
			SQL:    "SELECT plate , mjd , COUNT(*) FROM SpecObj",
			Answer: "yes; type=aggr-attr; non-aggregated columns appear without GROUP BY",
		},
		{
			SQL:    "SELECT plate , mjd FROM SpecObj WHERE z > 0.5",
			Answer: "no error",
		},
	}
	tpl := promptpkg.Default(promptpkg.SyntaxError)
	// Both variants fan out across models; rendering stays in table order.
	// Few-shot prompting is the generic driver with a shot-bearing renderer.
	type row struct{ zero, few float64 }
	rows, err := runner.Map(env.ctx(), 0, env.Models, func(ctx context.Context, _ int, model string) (row, error) {
		zero, err := env.SyntaxResults(model, core.SDSS)
		if err != nil {
			return row{}, err
		}
		client, err := env.Registry.Get(model)
		if err != nil {
			return row{}, err
		}
		var few []core.SyntaxResult
		err = core.RunWith(ctx, client, core.SyntaxTask,
			func(ex core.SyntaxExample) string { return tpl.RenderFewShot(ex.SQL, shots) },
			env.Bench.Syntax[core.SDSS],
			func(r core.SyntaxResult) error { few = append(few, r); return nil })
		if err != nil {
			return row{}, err
		}
		return row{core.EvalSyntaxBinary(zero).F1(), core.EvalSyntaxBinary(few).F1()}, nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %18s %18s\n", "Model", "zero-shot F1", "few-shot F1")
	for i, model := range env.Models {
		fmt.Fprintf(w, "%-12s %18.2f %18.2f\n", model, rows[i].zero, rows[i].few)
	}
	fmt.Fprintln(w)
	return nil
}

func runTable1(env *Env, w io.Writer) error {
	report.Section(w, "Table 1: Skill-to-SQL task mapping")
	fmt.Fprintf(w, "%-14s", "Skill")
	for _, t := range core.TaskCatalog {
		fmt.Fprintf(w, " | %-18s", t.Name)
	}
	fmt.Fprintln(w)
	marks := []string{"", "x", "xx"}
	for _, s := range core.Skills {
		fmt.Fprintf(w, "%-14s", s)
		for _, t := range core.TaskCatalog {
			fmt.Fprintf(w, " | %-18s", marks[t.Skills[s]])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	return nil
}

func runTable2(env *Env, w io.Writer) error {
	report.Section(w, "Table 2: Workload statistics overview")
	fmt.Fprintf(w, "%-12s %10s %8s %8s %8s %8s %8s\n",
		"Workload", "Original", "Sampled", "SELECT", "CREATE", "Agg.Yes", "Agg.No")
	for _, ds := range []string{core.SDSS, core.SQLShare, core.JoinOrder, core.Spider} {
		wl := env.Bench.Workloads[ds]
		byType := wl.ByType()
		yes, no := wl.AggregateSplit()
		fmt.Fprintf(w, "%-12s %10d %8d %8d %8d %8d %8d\n",
			ds, wl.OriginalCount, len(wl.Queries), byType["SELECT"]+byType["WITH"], byType["CREATE"], yes, no)
	}
	fmt.Fprintln(w)
	return nil
}

// histExperiment renders the per-workload property histograms of Figs 1-3.
func histExperiment(ds string) func(env *Env, w io.Writer) error {
	return func(env *Env, w io.Writer) error {
		wl := env.Bench.Workloads[ds]
		report.Section(w, fmt.Sprintf("%s statistics (n=%d)", ds, len(wl.Queries)))

		// (a) query_type
		byType := wl.ByType()
		var types []string
		for t := range byType {
			types = append(types, t)
		}
		sort.Slice(types, func(i, j int) bool { return byType[types[i]] > byType[types[j]] })
		var counts []int
		for _, t := range types {
			counts = append(counts, byType[t])
		}
		report.Histogram(w, "(a) query_type", types, counts)

		// (b) word_count
		wordHist := stats.NewHistogram([]int{1, 30, 60, 90, 120}, []string{"1-30", "30-60", "60-90", "90-120", "120+"})
		for _, q := range wl.Queries {
			wordHist.Add(q.Props.WordCount)
		}
		report.Histogram(w, "(b) word_count", wordHist.Labels, wordHist.Counts)

		// (c) table_count
		tblBounds, tblLabels := countBuckets(9)
		if ds != core.JoinOrder {
			tblBounds, tblLabels = countBuckets(6)
		}
		tblHist := stats.NewHistogram(tblBounds, tblLabels)
		for _, q := range wl.Queries {
			tblHist.Add(q.Props.TableCount)
		}
		report.Histogram(w, "(c) table_count", tblHist.Labels, tblHist.Counts)

		// (d) predicate_count
		var predHist *stats.Histogram
		if ds == core.JoinOrder {
			predHist = stats.NewHistogram([]int{0, 2, 7, 11}, []string{"0-1", "2-6", "7-10", "10+"})
		} else {
			b, l := countBuckets(7)
			predHist = stats.NewHistogram(b, l)
		}
		for _, q := range wl.Queries {
			predHist.Add(q.Props.PredicateCount)
		}
		report.Histogram(w, "(d) predicate_count", predHist.Labels, predHist.Counts)

		// (e) nestedness or function_count
		if ds == core.JoinOrder {
			b, l := countBuckets(4)
			fnHist := stats.NewHistogram(b, l)
			for _, q := range wl.Queries {
				fnHist.Add(q.Props.FunctionCount)
			}
			report.Histogram(w, "(e) function_count", fnHist.Labels, fnHist.Counts)
		} else {
			b, l := countBuckets(6)
			nestHist := stats.NewHistogram(b, l)
			for _, q := range wl.Queries {
				nestHist.Add(q.Props.Nestedness)
			}
			report.Histogram(w, "(e) nestedness", nestHist.Labels, nestHist.Counts)
		}
		return nil
	}
}

// countBuckets builds 0,1,...,n-1,n+ integer buckets.
func countBuckets(n int) ([]int, []string) {
	var bounds []int
	var labels []string
	for i := 0; i <= n; i++ {
		bounds = append(bounds, i)
		if i == n {
			labels = append(labels, fmt.Sprintf("%d+", i))
		} else {
			labels = append(labels, fmt.Sprintf("%d", i))
		}
	}
	return bounds, labels
}

func runFig4(env *Env, w io.Writer) error {
	report.Section(w, "Figure 4: Pairwise Pearson correlations")
	for _, ds := range core.TaskDatasets {
		wl := env.Bench.Workloads[ds]
		names := analyze.CorrelationProperties
		// Join-Order has no nesting; the paper's Fig 4c omits Nested_Level.
		nprops := len(names)
		if ds == core.JoinOrder {
			nprops--
		}
		cols := make([][]float64, nprops)
		for _, q := range wl.Queries {
			v := q.Props.Vector()
			for i := 0; i < nprops; i++ {
				cols[i] = append(cols[i], v[i])
			}
		}
		m := stats.CorrMatrix(cols)
		report.CorrMatrix(w, fmt.Sprintf("(%s)", ds), names[:nprops], m)
	}
	return nil
}

func runFig5(env *Env, w io.Writer) error {
	report.Section(w, "Figure 5: Elapsed time of sampled SDSS queries")
	h := stats.NewHistogram([]int{0, 100, 200, 300, 400, 500},
		[]string{"0-100", "100-200", "200-300", "300-400", "400-500", "500+"})
	for _, q := range env.Bench.Perf {
		h.Add(int(q.ElapsedMS))
	}
	report.Histogram(w, "elapsed ms", h.Labels, h.Counts)
	return nil
}

func runTable3(env *Env, w io.Writer) error {
	report.Section(w, "Table 3: syntax_error (top) and syntax_error_type (bottom)")
	if err := env.warm(core.SyntaxTask.TaskID, env.Models, core.TaskDatasets); err != nil {
		return err
	}
	binary := map[string]map[string]report.PRF{}
	typed := map[string]map[string]report.PRF{}
	for _, model := range env.Models {
		binary[model] = map[string]report.PRF{}
		typed[model] = map[string]report.PRF{}
		for _, ds := range core.TaskDatasets {
			res, err := env.SyntaxResults(model, ds)
			if err != nil {
				return err
			}
			binary[model][ds] = report.FromBinary(core.EvalSyntaxBinary(res))
			mc := core.EvalSyntaxType(res)
			typed[model][ds] = report.PRF{
				Prec: mc.WeightedPrecision(), Rec: mc.WeightedRecall(), F1: mc.WeightedF1(),
			}
		}
	}
	report.MetricTable(w, "syntax_error", core.TaskDatasets, env.Models, binary)
	report.MetricTable(w, "syntax_error_type (weighted)", core.TaskDatasets, env.Models, typed)
	return nil
}

func runFig6(env *Env, w io.Writer) error {
	report.Section(w, "Figure 6: word_count vs outcome, syntax_error on SDSS")
	models := []string{"Llama3", "Gemini"}
	if err := env.warm(core.SyntaxTask.TaskID, models, []string{core.SDSS}); err != nil {
		return err
	}
	for _, model := range models {
		res, err := env.SyntaxResults(model, core.SDSS)
		if err != nil {
			return err
		}
		bd := core.SyntaxBreakdown(res, func(ex core.SyntaxExample) float64 {
			return float64(ex.Props.WordCount)
		})
		report.OutcomePanel(w, fmt.Sprintf("(%s) word_count by outcome", model), bd)
	}
	return nil
}

func runFig7(env *Env, w io.Writer) error {
	report.Section(w, "Figure 7: FN rate by syntax error type")
	if err := env.warm(core.SyntaxTask.TaskID, env.Models, core.TaskDatasets); err != nil {
		return err
	}
	classes := make([]string, 0, len(semcheck.PaperErrorTypes))
	for _, c := range semcheck.PaperErrorTypes {
		classes = append(classes, string(c))
	}
	for _, ds := range core.TaskDatasets {
		fmt.Fprintf(w, "--- %s ---\n", ds)
		for _, model := range env.Models {
			res, err := env.SyntaxResults(model, ds)
			if err != nil {
				return err
			}
			report.RateBars(w, model, classes, core.SyntaxFNRateByType(res))
		}
	}
	return nil
}

func runTable4(env *Env, w io.Writer) error {
	report.Section(w, "Table 4: miss_token (top) and miss_token_type (bottom)")
	if err := env.warm(core.TokensTask.TaskID, env.Models, core.TaskDatasets); err != nil {
		return err
	}
	binary := map[string]map[string]report.PRF{}
	typed := map[string]map[string]report.PRF{}
	for _, model := range env.Models {
		binary[model] = map[string]report.PRF{}
		typed[model] = map[string]report.PRF{}
		for _, ds := range core.TaskDatasets {
			res, err := env.TokenResults(model, ds)
			if err != nil {
				return err
			}
			binary[model][ds] = report.FromBinary(core.EvalTokenBinary(res))
			mc := core.EvalTokenType(res)
			typed[model][ds] = report.PRF{
				Prec: mc.WeightedPrecision(), Rec: mc.WeightedRecall(), F1: mc.WeightedF1(),
			}
		}
	}
	report.MetricTable(w, "miss_token", core.TaskDatasets, env.Models, binary)
	report.MetricTable(w, "miss_token_type (weighted)", core.TaskDatasets, env.Models, typed)
	return nil
}

func runFig8(env *Env, w io.Writer) error {
	report.Section(w, "Figure 8: failures vs properties, miss_token on SQLShare")
	panels := []struct {
		model    string
		name     string
		property func(core.TokenExample) float64
	}{
		{"GPT3.5", "word_count", func(ex core.TokenExample) float64 { return float64(ex.Props.WordCount) }},
		{"Gemini", "predicate_count", func(ex core.TokenExample) float64 { return float64(ex.Props.PredicateCount) }},
		{"Gemini", "nestedness", func(ex core.TokenExample) float64 { return float64(ex.Props.Nestedness) }},
		{"MistralAI", "table_count", func(ex core.TokenExample) float64 { return float64(ex.Props.TableCount) }},
	}
	models := make([]string, 0, len(panels))
	for _, p := range panels {
		models = append(models, p.model)
	}
	if err := env.warm(core.TokensTask.TaskID, models, []string{core.SQLShare}); err != nil {
		return err
	}
	for _, p := range panels {
		res, err := env.TokenResults(p.model, core.SQLShare)
		if err != nil {
			return err
		}
		bd := core.TokenBreakdown(res, p.property)
		report.OutcomePanel(w, fmt.Sprintf("(%s) %s by outcome", p.model, p.name), bd)
	}
	return nil
}

func runFig9(env *Env, w io.Writer) error {
	report.Section(w, "Figure 9: FN rate by missing token type")
	if err := env.warm(core.TokensTask.TaskID, env.Models, core.TaskDatasets); err != nil {
		return err
	}
	classes := make([]string, 0, len(mutate.TokenKinds))
	for _, k := range mutate.TokenKinds {
		classes = append(classes, string(k))
	}
	for _, ds := range core.TaskDatasets {
		fmt.Fprintf(w, "--- %s ---\n", ds)
		for _, model := range env.Models {
			res, err := env.TokenResults(model, ds)
			if err != nil {
				return err
			}
			report.RateBars(w, model, classes, core.TokenFNRateByKind(res))
		}
	}
	return nil
}

func runTable5(env *Env, w io.Writer) error {
	report.Section(w, "Table 5: MAE and Hit Rate for miss_token_loc")
	if err := env.warm(core.TokensTask.TaskID, env.Models, core.TaskDatasets); err != nil {
		return err
	}
	cells := map[string]map[string]report.LocRow{}
	for _, model := range env.Models {
		cells[model] = map[string]report.LocRow{}
		for _, ds := range core.TaskDatasets {
			res, err := env.TokenResults(model, ds)
			if err != nil {
				return err
			}
			loc := core.EvalTokenLocation(res)
			cells[model][ds] = report.LocRow{MAE: loc.MAE(), HR: loc.HitRate()}
		}
	}
	report.LocationTable(w, "miss_token_loc", core.TaskDatasets, env.Models, cells)
	return nil
}

func runTable6(env *Env, w io.Writer) error {
	report.Section(w, "Table 6: performance_pred (SDSS)")
	if err := env.warm(core.PerfTask.TaskID, env.Models, nil); err != nil {
		return err
	}
	cells := map[string]map[string]report.PRF{}
	for _, model := range env.Models {
		res, err := env.PerfResults(model)
		if err != nil {
			return err
		}
		cells[model] = map[string]report.PRF{core.SDSS: report.FromBinary(core.EvalPerf(res))}
	}
	report.MetricTable(w, "performance_pred", []string{core.SDSS}, env.Models, cells)
	return nil
}

func runFig10(env *Env, w io.Writer) error {
	report.Section(w, "Figure 10: MistralAI failures in performance_pred")
	res, err := env.PerfResults("MistralAI")
	if err != nil {
		return err
	}
	bd := core.PerfBreakdown(res, func(ex core.PerfExample) float64 { return float64(ex.Props.WordCount) })
	report.OutcomePanel(w, "(a) word_count by outcome", bd)
	bd = core.PerfBreakdown(res, func(ex core.PerfExample) float64 { return float64(ex.Props.ColumnCount) })
	report.OutcomePanel(w, "(b) column_count by outcome", bd)
	return nil
}

func runTable7(env *Env, w io.Writer) error {
	report.Section(w, "Table 7: query_equiv (top) and query_equiv_type (bottom)")
	if err := env.warm(core.EquivTask.TaskID, env.Models, core.TaskDatasets); err != nil {
		return err
	}
	binary := map[string]map[string]report.PRF{}
	typed := map[string]map[string]report.PRF{}
	for _, model := range env.Models {
		binary[model] = map[string]report.PRF{}
		typed[model] = map[string]report.PRF{}
		for _, ds := range core.TaskDatasets {
			res, err := env.EquivResults(model, ds)
			if err != nil {
				return err
			}
			binary[model][ds] = report.FromBinary(core.EvalEquivBinary(res))
			mc := core.EvalEquivType(res)
			typed[model][ds] = report.PRF{
				Prec: mc.WeightedPrecision(), Rec: mc.WeightedRecall(), F1: mc.WeightedF1(),
			}
		}
	}
	report.MetricTable(w, "query_equiv", core.TaskDatasets, env.Models, binary)
	report.MetricTable(w, "query_equiv_type (weighted)", core.TaskDatasets, env.Models, typed)
	return nil
}

func runFig11(env *Env, w io.Writer) error {
	report.Section(w, "Figure 11: word_count vs outcome in query_equiv")
	panels := []struct{ model, ds string }{
		{"GPT3.5", core.SDSS},
		{"Llama3", core.JoinOrder},
	}
	if err := warmEquivPanels(env, panels); err != nil {
		return err
	}
	for _, p := range panels {
		res, err := env.EquivResults(p.model, p.ds)
		if err != nil {
			return err
		}
		bd := core.EquivBreakdown(res, func(ex core.EquivExample) float64 { return float64(ex.Props.WordCount) })
		report.OutcomePanel(w, fmt.Sprintf("(%s on %s) word_count by outcome", p.model, p.ds), bd)
	}
	return nil
}

func runFig12(env *Env, w io.Writer) error {
	report.Section(w, "Figure 12: predicate_count vs outcome in query_equiv")
	panels := []struct{ model, ds string }{
		{"Gemini", core.SDSS},
		{"MistralAI", core.JoinOrder},
	}
	if err := warmEquivPanels(env, panels); err != nil {
		return err
	}
	for _, p := range panels {
		res, err := env.EquivResults(p.model, p.ds)
		if err != nil {
			return err
		}
		bd := core.EquivBreakdown(res, func(ex core.EquivExample) float64 { return float64(ex.Props.PredicateCount) })
		report.OutcomePanel(w, fmt.Sprintf("(%s on %s) predicate_count by outcome", p.model, p.ds), bd)
	}
	return nil
}

// warmEquivPanels prefetches the query_equiv cells a figure's panels need.
func warmEquivPanels(env *Env, panels []struct{ model, ds string }) error {
	cells := make([]cell, len(panels))
	for i, p := range panels {
		cells[i] = cell{core.EquivTask.TaskID, p.model, p.ds}
	}
	return env.prefetch(cells)
}

func runCaseStudy(env *Env, w io.Writer) error {
	report.Section(w, "Section 4.5 case study: query explanation")
	if err := env.warm(core.ExplainTask.TaskID, env.Models, nil); err != nil {
		return err
	}
	// The four pinned case-study queries lead the Spider workload.
	n := 4
	if len(env.Bench.Explain) < n {
		n = len(env.Bench.Explain)
	}
	for i := 0; i < n; i++ {
		ex := env.Bench.Explain[i]
		fmt.Fprintf(w, "Q%d: %s\n", 15+i, ex.SQL)
		fmt.Fprintf(w, "  reference: %s\n", ex.Description)
		for _, model := range env.Models {
			res, err := env.ExplainResults(model)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %-10s (coverage %.2f): %s\n", model, res[i].Coverage, res[i].Explanation)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "Mean fact coverage over all 200 Spider queries:")
	for _, model := range env.Models {
		res, err := env.ExplainResults(model)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-10s %.3f\n", model, core.MeanCoverage(res))
	}
	// Superlative misreads (the Q18 failure mode) per model.
	fmt.Fprintln(w, "\nSuperlative direction misreads (ORDER BY ... LIMIT 1 queries):")
	for _, model := range env.Models {
		res, err := env.ExplainResults(model)
		if err != nil {
			return err
		}
		var total, wrong int
		for _, r := range res {
			if !r.Example.Facts.Superlative {
				continue
			}
			total++
			want := "lowest"
			if r.Example.Facts.Descending {
				want = "highest"
			}
			if !strings.Contains(strings.ToLower(r.Explanation), want) {
				wrong++
			}
		}
		if total > 0 {
			fmt.Fprintf(w, "  %-10s %d/%d misread\n", model, wrong, total)
		}
	}
	fmt.Fprintln(w)
	return nil
}
