package prompt

import (
	"strings"
	"testing"
)

func TestRenderAndExtract(t *testing.T) {
	tpl := Default(SyntaxError)
	q := "SELECT plate FROM SpecObj WHERE z > 0.5"
	p := tpl.Render(q)
	got, ok := ExtractQuery(p)
	if !ok || got != q {
		t.Errorf("ExtractQuery = %q, %v", got, ok)
	}
}

func TestRenderPairAndExtract(t *testing.T) {
	tpl := Default(QueryEquiv)
	q1 := "SELECT a FROM t"
	q2 := "SELECT a FROM t WHERE 1 = 1"
	p := tpl.RenderPair(q1, q2)
	g1, g2, ok := ExtractQueryPair(p)
	if !ok || g1 != q1 || g2 != q2 {
		t.Errorf("ExtractQueryPair = %q, %q, %v", g1, g2, ok)
	}
}

func TestDetectTaskAllVariants(t *testing.T) {
	for _, task := range Tasks {
		for _, tpl := range Variants(task) {
			var rendered string
			if task == QueryEquiv {
				rendered = tpl.RenderPair("SELECT 1", "SELECT 2")
			} else {
				rendered = tpl.Render("SELECT 1")
			}
			got, ok := DetectTask(rendered)
			if !ok || got != task {
				t.Errorf("DetectTask(%s) = %q, %v", tpl.ID, got, ok)
			}
		}
	}
}

func TestDetectTaskUnknown(t *testing.T) {
	if _, ok := DetectTask("What is the capital of France?"); ok {
		t.Error("detected a task in unrelated text")
	}
}

func TestVariantsPerTask(t *testing.T) {
	for _, task := range Tasks {
		vs := Variants(task)
		if len(vs) < 3 {
			t.Errorf("task %s has %d variants, want >= 3", task, len(vs))
		}
		if vs[0].ID != Default(task).ID {
			t.Errorf("Default(%s) is not the first variant", task)
		}
		seen := map[string]bool{}
		for _, v := range vs {
			if seen[v.ID] {
				t.Errorf("duplicate variant id %s", v.ID)
			}
			seen[v.ID] = true
			if v.Task != task {
				t.Errorf("variant %s has task %s", v.ID, v.Task)
			}
		}
	}
}

func TestExtractQueryMissingMarker(t *testing.T) {
	if _, ok := ExtractQuery("no marker here"); ok {
		t.Error("extracted query without marker")
	}
	if _, _, ok := ExtractQueryPair("no markers"); ok {
		t.Error("extracted pair without markers")
	}
}

func TestRenderFewShot(t *testing.T) {
	tpl := Default(SyntaxError)
	shots := []Shot{
		{SQL: "SELECT a , COUNT(*) FROM t", Answer: "yes; aggr-attr"},
		{SQL: "SELECT a FROM t", Answer: "no error"},
	}
	target := "SELECT b FROM u WHERE c > 1"
	p := tpl.RenderFewShot(target, shots)
	// The target query must be the one extracted (examples come first).
	got, ok := ExtractQuery(p)
	if !ok || got != target {
		t.Errorf("ExtractQuery = %q, %v", got, ok)
	}
	if !strings.Contains(p, "Example 1:") || !strings.Contains(p, "Example 2:") {
		t.Errorf("examples missing from %q", p)
	}
	if task, ok := DetectTask(p); !ok || task != SyntaxError {
		t.Errorf("DetectTask = %v, %v", task, ok)
	}
}

func TestPaperPromptWording(t *testing.T) {
	// The default prompts must carry the paper's published wording.
	if !strings.Contains(Default(PerfPred).Text, "longer than usual") {
		t.Error("performance prompt diverged from the paper")
	}
	if !strings.Contains(Default(MissToken).Text, "word count position") {
		t.Error("miss_token prompt diverged from the paper")
	}
	if !strings.Contains(Default(QueryExp).Text, "single statement describing") {
		t.Error("query_exp prompt diverged from the paper")
	}
}
