// Package prompt defines the task prompts from the paper's Section 3.4,
// including the variant sets used by the prompt-tuning mock experiments.
// Queries are embedded after "SQL:" markers (or "SQL 1:"/"SQL 2:" for
// pairs), which is the contract the response side relies on.
package prompt

import (
	"fmt"
	"strings"
)

// Task identifies a prompted SQL task. Multi-part tasks (binary + type +
// location) share a single prompt, as in the paper.
type Task string

// Tasks.
const (
	SyntaxError Task = "syntax_error" // also syntax_error_type
	MissToken   Task = "miss_token"   // also miss_token_type, miss_token_loc
	QueryEquiv  Task = "query_equiv"  // also query_equiv_type
	PerfPred    Task = "performance_pred"
	QueryExp    Task = "query_exp"
	FillToken   Task = "fill_token"  // missing-token recovery (fill-in) variant
	TableState  Task = "table_state" // final table contents after a DML/transaction script
)

// Tasks lists all prompted tasks.
var Tasks = []Task{SyntaxError, MissToken, QueryEquiv, PerfPred, QueryExp, FillToken, TableState}

// Markers for query embedding.
const (
	MarkerQuery  = "SQL:"
	MarkerQuery1 = "SQL 1:"
	MarkerQuery2 = "SQL 2:"
)

// Template is one prompt formulation for a task.
type Template struct {
	Task Task
	ID   string // e.g. "syntax_error/v1"
	Text string // instruction text; the query is appended after the marker
}

// Render produces the full prompt for a single-query task.
func (t Template) Render(sql string) string {
	return t.Text + "\n\n" + MarkerQuery + " " + sql
}

// Shot is one worked example for few-shot prompting.
type Shot struct {
	SQL    string
	Answer string
}

// RenderFewShot produces a few-shot prompt: the instruction, worked
// examples, then the target query. The paper evaluates zero-shot only but
// names few-shot prompting as the natural mitigation; this implements it.
func (t Template) RenderFewShot(sql string, shots []Shot) string {
	var b strings.Builder
	b.WriteString(t.Text)
	b.WriteString("\n")
	for i, s := range shots {
		fmt.Fprintf(&b, "\nExample %d:\n%s %s\nAnswer: %s\n", i+1, MarkerQuery, s.SQL, s.Answer)
	}
	b.WriteString("\nNow the real query.\n\n")
	b.WriteString(MarkerQuery)
	b.WriteString(" ")
	b.WriteString(sql)
	return b.String()
}

// RenderPair produces the full prompt for a query-pair task.
func (t Template) RenderPair(sql1, sql2 string) string {
	return t.Text + "\n\n" + MarkerQuery1 + " " + sql1 + "\n" + MarkerQuery2 + " " + sql2
}

// variants lists the candidate formulations per task. The first entry is the
// paper's published prompt; the tuner (Tune) selects among them.
var variants = map[Task][]Template{
	SyntaxError: {
		{SyntaxError, "syntax_error/v1", "Does the following query contain any syntax errors? If so, explain the error and state the error type."},
		{SyntaxError, "syntax_error/v2", "You are a SQL reviewer. Check this query for syntax or semantic errors. Answer yes or no, then name the error type if any."},
		{SyntaxError, "syntax_error/v3", "Is this SQL query valid? Reply yes/no and identify any error."},
	},
	MissToken: {
		{MissToken, "miss_token/v1", "Does the following query have any syntax errors? (yes/no) If yes, is there a missing word? (yes/no) If yes, what is the type of the missing word? If yes, what is the missing word? If yes, what is the position of the missing word? (Provide the word count position where the word is missing.)"},
		{MissToken, "miss_token/v2", "Check whether a token is missing from this SQL query. If one is missing, report its type (keyword, table, column, value, alias, comparison), the token, and its word position."},
		{MissToken, "miss_token/v3", "Something may have been deleted from this query. Say yes or no, and if yes identify what and where."},
	},
	QueryEquiv: {
		{QueryEquiv, "query_equiv/v1", "Are the following two queries equivalent (do they produce the same results on the same database schema)? If yes, why are they equivalent? Also name the transformation type relating them."},
		{QueryEquiv, "query_equiv/v2", "Decide whether these two SQL queries always return identical results. Answer equivalent or not equivalent, and classify the rewrite."},
		{QueryEquiv, "query_equiv/v3", "Same results or not? Compare the two queries and explain."},
	},
	PerfPred: {
		{PerfPred, "performance_pred/v1", "Does the following query take longer than usual to run?"},
		{PerfPred, "performance_pred/v2", "Classify this query's runtime cost as high or low, considering its joins, predicates, and the tables it scans."},
		{PerfPred, "performance_pred/v3", "Will this query be slow? Answer yes or no."},
	},
	QueryExp: {
		{QueryExp, "query_exp/v1", "Provide a single statement describing this query:"},
		{QueryExp, "query_exp/v2", "Explain in one sentence what this SQL query returns."},
		{QueryExp, "query_exp/v3", "Summarize the purpose of this query."},
	},
	FillToken: {
		{FillToken, "fill_token/v1", "One token may be absent from the following SQL query. If so, reply with the exact missing token in double quotes; otherwise reply that the query is complete."},
		{FillToken, "fill_token/v2", "Repair this SQL query if a token was dropped: give the exact missing token in double quotes, or state that the query is complete."},
		{FillToken, "fill_token/v3", "Fill in the gap. Reply with the exact missing token, or 'complete'."},
	},
	TableState: {
		{TableState, "table_state/v1", "The following SQL script creates a table and modifies it. What are the final contents of the table after running the script? List every row in parentheses, separated by commas, with text values in single quotes — for example ( 1 , 'alpha' ). If no rows remain, reply that the table is empty. A BEGIN..ROLLBACK block leaves the table unchanged."},
		{TableState, "table_state/v2", "Execute this DML script mentally. What rows does the table contain after running it? Give each row as a parenthesized tuple, text in single quotes, or say the table is empty. Remember that a ROLLBACK undoes everything since its BEGIN."},
		{TableState, "table_state/v3", "Trace the script. Final table contents? Rows in parentheses, or 'empty'."},
	},
}

// Variants returns the candidate templates for a task.
func Variants(task Task) []Template {
	return append([]Template{}, variants[task]...)
}

// Default returns the paper's published prompt for a task.
func Default(task Task) Template {
	vs := variants[task]
	if len(vs) == 0 {
		panic(fmt.Sprintf("prompt: unknown task %q", task))
	}
	return vs[0]
}

// DetectTask identifies which task a rendered prompt belongs to. Simulated
// models use this the way a real model infers intent from instructions.
func DetectTask(promptText string) (Task, bool) {
	lower := strings.ToLower(promptText)
	switch {
	// Fill-in is checked before miss_token: both talk about missing tokens,
	// but only the fill prompts ask for the exact token back.
	case strings.Contains(lower, "exact missing token"):
		return FillToken, true
	case strings.Contains(lower, "missing word") || strings.Contains(lower, "token is missing") || strings.Contains(lower, "been deleted"):
		return MissToken, true
	case strings.Contains(lower, "equivalent") || strings.Contains(lower, "identical results") || strings.Contains(lower, "same results"):
		return QueryEquiv, true
	case strings.Contains(lower, "longer than usual") || strings.Contains(lower, "runtime cost") || strings.Contains(lower, "be slow"):
		return PerfPred, true
	case strings.Contains(lower, "describing this query") || strings.Contains(lower, "what this sql query returns") || strings.Contains(lower, "purpose of this query"):
		return QueryExp, true
	case strings.Contains(lower, "final contents") || strings.Contains(lower, "contain after running") || strings.Contains(lower, "final table contents"):
		return TableState, true
	case strings.Contains(lower, "syntax") || strings.Contains(lower, "query valid") || strings.Contains(lower, "semantic errors"):
		return SyntaxError, true
	default:
		return "", false
	}
}

// ExtractQuery pulls the embedded query out of a single-query prompt.
func ExtractQuery(promptText string) (string, bool) {
	idx := strings.LastIndex(promptText, MarkerQuery)
	if idx < 0 {
		return "", false
	}
	return strings.TrimSpace(promptText[idx+len(MarkerQuery):]), true
}

// ExtractQueryPair pulls both queries out of a pair prompt.
func ExtractQueryPair(promptText string) (string, string, bool) {
	i1 := strings.Index(promptText, MarkerQuery1)
	i2 := strings.Index(promptText, MarkerQuery2)
	if i1 < 0 || i2 < 0 || i2 <= i1 {
		return "", "", false
	}
	q1 := strings.TrimSpace(promptText[i1+len(MarkerQuery1) : i2])
	q2 := strings.TrimSpace(promptText[i2+len(MarkerQuery2):])
	return q1, q2, true
}
