package llm

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// outcomeClient returns canned outcomes in order, then repeats the last one.
type outcomeClient struct {
	name    string
	calls   atomic.Int64
	outcome func(call int64, ctx context.Context, req Request) (Response, error)
}

func (c *outcomeClient) Name() string { return c.name }
func (c *outcomeClient) Do(ctx context.Context, req Request) (Response, error) {
	return c.outcome(c.calls.Add(1), ctx, req)
}

func failN(n int64) func(int64, context.Context, Request) (Response, error) {
	return func(call int64, _ context.Context, _ Request) (Response, error) {
		if call <= n {
			return Response{}, &Error{Status: 503, Code: "unavailable"}
		}
		return Response{Text: "ok"}, nil
	}
}

// The breaker must walk the full lifecycle: closed → open on consecutive
// failures (typed fast-fails while open) → half-open after the cooldown →
// closed again once a probe succeeds.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	var transitions []string
	inner := &outcomeClient{name: "m", outcome: failN(3)}
	stats := NewStats()
	cfg := BreakerConfig{
		Failures: 3,
		Cooldown: 10 * time.Second,
		Clock:    clock,
		OnStateChange: func(name string, from, to BreakerState) {
			transitions = append(transitions, from.String()+">"+to.String())
		},
	}
	c := Chain(inner, BreakerWith(cfg, stats))
	ctx := context.Background()

	// Three consecutive failures open the breaker.
	for i := 0; i < 3; i++ {
		if _, err := c.Do(ctx, NewRequest("q")); err == nil {
			t.Fatalf("call %d: expected failure", i)
		}
	}
	ms := stats.Model("m")
	if got := BreakerState(ms.BreakerState.Load()); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	if ms.BreakerOpens.Load() != 1 {
		t.Fatalf("opens = %d, want 1", ms.BreakerOpens.Load())
	}

	// While open: typed fast-fail carrying the remaining cooldown; the
	// backend is never touched.
	before := inner.calls.Load()
	_, err := c.Do(ctx, NewRequest("q"))
	var le *Error
	if !errors.As(err, &le) || le.Status != 503 || le.Code != "breaker_open" {
		t.Fatalf("open-state error = %v, want 503 breaker_open", err)
	}
	if le.RetryAfter <= 0 || le.RetryAfter > 10*time.Second {
		t.Fatalf("RetryAfter = %v, want (0, 10s]", le.RetryAfter)
	}
	if inner.calls.Load() != before {
		t.Fatal("fast-fail reached the backend")
	}
	if ms.BreakerFastFails.Load() != 1 {
		t.Fatalf("fast fails = %d, want 1", ms.BreakerFastFails.Load())
	}

	// After the cooldown the next request is a half-open probe; the script
	// now succeeds, closing the breaker.
	now = now.Add(11 * time.Second)
	resp, err := c.Do(ctx, NewRequest("q"))
	if err != nil || resp.Text != "ok" {
		t.Fatalf("probe = %v, %v; want success", resp, err)
	}
	if got := BreakerState(ms.BreakerState.Load()); got != BreakerClosed {
		t.Fatalf("state after probe = %v, want closed", got)
	}
	want := []string{"closed>open", "open>half_open", "half_open>closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

// A failing half-open probe must re-open the breaker for a fresh cooldown.
func TestBreakerProbeFailureReopens(t *testing.T) {
	now := time.Unix(0, 0)
	inner := &outcomeClient{name: "m", outcome: failN(1 << 30)} // never recovers
	stats := NewStats()
	c := Chain(inner, BreakerWith(BreakerConfig{
		Failures: 2,
		Cooldown: 5 * time.Second,
		Clock:    func() time.Time { return now },
	}, stats))
	ctx := context.Background()
	c.Do(ctx, NewRequest("q"))
	c.Do(ctx, NewRequest("q"))
	ms := stats.Model("m")
	if got := BreakerState(ms.BreakerState.Load()); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	now = now.Add(6 * time.Second)
	if _, err := c.Do(ctx, NewRequest("q")); err == nil {
		t.Fatal("probe unexpectedly succeeded")
	}
	if got := BreakerState(ms.BreakerState.Load()); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if ms.BreakerOpens.Load() != 2 {
		t.Fatalf("opens = %d, want 2", ms.BreakerOpens.Load())
	}
	// Still shedding during the fresh cooldown.
	before := inner.calls.Load()
	if _, err := c.Do(ctx, NewRequest("q")); !errors.As(err, new(*Error)) {
		t.Fatalf("expected typed fast-fail, got %v", err)
	}
	if inner.calls.Load() != before {
		t.Fatal("shed request reached the backend")
	}
}

// Rate-based opening: failures spread across successes trip the breaker
// once the rolling window's failure fraction reaches the threshold, even
// though no consecutive run does.
func TestBreakerErrorRate(t *testing.T) {
	var calls atomic.Int64
	inner := &outcomeClient{name: "m", outcome: func(call int64, _ context.Context, _ Request) (Response, error) {
		calls.Add(1)
		if call%2 == 0 { // alternate ok/fail: 50% rate, max run of 1
			return Response{}, &Error{Status: 500, Code: "boom"}
		}
		return Response{Text: "ok"}, nil
	}}
	stats := NewStats()
	c := Chain(inner, BreakerWith(BreakerConfig{
		Failures:  100, // consecutive trigger effectively off
		ErrorRate: 0.5,
		Window:    10,
		Cooldown:  time.Minute,
	}, stats))
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		c.Do(ctx, NewRequest("q"))
	}
	if got := BreakerState(stats.Model("m").BreakerState.Load()); got != BreakerOpen {
		t.Fatalf("state after window = %v, want open", got)
	}
}

// Non-countable failures (caller bugs) must not open the breaker.
func TestBreakerIgnoresCallerBugs(t *testing.T) {
	inner := &outcomeClient{name: "m", outcome: func(int64, context.Context, Request) (Response, error) {
		return Response{}, &Error{Status: 400, Code: "invalid_request"}
	}}
	stats := NewStats()
	c := Chain(inner, BreakerWith(BreakerConfig{Failures: 2}, stats))
	for i := 0; i < 10; i++ {
		c.Do(context.Background(), NewRequest("q"))
	}
	if got := BreakerState(stats.Model("m").BreakerState.Load()); got != BreakerClosed {
		t.Fatalf("state = %v, want closed after 4xx-only failures", got)
	}
}

// A half-open probe that completes without evidence (caller-side
// cancellation, 4xx) must still free its probe slot; otherwise one
// abandoned probe saturates the probe budget forever and the breaker can
// never close — a permanent 503 for the model.
func TestBreakerCancelledProbeFreesSlot(t *testing.T) {
	now := time.Unix(0, 0)
	inner := &outcomeClient{name: "m", outcome: func(call int64, _ context.Context, _ Request) (Response, error) {
		switch {
		case call <= 2:
			return Response{}, &Error{Status: 503, Code: "unavailable"}
		case call == 3:
			return Response{}, context.Canceled // probe abandoned by the caller
		default:
			return Response{Text: "ok"}, nil
		}
	}}
	stats := NewStats()
	c := Chain(inner, BreakerWith(BreakerConfig{
		Failures: 2,
		Cooldown: 5 * time.Second,
		Clock:    func() time.Time { return now },
	}, stats))
	ctx := context.Background()
	c.Do(ctx, NewRequest("q"))
	c.Do(ctx, NewRequest("q")) // breaker opens
	now = now.Add(6 * time.Second)
	if _, err := c.Do(ctx, NewRequest("q")); err == nil {
		t.Fatal("cancelled probe unexpectedly succeeded")
	}
	// The cancellation is no evidence either way, but the slot must be
	// free: the next request runs as a fresh probe and closes the breaker.
	resp, err := c.Do(ctx, NewRequest("q"))
	if err != nil || resp.Text != "ok" {
		t.Fatalf("follow-up probe = %v, %v; want success", resp, err)
	}
	if got := BreakerState(stats.Model("m").BreakerState.Load()); got != BreakerClosed {
		t.Fatalf("state = %v, want closed after successful probe", got)
	}
}

// While a half-open probe is in flight, additional requests shed with the
// distinct "breaker_probing" code, so callers and metrics can tell a
// momentary half-open shed from a cooldown-long open one.
func TestBreakerSaturatedHalfOpenShedCode(t *testing.T) {
	now := time.Unix(0, 0)
	block := make(chan struct{})
	inner := &outcomeClient{name: "m", outcome: func(call int64, _ context.Context, _ Request) (Response, error) {
		if call <= 2 {
			return Response{}, &Error{Status: 503, Code: "unavailable"}
		}
		<-block // hold the probe in flight
		return Response{Text: "ok"}, nil
	}}
	stats := NewStats()
	c := Chain(inner, BreakerWith(BreakerConfig{
		Failures: 2,
		Cooldown: 5 * time.Second,
		Clock:    func() time.Time { return now },
	}, stats))
	ctx := context.Background()
	c.Do(ctx, NewRequest("q"))
	c.Do(ctx, NewRequest("q")) // breaker opens
	now = now.Add(6 * time.Second)
	probeDone := make(chan error, 1)
	go func() {
		_, err := c.Do(ctx, NewRequest("q"))
		probeDone <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for inner.calls.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond) // wait for the probe to reach the backend
	}
	_, err := c.Do(ctx, NewRequest("q"))
	var le *Error
	if !errors.As(err, &le) || le.Status != 503 || le.Code != "breaker_probing" {
		t.Fatalf("saturated half-open shed = %v, want 503 breaker_probing", err)
	}
	if le.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", le.RetryAfter)
	}
	close(block)
	if perr := <-probeDone; perr != nil {
		t.Fatal(perr)
	}
	if got := BreakerState(stats.Model("m").BreakerState.Load()); got != BreakerClosed {
		t.Fatalf("state = %v, want closed once the probe succeeds", got)
	}
}

// A slow primary must lose to the hedge: the hedge's response wins, the
// stats count the launch and the win, and the cancelled loser's tokens are
// still charged once it drains.
func TestHedgeWinnerLoserAccounting(t *testing.T) {
	primaryDone := make(chan struct{})
	inner := &outcomeClient{name: "m", outcome: func(call int64, ctx context.Context, _ Request) (Response, error) {
		if call == 1 {
			// Primary: slow, then completes anyway (cancelled or not) with
			// usage that must still be charged.
			defer close(primaryDone)
			select {
			case <-time.After(200 * time.Millisecond):
			case <-ctx.Done():
			}
			return Response{Text: "slow", Usage: Usage{PromptTokens: 7, CompletionTokens: 13}}, nil
		}
		return Response{Text: "fast", Usage: Usage{PromptTokens: 7, CompletionTokens: 2}}, nil
	}}
	stats := NewStats()
	c := Chain(inner, HedgeWith(HedgeConfig{Delay: 10 * time.Millisecond}, stats))
	resp, err := c.Do(context.Background(), NewRequest("q"))
	if err != nil || resp.Text != "fast" {
		t.Fatalf("hedged response = %q, %v; want fast", resp.Text, err)
	}
	ms := stats.Model("m")
	if ms.HedgesLaunched.Load() != 1 || ms.HedgesWon.Load() != 1 {
		t.Fatalf("launched=%d won=%d, want 1/1", ms.HedgesLaunched.Load(), ms.HedgesWon.Load())
	}
	<-primaryDone
	// The drain goroutine charges the loser shortly after it completes.
	deadline := time.Now().Add(2 * time.Second)
	for ms.HedgeWastedTokens.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := ms.HedgeWastedTokens.Load(); got != 20 {
		t.Fatalf("wasted tokens = %d, want 20 (loser's 7+13)", got)
	}
	if got := ms.CompletionTokens.Load(); got != 13 {
		t.Fatalf("completion tokens = %d, want loser's 13 charged by the hedge layer", got)
	}
}

// A fast primary must win without ever launching a hedge.
func TestHedgeFastPrimaryNoHedge(t *testing.T) {
	inner := &outcomeClient{name: "m", outcome: func(int64, context.Context, Request) (Response, error) {
		return Response{Text: "ok"}, nil
	}}
	stats := NewStats()
	c := Chain(inner, HedgeWith(HedgeConfig{Delay: time.Second}, stats))
	if _, err := c.Do(context.Background(), NewRequest("q")); err != nil {
		t.Fatal(err)
	}
	if n := stats.Model("m").HedgesLaunched.Load(); n != 0 {
		t.Fatalf("hedges launched = %d, want 0", n)
	}
	if inner.calls.Load() != 1 {
		t.Fatalf("backend calls = %d, want 1", inner.calls.Load())
	}
}

// When the primary fails while a hedge is in flight, the hedge's success
// must still answer the request.
func TestHedgeSurvivesPrimaryError(t *testing.T) {
	inner := &outcomeClient{name: "m", outcome: func(call int64, ctx context.Context, _ Request) (Response, error) {
		if call == 1 {
			time.Sleep(20 * time.Millisecond)
			return Response{}, &Error{Status: 500, Code: "boom"}
		}
		time.Sleep(30 * time.Millisecond)
		return Response{Text: "rescued"}, nil
	}}
	c := Chain(inner, Hedge(HedgeConfig{Delay: 5 * time.Millisecond}))
	resp, err := c.Do(context.Background(), NewRequest("q"))
	if err != nil || resp.Text != "rescued" {
		t.Fatalf("resp = %q, %v; want rescued", resp.Text, err)
	}
}

// When every attempt fails, the primary's error surfaces.
func TestHedgeAllFail(t *testing.T) {
	inner := &outcomeClient{name: "m", outcome: func(int64, context.Context, Request) (Response, error) {
		time.Sleep(5 * time.Millisecond)
		return Response{}, &Error{Status: 503, Code: "dead"}
	}}
	c := Chain(inner, Hedge(HedgeConfig{Delay: time.Millisecond}))
	_, err := c.Do(context.Background(), NewRequest("q"))
	var le *Error
	if !errors.As(err, &le) || le.Code != "dead" {
		t.Fatalf("err = %v, want the backend error", err)
	}
}

// Retry must not start a backoff it cannot finish before the context
// deadline: the provider error returns promptly instead.
func TestRetryRespectsDeadline(t *testing.T) {
	inner := &outcomeClient{name: "m", outcome: func(int64, context.Context, Request) (Response, error) {
		return Response{}, &Error{Status: 503, Code: "unavailable"}
	}}
	c := Chain(inner, RetryWith(RetryConfig{MaxAttempts: 5, BaseDelay: time.Hour}))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Do(ctx, NewRequest("q"))
	var le *Error
	if !errors.As(err, &le) || le.Code != "unavailable" {
		t.Fatalf("err = %v, want the provider error, not a deadline error", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("retry stalled %v against a 50ms deadline", elapsed)
	}
	if inner.calls.Load() != 1 {
		t.Fatalf("backend calls = %d, want 1 (no doomed retry)", inner.calls.Load())
	}
}

// A hostile Retry-After hint must be capped, not honored verbatim.
func TestRetryAfterCapped(t *testing.T) {
	inner := &outcomeClient{name: "m", outcome: failN(1)}
	var slept time.Duration
	cfg := RetryConfig{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxRetryAfter: 20 * time.Millisecond,
		sleep: func(_ context.Context, d time.Duration) error { slept = d; return nil }}
	inner.outcome = func(call int64, _ context.Context, _ Request) (Response, error) {
		if call == 1 {
			return Response{}, &Error{Status: 429, Code: "rate_limited", RetryAfter: time.Hour}
		}
		return Response{Text: "ok"}, nil
	}
	c := Chain(inner, RetryWith(cfg))
	if _, err := c.Do(context.Background(), NewRequest("q")); err != nil {
		t.Fatal(err)
	}
	if slept != 20*time.Millisecond {
		t.Fatalf("slept %v, want the 20ms cap", slept)
	}
}
