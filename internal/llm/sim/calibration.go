// Package sim implements the five simulated LLM clients. Each model really
// parses the prompt, extracts the query, and runs the repository's analyzers
// (parser, semantic checker, repair detector, equivalence normalizer,
// surface-feature heuristics); a calibrated, complexity-tilted error channel
// then degrades the oracle answer so that aggregate metrics land near the
// paper's published tables while per-query failures concentrate on long,
// complex queries and on the error/token types the paper found hardest.
package sim

import (
	"repro/internal/mutate"
	"repro/internal/semcheck"
)

// BinaryTarget holds a published precision/recall pair.
type BinaryTarget struct {
	Prec, Rec float64
}

// missRate is the false-negative rate implied by the recall target.
func (t BinaryTarget) missRate() float64 { return 1 - t.Rec }

// falseAlarmRate is the false-positive rate implied under the benchmark's
// balanced positive/negative construction: FP = TP·(1-p)/p with TP = P·r and
// P = N.
func (t BinaryTarget) falseAlarmRate() float64 {
	if t.Prec <= 0 {
		return 0.5
	}
	fa := t.Rec * (1 - t.Prec) / t.Prec
	if fa > 0.95 {
		fa = 0.95
	}
	return fa
}

// LocTarget holds a published MAE / hit-rate pair for miss_token_loc.
type LocTarget struct {
	MAE float64
	HR  float64
}

// Profile is one model's full calibration.
type Profile struct {
	SyntaxError     map[string]BinaryTarget // keyed by dataset
	SyntaxTypeAcc   map[string]float64
	MissToken       map[string]BinaryTarget
	MissTokenAcc    map[string]float64
	TokenLoc        map[string]LocTarget
	PerfThreshold   float64 // complexity-score threshold for "costly"
	PerfNoise       float64 // score noise amplitude
	PerfBigWeight   float64 // weight of recognized production-scale tables
	QueryEquiv      map[string]BinaryTarget
	EquivTypeAcc    map[string]float64
	ExplainSkill    float64 // fact-retention probability in query_exp
	FlipSuperlative float64 // probability of misreading ASC/DESC LIMIT 1
	Tilt            float64 // complexity-tilt exponent alpha
	// table_state channel: StateSkill is the probability of tracing a
	// DML/transaction script perfectly; a failed trace mis-applies a
	// ROLLBACK as if it committed with probability StateTxnConfuse (the
	// transaction-visibility error), otherwise it drops the script's last
	// DML statement (the attention-slip error).
	StateSkill      float64
	StateTxnConfuse float64
}

// datasetNames used as calibration keys.
const (
	dsSDSS     = "SDSS"
	dsSQLShare = "SQLShare"
	dsJoin     = "Join-Order"
	dsSpider   = "Spider"
)

// complexityStats hold the generator populations' word-count moments, used
// to z-score queries for the tilt. (Measured once over the seeded
// workloads; see EXPERIMENTS.md.)
type complexityStats struct {
	meanWords, sdWords float64
}

var datasetComplexity = map[string]complexityStats{
	dsSDSS:     {meanWords: 66, sdWords: 48},
	dsSQLShare: {meanWords: 25, sdWords: 27},
	dsJoin:     {meanWords: 92, sdWords: 58},
	dsSpider:   {meanWords: 13, sdWords: 8},
}

// errorTypeWeight encodes Figure 7: which syntax-error types each dataset
// makes hardest (weights multiply the miss rate; ~1 on average).
var errorTypeWeight = map[string]map[semcheck.Code]float64{
	dsSDSS: {
		semcheck.CodeNestedMismatch:    1.6,
		semcheck.CodeConditionMismatch: 1.5,
		semcheck.CodeAggrAttr:          0.7,
		semcheck.CodeAggrHaving:        0.7,
		semcheck.CodeAliasUndefined:    0.75,
		semcheck.CodeAliasAmbiguous:    0.75,
	},
	dsSQLShare: {
		semcheck.CodeAliasAmbiguous:    1.8,
		semcheck.CodeAliasUndefined:    1.0,
		semcheck.CodeAggrAttr:          0.8,
		semcheck.CodeAggrHaving:        0.8,
		semcheck.CodeNestedMismatch:    0.8,
		semcheck.CodeConditionMismatch: 0.8,
	},
	dsJoin: {
		semcheck.CodeNestedMismatch:    1.8,
		semcheck.CodeConditionMismatch: 1.0,
		semcheck.CodeAggrAttr:          0.8,
		semcheck.CodeAggrHaving:        0.8,
		semcheck.CodeAliasUndefined:    0.8,
		semcheck.CodeAliasAmbiguous:    0.8,
	},
}

// tokenKindWeight encodes Figure 9: keyword removals are hardest in SDSS,
// alias/table removals in SQLShare, Join-Order is flat.
var tokenKindWeight = map[string]map[mutate.TokenKind]float64{
	dsSDSS: {
		mutate.TokKeyword: 1.7, mutate.TokColumn: 0.85, mutate.TokTable: 0.85,
		mutate.TokValue: 0.85, mutate.TokAlias: 0.9, mutate.TokComparison: 0.85,
	},
	dsSQLShare: {
		mutate.TokAlias: 1.5, mutate.TokTable: 1.5, mutate.TokKeyword: 0.75,
		mutate.TokColumn: 0.75, mutate.TokValue: 0.75, mutate.TokComparison: 0.75,
	},
	dsJoin: {
		mutate.TokKeyword: 1.0, mutate.TokColumn: 1.0, mutate.TokTable: 1.0,
		mutate.TokValue: 1.0, mutate.TokAlias: 1.0, mutate.TokComparison: 1.0,
	},
}

// profiles holds the per-model calibrations, transcribed from the paper's
// Tables 3-7. Performance-prediction thresholds/noise are fitted to Table 6
// (lower threshold = positive bias: higher recall, lower precision).
var profiles = map[string]Profile{
	"GPT4": {
		SyntaxError: map[string]BinaryTarget{
			dsSDSS: {0.98, 0.95}, dsSQLShare: {0.94, 0.93}, dsJoin: {0.95, 0.91},
		},
		SyntaxTypeAcc: map[string]float64{dsSDSS: 0.95, dsSQLShare: 0.88, dsJoin: 0.89},
		MissToken: map[string]BinaryTarget{
			dsSDSS: {0.99, 0.97}, dsSQLShare: {0.98, 0.96}, dsJoin: {1.00, 0.97},
		},
		MissTokenAcc: map[string]float64{dsSDSS: 0.94, dsSQLShare: 0.90, dsJoin: 0.98},
		TokenLoc: map[string]LocTarget{
			dsSDSS: {4.69, 0.56}, dsSQLShare: {3.96, 0.63}, dsJoin: {3.45, 0.57},
		},
		PerfThreshold: 3.10, PerfNoise: 0.90, PerfBigWeight: 1.6,
		QueryEquiv: map[string]BinaryTarget{
			dsSDSS: {0.98, 1.00}, dsSQLShare: {0.97, 1.00}, dsJoin: {0.91, 1.00},
		},
		EquivTypeAcc:    map[string]float64{dsSDSS: 0.99, dsSQLShare: 0.98, dsJoin: 0.83},
		ExplainSkill:    0.92,
		FlipSuperlative: 0.5,
		Tilt:            0.55,
		StateSkill:      0.85,
		StateTxnConfuse: 0.55,
	},
	"GPT3.5": {
		SyntaxError: map[string]BinaryTarget{
			dsSDSS: {0.94, 0.85}, dsSQLShare: {0.91, 0.86}, dsJoin: {0.93, 0.81},
		},
		SyntaxTypeAcc: map[string]float64{dsSDSS: 0.85, dsSQLShare: 0.83, dsJoin: 0.78},
		MissToken: map[string]BinaryTarget{
			dsSDSS: {0.92, 0.92}, dsSQLShare: {0.97, 0.88}, dsJoin: {0.98, 0.94},
		},
		MissTokenAcc: map[string]float64{dsSDSS: 0.75, dsSQLShare: 0.73, dsJoin: 0.82},
		TokenLoc: map[string]LocTarget{
			dsSDSS: {17.71, 0.25}, dsSQLShare: {7.71, 0.42}, dsJoin: {14.31, 0.39},
		},
		PerfThreshold: 2.60, PerfNoise: 1.00, PerfBigWeight: 1.3,
		QueryEquiv: map[string]BinaryTarget{
			dsSDSS: {0.87, 0.99}, dsSQLShare: {0.96, 1.00}, dsJoin: {0.83, 0.99},
		},
		EquivTypeAcc:    map[string]float64{dsSDSS: 0.91, dsSQLShare: 0.94, dsJoin: 0.77},
		ExplainSkill:    0.80,
		FlipSuperlative: 0.6,
		Tilt:            0.6,
		StateSkill:      0.62,
		StateTxnConfuse: 0.55,
	},
	"Llama3": {
		SyntaxError: map[string]BinaryTarget{
			dsSDSS: {0.95, 0.76}, dsSQLShare: {0.92, 0.81}, dsJoin: {0.95, 0.65},
		},
		SyntaxTypeAcc: map[string]float64{dsSDSS: 0.79, dsSQLShare: 0.76, dsJoin: 0.64},
		MissToken: map[string]BinaryTarget{
			dsSDSS: {0.96, 0.94}, dsSQLShare: {0.91, 0.92}, dsJoin: {0.97, 0.94},
		},
		MissTokenAcc: map[string]float64{dsSDSS: 0.86, dsSQLShare: 0.72, dsJoin: 0.84},
		TokenLoc: map[string]LocTarget{
			dsSDSS: {15.60, 0.33}, dsSQLShare: {7.57, 0.40}, dsJoin: {13.11, 0.39},
		},
		PerfThreshold: 2.20, PerfNoise: 1.00, PerfBigWeight: 1.2,
		QueryEquiv: map[string]BinaryTarget{
			dsSDSS: {0.88, 1.00}, dsSQLShare: {0.94, 0.98}, dsJoin: {0.87, 0.99},
		},
		EquivTypeAcc:    map[string]float64{dsSDSS: 0.86, dsSQLShare: 0.89, dsJoin: 0.80},
		ExplainSkill:    0.75,
		FlipSuperlative: 0.7,
		Tilt:            0.65,
		StateSkill:      0.55,
		StateTxnConfuse: 0.60,
	},
	"MistralAI": {
		SyntaxError: map[string]BinaryTarget{
			dsSDSS: {0.93, 0.91}, dsSQLShare: {0.92, 0.91}, dsJoin: {0.85, 0.94},
		},
		SyntaxTypeAcc: map[string]float64{dsSDSS: 0.89, dsSQLShare: 0.79, dsJoin: 0.82},
		MissToken: map[string]BinaryTarget{
			dsSDSS: {0.99, 0.86}, dsSQLShare: {0.96, 0.87}, dsJoin: {1.00, 0.94},
		},
		MissTokenAcc: map[string]float64{dsSDSS: 0.86, dsSQLShare: 0.78, dsJoin: 0.90},
		TokenLoc: map[string]LocTarget{
			dsSDSS: {18.09, 0.36}, dsSQLShare: {8.58, 0.42}, dsJoin: {9.92, 0.40},
		},
		PerfThreshold: 0.45, PerfNoise: 0.80, PerfBigWeight: 1.0,
		QueryEquiv: map[string]BinaryTarget{
			dsSDSS: {0.95, 0.95}, dsSQLShare: {0.95, 0.93}, dsJoin: {0.86, 0.89},
		},
		EquivTypeAcc:    map[string]float64{dsSDSS: 0.80, dsSQLShare: 0.89, dsJoin: 0.68},
		ExplainSkill:    0.80,
		FlipSuperlative: 0.05,
		Tilt:            0.6,
		StateSkill:      0.58,
		StateTxnConfuse: 0.50,
	},
	"Gemini": {
		SyntaxError: map[string]BinaryTarget{
			dsSDSS: {0.94, 0.70}, dsSQLShare: {0.97, 0.53}, dsJoin: {0.84, 0.61},
		},
		SyntaxTypeAcc: map[string]float64{dsSDSS: 0.73, dsSQLShare: 0.58, dsJoin: 0.52},
		MissToken: map[string]BinaryTarget{
			dsSDSS: {0.99, 0.76}, dsSQLShare: {0.98, 0.68}, dsJoin: {0.97, 0.69},
		},
		MissTokenAcc: map[string]float64{dsSDSS: 0.54, dsSQLShare: 0.57, dsJoin: 0.39},
		TokenLoc: map[string]LocTarget{
			dsSDSS: {19.78, 0.34}, dsSQLShare: {9.79, 0.38}, dsJoin: {20.22, 0.32},
		},
		PerfThreshold: 2.10, PerfNoise: 1.15, PerfBigWeight: 0.8,
		QueryEquiv: map[string]BinaryTarget{
			dsSDSS: {0.84, 0.97}, dsSQLShare: {0.92, 0.99}, dsJoin: {0.85, 0.96},
		},
		EquivTypeAcc:    map[string]float64{dsSDSS: 0.71, dsSQLShare: 0.87, dsJoin: 0.75},
		ExplainSkill:    0.65,
		FlipSuperlative: 0.6,
		Tilt:            0.7,
		StateSkill:      0.45,
		StateTxnConfuse: 0.65,
	},
}

// ProfileFor returns the calibration for a model name.
func ProfileFor(name string) (Profile, bool) {
	p, ok := profiles[name]
	return p, ok
}

// confusionError maps each syntax-error type to the type models most often
// confuse it with.
var confusionError = map[semcheck.Code]semcheck.Code{
	semcheck.CodeAggrAttr:          semcheck.CodeAggrHaving,
	semcheck.CodeAggrHaving:        semcheck.CodeAggrAttr,
	semcheck.CodeNestedMismatch:    semcheck.CodeConditionMismatch,
	semcheck.CodeConditionMismatch: semcheck.CodeNestedMismatch,
	semcheck.CodeAliasUndefined:    semcheck.CodeAliasAmbiguous,
	semcheck.CodeAliasAmbiguous:    semcheck.CodeAliasUndefined,
}

// confusionToken maps each token kind to its most confusable neighbor.
var confusionToken = map[mutate.TokenKind]mutate.TokenKind{
	mutate.TokKeyword:    mutate.TokComparison,
	mutate.TokTable:      mutate.TokAlias,
	mutate.TokColumn:     mutate.TokAlias,
	mutate.TokValue:      mutate.TokColumn,
	mutate.TokAlias:      mutate.TokColumn,
	mutate.TokComparison: mutate.TokKeyword,
}
