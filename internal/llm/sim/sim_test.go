package sim

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/llm"
	"repro/internal/llm/clienttest"
	"repro/internal/prompt"
	"repro/internal/respparse"
)

func knowledge() *Knowledge {
	return NewKnowledge(map[string]*catalog.Schema{
		"SDSS":       catalog.SDSS(),
		"Join-Order": catalog.IMDB(),
		"SQLShare":   catalog.Merged("sqlshare", catalog.SQLShareSchemas()...),
		"Spider":     catalog.Merged("spider", catalog.SpiderSchemas()...),
	})
}

func TestRegistryHasAllModels(t *testing.T) {
	reg := Registry(knowledge())
	for _, name := range llm.ModelNames {
		c, err := reg.Get(name)
		if err != nil {
			t.Fatalf("Get(%s): %v", name, err)
		}
		if c.Name() != name {
			t.Errorf("Name = %q, want %q", c.Name(), name)
		}
	}
	if _, err := reg.Get("nosuch"); err == nil {
		t.Error("Get(nosuch) should fail")
	}
}

func TestUnknownProfile(t *testing.T) {
	if _, err := New("GPT9", knowledge()); err == nil {
		t.Error("New(GPT9) should fail")
	}
}

func TestDetectDataset(t *testing.T) {
	k := knowledge()
	cases := map[string]string{
		"SELECT plate FROM SpecObj WHERE z > 0.5":                                                "SDSS",
		"SELECT MIN( t.title ) FROM title AS t , movie_companies AS mc WHERE t.id = mc.movie_id": "Join-Order",
		"SELECT temperature FROM samples WHERE depth > 100":                                      "SQLShare",
		"SELECT name FROM stadium ORDER BY capacity DESC LIMIT 1":                                "Spider",
	}
	for sql, want := range cases {
		if got := k.DetectDataset(sql); got != want {
			t.Errorf("DetectDataset(%q) = %q, want %q", sql, got, want)
		}
	}
}

func TestCompleteDeterministic(t *testing.T) {
	k := knowledge()
	m, _ := New("GPT4", k)
	p := prompt.Default(prompt.SyntaxError).Render("SELECT plate , COUNT(*) FROM SpecObj")
	a, err := llm.Complete(context.Background(), m, p)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := llm.Complete(context.Background(), m, p)
	if a != b {
		t.Errorf("non-deterministic response:\n%s\n%s", a, b)
	}
}

func TestSyntaxErrorDetection(t *testing.T) {
	k := knowledge()
	m, _ := New("GPT4", k)
	ctx := context.Background()

	// A clear error: GPT4's channel virtually always reports it.
	bad := prompt.Default(prompt.SyntaxError).Render("SELECT plate , COUNT(*) FROM SpecObj")
	resp, err := llm.Complete(ctx, m, bad)
	if err != nil {
		t.Fatal(err)
	}
	v, err := respparse.ParseSyntax(resp)
	if err != nil {
		t.Fatalf("unparseable response %q: %v", resp, err)
	}
	if !v.HasError {
		t.Errorf("GPT4 missed an obvious aggr-attr: %q", resp)
	}
	if v.ErrorType != "aggr-attr" && v.ErrorType != "aggr-having" {
		t.Errorf("reported type %q", v.ErrorType)
	}

	good := prompt.Default(prompt.SyntaxError).Render("SELECT plate FROM SpecObj WHERE z > 0.5")
	resp, _ = llm.Complete(ctx, m, good)
	v, err = respparse.ParseSyntax(resp)
	if err != nil {
		t.Fatalf("unparseable response %q: %v", resp, err)
	}
	if v.HasError {
		t.Errorf("GPT4 false-alarmed on a clean query: %q", resp)
	}
}

func TestMissTokenRoundTrip(t *testing.T) {
	k := knowledge()
	m, _ := New("GPT4", k)
	ctx := context.Background()
	damaged := prompt.Default(prompt.MissToken).Render("SELECT plate SpecObj WHERE z > 0.5")
	resp, err := llm.Complete(ctx, m, damaged)
	if err != nil {
		t.Fatal(err)
	}
	v, err := respparse.ParseMissToken(resp)
	if err != nil {
		t.Fatalf("unparseable %q: %v", resp, err)
	}
	if !v.Missing {
		t.Errorf("GPT4 missed a removed FROM: %q", resp)
	}
	intact := prompt.Default(prompt.MissToken).Render("SELECT plate FROM SpecObj WHERE z > 0.5")
	resp, _ = llm.Complete(ctx, m, intact)
	v, err = respparse.ParseMissToken(resp)
	if err != nil {
		t.Fatalf("unparseable %q: %v", resp, err)
	}
	if v.Missing {
		t.Errorf("GPT4 hallucinated a missing token: %q", resp)
	}
}

func TestAllModelsProduceParseableResponses(t *testing.T) {
	k := knowledge()
	reg := Registry(k)
	ctx := context.Background()
	prompts := []string{
		prompt.Default(prompt.SyntaxError).Render("SELECT plate , COUNT(*) FROM SpecObj"),
		prompt.Default(prompt.SyntaxError).Render("SELECT plate FROM SpecObj"),
		prompt.Default(prompt.MissToken).Render("SELECT plate SpecObj"),
		prompt.Default(prompt.MissToken).Render("SELECT plate FROM SpecObj"),
		prompt.Default(prompt.PerfPred).Render("SELECT s.plate FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid JOIN Neighbors AS nb ON p.objid = nb.objid"),
		prompt.Default(prompt.QueryEquiv).RenderPair(
			"SELECT plate FROM SpecObj WHERE z > 0.5 AND mjd > 55000",
			"SELECT plate FROM SpecObj WHERE mjd > 55000 AND z > 0.5"),
		prompt.Default(prompt.QueryExp).Render("SELECT name FROM stadium ORDER BY capacity DESC LIMIT 1"),
	}
	for _, name := range llm.ModelNames {
		c, _ := reg.Get(name)
		for i, p := range prompts {
			resp, err := llm.Complete(ctx, c, p)
			if err != nil {
				t.Fatalf("%s prompt %d: %v", name, i, err)
			}
			if strings.TrimSpace(resp) == "" {
				t.Errorf("%s prompt %d: empty response", name, i)
			}
		}
	}
}

func TestEquivProvablePairAnswered(t *testing.T) {
	k := knowledge()
	m, _ := New("GPT4", k)
	p := prompt.Default(prompt.QueryEquiv).RenderPair(
		"SELECT plate FROM SpecObj WHERE z > 0.5 AND mjd > 55000",
		"SELECT plate FROM SpecObj WHERE mjd > 55000 AND z > 0.5")
	resp, err := llm.Complete(context.Background(), m, p)
	if err != nil {
		t.Fatal(err)
	}
	v, err := respparse.ParseEquiv(resp)
	if err != nil {
		t.Fatalf("unparseable %q: %v", resp, err)
	}
	if !v.Equivalent {
		t.Errorf("GPT4 rejected a provably equivalent pair: %q", resp)
	}
}

func TestExplainMentionsQueryContent(t *testing.T) {
	k := knowledge()
	m, _ := New("GPT4", k)
	p := prompt.Default(prompt.QueryExp).Render("SELECT name FROM stadium ORDER BY capacity DESC LIMIT 1")
	resp, err := llm.Complete(context.Background(), m, p)
	if err != nil {
		t.Fatal(err)
	}
	lower := strings.ToLower(resp)
	if !strings.Contains(lower, "highest") && !strings.Contains(lower, "lowest") {
		t.Errorf("explanation lacks superlative: %q", resp)
	}
}

func TestMistralReadsSuperlativeCorrectly(t *testing.T) {
	// The paper's Q18: only MistralAI explained ASC LIMIT 1 correctly.
	k := knowledge()
	m, _ := New("MistralAI", k)
	q18 := "SELECT C.cylinders FROM CARS_DATA AS C JOIN CAR_NAMES AS T ON C.Id = T.MakeId WHERE T.Model = 'volvo' ORDER BY C.accelerate ASC LIMIT 1"
	resp, err := llm.Complete(context.Background(), m, prompt.Default(prompt.QueryExp).Render(q18))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToLower(resp), "lowest") {
		t.Errorf("MistralAI misread the superlative: %q", resp)
	}
}

func TestContextCancellation(t *testing.T) {
	k := knowledge()
	m, _ := New("GPT4", k)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := llm.Complete(ctx, m, "anything"); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context returned %v, want context.Canceled", err)
	}
}

// The full llm.Client contract, for every simulated model.
func TestClientContract(t *testing.T) {
	k := knowledge()
	for _, name := range llm.ModelNames {
		t.Run(name, func(t *testing.T) {
			clienttest.Run(t, clienttest.Options{
				New: func(t *testing.T) llm.Client {
					m, err := New(name, k)
					if err != nil {
						t.Fatal(err)
					}
					return m
				},
				Deterministic: true,
			})
		})
	}
}

// Usage and latency must be deterministic simulated values: identical
// requests report identical accounting, and the fields are plausible.
func TestDoUsageDeterministic(t *testing.T) {
	k := knowledge()
	m, _ := New("GPT4", k)
	req := llm.NewRequest(prompt.Default(prompt.SyntaxError).Render("SELECT plate FROM SpecObj WHERE z > 0.5"))
	a, err := m.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := m.Do(context.Background(), req)
	if a.Usage != b.Usage || a.Latency != b.Latency || a.Text != b.Text {
		t.Errorf("non-deterministic response: %+v vs %+v", a, b)
	}
	if a.Usage.PromptTokens <= 0 || a.Usage.CompletionTokens <= 0 || a.Latency <= 0 {
		t.Errorf("implausible usage: %+v latency %v", a.Usage, a.Latency)
	}
	if a.FinishReason != llm.FinishStop {
		t.Errorf("finish = %q", a.FinishReason)
	}
	if a.Model != "GPT4" {
		t.Errorf("model = %q", a.Model)
	}
}

// MaxTokens truncates deterministically and reports FinishLength.
func TestDoMaxTokens(t *testing.T) {
	k := knowledge()
	m, _ := New("GPT4", k)
	req := llm.NewRequest(prompt.Default(prompt.SyntaxError).Render("SELECT plate , COUNT(*) FROM SpecObj"))
	full, err := m.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	req.MaxTokens = 3
	cut, err := m.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if cut.FinishReason != llm.FinishLength {
		t.Errorf("finish = %q, want length", cut.FinishReason)
	}
	if cut.Usage.CompletionTokens != 3 {
		t.Errorf("completion tokens = %d, want 3", cut.Usage.CompletionTokens)
	}
	if len(cut.Text) >= len(full.Text) || !strings.HasPrefix(full.Text, cut.Text) {
		t.Errorf("truncation broken:\nfull %q\ncut  %q", full.Text, cut.Text)
	}
	// A cap above the natural length changes nothing.
	req.MaxTokens = 100000
	uncut, _ := m.Do(context.Background(), req)
	if uncut.Text != full.Text || uncut.FinishReason != llm.FinishStop {
		t.Errorf("generous cap altered response")
	}
}

// The sim spec factory builds the calibrated profiles and refuses renames
// (the name feeds the deterministic channels).
func TestFactory(t *testing.T) {
	k := knowledge()
	f := Factory(k)
	c, err := f(llm.Spec{Name: "GPT4", Provider: "sim"})
	if err != nil || c.Name() != "GPT4" {
		t.Fatalf("Factory(GPT4) = %v, %v", c, err)
	}
	if _, err := f(llm.Spec{Name: "nosuch", Provider: "sim"}); err == nil {
		t.Error("unknown profile should fail")
	}
	if _, err := f(llm.Spec{Name: "alias", Model: "GPT4", Provider: "sim"}); err == nil {
		t.Error("renaming a simulator should fail")
	}
}

func TestProfilesCoverAllModels(t *testing.T) {
	for _, name := range llm.ModelNames {
		p, ok := ProfileFor(name)
		if !ok {
			t.Fatalf("no profile for %s", name)
		}
		for _, ds := range []string{dsSDSS, dsSQLShare, dsJoin} {
			if p.SyntaxError[ds].Prec == 0 || p.MissToken[ds].Prec == 0 || p.QueryEquiv[ds].Prec == 0 {
				t.Errorf("%s missing binary targets for %s", name, ds)
			}
			if p.TokenLoc[ds].MAE == 0 {
				t.Errorf("%s missing loc target for %s", name, ds)
			}
		}
		if p.ExplainSkill <= 0 || p.ExplainSkill > 1 {
			t.Errorf("%s explain skill out of range", name)
		}
	}
}

func TestBinaryTargetMath(t *testing.T) {
	b := BinaryTarget{Prec: 0.9, Rec: 0.8}
	if got := b.missRate(); got < 0.199 || got > 0.201 {
		t.Errorf("missRate = %v", got)
	}
	// fa = r(1-p)/p = 0.8*0.1/0.9
	if got := b.falseAlarmRate(); got < 0.088 || got > 0.090 {
		t.Errorf("falseAlarmRate = %v", got)
	}
}
