package sim

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"sync"
	"time"
	"unicode/utf8"

	"repro/internal/analyze"
	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/equiv"
	"repro/internal/llm"
	"repro/internal/mutate"
	"repro/internal/nlgen"
	"repro/internal/prompt"
	"repro/internal/repair"
	"repro/internal/semcheck"
	"repro/internal/sqlast"
	"repro/internal/sqllex"
	"repro/internal/sqlparse"
)

// Knowledge is the shared "pretraining" context the simulated models resolve
// queries against: the union of the workload schemas, plus per-dataset table
// sets used to infer which workload a query belongs to.
type Knowledge struct {
	Merged        *catalog.Schema
	datasetTables map[string]map[string]bool

	checker     *semcheck.Checker
	checkCache  sync.Map // sql -> []semcheck.Diagnostic
	repairCache sync.Map // sql -> repair.Result
}

// NewKnowledge builds the context from per-dataset schemas.
func NewKnowledge(byDataset map[string]*catalog.Schema) *Knowledge {
	var all []*catalog.Schema
	tables := make(map[string]map[string]bool, len(byDataset))
	for ds, schema := range byDataset {
		all = append(all, schema)
		set := map[string]bool{}
		for _, t := range schema.Tables() {
			set[strings.ToLower(t.Name)] = true
		}
		tables[ds] = set
	}
	merged := catalog.Merged("knowledge", all...)
	return &Knowledge{
		Merged:        merged,
		datasetTables: tables,
		checker:       semcheck.New(merged),
	}
}

// DetectDataset infers which workload a query belongs to by matching its
// identifiers against the per-dataset table sets.
func (k *Knowledge) DetectDataset(sql string) string {
	toks, err := sqllex.LexWords(sql)
	if err != nil {
		return dsSDSS
	}
	// Only identifiers in table position (after FROM/JOIN/INTO/UPDATE/TABLE
	// or a list comma) vote, so column names that coincide with another
	// dataset's table names don't mislead.
	var tablePos []string
	for i, t := range toks {
		if t.Kind != sqllex.Ident && t.Kind != sqllex.QuotedIdent {
			continue
		}
		if i == 0 {
			continue
		}
		prev := toks[i-1]
		if prev.Is("FROM") || prev.Is("JOIN") || prev.Is("INTO") ||
			prev.Is("UPDATE") || prev.Is("TABLE") || prev.Kind == sqllex.Comma {
			tablePos = append(tablePos, strings.ToLower(t.Val()))
		}
	}
	best, bestHits := dsSDSS, 0
	// Deterministic evaluation order.
	for _, ds := range []string{dsSDSS, dsSQLShare, dsJoin, dsSpider} {
		set, ok := k.datasetTables[ds]
		if !ok {
			continue
		}
		hits := 0
		for _, name := range tablePos {
			if set[name] {
				hits++
			}
		}
		if hits > bestHits {
			best, bestHits = ds, hits
		}
	}
	return best
}

func (k *Knowledge) check(sql string) []semcheck.Diagnostic {
	if v, ok := k.checkCache.Load(sql); ok {
		return v.([]semcheck.Diagnostic)
	}
	diags := k.checker.CheckSQL(sql)
	k.checkCache.Store(sql, diags)
	return diags
}

func (k *Knowledge) detectMissing(sql string) repair.Result {
	if v, ok := k.repairCache.Load(sql); ok {
		return v.(repair.Result)
	}
	res := repair.Detect(sql, k.Merged)
	k.repairCache.Store(sql, res)
	return res
}

// Model is one simulated LLM.
type Model struct {
	name      string
	profile   Profile
	knowledge *Knowledge
}

// New returns the named simulated model over the knowledge context.
func New(name string, k *Knowledge) (*Model, error) {
	p, ok := ProfileFor(name)
	if !ok {
		return nil, fmt.Errorf("sim: %w: %q", llm.ErrUnknownModel, name)
	}
	return &Model{name: name, profile: p, knowledge: k}, nil
}

// NewWithProfile returns a model with a custom calibration; the ablation
// benchmarks use it to switch individual channel features off.
func NewWithProfile(name string, p Profile, k *Knowledge) *Model {
	return &Model{name: name, profile: p, knowledge: k}
}

// Registry returns all five paper models registered over shared knowledge.
func Registry(k *Knowledge) *llm.Registry {
	reg := llm.NewRegistry()
	for _, name := range llm.ModelNames {
		m, err := New(name, k)
		if err != nil {
			panic(err) // unreachable: ModelNames and profiles are aligned
		}
		reg.Register(m)
	}
	return reg
}

// Factory adapts the simulated models to the llm.Spec construction surface
// (provider "sim"). The spec's Model field selects the calibrated profile
// and must equal the spec Name: the name feeds the deterministic response
// channels, so a renamed simulator would answer differently than the paper's
// calibration.
func Factory(k *Knowledge) llm.Factory {
	return func(spec llm.Spec) (llm.Client, error) {
		profile := spec.Model
		if profile == "" {
			profile = spec.Name
		}
		if profile != spec.Name {
			return nil, fmt.Errorf("sim: model %q cannot be renamed to %q (responses are calibrated per name)", profile, spec.Name)
		}
		return New(profile, k)
	}
}

// Name implements llm.Client.
func (m *Model) Name() string { return m.name }

// Do implements llm.Client: it infers the task from the prompt, extracts the
// embedded quer(ies), runs the analyzers, applies the error channel, and
// renders a model-flavored verbose response with deterministic simulated
// token usage and latency. Cancellation is honored promptly so a cancelled
// batch stops burning work.
func (m *Model) Do(ctx context.Context, req llm.Request) (llm.Response, error) {
	if err := ctx.Err(); err != nil {
		return llm.Response{}, err
	}
	promptText := req.UserPrompt()
	text := m.answer(promptText)
	usage := llm.Usage{
		PromptTokens:     simTokens(promptText),
		CompletionTokens: simTokens(text),
	}
	finish := llm.FinishStop
	if req.MaxTokens > 0 && usage.CompletionTokens > req.MaxTokens {
		text = truncateTokens(text, req.MaxTokens)
		usage.CompletionTokens = req.MaxTokens
		finish = llm.FinishLength
	}
	return llm.Response{
		Text:         text,
		Model:        m.name,
		Usage:        usage,
		Latency:      m.simLatency(promptText, usage.CompletionTokens),
		FinishReason: finish,
	}, nil
}

// simTokens is the deterministic token estimate the simulators report: the
// conventional ~4 bytes/token heuristic, at least 1 for non-empty text.
func simTokens(s string) int {
	if s == "" {
		return 0
	}
	return (len(s) + 3) / 4
}

// truncateTokens cuts text to roughly maxTokens under the simTokens
// estimate, respecting rune boundaries — the simulated analogue of a
// provider stopping generation at the token cap.
func truncateTokens(text string, maxTokens int) string {
	limit := maxTokens * 4
	if limit >= len(text) {
		return text
	}
	for limit > 0 && !utf8.RuneStart(text[limit]) {
		limit--
	}
	return text[:limit]
}

// simLatency is the deterministic simulated wall latency: a base cost plus a
// per-token generation cost plus per-prompt jitter, all derived from the
// model's hash channels so identical requests report identical latency.
func (m *Model) simLatency(promptText string, completionTokens int) time.Duration {
	ms := 25 + 2.5*float64(completionTokens) + 50*m.unit("latency", promptText)
	return time.Duration(ms * float64(time.Millisecond))
}

// answer renders the model's response text for a prompt.
func (m *Model) answer(promptText string) string {
	task, ok := prompt.DetectTask(promptText)
	if !ok {
		return m.style().unsure
	}
	quality := promptQuality(promptText)
	switch task {
	case prompt.QueryEquiv:
		q1, q2, ok := prompt.ExtractQueryPair(promptText)
		if !ok {
			return m.style().unsure
		}
		return m.answerEquiv(q1, q2, quality)
	default:
		q, ok := prompt.ExtractQuery(promptText)
		if !ok {
			return m.style().unsure
		}
		switch task {
		case prompt.SyntaxError:
			return m.answerSyntax(q, quality)
		case prompt.MissToken:
			return m.answerMissToken(q, quality)
		case prompt.FillToken:
			return m.answerFill(q, quality)
		case prompt.PerfPred:
			return m.answerPerf(q)
		case prompt.QueryExp:
			return m.answerExplain(q)
		case prompt.TableState:
			return m.answerState(q, quality)
		}
	}
	return m.style().unsure
}

// promptQuality returns an error-rate multiplier reflecting how much
// guidance the instruction gives (the effect the paper's Section 3.4 prompt
// tuning measures): the published, detailed prompts perform best; terse
// variants degrade. Detection keys on wording the variant sets use.
func promptQuality(promptText string) float64 {
	lower := strings.ToLower(promptText)
	// Worked examples sharpen the model: few-shot prompts cut error rates
	// (the mitigation the paper anticipates in its conclusion).
	if strings.Contains(lower, "example 1:") && strings.Contains(lower, "answer:") {
		return 0.55
	}
	switch {
	// Terse v3-style prompts.
	case strings.Contains(lower, "reply yes/no"),
		strings.Contains(lower, "say yes or no"),
		strings.Contains(lower, "answer yes or no"),
		strings.Contains(lower, "same results or not"),
		strings.Contains(lower, "trace the script"):
		return 1.6
	// Reworded v2-style prompts: close to the tuned one.
	case strings.Contains(lower, "you are a sql reviewer"),
		strings.Contains(lower, "report its type"),
		strings.Contains(lower, "classify the rewrite"),
		strings.Contains(lower, "runtime cost"),
		strings.Contains(lower, "execute this dml script mentally"):
		return 1.15
	default:
		return 1.0
	}
}

// ---------------------------------------------------------------------------
// Channel primitives

// unit hashes the parts into a deterministic uniform [0,1).
func (m *Model) unit(parts ...string) float64 {
	h := fnv.New64a()
	h.Write([]byte(m.name))
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return float64(h.Sum64()%(1<<53)) / float64(uint64(1)<<53)
}

// gauss produces a deterministic standard normal via Box-Muller.
func (m *Model) gauss(parts ...string) float64 {
	u1 := m.unit(append(parts, "g1")...)
	u2 := m.unit(append(parts, "g2")...)
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// zWords standardizes a query's word count against its dataset population.
func zWords(dataset string, wordCount int) float64 {
	st, ok := datasetComplexity[dataset]
	if !ok || st.sdWords == 0 {
		return 0
	}
	z := (float64(wordCount) - st.meanWords) / st.sdWords
	if z > 2.5 {
		z = 2.5
	}
	if z < -2.5 {
		z = -2.5
	}
	return z
}

// tilt scales a base error rate by exp(alpha*z), normalized so the expected
// rate over the population stays near base.
func (m *Model) tilt(base, z float64) float64 {
	a := m.profile.Tilt
	r := base * math.Exp(a*z) / math.Exp(a*a/2)
	if r > 0.95 {
		r = 0.95
	}
	if r < 0 {
		r = 0
	}
	return r
}

// ---------------------------------------------------------------------------
// syntax_error / syntax_error_type

func (m *Model) answerSyntax(sql string, quality float64) string {
	dataset := m.knowledge.DetectDataset(sql)
	target := m.profile.SyntaxError[dataset]
	if target.Prec == 0 {
		target = m.profile.SyntaxError[dsSDSS]
	}
	diags := m.knowledge.check(sql)
	z := zWords(dataset, len(sqllex.Words(sql)))
	st := m.style()

	if len(diags) > 0 {
		primary := semcheck.Primary(diags)
		weight := errorTypeWeight[dataset][primary]
		if weight == 0 {
			weight = 1
		}
		miss := m.tilt(target.missRate()*weight*quality, z)
		if m.unit("syntax", "miss", sql) < miss {
			return st.noError
		}
		reported := primary
		acc := m.profile.SyntaxTypeAcc[dataset]
		if m.unit("syntax", "type", sql) >= acc {
			if conf, ok := confusionError[primary]; ok {
				reported = conf
			}
		}
		detail := ""
		if len(diags) > 0 {
			detail = diags[0].Msg
		}
		return fmt.Sprintf(st.hasError, reported, detail)
	}
	fa := m.tilt(target.falseAlarmRate()*quality, z)
	if m.unit("syntax", "fa", sql) < fa {
		invented := semcheck.PaperErrorTypes[int(m.unit("syntax", "fatype", sql)*6)%6]
		return fmt.Sprintf(st.hasError, invented, "the query structure looks inconsistent")
	}
	return st.noError
}

// ---------------------------------------------------------------------------
// miss_token / miss_token_type / miss_token_loc

func (m *Model) answerMissToken(sql string, quality float64) string {
	dataset := m.knowledge.DetectDataset(sql)
	target := m.profile.MissToken[dataset]
	if target.Prec == 0 {
		target = m.profile.MissToken[dsSDSS]
	}
	det := m.knowledge.detectMissing(sql)
	words := sqllex.Words(sql)
	z := zWords(dataset, len(words))
	st := m.style()

	if det.Found {
		weight := tokenKindWeight[dataset][det.Kind]
		if weight == 0 {
			weight = 1
		}
		miss := m.tilt(target.missRate()*weight*quality, z)
		if m.unit("misstok", "miss", sql) < miss {
			return st.noMissing
		}
		kind := det.Kind
		acc := m.profile.MissTokenAcc[dataset]
		if m.unit("misstok", "type", sql) >= acc {
			kind = confusionToken[kind]
		}
		pos := m.perturbPosition(det.WordIndex, len(words), dataset, sql)
		token := det.Inserted
		if token == "" {
			token = "(unknown)"
		}
		return fmt.Sprintf(st.missing, kind, token, pos+1) // 1-based in prose
	}
	fa := m.tilt(target.falseAlarmRate()*quality, z)
	if m.unit("misstok", "fa", sql) < fa {
		kinds := mutate.TokenKinds
		kind := kinds[int(m.unit("misstok", "fakind", sql)*float64(len(kinds)))%len(kinds)]
		pos := int(m.unit("misstok", "fapos", sql) * float64(len(words)))
		return fmt.Sprintf(st.missing, kind, "(unclear)", pos+1)
	}
	return st.noMissing
}

// answerFill handles the fill_token task: the repair oracle proposes the
// insertion that makes the query parse again, and the model reports that
// token under its miss_token operating point. The oracle's natural error
// modes carry over — keywords repair exactly, while identifier insertions
// are often plausible-but-wrong — which is precisely the difficulty
// ordering the paper observes for token kinds.
func (m *Model) answerFill(sql string, quality float64) string {
	dataset := m.knowledge.DetectDataset(sql)
	target := m.profile.MissToken[dataset]
	if target.Prec == 0 {
		target = m.profile.MissToken[dsSDSS]
	}
	det := m.knowledge.detectMissing(sql)
	z := zWords(dataset, len(sqllex.Words(sql)))
	st := m.style()

	if det.Found {
		miss := m.tilt(target.missRate()*quality, z)
		if m.unit("fill", "miss", sql) < miss {
			return st.fillComplete
		}
		token := det.Inserted
		if token == "" {
			token = "(unknown)"
		}
		return fmt.Sprintf(st.fillMissing, token)
	}
	fa := m.tilt(target.falseAlarmRate()*quality, z)
	if m.unit("fill", "fa", sql) < fa {
		kws := []string{"AND", "WHERE", "FROM", "BY"}
		return fmt.Sprintf(st.fillMissing, kws[int(m.unit("fill", "fatok", sql)*float64(len(kws)))%len(kws)])
	}
	return st.fillComplete
}

// perturbPosition adds calibrated location noise: exact with probability HR,
// otherwise offset by a geometric magnitude whose mean reproduces the MAE.
func (m *Model) perturbPosition(truth, nwords int, dataset, sql string) int {
	loc := m.profile.TokenLoc[dataset]
	if loc.HR == 0 {
		loc = m.profile.TokenLoc[dsSDSS]
	}
	if m.unit("loc", "hit", sql) < loc.HR {
		return clampInt(truth, 0, nwords-1)
	}
	meanOffset := 1.0
	if loc.HR < 1 {
		meanOffset = loc.MAE / (1 - loc.HR)
	}
	if meanOffset < 1 {
		meanOffset = 1
	}
	// Geometric-like magnitude with the target mean.
	u := m.unit("loc", "mag", sql)
	mag := 1 + int(-math.Log(1-u)*(meanOffset-0.5))
	if m.unit("loc", "sign", sql) < 0.5 {
		mag = -mag
	}
	return clampInt(truth+mag, 0, maxInt(nwords-1, 0))
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// performance_pred

func (m *Model) answerPerf(sql string) string {
	dataset := m.knowledge.DetectDataset(sql)
	props := analyze.Compute(sql)
	// The simulated models judge cost from surface features — how long and
	// column-heavy the query looks — plus world knowledge of which SDSS
	// relations are production-scale (the PerfBigWeight feature; stronger
	// models weigh real scan volume more, weaker ones lean on length, which
	// produces the paper's false positives on long cheap queries).
	z := zWords(dataset, props.WordCount)
	colZ := (float64(props.ColumnCount) - 8) / 8
	if colZ > 2.5 {
		colZ = 2.5
	}
	big := float64(countBigTables(sql))
	score := m.profile.PerfBigWeight*big + z + 0.25*colZ + m.profile.PerfNoise*m.gauss("perf", sql)
	st := m.style()
	if score > m.profile.PerfThreshold {
		return st.slow
	}
	return st.fast
}

// bigTables are the relations every astronomy-adjacent corpus describes as
// enormous; recognizing them is world knowledge, not oracle access.
var bigTables = map[string]bool{"photoobj": true, "phototag": true, "neighbors": true}

func countBigTables(sql string) int {
	toks, err := sqllex.LexWords(sql)
	if err != nil {
		return 0
	}
	seen := map[string]bool{}
	for _, t := range toks {
		if t.Kind == sqllex.Ident {
			name := strings.ToLower(t.Val())
			if bigTables[name] {
				seen[name] = true
			}
		}
	}
	return len(seen)
}

// ---------------------------------------------------------------------------
// query_equiv / query_equiv_type

func (m *Model) answerEquiv(sql1, sql2 string, quality float64) string {
	dataset := m.knowledge.DetectDataset(sql1)
	target := m.profile.QueryEquiv[dataset]
	if target.Prec == 0 {
		target = m.profile.QueryEquiv[dsSDSS]
	}
	st := m.style()
	sel1, err1 := sqlparse.ParseSelect(sql1)
	sel2, err2 := sqlparse.ParseSelect(sql2)
	if err1 != nil || err2 != nil {
		return st.notEquivalent
	}
	key := sql1 + "\x00" + sql2
	z := zWords(dataset, len(sqllex.Words(sql1)))
	guessType := equiv.ClassifyPair(sel1, sel2)

	added, removed := equiv.DiffStats(sql1, sql2)
	sayEquivalent := false
	switch {
	case equiv.RuleEquivalent(sel1, sel2):
		// Provably equivalent under normalization: answer yes unless the
		// model's (small) residual miss rate fires.
		sayEquivalent = m.unit("equiv", "provable", key) >= m.tilt(target.missRate()*quality, z)
	case added+removed <= 4 || added == 0:
		// A subtle token edit (changed value/operator/aggregate/join
		// keyword) or pure deletion. The true answer is almost always "not
		// equivalent"; the calibrated false-alarm rate — tilted upward for
		// long queries — reproduces the paper's FPs on modified conditions.
		sayEquivalent = m.unit("equiv", "subtle", key) < m.tilt(target.falseAlarmRate()*quality, z)
	default:
		// A structural rewrite the normalizer cannot prove. Models lean
		// "equivalent" here (the paper's near-perfect recall).
		sayEquivalent = m.unit("equiv", "structural", key) >= m.tilt(target.missRate()*quality, z)
	}

	reported := guessType
	acc := m.profile.EquivTypeAcc[dataset]
	if m.unit("equiv", "type", key) >= acc {
		reported = equiv.ConfusePair(guessType)
	}
	if sayEquivalent {
		return fmt.Sprintf(st.equivalent, reported)
	}
	return st.notEquivalent + fmt.Sprintf(st.equivTypeSuffix, reported)
}

// ---------------------------------------------------------------------------
// query_exp

func (m *Model) answerExplain(sql string) string {
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		return m.style().unsure
	}
	facts := nlgen.Extract(sel)
	skill := m.profile.ExplainSkill
	opt := nlgen.RenderOptions{
		DropColumns:     m.unit("exp", "cols", sql) < (1-skill)*0.9,
		DropContext:     m.unit("exp", "ctx", sql) < (1-skill)*0.9,
		FlipSuperlative: facts.Superlative && m.unit("exp", "flip", sql) < m.profile.FlipSuperlative,
	}
	if skill < 0.8 {
		opt.MaxFilters = 1
	}
	return m.style().explainPrefix + nlgen.Render(facts, opt)
}

// ---------------------------------------------------------------------------
// table_state

// answerState traces a DML/transaction script and reports the table's final
// contents. The oracle is the in-memory DML executor — the same semantics
// the benchmark's durable-store oracle implements — degraded by the
// calibrated channel: a failed trace either treats a ROLLBACK as if it
// committed or silently drops the script's last DML statement, the two
// error families the task is designed to separate.
func (m *Model) answerState(script string, quality float64) string {
	stmts, err := sqlparse.ParseAll(script)
	if err != nil {
		return m.style().unsure
	}
	st := m.style()
	errRate := (1 - m.profile.StateSkill) * quality
	if errRate > 0.95 {
		errRate = 0.95
	}
	if m.unit("state", "fail", script) < errRate {
		if m.unit("state", "mode", script) < m.profile.StateTxnConfuse {
			// Transaction-visibility slip: the ROLLBACK "commits".
			for i, s := range stmts {
				if txn, ok := s.(*sqlast.TxnStmt); ok && txn.Kind == "ROLLBACK" {
					stmts[i] = &sqlast.TxnStmt{Kind: "COMMIT"}
				}
			}
		} else {
			// Attention slip: the last DML statement never happened.
			for i := len(stmts) - 1; i >= 0; i-- {
				switch stmts[i].(type) {
				case *sqlast.InsertStmt, *sqlast.UpdateStmt, *sqlast.DeleteStmt:
					stmts = append(stmts[:i], stmts[i+1:]...)
					i = -1
				}
			}
		}
	}
	rows, ok := execStateScript(stmts)
	if !ok {
		return st.unsure
	}
	if len(rows) == 0 {
		return st.stateEmpty
	}
	parts := make([]string, len(rows))
	for i, row := range rows {
		parts[i] = renderStateRow(row, st.stateCompact, st.stateDouble)
	}
	return st.statePrefix + strings.Join(parts, st.stateSep)
}

// execStateScript runs the (possibly degraded) script on the in-memory
// executor and returns the created table's final rows.
func execStateScript(stmts []sqlast.Stmt) ([][]engine.Value, bool) {
	db := engine.NewDB(nil)
	ms := engine.NewMemStore(db)
	if err := engine.New(db).ApplyScript(ms, stmts); err != nil {
		if ms.InTxn() {
			ms.Rollback()
		}
		return nil, false
	}
	if ms.InTxn() {
		ms.Rollback()
	}
	table := ""
	for _, s := range stmts {
		if ct, ok := s.(*sqlast.CreateTableStmt); ok {
			table = ct.Name
		}
	}
	rel, ok := db.Table(table)
	if !ok {
		return nil, false
	}
	return rel.Rows, true
}

// renderStateRow renders one row in the model's tuple style: spaced
// canonical form, or compact, optionally double-quoting text — the format
// variety the response parser has to canonicalize away.
func renderStateRow(row []engine.Value, compact, doubleQuote bool) string {
	parts := make([]string, len(row))
	for i, v := range row {
		lit := engine.FormatLiteral(v)
		if doubleQuote && !v.Null && v.Kind == catalog.TypeText {
			lit = `"` + v.S + `"`
		}
		parts[i] = lit
	}
	if compact {
		return "(" + strings.Join(parts, ", ") + ")"
	}
	return "( " + strings.Join(parts, " , ") + " )"
}

// ---------------------------------------------------------------------------
// Response styling

// styleSet holds the per-model response phrasing; the variety exercises the
// response post-processing layer the way real model output did in the paper.
type styleSet struct {
	noError         string
	hasError        string // args: type, detail
	noMissing       string
	missing         string // args: kind, token, position
	fillMissing     string // arg: recovered token
	fillComplete    string
	slow            string
	fast            string
	equivalent      string // arg: transformation type
	notEquivalent   string
	equivTypeSuffix string // arg: transformation type
	explainPrefix   string
	unsure          string
	statePrefix     string // leads the row list in table_state answers
	stateSep        string // joins rendered rows
	stateEmpty      string // the empty-table claim
	stateCompact    bool   // "(1, 'a')" tuples instead of "( 1 , 'a' )"
	stateDouble     bool   // double-quoted text values
}

var styles = map[string]styleSet{
	"GPT4": {
		noError:         "No, the query does not contain any syntax errors. It is well-formed SQL.",
		hasError:        "Yes, the query contains an error. **Error type:** %s. Explanation: %s.",
		noMissing:       "No, the query has no syntax errors and no missing words.",
		missing:         "Yes, there is a missing word. Type: %s. The missing word is %q, at word position %d.",
		fillMissing:     "Yes, a token is absent. The missing token is %q.",
		fillComplete:    "No, the query is complete; nothing is missing.",
		slow:            "Yes, this query will likely take longer than usual to run, given its joins and scan volume.",
		fast:            "No, this query should run quickly; it touches limited data.",
		equivalent:      "Yes, the two queries are equivalent: the rewrite is a %s transformation that preserves results.",
		notEquivalent:   "No, the two queries are not equivalent; they can return different results.",
		equivTypeSuffix: " The difference is a %s change.",
		explainPrefix:   "",
		unsure:          "I am not certain how to answer that request.",
		statePrefix:     "After running the script, the table contains the following rows:\n",
		stateSep:        "\n",
		stateEmpty:      "After running the script, the table is empty.",
	},
	"GPT3.5": {
		noError:         "No syntax errors found. The query looks fine.",
		hasError:        "Yes. There is a problem with this query (%s): %s.",
		noMissing:       "No. The query appears complete, with no missing words.",
		missing:         "Yes, a word is missing. It looks like a %s. Missing word: %q. Position: word %d.",
		fillMissing:     "Yes. Missing token: %q.",
		fillComplete:    "No. The query is complete.",
		slow:            "Yes, I think this query takes longer than usual.",
		fast:            "No, it should be fast.",
		equivalent:      "Yes, they are equivalent (%s rewrite).",
		notEquivalent:   "No, these queries are not equivalent.",
		equivTypeSuffix: " The change looks like %s.",
		explainPrefix:   "",
		unsure:          "Sorry, I could not process that.",
		statePrefix:     "Final rows: ",
		stateSep:        " ",
		stateEmpty:      "The table ends up empty.",
		stateCompact:    true,
	},
	"Llama3": {
		noError:         "Based on my analysis, there are no syntax errors in this query.",
		hasError:        "Based on my analysis, yes — the query has an error. Error type: %s. Details: %s.",
		noMissing:       "Based on my analysis, nothing is missing from this query.",
		missing:         "Based on my analysis, yes — a token is missing. Kind: %s, token %q, around word %d.",
		fillMissing:     "Based on my analysis, the missing token is %q.",
		fillComplete:    "Based on my analysis, the query is complete.",
		slow:            "Yes — this looks like a heavy query that takes longer than usual.",
		fast:            "No — this looks like a light query.",
		equivalent:      "Yes — the queries are equivalent; this is a %s transformation.",
		notEquivalent:   "No — the queries differ in their results.",
		equivTypeSuffix: " It appears to be a %s modification.",
		explainPrefix:   "",
		unsure:          "I am unable to determine that.",
		statePrefix:     "Based on my analysis, the final contents are: ",
		stateSep:        ", ",
		stateEmpty:      "Based on my analysis, the table has no rows at the end.",
		stateDouble:     true,
	},
	"MistralAI": {
		noError:         "no error",
		hasError:        "yes; type=%s; detail=%s",
		noMissing:       "no; nothing missing",
		missing:         "yes; kind=%s; token=%s; position=%d",
		fillMissing:     "yes; token=%s",
		fillComplete:    "no; complete",
		slow:            "yes; high cost",
		fast:            "no; low cost",
		equivalent:      "equivalent; type=%s",
		notEquivalent:   "not equivalent",
		equivTypeSuffix: "; type=%s",
		explainPrefix:   "",
		unsure:          "unknown",
		statePrefix:     "rows: ",
		stateSep:        " ",
		stateEmpty:      "empty",
		stateCompact:    true,
	},
	"Gemini": {
		noError:         "The query appears to be free of syntax errors.",
		hasError:        "The query appears to contain a %s error. %s.",
		noMissing:       "The query does not appear to be missing any words.",
		missing:         "The query appears to be missing a %s (%q) near word %d.",
		fillMissing:     "The query appears to be missing the token %q.",
		fillComplete:    "The query appears to be complete.",
		slow:            "This query is likely to take longer than usual.",
		fast:            "This query is unlikely to take longer than usual.",
		equivalent:      "The two queries appear to be equivalent (a %s rewrite).",
		notEquivalent:   "The two queries do not appear to be equivalent.",
		equivTypeSuffix: " The modification resembles %s.",
		explainPrefix:   "",
		unsure:          "Unable to answer.",
		statePrefix:     "The table appears to end with these rows: ",
		stateSep:        " and ",
		stateEmpty:      "The table appears to contain no rows after the script runs.",
		stateDouble:     true,
	},
}

func (m *Model) style() styleSet { return styles[m.name] }
