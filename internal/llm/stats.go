package llm

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// ModelStats accumulates one model's request telemetry. All fields are
// atomics (the histogram included), so the Instrument middleware and retry
// hooks can record from any number of request goroutines.
type ModelStats struct {
	// Requests counts logical requests entering the client (cache hits served
	// above the Instrument layer are not requests).
	Requests atomic.Int64
	// Errors counts requests that returned an error after any retrying.
	Errors atomic.Int64
	// Retries counts individual retry attempts scheduled by the Retry
	// middleware.
	Retries atomic.Int64
	// RateLimited counts requests the RateLimit middleware made wait for a
	// token before proceeding.
	RateLimited atomic.Int64
	// PromptTokens and CompletionTokens accumulate reported usage.
	PromptTokens     atomic.Int64
	CompletionTokens atomic.Int64
	// Latency is the per-request latency histogram.
	Latency metrics.LatencyHistogram

	// BreakerOpens counts transitions into the open state; BreakerFastFails
	// counts requests the breaker shed (code "breaker_open" during the open
	// cooldown, "breaker_probing" while half-open with the probe budget
	// saturated); BreakerState is the current state
	// gauge (0 closed, 1 half-open, 2 open) and BreakerOpenUntil the open
	// deadline in unix nanos — the serve layer reads both to shed eval
	// requests with 503 + Retry-After before they start.
	BreakerOpens     atomic.Int64
	BreakerFastFails atomic.Int64
	BreakerState     atomic.Int32
	BreakerOpenUntil atomic.Int64
	// HedgesLaunched counts extra attempts the Hedge middleware raced;
	// HedgesWon counts requests a hedge (not the primary) answered;
	// HedgeWastedTokens accumulates the usage of cancelled losers that
	// completed anyway (also folded into Prompt/CompletionTokens).
	HedgesLaunched    atomic.Int64
	HedgesWon         atomic.Int64
	HedgeWastedTokens atomic.Int64
}

// ModelSnapshot is a point-in-time copy of one model's stats, shaped for
// JSON (the serve layer's /v1/metrics embeds it).
type ModelSnapshot struct {
	Requests         int64   `json:"requests"`
	Errors           int64   `json:"errors"`
	Retries          int64   `json:"retries"`
	RateLimited      int64   `json:"rate_limited,omitempty"`
	PromptTokens     int64   `json:"prompt_tokens"`
	CompletionTokens int64   `json:"completion_tokens"`
	TotalTokens      int64   `json:"total_tokens"`
	LatencyMeanMS    float64 `json:"latency_mean_ms"`
	LatencyP50MS     float64 `json:"latency_p50_ms"`
	LatencyP95MS     float64 `json:"latency_p95_ms"`
	LatencyP99MS     float64 `json:"latency_p99_ms"`
	LatencyMaxMS     float64 `json:"latency_max_ms"`
	// Breaker telemetry: state is "closed", "half_open", or "open" (omitted
	// while closed with no opens recorded — i.e. no breaker configured or
	// never tripped).
	BreakerState     string `json:"breaker_state,omitempty"`
	BreakerOpens     int64  `json:"breaker_opens,omitempty"`
	BreakerFastFails int64  `json:"breaker_fast_fails,omitempty"`
	// Hedge telemetry.
	HedgesLaunched    int64 `json:"hedges_launched,omitempty"`
	HedgesWon         int64 `json:"hedges_won,omitempty"`
	HedgeWastedTokens int64 `json:"hedge_wasted_tokens,omitempty"`
}

// Stats holds per-model telemetry, keyed by client name. The zero value is
// not usable; construct with NewStats.
type Stats struct {
	mu     sync.Mutex
	models map[string]*ModelStats
}

// NewStats returns an empty Stats.
func NewStats() *Stats {
	return &Stats{models: make(map[string]*ModelStats)}
}

// Model returns the stats bucket for a model name, creating it on first use.
func (s *Stats) Model(name string) *ModelStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	ms, ok := s.models[name]
	if !ok {
		ms = &ModelStats{}
		s.models[name] = ms
	}
	return ms
}

// Names returns the model names with recorded stats, sorted.
func (s *Stats) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.models))
	for n := range s.models {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RetryHook returns an OnRetry callback (for RetryConfig) that counts
// retries into the per-model stats.
func (s *Stats) RetryHook() func(name string, attempt int, err error, delay time.Duration) {
	return func(name string, _ int, _ error, _ time.Duration) {
		s.Model(name).Retries.Add(1)
	}
}

// Snapshot returns a point-in-time copy of every model's stats.
func (s *Stats) Snapshot() map[string]ModelSnapshot {
	out := make(map[string]ModelSnapshot)
	for _, name := range s.Names() {
		ms := s.Model(name)
		snap := ModelSnapshot{
			Requests:          ms.Requests.Load(),
			Errors:            ms.Errors.Load(),
			Retries:           ms.Retries.Load(),
			RateLimited:       ms.RateLimited.Load(),
			PromptTokens:      ms.PromptTokens.Load(),
			CompletionTokens:  ms.CompletionTokens.Load(),
			TotalTokens:       ms.PromptTokens.Load() + ms.CompletionTokens.Load(),
			LatencyMeanMS:     durMS(ms.Latency.Mean()),
			LatencyP50MS:      durMS(ms.Latency.Quantile(0.50)),
			LatencyP95MS:      durMS(ms.Latency.Quantile(0.95)),
			LatencyP99MS:      durMS(ms.Latency.Quantile(0.99)),
			LatencyMaxMS:      durMS(ms.Latency.Max()),
			BreakerOpens:      ms.BreakerOpens.Load(),
			BreakerFastFails:  ms.BreakerFastFails.Load(),
			HedgesLaunched:    ms.HedgesLaunched.Load(),
			HedgesWon:         ms.HedgesWon.Load(),
			HedgeWastedTokens: ms.HedgeWastedTokens.Load(),
		}
		if state := BreakerState(ms.BreakerState.Load()); state != BreakerClosed || snap.BreakerOpens > 0 {
			snap.BreakerState = state.String()
		}
		out[name] = snap
	}
	return out
}

func durMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
