package checkpoint

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/llm"
)

// countingClient answers deterministically and counts backend calls.
type countingClient struct {
	calls atomic.Int64
	fail  func(req llm.Request) bool
}

func (c *countingClient) Name() string { return "m" }

func (c *countingClient) Do(_ context.Context, req llm.Request) (llm.Response, error) {
	c.calls.Add(1)
	if c.fail != nil && c.fail(req) {
		return llm.Response{}, &llm.Error{Status: 503, Code: "unavailable"}
	}
	return llm.Response{
		Text:         "ans:" + req.UserPrompt(),
		Model:        "m-2024",
		Usage:        llm.Usage{PromptTokens: 5, CompletionTokens: 9},
		Latency:      123 * time.Millisecond,
		FinishReason: llm.FinishStop,
	}, nil
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.ndjson")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		e := Entry{Key: fmt.Sprintf("k%d", i), Text: fmt.Sprintf("t%d", i), Model: "m", PromptTokens: i, LatencyNS: int64(i) * 1000, Finish: "stop"}
		if err := s.Record(e); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: every entry survives with its fields intact.
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 5 {
		t.Fatalf("reopened Len = %d, want 5", s2.Len())
	}
	e, ok := s2.Lookup("k3")
	if !ok || e.Text != "t3" || e.PromptTokens != 3 || e.LatencyNS != 3000 || e.Finish != "stop" {
		t.Fatalf("k3 = %+v, %v", e, ok)
	}
}

func TestOpenRecoversTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.ndjson")
	full := `{"key":"a","text":"one"}` + "\n" + `{"key":"b","text":"two"}` + "\n"
	torn := full + `{"key":"c","text":"thr` // killed mid-write: no newline, invalid JSON
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (torn tail dropped)", s.Len())
	}
	// Appending after recovery must produce a valid file, not a line glued
	// onto the torn fragment.
	if err := s.Record(Entry{Key: "c", Text: "three"}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatalf("file corrupt after torn-tail append: %v", err)
	}
	defer s2.Close()
	if e, ok := s2.Lookup("c"); !ok || e.Text != "three" {
		t.Fatalf("c = %+v, %v", e, ok)
	}
}

func TestOpenDropsParseableUnterminatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.ndjson")
	// Kill boundary landed exactly on the closing brace: the tail parses as
	// complete JSON but was never newline-terminated. It must be treated as
	// torn — accepting it would make the next Record fuse onto the same
	// physical line and the following Open fail hard.
	data := `{"key":"a","text":"one"}` + "\n" + `{"key":"b","text":"two"}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (unterminated tail dropped)", s.Len())
	}
	if _, ok := s.Lookup("b"); ok {
		t.Fatal("unterminated tail entry was indexed")
	}
	if err := s.Record(Entry{Key: "c", Text: "three"}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatalf("file corrupt after recovery append: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2 (a and c)", s2.Len())
	}
}

func TestOpenRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.ndjson")
	bad := `{"key":"a"}` + "\n" + `garbage` + "\n" + `{"key":"b"}` + "\n"
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("mid-file corruption silently accepted")
	}
}

func TestMiddlewareReplaysAndRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.ndjson")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	backend := &countingClient{}
	client := llm.Chain(backend, Middleware(s))
	if client.Name() != "m" {
		t.Fatalf("Name = %q", client.Name())
	}

	req := llm.NewRequest("SELECT 1")
	first, err := client.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	again, err := client.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if backend.calls.Load() != 1 {
		t.Fatalf("backend called %d times, want 1 (second call replayed)", backend.calls.Load())
	}
	if again != first {
		t.Fatalf("replayed response differs:\n  %+v\n  %+v", again, first)
	}
	s.Close()

	// A fresh store over the same file replays without any backend call —
	// the resume path.
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	backend2 := &countingClient{}
	resumed, err := llm.Chain(backend2, Middleware(s2)).Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if backend2.calls.Load() != 0 {
		t.Fatalf("resume hit the backend %d times", backend2.calls.Load())
	}
	if resumed != first {
		t.Fatalf("resumed response differs:\n  %+v\n  %+v", resumed, first)
	}
}

func TestMiddlewareDoesNotRecordErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.ndjson")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	broken := &countingClient{fail: func(llm.Request) bool { return true }}
	client := llm.Chain(broken, Middleware(s))
	req := llm.NewRequest("SELECT 1")
	if _, err := client.Do(context.Background(), req); err == nil {
		t.Fatal("expected backend error")
	}
	if s.Len() != 0 {
		t.Fatalf("error was checkpointed: Len = %d", s.Len())
	}
	// The failed request is retried fresh, not replayed as a failure.
	if _, err := client.Do(context.Background(), req); err == nil {
		t.Fatal("expected backend error")
	}
	var le *llm.Error
	_, err = client.Do(context.Background(), req)
	if !errors.As(err, &le) {
		t.Fatalf("got %v, want typed backend error on every attempt", err)
	}
	if broken.calls.Load() != 3 {
		t.Fatalf("backend called %d times, want 3 (failures never cached)", broken.calls.Load())
	}
}

func TestFilename(t *testing.T) {
	cases := map[string]string{
		"GPT4":      "GPT4.ndjson",
		"GPT3.5":    "GPT3.5.ndjson",
		"meta/ll-3": "meta_ll-3.ndjson",
		"a b":       "a_b.ndjson",
	}
	for in, want := range cases {
		if got := Filename(in); got != want {
			t.Errorf("Filename(%q) = %q, want %q", in, got, want)
		}
	}
}
