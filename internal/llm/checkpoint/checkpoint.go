// Package checkpoint persists completed model responses to NDJSON files so
// an interrupted evaluation can resume without repeating paid work. The
// insight that keeps this cheap is that everything downstream of the model
// is deterministic: grading a response, summarizing a cell, rendering a
// table all replay identically given the same responses. So the checkpoint
// stores raw responses keyed by request hash — not task-specific graded
// results — and a resumed run replays recorded responses through the full
// pipeline, producing output byte-identical to an uninterrupted run.
//
// The store appends one JSON line per completed response and recovers from
// a torn final line (the signature a killed process leaves), truncating it
// before appending. Errors are never recorded: a request that failed last
// run is retried fresh on resume.
package checkpoint

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/llm"
	"repro/internal/obs"
)

// Entry is one recorded response.
type Entry struct {
	// Key is the request's stable digest (llm.Request.Hash, hex).
	Key string `json:"key"`
	// Model is the provider-reported model identifier of the response.
	Model string `json:"model,omitempty"`
	// Text is the completion text.
	Text string `json:"text"`
	// PromptTokens and CompletionTokens are the recorded usage.
	PromptTokens     int `json:"prompt_tokens,omitempty"`
	CompletionTokens int `json:"completion_tokens,omitempty"`
	// LatencyNS is the recorded completion latency in nanoseconds, replayed
	// verbatim so latency-derived artifact columns survive a resume.
	LatencyNS int64 `json:"latency_ns,omitempty"`
	// Finish is the recorded finish reason.
	Finish string `json:"finish,omitempty"`
}

// response converts the entry back to the llm.Response it recorded.
func (e Entry) response() llm.Response {
	return llm.Response{
		Text:  e.Text,
		Model: e.Model,
		Usage: llm.Usage{
			PromptTokens:     e.PromptTokens,
			CompletionTokens: e.CompletionTokens,
		},
		Latency:      time.Duration(e.LatencyNS),
		FinishReason: e.Finish,
	}
}

// Store is one NDJSON checkpoint file: an in-memory index of every recorded
// entry plus an append handle for new ones. Safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	f       *os.File
	entries map[string]Entry
}

// Open reads an existing checkpoint file (creating it if absent) and opens
// it for appending. A torn final line — the mark of a killed writer — is
// dropped and truncated away; corruption anywhere else is an error, since
// silently skipping recorded work would make a resume quietly recompute it.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	entries := make(map[string]Entry)
	var good int64 // offset just past the last parseable line
	r := bufio.NewReader(f)
	var off int64
	for {
		line, err := r.ReadBytes('\n')
		if err != nil && err != io.EOF {
			f.Close()
			return nil, fmt.Errorf("checkpoint: reading %s: %w", path, err)
		}
		if len(line) > 0 {
			if err != nil {
				// Unterminated final line from a killed run: torn, even if
				// it happens to parse as complete JSON — without the
				// trailing newline the next Record would fuse onto it and
				// corrupt the file. Drop and truncate it.
				break
			}
			off += int64(len(line))
			var e Entry
			if jsonErr := json.Unmarshal(line, &e); jsonErr != nil {
				f.Close()
				return nil, fmt.Errorf("checkpoint: %s: corrupt entry at offset %d: %w", path, good, jsonErr)
			}
			if e.Key == "" {
				f.Close()
				return nil, fmt.Errorf("checkpoint: %s: entry at offset %d has no key", path, good)
			}
			entries[e.Key] = e
			good = off
		}
		if err == io.EOF {
			break
		}
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: truncating torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Store{f: f, entries: entries}, nil
}

// Lookup returns the recorded entry for a key.
func (s *Store) Lookup(key string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	return e, ok
}

// Record appends an entry and adds it to the index. Each entry is written
// with a single write call, so a kill between requests never tears more
// than the final line.
func (s *Store) Record(e Entry) error {
	if e.Key == "" {
		return fmt.Errorf("checkpoint: entry has no key")
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("checkpoint: store is closed")
	}
	if _, ok := s.entries[e.Key]; ok {
		return nil // already recorded (a replayed hit re-recorded by a racing caller)
	}
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	s.entries[e.Key] = e
	return nil
}

// Len returns the number of recorded entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Close closes the append handle. Lookups keep working; further Records
// fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// Key returns the store key for a request.
func Key(req llm.Request) string {
	return fmt.Sprintf("%016x", req.Hash())
}

// Middleware returns a replay/record layer over a client: recorded requests
// are answered from the store without touching anything below, and fresh
// successes are recorded before returning. Attach it outermost (above even
// the cache), so a resumed run replays responses without re-counting them
// in stats or re-spending rate tokens.
func Middleware(s *Store) llm.Middleware {
	return func(next llm.Client) llm.Client {
		return &replayClient{next: next, store: s}
	}
}

type replayClient struct {
	next  llm.Client
	store *Store
}

func (c *replayClient) Name() string { return c.next.Name() }

func (c *replayClient) Do(ctx context.Context, req llm.Request) (llm.Response, error) {
	key := Key(req)
	if e, ok := c.store.Lookup(key); ok {
		if span := obs.SpanFrom(ctx); span != nil {
			span.Event("checkpoint_replay",
				obs.String("model", c.next.Name()),
				obs.String("key", key))
		}
		return e.response(), nil
	}
	resp, err := c.next.Do(ctx, req)
	if err != nil {
		return llm.Response{}, err
	}
	rec := Entry{
		Key:              key,
		Model:            resp.Model,
		Text:             resp.Text,
		PromptTokens:     resp.Usage.PromptTokens,
		CompletionTokens: resp.Usage.CompletionTokens,
		LatencyNS:        int64(resp.Latency),
		Finish:           resp.FinishReason,
	}
	if err := c.store.Record(rec); err != nil {
		return llm.Response{}, err
	}
	return resp, nil
}

// Filename returns the checkpoint filename for a model name, replacing
// path-hostile characters so "GPT3.5" and friends map to safe files.
func Filename(model string) string {
	var b strings.Builder
	for _, r := range model {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	return b.String() + ".ndjson"
}
