package llm

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
)

// traceStack builds the observed slice of the production middleware order:
// request span outermost, retry inside it, one attempt span per try.
func traceStack(backend Client) Client {
	return Chain(backend,
		Trace("llm.request"),
		RetryWith(RetryConfig{
			MaxAttempts: 3,
			BaseDelay:   time.Millisecond,
			sleep:       func(context.Context, time.Duration) error { return nil },
		}),
		Trace("llm.attempt"),
	)
}

// A retried request must export one llm.request span carrying the retry
// event and one llm.attempt child span per try — the trace shape the chaos
// smoke asserts end to end against a flaky backend.
func TestTraceRetriedRequestSpans(t *testing.T) {
	backend := &scriptClient{name: "Flaky", fails: []error{&Error{Status: 503}}}
	client := traceStack(backend)
	tracer := obs.New(obs.WithCollector())
	ctx := obs.With(context.Background(), tracer)

	if _, err := client.Do(ctx, NewRequest("SELECT 1")); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if got := backend.callCount(); got != 2 {
		t.Fatalf("backend calls = %d, want 2", got)
	}

	var request *obs.SpanRecord
	var attempts []obs.SpanRecord
	for _, rec := range tracer.Collected() {
		rec := rec
		switch rec.Name {
		case "llm.request":
			if request != nil {
				t.Fatalf("multiple llm.request spans")
			}
			request = &rec
		case "llm.attempt":
			attempts = append(attempts, rec)
		}
	}
	if request == nil {
		t.Fatal("no llm.request span exported")
	}
	if len(attempts) != 2 {
		t.Fatalf("llm.attempt spans = %d, want 2 (one per try)", len(attempts))
	}
	for i, a := range attempts {
		if a.ParentID != request.SpanID {
			t.Errorf("attempt %d parent = %q, want request span %q", i, a.ParentID, request.SpanID)
		}
		if a.TraceID != request.TraceID {
			t.Errorf("attempt %d trace id = %q, want %q", i, a.TraceID, request.TraceID)
		}
	}
	// The failed first attempt records its error; the second is clean.
	if attempts[0].Attrs["error"] == nil {
		t.Errorf("first attempt should carry an error attr, got %v", attempts[0].Attrs)
	}
	if attempts[1].Attrs["error"] != nil {
		t.Errorf("second attempt should be clean, got %v", attempts[1].Attrs)
	}
	var retry *obs.EventRecord
	for i := range request.Events {
		if request.Events[i].Name == "retry" {
			retry = &request.Events[i]
		}
	}
	if retry == nil {
		t.Fatalf("no retry event on llm.request span (events %v)", request.Events)
	}
	if got := retry.Attrs["attempt"]; got != float64(1) && got != int64(1) {
		t.Errorf("retry attempt attr = %v", got)
	}
	if request.Attrs["model"] != "Flaky" {
		t.Errorf("request model attr = %v", request.Attrs["model"])
	}
}

// Without a tracer on the context the same stack must still work and export
// nothing — the disabled path is pass-through.
func TestTraceStackNoTracer(t *testing.T) {
	backend := &scriptClient{name: "Plain"}
	client := traceStack(backend)
	if _, err := client.Do(context.Background(), NewRequest("SELECT 1")); err != nil {
		t.Fatalf("Do: %v", err)
	}
}
