package llm

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs"
)

// This file holds the availability middleware: a circuit breaker that stops
// burning budget against a dead backend, and request hedging that cuts tail
// latency by racing a second attempt once the first runs long. Both compose
// into the spec-driven middleware stack (spec.go) and report into the
// per-model Stats so /v1/metrics can expose their behavior.

// ---------------------------------------------------------------------------
// Breaker

// BreakerState is the circuit breaker's condition.
type BreakerState int32

// Breaker states. The int values are the wire encoding of the
// breaker_state metrics gauge, ordered by severity.
const (
	BreakerClosed   BreakerState = 0 // requests flow normally
	BreakerHalfOpen BreakerState = 1 // limited probes test recovery
	BreakerOpen     BreakerState = 2 // requests fast-fail without reaching the backend
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half_open"
	case BreakerOpen:
		return "open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes the Breaker middleware. The breaker opens on either
// trigger: a run of consecutive failures, or a failure rate over a rolling
// window of recent outcomes.
type BreakerConfig struct {
	// Failures is the consecutive-failure threshold that opens the breaker
	// (default 5).
	Failures int
	// ErrorRate optionally opens the breaker when the failure fraction over
	// the last Window outcomes reaches it (0 disables rate-based opening).
	ErrorRate float64
	// Window is the rolling outcome window for ErrorRate (default 20); the
	// rate only triggers once the window is full.
	Window int
	// Cooldown is how long the breaker stays open before admitting
	// half-open probes (default 10s).
	Cooldown time.Duration
	// Probes is how many consecutive half-open successes close the breaker,
	// and the cap on concurrent half-open attempts (default 1).
	Probes int
	// OnStateChange, when set, observes every transition.
	OnStateChange func(clientName string, from, to BreakerState)
	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

func (cfg *BreakerConfig) fill() {
	if cfg.Failures <= 0 {
		cfg.Failures = 5
	}
	if cfg.Window <= 0 {
		cfg.Window = 20
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 10 * time.Second
	}
	if cfg.Probes <= 0 {
		cfg.Probes = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
}

// breaker is the shared state behind one Breaker middleware instance.
type breaker struct {
	cfg  BreakerConfig
	name string

	mu          sync.Mutex
	state       BreakerState
	consecutive int    // consecutive failures while closed
	window      []bool // rolling outcome ring, true = failure
	windowPos   int
	windowFull  bool
	openUntil   time.Time // when the open state admits probes again
	probing     int       // in-flight half-open probes
	probeWins   int       // consecutive half-open successes
}

// countable reports whether an error should count against the breaker:
// backend failures a different instant would plausibly not see. Caller bugs
// (4xx other than 408/429) and caller-side cancellation don't open circuits.
func countable(err error) bool {
	return IsRetryable(err)
}

func (b *breaker) setStateLocked(to BreakerState) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.cfg.OnStateChange != nil {
		b.cfg.OnStateChange(b.name, from, to)
	}
}

func (b *breaker) openLocked(now time.Time) {
	b.openUntil = now.Add(b.cfg.Cooldown)
	b.consecutive = 0
	b.probeWins = 0
	b.windowFull = false
	b.windowPos = 0
	for i := range b.window {
		b.window[i] = false
	}
	b.setStateLocked(BreakerOpen)
}

// admit decides whether a request may proceed. It returns (true, probe, _, _)
// to proceed — probe marks a half-open trial — or (false, _, wait, shed) to
// fast-fail, where wait is the suggested retry delay and shed is the state
// that caused the shed (open cooldown vs. saturated half-open).
func (b *breaker) admit() (ok bool, probe bool, wait time.Duration, shed BreakerState) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Clock()
	switch b.state {
	case BreakerClosed:
		return true, false, 0, BreakerClosed
	case BreakerOpen:
		if now.Before(b.openUntil) {
			return false, false, b.openUntil.Sub(now), BreakerOpen
		}
		b.setStateLocked(BreakerHalfOpen)
		fallthrough
	case BreakerHalfOpen:
		if b.probing >= b.cfg.Probes {
			// Half-open is saturated; shed with a minimal hint — the
			// in-flight probe decides recovery within roughly one RTT.
			return false, false, time.Second, BreakerHalfOpen
		}
		b.probing++
		return true, true, 0, BreakerHalfOpen
	}
	return true, false, 0, b.state
}

// record registers one completed request's outcome and reports the state
// transition it caused (from == to when none), so the caller can emit a
// span event outside the lock. A probe always frees its
// half-open slot here, even when the outcome is no evidence either way
// (caller bug, caller-side cancellation) — otherwise one cancelled probe
// would saturate the probe budget forever and the breaker could never close.
func (b *breaker) record(probe bool, err error) (from, to BreakerState) {
	b.mu.Lock()
	defer b.mu.Unlock()
	from = b.state
	defer func() { to = b.state }()
	failed := err != nil && countable(err)
	noEvidence := err != nil && !failed
	if probe {
		b.probing--
		if noEvidence || b.state != BreakerHalfOpen {
			return
		}
		if failed {
			b.openLocked(b.cfg.Clock())
			return
		}
		b.probeWins++
		if b.probeWins >= b.cfg.Probes {
			b.probeWins = 0
			b.setStateLocked(BreakerClosed)
		}
		return
	}
	if noEvidence || b.state != BreakerClosed {
		return
	}
	if !failed {
		b.consecutive = 0
		b.pushLocked(false)
		return
	}
	b.consecutive++
	b.pushLocked(true)
	if b.consecutive >= b.cfg.Failures || b.rateTrippedLocked() {
		b.openLocked(b.cfg.Clock())
	}
	return
}

func (b *breaker) pushLocked(failed bool) {
	if b.cfg.ErrorRate <= 0 {
		return
	}
	if b.window == nil {
		b.window = make([]bool, b.cfg.Window)
	}
	b.window[b.windowPos] = failed
	b.windowPos++
	if b.windowPos == len(b.window) {
		b.windowPos = 0
		b.windowFull = true
	}
}

func (b *breaker) rateTrippedLocked() bool {
	if b.cfg.ErrorRate <= 0 || !b.windowFull {
		return false
	}
	fails := 0
	for _, f := range b.window {
		if f {
			fails++
		}
	}
	return float64(fails)/float64(len(b.window)) >= b.cfg.ErrorRate
}

// Breaker returns a circuit-breaker middleware: after a run of consecutive
// failures (or a tripped rolling error rate), requests fast-fail with a
// typed *Error (Status 503, Code "breaker_open", RetryAfter = remaining
// cooldown) instead of reaching the backend; after the cooldown, limited
// half-open probes test recovery, closing the breaker on success and
// re-opening it on failure. Requests arriving while the probe budget is
// saturated shed with Code "breaker_probing" and a short RetryAfter,
// distinguishing a momentary half-open shed from a cooldown-long outage.
func Breaker(cfg BreakerConfig) Middleware {
	return BreakerWith(cfg, nil)
}

// BreakerWith is Breaker additionally recording opens, shed requests, the
// current state gauge, and the open deadline into the per-model Stats — the
// serve layer reads the gauge to shed eval requests before they start.
func BreakerWith(cfg BreakerConfig, stats *Stats) Middleware {
	cfg.fill()
	return func(inner Client) Client {
		b := &breaker{cfg: cfg, name: inner.Name()}
		if stats != nil {
			ms := stats.Model(inner.Name())
			user := b.cfg.OnStateChange
			b.cfg.OnStateChange = func(name string, from, to BreakerState) {
				ms.BreakerState.Store(int32(to))
				if to == BreakerOpen {
					ms.BreakerOpens.Add(1)
					ms.BreakerOpenUntil.Store(b.openUntil.UnixNano())
				}
				if user != nil {
					user(name, from, to)
				}
			}
		}
		return Wrap(inner, func(ctx context.Context, req Request) (Response, error) {
			ok, probe, wait, shed := b.admit()
			if !ok {
				if stats != nil {
					stats.Model(inner.Name()).BreakerFastFails.Add(1)
				}
				code, msg := "breaker_open", "circuit breaker open: backend shedding load"
				if shed == BreakerHalfOpen {
					// Saturated half-open: a probe is already in flight, so
					// this shed is momentary, not a cooldown-long outage.
					code, msg = "breaker_probing", "circuit breaker half-open: recovery probe in flight"
				}
				if span := obs.SpanFrom(ctx); span != nil {
					span.Event("breaker_shed",
						obs.String("model", inner.Name()),
						obs.String("code", code),
						obs.Int("retry_after_ms", wait.Milliseconds()))
				}
				return Response{}, &Error{
					Status:     503,
					Code:       code,
					Message:    msg,
					RetryAfter: wait,
				}
			}
			resp, err := inner.Do(ctx, req)
			from, to := b.record(probe, err)
			if from != to {
				if span := obs.SpanFrom(ctx); span != nil {
					span.Event("breaker_state_change",
						obs.String("model", inner.Name()),
						obs.String("from", from.String()),
						obs.String("to", to.String()))
				}
			}
			return resp, err
		})
	}
}

// ---------------------------------------------------------------------------
// Hedge

// HedgeConfig tunes the Hedge middleware.
type HedgeConfig struct {
	// Delay is how long the primary attempt may run before a hedge launches
	// (required; <= 0 disables hedging).
	Delay time.Duration
	// MaxHedges caps extra attempts per request (default 1).
	MaxHedges int
}

// Hedge returns a tail-latency hedging middleware: when the primary attempt
// has not completed within Delay, a second identical attempt launches and
// the first success wins; the loser's context is cancelled. An error from
// one attempt defers to the other attempt's outcome, so hedging never
// worsens correctness — the request fails only once every attempt has.
func Hedge(cfg HedgeConfig) Middleware {
	return HedgeWith(cfg, nil)
}

// HedgeWith is Hedge additionally counting launched and winning hedges into
// the per-model Stats — and charging a cancelled loser's token usage there
// too, so hedging's cost stays visible even though only one response is
// returned.
func HedgeWith(cfg HedgeConfig, stats *Stats) Middleware {
	if cfg.Delay <= 0 {
		return nil
	}
	if cfg.MaxHedges <= 0 {
		cfg.MaxHedges = 1
	}
	return func(inner Client) Client {
		return Wrap(inner, func(ctx context.Context, req Request) (Response, error) {
			hctx, cancelAll := context.WithCancel(ctx)
			defer cancelAll()
			results := make(chan hedgeOutcome, cfg.MaxHedges+1)
			launch := func(idx int) {
				go func() {
					resp, err := inner.Do(hctx, req)
					results <- hedgeOutcome{resp: resp, err: err, idx: idx}
				}()
			}
			launch(0)
			timer := time.NewTimer(cfg.Delay)
			defer timer.Stop()
			var (
				launched = 1
				pending  = 1
				firstErr error
			)
			for {
				select {
				case <-timer.C:
					if launched <= cfg.MaxHedges {
						launch(launched)
						launched++
						pending++
						if stats != nil {
							stats.Model(inner.Name()).HedgesLaunched.Add(1)
						}
						if span := obs.SpanFrom(ctx); span != nil {
							span.Event("hedge_launch",
								obs.String("model", inner.Name()),
								obs.Int("attempt", int64(launched-1)))
						}
						if launched <= cfg.MaxHedges {
							timer.Reset(cfg.Delay)
						}
					}
				case out := <-results:
					pending--
					if out.err == nil {
						// Winner. Cancel the rest and account their tokens
						// as they drain, off the caller's critical path.
						cancelAll()
						if span := obs.SpanFrom(ctx); span != nil {
							if out.idx > 0 {
								span.Event("hedge_win",
									obs.String("model", inner.Name()),
									obs.Int("attempt", int64(out.idx)))
							}
							if pending > 0 {
								span.Event("hedge_cancel",
									obs.String("model", inner.Name()),
									obs.Int("cancelled", int64(pending)))
							}
						}
						if stats != nil {
							if out.idx > 0 {
								stats.Model(inner.Name()).HedgesWon.Add(1)
							}
							drainHedges(inner.Name(), stats, results, pending)
						}
						return out.resp, nil
					}
					if firstErr == nil || out.idx == 0 {
						firstErr = out.err
					}
					if pending == 0 {
						// Every attempt failed; no hedge launch can save it.
						return Response{}, firstErr
					}
				case <-ctx.Done():
					return Response{}, ctx.Err()
				}
			}
		})
	}
}

// hedgeOutcome is one hedged attempt's completion (idx 0 = primary).
type hedgeOutcome struct {
	resp Response
	err  error
	idx  int
}

// drainHedges collects cancelled losers in the background and charges any
// usage they still completed with to the model's stats, so a hedge that
// finished just after losing the race still counts against token budgets.
func drainHedges(name string, stats *Stats, results <-chan hedgeOutcome, pending int) {
	if pending <= 0 {
		return
	}
	ms := stats.Model(name)
	go func() {
		for i := 0; i < pending; i++ {
			out := <-results
			if out.err == nil {
				ms.PromptTokens.Add(int64(out.resp.Usage.PromptTokens))
				ms.CompletionTokens.Add(int64(out.resp.Usage.CompletionTokens))
				ms.HedgeWastedTokens.Add(int64(out.resp.Usage.Total()))
			}
		}
	}()
}
