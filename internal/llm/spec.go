package llm

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"
)

// Spec is one model entry of a JSON model configuration — the config-driven
// construction surface behind the binaries' -models flag. Provider selects
// the backend factory ("sim" or "http" for the built-ins); the remaining
// fields configure the backend and the middleware stack wrapped around it.
type Spec struct {
	// Name is the registry name the model is served under. Required.
	Name string `json:"name"`
	// Provider selects the backend factory ("sim", "http"). Required.
	Provider string `json:"provider"`

	// BaseURL is the HTTP provider's API root (e.g.
	// "https://api.openai.com/v1" or "http://127.0.0.1:9090/v1").
	BaseURL string `json:"base_url,omitempty"`
	// Model is the provider-side model identifier; defaults to Name. For the
	// sim provider it selects the calibrated profile.
	Model string `json:"model,omitempty"`
	// APIKeyEnv names the environment variable holding the API key
	// (HTTP provider; empty means no Authorization header).
	APIKeyEnv string `json:"api_key_env,omitempty"`
	// TimeoutMS is the per-request timeout in milliseconds (HTTP provider).
	TimeoutMS int `json:"timeout_ms,omitempty"`

	// MaxAttempts enables the Retry middleware: total attempts including the
	// first. 0 or 1 means no retrying.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// RetryBaseMS is the first backoff delay in milliseconds (default 100).
	RetryBaseMS int `json:"retry_base_ms,omitempty"`
	// RPS enables the RateLimit middleware: requests per second (0 = off).
	RPS float64 `json:"rps,omitempty"`
	// Burst is the rate limiter's burst capacity (default 1).
	Burst int `json:"burst,omitempty"`
	// MaxInFlight bounds concurrent requests (0 = unbounded).
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// CacheSize enables request-hash memoization: maximum cached responses
	// (-1 = unbounded, 0 = no cache).
	CacheSize int `json:"cache_size,omitempty"`
	// MaxRetryAfterMS caps honored provider Retry-After hints in
	// milliseconds (0 = the Retry middleware's 15s default).
	MaxRetryAfterMS int `json:"max_retry_after_ms,omitempty"`

	// BreakerFailures enables the circuit breaker: consecutive failures
	// that open it (0 with BreakerErrorRate 0 = no breaker; see
	// BreakerConfig for defaults of the remaining knobs).
	BreakerFailures int `json:"breaker_failures,omitempty"`
	// BreakerErrorRate opens the breaker at this failure fraction over the
	// last BreakerWindow outcomes (0 = consecutive-failures only).
	BreakerErrorRate float64 `json:"breaker_error_rate,omitempty"`
	// BreakerWindow is the rolling outcome window for BreakerErrorRate.
	BreakerWindow int `json:"breaker_window,omitempty"`
	// BreakerCooldownMS is how long the breaker stays open before half-open
	// probes, in milliseconds.
	BreakerCooldownMS int `json:"breaker_cooldown_ms,omitempty"`
	// BreakerProbes is the half-open probe count that closes the breaker.
	BreakerProbes int `json:"breaker_probes,omitempty"`

	// HedgeDelayMS enables tail-latency hedging: a second attempt races the
	// first once it has run this many milliseconds (0 = no hedging).
	HedgeDelayMS int `json:"hedge_delay_ms,omitempty"`
	// HedgeMax caps extra attempts per request (default 1).
	HedgeMax int `json:"hedge_max,omitempty"`

	// Fault injection (deterministic chaos harness wrapping the backend;
	// see internal/llm/faultllm). FaultRate is the fraction of requests
	// failing with FaultStatus; decisions derive from FaultSeed and the
	// request hash, so a plan is reproducible run to run.
	FaultRate float64 `json:"fault_rate,omitempty"`
	// FaultStatus is the injected error's HTTP-style status (default 503).
	FaultStatus int `json:"fault_status,omitempty"`
	// FaultSeed seeds the fault plan's deterministic decisions.
	FaultSeed int64 `json:"fault_seed,omitempty"`
	// FaultLatencyMS adds fixed latency to every surviving completion.
	FaultLatencyMS int `json:"fault_latency_ms,omitempty"`
	// FaultTruncateRate is the fraction of surviving completions truncated
	// mid-text with finish reason "length".
	FaultTruncateRate float64 `json:"fault_truncate_rate,omitempty"`
	// FaultHangRate is the fraction of requests that hang until the caller's
	// context cancels them.
	FaultHangRate float64 `json:"fault_hang_rate,omitempty"`
}

// Factory constructs a backend client from a spec. The built-in providers
// are sim.Factory (over a knowledge context) and httpllm.Factory.
type Factory func(Spec) (Client, error)

// ParseSpecsArg decodes a -models flag value: inline JSON, or @path naming
// a JSON file.
func ParseSpecsArg(v string) ([]Spec, error) {
	if strings.HasPrefix(v, "@") {
		data, err := os.ReadFile(strings.TrimPrefix(v, "@"))
		if err != nil {
			return nil, fmt.Errorf("llm: reading model specs: %w", err)
		}
		return ParseSpecs(data)
	}
	return ParseSpecs([]byte(v))
}

// ParseSpecs decodes and validates a JSON array of model specs.
func ParseSpecs(data []byte) ([]Spec, error) {
	var specs []Spec
	if err := json.Unmarshal(data, &specs); err != nil {
		return nil, fmt.Errorf("llm: parsing model specs: %w", err)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("llm: model spec list is empty")
	}
	seen := make(map[string]bool, len(specs))
	for i, s := range specs {
		if s.Name == "" {
			return nil, fmt.Errorf("llm: model spec %d has no name", i)
		}
		if s.Provider == "" {
			return nil, fmt.Errorf("llm: model %q has no provider", s.Name)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("llm: duplicate model name %q", s.Name)
		}
		seen[s.Name] = true
	}
	return specs, nil
}

// BuildClient constructs one client from a spec: the provider backend
// wrapped in the spec's middleware stack, outermost first:
// Trace("llm.request") → Cache → Instrument → Breaker → Retry →
// Trace("llm.attempt") → RateLimit → Hedge → MaxInFlight →
// backend. The request span therefore covers the whole resilient request
// (cache hits included, marked by a cache_hit event), while each retry
// produces a fresh child attempt span — both free when no tracer rides the
// context. Cached hits skip accounting and throttling entirely;
// an open breaker fast-fails before any retrying (and the fast-fail is
// counted by Instrument but never retried); every retry attempt re-acquires
// a rate-limit token; each hedged attempt takes its own in-flight slot but
// shares the logical request's rate token; and the instrumented latency is
// the backend-reported completion latency of the final attempt (backoff
// waits are not included). stats may be nil to skip instrumentation.
func BuildClient(spec Spec, providers map[string]Factory, stats *Stats) (Client, error) {
	factory, ok := providers[spec.Provider]
	if !ok {
		return nil, fmt.Errorf("llm: model %q: unknown provider %q", spec.Name, spec.Provider)
	}
	base, err := factory(spec)
	if err != nil {
		return nil, fmt.Errorf("llm: model %q: %w", spec.Name, err)
	}
	if base.Name() != spec.Name {
		return nil, fmt.Errorf("llm: model %q: provider built client named %q", spec.Name, base.Name())
	}
	var mws []Middleware
	mws = append(mws, Trace("llm.request"))
	if spec.CacheSize != 0 {
		limit := spec.CacheSize
		if limit < 0 {
			limit = 0 // Cache treats <=0 as unbounded
		}
		mws = append(mws, Cache(limit))
	}
	if stats != nil {
		mws = append(mws, Instrument(stats))
	}
	if spec.BreakerFailures > 0 || spec.BreakerErrorRate > 0 {
		mws = append(mws, BreakerWith(BreakerConfig{
			Failures:  spec.BreakerFailures,
			ErrorRate: spec.BreakerErrorRate,
			Window:    spec.BreakerWindow,
			Cooldown:  time.Duration(spec.BreakerCooldownMS) * time.Millisecond,
			Probes:    spec.BreakerProbes,
		}, stats))
	}
	if spec.MaxAttempts > 1 {
		cfg := RetryConfig{
			MaxAttempts:   spec.MaxAttempts,
			BaseDelay:     time.Duration(spec.RetryBaseMS) * time.Millisecond,
			MaxRetryAfter: time.Duration(spec.MaxRetryAfterMS) * time.Millisecond,
		}
		if stats != nil {
			cfg.OnRetry = stats.RetryHook()
		}
		mws = append(mws, RetryWith(cfg))
	}
	mws = append(mws, Trace("llm.attempt"))
	if spec.RPS > 0 {
		mws = append(mws, RateLimitWith(spec.RPS, spec.Burst, stats))
	}
	if spec.HedgeDelayMS > 0 {
		mws = append(mws, HedgeWith(HedgeConfig{
			Delay:     time.Duration(spec.HedgeDelayMS) * time.Millisecond,
			MaxHedges: spec.HedgeMax,
		}, stats))
	}
	if spec.MaxInFlight > 0 {
		mws = append(mws, MaxInFlight(spec.MaxInFlight))
	}
	return Chain(base, mws...), nil
}

// Build constructs and registers a client per spec, returning the model
// names in spec order (the order experiment tables render rows in).
func (r *Registry) Build(specs []Spec, providers map[string]Factory, stats *Stats) ([]string, error) {
	names := make([]string, 0, len(specs))
	for _, spec := range specs {
		c, err := BuildClient(spec, providers, stats)
		if err != nil {
			return nil, err
		}
		r.Register(c)
		names = append(names, spec.Name)
	}
	return names, nil
}

// ClientCache memoizes BuildClient results by spec name, so registries built
// repeatedly from the same spec set (one evaluation environment per seed,
// say) share one client instance per model — and with it the middleware
// state that must be global to mean anything: rate-limit token buckets,
// in-flight semaphores, and response caches. The zero value is ready to use.
type ClientCache struct {
	mu      sync.Mutex
	clients map[string]Client
}

// Build returns the cached client for spec.Name, constructing it on first
// use.
func (cc *ClientCache) Build(spec Spec, providers map[string]Factory, stats *Stats) (Client, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if c, ok := cc.clients[spec.Name]; ok {
		return c, nil
	}
	c, err := BuildClient(spec, providers, stats)
	if err != nil {
		return nil, err
	}
	if cc.clients == nil {
		cc.clients = make(map[string]Client)
	}
	cc.clients[spec.Name] = c
	return c, nil
}
