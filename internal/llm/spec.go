package llm

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"
)

// Spec is one model entry of a JSON model configuration — the config-driven
// construction surface behind the binaries' -models flag. Provider selects
// the backend factory ("sim" or "http" for the built-ins); the remaining
// fields configure the backend and the middleware stack wrapped around it.
type Spec struct {
	// Name is the registry name the model is served under. Required.
	Name string `json:"name"`
	// Provider selects the backend factory ("sim", "http"). Required.
	Provider string `json:"provider"`

	// BaseURL is the HTTP provider's API root (e.g.
	// "https://api.openai.com/v1" or "http://127.0.0.1:9090/v1").
	BaseURL string `json:"base_url,omitempty"`
	// Model is the provider-side model identifier; defaults to Name. For the
	// sim provider it selects the calibrated profile.
	Model string `json:"model,omitempty"`
	// APIKeyEnv names the environment variable holding the API key
	// (HTTP provider; empty means no Authorization header).
	APIKeyEnv string `json:"api_key_env,omitempty"`
	// TimeoutMS is the per-request timeout in milliseconds (HTTP provider).
	TimeoutMS int `json:"timeout_ms,omitempty"`

	// MaxAttempts enables the Retry middleware: total attempts including the
	// first. 0 or 1 means no retrying.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// RetryBaseMS is the first backoff delay in milliseconds (default 100).
	RetryBaseMS int `json:"retry_base_ms,omitempty"`
	// RPS enables the RateLimit middleware: requests per second (0 = off).
	RPS float64 `json:"rps,omitempty"`
	// Burst is the rate limiter's burst capacity (default 1).
	Burst int `json:"burst,omitempty"`
	// MaxInFlight bounds concurrent requests (0 = unbounded).
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// CacheSize enables request-hash memoization: maximum cached responses
	// (-1 = unbounded, 0 = no cache).
	CacheSize int `json:"cache_size,omitempty"`
}

// Factory constructs a backend client from a spec. The built-in providers
// are sim.Factory (over a knowledge context) and httpllm.Factory.
type Factory func(Spec) (Client, error)

// ParseSpecsArg decodes a -models flag value: inline JSON, or @path naming
// a JSON file.
func ParseSpecsArg(v string) ([]Spec, error) {
	if strings.HasPrefix(v, "@") {
		data, err := os.ReadFile(strings.TrimPrefix(v, "@"))
		if err != nil {
			return nil, fmt.Errorf("llm: reading model specs: %w", err)
		}
		return ParseSpecs(data)
	}
	return ParseSpecs([]byte(v))
}

// ParseSpecs decodes and validates a JSON array of model specs.
func ParseSpecs(data []byte) ([]Spec, error) {
	var specs []Spec
	if err := json.Unmarshal(data, &specs); err != nil {
		return nil, fmt.Errorf("llm: parsing model specs: %w", err)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("llm: model spec list is empty")
	}
	seen := make(map[string]bool, len(specs))
	for i, s := range specs {
		if s.Name == "" {
			return nil, fmt.Errorf("llm: model spec %d has no name", i)
		}
		if s.Provider == "" {
			return nil, fmt.Errorf("llm: model %q has no provider", s.Name)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("llm: duplicate model name %q", s.Name)
		}
		seen[s.Name] = true
	}
	return specs, nil
}

// BuildClient constructs one client from a spec: the provider backend
// wrapped in the spec's middleware stack, outermost first:
// Cache → Instrument → Retry → RateLimit → MaxInFlight → backend. Cached
// hits therefore skip accounting and throttling entirely, every retry
// attempt re-acquires a rate-limit token, and the instrumented latency is
// the backend-reported completion latency of the final attempt (backoff
// waits are not included). stats may be nil to skip instrumentation.
func BuildClient(spec Spec, providers map[string]Factory, stats *Stats) (Client, error) {
	factory, ok := providers[spec.Provider]
	if !ok {
		return nil, fmt.Errorf("llm: model %q: unknown provider %q", spec.Name, spec.Provider)
	}
	base, err := factory(spec)
	if err != nil {
		return nil, fmt.Errorf("llm: model %q: %w", spec.Name, err)
	}
	if base.Name() != spec.Name {
		return nil, fmt.Errorf("llm: model %q: provider built client named %q", spec.Name, base.Name())
	}
	var mws []Middleware
	if spec.CacheSize != 0 {
		limit := spec.CacheSize
		if limit < 0 {
			limit = 0 // Cache treats <=0 as unbounded
		}
		mws = append(mws, Cache(limit))
	}
	if stats != nil {
		mws = append(mws, Instrument(stats))
	}
	if spec.MaxAttempts > 1 {
		cfg := RetryConfig{
			MaxAttempts: spec.MaxAttempts,
			BaseDelay:   time.Duration(spec.RetryBaseMS) * time.Millisecond,
		}
		if stats != nil {
			cfg.OnRetry = stats.RetryHook()
		}
		mws = append(mws, RetryWith(cfg))
	}
	if spec.RPS > 0 {
		mws = append(mws, RateLimitWith(spec.RPS, spec.Burst, stats))
	}
	if spec.MaxInFlight > 0 {
		mws = append(mws, MaxInFlight(spec.MaxInFlight))
	}
	return Chain(base, mws...), nil
}

// Build constructs and registers a client per spec, returning the model
// names in spec order (the order experiment tables render rows in).
func (r *Registry) Build(specs []Spec, providers map[string]Factory, stats *Stats) ([]string, error) {
	names := make([]string, 0, len(specs))
	for _, spec := range specs {
		c, err := BuildClient(spec, providers, stats)
		if err != nil {
			return nil, err
		}
		r.Register(c)
		names = append(names, spec.Name)
	}
	return names, nil
}

// ClientCache memoizes BuildClient results by spec name, so registries built
// repeatedly from the same spec set (one evaluation environment per seed,
// say) share one client instance per model — and with it the middleware
// state that must be global to mean anything: rate-limit token buckets,
// in-flight semaphores, and response caches. The zero value is ready to use.
type ClientCache struct {
	mu      sync.Mutex
	clients map[string]Client
}

// Build returns the cached client for spec.Name, constructing it on first
// use.
func (cc *ClientCache) Build(spec Spec, providers map[string]Factory, stats *Stats) (Client, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if c, ok := cc.clients[spec.Name]; ok {
		return c, nil
	}
	c, err := BuildClient(spec, providers, stats)
	if err != nil {
		return nil, err
	}
	if cc.clients == nil {
		cc.clients = make(map[string]Client)
	}
	cc.clients[spec.Name] = c
	return c, nil
}
