package httpllm

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/llm/clienttest"
)

// stubHandler is a minimal OpenAI-compatible completions endpoint: it echoes
// a deterministic answer, reports usage, and can fail the first N requests
// with 429.
func stubHandler(fail429 *atomic.Int64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/chat/completions" || r.Method != http.MethodPost {
			http.NotFound(w, r)
			return
		}
		var req struct {
			Model    string `json:"model"`
			Messages []struct {
				Role, Content string
			} `json:"messages"`
			MaxTokens int `json:"max_tokens"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if fail429 != nil && fail429.Add(-1) >= 0 {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"message":"slow down","type":"rate_limited"}}`)
			return
		}
		var prompt string
		for _, m := range req.Messages {
			if m.Role == "user" {
				prompt = m.Content
			}
		}
		text := "No, the query does not contain any syntax errors."
		finish := "stop"
		ct := (len(text) + 3) / 4
		if req.MaxTokens > 0 && ct > req.MaxTokens {
			text = text[:req.MaxTokens*4]
			ct = req.MaxTokens
			finish = "length"
		}
		json.NewEncoder(w).Encode(map[string]any{
			"model": req.Model + "-snapshot",
			"choices": []map[string]any{{
				"message":       map[string]string{"role": "assistant", "content": text},
				"finish_reason": finish,
			}},
			"usage": map[string]int{
				"prompt_tokens":     (len(prompt) + 3) / 4,
				"completion_tokens": ct,
			},
		})
	}
}

func newStubClient(t *testing.T, srv *httptest.Server) *Client {
	t.Helper()
	c, err := New(Config{BaseURL: srv.URL + "/v1", Model: "stub", Name: "Stub"})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// The full llm.Client contract against an httptest stub, including typed
// error classification via an always-429 endpoint.
func TestClientContract(t *testing.T) {
	srv := httptest.NewServer(stubHandler(nil))
	defer srv.Close()
	always429 := new(atomic.Int64)
	always429.Store(1 << 40)
	srv429 := httptest.NewServer(stubHandler(always429))
	defer srv429.Close()

	clienttest.Run(t, clienttest.Options{
		New:           func(t *testing.T) llm.Client { return newStubClient(t, srv) },
		Deterministic: true,
		NewFailing: func(t *testing.T) (llm.Client, int) {
			c, err := New(Config{BaseURL: srv429.URL + "/v1", Model: "stub"})
			if err != nil {
				t.Fatal(err)
			}
			return c, http.StatusTooManyRequests
		},
	})
}

// The contract also holds for the client behind the full spec-built
// middleware stack with a flaky endpoint: the Retry middleware absorbs a
// 429-then-success sequence invisibly.
func TestContractThroughRetryOn429(t *testing.T) {
	flaky := new(atomic.Int64)
	srv := httptest.NewServer(stubHandler(flaky))
	defer srv.Close()
	stats := llm.NewStats()
	providers := map[string]llm.Factory{"http": Factory}
	clienttest.Run(t, clienttest.Options{
		New: func(t *testing.T) llm.Client {
			flaky.Store(1) // next request 429s once
			c, err := llm.BuildClient(llm.Spec{
				Name: "flaky", Provider: "http",
				BaseURL: srv.URL + "/v1", Model: "stub",
				MaxAttempts: 3, RetryBaseMS: 1, RPS: 500, Burst: 50, MaxInFlight: 8,
			}, providers, stats)
			if err != nil {
				t.Fatal(err)
			}
			return c
		},
		Deterministic: true,
	})
	ms := stats.Model("flaky")
	if ms.Retries.Load() == 0 {
		t.Error("no retries recorded — the 429 path never ran")
	}
	// The contract's cancelled-context probe records exactly one error; every
	// 429 must have been absorbed by a retry rather than surfacing.
	if ms.Errors.Load() > 1 {
		t.Errorf("errors = %d, want <= 1 (retry should absorb the 429s)", ms.Errors.Load())
	}
}

func TestRetryOn429ThenSuccess(t *testing.T) {
	flaky := new(atomic.Int64)
	flaky.Store(2)
	srv := httptest.NewServer(stubHandler(flaky))
	defer srv.Close()
	base := newStubClient(t, srv)
	var retries int
	c := llm.RetryWith(llm.RetryConfig{
		MaxAttempts: 4, BaseDelay: time.Millisecond,
		OnRetry: func(name string, attempt int, err error, delay time.Duration) {
			retries++
			if !llm.IsRetryable(err) {
				t.Errorf("retrying non-retryable %v", err)
			}
		},
	})(base)
	resp, err := c.Do(context.Background(), llm.NewRequest("check this"))
	if err != nil {
		t.Fatalf("Do after retries: %v", err)
	}
	if retries != 2 {
		t.Errorf("retries = %d, want 2", retries)
	}
	if resp.Text == "" || resp.Usage.CompletionTokens == 0 {
		t.Errorf("thin response after retry: %+v", resp)
	}
}

func TestErrorMapping(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":{"message":"overloaded","type":"server_overloaded"}}`)
	}))
	defer srv.Close()
	c, _ := New(Config{BaseURL: srv.URL + "/v1", Model: "stub"})
	_, err := c.Do(context.Background(), llm.NewRequest("p"))
	var le *llm.Error
	if !errors.As(err, &le) {
		t.Fatalf("err = %T %v", err, err)
	}
	if le.Status != 503 || le.Code != "server_overloaded" || le.Message != "overloaded" {
		t.Errorf("error = %+v", le)
	}
	if le.RetryAfter != 7*time.Second {
		t.Errorf("RetryAfter = %v", le.RetryAfter)
	}
	if !le.Retryable() {
		t.Error("503 should be retryable")
	}
}

func TestNonJSONErrorBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad gateway", http.StatusBadGateway)
	}))
	defer srv.Close()
	c, _ := New(Config{BaseURL: srv.URL + "/v1", Model: "stub"})
	_, err := c.Do(context.Background(), llm.NewRequest("p"))
	var le *llm.Error
	if !errors.As(err, &le) || le.Status != 502 || !strings.Contains(le.Message, "bad gateway") {
		t.Errorf("err = %v", err)
	}
}

func TestTimeoutClassifiedRetryable(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Consume the body so the server's background read can notice the
		// client abort; the safety timer keeps srv.Close from hanging.
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-time.After(2 * time.Second):
		}
	}))
	defer srv.Close()
	c, err := New(Config{BaseURL: srv.URL + "/v1", Model: "stub", Timeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, derr := c.Do(context.Background(), llm.NewRequest("p"))
	var le *llm.Error
	if !errors.As(derr, &le) || le.Status != http.StatusRequestTimeout {
		t.Fatalf("timeout err = %v", derr)
	}
	if !le.Retryable() {
		t.Error("timeout should be retryable")
	}
}

func TestRequestPayloadCarriesParams(t *testing.T) {
	var got map[string]any
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewDecoder(r.Body).Decode(&got)
		if auth := r.Header.Get("Authorization"); auth != "Bearer sekret" {
			t.Errorf("Authorization = %q", auth)
		}
		json.NewEncoder(w).Encode(map[string]any{
			"choices": []map[string]any{{"message": map[string]string{"role": "assistant", "content": "ok"}}},
			"usage":   map[string]int{"prompt_tokens": 1, "completion_tokens": 1},
		})
	}))
	defer srv.Close()
	c, _ := New(Config{BaseURL: srv.URL + "/v1", Model: "gpt-x", APIKey: "sekret"})
	temp, seed := 0.25, int64(11)
	req := llm.Request{
		Messages:    []llm.Message{{Role: llm.RoleSystem, Content: "be terse"}, {Role: llm.RoleUser, Content: "hi"}},
		Temperature: &temp, MaxTokens: 32, Seed: &seed,
	}
	if _, err := c.Do(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if got["model"] != "gpt-x" || got["temperature"] != 0.25 || got["max_tokens"] != float64(32) || got["seed"] != float64(11) {
		t.Errorf("payload = %v", got)
	}
	msgs := got["messages"].([]any)
	if len(msgs) != 2 || msgs[0].(map[string]any)["role"] != "system" {
		t.Errorf("messages = %v", msgs)
	}
}

func TestFactoryValidation(t *testing.T) {
	if _, err := Factory(llm.Spec{Name: "x", Provider: "http"}); err == nil {
		t.Error("missing base_url should fail")
	}
	c, err := Factory(llm.Spec{Name: "x", Provider: "http", BaseURL: "http://127.0.0.1:9/v1"})
	if err != nil || c.Name() != "x" {
		t.Errorf("Factory = %v, %v", c, err)
	}
	if _, err := New(Config{BaseURL: "http://h/v1"}); err == nil {
		t.Error("missing model should fail")
	}
}
