// Package httpllm is the HTTP-backed llm.Client: an OpenAI-compatible
// chat-completions client, so the benchmark and the serving layer can drive
// real model endpoints (or any stub speaking the same wire format) behind
// the same contract the simulators implement. Failures map to *llm.Error
// with the response's HTTP status and Retry-After hint, which is what the
// llm.Retry middleware classifies on.
package httpllm

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/llm"
)

// Config controls client construction.
type Config struct {
	// BaseURL is the API root; the client posts to BaseURL +
	// "/chat/completions". Required.
	BaseURL string
	// Model is the model identifier sent in the request payload. Required.
	Model string
	// Name is the registry/display name; defaults to Model.
	Name string
	// APIKey is the bearer token. When empty, APIKeyEnv is consulted; when
	// both are empty no Authorization header is sent (local stubs).
	APIKey string
	// APIKeyEnv names the environment variable holding the key.
	APIKeyEnv string
	// Timeout bounds each request (default 60s).
	Timeout time.Duration
	// HTTPClient overrides the transport (tests); nil means a dedicated
	// http.Client.
	HTTPClient *http.Client
	// MaxResponseBytes bounds response bodies (default 4 MiB).
	MaxResponseBytes int64
}

// Client is an OpenAI-compatible chat-completions client. It is stateless
// beyond its configuration and safe for concurrent use.
type Client struct {
	cfg Config
	url string
	key string
}

// New validates the configuration and builds the client.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("httpllm: base URL is required")
	}
	if cfg.Model == "" {
		return nil, fmt.Errorf("httpllm: model id is required")
	}
	if cfg.Name == "" {
		cfg.Name = cfg.Model
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{}
	}
	if cfg.MaxResponseBytes <= 0 {
		cfg.MaxResponseBytes = 4 << 20
	}
	key := cfg.APIKey
	if key == "" && cfg.APIKeyEnv != "" {
		key = os.Getenv(cfg.APIKeyEnv)
	}
	return &Client{
		cfg: cfg,
		url: strings.TrimSuffix(cfg.BaseURL, "/") + "/chat/completions",
		key: key,
	}, nil
}

// Factory adapts New to the llm.Spec construction surface (provider "http").
func Factory(spec llm.Spec) (llm.Client, error) {
	model := spec.Model
	if model == "" {
		model = spec.Name
	}
	return New(Config{
		BaseURL:   spec.BaseURL,
		Model:     model,
		Name:      spec.Name,
		APIKeyEnv: spec.APIKeyEnv,
		Timeout:   time.Duration(spec.TimeoutMS) * time.Millisecond,
	})
}

// Name implements llm.Client.
func (c *Client) Name() string { return c.cfg.Name }

// Wire format: the chat-completions subset the client speaks.

type wireMessage struct {
	Role    string `json:"role"`
	Content string `json:"content"`
}

type wireRequest struct {
	Model       string        `json:"model"`
	Messages    []wireMessage `json:"messages"`
	Temperature *float64      `json:"temperature,omitempty"`
	MaxTokens   int           `json:"max_tokens,omitempty"`
	Seed        *int64        `json:"seed,omitempty"`
}

type wireResponse struct {
	Model   string `json:"model"`
	Choices []struct {
		Message      wireMessage `json:"message"`
		FinishReason string      `json:"finish_reason"`
	} `json:"choices"`
	Usage struct {
		PromptTokens     int `json:"prompt_tokens"`
		CompletionTokens int `json:"completion_tokens"`
	} `json:"usage"`
}

type wireError struct {
	Error struct {
		Message string `json:"message"`
		Type    string `json:"type"`
		Code    any    `json:"code"`
	} `json:"error"`
}

// Do implements llm.Client: one POST to /chat/completions.
func (c *Client) Do(ctx context.Context, req llm.Request) (llm.Response, error) {
	if err := ctx.Err(); err != nil {
		return llm.Response{}, err
	}
	body := wireRequest{
		Model:       c.cfg.Model,
		Temperature: req.Temperature,
		MaxTokens:   req.MaxTokens,
		Seed:        req.Seed,
	}
	for _, m := range req.Messages {
		body.Messages = append(body.Messages, wireMessage{Role: string(m.Role), Content: m.Content})
	}
	payload, err := json.Marshal(body)
	if err != nil {
		// Typed, non-retryable: a request that cannot be encoded fails
		// identically on every attempt, and the 400 gives serve and the
		// breaker an honest classification instead of a generic failure.
		return llm.Response{}, &llm.Error{
			Status: http.StatusBadRequest, Code: "invalid_request",
			Message: "encoding request", Err: err,
		}
	}

	rctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(rctx, http.MethodPost, c.url, bytes.NewReader(payload))
	if err != nil {
		return llm.Response{}, &llm.Error{
			Status: http.StatusBadRequest, Code: "invalid_request",
			Message: "building request for " + c.url, Err: err,
		}
	}
	hreq.Header.Set("Content-Type", "application/json")
	if c.key != "" {
		hreq.Header.Set("Authorization", "Bearer "+c.key)
	}

	start := time.Now()
	hresp, err := c.cfg.HTTPClient.Do(hreq)
	if err != nil {
		// The caller's own cancellation is not a provider failure.
		if cerr := ctx.Err(); cerr != nil {
			return llm.Response{}, cerr
		}
		if errors.Is(err, context.DeadlineExceeded) {
			return llm.Response{}, &llm.Error{
				Status: http.StatusRequestTimeout, Code: "request_timeout",
				Message: fmt.Sprintf("no response within %v", c.cfg.Timeout), Err: err,
			}
		}
		return llm.Response{}, &llm.Error{Code: "transport", Message: "request failed", Err: err}
	}
	defer hresp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hresp.Body, c.cfg.MaxResponseBytes))
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return llm.Response{}, cerr
		}
		return llm.Response{}, &llm.Error{Code: "transport", Message: "reading response", Err: err}
	}
	if hresp.StatusCode < 200 || hresp.StatusCode > 299 {
		return llm.Response{}, statusError(hresp, raw)
	}

	var wr wireResponse
	if err := json.Unmarshal(raw, &wr); err != nil {
		return llm.Response{}, &llm.Error{
			Status: hresp.StatusCode, Code: "bad_response",
			Message: "decoding completion body", Err: err,
		}
	}
	if len(wr.Choices) == 0 {
		return llm.Response{}, &llm.Error{
			Status: hresp.StatusCode, Code: "bad_response", Message: "no choices in completion",
		}
	}
	choice := wr.Choices[0]
	finish := choice.FinishReason
	if finish == "" {
		finish = llm.FinishStop
	}
	return llm.Response{
		Text:  choice.Message.Content,
		Model: wr.Model,
		Usage: llm.Usage{
			PromptTokens:     wr.Usage.PromptTokens,
			CompletionTokens: wr.Usage.CompletionTokens,
		},
		Latency:      time.Since(start),
		FinishReason: finish,
	}, nil
}

// statusError maps a non-2xx response to *llm.Error, mining the standard
// OpenAI error envelope and the Retry-After header when present.
func statusError(hresp *http.Response, raw []byte) *llm.Error {
	le := &llm.Error{Status: hresp.StatusCode, Code: codeForStatus(hresp.StatusCode)}
	var we wireError
	if err := json.Unmarshal(raw, &we); err == nil && we.Error.Message != "" {
		le.Message = we.Error.Message
		if we.Error.Type != "" {
			le.Code = we.Error.Type
		}
	} else if len(raw) > 0 {
		msg := string(raw)
		if len(msg) > 200 {
			msg = msg[:200]
		}
		le.Message = strings.TrimSpace(msg)
	}
	if ra := hresp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.ParseFloat(ra, 64); err == nil && secs >= 0 {
			le.RetryAfter = time.Duration(secs * float64(time.Second))
		}
	}
	return le
}

func codeForStatus(status int) string {
	switch status {
	case http.StatusTooManyRequests:
		return "rate_limited"
	case http.StatusUnauthorized, http.StatusForbidden:
		return "auth"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusRequestTimeout:
		return "request_timeout"
	default:
		if status >= 500 {
			return "server_error"
		}
		return "request_error"
	}
}
