package llm

import (
	"context"
	"errors"
	"hash/fnv"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/runner"
)

// Middleware decorates a Client with a cross-cutting behavior. Middlewares
// compose with Chain; each built-in decorator preserves the wrapped client's
// Name so registry identity is unaffected.
type Middleware func(Client) Client

// Chain applies middlewares so the first listed runs outermost:
// Chain(c, A, B) yields A(B(c)).
func Chain(c Client, mws ...Middleware) Client {
	for i := len(mws) - 1; i >= 0; i-- {
		if mws[i] != nil {
			c = mws[i](c)
		}
	}
	return c
}

// wrapped is the common decorator shape: delegate Name, intercept Do.
type wrapped struct {
	inner Client
	do    func(ctx context.Context, req Request) (Response, error)
}

func (w *wrapped) Name() string { return w.inner.Name() }
func (w *wrapped) Do(ctx context.Context, req Request) (Response, error) {
	return w.do(ctx, req)
}

// Wrap builds a decorator that keeps the inner client's Name and routes Do
// through do. Custom middlewares can use it directly.
func Wrap(inner Client, do func(ctx context.Context, req Request) (Response, error)) Client {
	return &wrapped{inner: inner, do: do}
}

// ---------------------------------------------------------------------------
// Retry

// RetryConfig tunes the Retry middleware.
type RetryConfig struct {
	// MaxAttempts is the total number of attempts including the first
	// (default 3). 1 disables retrying.
	MaxAttempts int
	// BaseDelay is the first backoff delay (default 100ms); each further
	// retry doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 5s).
	MaxDelay time.Duration
	// MaxRetryAfter caps how much of a provider Retry-After hint is honored
	// (default 15s), so one hostile or buggy header cannot stall a worker
	// for minutes.
	MaxRetryAfter time.Duration
	// OnRetry, when set, observes every scheduled retry (attempt counts the
	// failed attempts so far, starting at 1).
	OnRetry func(clientName string, attempt int, err error, delay time.Duration)
	// sleep is swapped in tests; nil means a context-aware timer sleep.
	sleep func(ctx context.Context, d time.Duration) error
}

func (cfg *RetryConfig) fill() {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 100 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 5 * time.Second
	}
	if cfg.MaxRetryAfter <= 0 {
		cfg.MaxRetryAfter = 15 * time.Second
	}
	if cfg.sleep == nil {
		cfg.sleep = sleepCtx
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Retry returns a middleware that retries retryable errors (as classified by
// IsRetryable) with capped exponential backoff and deterministic jitter.
func Retry(maxAttempts int, baseDelay time.Duration) Middleware {
	return RetryWith(RetryConfig{MaxAttempts: maxAttempts, BaseDelay: baseDelay})
}

// RetryWith is Retry with full configuration.
func RetryWith(cfg RetryConfig) Middleware {
	cfg.fill()
	return func(inner Client) Client {
		return Wrap(inner, func(ctx context.Context, req Request) (Response, error) {
			for attempt := 1; ; attempt++ {
				resp, err := inner.Do(ctx, req)
				if err == nil {
					return resp, nil
				}
				if attempt >= cfg.MaxAttempts || !IsRetryable(err) || ctx.Err() != nil {
					return Response{}, err
				}
				delay := backoff(cfg, inner.Name(), req, attempt, err)
				// Never sleep past the context deadline: a backoff that
				// cannot complete before the caller's cutoff would trade a
				// concrete provider error for a certain DeadlineExceeded.
				if deadline, ok := ctx.Deadline(); ok && delay > time.Until(deadline) {
					return Response{}, err
				}
				if cfg.OnRetry != nil {
					cfg.OnRetry(inner.Name(), attempt, err, delay)
				}
				if span := obs.SpanFrom(ctx); span != nil {
					span.Event("retry",
						obs.Int("attempt", int64(attempt)),
						obs.String("error", err.Error()),
						obs.Int("delay_ms", delay.Milliseconds()))
				}
				// A cancellation during backoff surfaces as ctx.Err(), per
				// the Client contract — not as the prior provider error.
				if serr := cfg.sleep(ctx, delay); serr != nil {
					return Response{}, serr
				}
			}
		})
	}
}

// backoff computes the delay before retry #attempt: exponential growth from
// BaseDelay, capped at MaxDelay, scaled by a deterministic jitter factor in
// [0.5, 1.0) derived from (client, request, attempt) — reproducible, yet
// de-synchronized across clients and requests. A provider Retry-After hint
// raises the delay when it is longer, but only up to MaxRetryAfter: the
// hint is provider-controlled input and must not be able to park a worker
// indefinitely.
func backoff(cfg RetryConfig, name string, req Request, attempt int, err error) time.Duration {
	d := cfg.BaseDelay << (attempt - 1)
	if d > cfg.MaxDelay || d <= 0 { // <=0 guards shift overflow
		d = cfg.MaxDelay
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(strconv.FormatUint(req.Hash(), 16)))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(attempt)))
	jitter := 0.5 + float64(h.Sum64()%(1<<32))/float64(uint64(1)<<33)
	d = time.Duration(float64(d) * jitter)
	var le *Error
	if errors.As(err, &le) && le.RetryAfter > d {
		d = le.RetryAfter
		if d > cfg.MaxRetryAfter {
			d = cfg.MaxRetryAfter
		}
	}
	return d
}

// ---------------------------------------------------------------------------
// RateLimit

// TokenBucket is a minimal token bucket (rate tokens/second, burst
// capacity), safe for concurrent use. It backs both the client-side
// RateLimit middleware (blocking Reserve) and the serve layer's admission
// control (non-blocking TryTake), so the refill math lives in one place.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	// Clock overrides time.Now; set before first use (tests).
	Clock func() time.Time
}

// NewTokenBucket returns a full bucket (burst is clamped to at least 1).
func NewTokenBucket(rps float64, burst int) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rps, burst: float64(burst), tokens: float64(burst)}
}

// refillLocked credits tokens for the time elapsed since the last call.
func (b *TokenBucket) refillLocked() {
	now := time.Now()
	if b.Clock != nil {
		now = b.Clock()
	}
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// Reserve always takes one token (going into debt if necessary) and returns
// how long the caller must wait before proceeding (0 when a token was
// immediately available).
func (b *TokenBucket) Reserve() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	b.tokens--
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens / b.rate * float64(time.Second))
}

// TryTake takes one token only if one is available, reporting admission
// and — on rejection — how long until a token would be available.
func (b *TokenBucket) TryTake() (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// Full reports whether the bucket has fully refilled — the caller has been
// idle long enough that forgetting the bucket would change nothing.
func (b *TokenBucket) Full() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	return b.tokens >= b.burst
}

// RateLimit returns a middleware that throttles requests through a token
// bucket (rps tokens per second, burst capacity). Requests wait for a token
// rather than failing; cancellation during the wait returns ctx.Err().
// rps <= 0 disables the limiter.
func RateLimit(rps float64, burst int) Middleware {
	return RateLimitWith(rps, burst, nil)
}

// RateLimitWith is RateLimit additionally counting requests that had to
// wait for a token into the per-model RateLimited stat.
func RateLimitWith(rps float64, burst int, stats *Stats) Middleware {
	if rps <= 0 {
		return nil
	}
	b := NewTokenBucket(rps, burst)
	return func(inner Client) Client {
		return Wrap(inner, func(ctx context.Context, req Request) (Response, error) {
			wait := b.Reserve()
			if wait > 0 && stats != nil {
				stats.Model(inner.Name()).RateLimited.Add(1)
			}
			if err := sleepCtx(ctx, wait); err != nil {
				return Response{}, err
			}
			return inner.Do(ctx, req)
		})
	}
}

// ---------------------------------------------------------------------------
// MaxInFlight

// MaxInFlight returns a middleware that bounds concurrent requests with a
// semaphore; excess requests queue (FIFO per the runtime's channel
// semantics) and honor cancellation while waiting. n <= 0 disables the
// bound.
func MaxInFlight(n int) Middleware {
	if n <= 0 {
		return nil
	}
	sem := make(chan struct{}, n)
	return func(inner Client) Client {
		return Wrap(inner, func(ctx context.Context, req Request) (Response, error) {
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return Response{}, ctx.Err()
			}
			defer func() { <-sem }()
			return inner.Do(ctx, req)
		})
	}
}

// ---------------------------------------------------------------------------
// Cache

// CacheWith returns a middleware that memoizes responses by request hash on
// the given runner.Flight, so concurrent identical requests coalesce onto
// one completion and the Flight's LRU cap (SetLimit) bounds retention.
// Errors are never cached (Flight forgets failed calls). The Flight may be
// shared across clients: keys include the client name.
//
// The coalesced completion runs detached from the winning caller's
// cancellation (its values, e.g. the runner worker budget, still apply), so
// one caller hanging up cannot poison every waiter coalesced onto the same
// key; the caller's own cancellation still surfaces as its result.
func CacheWith(flight *runner.Flight[string, Response]) Middleware {
	return func(inner Client) Client {
		return Wrap(inner, func(ctx context.Context, req Request) (Response, error) {
			if err := ctx.Err(); err != nil {
				return Response{}, err
			}
			key := inner.Name() + "\x00" + strconv.FormatUint(req.Hash(), 16)
			resp, shared, err := flight.DoShared(key, func() (Response, error) {
				return inner.Do(context.WithoutCancel(ctx), req)
			})
			if shared && err == nil {
				if span := obs.SpanFrom(ctx); span != nil {
					span.Event("cache_hit", obs.String("model", inner.Name()))
				}
			}
			if err == nil {
				if cerr := ctx.Err(); cerr != nil {
					return Response{}, cerr
				}
			}
			return resp, err
		})
	}
}

// Cache is CacheWith over a private Flight capped at limit entries
// (limit <= 0 means unbounded).
func Cache(limit int) Middleware {
	var flight runner.Flight[string, Response]
	if limit > 0 {
		flight.SetLimit(limit)
	}
	return CacheWith(&flight)
}

// ---------------------------------------------------------------------------
// Request defaults

// WithDefaults returns a middleware that fills unset request parameters with
// the given defaults: explicit per-request values always win.
func WithDefaults(temperature *float64, maxTokens int, seed *int64) Middleware {
	if temperature == nil && maxTokens == 0 && seed == nil {
		return nil
	}
	return func(inner Client) Client {
		return Wrap(inner, func(ctx context.Context, req Request) (Response, error) {
			if req.Temperature == nil {
				req.Temperature = temperature
			}
			if req.MaxTokens == 0 {
				req.MaxTokens = maxTokens
			}
			if req.Seed == nil {
				req.Seed = seed
			}
			return inner.Do(ctx, req)
		})
	}
}

// ---------------------------------------------------------------------------
// Instrument

// Instrument returns a middleware that records every request into the
// per-model Stats: request/error counts, token usage, and a latency
// histogram (the response-reported latency when the backend provides one,
// else the observed wall time).
func Instrument(s *Stats) Middleware {
	if s == nil {
		return nil
	}
	return func(inner Client) Client {
		return Wrap(inner, func(ctx context.Context, req Request) (Response, error) {
			ms := s.Model(inner.Name())
			ms.Requests.Add(1)
			start := time.Now()
			resp, err := inner.Do(ctx, req)
			if err != nil {
				ms.Errors.Add(1)
				return resp, err
			}
			lat := resp.Latency
			if lat <= 0 {
				lat = time.Since(start)
			}
			ms.PromptTokens.Add(int64(resp.Usage.PromptTokens))
			ms.CompletionTokens.Add(int64(resp.Usage.CompletionTokens))
			ms.Latency.Observe(lat)
			return resp, nil
		})
	}
}

// ---------------------------------------------------------------------------
// Trace

// Trace returns a middleware that wraps every Do in an obs span of the given
// name, annotated with the model and request hash and ended with the error,
// if any. BuildClient stacks it twice — "llm.request" around the whole
// resilient request and "llm.attempt" inside Retry, so each retry shows as a
// fresh child attempt span. With no tracer in the context the middleware is
// pass-through at zero allocation cost.
func Trace(name string) Middleware {
	return func(inner Client) Client {
		return Wrap(inner, func(ctx context.Context, req Request) (Response, error) {
			ctx, span := obs.Start(ctx, name)
			if span == nil {
				return inner.Do(ctx, req)
			}
			span.SetString("model", inner.Name())
			span.SetString("request_hash", strconv.FormatUint(req.Hash(), 16))
			resp, err := inner.Do(ctx, req)
			if err == nil {
				span.SetInt("prompt_tokens", int64(resp.Usage.PromptTokens))
				span.SetInt("completion_tokens", int64(resp.Usage.CompletionTokens))
				if resp.FinishReason != "" {
					span.SetString("finish_reason", resp.FinishReason)
				}
			}
			span.EndErr(err)
			return resp, err
		})
	}
}
