package llm

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// scriptClient fails with the scripted errors in order, then succeeds.
type scriptClient struct {
	name  string
	mu    sync.Mutex
	fails []error
	calls int
}

func (s *scriptClient) Name() string { return s.name }
func (s *scriptClient) Do(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if len(s.fails) > 0 {
		err := s.fails[0]
		s.fails = s.fails[1:]
		return Response{}, err
	}
	return Response{Text: "done", Usage: Usage{PromptTokens: 2, CompletionTokens: 1},
		Latency: 2 * time.Millisecond, FinishReason: FinishStop}, nil
}

func (s *scriptClient) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func noSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

func TestChainOrder(t *testing.T) {
	var order []string
	mw := func(tag string) Middleware {
		return func(inner Client) Client {
			return Wrap(inner, func(ctx context.Context, req Request) (Response, error) {
				order = append(order, tag)
				return inner.Do(ctx, req)
			})
		}
	}
	c := Chain(fakeClient{name: "x"}, mw("outer"), nil, mw("inner"))
	if c.Name() != "x" {
		t.Errorf("Chain changed Name to %q", c.Name())
	}
	if _, err := c.Do(context.Background(), NewRequest("p")); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Errorf("order = %v", order)
	}
}

func TestRetrySucceedsAfterRetryable(t *testing.T) {
	sc := &scriptClient{name: "m", fails: []error{
		&Error{Status: 429, Code: "rate_limited"},
		&Error{Status: 503},
	}}
	var retries int
	c := RetryWith(RetryConfig{
		MaxAttempts: 4,
		OnRetry:     func(name string, attempt int, err error, delay time.Duration) { retries++ },
		sleep:       noSleep,
	})(sc)
	resp, err := c.Do(context.Background(), NewRequest("p"))
	if err != nil || resp.Text != "done" {
		t.Fatalf("Do = %+v, %v", resp, err)
	}
	if sc.callCount() != 3 || retries != 2 {
		t.Errorf("calls = %d, retries = %d", sc.callCount(), retries)
	}
}

func TestRetryStopsOnNonRetryable(t *testing.T) {
	sc := &scriptClient{name: "m", fails: []error{&Error{Status: 401, Code: "auth"}}}
	c := RetryWith(RetryConfig{MaxAttempts: 5, sleep: noSleep})(sc)
	_, err := c.Do(context.Background(), NewRequest("p"))
	var le *Error
	if !errors.As(err, &le) || le.Status != 401 {
		t.Fatalf("err = %v", err)
	}
	if sc.callCount() != 1 {
		t.Errorf("calls = %d, want 1 (no retry on auth errors)", sc.callCount())
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	sc := &scriptClient{name: "m", fails: []error{
		&Error{Status: 500}, &Error{Status: 500}, &Error{Status: 500},
	}}
	c := RetryWith(RetryConfig{MaxAttempts: 3, sleep: noSleep})(sc)
	_, err := c.Do(context.Background(), NewRequest("p"))
	var le *Error
	if !errors.As(err, &le) || le.Status != 500 {
		t.Fatalf("err = %v", err)
	}
	if sc.callCount() != 3 {
		t.Errorf("calls = %d, want 3", sc.callCount())
	}
}

func TestRetryHonorsCancellation(t *testing.T) {
	sc := &scriptClient{name: "m", fails: []error{&Error{Status: 429}, &Error{Status: 429}}}
	ctx, cancel := context.WithCancel(context.Background())
	c := RetryWith(RetryConfig{
		MaxAttempts: 5,
		sleep: func(ctx context.Context, d time.Duration) error {
			cancel() // cancelled mid-backoff
			return ctx.Err()
		},
	})(sc)
	_, err := c.Do(ctx, NewRequest("p"))
	// The Client contract: cancellation surfaces as ctx.Err(), not as the
	// prior provider error.
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sc.callCount() != 1 {
		t.Errorf("calls = %d, want 1 (no attempt after cancelled backoff)", sc.callCount())
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	cfg := RetryConfig{}
	cfg.fill()
	req := NewRequest("p")
	err := &Error{Status: 429}
	a := backoff(cfg, "m", req, 1, err)
	b := backoff(cfg, "m", req, 1, err)
	if a != b {
		t.Errorf("jitter is not deterministic: %v vs %v", a, b)
	}
	if a < cfg.BaseDelay/2 || a > cfg.BaseDelay {
		t.Errorf("attempt-1 delay %v outside [base/2, base]", a)
	}
	// Growth is exponential but capped.
	for attempt := 1; attempt <= 30; attempt++ {
		d := backoff(cfg, "m", req, attempt, err)
		if d <= 0 || d > cfg.MaxDelay {
			t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d, cfg.MaxDelay)
		}
	}
	// Different requests (or clients) de-synchronize.
	if backoff(cfg, "m", NewRequest("q"), 1, err) == a && backoff(cfg, "n", req, 1, err) == a {
		t.Error("jitter ignores client and request identity")
	}
	// A longer Retry-After hint wins — but only up to the MaxRetryAfter
	// cap, so a hostile header cannot park a worker for minutes.
	hinted := backoff(cfg, "m", req, 1, &Error{Status: 429, RetryAfter: 10 * time.Second})
	if hinted != 10*time.Second {
		t.Errorf("Retry-After hint ignored: %v", hinted)
	}
	capped := backoff(cfg, "m", req, 1, &Error{Status: 429, RetryAfter: time.Hour})
	if capped != cfg.MaxRetryAfter {
		t.Errorf("hostile Retry-After not capped: %v, want %v", capped, cfg.MaxRetryAfter)
	}
}

func TestTokenBucket(t *testing.T) {
	b := NewTokenBucket(10, 2) // 10/s, burst 2
	now := time.Unix(1000, 0)
	b.Clock = func() time.Time { return now }
	if w := b.Reserve(); w != 0 {
		t.Fatalf("first reserve waits %v", w)
	}
	if w := b.Reserve(); w != 0 {
		t.Fatalf("burst reserve waits %v", w)
	}
	w := b.Reserve()
	if w <= 0 || w > 150*time.Millisecond {
		t.Fatalf("exhausted reserve waits %v, want ~100ms", w)
	}
	if b.Full() {
		t.Fatal("in-debt bucket reports Full")
	}
	// Refill after 1s: full burst again.
	now = now.Add(time.Second)
	if w := b.Reserve(); w != 0 {
		t.Fatalf("post-refill reserve waits %v", w)
	}
	// TryTake rejects without going into debt.
	b2 := NewTokenBucket(10, 1)
	b2.Clock = func() time.Time { return now }
	if ok, _ := b2.TryTake(); !ok {
		t.Fatal("fresh TryTake rejected")
	}
	ok, wait := b2.TryTake()
	if ok || wait <= 0 {
		t.Fatalf("exhausted TryTake = %v, %v", ok, wait)
	}
	now = now.Add(time.Second)
	if !b2.Full() {
		t.Error("refilled bucket not Full")
	}
}

func TestRateLimitMiddleware(t *testing.T) {
	sc := &scriptClient{name: "m"}
	c := RateLimit(1000, 1)(sc)
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := c.Do(context.Background(), NewRequest("p")); err != nil {
			t.Fatal(err)
		}
	}
	// 5 requests at 1000 rps burst 1 need ~4ms of waiting; mostly this
	// asserts the limiter neither deadlocks nor rejects.
	if time.Since(start) > 2*time.Second {
		t.Error("rate limiter stalled")
	}
	if RateLimit(0, 1) != nil {
		t.Error("rps<=0 should disable the middleware")
	}
	// Cancellation during the wait surfaces ctx.Err.
	slow := RateLimit(0.0001, 1)(sc)
	if _, err := slow.Do(context.Background(), NewRequest("p")); err != nil {
		t.Fatal(err) // consumes the burst token
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := slow.Do(ctx, NewRequest("p")); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("cancelled wait returned %v", err)
	}
}

func TestMaxInFlight(t *testing.T) {
	var inFlight, peak atomic.Int64
	base := Wrap(fakeClient{name: "m"}, func(ctx context.Context, req Request) (Response, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return Response{Text: "ok"}, nil
	})
	c := MaxInFlight(2)(base)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Do(context.Background(), NewRequest("p")); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 2 {
		t.Errorf("peak in-flight = %d, want <= 2", got)
	}
	if MaxInFlight(0) != nil {
		t.Error("n<=0 should disable the middleware")
	}
}

func TestCacheMemoizesByRequest(t *testing.T) {
	sc := &scriptClient{name: "m"}
	c := Cache(8)(sc)
	ctx := context.Background()
	a, err := c.Do(ctx, NewRequest("p"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Do(ctx, NewRequest("p"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Text != b.Text || sc.callCount() != 1 {
		t.Errorf("cache miss on identical request (calls=%d)", sc.callCount())
	}
	if _, err := c.Do(ctx, NewRequest("q")); err != nil {
		t.Fatal(err)
	}
	if sc.callCount() != 2 {
		t.Errorf("distinct request should compute (calls=%d)", sc.callCount())
	}
	// Parameters are part of the key.
	if _, err := c.Do(ctx, Request{Messages: NewRequest("p").Messages, MaxTokens: 4}); err != nil {
		t.Fatal(err)
	}
	if sc.callCount() != 3 {
		t.Errorf("parameterized request should compute (calls=%d)", sc.callCount())
	}
}

func TestCacheDoesNotCacheErrors(t *testing.T) {
	sc := &scriptClient{name: "m", fails: []error{&Error{Status: 500}}}
	c := Cache(8)(sc)
	if _, err := c.Do(context.Background(), NewRequest("p")); err == nil {
		t.Fatal("expected failure")
	}
	resp, err := c.Do(context.Background(), NewRequest("p"))
	if err != nil || resp.Text != "done" {
		t.Fatalf("retry after cached error: %+v, %v", resp, err)
	}
}

func TestWithDefaults(t *testing.T) {
	var got Request
	base := Wrap(fakeClient{name: "m"}, func(ctx context.Context, req Request) (Response, error) {
		got = req
		return Response{Text: "ok"}, nil
	})
	c := WithDefaults(f64(0.5), 100, i64(9))(base)
	if _, err := c.Do(context.Background(), NewRequest("p")); err != nil {
		t.Fatal(err)
	}
	if got.Temperature == nil || *got.Temperature != 0.5 || got.MaxTokens != 100 || got.Seed == nil || *got.Seed != 9 {
		t.Errorf("defaults not applied: %+v", got)
	}
	// Explicit values win.
	if _, err := c.Do(context.Background(), Request{Messages: NewRequest("p").Messages, Temperature: f64(0), MaxTokens: 7}); err != nil {
		t.Fatal(err)
	}
	if *got.Temperature != 0 || got.MaxTokens != 7 {
		t.Errorf("explicit values overridden: %+v", got)
	}
	if WithDefaults(nil, 0, nil) != nil {
		t.Error("no-op defaults should disable the middleware")
	}
}

func TestInstrument(t *testing.T) {
	stats := NewStats()
	sc := &scriptClient{name: "m", fails: []error{&Error{Status: 500}}}
	c := Instrument(stats)(sc)
	ctx := context.Background()
	c.Do(ctx, NewRequest("p")) // error
	c.Do(ctx, NewRequest("p")) // success
	c.Do(ctx, NewRequest("p")) // success
	ms := stats.Model("m")
	if ms.Requests.Load() != 3 || ms.Errors.Load() != 1 {
		t.Errorf("requests=%d errors=%d", ms.Requests.Load(), ms.Errors.Load())
	}
	if ms.PromptTokens.Load() != 4 || ms.CompletionTokens.Load() != 2 {
		t.Errorf("tokens=%d/%d", ms.PromptTokens.Load(), ms.CompletionTokens.Load())
	}
	if ms.Latency.Count() != 2 || ms.Latency.Mean() != 2*time.Millisecond {
		t.Errorf("latency count=%d mean=%v", ms.Latency.Count(), ms.Latency.Mean())
	}
	snap := stats.Snapshot()["m"]
	if snap.Requests != 3 || snap.TotalTokens != 6 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestStatsRetryHook(t *testing.T) {
	stats := NewStats()
	hook := stats.RetryHook()
	hook("m", 1, &Error{Status: 429}, time.Millisecond)
	hook("m", 2, &Error{Status: 429}, time.Millisecond)
	if got := stats.Model("m").Retries.Load(); got != 2 {
		t.Errorf("retries = %d", got)
	}
}

// A coalesced completion must not be poisoned by the winning caller's
// cancellation: the waiter still gets the completed response, while the
// cancelled caller gets its own ctx error.
func TestCacheWinnerCancellationDoesNotPoisonWaiters(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	base := Wrap(fakeClient{name: "m"}, func(ctx context.Context, req Request) (Response, error) {
		started <- struct{}{}
		select {
		case <-release:
			return Response{Text: "done", FinishReason: FinishStop}, nil
		case <-ctx.Done():
			return Response{}, ctx.Err()
		}
	})
	c := Cache(8)(base)

	winnerCtx, cancelWinner := context.WithCancel(context.Background())
	winnerErr := make(chan error, 1)
	go func() {
		_, err := c.Do(winnerCtx, NewRequest("p"))
		winnerErr <- err
	}()
	<-started // the winner's completion is in flight

	waiterResp := make(chan Response, 1)
	waiterErr := make(chan error, 1)
	go func() {
		resp, err := c.Do(context.Background(), NewRequest("p"))
		waiterResp <- resp
		waiterErr <- err
	}()

	cancelWinner()
	// The detached completion keeps running; releasing it must satisfy the
	// waiter with a real response.
	close(release)
	if err := <-waiterErr; err != nil {
		t.Fatalf("waiter poisoned by winner's cancellation: %v", err)
	}
	if resp := <-waiterResp; resp.Text != "done" {
		t.Errorf("waiter response = %+v", resp)
	}
	// The winner itself still observes its cancellation.
	if err := <-winnerErr; !errors.Is(err, context.Canceled) {
		t.Errorf("winner err = %v, want context.Canceled", err)
	}
}

// A pre-cancelled context short-circuits before touching the cache.
func TestCachePreCancelled(t *testing.T) {
	sc := &scriptClient{name: "m"}
	c := Cache(8)(sc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Do(ctx, NewRequest("p")); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if sc.callCount() != 0 {
		t.Errorf("cancelled request reached the backend (%d calls)", sc.callCount())
	}
}

// RateLimitWith counts requests that had to wait for a token.
func TestRateLimitWithCountsWaits(t *testing.T) {
	stats := NewStats()
	sc := &scriptClient{name: "m"}
	c := RateLimitWith(1000, 1, stats)(sc)
	for i := 0; i < 4; i++ {
		if _, err := c.Do(context.Background(), NewRequest("p")); err != nil {
			t.Fatal(err)
		}
	}
	// Burst 1: the first request is free; later ones (mostly) wait.
	if got := stats.Model("m").RateLimited.Load(); got < 1 {
		t.Errorf("rate_limited = %d, want >= 1", got)
	}
}
