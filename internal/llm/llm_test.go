package llm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

type fakeClient struct{ name string }

func (f fakeClient) Name() string { return f.name }
func (f fakeClient) Do(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	return Response{
		Text:         "ok:" + f.name,
		Usage:        Usage{PromptTokens: len(req.UserPrompt()), CompletionTokens: 3},
		Latency:      time.Millisecond,
		FinishReason: FinishStop,
	}, nil
}

func TestRegistryRegisterGet(t *testing.T) {
	r := NewRegistry()
	r.Register(fakeClient{name: "a"})
	r.Register(fakeClient{name: "b"})
	c, err := r.Get("a")
	if err != nil || c.Name() != "a" {
		t.Fatalf("Get(a) = %v, %v", c, err)
	}
	if _, err := r.Get("z"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("Get(z) error = %v, want ErrUnknownModel", err)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
}

func TestRegistryReplace(t *testing.T) {
	r := NewRegistry()
	r.Register(fakeClient{name: "a"})
	r.Register(fakeClient{name: "a"}) // replace, not duplicate
	if len(r.Names()) != 1 {
		t.Errorf("Names = %v", r.Names())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.Register(fakeClient{name: string(rune('a' + i))})
			r.Names()
			r.Get("a")
		}(i)
	}
	wg.Wait()
	if len(r.Names()) != 8 {
		t.Errorf("Names = %v", r.Names())
	}
}

func TestModelNames(t *testing.T) {
	if len(ModelNames) != 5 || ModelNames[0] != GPT4 || ModelNames[4] != Gemini {
		t.Errorf("ModelNames = %v", ModelNames)
	}
}

func TestNewRequestAndComplete(t *testing.T) {
	req := NewRequest("hello")
	if len(req.Messages) != 1 || req.Messages[0].Role != RoleUser || req.Messages[0].Content != "hello" {
		t.Fatalf("NewRequest = %+v", req)
	}
	if got := req.UserPrompt(); got != "hello" {
		t.Errorf("UserPrompt = %q", got)
	}
	text, err := Complete(context.Background(), fakeClient{name: "m"}, "hello")
	if err != nil || text != "ok:m" {
		t.Errorf("Complete = %q, %v", text, err)
	}
}

func TestRequestWithSystem(t *testing.T) {
	req := NewRequest("user text").WithSystem("system text")
	if len(req.Messages) != 2 || req.Messages[0].Role != RoleSystem {
		t.Fatalf("WithSystem = %+v", req)
	}
	// UserPrompt ignores the system message.
	if got := req.UserPrompt(); got != "user text" {
		t.Errorf("UserPrompt = %q", got)
	}
}

func TestRequestUserPromptMultiple(t *testing.T) {
	req := Request{Messages: []Message{
		{Role: RoleUser, Content: "a"},
		{Role: RoleAssistant, Content: "ignored"},
		{Role: RoleUser, Content: "b"},
	}}
	if got := req.UserPrompt(); got != "a\nb" {
		t.Errorf("UserPrompt = %q", got)
	}
}

func TestRequestHash(t *testing.T) {
	base := NewRequest("prompt")
	if base.Hash() != NewRequest("prompt").Hash() {
		t.Error("identical requests hash differently")
	}
	distinct := []Request{
		NewRequest("other"),
		base.WithSystem("sys"),
		{Messages: base.Messages, MaxTokens: 5},
		{Messages: base.Messages, Temperature: f64(0)},
		{Messages: base.Messages, Temperature: f64(1)},
		{Messages: base.Messages, Seed: i64(7)},
	}
	seen := map[uint64]int{base.Hash(): -1}
	for i, r := range distinct {
		h := r.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("request %d collides with %d", i, prev)
		}
		seen[h] = i
	}
}

func f64(v float64) *float64 { return &v }
func i64(v int64) *int64     { return &v }

func TestUsage(t *testing.T) {
	u := Usage{PromptTokens: 10, CompletionTokens: 5}
	if u.Total() != 15 {
		t.Errorf("Total = %d", u.Total())
	}
	u.Add(Usage{PromptTokens: 1, CompletionTokens: 2})
	if u.PromptTokens != 11 || u.CompletionTokens != 7 {
		t.Errorf("Add = %+v", u)
	}
}

func TestErrorMessage(t *testing.T) {
	cases := []struct {
		err  *Error
		want []string
	}{
		{&Error{Status: 429, Code: "rate_limited", Message: "slow down"}, []string{"429", "rate_limited", "slow down"}},
		{&Error{Status: 500}, []string{"500"}},
		{&Error{Code: "transport", Err: errors.New("boom")}, []string{"transport", "boom"}},
		{&Error{}, []string{"request failed"}},
	}
	for _, tc := range cases {
		got := tc.err.Error()
		for _, want := range tc.want {
			if !strings.Contains(got, want) {
				t.Errorf("%+v: Error() = %q lacks %q", tc.err, got, want)
			}
		}
	}
}

func TestErrorRetryable(t *testing.T) {
	cases := map[int]bool{
		400: false, 401: false, 403: false, 404: false,
		408: true, 429: true,
		500: true, 501: false, 502: true, 503: true, 504: true,
	}
	for status, want := range cases {
		e := &Error{Status: status}
		if got := e.Retryable(); got != want {
			t.Errorf("status %d: Retryable = %v, want %v", status, got, want)
		}
	}
	// Transport failures retry — unless the caller cancelled.
	if !(&Error{Status: 0, Err: errors.New("conn reset")}).Retryable() {
		t.Error("transport failure should be retryable")
	}
	if (&Error{Status: 0, Err: context.Canceled}).Retryable() {
		t.Error("cancellation must not be retryable")
	}
}

func TestIsRetryable(t *testing.T) {
	if !IsRetryable(&Error{Status: 429}) {
		t.Error("*Error 429 should be retryable")
	}
	if !IsRetryable(fmt.Errorf("completing x: %w", &Error{Status: 503})) {
		t.Error("wrapped *Error 503 should be retryable")
	}
	if IsRetryable(errors.New("plain")) {
		t.Error("plain errors are not retryable")
	}
	if IsRetryable(context.Canceled) {
		t.Error("cancellation is not retryable")
	}
}

func TestErrorUnwrap(t *testing.T) {
	inner := errors.New("socket closed")
	err := fmt.Errorf("outer: %w", &Error{Code: "transport", Err: inner})
	if !errors.Is(err, inner) {
		t.Error("Unwrap chain broken")
	}
	var le *Error
	if !errors.As(err, &le) || le.Code != "transport" {
		t.Errorf("errors.As failed: %v", le)
	}
}
