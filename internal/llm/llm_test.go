package llm

import (
	"context"
	"errors"
	"sync"
	"testing"
)

type fakeClient struct{ name string }

func (f fakeClient) Name() string { return f.name }
func (f fakeClient) Complete(ctx context.Context, prompt string) (string, error) {
	return "ok:" + f.name, nil
}

func TestRegistryRegisterGet(t *testing.T) {
	r := NewRegistry()
	r.Register(fakeClient{name: "a"})
	r.Register(fakeClient{name: "b"})
	c, err := r.Get("a")
	if err != nil || c.Name() != "a" {
		t.Fatalf("Get(a) = %v, %v", c, err)
	}
	if _, err := r.Get("z"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("Get(z) error = %v, want ErrUnknownModel", err)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
}

func TestRegistryReplace(t *testing.T) {
	r := NewRegistry()
	r.Register(fakeClient{name: "a"})
	r.Register(fakeClient{name: "a"}) // replace, not duplicate
	if len(r.Names()) != 1 {
		t.Errorf("Names = %v", r.Names())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.Register(fakeClient{name: string(rune('a' + i))})
			r.Names()
			r.Get("a")
		}(i)
	}
	wg.Wait()
	if len(r.Names()) != 8 {
		t.Errorf("Names = %v", r.Names())
	}
}

func TestModelNames(t *testing.T) {
	if len(ModelNames) != 5 || ModelNames[0] != GPT4 || ModelNames[4] != Gemini {
		t.Errorf("ModelNames = %v", ModelNames)
	}
}
