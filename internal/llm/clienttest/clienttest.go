// Package clienttest is the reusable contract suite every llm.Client
// implementation must pass: response and usage fields populated, the
// Complete helper agreeing with Do, concurrency safety, prompt context
// cancellation, and typed error classification. The sim models and the HTTP
// client both run it, so "drop-in replaceable" stays an enforced property
// rather than a comment.
package clienttest

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/llm"
)

// Options configures a contract run.
type Options struct {
	// New returns a fresh, working client. Required.
	New func(t *testing.T) llm.Client
	// Prompt is a prompt the client can answer; a default syntax-check
	// prompt is used when empty.
	Prompt string
	// Deterministic asserts that identical requests yield identical text.
	Deterministic bool
	// NewFailing optionally returns a client whose Do always fails with a
	// *llm.Error of the given status, enabling the error-classification
	// subtests.
	NewFailing func(t *testing.T) (client llm.Client, status int)
}

const defaultPrompt = "Does the following query contain any syntax errors? If so, explain the error and state the error type.\n\nSQL: SELECT plate , COUNT(*) FROM SpecObj"

// Run executes the contract suite as subtests of t.
func Run(t *testing.T, opts Options) {
	t.Helper()
	if opts.New == nil {
		t.Fatal("clienttest: Options.New is required")
	}
	if opts.Prompt == "" {
		opts.Prompt = defaultPrompt
	}

	t.Run("Name", func(t *testing.T) {
		c := opts.New(t)
		if c.Name() == "" {
			t.Fatal("Name() is empty")
		}
		if c.Name() != c.Name() {
			t.Fatal("Name() is unstable")
		}
	})

	t.Run("DoPopulatesResponse", func(t *testing.T) {
		c := opts.New(t)
		resp, err := c.Do(context.Background(), llm.NewRequest(opts.Prompt))
		if err != nil {
			t.Fatalf("Do: %v", err)
		}
		if strings.TrimSpace(resp.Text) == "" {
			t.Error("empty response text")
		}
		if resp.Usage.PromptTokens <= 0 {
			t.Errorf("prompt tokens = %d, want > 0", resp.Usage.PromptTokens)
		}
		if resp.Usage.CompletionTokens <= 0 {
			t.Errorf("completion tokens = %d, want > 0", resp.Usage.CompletionTokens)
		}
		if resp.Usage.Total() != resp.Usage.PromptTokens+resp.Usage.CompletionTokens {
			t.Error("usage total is inconsistent")
		}
		if resp.Latency <= 0 {
			t.Errorf("latency = %v, want > 0", resp.Latency)
		}
		if resp.FinishReason == "" {
			t.Error("empty finish reason")
		}
	})

	t.Run("CompleteHelper", func(t *testing.T) {
		c := opts.New(t)
		text, err := llm.Complete(context.Background(), c, opts.Prompt)
		if err != nil {
			t.Fatalf("Complete: %v", err)
		}
		if strings.TrimSpace(text) == "" {
			t.Error("empty completion")
		}
		if opts.Deterministic {
			resp, err := c.Do(context.Background(), llm.NewRequest(opts.Prompt))
			if err != nil {
				t.Fatalf("Do: %v", err)
			}
			if resp.Text != text {
				t.Errorf("Complete text differs from Do text:\n%q\n%q", text, resp.Text)
			}
		}
	})

	t.Run("Concurrency", func(t *testing.T) {
		c := opts.New(t)
		const goroutines, perG = 8, 4
		var wg sync.WaitGroup
		errc := make(chan error, goroutines*perG)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					resp, err := c.Do(context.Background(), llm.NewRequest(opts.Prompt))
					if err != nil {
						errc <- err
						return
					}
					if resp.Text == "" {
						errc <- errors.New("empty concurrent response")
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Errorf("concurrent Do: %v", err)
		}
	})

	t.Run("ContextCancellation", func(t *testing.T) {
		c := opts.New(t)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		done := make(chan struct{})
		var err error
		go func() {
			_, err = c.Do(ctx, llm.NewRequest(opts.Prompt))
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("Do did not return promptly on a cancelled context")
		}
		if err == nil {
			t.Fatal("Do succeeded on a cancelled context")
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("error %v does not wrap context.Canceled", err)
		}
	})

	if opts.NewFailing != nil {
		t.Run("ErrorClassification", func(t *testing.T) {
			c, wantStatus := opts.NewFailing(t)
			_, err := c.Do(context.Background(), llm.NewRequest(opts.Prompt))
			if err == nil {
				t.Fatal("failing client succeeded")
			}
			var le *llm.Error
			if !errors.As(err, &le) {
				t.Fatalf("error %T is not *llm.Error: %v", err, err)
			}
			if le.Status != wantStatus {
				t.Errorf("status = %d, want %d", le.Status, wantStatus)
			}
			wantRetryable := wantStatus == 408 || wantStatus == 429 ||
				(wantStatus >= 500 && wantStatus != 501)
			if got := le.Retryable(); got != wantRetryable {
				t.Errorf("Retryable() = %v for status %d, want %v", got, wantStatus, wantRetryable)
			}
			if llm.IsRetryable(err) != wantRetryable {
				t.Errorf("IsRetryable disagrees with Error.Retryable for status %d", wantStatus)
			}
		})
	}
}
