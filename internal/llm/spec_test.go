package llm

import (
	"context"
	"strings"
	"testing"
)

func TestParseSpecs(t *testing.T) {
	specs, err := ParseSpecs([]byte(`[
		{"name": "GPT4", "provider": "sim"},
		{"name": "live", "provider": "http", "base_url": "http://127.0.0.1:9/v1",
		 "model": "gpt-4o", "max_attempts": 3, "rps": 5, "burst": 2,
		 "max_in_flight": 4, "cache_size": 128}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Name != "GPT4" || specs[1].Model != "gpt-4o" {
		t.Fatalf("specs = %+v", specs)
	}
	if specs[1].MaxAttempts != 3 || specs[1].RPS != 5 || specs[1].CacheSize != 128 {
		t.Errorf("middleware fields = %+v", specs[1])
	}

	bad := []string{
		`[]`,                    // empty
		`[{"provider": "sim"}]`, // no name
		`[{"name": "a"}]`,       // no provider
		`[{"name":"a","provider":"sim"},{"name":"a","provider":"sim"}]`, // dup
		`{"name":"a"}`, // not an array
	}
	for _, in := range bad {
		if _, err := ParseSpecs([]byte(in)); err == nil {
			t.Errorf("ParseSpecs(%s) succeeded", in)
		}
	}
}

func TestBuildClient(t *testing.T) {
	providers := map[string]Factory{
		"fake": func(spec Spec) (Client, error) { return fakeClient{name: spec.Name}, nil },
	}
	stats := NewStats()
	c, err := BuildClient(Spec{Name: "m", Provider: "fake", MaxAttempts: 3, CacheSize: 4}, providers, stats)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "m" {
		t.Errorf("Name = %q", c.Name())
	}
	if _, err := c.Do(context.Background(), NewRequest("p")); err != nil {
		t.Fatal(err)
	}
	if got := stats.Model("m").Requests.Load(); got != 1 {
		t.Errorf("instrumented requests = %d", got)
	}
	// The cache sits above Instrument: a repeat request is served without a
	// second counted request.
	if _, err := c.Do(context.Background(), NewRequest("p")); err != nil {
		t.Fatal(err)
	}
	if got := stats.Model("m").Requests.Load(); got != 1 {
		t.Errorf("cached repeat counted as request (requests=%d)", got)
	}

	if _, err := BuildClient(Spec{Name: "m", Provider: "nosuch"}, providers, nil); err == nil {
		t.Error("unknown provider should fail")
	}
	// A factory returning a misnamed client is a config bug, not a silent
	// rename.
	providers["liar"] = func(spec Spec) (Client, error) { return fakeClient{name: "other"}, nil }
	if _, err := BuildClient(Spec{Name: "m", Provider: "liar"}, providers, nil); err == nil ||
		!strings.Contains(err.Error(), "named") {
		t.Errorf("misnamed client error = %v", err)
	}
}

func TestRegistryBuild(t *testing.T) {
	providers := map[string]Factory{
		"fake": func(spec Spec) (Client, error) { return fakeClient{name: spec.Name}, nil },
	}
	r := NewRegistry()
	names, err := r.Build([]Spec{
		{Name: "b", Provider: "fake"},
		{Name: "a", Provider: "fake"},
	}, providers, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Spec order is preserved (it drives table row order), unlike the sorted
	// Names().
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Errorf("names = %v", names)
	}
	if _, err := r.Get("a"); err != nil {
		t.Errorf("Get(a): %v", err)
	}
	if _, err := r.Build([]Spec{{Name: "x", Provider: "nosuch"}}, providers, nil); err == nil {
		t.Error("bad spec should fail Build")
	}
}

// A ClientCache hands every registry the same client instance per name, so
// middleware state (rate limits, caches, semaphores) is global rather than
// per environment.
func TestClientCacheSharesInstances(t *testing.T) {
	var built int
	providers := map[string]Factory{
		"fake": func(spec Spec) (Client, error) { built++; return fakeClient{name: spec.Name}, nil },
	}
	var cc ClientCache
	spec := Spec{Name: "m", Provider: "fake", CacheSize: 4}
	a, err := cc.Build(spec, providers, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cc.Build(spec, providers, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("ClientCache built distinct instances for one name")
	}
	if built != 1 {
		t.Errorf("factory ran %d times, want 1", built)
	}
	if _, err := cc.Build(Spec{Name: "other", Provider: "nosuch"}, providers, nil); err == nil {
		t.Error("bad spec should fail and not be cached")
	}
	if _, err := cc.Build(Spec{Name: "other", Provider: "fake"}, providers, nil); err != nil {
		t.Errorf("name should be buildable after a failed attempt: %v", err)
	}
}
