// Package faultllm is a deterministic fault-injection harness for llm
// clients. A Plan describes a fault mix — typed errors at a configured
// rate, added latency, mid-text truncation, hangs that last until the
// caller cancels — and every decision derives from a hash of (seed, model,
// request), so a plan names an exact, reproducible failure set rather than
// a random one: the same run fails the same requests every time, which is
// what makes chaos tests assertable.
//
// The wrapper sits below the middleware stack (WrapFactory wraps a provider
// factory, and spec-built clients stack Cache→…→Retry→… above the backend),
// so retries, breakers, and hedges all observe injected faults exactly as
// they would observe real provider failures. A deterministically failing
// request fails on every retry too — by design: the plan's failure set is
// the contract.
package faultllm

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"sync/atomic"
	"time"

	"repro/internal/llm"
)

// Plan is one deterministic fault mix. The zero value injects nothing.
type Plan struct {
	// Seed salts every decision hash; two seeds give independent failure
	// sets over the same requests.
	Seed int64
	// ErrorRate is the fraction of requests that fail with Status.
	ErrorRate float64
	// Status is the injected error's HTTP-style status (default 503, which
	// the Retry middleware classifies as retryable).
	Status int
	// Latency is added to every surviving completion (and reported in the
	// response's Latency, as a slow provider would).
	Latency time.Duration
	// TruncateRate is the fraction of surviving completions cut mid-text
	// with finish reason "length".
	TruncateRate float64
	// HangRate is the fraction of requests that block until the caller's
	// context is cancelled — the pathology breakers and hedges exist for.
	HangRate float64
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool {
	return p.ErrorRate > 0 || p.Latency > 0 || p.TruncateRate > 0 || p.HangRate > 0
}

// FromSpec extracts the fault plan from a model spec's fault_* fields.
func FromSpec(spec llm.Spec) Plan {
	return Plan{
		Seed:         spec.FaultSeed,
		ErrorRate:    spec.FaultRate,
		Status:       spec.FaultStatus,
		Latency:      time.Duration(spec.FaultLatencyMS) * time.Millisecond,
		TruncateRate: spec.FaultTruncateRate,
		HangRate:     spec.FaultHangRate,
	}
}

// Decision is the plan's verdict for one request. At most one of Fail and
// Hang is set (failing wins); Truncate applies only to surviving
// completions.
type Decision struct {
	Fail     bool
	Hang     bool
	Truncate bool
}

// roll maps (seed, salt, model, request hash) to a uniform float in [0, 1).
// fnv-1a over the tuple keeps decisions independent across salts and models
// while staying stable across runs and processes.
func (p Plan) roll(salt, model string, reqHash uint64) float64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(p.Seed))
	h.Write(buf[:])
	h.Write([]byte(salt))
	h.Write([]byte{0})
	h.Write([]byte(model))
	h.Write([]byte{0})
	binary.LittleEndian.PutUint64(buf[:], reqHash)
	h.Write(buf[:])
	// 53 mantissa bits of the digest → uniform in [0, 1).
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// Decide returns the plan's deterministic verdict for a request to the
// named model. Calling it is free of side effects, so a test (or a
// chaos-run assertion) can precompute the exact planned failure set.
func (p Plan) Decide(model string, req llm.Request) Decision {
	hash := req.Hash()
	var d Decision
	if p.ErrorRate > 0 && p.roll("fail", model, hash) < p.ErrorRate {
		d.Fail = true
		return d
	}
	if p.HangRate > 0 && p.roll("hang", model, hash) < p.HangRate {
		d.Hang = true
		return d
	}
	if p.TruncateRate > 0 && p.roll("trunc", model, hash) < p.TruncateRate {
		d.Truncate = true
	}
	return d
}

// Counters tallies the faults a wrapped client actually injected.
type Counters struct {
	Failed    atomic.Int64
	Hung      atomic.Int64
	Truncated atomic.Int64
}

// Client wraps an inner llm.Client with a fault plan. It preserves the
// inner client's name so registry lookup, stats, and artifacts are
// unchanged by the harness.
type Client struct {
	inner llm.Client
	plan  Plan
	// Injected tallies what the plan actually did to traffic.
	Injected Counters
}

// Wrap returns the inner client wrapped with the plan. A disabled plan
// still wraps (with zero overhead beyond one Decide per request) so call
// sites don't need to branch; use Plan.Enabled to skip wrapping entirely.
func Wrap(inner llm.Client, plan Plan) *Client {
	return &Client{inner: inner, plan: plan}
}

// Name returns the inner client's name.
func (c *Client) Name() string { return c.inner.Name() }

// Plan returns the client's fault plan.
func (c *Client) Plan() Plan { return c.plan }

// Do applies the plan's verdict: injected failures return a typed
// *llm.Error carrying the plan's status, hangs block until ctx is done,
// and surviving completions pick up added latency and truncation.
func (c *Client) Do(ctx context.Context, req llm.Request) (llm.Response, error) {
	d := c.plan.Decide(c.inner.Name(), req)
	if d.Fail {
		c.Injected.Failed.Add(1)
		status := c.plan.Status
		if status == 0 {
			status = 503
		}
		return llm.Response{}, &llm.Error{
			Status:  status,
			Code:    "injected_fault",
			Message: "faultllm: planned failure",
		}
	}
	if d.Hang {
		c.Injected.Hung.Add(1)
		<-ctx.Done()
		return llm.Response{}, ctx.Err()
	}
	resp, err := c.inner.Do(ctx, req)
	if err != nil {
		return llm.Response{}, err
	}
	if c.plan.Latency > 0 {
		t := time.NewTimer(c.plan.Latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return llm.Response{}, ctx.Err()
		}
		resp.Latency += c.plan.Latency
	}
	if d.Truncate {
		c.Injected.Truncated.Add(1)
		resp.Text = truncate(resp.Text)
		resp.FinishReason = llm.FinishLength
	}
	return resp, nil
}

// truncate cuts a completion roughly in half on a rune boundary — far
// enough in to look like a real length-capped answer, far enough short to
// break any grader expecting the full text.
func truncate(s string) string {
	runes := []rune(s)
	return string(runes[:len(runes)/2])
}

// WrapFactory returns a provider factory whose clients honor the spec's
// fault_* fields. Specs with no faults configured build the inner client
// untouched, so the wrapper is safe to install unconditionally (the
// experiments layer wraps every provider with it).
func WrapFactory(inner llm.Factory) llm.Factory {
	return func(spec llm.Spec) (llm.Client, error) {
		c, err := inner(spec)
		if err != nil {
			return nil, err
		}
		plan := FromSpec(spec)
		if !plan.Enabled() {
			return c, nil
		}
		return Wrap(c, plan), nil
	}
}
