package faultllm

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/llm"
)

// echo is a trivial backend returning its prompt.
type echo struct{ name string }

func (e echo) Name() string { return e.name }

func (e echo) Do(_ context.Context, req llm.Request) (llm.Response, error) {
	return llm.Response{
		Text:         req.UserPrompt(),
		Model:        e.name,
		Usage:        llm.Usage{PromptTokens: 3, CompletionTokens: 7},
		FinishReason: llm.FinishStop,
	}, nil
}

func reqN(i int) llm.Request { return llm.NewRequest(fmt.Sprintf("query %d: SELECT %d", i, i)) }

func TestDecideDeterministic(t *testing.T) {
	plan := Plan{Seed: 42, ErrorRate: 0.1, TruncateRate: 0.2, HangRate: 0.05}
	for i := 0; i < 200; i++ {
		req := reqN(i)
		a := plan.Decide("GPT4", req)
		b := plan.Decide("GPT4", req)
		if a != b {
			t.Fatalf("request %d: decisions differ: %+v vs %+v", i, a, b)
		}
	}
	// A different seed must give a different failure set (overwhelmingly).
	other := Plan{Seed: 43, ErrorRate: 0.1, TruncateRate: 0.2, HangRate: 0.05}
	same := 0
	for i := 0; i < 200; i++ {
		if plan.Decide("GPT4", reqN(i)) == other.Decide("GPT4", reqN(i)) {
			same++
		}
	}
	if same == 200 {
		t.Fatal("seed 42 and 43 produced identical decision sets")
	}
}

func TestDecideRates(t *testing.T) {
	const n = 4000
	plan := Plan{Seed: 7, ErrorRate: 0.10}
	failed := 0
	for i := 0; i < n; i++ {
		if plan.Decide("m", reqN(i)).Fail {
			failed++
		}
	}
	got := float64(failed) / n
	if math.Abs(got-0.10) > 0.03 {
		t.Errorf("fail rate %.3f, want ~0.10", got)
	}
}

func TestWrapInjectsTypedError(t *testing.T) {
	plan := Plan{Seed: 1, ErrorRate: 0.5}
	c := Wrap(echo{"m"}, plan)
	if c.Name() != "m" {
		t.Fatalf("Name() = %q, want inner name", c.Name())
	}
	sawFail, sawOK := false, false
	for i := 0; i < 50; i++ {
		resp, err := c.Do(context.Background(), reqN(i))
		if plan.Decide("m", reqN(i)).Fail {
			sawFail = true
			var le *llm.Error
			if !errors.As(err, &le) {
				t.Fatalf("request %d: injected fault is %T, want *llm.Error", i, err)
			}
			if le.Status != 503 || le.Code != "injected_fault" {
				t.Fatalf("request %d: injected %v, want 503 injected_fault", i, le)
			}
			if !le.Retryable() {
				t.Fatalf("request %d: injected 503 not retryable", i)
			}
		} else {
			sawOK = true
			if err != nil {
				t.Fatalf("request %d: unplanned error %v", i, err)
			}
			if resp.Text == "" {
				t.Fatalf("request %d: empty surviving completion", i)
			}
		}
	}
	if !sawFail || !sawOK {
		t.Fatalf("degenerate plan: sawFail=%v sawOK=%v", sawFail, sawOK)
	}
	if c.Injected.Failed.Load() == 0 {
		t.Error("Injected.Failed not counted")
	}
}

func TestWrapStatusOverride(t *testing.T) {
	c := Wrap(echo{"m"}, Plan{Seed: 1, ErrorRate: 1, Status: 429})
	_, err := c.Do(context.Background(), reqN(0))
	var le *llm.Error
	if !errors.As(err, &le) || le.Status != 429 {
		t.Fatalf("got %v, want typed 429", err)
	}
}

func TestWrapTruncates(t *testing.T) {
	plan := Plan{Seed: 3, TruncateRate: 0.5}
	c := Wrap(echo{"m"}, plan)
	sawTrunc := false
	for i := 0; i < 50; i++ {
		req := reqN(i)
		resp, err := c.Do(context.Background(), req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		full := req.UserPrompt()
		if plan.Decide("m", req).Truncate {
			sawTrunc = true
			if resp.FinishReason != llm.FinishLength {
				t.Fatalf("request %d: finish %q, want length", i, resp.FinishReason)
			}
			if len(resp.Text) >= len(full) || !strings.HasPrefix(full, resp.Text) {
				t.Fatalf("request %d: truncation %q not a proper prefix of %q", i, resp.Text, full)
			}
		} else if resp.Text != full {
			t.Fatalf("request %d: surviving completion mangled", i)
		}
	}
	if !sawTrunc {
		t.Fatal("plan never truncated in 50 requests")
	}
	if c.Injected.Truncated.Load() == 0 {
		t.Error("Injected.Truncated not counted")
	}
}

func TestWrapHangsUntilCancel(t *testing.T) {
	c := Wrap(echo{"m"}, Plan{Seed: 5, HangRate: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Do(ctx, reqN(0))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("hang returned before cancel: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("hang returned %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("hang did not return after cancel")
	}
	if c.Injected.Hung.Load() != 1 {
		t.Errorf("Injected.Hung = %d, want 1", c.Injected.Hung.Load())
	}
}

func TestWrapAddsLatency(t *testing.T) {
	c := Wrap(echo{"m"}, Plan{Latency: 15 * time.Millisecond})
	start := time.Now()
	resp, err := c.Do(context.Background(), reqN(0))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("completion returned in %v, want >= 15ms", elapsed)
	}
	if resp.Latency < 15*time.Millisecond {
		t.Errorf("reported latency %v does not include injected delay", resp.Latency)
	}
}

func TestFromSpecAndFactory(t *testing.T) {
	inner := func(spec llm.Spec) (llm.Client, error) { return echo{spec.Name}, nil }
	factory := WrapFactory(inner)

	// No fault fields: the inner client passes through untouched.
	plain, err := factory(llm.Spec{Name: "m", Provider: "sim"})
	if err != nil {
		t.Fatal(err)
	}
	if _, wrapped := plain.(*Client); wrapped {
		t.Error("fault-free spec produced a wrapped client")
	}

	faulty, err := factory(llm.Spec{
		Name: "m", Provider: "sim",
		FaultRate: 0.25, FaultStatus: 500, FaultSeed: 99,
		FaultLatencyMS: 5, FaultTruncateRate: 0.1, FaultHangRate: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	fc, ok := faulty.(*Client)
	if !ok {
		t.Fatalf("faulty spec built %T, want *faultllm.Client", faulty)
	}
	want := Plan{Seed: 99, ErrorRate: 0.25, Status: 500, Latency: 5 * time.Millisecond, TruncateRate: 0.1, HangRate: 0.05}
	if fc.Plan() != want {
		t.Errorf("FromSpec plan %+v, want %+v", fc.Plan(), want)
	}
}
