// Package llm defines the client abstraction the benchmark drives models
// through. It mirrors the shape of a real chat-completion API client so the
// simulated models in llm/sim are drop-in replaceable with HTTP-backed
// implementations.
package llm

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Client produces a completion for a prompt. Implementations must be safe
// for concurrent use.
type Client interface {
	// Name returns the model's display name (e.g. "GPT4").
	Name() string
	// Complete returns the model's response to the prompt.
	Complete(ctx context.Context, prompt string) (string, error)
}

// The model names evaluated in the paper.
const (
	GPT4    = "GPT4"
	GPT35   = "GPT3.5"
	Llama3  = "Llama3"
	Mistral = "MistralAI"
	Gemini  = "Gemini"
)

// ModelNames lists the evaluated models in the paper's table order.
var ModelNames = []string{GPT4, GPT35, Llama3, Mistral, Gemini}

// ErrUnknownModel is returned by Registry.Get for unregistered names.
var ErrUnknownModel = errors.New("unknown model")

// Registry holds named clients.
type Registry struct {
	mu      sync.RWMutex
	clients map[string]Client
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{clients: make(map[string]Client)}
}

// Register adds or replaces a client under its name.
func (r *Registry) Register(c Client) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clients[c.Name()] = c
}

// Get returns the client with the given name.
func (r *Registry) Get(name string) (Client, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.clients[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return c, nil
}

// Names returns the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.clients))
	for n := range r.clients {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
