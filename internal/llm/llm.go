// Package llm defines the structured provider API the benchmark drives
// models through. A Client accepts an llm.Request (system/user messages plus
// sampling parameters) and returns an llm.Response (text, token usage, wall
// latency, finish reason); failures surface as *llm.Error values carrying an
// HTTP-style status and a retryability classification. The package also
// provides a composable middleware chain (Retry, RateLimit, MaxInFlight,
// CacheWith, Instrument — see middleware.go) and a Registry that can be
// populated programmatically or built from a JSON model spec (spec.go), so
// the simulated models in llm/sim and the HTTP-backed client in llm/httpllm
// are interchangeable behind one contract.
package llm

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Role labels one chat message's author.
type Role string

// Roles.
const (
	RoleSystem    Role = "system"
	RoleUser      Role = "user"
	RoleAssistant Role = "assistant"
)

// Message is one chat-transcript entry.
type Message struct {
	Role    Role
	Content string
}

// Request is one completion request: an ordered chat transcript plus
// sampling parameters. The zero value of every parameter means "provider
// default"; pointers distinguish an explicit 0 (greedy temperature, say)
// from unset.
type Request struct {
	Messages []Message
	// Temperature is the sampling temperature; nil means provider default.
	Temperature *float64
	// MaxTokens caps the completion length; 0 means no explicit cap.
	MaxTokens int
	// Seed requests provider-side deterministic sampling; nil means unset.
	Seed *int64
}

// NewRequest wraps a single user prompt — the shape every benchmark task
// uses — into a Request.
func NewRequest(prompt string) Request {
	return Request{Messages: []Message{{Role: RoleUser, Content: prompt}}}
}

// WithSystem returns a copy of the request with a system message prepended.
func (r Request) WithSystem(system string) Request {
	msgs := make([]Message, 0, len(r.Messages)+1)
	msgs = append(msgs, Message{Role: RoleSystem, Content: system})
	msgs = append(msgs, r.Messages...)
	r.Messages = msgs
	return r
}

// UserPrompt concatenates the user-message contents — the string-in view of
// the request that prompt-driven backends (the simulators) consume.
func (r Request) UserPrompt() string {
	var single string
	var n int
	for _, m := range r.Messages {
		if m.Role == RoleUser {
			single = m.Content
			n++
		}
	}
	if n <= 1 {
		return single
	}
	out := ""
	for _, m := range r.Messages {
		if m.Role != RoleUser {
			continue
		}
		if out != "" {
			out += "\n"
		}
		out += m.Content
	}
	return out
}

// Hash returns a stable 64-bit digest of the request — messages and
// parameters — suitable as a memoization key.
func (r Request) Hash() uint64 {
	h := fnv.New64a()
	for _, m := range r.Messages {
		h.Write([]byte(m.Role))
		h.Write([]byte{0})
		h.Write([]byte(m.Content))
		h.Write([]byte{0})
	}
	if r.Temperature != nil {
		h.Write([]byte("t" + strconv.FormatFloat(*r.Temperature, 'g', -1, 64)))
	}
	if r.MaxTokens != 0 {
		h.Write([]byte("m" + strconv.Itoa(r.MaxTokens)))
	}
	if r.Seed != nil {
		h.Write([]byte("s" + strconv.FormatInt(*r.Seed, 10)))
	}
	return h.Sum64()
}

// Usage is the token accounting of one completion.
type Usage struct {
	PromptTokens     int
	CompletionTokens int
}

// Total returns prompt plus completion tokens.
func (u Usage) Total() int { return u.PromptTokens + u.CompletionTokens }

// Add accumulates another usage record.
func (u *Usage) Add(o Usage) {
	u.PromptTokens += o.PromptTokens
	u.CompletionTokens += o.CompletionTokens
}

// Finish reasons. Providers may report others; these are the ones the
// built-in backends produce.
const (
	FinishStop   = "stop"   // natural end of completion
	FinishLength = "length" // truncated at MaxTokens
)

// Response is one completed request.
type Response struct {
	// Text is the completion text.
	Text string
	// Model is the provider-reported model identifier (may differ from the
	// registry name, e.g. a dated snapshot id).
	Model string
	// Usage is the token accounting (simulated deterministically by llm/sim).
	Usage Usage
	// Latency is the wall time of the completion as observed by the client
	// (simulated deterministically by llm/sim).
	Latency time.Duration
	// FinishReason reports why generation stopped (FinishStop, FinishLength,
	// or a provider-specific value).
	FinishReason string
}

// Error is a typed provider failure carrying an HTTP-style status. Backends
// return *Error for anything that is a request failure rather than a caller
// bug, so middleware can classify retryability uniformly.
type Error struct {
	// Status is the HTTP-style status code (429, 503, ...). 0 means the
	// request never got an HTTP response (transport failure).
	Status int
	// Code is a short machine-readable class, e.g. "rate_limited".
	Code string
	// Message is the human-readable provider message.
	Message string
	// RetryAfter is the provider-suggested backoff (from a Retry-After
	// header); 0 when absent.
	RetryAfter time.Duration
	// Err is the underlying error, if any.
	Err error
}

// Error implements error.
func (e *Error) Error() string {
	s := "llm: "
	switch {
	case e.Status != 0 && e.Code != "":
		s += fmt.Sprintf("%d %s", e.Status, e.Code)
	case e.Status != 0:
		s += strconv.Itoa(e.Status)
	case e.Code != "":
		s += e.Code
	default:
		s += "request failed"
	}
	if e.Message != "" {
		s += ": " + e.Message
	}
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Retryable classifies whether a retry can plausibly succeed: transport
// failures, timeouts, rate limits, and server-side errors are retryable;
// caller bugs (4xx other than 408/429) are not.
func (e *Error) Retryable() bool {
	switch e.Status {
	case 0:
		// Transport failure — but never retry on behalf of a cancelled
		// caller.
		return !errors.Is(e.Err, context.Canceled)
	case 408, 429:
		return true
	case 501:
		return false
	default:
		return e.Status >= 500
	}
}

// IsRetryable reports whether err is a retryable *Error. Non-Error values
// (context cancellation, caller bugs) are never retryable.
func IsRetryable(err error) bool {
	var le *Error
	return errors.As(err, &le) && le.Retryable()
}

// Client produces completions. Implementations must be safe for concurrent
// use and should return promptly with ctx.Err() once the context is
// cancelled.
type Client interface {
	// Name returns the model's registry/display name (e.g. "GPT4").
	Name() string
	// Do executes one completion request.
	Do(ctx context.Context, req Request) (Response, error)
}

// Complete is the thin string-in/string-out helper over Client.Do — the
// ergonomic form for call sites that don't need usage or parameters.
func Complete(ctx context.Context, c Client, prompt string) (string, error) {
	resp, err := c.Do(ctx, NewRequest(prompt))
	if err != nil {
		return "", err
	}
	return resp.Text, nil
}

// The model names evaluated in the paper.
const (
	GPT4    = "GPT4"
	GPT35   = "GPT3.5"
	Llama3  = "Llama3"
	Mistral = "MistralAI"
	Gemini  = "Gemini"
)

// ModelNames lists the evaluated models in the paper's table order.
var ModelNames = []string{GPT4, GPT35, Llama3, Mistral, Gemini}

// ErrUnknownModel is returned by Registry.Get for unregistered names.
var ErrUnknownModel = errors.New("unknown model")

// Registry holds named clients.
type Registry struct {
	mu      sync.RWMutex
	clients map[string]Client
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{clients: make(map[string]Client)}
}

// Register adds or replaces a client under its name.
func (r *Registry) Register(c Client) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clients[c.Name()] = c
}

// Get returns the client with the given name.
func (r *Registry) Get(name string) (Client, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.clients[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return c, nil
}

// Names returns the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.clients))
	for n := range r.clients {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
