package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyHistogramBasics(t *testing.T) {
	var h LatencyHistogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("zero histogram not empty")
	}
	samples := []time.Duration{
		500 * time.Microsecond,
		3 * time.Millisecond,
		40 * time.Millisecond,
		40 * time.Millisecond,
		900 * time.Millisecond,
	}
	for _, d := range samples {
		h.Observe(d)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	if h.Mean() != sum/5 {
		t.Errorf("mean = %v, want %v", h.Mean(), sum/5)
	}
	if h.Max() != 900*time.Millisecond {
		t.Errorf("max = %v", h.Max())
	}
	// The median sample (40ms) lands in the (25ms, 50ms] bucket, whose upper
	// bound is the quantile estimate.
	if got := h.Quantile(0.5); got != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", got)
	}
	// The top sample defines p100 via its bucket bound.
	if got := h.Quantile(1); got != time.Second {
		t.Errorf("p100 = %v, want 1s (bucket bound of 900ms)", got)
	}
	var total int64
	for _, b := range h.Buckets() {
		total += b.Count
	}
	if total != 5 {
		t.Errorf("bucket counts sum to %d", total)
	}
}

func TestLatencyHistogramOverflowBucket(t *testing.T) {
	var h LatencyHistogram
	h.Observe(5 * time.Minute)
	if got := h.Quantile(0.99); got != 5*time.Minute {
		t.Errorf("overflow quantile = %v, want the recorded max", got)
	}
	bs := h.Buckets()
	if len(bs) != 1 || bs[0].UpperBound != 0 {
		t.Errorf("buckets = %+v, want one unbounded bucket", bs)
	}
	// Negative observations clamp instead of corrupting the sum.
	h.Observe(-time.Second)
	if h.Count() != 2 || h.Mean() != 150*time.Second {
		t.Errorf("after negative observe: count=%d mean=%v", h.Count(), h.Mean())
	}
}

func TestLatencyHistogramConcurrent(t *testing.T) {
	var h LatencyHistogram
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Errorf("count = %d, want %d", h.Count(), goroutines*per)
	}
}
