package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		truth, pred bool
		want        Outcome
	}{
		{true, true, TP}, {false, false, TN}, {false, true, FP}, {true, false, FN},
	}
	for _, c := range cases {
		if got := Classify(c.truth, c.pred); got != c.want {
			t.Errorf("Classify(%v,%v) = %v, want %v", c.truth, c.pred, got, c.want)
		}
	}
}

func TestBinaryMetrics(t *testing.T) {
	var b Binary
	// 8 TP, 2 FN, 1 FP, 9 TN.
	for i := 0; i < 8; i++ {
		b.Add(true, true)
	}
	for i := 0; i < 2; i++ {
		b.Add(true, false)
	}
	b.Add(false, true)
	for i := 0; i < 9; i++ {
		b.Add(false, false)
	}
	if got := b.Precision(); got < 0.888 || got > 0.889 {
		t.Errorf("precision = %v", got)
	}
	if got := b.Recall(); got != 0.8 {
		t.Errorf("recall = %v", got)
	}
	if got := b.Accuracy(); got != 0.85 {
		t.Errorf("accuracy = %v", got)
	}
	if b.Total() != 20 {
		t.Errorf("total = %d", b.Total())
	}
	if b.Count(TP) != 8 || b.Count(FN) != 2 || b.Count(FP) != 1 || b.Count(TN) != 9 {
		t.Error("counts wrong")
	}
}

func TestBinaryZeroSafe(t *testing.T) {
	var b Binary
	if b.Precision() != 0 || b.Recall() != 0 || b.F1() != 0 || b.Accuracy() != 0 {
		t.Error("empty matrix should yield zeros, not NaN")
	}
}

// Property (testing/quick): F1 is always within [0,1] and never exceeds
// max(precision, recall); precision/recall/accuracy stay within [0,1].
func TestBinaryInvariantsQuick(t *testing.T) {
	f := func(tp, tn, fp, fn uint8) bool {
		b := Binary{TPs: int(tp), TNs: int(tn), FPs: int(fp), FNs: int(fn)}
		p, r, f1, acc := b.Precision(), b.Recall(), b.F1(), b.Accuracy()
		for _, v := range []float64{p, r, f1, acc} {
			if v < 0 || v > 1 {
				return false
			}
		}
		hi := p
		if r > hi {
			hi = r
		}
		return f1 <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): F1 equals the harmonic mean identity whenever
// p+r > 0.
func TestF1HarmonicQuick(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		b := Binary{TPs: int(tp), FPs: int(fp), FNs: int(fn)}
		p, r := b.Precision(), b.Recall()
		if p+r == 0 {
			return b.F1() == 0
		}
		want := 2 * p * r / (p + r)
		diff := b.F1() - want
		return diff < 1e-12 && diff > -1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMultiClassWeighted(t *testing.T) {
	mc := NewMultiClass()
	// Class a: 3 right of 4; class b: 1 right of 2.
	mc.Add("a", "a")
	mc.Add("a", "a")
	mc.Add("a", "a")
	mc.Add("a", "b")
	mc.Add("b", "b")
	mc.Add("b", "a")
	if got := mc.Accuracy(); got < 0.66 || got > 0.67 {
		t.Errorf("accuracy = %v", got)
	}
	// Weighted recall = (0.75*4 + 0.5*2)/6 = 4/6.
	if got := mc.WeightedRecall(); got < 0.66 || got > 0.67 {
		t.Errorf("weighted recall = %v", got)
	}
	if got := mc.WeightedF1(); got <= 0 || got > 1 {
		t.Errorf("weighted f1 = %v", got)
	}
	classes := mc.Classes()
	if len(classes) != 2 || classes[0] != "a" {
		t.Errorf("classes = %v", classes)
	}
}

func TestMultiClassEmpty(t *testing.T) {
	mc := NewMultiClass()
	if mc.WeightedF1() != 0 || mc.Accuracy() != 0 {
		t.Error("empty multiclass should yield zeros")
	}
}

// Property (testing/quick): perfect predictions give accuracy and weighted
// scores of exactly 1.
func TestMultiClassPerfectQuick(t *testing.T) {
	f := func(labels []uint8) bool {
		if len(labels) == 0 {
			return true
		}
		mc := NewMultiClass()
		names := []string{"x", "y", "z"}
		for _, l := range labels {
			c := names[int(l)%len(names)]
			mc.Add(c, c)
		}
		return mc.Accuracy() == 1 && mc.WeightedF1() > 0.999
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLocation(t *testing.T) {
	var l Location
	l.Add(5, 5)
	l.Add(5, 8)
	l.Add(5, 1)
	if got := l.MAE(); got < 2.33 || got > 2.34 {
		t.Errorf("MAE = %v", got)
	}
	if got := l.HitRate(); got < 0.33 || got > 0.34 {
		t.Errorf("HR = %v", got)
	}
	if l.N() != 3 {
		t.Errorf("N = %d", l.N())
	}
	var empty Location
	if empty.MAE() != 0 || empty.HitRate() != 0 {
		t.Error("empty location metrics should be zero")
	}
}

// Property (testing/quick): MAE is symmetric in prediction error sign, and
// HitRate is 1 exactly when all predictions match.
func TestLocationQuick(t *testing.T) {
	f := func(errs []int8) bool {
		var l Location
		allZero := true
		for i, e := range errs {
			l.Add(i, i+int(e))
			if e != 0 {
				allZero = false
			}
		}
		if len(errs) == 0 {
			return true
		}
		if allZero {
			return l.HitRate() == 1 && l.MAE() == 0
		}
		return l.HitRate() < 1 && l.MAE() > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBreakdown(t *testing.T) {
	bd := NewBreakdown()
	bd.Add(true, true, 10)  // TP
	bd.Add(true, true, 20)  // TP
	bd.Add(true, false, 50) // FN
	bd.Add(false, true, 40) // FP
	bd.Add(false, false, 5) // TN
	if bd.Avg(TP) != 15 {
		t.Errorf("avg TP = %v", bd.Avg(TP))
	}
	if bd.Median(TP) != 15 {
		t.Errorf("median TP = %v", bd.Median(TP))
	}
	if bd.Avg(FN) != 50 || bd.Count(FN) != 1 {
		t.Error("FN stats wrong")
	}
	if bd.Avg(FP) != 40 || bd.Avg(TN) != 5 {
		t.Error("FP/TN stats wrong")
	}
	if bd.Avg(Outcome(99)) != 0 {
		t.Error("unknown outcome should be zero")
	}
}

func TestBreakdownMedianOdd(t *testing.T) {
	bd := NewBreakdown()
	for _, v := range []float64{3, 1, 2} {
		bd.Add(true, true, v)
	}
	if bd.Median(TP) != 2 {
		t.Errorf("median = %v", bd.Median(TP))
	}
}

func TestOutcomeString(t *testing.T) {
	if TP.String() != "TP" || FN.String() != "FN" {
		t.Error("outcome names wrong")
	}
}

func BenchmarkBinaryAdd(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var bin Binary
	for i := 0; i < b.N; i++ {
		bin.Add(r.Intn(2) == 0, r.Intn(2) == 0)
	}
}
