package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

// latencyBounds are the upper bounds of the LatencyHistogram buckets; the
// final bucket is unbounded. Log-scaled to cover both simulated sub-second
// completions and slow real API calls.
var latencyBounds = []time.Duration{
	1 * time.Millisecond,
	2 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
	30 * time.Second,
}

// latencyBucketCount is len(latencyBounds)+1 (the final bucket is
// unbounded); a compile-unreachable init check keeps them in sync.
const latencyBucketCount = 15

func init() {
	if len(latencyBounds)+1 != latencyBucketCount {
		panic("metrics: latencyBucketCount out of sync with latencyBounds")
	}
}

// LatencyHistogram is a fixed-bucket concurrency-safe latency accumulator:
// all fields are atomics, so Observe can run from any number of request
// goroutines while snapshots read without locks. The zero value is ready to
// use.
type LatencyHistogram struct {
	counts [latencyBucketCount]atomic.Int64
	sumNS  atomic.Int64
	count  atomic.Int64
	maxNS  atomic.Int64
}

// Observe records one latency sample.
func (h *LatencyHistogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(latencyBounds) && d > latencyBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.count.Add(1)
	for {
		cur := h.maxNS.Load()
		if int64(d) <= cur || h.maxNS.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *LatencyHistogram) Count() int64 { return h.count.Load() }

// Mean returns the average latency (0 when empty).
func (h *LatencyHistogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNS.Load() / n)
}

// Max returns the largest recorded latency.
func (h *LatencyHistogram) Max() time.Duration { return time.Duration(h.maxNS.Load()) }

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1)
// from the bucket counts: the upper bound of the bucket containing the
// q-ranked sample (Max for the unbounded bucket). 0 when empty.
func (h *LatencyHistogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i < len(latencyBounds) {
				return latencyBounds[i]
			}
			return h.Max()
		}
	}
	return h.Max()
}

// HistogramBucket is one bucket of a latency snapshot.
type HistogramBucket struct {
	// UpperBound is the bucket's inclusive upper bound; 0 marks the final
	// unbounded bucket.
	UpperBound time.Duration
	Count      int64
}

// Buckets returns a point-in-time snapshot of the non-empty buckets.
func (h *LatencyHistogram) Buckets() []HistogramBucket {
	var out []HistogramBucket
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		b := HistogramBucket{Count: c}
		if i < len(latencyBounds) {
			b.UpperBound = latencyBounds[i]
		}
		out = append(out, b)
	}
	return out
}

// Sum returns the total of all recorded samples — with Count, the _sum and
// _count of a Prometheus histogram exposition.
func (h *LatencyHistogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// Cumulative returns every bucket (empty ones included) with cumulative
// counts, the Prometheus histogram form: each bucket counts all samples at
// or below its upper bound, and the final bucket (UpperBound 0, i.e. +Inf)
// equals Count.
func (h *LatencyHistogram) Cumulative() []HistogramBucket {
	out := make([]HistogramBucket, latencyBucketCount)
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		out[i] = HistogramBucket{Count: running}
		if i < len(latencyBounds) {
			out[i].UpperBound = latencyBounds[i]
		}
	}
	return out
}
