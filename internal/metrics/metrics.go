// Package metrics implements the evaluation measures used by the paper:
// binary precision/recall/F1, support-weighted multi-class scores, MAE and
// hit rate for positions, and per-outcome (TP/TN/FP/FN) property summaries
// that back the failure-analysis figures.
package metrics

import "sort"

// Outcome classifies one binary prediction against its truth.
type Outcome int

// Outcomes.
const (
	TP Outcome = iota
	TN
	FP
	FN
)

var outcomeNames = [...]string{"TP", "TN", "FP", "FN"}

// String returns "TP", "TN", "FP", or "FN".
func (o Outcome) String() string { return outcomeNames[o] }

// Outcomes lists all four in display order.
var Outcomes = []Outcome{TP, TN, FP, FN}

// Classify maps a (truth, prediction) pair to its outcome.
func Classify(truth, pred bool) Outcome {
	switch {
	case truth && pred:
		return TP
	case !truth && !pred:
		return TN
	case !truth && pred:
		return FP
	default:
		return FN
	}
}

// Binary accumulates a binary confusion matrix.
type Binary struct {
	TPs, TNs, FPs, FNs int
}

// Add records one prediction.
func (b *Binary) Add(truth, pred bool) {
	switch Classify(truth, pred) {
	case TP:
		b.TPs++
	case TN:
		b.TNs++
	case FP:
		b.FPs++
	case FN:
		b.FNs++
	}
}

// Count returns the tally for an outcome.
func (b Binary) Count(o Outcome) int {
	switch o {
	case TP:
		return b.TPs
	case TN:
		return b.TNs
	case FP:
		return b.FPs
	default:
		return b.FNs
	}
}

// Total returns the number of recorded predictions.
func (b Binary) Total() int { return b.TPs + b.TNs + b.FPs + b.FNs }

// Precision returns TP/(TP+FP); 0 when undefined.
func (b Binary) Precision() float64 {
	if b.TPs+b.FPs == 0 {
		return 0
	}
	return float64(b.TPs) / float64(b.TPs+b.FPs)
}

// Recall returns TP/(TP+FN); 0 when undefined.
func (b Binary) Recall() float64 {
	if b.TPs+b.FNs == 0 {
		return 0
	}
	return float64(b.TPs) / float64(b.TPs+b.FNs)
}

// F1 returns the harmonic mean of precision and recall.
func (b Binary) F1() float64 {
	p, r := b.Precision(), b.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns (TP+TN)/total.
func (b Binary) Accuracy() float64 {
	if b.Total() == 0 {
		return 0
	}
	return float64(b.TPs+b.TNs) / float64(b.Total())
}

// MultiClass accumulates a multi-class confusion and reports
// support-weighted one-vs-rest precision/recall/F1, matching the paper's
// "weighted accuracy" tables.
type MultiClass struct {
	perClass map[string]*Binary
	support  map[string]int
	total    int
}

// NewMultiClass returns an empty accumulator.
func NewMultiClass() *MultiClass {
	return &MultiClass{perClass: map[string]*Binary{}, support: map[string]int{}}
}

// Add records one classification.
func (m *MultiClass) Add(truth, pred string) {
	m.total++
	m.support[truth]++
	classes := map[string]bool{truth: true, pred: true}
	for c := range classes {
		if _, ok := m.perClass[c]; !ok {
			m.perClass[c] = &Binary{}
		}
	}
	for c, b := range m.perClass {
		b.Add(truth == c, pred == c)
	}
	// Classes seen for the first time mid-stream lack earlier negatives;
	// that slightly inflates their TN count, which weighted P/R/F1 ignore.
}

// Classes returns the observed truth classes, sorted.
func (m *MultiClass) Classes() []string {
	out := make([]string, 0, len(m.support))
	for c := range m.support {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// weighted folds a per-class measure by class support.
func (m *MultiClass) weighted(f func(Binary) float64) float64 {
	if m.total == 0 {
		return 0
	}
	var sum float64
	for c, n := range m.support {
		b := m.perClass[c]
		if b == nil {
			continue
		}
		sum += f(*b) * float64(n)
	}
	return sum / float64(m.total)
}

// WeightedPrecision returns support-weighted one-vs-rest precision.
func (m *MultiClass) WeightedPrecision() float64 { return m.weighted(Binary.Precision) }

// WeightedRecall returns support-weighted one-vs-rest recall.
func (m *MultiClass) WeightedRecall() float64 { return m.weighted(Binary.Recall) }

// WeightedF1 returns support-weighted one-vs-rest F1.
func (m *MultiClass) WeightedF1() float64 { return m.weighted(Binary.F1) }

// Accuracy returns exact-match accuracy.
func (m *MultiClass) Accuracy() float64 {
	if m.total == 0 {
		return 0
	}
	correct := 0
	for c, b := range m.perClass {
		if m.support[c] > 0 {
			correct += b.TPs
		}
	}
	return float64(correct) / float64(m.total)
}

// Location accumulates position predictions for miss_token_loc.
type Location struct {
	absSum float64
	hits   int
	n      int
}

// Add records one position prediction.
func (l *Location) Add(truth, pred int) {
	l.n++
	d := truth - pred
	if d < 0 {
		d = -d
	}
	l.absSum += float64(d)
	if d == 0 {
		l.hits++
	}
}

// MAE returns the mean absolute error.
func (l Location) MAE() float64 {
	if l.n == 0 {
		return 0
	}
	return l.absSum / float64(l.n)
}

// HitRate returns the fraction of exact hits.
func (l Location) HitRate() float64 {
	if l.n == 0 {
		return 0
	}
	return float64(l.hits) / float64(l.n)
}

// N returns the number of recorded predictions.
func (l Location) N() int { return l.n }

// Breakdown collects a numeric property per outcome, powering the
// word_count/predicate_count failure panels (Figures 6, 8, 10-12).
type Breakdown struct {
	values map[Outcome][]float64
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{values: map[Outcome][]float64{}}
}

// Add records the property value of one prediction.
func (bd *Breakdown) Add(truth, pred bool, value float64) {
	o := Classify(truth, pred)
	bd.values[o] = append(bd.values[o], value)
}

// Count returns the number of observations in an outcome.
func (bd *Breakdown) Count(o Outcome) int { return len(bd.values[o]) }

// Avg returns the mean property value of an outcome (0 when empty).
func (bd *Breakdown) Avg(o Outcome) float64 {
	vs := bd.values[o]
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Median returns the median property value of an outcome (0 when empty).
func (bd *Breakdown) Median(o Outcome) float64 {
	vs := append([]float64{}, bd.values[o]...)
	if len(vs) == 0 {
		return 0
	}
	sort.Float64s(vs)
	mid := len(vs) / 2
	if len(vs)%2 == 1 {
		return vs[mid]
	}
	return (vs[mid-1] + vs[mid]) / 2
}
