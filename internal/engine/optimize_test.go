package engine

// Tests for the plan optimizer (optimize.go): golden plan shapes for each
// rewrite, exact-output parity between optimized and unoptimized execution
// (the byte-identity contract), a randomized differential check over joins
// and predicates including error cases, and a memory benchmark for the
// streaming hash join.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/sqlparse"
)

// explain parses sql and returns the before/after plan strings over testDB.
func explain(t *testing.T, sql string) (string, string) {
	t.Helper()
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return New(testDB()).Explain(sel)
}

func TestExplainPushdownGolden(t *testing.T) {
	before, after := explain(t,
		"SELECT e.name FROM emp e JOIN dept d ON e.dept = d.name WHERE e.salary > 75 AND d.budget >= 500")
	wantBefore := strings.Join([]string{
		"Project (1 items, 0 order keys)",
		"  Filter e.salary > 75 AND d.budget >= 500",
		"    INNER Join ON e.dept = d.name",
		"      Scan emp AS e",
		"      Scan dept AS d",
		"",
	}, "\n")
	wantAfter := strings.Join([]string{
		"Project (1 items, 0 order keys)",
		"  INNER Join ON e.dept = d.name [stream hash, build right]",
		"    Filter e.salary > 75",
		"      Scan emp AS e",
		"    Filter d.budget >= 500",
		"      Scan dept AS d",
		"",
	}, "\n")
	if before != wantBefore {
		t.Errorf("before plan:\n%s\nwant:\n%s", before, wantBefore)
	}
	if after != wantAfter {
		t.Errorf("after plan:\n%s\nwant:\n%s", after, wantAfter)
	}
}

func TestExplainCostOrderGolden(t *testing.T) {
	before, after := explain(t,
		"SELECT e.name FROM emp e, dept d WHERE e.dept = d.name AND e.salary > 75")
	wantBefore := strings.Join([]string{
		"Project (1 items, 0 order keys)",
		"  ImplicitJoin (2 inputs) WHERE e.dept = d.name AND e.salary > 75",
		"    Scan emp AS e",
		"    Scan dept AS d",
		"",
	}, "\n")
	wantAfter := strings.Join([]string{
		"Project (1 items, 0 order keys)",
		"  ImplicitJoin (2 inputs) WHERE e.dept = d.name [cost-ordered]",
		"    Filter e.salary > 75",
		"      Scan emp AS e",
		"    Scan dept AS d",
		"",
	}, "\n")
	if before != wantBefore {
		t.Errorf("before plan:\n%s\nwant:\n%s", before, wantBefore)
	}
	if after != wantAfter {
		t.Errorf("after plan:\n%s\nwant:\n%s", after, wantAfter)
	}
}

func TestExplainBuildLeftHint(t *testing.T) {
	// dept (3 rows) is smaller than emp (5 rows), so an INNER join with dept
	// on the left builds left; an outer join must not flip the build side.
	_, after := explain(t, "SELECT d.budget FROM dept d JOIN emp e ON d.name = e.dept")
	if !strings.Contains(after, "[stream hash, build left]") {
		t.Errorf("INNER plan lacks build-left hint:\n%s", after)
	}
	_, after = explain(t, "SELECT d.budget FROM dept d LEFT JOIN emp e ON d.name = e.dept")
	if !strings.Contains(after, "[stream hash, build right]") {
		t.Errorf("LEFT join plan should keep build right:\n%s", after)
	}
}

func TestOptimizerSkipsUnresolvableRefs(t *testing.T) {
	// "e.nosuch" matches emp's qualifier but no emp column: pushing it below
	// the join could raise "unknown column" on a query whose unoptimized
	// residual never evaluates it, so the optimizer must leave it in place.
	// A pushable conjunct BEFORE it still moves; one AFTER it must stay too
	// (pushing past a fallible conjunct could drop the rows that would have
	// triggered its error).
	_, after := explain(t,
		"SELECT e.name FROM emp e JOIN dept d ON e.dept = d.name WHERE d.budget > 100 AND e.nosuch = 1 AND e.salary > 75")
	if !strings.Contains(after, "Filter e.nosuch = 1 AND e.salary > 75") {
		t.Errorf("conjuncts at or after the fallible one were not kept above the join:\n%s", after)
	}
	if !strings.Contains(after, "Filter d.budget > 100") {
		t.Errorf("resolvable conjunct before the fallible one was not pushed:\n%s", after)
	}
}

// queryBoth runs sql on two engines over the same DB — optimizer on and off —
// and returns both results.
func queryBoth(sql string) (on, off *Relation, onErr, offErr error) {
	db := testDB()
	eOn := New(db)
	eOff := New(db)
	eOff.Optimize = false
	on, onErr = eOn.QuerySQL(sql)
	off, offErr = eOff.QuerySQL(sql)
	return
}

// assertSame fails unless the optimized and unoptimized runs agreed exactly:
// same error presence and message, same columns, same rows in the same order.
func assertSame(t *testing.T, sql string, on, off *Relation, onErr, offErr error) {
	t.Helper()
	if (onErr == nil) != (offErr == nil) {
		t.Fatalf("%q: error divergence: optimized=%v unoptimized=%v", sql, onErr, offErr)
	}
	if onErr != nil {
		if onErr.Error() != offErr.Error() {
			t.Fatalf("%q: error message divergence:\n  optimized:   %v\n  unoptimized: %v", sql, onErr, offErr)
		}
		return
	}
	if len(on.Cols) != len(off.Cols) {
		t.Fatalf("%q: column count %d != %d", sql, len(on.Cols), len(off.Cols))
	}
	for i := range on.Cols {
		if !strings.EqualFold(on.Cols[i].Name, off.Cols[i].Name) {
			t.Fatalf("%q: column %d name %q != %q", sql, i, on.Cols[i].Name, off.Cols[i].Name)
		}
	}
	gotOn, gotOff := rowStrings(on), rowStrings(off)
	if len(gotOn) != len(gotOff) {
		t.Fatalf("%q: row count %d != %d", sql, len(gotOn), len(gotOff))
	}
	for i := range gotOn {
		if gotOn[i] != gotOff[i] {
			t.Fatalf("%q: row %d: %q != %q", sql, i, gotOn[i], gotOff[i])
		}
	}
}

func TestStreamJoinParity(t *testing.T) {
	queries := []string{
		// All four outer-join flavors through the streaming path, with and
		// without pushable predicates; dept-first INNER exercises BuildLeft.
		"SELECT e.name, d.budget FROM emp e JOIN dept d ON e.dept = d.name",
		"SELECT e.name, d.budget FROM emp e JOIN dept d ON e.dept = d.name WHERE e.salary > 75",
		"SELECT e.name, d.budget FROM emp e LEFT JOIN dept d ON e.dept = d.name",
		"SELECT e.name, d.budget FROM emp e LEFT JOIN dept d ON e.dept = d.name WHERE e.salary > 75",
		"SELECT e.name, d.budget FROM emp e RIGHT JOIN dept d ON e.dept = d.name",
		"SELECT e.name, d.budget FROM emp e RIGHT JOIN dept d ON e.dept = d.name WHERE d.budget >= 500",
		"SELECT e.name, d.budget FROM emp e FULL JOIN dept d ON e.dept = d.name",
		"SELECT d.budget, e.name FROM dept d JOIN emp e ON d.name = e.dept",
		"SELECT d.budget, e.name FROM dept d JOIN emp e ON d.name = e.dept WHERE e.salary > 75 AND d.budget > 100",
		"SELECT e.name FROM emp e CROSS JOIN dept d WHERE e.salary > 90",
		// Non-equality ON falls back to the materializing join inside
		// streamJoinOp.
		"SELECT e.name, d.budget FROM emp e JOIN dept d ON e.salary > d.budget",
		// Chained joins: the upper join streams over a streamed lower join.
		"SELECT e.name, d.budget, f.id FROM emp e JOIN dept d ON e.dept = d.name JOIN emp f ON d.name = f.dept",
		// Derived-table inputs, with pushdown through the projection.
		"SELECT x.n, d.budget FROM (SELECT name AS n, dept AS dp, salary AS s FROM emp) x JOIN dept d ON x.dp = d.name WHERE x.s > 75",
		"SELECT x.n FROM (SELECT name AS n, salary AS s FROM emp ORDER BY s DESC) x WHERE x.s > 75",
		// Implicit joins through the cost-order path guardrails.
		"SELECT e.name, d.budget FROM emp e, dept d WHERE e.dept = d.name AND e.salary > 75",
		"SELECT e.name, f.name FROM emp e, dept d, emp f WHERE e.dept = d.name AND f.id = e.id",
		// ORDER BY and aggregation above optimized joins.
		"SELECT e.name, d.budget FROM emp e JOIN dept d ON e.dept = d.name ORDER BY d.budget DESC, e.name",
		"SELECT d.name, COUNT(*) AS c FROM dept d JOIN emp e ON d.name = e.dept GROUP BY d.name ORDER BY d.name",
	}
	for _, sql := range queries {
		on, off, onErr, offErr := queryBoth(sql)
		assertSame(t, sql, on, off, onErr, offErr)
	}
}

func TestStreamJoinErrorParity(t *testing.T) {
	queries := []string{
		// Unknown and ambiguous columns in every clause position; the
		// optimizer must not change which error (if any) surfaces.
		"SELECT e.name FROM emp e JOIN dept d ON e.dept = d.name WHERE e.nosuch = 1",
		"SELECT e.name FROM emp e JOIN dept d ON e.dept = d.name WHERE d.nosuch = 1 AND e.salary > 75",
		"SELECT e.name FROM emp e JOIN dept d ON e.dept = d.name WHERE name = 'eng'",
		"SELECT nosuch FROM emp e JOIN dept d ON e.dept = d.name",
		"SELECT e.name FROM emp e JOIN dept d ON e.nosuch = d.name",
		"SELECT e.name FROM emp e, dept d WHERE e.dept = d.name AND e.nosuch = 1",
		"SELECT e.name FROM emp e, dept d WHERE e.dept = d.name AND name = 'x'",
		// A filter that never matches leaves zero rows; a pushed unknown-ref
		// conjunct must not error where the baseline evaluates nothing.
		"SELECT x.n FROM (SELECT name AS n, nosuch AS m FROM emp) x WHERE x.n = 'zzz'",
		"SELECT e.name FROM emp e JOIN dept d ON e.dept = d.name WHERE e.salary > 1e999",
	}
	for _, sql := range queries {
		on, off, onErr, offErr := queryBoth(sql)
		assertSame(t, sql, on, off, onErr, offErr)
	}
}

func TestForceNestedLoopFallbackParity(t *testing.T) {
	db := testDB()
	eOn := New(db)
	eOn.ForceNestedLoop = true
	eOff := New(db)
	eOff.Optimize = false
	eOff.ForceNestedLoop = true
	for _, sql := range []string{
		"SELECT e.name, d.budget FROM emp e JOIN dept d ON e.dept = d.name WHERE e.salary > 75",
		"SELECT e.name, d.budget FROM emp e FULL JOIN dept d ON e.dept = d.name",
	} {
		on, onErr := eOn.QuerySQL(sql)
		off, offErr := eOff.QuerySQL(sql)
		assertSame(t, sql, on, off, onErr, offErr)
	}
}

func TestCostOrderRestoreParity(t *testing.T) {
	// Force the cost-ordered path onto testDB's tiny inputs so the restore
	// machinery (provenance columns, layout permutation) actually runs.
	saved := minCostOrderRows
	minCostOrderRows = 0
	defer func() { minCostOrderRows = saved }()
	for _, sql := range []string{
		"SELECT e.name, d.budget FROM emp e, dept d WHERE e.dept = d.name",
		"SELECT e.name, d.budget, f.id FROM emp e, dept d, emp f WHERE e.dept = d.name AND f.dept = d.name",
		"SELECT e.name FROM emp e, dept d, emp f WHERE e.dept = d.name AND f.id = e.id AND f.salary > 75",
	} {
		on, off, onErr, offErr := queryBoth(sql)
		assertSame(t, sql, on, off, onErr, offErr)
	}
}

func TestPlanCacheKeyIncludesOptimize(t *testing.T) {
	// One engine, one statement pointer, flag toggled between queries: the
	// cache must serve a plan compiled under the current flag, not the first.
	e := New(testDB())
	sel, err := sqlparse.ParseSelect(
		"SELECT e.name FROM emp e JOIN dept d ON e.dept = d.name")
	if err != nil {
		t.Fatal(err)
	}
	optimized := e.PlanOf(sel).String()
	if !strings.Contains(optimized, "[stream hash") {
		t.Fatalf("optimized plan lacks stream hint:\n%s", optimized)
	}
	e.Optimize = false
	raw := e.PlanOf(sel).String()
	if strings.Contains(raw, "[stream hash") {
		t.Fatalf("unoptimized plan served from optimized cache entry:\n%s", raw)
	}
	rel1, err1 := e.Query(sel)
	e.Optimize = true
	rel2, err2 := e.Query(sel)
	assertSame(t, "cache toggle", rel2, rel1, err2, err1)
}

// TestOptimizerDifferentialQuick fuzzes SELECTs over emp/dept — every join
// flavor, predicates drawn from a pool that includes non-total expressions,
// unknown and ambiguous columns — and requires the optimized and unoptimized
// runs to agree exactly on errors, columns, rows, and row order.
func TestOptimizerDifferentialQuick(t *testing.T) {
	froms := []string{
		"emp e, dept d",
		"emp e JOIN dept d ON e.dept = d.name",
		"emp e LEFT JOIN dept d ON e.dept = d.name",
		"emp e RIGHT JOIN dept d ON e.dept = d.name",
		"emp e FULL JOIN dept d ON e.dept = d.name",
		"dept d JOIN emp e ON d.name = e.dept",
		"emp e CROSS JOIN dept d",
		"emp e, dept d, emp f",
		"(SELECT id AS i, name AS n, dept AS dp, salary AS s FROM emp) e, dept d",
	}
	preds := []string{
		"e.salary > 75",
		"d.budget >= 500",
		"e.dept = d.name",
		"e.name LIKE 'a%'",
		"e.salary IS NULL",
		"e.id IN (1, 3, 5)",
		"d.budget BETWEEN 100 AND 600",
		"NOT (e.salary < 80)",
		"e.salary + d.budget > 500", // non-total: never pushed
		"e.nosuch = 1",              // unknown column
		"name = 'eng'",              // ambiguous across emp and dept
		"e.salary > 1e999",          // bad numeric literal
		"f.id = e.id",               // resolves only in the three-input FROM
		"e.s > 75",                  // resolves only under the derived table
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		var b strings.Builder
		b.WriteString("SELECT * FROM ")
		b.WriteString(froms[r.Intn(len(froms))])
		if n := r.Intn(4); n > 0 {
			b.WriteString(" WHERE ")
			for j := 0; j < n; j++ {
				if j > 0 {
					if r.Intn(4) == 0 {
						b.WriteString(" OR ")
					} else {
						b.WriteString(" AND ")
					}
				}
				b.WriteString(preds[r.Intn(len(preds))])
			}
		}
		sql := b.String()
		on, off, onErr, offErr := queryBoth(sql)
		assertSame(t, sql, on, off, onErr, offErr)
	}
}

// benchJoinDB builds a two-table instance sized so the join intermediates
// dominate allocation: a 20k-row probe table and a 64-row build table.
func benchJoinDB() *DB {
	schema := catalog.NewSchema("bench")
	schema.Add(catalog.T("big", "id", catalog.TypeInt, "v", catalog.TypeInt))
	schema.Add(catalog.T("small", "id", catalog.TypeInt, "w", catalog.TypeInt))
	db := NewDB(schema)
	big := &Relation{Cols: []Col{{Name: "id", Type: catalog.TypeInt}, {Name: "v", Type: catalog.TypeInt}}}
	for i := 0; i < 20_000; i++ {
		big.Rows = append(big.Rows, []Value{IntVal(int64(i % 64)), IntVal(int64(i % 100))})
	}
	small := &Relation{Cols: []Col{{Name: "id", Type: catalog.TypeInt}, {Name: "w", Type: catalog.TypeInt}}}
	for i := 0; i < 64; i++ {
		small.Rows = append(small.Rows, []Value{IntVal(int64(i)), IntVal(int64(i * 10))})
	}
	db.Put("big", big)
	db.Put("small", small)
	return db
}

// BenchmarkStreamJoinMemory measures the streaming hash join against the
// materializing baseline on a filtered join: the optimized plan pushes the
// filters below the join and streams the probe side, the unoptimized plan
// materializes the full join output before filtering.
func BenchmarkStreamJoinMemory(b *testing.B) {
	const sql = "SELECT b.v, s.w FROM big b JOIN small s ON b.id = s.id WHERE b.v > 50 AND s.w < 300"
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		b.Fatal(err)
	}
	db := benchJoinDB()
	for _, mode := range []struct {
		name     string
		optimize bool
	}{{"optimized", true}, {"unoptimized", false}} {
		b.Run(mode.name, func(b *testing.B) {
			e := New(db)
			e.Optimize = mode.optimize
			e.MaxRows = 10_000_000
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rel, err := e.Query(sel)
				if err != nil {
					b.Fatal(err)
				}
				if len(rel.Rows) == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

// sanity check for benchJoinDB row counts used in the memory benchmark
// (guards against the fixture silently degenerating).
func TestBenchJoinDBParity(t *testing.T) {
	db := benchJoinDB()
	eOn := New(db)
	eOn.MaxRows = 10_000_000
	eOff := New(db)
	eOff.MaxRows = 10_000_000
	eOff.Optimize = false
	sql := "SELECT b.v, s.w FROM big b JOIN small s ON b.id = s.id WHERE b.v > 50 AND s.w < 300"
	on, onErr := eOn.QuerySQL(sql)
	off, offErr := eOff.QuerySQL(sql)
	assertSame(t, sql, on, off, onErr, offErr)
	if len(on.Rows) == 0 {
		t.Fatal("benchmark query returns no rows")
	}
	_ = fmt.Sprintf
}
