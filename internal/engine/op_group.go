package engine

// groupOp: the grouped-aggregation operator. Rows are bucketed by their
// GROUP BY key, then each group is folded through HAVING and the SELECT
// items (aggregates fold over the group's rows in input order).
//
// Both stages parallelize under Engine.Parallel with byte-identical output:
//
//   - Key computation splits the input into contiguous chunks; each worker
//     evaluates the grouping keys for its own rows (row-independent work),
//     writing into a disjoint slice range. The group map itself is then
//     built by one cheap serial scan over the precomputed keys, so group
//     order (first appearance) and within-group row order are exactly the
//     serial engine's.
//   - Group evaluation fans out one task per group. Every group runs to
//     completion and results combine in first-appearance order (the same
//     runner.Map discipline the equivalence checker uses for its seeds), so
//     HAVING filtering, float accumulation order, and error selection all
//     match a sequential run.

import (
	"context"
	"strings"

	"repro/internal/catalog"
	"repro/internal/runner"
	"repro/internal/sqlast"
)

type groupOp struct {
	oe    *opEnv
	node  *GroupNode
	child operator

	cols   []Col // visible output columns
	all    []Col // cols plus hidden order-key columns
	rel    *Relation
	cursor relCursor
}

func (o *groupOp) columns() []Col           { return o.all }
func (o *groupOp) hiddenCols() int          { return len(o.node.OrderBy) }
func (o *groupOp) materialized() *Relation  { return o.rel }
func (o *groupOp) next() ([][]Value, error) { return o.cursor.next(), nil }
func (o *groupOp) close()                   { o.child.close() }

func (o *groupOp) open() error {
	src, err := drainInput(o.child)
	if err != nil {
		return err
	}
	o.cols = groupHeader(o.node.Items)
	o.all = o.cols
	if n := len(o.node.OrderBy); n > 0 {
		o.all = make([]Col, len(o.cols), len(o.cols)+n)
		copy(o.all, o.cols)
		for j := range o.node.OrderBy {
			o.all = append(o.all, orderKeyCol(j))
		}
	}

	groups, err := o.buildGroups(src)
	if err != nil {
		return err
	}
	rows, err := o.evalGroups(src, groups)
	if err != nil {
		return err
	}
	o.rel = &Relation{Cols: o.all, Rows: rows}
	o.cursor = relCursor{rows: rows}
	return nil
}

// groupHeader names the output columns of a grouped projection.
func groupHeader(items []sqlast.SelectItem) []Col {
	cols := make([]Col, len(items))
	for i, item := range items {
		name := item.Alias
		if name == "" {
			if cr, ok := item.Expr.(*sqlast.ColumnRef); ok {
				name = cr.Name
			} else if fc, ok := item.Expr.(*sqlast.FuncCall); ok {
				name = strings.ToLower(fc.Name)
			} else {
				name = "expr"
			}
		}
		cols[i] = Col{Name: name, Type: catalog.TypeAny}
	}
	return cols
}

// buildGroups buckets the source rows by GROUP BY key, preserving first-
// appearance group order and input row order within each group. With no
// GROUP BY there is one global group over everything (even zero rows).
func (o *groupOp) buildGroups(src *Relation) ([][][]Value, error) {
	if len(o.node.GroupBy) == 0 {
		return [][][]Value{src.Rows}, nil
	}
	keys, err := o.groupKeys(src)
	if err != nil {
		return nil, err
	}
	byKey := make(map[string]int, 64)
	var groups [][][]Value
	for i, row := range src.Rows {
		gi, ok := byKey[keys[i]]
		if !ok {
			gi = len(groups)
			byKey[keys[i]] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], row)
	}
	return groups, nil
}

// groupKeys computes the canonical grouping key of every source row.
// When every GROUP BY expression is a plain column reference that resolves
// uniquely in the source, keys are built straight from row values without
// going through the expression evaluator.
func (o *groupOp) groupKeys(src *Relation) ([]string, error) {
	e := o.oe.e
	n := len(src.Rows)
	keys := make([]string, n)

	colIdx, fastOK := groupKeyColumns(o.node.GroupBy, src)

	// keyChunk fills keys[lo:hi] and returns the first error with the row
	// it occurred on. Every row is evaluated even after an error — work
	// (and hence the ops counter, including any correlated subqueries
	// inside key expressions) must not depend on how the input is chunked
	// across workers.
	keyChunk := func(lo, hi int) (int, error) {
		e.ops.Add(int64(hi - lo))
		var buf []byte
		if fastOK {
			scratch := make([]Value, len(colIdx))
			for i := lo; i < hi; i++ {
				row := src.Rows[i]
				for j, ci := range colIdx {
					scratch[j] = row[ci]
				}
				buf = rowKey(buf[:0], scratch)
				keys[i] = string(buf)
			}
			return 0, nil
		}
		ev := o.oe.evalEnv(src.Cols)
		scratch := make([]Value, len(o.node.GroupBy))
		errRow, firstErr := hi, error(nil)
		for i := lo; i < hi; i++ {
			ev.row = src.Rows[i]
			for j, g := range o.node.GroupBy {
				v, err := e.evalExpr(g, ev)
				if err != nil {
					if firstErr == nil {
						errRow, firstErr = i, err
					}
					v = NullValue
				}
				scratch[j] = v
			}
			buf = rowKey(buf[:0], scratch)
			keys[i] = string(buf)
		}
		return errRow, firstErr
	}

	workers := e.intraQueryWorkers(n)
	if workers <= 1 {
		_, err := keyChunk(0, n)
		return keys, err
	}
	type chunkErr struct {
		row int
		err error
	}
	bounds := chunkBounds(n, workers)
	verdicts, _ := runner.Map(context.Background(), workers, bounds, func(_ context.Context, _ int, b [2]int) (chunkErr, error) {
		row, err := keyChunk(b[0], b[1])
		return chunkErr{row, err}, nil
	})
	first := chunkErr{row: n}
	for _, v := range verdicts {
		if v.err != nil && v.row < first.row {
			first = v
		}
	}
	return keys, first.err
}

// groupKeyColumns resolves GROUP BY expressions to source column indexes
// when they are all unambiguous plain column references.
func groupKeyColumns(groupBy []sqlast.Expr, src *Relation) ([]int, bool) {
	idxs := make([]int, len(groupBy))
	for i, g := range groupBy {
		cr, ok := g.(*sqlast.ColumnRef)
		if !ok {
			return nil, false
		}
		found := src.find(cr.Table, cr.Name)
		if len(found) != 1 {
			return nil, false
		}
		idxs[i] = found[0]
	}
	return idxs, true
}

// groupResult is one group's evaluated output: its projected row with
// hidden order keys, or skip when HAVING rejected it, or the error its
// evaluation hit.
type groupResult struct {
	skip bool
	row  []Value
	err  error
}

// evalGroups folds HAVING, the SELECT items, and the ORDER BY keys over
// every group, in first-appearance order.
func (o *groupOp) evalGroups(src *Relation, groups [][][]Value) ([][]Value, error) {
	scanEnv := o.oe.evalEnv(src.Cols)
	evalOne := func(rows [][]Value) groupResult {
		gctx := &groupEnv{engine: o.oe.e, rows: rows, scanEnv: scanEnv}
		if o.node.Having != nil {
			hv, err := gctx.eval(o.node.Having)
			if err != nil {
				return groupResult{err: err}
			}
			if !hv.Truthy() {
				return groupResult{skip: true}
			}
		}
		row := make([]Value, len(o.all))
		for i, item := range o.node.Items {
			v, err := gctx.eval(item.Expr)
			if err != nil {
				return groupResult{err: err}
			}
			row[i] = v
		}
		if err := o.groupOrderKeys(gctx, row); err != nil {
			return groupResult{err: err}
		}
		return groupResult{row: row}
	}

	var results []groupResult
	workers := o.oe.e.intraQueryWorkers(len(src.Rows))
	if workers > 1 && len(groups) > 1 {
		// Each group runs to completion; verdicts combine in group order so
		// the outcome (including which group's error wins) matches a
		// sequential run exactly.
		results, _ = runner.Map(context.Background(), workers, groups, func(_ context.Context, _ int, rows [][]Value) (groupResult, error) {
			return evalOne(rows), nil
		})
	} else {
		// Every group is evaluated even after an error, mirroring the
		// parallel path, so the work done (and the ops counter) does not
		// depend on the parallelism setting.
		results = make([]groupResult, len(groups))
		for i, rows := range groups {
			results[i] = evalOne(rows)
		}
	}

	out := make([][]Value, 0, len(groups))
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		if r.skip {
			continue
		}
		out = append(out, r.row)
	}
	return out, nil
}

// groupOrderKeys evaluates the ORDER BY expressions for one output group
// into the hidden tail of row. Aliases refer to projected values.
func (o *groupOp) groupOrderKeys(gctx *groupEnv, row []Value) error {
	nVis := len(o.cols)
	for j, ob := range o.node.OrderBy {
		if cr, ok := ob.Expr.(*sqlast.ColumnRef); ok && cr.Table == "" {
			found := false
			for i, c := range o.cols {
				if strings.EqualFold(c.Name, cr.Name) {
					row[nVis+j] = row[i]
					found = true
					break
				}
			}
			if found {
				continue
			}
		}
		v, err := gctx.eval(ob.Expr)
		if err != nil {
			return err
		}
		row[nVis+j] = v
	}
	return nil
}

// intraQueryWorkers returns the worker budget for a pipeline-breaking
// operator over n input rows: Engine.Parallel when the input is large
// enough to amortize fan-out, else 1.
func (e *Engine) intraQueryWorkers(n int) int {
	if e.Parallel <= 1 || n < minParallelRows {
		return 1
	}
	return e.Parallel
}

// chunkBounds splits [0, n) into at most `workers` contiguous ranges.
func chunkBounds(n, workers int) [][2]int {
	size := (n + workers - 1) / workers
	var bounds [][2]int
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		bounds = append(bounds, [2]int{lo, hi})
	}
	return bounds
}
