package engine

import (
	"strings"
	"testing"

	"repro/internal/catalog"
)

// testDB builds a small, hand-written database for deterministic assertions.
func testDB() *DB {
	schema := catalog.NewSchema("test")
	schema.Add(catalog.T("emp",
		"id", catalog.TypeInt, "name", catalog.TypeText,
		"dept", catalog.TypeText, "salary", catalog.TypeFloat,
	))
	schema.Add(catalog.T("dept",
		"name", catalog.TypeText, "budget", catalog.TypeFloat,
	))
	db := NewDB(schema)
	db.Put("emp", &Relation{
		Cols: []Col{
			{Name: "id", Type: catalog.TypeInt},
			{Name: "name", Type: catalog.TypeText},
			{Name: "dept", Type: catalog.TypeText},
			{Name: "salary", Type: catalog.TypeFloat},
		},
		Rows: [][]Value{
			{IntVal(1), TextVal("ann"), TextVal("eng"), FloatVal(100)},
			{IntVal(2), TextVal("bob"), TextVal("eng"), FloatVal(80)},
			{IntVal(3), TextVal("cat"), TextVal("ops"), FloatVal(90)},
			{IntVal(4), TextVal("dan"), TextVal("ops"), FloatVal(70)},
			{IntVal(5), TextVal("eve"), TextVal("hr"), NullValue},
		},
	})
	db.Put("dept", &Relation{
		Cols: []Col{
			{Name: "name", Type: catalog.TypeText},
			{Name: "budget", Type: catalog.TypeFloat},
		},
		Rows: [][]Value{
			{TextVal("eng"), FloatVal(1000)},
			{TextVal("ops"), FloatVal(500)},
			{TextVal("sales"), FloatVal(200)},
		},
	})
	return db
}

func mustQuery(t *testing.T, sql string) *Relation {
	t.Helper()
	rel, err := New(testDB()).QuerySQL(sql)
	if err != nil {
		t.Fatalf("QuerySQL(%q): %v", sql, err)
	}
	return rel
}

func rowStrings(rel *Relation) []string {
	out := make([]string, len(rel.Rows))
	for i, row := range rel.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func TestSimpleProjectionAndFilter(t *testing.T) {
	rel := mustQuery(t, "SELECT name FROM emp WHERE salary > 75")
	got := rowStrings(rel)
	want := []string{"ann", "bob", "cat"}
	if len(got) != len(want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSelectStar(t *testing.T) {
	rel := mustQuery(t, "SELECT * FROM emp")
	if rel.Width() != 4 || len(rel.Rows) != 5 {
		t.Errorf("star shape = %dx%d, want 4x5", rel.Width(), len(rel.Rows))
	}
	rel = mustQuery(t, "SELECT e.* FROM emp AS e WHERE e.dept = 'eng'")
	if rel.Width() != 4 || len(rel.Rows) != 2 {
		t.Errorf("qualified star shape = %dx%d", rel.Width(), len(rel.Rows))
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	rel := mustQuery(t, "SELECT 1 + 2 , 'x'")
	if len(rel.Rows) != 1 || rel.Rows[0][0].I != 3 || rel.Rows[0][1].S != "x" {
		t.Errorf("rows = %v", rowStrings(rel))
	}
}

func TestArithmeticAndNullPropagation(t *testing.T) {
	rel := mustQuery(t, "SELECT salary * 2 FROM emp WHERE name = 'eve'")
	if !rel.Rows[0][0].Null {
		t.Error("NULL * 2 should be NULL")
	}
	rel = mustQuery(t, "SELECT 7 % 3 , 10 / 4 , 10.0 / 4")
	if rel.Rows[0][0].I != 1 {
		t.Errorf("7%%3 = %v", rel.Rows[0][0])
	}
	if rel.Rows[0][1].AsFloat() != 2.5 {
		t.Errorf("10/4 = %v (division always yields float)", rel.Rows[0][1])
	}
	rel = mustQuery(t, "SELECT 1 / 0")
	if !rel.Rows[0][0].Null {
		t.Error("division by zero should be NULL")
	}
}

func TestWhereNullIsNotTruthy(t *testing.T) {
	// eve has NULL salary: the comparison is unknown, row filtered out.
	rel := mustQuery(t, "SELECT name FROM emp WHERE salary > 0")
	for _, row := range rel.Rows {
		if row[0].S == "eve" {
			t.Error("NULL comparison admitted a row")
		}
	}
	rel = mustQuery(t, "SELECT name FROM emp WHERE salary IS NULL")
	if len(rel.Rows) != 1 || rel.Rows[0][0].S != "eve" {
		t.Errorf("IS NULL rows = %v", rowStrings(rel))
	}
}

func TestInnerJoin(t *testing.T) {
	rel := mustQuery(t, "SELECT e.name , d.budget FROM emp AS e JOIN dept AS d ON e.dept = d.name")
	if len(rel.Rows) != 4 {
		t.Fatalf("join rows = %d, want 4 (hr has no dept row)", len(rel.Rows))
	}
}

func TestLeftJoinPadsNulls(t *testing.T) {
	rel := mustQuery(t, "SELECT e.name , d.budget FROM emp AS e LEFT JOIN dept AS d ON e.dept = d.name")
	if len(rel.Rows) != 5 {
		t.Fatalf("left join rows = %d, want 5", len(rel.Rows))
	}
	var evePadded bool
	for _, row := range rel.Rows {
		if row[0].S == "eve" && row[1].Null {
			evePadded = true
		}
	}
	if !evePadded {
		t.Error("eve should appear with NULL budget")
	}
}

func TestRightAndFullJoin(t *testing.T) {
	rel := mustQuery(t, "SELECT e.name , d.name FROM emp AS e RIGHT JOIN dept AS d ON e.dept = d.name")
	if len(rel.Rows) != 5 { // 4 matches + unmatched sales
		t.Fatalf("right join rows = %d, want 5", len(rel.Rows))
	}
	rel = mustQuery(t, "SELECT e.name , d.name FROM emp AS e FULL JOIN dept AS d ON e.dept = d.name")
	if len(rel.Rows) != 6 { // 4 matches + eve + sales
		t.Fatalf("full join rows = %d, want 6", len(rel.Rows))
	}
}

func TestCrossJoinAndImplicitJoin(t *testing.T) {
	rel := mustQuery(t, "SELECT e.name FROM emp AS e CROSS JOIN dept AS d")
	if len(rel.Rows) != 15 {
		t.Fatalf("cross rows = %d, want 15", len(rel.Rows))
	}
	rel = mustQuery(t, "SELECT e.name FROM emp AS e , dept AS d WHERE e.dept = d.name")
	if len(rel.Rows) != 4 {
		t.Fatalf("implicit join rows = %d, want 4", len(rel.Rows))
	}
}

func TestHashAndNestedLoopJoinAgree(t *testing.T) {
	db := testDB()
	sql := "SELECT e.name , d.budget FROM emp AS e JOIN dept AS d ON e.dept = d.name"
	hashed, err := New(db).QuerySQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(db)
	e2.ForceNestedLoop = true
	looped, err := e2.QuerySQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualRelations(hashed, looped, false) {
		t.Errorf("hash join %v != nested loop %v", rowStrings(hashed), rowStrings(looped))
	}
}

func TestNonEquiJoin(t *testing.T) {
	rel := mustQuery(t, "SELECT e.name FROM emp AS e JOIN dept AS d ON e.salary > d.budget")
	// salaries 100,80,90,70 vs budgets 1000,500,200: none bigger.
	if len(rel.Rows) != 0 {
		t.Errorf("non-equi rows = %v", rowStrings(rel))
	}
}

func TestGroupByAggregates(t *testing.T) {
	rel := mustQuery(t, "SELECT dept , COUNT(*) , AVG( salary ) FROM emp GROUP BY dept ORDER BY dept ASC")
	got := rowStrings(rel)
	want := []string{"eng|2|90", "hr|1|NULL", "ops|2|80"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("groups = %v, want %v", got, want)
	}
}

func TestGlobalAggregates(t *testing.T) {
	rel := mustQuery(t, "SELECT COUNT(*) , SUM( salary ) , MIN( salary ) , MAX( salary ) FROM emp")
	row := rel.Rows[0]
	if row[0].I != 5 || row[1].AsFloat() != 340 || row[2].AsFloat() != 70 || row[3].AsFloat() != 100 {
		t.Errorf("aggregates = %v", rowStrings(rel))
	}
	// COUNT(col) skips NULLs.
	rel = mustQuery(t, "SELECT COUNT( salary ) FROM emp")
	if rel.Rows[0][0].I != 4 {
		t.Errorf("COUNT(salary) = %v, want 4", rel.Rows[0][0])
	}
}

func TestCountDistinct(t *testing.T) {
	rel := mustQuery(t, "SELECT COUNT(DISTINCT dept) FROM emp")
	if rel.Rows[0][0].I != 3 {
		t.Errorf("COUNT(DISTINCT dept) = %v, want 3", rel.Rows[0][0])
	}
}

func TestHaving(t *testing.T) {
	rel := mustQuery(t, "SELECT dept , COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > 1 ORDER BY dept ASC")
	got := rowStrings(rel)
	if len(got) != 2 || got[0] != "eng|2" || got[1] != "ops|2" {
		t.Errorf("having rows = %v", got)
	}
}

func TestOrderByDirectionsAndAlias(t *testing.T) {
	rel := mustQuery(t, "SELECT name , salary FROM emp WHERE salary IS NOT NULL ORDER BY salary DESC")
	got := rowStrings(rel)
	if got[0] != "ann|100" || got[3] != "dan|70" {
		t.Errorf("order desc = %v", got)
	}
	rel = mustQuery(t, "SELECT name , salary * 2 AS pay FROM emp WHERE salary IS NOT NULL ORDER BY pay ASC")
	if rel.Rows[0][0].S != "dan" {
		t.Errorf("alias order = %v", rowStrings(rel))
	}
	// ORDER BY a column that is not projected.
	rel = mustQuery(t, "SELECT name FROM emp WHERE salary IS NOT NULL ORDER BY salary ASC")
	if rel.Rows[0][0].S != "dan" {
		t.Errorf("unprojected order = %v", rowStrings(rel))
	}
}

func TestDistinct(t *testing.T) {
	rel := mustQuery(t, "SELECT DISTINCT dept FROM emp ORDER BY dept ASC")
	got := rowStrings(rel)
	if len(got) != 3 || got[0] != "eng" {
		t.Errorf("distinct = %v", got)
	}
}

func TestLimitOffsetTop(t *testing.T) {
	rel := mustQuery(t, "SELECT id FROM emp ORDER BY id ASC LIMIT 2")
	if len(rel.Rows) != 2 || rel.Rows[0][0].I != 1 {
		t.Errorf("limit = %v", rowStrings(rel))
	}
	rel = mustQuery(t, "SELECT id FROM emp ORDER BY id ASC LIMIT 2 OFFSET 2")
	if len(rel.Rows) != 2 || rel.Rows[0][0].I != 3 {
		t.Errorf("offset = %v", rowStrings(rel))
	}
	rel = mustQuery(t, "SELECT TOP 3 id FROM emp ORDER BY id DESC")
	if len(rel.Rows) != 3 || rel.Rows[0][0].I != 5 {
		t.Errorf("top = %v", rowStrings(rel))
	}
	rel = mustQuery(t, "SELECT id FROM emp LIMIT 0")
	if len(rel.Rows) != 0 {
		t.Errorf("limit 0 = %v", rowStrings(rel))
	}
}

func TestScalarSubquery(t *testing.T) {
	rel := mustQuery(t, "SELECT name FROM emp WHERE salary = ( SELECT MAX( salary ) FROM emp )")
	if len(rel.Rows) != 1 || rel.Rows[0][0].S != "ann" {
		t.Errorf("scalar sub = %v", rowStrings(rel))
	}
	// Multi-row scalar subquery is a runtime error.
	_, err := New(testDB()).QuerySQL("SELECT name FROM emp WHERE salary = ( SELECT salary FROM emp )")
	if err == nil {
		t.Error("multi-row scalar subquery should fail")
	}
}

func TestInSubqueryAndList(t *testing.T) {
	rel := mustQuery(t, "SELECT name FROM emp WHERE dept IN ( SELECT name FROM dept WHERE budget > 400 )")
	if len(rel.Rows) != 4 {
		t.Errorf("in-sub rows = %v", rowStrings(rel))
	}
	rel = mustQuery(t, "SELECT name FROM emp WHERE id IN ( 1 , 3 )")
	if len(rel.Rows) != 2 {
		t.Errorf("in-list rows = %v", rowStrings(rel))
	}
	rel = mustQuery(t, "SELECT name FROM emp WHERE id NOT IN ( 1 , 2 , 3 , 4 )")
	if len(rel.Rows) != 1 || rel.Rows[0][0].S != "eve" {
		t.Errorf("not-in rows = %v", rowStrings(rel))
	}
}

func TestExistsCorrelated(t *testing.T) {
	rel := mustQuery(t, "SELECT d.name FROM dept AS d WHERE EXISTS ( SELECT 1 FROM emp AS e WHERE e.dept = d.name )")
	if len(rel.Rows) != 2 {
		t.Errorf("exists rows = %v", rowStrings(rel))
	}
	rel = mustQuery(t, "SELECT d.name FROM dept AS d WHERE NOT EXISTS ( SELECT 1 FROM emp AS e WHERE e.dept = d.name )")
	if len(rel.Rows) != 1 || rel.Rows[0][0].S != "sales" {
		t.Errorf("not-exists rows = %v", rowStrings(rel))
	}
}

func TestDerivedTable(t *testing.T) {
	rel := mustQuery(t, "SELECT s.name FROM ( SELECT name , salary FROM emp WHERE salary > 75 ) AS s WHERE s.salary < 95")
	got := rowStrings(rel)
	if len(got) != 2 { // bob 80, cat 90
		t.Errorf("derived rows = %v", got)
	}
}

func TestCTE(t *testing.T) {
	rel := mustQuery(t, "WITH rich AS ( SELECT name , salary FROM emp WHERE salary > 75 ) SELECT name FROM rich ORDER BY name ASC")
	got := rowStrings(rel)
	if len(got) != 3 || got[0] != "ann" {
		t.Errorf("cte rows = %v", got)
	}
	// CTE with explicit column list.
	rel = mustQuery(t, "WITH r ( who , pay ) AS ( SELECT name , salary FROM emp WHERE salary > 85 ) SELECT who FROM r ORDER BY pay DESC")
	if len(rel.Rows) != 2 || rel.Rows[0][0].S != "ann" {
		t.Errorf("cte cols = %v", rowStrings(rel))
	}
	// Chained CTEs.
	rel = mustQuery(t, "WITH a AS ( SELECT salary FROM emp ) , b AS ( SELECT salary FROM a WHERE salary > 85 ) SELECT COUNT(*) FROM b")
	if rel.Rows[0][0].I != 2 {
		t.Errorf("chained cte = %v", rowStrings(rel))
	}
}

func TestSetOperations(t *testing.T) {
	rel := mustQuery(t, "SELECT dept FROM emp UNION SELECT name FROM dept ORDER BY dept ASC")
	if len(rel.Rows) != 4 { // eng, hr, ops, sales
		t.Errorf("union rows = %v", rowStrings(rel))
	}
	rel = mustQuery(t, "SELECT dept FROM emp UNION ALL SELECT name FROM dept")
	if len(rel.Rows) != 8 {
		t.Errorf("union all rows = %v", rowStrings(rel))
	}
	rel = mustQuery(t, "SELECT dept FROM emp INTERSECT SELECT name FROM dept")
	if len(rel.Rows) != 2 { // eng, ops
		t.Errorf("intersect rows = %v", rowStrings(rel))
	}
	rel = mustQuery(t, "SELECT name FROM dept EXCEPT SELECT dept FROM emp")
	if len(rel.Rows) != 1 || rel.Rows[0][0].S != "sales" {
		t.Errorf("except rows = %v", rowStrings(rel))
	}
}

func TestCaseExpression(t *testing.T) {
	rel := mustQuery(t, "SELECT name , CASE WHEN salary >= 90 THEN 'high' WHEN salary >= 75 THEN 'mid' ELSE 'low' END FROM emp WHERE salary IS NOT NULL ORDER BY id ASC")
	got := rowStrings(rel)
	want := []string{"ann|high", "bob|mid", "cat|high", "dan|low"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("case = %v", got)
	}
	rel = mustQuery(t, "SELECT CASE dept WHEN 'eng' THEN 1 ELSE 0 END FROM emp ORDER BY id ASC")
	if rel.Rows[0][0].I != 1 || rel.Rows[2][0].I != 0 {
		t.Errorf("simple case = %v", rowStrings(rel))
	}
}

func TestLikeOperator(t *testing.T) {
	rel := mustQuery(t, "SELECT name FROM emp WHERE name LIKE 'a%'")
	if len(rel.Rows) != 1 || rel.Rows[0][0].S != "ann" {
		t.Errorf("like = %v", rowStrings(rel))
	}
	rel = mustQuery(t, "SELECT name FROM emp WHERE name LIKE '_a_'")
	if len(rel.Rows) != 2 { // cat, dan
		t.Errorf("underscore like = %v", rowStrings(rel))
	}
	rel = mustQuery(t, "SELECT name FROM emp WHERE name NOT LIKE '%a%'")
	if len(rel.Rows) != 2 { // bob, eve
		t.Errorf("not like = %v", rowStrings(rel))
	}
}

func TestBetween(t *testing.T) {
	rel := mustQuery(t, "SELECT name FROM emp WHERE salary BETWEEN 75 AND 95")
	if len(rel.Rows) != 2 { // bob, cat
		t.Errorf("between = %v", rowStrings(rel))
	}
}

func TestScalarFunctions(t *testing.T) {
	rel := mustQuery(t, "SELECT ABS( -5 ) , UPPER( 'ab' ) , LOWER( 'AB' ) , LEN( 'abc' ) , SQRT( 16 ) , COALESCE( NULL , 7 )")
	row := rel.Rows[0]
	if row[0].I != 5 || row[1].S != "AB" || row[2].S != "ab" || row[3].I != 3 || row[4].F != 4 || row[5].I != 7 {
		t.Errorf("functions = %v", rowStrings(rel))
	}
	// Unknown functions are deterministic.
	a := mustQuery(t, "SELECT fMagic( 1 , 2 )")
	b := mustQuery(t, "SELECT fMagic( 1 , 2 )")
	if a.Rows[0][0] != b.Rows[0][0] {
		t.Error("unknown function not deterministic")
	}
}

func TestCast(t *testing.T) {
	rel := mustQuery(t, "SELECT CAST( '12' AS INT ) , CAST( 3.9 AS INT ) , CAST( 5 AS FLOAT ) , CAST( 7 AS VARCHAR(10) )")
	row := rel.Rows[0]
	if row[0].I != 12 || row[1].I != 3 || row[2].F != 5 || row[3].S != "7" {
		t.Errorf("cast = %v", rowStrings(rel))
	}
}

func TestErrors(t *testing.T) {
	e := New(testDB())
	for _, sql := range []string{
		"SELECT x FROM nosuch",
		"SELECT nosuchcol FROM emp",
		"SELECT name FROM emp UNION SELECT name , budget FROM dept",
		"SELECT q.* FROM emp AS e",
	} {
		if _, err := e.QuerySQL(sql); err == nil {
			t.Errorf("QuerySQL(%q) should fail", sql)
		}
	}
}

func TestRowCapEnforced(t *testing.T) {
	e := New(testDB())
	e.MaxRows = 10
	_, err := e.QuerySQL("SELECT * FROM emp AS a CROSS JOIN emp AS b CROSS JOIN emp AS c")
	if err == nil {
		t.Error("row cap not enforced")
	}
}

func TestOpsCounterAdvances(t *testing.T) {
	e := New(testDB())
	if _, err := e.QuerySQL("SELECT * FROM emp AS a JOIN dept AS d ON a.dept = d.name"); err != nil {
		t.Fatal(err)
	}
	if e.Ops() == 0 {
		t.Error("ops counter did not advance")
	}
}

func TestEqualRelations(t *testing.T) {
	a := &Relation{Cols: []Col{{Name: "x"}}, Rows: [][]Value{{IntVal(1)}, {IntVal(2)}}}
	b := &Relation{Cols: []Col{{Name: "y"}}, Rows: [][]Value{{IntVal(2)}, {IntVal(1)}}}
	if !EqualRelations(a, b, false) {
		t.Error("multiset equality failed")
	}
	if EqualRelations(a, b, true) {
		t.Error("ordered equality should fail")
	}
	c := &Relation{Cols: []Col{{Name: "x"}}, Rows: [][]Value{{IntVal(1)}, {IntVal(1)}}}
	if EqualRelations(a, c, false) {
		t.Error("different multisets compared equal")
	}
}

func TestValueCompare(t *testing.T) {
	if Compare(IntVal(1), FloatVal(1.0)) != 0 {
		t.Error("int/float equality failed")
	}
	if Compare(NullValue, IntVal(0)) != -1 {
		t.Error("null should sort first")
	}
	if Equal(NullValue, NullValue) {
		t.Error("NULL must not equal NULL")
	}
	if Compare(TextVal("a"), TextVal("b")) != -1 {
		t.Error("text compare failed")
	}
	if Compare(BoolVal(false), BoolVal(true)) != -1 {
		t.Error("bool compare failed")
	}
}

func TestAggregateOnEmptyInput(t *testing.T) {
	rel := mustQuery(t, "SELECT COUNT(*) , SUM( salary ) FROM emp WHERE id > 100")
	if rel.Rows[0][0].I != 0 || !rel.Rows[0][1].Null {
		t.Errorf("empty aggregates = %v", rowStrings(rel))
	}
}

func TestGroupByExpressionKey(t *testing.T) {
	rel := mustQuery(t, "SELECT salary > 85 , COUNT(*) FROM emp WHERE salary IS NOT NULL GROUP BY salary > 85 ORDER BY COUNT(*) ASC")
	if len(rel.Rows) != 2 {
		t.Errorf("expr group = %v", rowStrings(rel))
	}
}

func BenchmarkHashJoin(b *testing.B) {
	db := testDB()
	e := New(db)
	sql := "SELECT e.name , d.budget FROM emp AS e JOIN dept AS d ON e.dept = d.name"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.QuerySQL(sql); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupBy(b *testing.B) {
	e := New(testDB())
	sql := "SELECT dept , COUNT(*) , AVG( salary ) FROM emp GROUP BY dept"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.QuerySQL(sql); err != nil {
			b.Fatal(err)
		}
	}
}
