package engine

// Scalar expression evaluation: everything below the operator layer that
// turns one AST expression plus a row context into a Value. Subqueries
// re-enter the executor (exec.go) through execSelect.

import (
	"math"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlast"
)

func (e *Engine) evalExpr(x sqlast.Expr, ev *env) (Value, error) {
	switch t := x.(type) {
	case *sqlast.ColumnRef:
		return e.resolveColumn(t, ev)
	case *sqlast.Literal:
		return literalValue(t)
	case *sqlast.VarRef:
		return NullValue, nil // variables are opaque in this executor
	case *sqlast.Binary:
		return e.evalBinary(t, ev)
	case *sqlast.Unary:
		v, err := e.evalExpr(t.X, ev)
		if err != nil {
			return NullValue, err
		}
		switch t.Op {
		case "NOT":
			if v.Null {
				return NullValue, nil
			}
			return BoolVal(!v.Truthy()), nil
		case "-":
			if v.Null {
				return NullValue, nil
			}
			if v.Kind == catalog.TypeInt {
				return IntVal(-v.I), nil
			}
			return FloatVal(-v.AsFloat()), nil
		default:
			return v, nil
		}
	case *sqlast.FuncCall:
		return e.evalScalarFunc(t, ev)
	case *sqlast.Subquery:
		rel, err := e.execSelect(t.Select, ev, nil)
		if err != nil {
			return NullValue, err
		}
		if len(rel.Cols) != 1 {
			return NullValue, execErrorf("scalar subquery returns %d columns", len(rel.Cols))
		}
		switch len(rel.Rows) {
		case 0:
			return NullValue, nil
		case 1:
			return rel.Rows[0][0], nil
		default:
			return NullValue, execErrorf("scalar subquery returned %d rows", len(rel.Rows))
		}
	case *sqlast.In:
		return e.evalIn(t, ev)
	case *sqlast.Exists:
		rel, err := e.execSelect(t.Sub, ev, nil)
		if err != nil {
			return NullValue, err
		}
		res := len(rel.Rows) > 0
		if t.Not {
			res = !res
		}
		return BoolVal(res), nil
	case *sqlast.Between:
		v, err := e.evalExpr(t.X, ev)
		if err != nil {
			return NullValue, err
		}
		lo, err := e.evalExpr(t.Lo, ev)
		if err != nil {
			return NullValue, err
		}
		hi, err := e.evalExpr(t.Hi, ev)
		if err != nil {
			return NullValue, err
		}
		if v.Null || lo.Null || hi.Null {
			return NullValue, nil
		}
		res := Compare(v, lo) >= 0 && Compare(v, hi) <= 0
		if t.Not {
			res = !res
		}
		return BoolVal(res), nil
	case *sqlast.IsNull:
		v, err := e.evalExpr(t.X, ev)
		if err != nil {
			return NullValue, err
		}
		res := v.Null
		if t.Not {
			res = !res
		}
		return BoolVal(res), nil
	case *sqlast.Case:
		return e.evalCase(t, ev)
	case *sqlast.Cast:
		v, err := e.evalExpr(t.X, ev)
		if err != nil {
			return NullValue, err
		}
		return castValue(v, t.Type)
	case *sqlast.Star:
		return NullValue, execErrorf("* is not valid in a scalar context")
	default:
		return NullValue, execErrorf("unsupported expression %T", x)
	}
}

func (e *Engine) resolveColumn(cr *sqlast.ColumnRef, ev *env) (Value, error) {
	for cur := ev; cur != nil; cur = cur.outer {
		if cur.rel == nil {
			continue
		}
		idx := cur.rel.find(cr.Table, cr.Name)
		if len(idx) == 1 {
			if cur.row == nil {
				return NullValue, execErrorf("no current row for column %s", sqlast.PrintExpr(cr))
			}
			return cur.row[idx[0]], nil
		}
		if len(idx) > 1 {
			return NullValue, execErrorf("ambiguous column %s", sqlast.PrintExpr(cr))
		}
	}
	return NullValue, execErrorf("unknown column %s", sqlast.PrintExpr(cr))
}

func literalValue(l *sqlast.Literal) (Value, error) {
	switch l.Kind {
	case sqlast.LitNull:
		return NullValue, nil
	case sqlast.LitBool:
		return BoolVal(strings.EqualFold(l.Text, "TRUE")), nil
	case sqlast.LitString:
		return TextVal(l.Text), nil
	case sqlast.LitNumber:
		if !strings.ContainsAny(l.Text, ".eE") {
			if i, err := strconv.ParseInt(l.Text, 10, 64); err == nil {
				return IntVal(i), nil
			}
		}
		f, err := strconv.ParseFloat(l.Text, 64)
		if err != nil {
			return NullValue, execErrorf("bad numeric literal %q", l.Text)
		}
		return FloatVal(f), nil
	default:
		return NullValue, execErrorf("unknown literal kind")
	}
}

func (e *Engine) evalBinary(b *sqlast.Binary, ev *env) (Value, error) {
	switch b.Op {
	case "AND":
		l, err := e.evalExpr(b.L, ev)
		if err != nil {
			return NullValue, err
		}
		if !l.Null && !l.Truthy() {
			return BoolVal(false), nil
		}
		r, err := e.evalExpr(b.R, ev)
		if err != nil {
			return NullValue, err
		}
		if !r.Null && !r.Truthy() {
			return BoolVal(false), nil
		}
		if l.Null || r.Null {
			return NullValue, nil
		}
		return BoolVal(true), nil
	case "OR":
		l, err := e.evalExpr(b.L, ev)
		if err != nil {
			return NullValue, err
		}
		if l.Truthy() {
			return BoolVal(true), nil
		}
		r, err := e.evalExpr(b.R, ev)
		if err != nil {
			return NullValue, err
		}
		if r.Truthy() {
			return BoolVal(true), nil
		}
		if l.Null || r.Null {
			return NullValue, nil
		}
		return BoolVal(false), nil
	}
	l, err := e.evalExpr(b.L, ev)
	if err != nil {
		return NullValue, err
	}
	r, err := e.evalExpr(b.R, ev)
	if err != nil {
		return NullValue, err
	}
	switch b.Op {
	case "=", "<>", "<", ">", "<=", ">=":
		if l.Null || r.Null {
			return NullValue, nil
		}
		c := Compare(l, r)
		var res bool
		switch b.Op {
		case "=":
			res = c == 0
		case "<>":
			res = c != 0
		case "<":
			res = c < 0
		case ">":
			res = c > 0
		case "<=":
			res = c <= 0
		case ">=":
			res = c >= 0
		}
		return BoolVal(res), nil
	case "LIKE":
		if l.Null || r.Null {
			return NullValue, nil
		}
		return BoolVal(likeMatch(l.String(), r.String())), nil
	case "||":
		if l.Null || r.Null {
			return NullValue, nil
		}
		return TextVal(l.String() + r.String()), nil
	case "+", "-", "*", "/", "%":
		if l.Null || r.Null {
			return NullValue, nil
		}
		return arith(b.Op, l, r)
	default:
		return NullValue, execErrorf("unsupported operator %q", b.Op)
	}
}

func arith(op string, l, r Value) (Value, error) {
	if !l.IsNumeric() || !r.IsNumeric() {
		return NullValue, execErrorf("arithmetic %s on non-numeric operands", op)
	}
	if l.Kind == catalog.TypeInt && r.Kind == catalog.TypeInt && op != "/" {
		switch op {
		case "+":
			return IntVal(l.I + r.I), nil
		case "-":
			return IntVal(l.I - r.I), nil
		case "*":
			return IntVal(l.I * r.I), nil
		case "%":
			if r.I == 0 {
				return NullValue, nil
			}
			return IntVal(l.I % r.I), nil
		}
	}
	lf, rf := l.AsFloat(), r.AsFloat()
	switch op {
	case "+":
		return FloatVal(lf + rf), nil
	case "-":
		return FloatVal(lf - rf), nil
	case "*":
		return FloatVal(lf * rf), nil
	case "/":
		if rf == 0 {
			return NullValue, nil
		}
		return FloatVal(lf / rf), nil
	case "%":
		if rf == 0 {
			return NullValue, nil
		}
		return FloatVal(math.Mod(lf, rf)), nil
	}
	return NullValue, execErrorf("unknown arithmetic operator %q", op)
}

// likeMatch implements SQL LIKE with % and _ wildcards (case-insensitive,
// matching common collations in the source systems).
//
// The matcher is the iterative two-pointer wildcard algorithm: advance
// through text and pattern together, remember the position of the last %
// and how much text it has swallowed, and on a mismatch backtrack to that %
// and extend its span by one character. Each backtrack moves the restart
// point strictly forward, so the worst case is O(len(s) * len(p)) — unlike
// the naive recursive matcher it replaces, which was exponential on
// pathological patterns such as "%a%a%a%a%b" (every % multiplied the
// candidate split points).
func likeMatch(s, pattern string) bool {
	s = strings.ToLower(s)
	p := strings.ToLower(pattern)
	si, pi := 0, 0
	starPi, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			starPi, starSi = pi, si
			pi++
		case starPi >= 0:
			starSi++
			si = starSi
			pi = starPi + 1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

func (e *Engine) evalIn(in *sqlast.In, ev *env) (Value, error) {
	x, err := e.evalExpr(in.X, ev)
	if err != nil {
		return NullValue, err
	}
	if x.Null {
		return NullValue, nil
	}
	found := false
	if in.Sub != nil {
		rel, err := e.execSelect(in.Sub, ev, nil)
		if err != nil {
			return NullValue, err
		}
		if len(rel.Cols) != 1 {
			return NullValue, execErrorf("IN subquery returns %d columns", len(rel.Cols))
		}
		var ops int64
		for _, row := range rel.Rows {
			ops++
			if Equal(x, row[0]) {
				found = true
				break
			}
		}
		e.ops.Add(ops)
	} else {
		for _, item := range in.List {
			v, err := e.evalExpr(item, ev)
			if err != nil {
				return NullValue, err
			}
			if Equal(x, v) {
				found = true
				break
			}
		}
	}
	if in.Not {
		found = !found
	}
	return BoolVal(found), nil
}

func (e *Engine) evalCase(c *sqlast.Case, ev *env) (Value, error) {
	if c.Operand != nil {
		op, err := e.evalExpr(c.Operand, ev)
		if err != nil {
			return NullValue, err
		}
		for _, w := range c.Whens {
			cv, err := e.evalExpr(w.Cond, ev)
			if err != nil {
				return NullValue, err
			}
			if Equal(op, cv) {
				return e.evalExpr(w.Result, ev)
			}
		}
	} else {
		for _, w := range c.Whens {
			cv, err := e.evalExpr(w.Cond, ev)
			if err != nil {
				return NullValue, err
			}
			if cv.Truthy() {
				return e.evalExpr(w.Result, ev)
			}
		}
	}
	if c.Else != nil {
		return e.evalExpr(c.Else, ev)
	}
	return NullValue, nil
}

func (e *Engine) evalScalarFunc(fc *sqlast.FuncCall, ev *env) (Value, error) {
	name := strings.ToUpper(fc.Name)
	if sqlast.IsAggregate(name) {
		return NullValue, execErrorf("aggregate %s used outside grouping context", name)
	}
	// Scalar calls rarely exceed four arguments; a stack buffer avoids the
	// per-call slice allocation on the row-evaluation hot path.
	var argBuf [4]Value
	var args []Value
	if len(fc.Args) <= len(argBuf) {
		args = argBuf[:len(fc.Args)]
	} else {
		args = make([]Value, len(fc.Args))
	}
	for i, a := range fc.Args {
		v, err := e.evalExpr(a, ev)
		if err != nil {
			return NullValue, err
		}
		args[i] = v
	}
	need := func(n int) error {
		if len(args) != n {
			return execErrorf("%s expects %d argument(s), got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "ABS":
		if err := need(1); err != nil {
			return NullValue, err
		}
		if args[0].Null {
			return NullValue, nil
		}
		if args[0].Kind == catalog.TypeInt {
			if args[0].I < 0 {
				return IntVal(-args[0].I), nil
			}
			return args[0], nil
		}
		return FloatVal(math.Abs(args[0].AsFloat())), nil
	case "ROUND":
		if len(args) == 0 || args[0].Null {
			return NullValue, nil
		}
		return FloatVal(math.Round(args[0].AsFloat())), nil
	case "FLOOR":
		if err := need(1); err != nil {
			return NullValue, err
		}
		return FloatVal(math.Floor(args[0].AsFloat())), nil
	case "CEILING", "CEIL":
		if err := need(1); err != nil {
			return NullValue, err
		}
		return FloatVal(math.Ceil(args[0].AsFloat())), nil
	case "SQRT":
		if err := need(1); err != nil {
			return NullValue, err
		}
		return FloatVal(math.Sqrt(args[0].AsFloat())), nil
	case "POWER":
		if err := need(2); err != nil {
			return NullValue, err
		}
		return FloatVal(math.Pow(args[0].AsFloat(), args[1].AsFloat())), nil
	case "LOG":
		if err := need(1); err != nil {
			return NullValue, err
		}
		return FloatVal(math.Log(args[0].AsFloat())), nil
	case "UPPER":
		if err := need(1); err != nil {
			return NullValue, err
		}
		return TextVal(strings.ToUpper(args[0].String())), nil
	case "LOWER":
		if err := need(1); err != nil {
			return NullValue, err
		}
		return TextVal(strings.ToLower(args[0].String())), nil
	case "LEN", "LENGTH":
		if err := need(1); err != nil {
			return NullValue, err
		}
		return IntVal(int64(len(args[0].String()))), nil
	case "CONCAT":
		var b strings.Builder
		for _, a := range args {
			if !a.Null {
				b.WriteString(a.String())
			}
		}
		return TextVal(b.String()), nil
	case "COALESCE":
		for _, a := range args {
			if !a.Null {
				return a, nil
			}
		}
		return NullValue, nil
	default:
		// Unknown (e.g. domain-specific SDSS) functions evaluate to a
		// deterministic numeric digest of their arguments so queries using
		// them remain executable.
		var h int64 = 1469598103934665603
		for _, a := range args {
			for _, c := range a.String() {
				h ^= int64(c)
				h *= 1099511628211
			}
		}
		return FloatVal(float64(h%1000) / 10), nil
	}
}

func castValue(v Value, typ string) (Value, error) {
	if v.Null {
		return NullValue, nil
	}
	u := strings.ToUpper(typ)
	switch {
	case strings.HasPrefix(u, "INT") || strings.HasPrefix(u, "BIGINT") || strings.HasPrefix(u, "SMALLINT"):
		switch v.Kind {
		case catalog.TypeInt:
			return v, nil
		case catalog.TypeFloat:
			return IntVal(int64(v.F)), nil
		case catalog.TypeText:
			i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
			if err != nil {
				return NullValue, nil
			}
			return IntVal(i), nil
		case catalog.TypeBool:
			if v.B {
				return IntVal(1), nil
			}
			return IntVal(0), nil
		}
	case strings.HasPrefix(u, "FLOAT") || strings.HasPrefix(u, "REAL") || strings.HasPrefix(u, "DECIMAL") || strings.HasPrefix(u, "NUMERIC"):
		switch v.Kind {
		case catalog.TypeFloat:
			return v, nil
		case catalog.TypeInt:
			return FloatVal(float64(v.I)), nil
		case catalog.TypeText:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
			if err != nil {
				return NullValue, nil
			}
			return FloatVal(f), nil
		}
	case strings.HasPrefix(u, "VARCHAR") || strings.HasPrefix(u, "CHAR") || strings.HasPrefix(u, "TEXT") || strings.HasPrefix(u, "NVARCHAR"):
		return TextVal(v.String()), nil
	}
	return v, nil
}

// selectHasAggregates reports whether the SELECT uses aggregate functions in
// its projection, HAVING, or ORDER BY (without descending into subqueries).
func selectHasAggregates(sel *sqlast.SelectStmt) bool {
	for _, item := range sel.Items {
		if exprHasAggregate(item.Expr) {
			return true
		}
	}
	if exprHasAggregate(sel.Having) {
		return true
	}
	for _, ob := range sel.OrderBy {
		if exprHasAggregate(ob.Expr) {
			return true
		}
	}
	return false
}

func exprHasAggregate(x sqlast.Expr) bool {
	if x == nil {
		return false
	}
	switch t := x.(type) {
	case *sqlast.FuncCall:
		if sqlast.IsAggregate(t.Name) {
			return true
		}
		for _, a := range t.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	case *sqlast.Binary:
		return exprHasAggregate(t.L) || exprHasAggregate(t.R)
	case *sqlast.Unary:
		return exprHasAggregate(t.X)
	case *sqlast.Case:
		if exprHasAggregate(t.Operand) || exprHasAggregate(t.Else) {
			return true
		}
		for _, w := range t.Whens {
			if exprHasAggregate(w.Cond) || exprHasAggregate(w.Result) {
				return true
			}
		}
	case *sqlast.Cast:
		return exprHasAggregate(t.X)
	case *sqlast.Between:
		return exprHasAggregate(t.X) || exprHasAggregate(t.Lo) || exprHasAggregate(t.Hi)
	case *sqlast.IsNull:
		return exprHasAggregate(t.X)
	}
	return false
}
