package engine_test

// Cross-parallelism determinism: the engine's partitioned parallel grouped
// aggregation and set operations must be byte-identical to serial
// execution, including row order, float accumulation, and the ops counter.

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/engine"
)

// parallelismQueries exercises every parallelized engine path (grouped
// aggregation with few and many groups, HAVING, DISTINCT aggregates,
// expression group keys, DISTINCT, UNION/INTERSECT/EXCEPT with and without
// ALL, ORDER BY before and after set operations) over inputs large enough
// to cross the engine's parallel threshold.
var parallelismQueries = []string{
	"SELECT kind_id , COUNT(*) , AVG( production_year ) , MIN( title ) , MAX( production_year ) FROM title GROUP BY kind_id ORDER BY kind_id ASC",
	"SELECT production_year , COUNT(*) , SUM( kind_id ) FROM title GROUP BY production_year ORDER BY production_year ASC",
	"SELECT production_year , COUNT(*) FROM title GROUP BY production_year HAVING COUNT(*) > 3 ORDER BY COUNT(*) DESC , production_year ASC",
	"SELECT COUNT( DISTINCT production_year ) , STDEV( production_year ) , VAR( kind_id ) FROM title",
	"SELECT production_year > 1980 , COUNT(*) FROM title GROUP BY production_year > 1980 ORDER BY COUNT(*) ASC",
	"SELECT DISTINCT production_year FROM title ORDER BY production_year DESC",
	"SELECT movie_id FROM movie_companies UNION SELECT movie_id FROM movie_keyword ORDER BY movie_id ASC",
	"SELECT movie_id FROM movie_companies UNION ALL SELECT movie_id FROM movie_keyword",
	"SELECT movie_id FROM movie_companies INTERSECT SELECT movie_id FROM movie_keyword ORDER BY movie_id DESC",
	"SELECT movie_id FROM movie_companies EXCEPT SELECT movie_id FROM movie_keyword ORDER BY movie_id ASC",
	"SELECT t.kind_id , COUNT(*) FROM title AS t JOIN movie_companies AS mc ON t.id = mc.movie_id WHERE t.production_year > 1950 GROUP BY t.kind_id ORDER BY t.kind_id ASC",
}

func relFingerprint(rel *engine.Relation) string {
	var b strings.Builder
	for _, c := range rel.Cols {
		b.WriteString(c.Qualifier)
		b.WriteByte('.')
		b.WriteString(c.Name)
		b.WriteByte('|')
	}
	b.WriteByte('\n')
	for _, row := range rel.Rows {
		b.WriteString(engine.Key(row))
		b.WriteByte('\n')
	}
	return b.String()
}

func TestEngineParallelismDoesNotChangeResults(t *testing.T) {
	db := datagen.Instance(catalog.IMDB(), datagen.Config{Seed: 21, Rows: 2500})
	for _, sql := range parallelismQueries {
		serial := engine.New(db)
		serial.Parallel = 1
		wantRel, err := serial.QuerySQL(sql)
		if err != nil {
			t.Fatalf("serial %q: %v", sql, err)
		}
		parallel := engine.New(db)
		parallel.Parallel = 8
		gotRel, err := parallel.QuerySQL(sql)
		if err != nil {
			t.Fatalf("parallel %q: %v", sql, err)
		}
		want, got := relFingerprint(wantRel), relFingerprint(gotRel)
		if want != got {
			t.Errorf("parallel execution changed output of %q:\nserial rows=%d parallel rows=%d",
				sql, len(wantRel.Rows), len(gotRel.Rows))
		}
		if serial.Ops() != parallel.Ops() {
			t.Errorf("ops counter depends on parallelism for %q: serial=%d parallel=%d",
				sql, serial.Ops(), parallel.Ops())
		}
	}
}

// The parallel paths must also agree with plain default construction
// (Parallel = 0), which callers like the equivalence checker rely on.
func TestEngineDefaultMatchesExplicitSerial(t *testing.T) {
	db := datagen.Instance(catalog.IMDB(), datagen.Config{Seed: 33, Rows: 1200})
	for _, sql := range parallelismQueries {
		def, err := engine.New(db).QuerySQL(sql)
		if err != nil {
			t.Fatalf("default %q: %v", sql, err)
		}
		e := engine.New(db)
		e.Parallel = 1
		serial, err := e.QuerySQL(sql)
		if err != nil {
			t.Fatalf("serial %q: %v", sql, err)
		}
		if relFingerprint(def) != relFingerprint(serial) {
			t.Errorf("default construction differs from Parallel=1 for %q", sql)
		}
	}
}
