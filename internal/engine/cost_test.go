package engine

import (
	"testing"

	"repro/internal/sqlparse"
)

func estimate(t *testing.T, m *CostModel, sql string) float64 {
	t.Helper()
	stmt, err := sqlparse.ParseStatement(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return m.EstimateCost(stmt)
}

func TestCostOrdering(t *testing.T) {
	m := NewCostModel(SDSSStats())
	cheap := estimate(t, m, "SELECT plate FROM PlateX WHERE plate = 1000")
	medium := estimate(t, m, "SELECT plate FROM SpecObj WHERE z > 0.5")
	expensive := estimate(t, m, "SELECT s.plate FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid")
	brutal := estimate(t, m, "SELECT s.plate FROM SpecObj AS s JOIN PhotoObj AS p ON s.z > p.ra")
	if !(cheap < medium && medium < expensive && expensive < brutal) {
		t.Errorf("cost ordering violated: %g %g %g %g", cheap, medium, expensive, brutal)
	}
}

func TestCostPredicatesReduceDownstreamWork(t *testing.T) {
	m := NewCostModel(SDSSStats())
	// An aggregation over a filtered input costs less than over raw input.
	unfiltered := estimate(t, m, "SELECT plate , COUNT(*) FROM SpecObj GROUP BY plate")
	filtered := estimate(t, m, "SELECT plate , COUNT(*) FROM SpecObj WHERE plate = 100 GROUP BY plate")
	if filtered >= unfiltered {
		t.Errorf("filter did not reduce cost: %g >= %g", filtered, unfiltered)
	}
}

func TestCostSubqueriesCharge(t *testing.T) {
	m := NewCostModel(SDSSStats())
	flat := estimate(t, m, "SELECT plate FROM SpecObj WHERE z > 0.5")
	nested := estimate(t, m, "SELECT plate FROM SpecObj WHERE bestobjid IN ( SELECT objid FROM PhotoObj )")
	if nested <= flat {
		t.Errorf("subquery did not add cost: %g <= %g", nested, flat)
	}
	correlated := estimate(t, m, "SELECT plate FROM SpecObj AS s WHERE EXISTS ( SELECT 1 FROM PhotoObj AS p WHERE p.objid = s.bestobjid )")
	if correlated <= flat {
		t.Errorf("correlated subquery did not add cost: %g <= %g", correlated, flat)
	}
}

func TestCostNonSelectStatements(t *testing.T) {
	m := NewCostModel(SDSSStats())
	if c := estimate(t, m, "DECLARE @x INT"); c > 1000 {
		t.Errorf("DECLARE cost = %g, want small", c)
	}
	if c := estimate(t, m, "DROP TABLE PlateX"); c > 1000 {
		t.Errorf("DROP cost = %g, want small", c)
	}
	if c := estimate(t, m, "CREATE TABLE t AS SELECT plate FROM SpecObj"); c < 1000 {
		t.Errorf("CTAS cost = %g, want scan-sized", c)
	}
}

func TestElapsedMSDeterministicNoise(t *testing.T) {
	m := NewCostModel(SDSSStats())
	m.Noise = 0.15
	stmt, _ := sqlparse.ParseStatement("SELECT plate FROM SpecObj WHERE z > 0.5")
	a := m.ElapsedMS(stmt, "q1")
	b := m.ElapsedMS(stmt, "q1")
	c := m.ElapsedMS(stmt, "q2")
	if a != b {
		t.Error("noise not deterministic for same key")
	}
	if a == c {
		t.Log("different keys gave equal noise (possible, unlikely)")
	}
	if a <= 0 {
		t.Errorf("elapsed = %g, want positive", a)
	}
}

func TestStatsDefaults(t *testing.T) {
	s := NewStats()
	if s.Rows("unknown") != 1000 {
		t.Errorf("default rows = %d", s.Rows("unknown"))
	}
	s.Set("dbo.Foo", 42)
	if s.Rows("foo") != 42 || s.Rows("DBO.FOO") != 42 {
		t.Error("qualified stats lookup failed")
	}
}

func TestCTECostCharged(t *testing.T) {
	m := NewCostModel(SDSSStats())
	flat := estimate(t, m, "SELECT plate FROM PlateX")
	cte := estimate(t, m, "WITH big AS ( SELECT plate FROM SpecObj ) SELECT plate FROM big")
	if cte <= flat {
		t.Errorf("CTE body not charged: %g <= %g", cte, flat)
	}
}
