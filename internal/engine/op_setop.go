package engine

// distinctOp and setOpOp: duplicate elimination and UNION/INTERSECT/EXCEPT.
//
// Both are keyed by the canonical row key (Key/rowKey). Key computation is
// embarrassingly parallel and splits into contiguous chunks under
// Engine.Parallel. The set operations additionally partition rows by a
// deterministic hash of their key: every occurrence of a key lands in
// exactly one partition, so each partition can run the sequential
// first-occurrence algorithm independently over its own rows (in ascending
// input order) and the merged result — kept row indexes, sorted — is
// byte-identical to the sequential output at any parallelism.

import (
	"context"
	"sort"

	"repro/internal/runner"
)

// rowKeysOf computes the canonical key of every row, fanning out across
// contiguous chunks when the engine has an intra-query worker budget.
func (e *Engine) rowKeysOf(rows [][]Value) []string {
	n := len(rows)
	keys := make([]string, n)
	fill := func(lo, hi int) {
		var buf []byte
		for i := lo; i < hi; i++ {
			buf = rowKey(buf[:0], rows[i])
			keys[i] = string(buf)
		}
	}
	workers := e.intraQueryWorkers(n)
	if workers <= 1 {
		fill(0, n)
		return keys
	}
	bounds := chunkBounds(n, workers)
	runner.Map(context.Background(), workers, bounds, func(_ context.Context, _ int, b [2]int) (struct{}, error) {
		fill(b[0], b[1])
		return struct{}{}, nil
	})
	return keys
}

// partitionOf assigns a key to one of n partitions via FNV-1a (a fixed hash:
// partitioning must not depend on Go's per-process map seed).
func partitionOf(key string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % uint32(n))
}

// ---------------------------------------------------------------------------
// distinctOp

type distinctOp struct {
	oe    *opEnv
	child operator

	rel    *Relation
	cursor relCursor
}

func (o *distinctOp) columns() []Col           { return o.rel.Cols }
func (o *distinctOp) hiddenCols() int          { return o.child.hiddenCols() }
func (o *distinctOp) materialized() *Relation  { return o.rel }
func (o *distinctOp) next() ([][]Value, error) { return o.cursor.next(), nil }
func (o *distinctOp) close()                   { o.child.close() }

func (o *distinctOp) open() error {
	in, err := drainInput(o.child)
	if err != nil {
		return err
	}
	// Deduplicate on the visible columns only; hidden order keys ride along
	// on the surviving rows.
	vis := len(in.Cols) - o.child.hiddenCols()
	keyed := in.Rows
	if vis < len(in.Cols) {
		keyed = make([][]Value, len(in.Rows))
		for i, row := range in.Rows {
			keyed[i] = row[:vis]
		}
	}
	keys := o.oe.e.rowKeysOf(keyed)
	seen := make(map[string]bool, len(keys))
	out := &Relation{Cols: in.Cols}
	for i, row := range in.Rows {
		if seen[keys[i]] {
			continue
		}
		seen[keys[i]] = true
		out.Rows = append(out.Rows, row)
	}
	o.rel = out
	o.cursor = relCursor{rows: out.Rows}
	return nil
}

// ---------------------------------------------------------------------------
// setOpOp

type setOpOp struct {
	oe   *opEnv
	node *SetOpNode
	left operator

	rel    *Relation
	cursor relCursor
}

func (o *setOpOp) columns() []Col           { return o.rel.Cols }
func (o *setOpOp) hiddenCols() int          { return 0 }
func (o *setOpOp) materialized() *Relation  { return o.rel }
func (o *setOpOp) next() ([][]Value, error) { return o.cursor.next(), nil }
func (o *setOpOp) close()                   { o.left.close() }

func (o *setOpOp) open() error {
	left, err := drainInput(o.left)
	if err != nil {
		return err
	}
	// Drop the left block's hidden order keys before combining; post-set-op
	// ORDER BY resolves against the visible output columns instead.
	if h := o.left.hiddenCols(); h > 0 {
		vis := len(left.Cols) - h
		pruned := &Relation{Cols: left.Cols[:vis], Rows: make([][]Value, len(left.Rows))}
		for i, row := range left.Rows {
			pruned.Rows[i] = row[:vis:vis]
		}
		left = pruned
	}
	// The right side is a full query block executing in the *parent* CTE
	// scope (the left block's WITH bindings are not visible to it).
	right, err := o.oe.e.execPlan(o.node.Right, o.oe.outer, o.oe.parentCTEs)
	if err != nil {
		return err
	}
	rel, err := o.oe.e.combineSetOp(left, right, o.node.Op, o.node.All)
	if err != nil {
		return err
	}
	o.rel = rel
	o.cursor = relCursor{rows: rel.Rows}
	return nil
}

// combineSetOp applies a set operation to two materialized relations.
func (e *Engine) combineSetOp(a, b *Relation, op string, all bool) (*Relation, error) {
	if len(a.Cols) != len(b.Cols) {
		return nil, execErrorf("%s operands have different widths (%d vs %d)", op, len(a.Cols), len(b.Cols))
	}
	switch op {
	case "UNION", "INTERSECT", "EXCEPT":
	default:
		return nil, execErrorf("unknown set operation %q", op)
	}
	out := &Relation{Cols: a.Cols}
	if op == "UNION" && all {
		out.Rows = append(append(make([][]Value, 0, len(a.Rows)+len(b.Rows)), a.Rows...), b.Rows...)
		return out, nil
	}
	e.ops.Add(int64(len(a.Rows) + len(b.Rows)))
	keysA := e.rowKeysOf(a.Rows)
	keysB := e.rowKeysOf(b.Rows)
	if workers := e.intraQueryWorkers(len(a.Rows) + len(b.Rows)); workers > 1 {
		return e.setOpPartitioned(a, b, keysA, keysB, op, all, out, workers), nil
	}
	setOpKeep(keysA, keysB, op, all, indexSeq{n: len(keysA)}, indexSeq{n: len(keysB)}, func(side, i int) {
		if side == 0 {
			out.Rows = append(out.Rows, a.Rows[i])
		} else {
			out.Rows = append(out.Rows, b.Rows[i])
		}
	})
	return out, nil
}

// indexSeq enumerates either all of [0, n) (when idx is nil, the serial
// path) or an explicit ascending subset (a partition's rows).
type indexSeq struct {
	n   int
	idx []int
}

func (s indexSeq) len() int {
	if s.idx != nil {
		return len(s.idx)
	}
	return s.n
}

func (s indexSeq) at(j int) int {
	if s.idx != nil {
		return s.idx[j]
	}
	return j
}

// setOpKeep runs the sequential first-occurrence algorithm over precomputed
// row keys and reports kept rows as (side, index) pairs in emission order:
// all of side 0 (a) before any of side 1 (b) — b rows are only ever kept by
// UNION. The index sequences select which rows each call owns, which is how
// the partitioned path reuses the algorithm verbatim.
func setOpKeep(keysA, keysB []string, op string, all bool, seqA, seqB indexSeq, emit func(side, i int)) {
	if op == "UNION" {
		seen := make(map[string]bool, seqA.len()+seqB.len())
		for j := 0; j < seqA.len(); j++ {
			i := seqA.at(j)
			if !seen[keysA[i]] {
				seen[keysA[i]] = true
				emit(0, i)
			}
		}
		for j := 0; j < seqB.len(); j++ {
			i := seqB.at(j)
			if !seen[keysB[i]] {
				seen[keysB[i]] = true
				emit(1, i)
			}
		}
		return
	}
	inB := make(map[string]int, seqB.len())
	for j := 0; j < seqB.len(); j++ {
		inB[keysB[seqB.at(j)]]++
	}
	var seen map[string]bool
	if !all {
		seen = make(map[string]bool)
	}
	for j := 0; j < seqA.len(); j++ {
		i := seqA.at(j)
		k := keysA[i]
		if op == "INTERSECT" {
			if inB[k] > 0 {
				if all {
					inB[k]--
					emit(0, i)
				} else if !seen[k] {
					seen[k] = true
					emit(0, i)
				}
			}
			continue
		}
		// EXCEPT
		if all {
			if inB[k] > 0 {
				inB[k]--
				continue
			}
			emit(0, i)
		} else if inB[k] == 0 && !seen[k] {
			seen[k] = true
			emit(0, i)
		}
	}
}

// setOpPartitioned splits both operands' rows by a deterministic hash of
// their key, runs the sequential algorithm per partition (each partition
// owns every occurrence of its keys, in ascending input order), and merges
// the kept rows back into global input order — byte-identical to the
// serial path.
func (e *Engine) setOpPartitioned(a, b *Relation, keysA, keysB []string, op string, all bool, out *Relation, workers int) *Relation {
	type part struct {
		aIdx, bIdx []int
	}
	parts := make([]part, workers)
	for i, k := range keysA {
		p := partitionOf(k, workers)
		parts[p].aIdx = append(parts[p].aIdx, i)
	}
	for i, k := range keysB {
		p := partitionOf(k, workers)
		parts[p].bIdx = append(parts[p].bIdx, i)
	}
	// Kept rows are reported as global indexes, b rows offset by len(a.Rows),
	// so one ascending sort restores the serial emission order.
	na := len(a.Rows)
	kept, _ := runner.Map(context.Background(), workers, parts, func(_ context.Context, _ int, p part) ([]int, error) {
		var keep []int
		setOpKeep(keysA, keysB, op, all, indexSeq{idx: p.aIdx}, indexSeq{idx: p.bIdx}, func(side, i int) {
			if side == 0 {
				keep = append(keep, i)
			} else {
				keep = append(keep, na+i)
			}
		})
		return keep, nil
	})
	var total int
	for _, k := range kept {
		total += len(k)
	}
	merged := make([]int, 0, total)
	for _, k := range kept {
		merged = append(merged, k...)
	}
	sort.Ints(merged)
	out.Rows = make([][]Value, len(merged))
	for j, i := range merged {
		if i < na {
			out.Rows[j] = a.Rows[i]
		} else {
			out.Rows[j] = b.Rows[i-na]
		}
	}
	return out
}
