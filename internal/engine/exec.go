package engine

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

// Engine executes SELECT statements against a DB.
type Engine struct {
	DB *DB
	// MaxRows caps intermediate result sizes; exceeding it aborts the query.
	// Zero means the default of 1,000,000.
	MaxRows int
	// ForceNestedLoop disables the hash-join fast path (used by the join
	// strategy ablation benchmark).
	ForceNestedLoop bool
	// DisablePlanner turns off implicit-join planning, so comma joins fall
	// back to cross products with a post-filter (ablation).
	DisablePlanner bool

	ops int64
}

// New returns an Engine over the database.
func New(db *DB) *Engine { return &Engine{DB: db} }

// Ops returns the number of row operations performed since construction;
// a cheap proxy for work done.
func (e *Engine) Ops() int64 { return e.ops }

func (e *Engine) maxRows() int {
	if e.MaxRows > 0 {
		return e.MaxRows
	}
	return 1_000_000
}

// QuerySQL parses and executes a SELECT statement.
func (e *Engine) QuerySQL(sql string) (*Relation, error) {
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	return e.Query(sel)
}

// Query executes a SELECT statement.
func (e *Engine) Query(sel *sqlast.SelectStmt) (*Relation, error) {
	return e.execSelect(sel, nil, nil)
}

// env is the row-evaluation context: the current relation and row, an
// optional outer context for correlated subqueries, and visible CTEs.
type env struct {
	rel   *Relation
	row   []Value
	outer *env
	ctes  map[string]*Relation
}

func (v *env) lookupCTE(name string) (*Relation, bool) {
	for cur := v; cur != nil; cur = cur.outer {
		if cur.ctes != nil {
			if rel, ok := cur.ctes[strings.ToLower(name)]; ok {
				return rel, true
			}
		}
	}
	return nil, false
}

func (e *Engine) execSelect(sel *sqlast.SelectStmt, outer *env, parentCTEs map[string]*Relation) (*Relation, error) {
	ctes := make(map[string]*Relation, len(sel.With))
	for k, v := range parentCTEs {
		ctes[k] = v
	}
	for _, cte := range sel.With {
		rel, err := e.execSelect(cte.Select, outer, ctes)
		if err != nil {
			return nil, err
		}
		if len(cte.Columns) > 0 {
			if len(cte.Columns) != len(rel.Cols) {
				return nil, execErrorf("CTE %s declares %d columns but its query yields %d",
					cte.Name, len(cte.Columns), len(rel.Cols))
			}
			renamed := &Relation{Rows: rel.Rows}
			for i, c := range rel.Cols {
				renamed.Cols = append(renamed.Cols, Col{Name: cte.Columns[i], Type: c.Type})
			}
			rel = renamed
		}
		ctes[strings.ToLower(cte.Name)] = rel
	}

	src, residual, err := e.planImplicitJoins(sel, outer, ctes)
	if err != nil {
		return nil, err
	}

	scanEnv := &env{rel: src, outer: outer, ctes: ctes}

	// Residual WHERE (join-planning may have consumed some conjuncts).
	if residual != nil {
		filtered := &Relation{Cols: src.Cols}
		for _, row := range src.Rows {
			e.ops++
			scanEnv.row = row
			v, err := e.evalExpr(residual, scanEnv)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				filtered.Rows = append(filtered.Rows, row)
			}
		}
		src = filtered
		scanEnv.rel = src
	}

	hasAgg := selectHasAggregates(sel)
	var out *Relation
	var sortKeys [][]Value
	if len(sel.GroupBy) > 0 || hasAgg {
		out, sortKeys, err = e.execGrouped(sel, src, scanEnv)
	} else {
		out, sortKeys, err = e.execProjection(sel, src, scanEnv)
	}
	if err != nil {
		return nil, err
	}

	if sel.Distinct {
		out, sortKeys = distinct(out, sortKeys)
	}

	if sel.SetOp != nil {
		right, err := e.execSelect(sel.SetOp.Right, outer, parentCTEs)
		if err != nil {
			return nil, err
		}
		out, err = combine(out, right, sel.SetOp.Op, sel.SetOp.All)
		if err != nil {
			return nil, err
		}
		sortKeys = nil
	}

	if len(sel.OrderBy) > 0 {
		if sortKeys == nil {
			// Post set-op ordering: resolve keys against output columns.
			sortKeys = make([][]Value, len(out.Rows))
			oenv := &env{rel: out, ctes: ctes}
			for i, row := range out.Rows {
				oenv.row = row
				keys := make([]Value, len(sel.OrderBy))
				for j, ob := range sel.OrderBy {
					v, err := e.evalExpr(ob.Expr, oenv)
					if err != nil {
						return nil, err
					}
					keys[j] = v
				}
				sortKeys[i] = keys
			}
		}
		out = sortRelation(out, sortKeys, sel.OrderBy)
	}

	// TOP / LIMIT / OFFSET
	offset := 0
	if sel.Offset != nil {
		offset = *sel.Offset
	}
	limit := -1
	if sel.Limit != nil {
		limit = *sel.Limit
	}
	if sel.Top != nil && (limit < 0 || *sel.Top < limit) {
		limit = *sel.Top
	}
	if offset > 0 {
		if offset >= len(out.Rows) {
			out.Rows = nil
		} else {
			out.Rows = out.Rows[offset:]
		}
	}
	if limit >= 0 && limit < len(out.Rows) {
		out.Rows = out.Rows[:limit]
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// FROM clause

func (e *Engine) buildFrom(refs []sqlast.TableRef, outer *env, ctes map[string]*Relation) (*Relation, error) {
	if len(refs) == 0 {
		// SELECT without FROM: one empty row.
		return &Relation{Rows: [][]Value{{}}}, nil
	}
	var acc *Relation
	for _, ref := range refs {
		rel, err := e.evalTableRef(ref, outer, ctes)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = rel
			continue
		}
		acc, err = e.crossProduct(acc, rel)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

func (e *Engine) evalTableRef(ref sqlast.TableRef, outer *env, ctes map[string]*Relation) (*Relation, error) {
	switch t := ref.(type) {
	case *sqlast.TableName:
		qualifier := t.Alias
		if qualifier == "" {
			qualifier = catalog.BareName(t.Name)
		}
		probe := &env{ctes: ctes, outer: outer}
		if rel, ok := probe.lookupCTE(catalog.BareName(t.Name)); ok {
			return requalify(rel, qualifier), nil
		}
		rel, ok := e.DB.Table(t.Name)
		if !ok {
			return nil, execErrorf("table %q does not exist", t.Name)
		}
		return requalify(rel, qualifier), nil
	case *sqlast.SubqueryTable:
		rel, err := e.execSelect(t.Select, outer, ctes)
		if err != nil {
			return nil, err
		}
		return requalify(rel, t.Alias), nil
	case *sqlast.Join:
		left, err := e.evalTableRef(t.Left, outer, ctes)
		if err != nil {
			return nil, err
		}
		right, err := e.evalTableRef(t.Right, outer, ctes)
		if err != nil {
			return nil, err
		}
		return e.join(left, right, t, outer, ctes)
	default:
		return nil, execErrorf("unsupported table reference %T", ref)
	}
}

// requalify stamps every column of rel with the given qualifier.
func requalify(rel *Relation, qualifier string) *Relation {
	out := &Relation{Rows: rel.Rows}
	out.Cols = make([]Col, len(rel.Cols))
	for i, c := range rel.Cols {
		out.Cols[i] = Col{Qualifier: qualifier, Name: c.Name, Type: c.Type}
	}
	return out
}

func (e *Engine) crossProduct(a, b *Relation) (*Relation, error) {
	out := &Relation{Cols: append(append([]Col{}, a.Cols...), b.Cols...)}
	n := len(a.Rows) * len(b.Rows)
	if n > e.maxRows() {
		return nil, execErrorf("cross product exceeds row cap (%d x %d)", len(a.Rows), len(b.Rows))
	}
	arena := newRowArena(len(out.Cols))
	out.Rows = make([][]Value, 0, n)
	for _, ra := range a.Rows {
		for _, rb := range b.Rows {
			e.ops++
			out.Rows = append(out.Rows, arena.concat(ra, rb))
		}
	}
	return out, nil
}

func concatRows(a, b []Value) []Value {
	row := make([]Value, 0, len(a)+len(b))
	row = append(row, a...)
	return append(row, b...)
}

// rowArena block-allocates fixed-width result rows, replacing the per-row
// make in the join and cross-product inner loops with one allocation per
// block. Rows handed out are capacity-clipped so an append on one can never
// bleed into the next.
type rowArena struct {
	width int
	buf   []Value
}

const arenaBlockRows = 256

func newRowArena(width int) *rowArena { return &rowArena{width: width} }

func (a *rowArena) next() []Value {
	if a.width == 0 {
		return nil
	}
	if cap(a.buf)-len(a.buf) < a.width {
		a.buf = make([]Value, 0, a.width*arenaBlockRows)
	}
	n := len(a.buf)
	a.buf = a.buf[:n+a.width]
	return a.buf[n : n+a.width : n+a.width]
}

// concat returns l++r as an arena-backed row.
func (a *rowArena) concat(l, r []Value) []Value {
	row := a.next()
	copy(row, l)
	copy(row[len(l):], r)
	return row
}

// join executes an explicit join. Equi-joins on plain column references use
// a hash join unless ForceNestedLoop is set; everything else is nested-loop.
func (e *Engine) join(left, right *Relation, j *sqlast.Join, outer *env, ctes map[string]*Relation) (*Relation, error) {
	out := &Relation{Cols: append(append([]Col{}, left.Cols...), right.Cols...)}
	if j.Type == "CROSS" || j.On == nil {
		return e.crossProduct(left, right)
	}

	if li, ri, ok := equiJoinCols(j.On, left, right); ok && !e.ForceNestedLoop {
		return e.hashJoin(left, right, li, ri, j.Type, out)
	}

	// Nested-loop join with outer-join padding. The ON predicate evaluates
	// against one scratch row reused across candidates (expression
	// evaluation only reads the current row); only matching rows are
	// materialized, from the arena.
	joined := &env{rel: out, outer: outer, ctes: ctes}
	rightMatched := make([]bool, len(right.Rows))
	arena := newRowArena(len(out.Cols))
	scratch := make([]Value, len(left.Cols)+len(right.Cols))
	rightNulls := nullRow(len(right.Cols))
	for _, lr := range left.Rows {
		matched := false
		copy(scratch, lr)
		for ri, rr := range right.Rows {
			e.ops++
			copy(scratch[len(lr):], rr)
			joined.row = scratch
			v, err := e.evalExpr(j.On, joined)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				matched = true
				rightMatched[ri] = true
				out.Rows = append(out.Rows, arena.concat(lr, rr))
				if len(out.Rows) > e.maxRows() {
					return nil, execErrorf("join result exceeds row cap")
				}
			}
		}
		if !matched && (j.Type == "LEFT" || j.Type == "FULL") {
			out.Rows = append(out.Rows, arena.concat(lr, rightNulls))
		}
	}
	if j.Type == "RIGHT" || j.Type == "FULL" {
		leftNulls := nullRow(len(left.Cols))
		for ri, rr := range right.Rows {
			if !rightMatched[ri] {
				out.Rows = append(out.Rows, arena.concat(leftNulls, rr))
			}
		}
	}
	return out, nil
}

// equiJoinCols recognizes ON a.x = b.y patterns and returns the column
// indexes on each side.
func equiJoinCols(on sqlast.Expr, left, right *Relation) (li, ri int, ok bool) {
	bin, isBin := on.(*sqlast.Binary)
	if !isBin || bin.Op != "=" {
		return 0, 0, false
	}
	lc, lok := bin.L.(*sqlast.ColumnRef)
	rc, rok := bin.R.(*sqlast.ColumnRef)
	if !lok || !rok {
		return 0, 0, false
	}
	tryResolve := func(rel *Relation, cr *sqlast.ColumnRef) (int, bool) {
		idx := rel.find(cr.Table, cr.Name)
		if len(idx) == 1 {
			return idx[0], true
		}
		return 0, false
	}
	if i, ok1 := tryResolve(left, lc); ok1 {
		if jx, ok2 := tryResolve(right, rc); ok2 {
			return i, jx, true
		}
	}
	if i, ok1 := tryResolve(left, rc); ok1 {
		if jx, ok2 := tryResolve(right, lc); ok2 {
			return i, jx, true
		}
	}
	return 0, 0, false
}

func (e *Engine) hashJoin(left, right *Relation, li, ri int, joinType string, out *Relation) (*Relation, error) {
	index := make(map[string][]int, len(right.Rows))
	for idx, rr := range right.Rows {
		e.ops++
		v := rr[ri]
		if v.Null {
			continue
		}
		k := v.String()
		index[k] = append(index[k], idx)
	}
	rightMatched := make([]bool, len(right.Rows))
	arena := newRowArena(len(out.Cols))
	rightNulls := nullRow(len(right.Cols))
	out.Rows = make([][]Value, 0, len(left.Rows))
	for _, lr := range left.Rows {
		e.ops++
		v := lr[li]
		matched := false
		if !v.Null {
			for _, idx := range index[v.String()] {
				// Guard against hash collisions across kinds via Equal.
				if Equal(v, right.Rows[idx][ri]) {
					matched = true
					rightMatched[idx] = true
					out.Rows = append(out.Rows, arena.concat(lr, right.Rows[idx]))
					if len(out.Rows) > e.maxRows() {
						return nil, execErrorf("join result exceeds row cap")
					}
				}
			}
		}
		if !matched && (joinType == "LEFT" || joinType == "FULL") {
			out.Rows = append(out.Rows, arena.concat(lr, rightNulls))
		}
	}
	if joinType == "RIGHT" || joinType == "FULL" {
		leftNulls := nullRow(len(left.Cols))
		for idx, rr := range right.Rows {
			if !rightMatched[idx] {
				out.Rows = append(out.Rows, arena.concat(leftNulls, rr))
			}
		}
	}
	return out, nil
}

func nullRow(n int) []Value {
	row := make([]Value, n)
	for i := range row {
		row[i] = NullValue
	}
	return row
}

// ---------------------------------------------------------------------------
// Projection

// execProjection projects each source row, also computing ORDER BY sort keys
// in the same context (so keys may reference non-projected columns).
func (e *Engine) execProjection(sel *sqlast.SelectStmt, src *Relation, scanEnv *env) (*Relation, [][]Value, error) {
	cols, starIdx, err := projectionHeader(sel, src)
	if err != nil {
		return nil, nil, err
	}
	out := &Relation{Cols: cols, Rows: make([][]Value, 0, len(src.Rows))}
	// Every output row is exactly len(cols) wide (star expansions are
	// counted in the header), so one backing allocation serves all rows;
	// the exact capacity guarantees appends never reallocate mid-build.
	backing := make([]Value, 0, len(src.Rows)*len(cols))
	var sortKeys [][]Value
	var keyBacking []Value
	nOrder := len(sel.OrderBy)
	if nOrder > 0 {
		sortKeys = make([][]Value, 0, len(src.Rows))
		keyBacking = make([]Value, 0, len(src.Rows)*nOrder)
	}
	for _, row := range src.Rows {
		e.ops++
		scanEnv.row = row
		base := len(backing)
		for itemIdx, item := range sel.Items {
			if idxs, isStar := starIdx[itemIdx]; isStar {
				for _, i := range idxs {
					backing = append(backing, row[i])
				}
				continue
			}
			v, err := e.evalExpr(item.Expr, scanEnv)
			if err != nil {
				return nil, nil, err
			}
			backing = append(backing, v)
		}
		outRow := backing[base:len(backing):len(backing)]
		out.Rows = append(out.Rows, outRow)
		if nOrder > 0 {
			kbase := len(keyBacking)
			keyBacking = keyBacking[:kbase+nOrder]
			keys := keyBacking[kbase : kbase+nOrder : kbase+nOrder]
			if err := e.orderKeys(sel, scanEnv, out.Cols, outRow, keys); err != nil {
				return nil, nil, err
			}
			sortKeys = append(sortKeys, keys)
		}
	}
	return out, sortKeys, nil
}

// projectionHeader computes output columns and, for star items, the source
// column indexes they expand to.
func projectionHeader(sel *sqlast.SelectStmt, src *Relation) ([]Col, map[int][]int, error) {
	var cols []Col
	starIdx := make(map[int][]int)
	for itemIdx, item := range sel.Items {
		if star, ok := item.Expr.(*sqlast.Star); ok {
			var idxs []int
			for i, c := range src.Cols {
				if star.Table == "" || strings.EqualFold(c.Qualifier, star.Table) {
					idxs = append(idxs, i)
					cols = append(cols, Col{Name: c.Name, Type: c.Type})
				}
			}
			if len(idxs) == 0 && star.Table != "" {
				return nil, nil, execErrorf("star qualifier %q matches no table", star.Table)
			}
			starIdx[itemIdx] = idxs
			continue
		}
		name := item.Alias
		if name == "" {
			if cr, ok := item.Expr.(*sqlast.ColumnRef); ok {
				name = cr.Name
			} else {
				name = "expr"
			}
		}
		cols = append(cols, Col{Name: name, Type: catalog.TypeAny})
	}
	return cols, starIdx, nil
}

// orderKeys evaluates ORDER BY expressions for one row into keys (len
// len(sel.OrderBy), caller-allocated). Projection aliases take precedence
// over source columns.
func (e *Engine) orderKeys(sel *sqlast.SelectStmt, scanEnv *env, outCols []Col, outRow []Value, keys []Value) error {
	for j, ob := range sel.OrderBy {
		if cr, ok := ob.Expr.(*sqlast.ColumnRef); ok && cr.Table == "" {
			found := false
			for i, c := range outCols {
				if strings.EqualFold(c.Name, cr.Name) {
					keys[j] = outRow[i]
					found = true
					break
				}
			}
			if found {
				continue
			}
		}
		v, err := e.evalExpr(ob.Expr, scanEnv)
		if err != nil {
			return err
		}
		keys[j] = v
	}
	return nil
}

func distinct(rel *Relation, sortKeys [][]Value) (*Relation, [][]Value) {
	seen := make(map[string]bool, len(rel.Rows))
	out := &Relation{Cols: rel.Cols}
	var keys [][]Value
	for i, row := range rel.Rows {
		k := Key(row)
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Rows = append(out.Rows, row)
		if sortKeys != nil {
			keys = append(keys, sortKeys[i])
		}
	}
	if sortKeys == nil {
		return out, nil
	}
	return out, keys
}

func combine(a, b *Relation, op string, all bool) (*Relation, error) {
	if len(a.Cols) != len(b.Cols) {
		return nil, execErrorf("%s operands have different widths (%d vs %d)", op, len(a.Cols), len(b.Cols))
	}
	out := &Relation{Cols: a.Cols}
	switch op {
	case "UNION":
		rows := append(append([][]Value{}, a.Rows...), b.Rows...)
		if all {
			out.Rows = rows
			return out, nil
		}
		seen := map[string]bool{}
		for _, row := range rows {
			k := Key(row)
			if !seen[k] {
				seen[k] = true
				out.Rows = append(out.Rows, row)
			}
		}
	case "INTERSECT":
		inB := map[string]int{}
		for _, row := range b.Rows {
			inB[Key(row)]++
		}
		seen := map[string]bool{}
		for _, row := range a.Rows {
			k := Key(row)
			if inB[k] > 0 {
				if all {
					inB[k]--
					out.Rows = append(out.Rows, row)
				} else if !seen[k] {
					seen[k] = true
					out.Rows = append(out.Rows, row)
				}
			}
		}
	case "EXCEPT":
		inB := map[string]int{}
		for _, row := range b.Rows {
			inB[Key(row)]++
		}
		seen := map[string]bool{}
		for _, row := range a.Rows {
			k := Key(row)
			if all {
				if inB[k] > 0 {
					inB[k]--
					continue
				}
				out.Rows = append(out.Rows, row)
			} else if inB[k] == 0 && !seen[k] {
				seen[k] = true
				out.Rows = append(out.Rows, row)
			}
		}
	default:
		return nil, execErrorf("unknown set operation %q", op)
	}
	return out, nil
}

func sortRelation(rel *Relation, keys [][]Value, order []sqlast.OrderItem) *Relation {
	idx := make([]int, len(rel.Rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for j := range order {
			c := Compare(ka[j], kb[j])
			if c == 0 {
				continue
			}
			if order[j].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	out := &Relation{Cols: rel.Cols, Rows: make([][]Value, len(rel.Rows))}
	for i, j := range idx {
		out.Rows[i] = rel.Rows[j]
	}
	return out
}

// ---------------------------------------------------------------------------
// Scalar expression evaluation

func (e *Engine) evalExpr(x sqlast.Expr, ev *env) (Value, error) {
	switch t := x.(type) {
	case *sqlast.ColumnRef:
		return e.resolveColumn(t, ev)
	case *sqlast.Literal:
		return literalValue(t)
	case *sqlast.VarRef:
		return NullValue, nil // variables are opaque in this executor
	case *sqlast.Binary:
		return e.evalBinary(t, ev)
	case *sqlast.Unary:
		v, err := e.evalExpr(t.X, ev)
		if err != nil {
			return NullValue, err
		}
		switch t.Op {
		case "NOT":
			if v.Null {
				return NullValue, nil
			}
			return BoolVal(!v.Truthy()), nil
		case "-":
			if v.Null {
				return NullValue, nil
			}
			if v.Kind == catalog.TypeInt {
				return IntVal(-v.I), nil
			}
			return FloatVal(-v.AsFloat()), nil
		default:
			return v, nil
		}
	case *sqlast.FuncCall:
		return e.evalScalarFunc(t, ev)
	case *sqlast.Subquery:
		rel, err := e.execSelect(t.Select, ev, nil)
		if err != nil {
			return NullValue, err
		}
		if len(rel.Cols) != 1 {
			return NullValue, execErrorf("scalar subquery returns %d columns", len(rel.Cols))
		}
		switch len(rel.Rows) {
		case 0:
			return NullValue, nil
		case 1:
			return rel.Rows[0][0], nil
		default:
			return NullValue, execErrorf("scalar subquery returned %d rows", len(rel.Rows))
		}
	case *sqlast.In:
		return e.evalIn(t, ev)
	case *sqlast.Exists:
		rel, err := e.execSelect(t.Sub, ev, nil)
		if err != nil {
			return NullValue, err
		}
		res := len(rel.Rows) > 0
		if t.Not {
			res = !res
		}
		return BoolVal(res), nil
	case *sqlast.Between:
		v, err := e.evalExpr(t.X, ev)
		if err != nil {
			return NullValue, err
		}
		lo, err := e.evalExpr(t.Lo, ev)
		if err != nil {
			return NullValue, err
		}
		hi, err := e.evalExpr(t.Hi, ev)
		if err != nil {
			return NullValue, err
		}
		if v.Null || lo.Null || hi.Null {
			return NullValue, nil
		}
		res := Compare(v, lo) >= 0 && Compare(v, hi) <= 0
		if t.Not {
			res = !res
		}
		return BoolVal(res), nil
	case *sqlast.IsNull:
		v, err := e.evalExpr(t.X, ev)
		if err != nil {
			return NullValue, err
		}
		res := v.Null
		if t.Not {
			res = !res
		}
		return BoolVal(res), nil
	case *sqlast.Case:
		return e.evalCase(t, ev)
	case *sqlast.Cast:
		v, err := e.evalExpr(t.X, ev)
		if err != nil {
			return NullValue, err
		}
		return castValue(v, t.Type)
	case *sqlast.Star:
		return NullValue, execErrorf("* is not valid in a scalar context")
	default:
		return NullValue, execErrorf("unsupported expression %T", x)
	}
}

func (e *Engine) resolveColumn(cr *sqlast.ColumnRef, ev *env) (Value, error) {
	for cur := ev; cur != nil; cur = cur.outer {
		if cur.rel == nil {
			continue
		}
		idx := cur.rel.find(cr.Table, cr.Name)
		if len(idx) == 1 {
			if cur.row == nil {
				return NullValue, execErrorf("no current row for column %s", sqlast.PrintExpr(cr))
			}
			return cur.row[idx[0]], nil
		}
		if len(idx) > 1 {
			return NullValue, execErrorf("ambiguous column %s", sqlast.PrintExpr(cr))
		}
	}
	return NullValue, execErrorf("unknown column %s", sqlast.PrintExpr(cr))
}

func literalValue(l *sqlast.Literal) (Value, error) {
	switch l.Kind {
	case sqlast.LitNull:
		return NullValue, nil
	case sqlast.LitBool:
		return BoolVal(strings.EqualFold(l.Text, "TRUE")), nil
	case sqlast.LitString:
		return TextVal(l.Text), nil
	case sqlast.LitNumber:
		if !strings.ContainsAny(l.Text, ".eE") {
			if i, err := strconv.ParseInt(l.Text, 10, 64); err == nil {
				return IntVal(i), nil
			}
		}
		f, err := strconv.ParseFloat(l.Text, 64)
		if err != nil {
			return NullValue, execErrorf("bad numeric literal %q", l.Text)
		}
		return FloatVal(f), nil
	default:
		return NullValue, execErrorf("unknown literal kind")
	}
}

func (e *Engine) evalBinary(b *sqlast.Binary, ev *env) (Value, error) {
	switch b.Op {
	case "AND":
		l, err := e.evalExpr(b.L, ev)
		if err != nil {
			return NullValue, err
		}
		if !l.Null && !l.Truthy() {
			return BoolVal(false), nil
		}
		r, err := e.evalExpr(b.R, ev)
		if err != nil {
			return NullValue, err
		}
		if !r.Null && !r.Truthy() {
			return BoolVal(false), nil
		}
		if l.Null || r.Null {
			return NullValue, nil
		}
		return BoolVal(true), nil
	case "OR":
		l, err := e.evalExpr(b.L, ev)
		if err != nil {
			return NullValue, err
		}
		if l.Truthy() {
			return BoolVal(true), nil
		}
		r, err := e.evalExpr(b.R, ev)
		if err != nil {
			return NullValue, err
		}
		if r.Truthy() {
			return BoolVal(true), nil
		}
		if l.Null || r.Null {
			return NullValue, nil
		}
		return BoolVal(false), nil
	}
	l, err := e.evalExpr(b.L, ev)
	if err != nil {
		return NullValue, err
	}
	r, err := e.evalExpr(b.R, ev)
	if err != nil {
		return NullValue, err
	}
	switch b.Op {
	case "=", "<>", "<", ">", "<=", ">=":
		if l.Null || r.Null {
			return NullValue, nil
		}
		c := Compare(l, r)
		var res bool
		switch b.Op {
		case "=":
			res = c == 0
		case "<>":
			res = c != 0
		case "<":
			res = c < 0
		case ">":
			res = c > 0
		case "<=":
			res = c <= 0
		case ">=":
			res = c >= 0
		}
		return BoolVal(res), nil
	case "LIKE":
		if l.Null || r.Null {
			return NullValue, nil
		}
		return BoolVal(likeMatch(l.String(), r.String())), nil
	case "||":
		if l.Null || r.Null {
			return NullValue, nil
		}
		return TextVal(l.String() + r.String()), nil
	case "+", "-", "*", "/", "%":
		if l.Null || r.Null {
			return NullValue, nil
		}
		return arith(b.Op, l, r)
	default:
		return NullValue, execErrorf("unsupported operator %q", b.Op)
	}
}

func arith(op string, l, r Value) (Value, error) {
	if !l.IsNumeric() || !r.IsNumeric() {
		return NullValue, execErrorf("arithmetic %s on non-numeric operands", op)
	}
	if l.Kind == catalog.TypeInt && r.Kind == catalog.TypeInt && op != "/" {
		switch op {
		case "+":
			return IntVal(l.I + r.I), nil
		case "-":
			return IntVal(l.I - r.I), nil
		case "*":
			return IntVal(l.I * r.I), nil
		case "%":
			if r.I == 0 {
				return NullValue, nil
			}
			return IntVal(l.I % r.I), nil
		}
	}
	lf, rf := l.AsFloat(), r.AsFloat()
	switch op {
	case "+":
		return FloatVal(lf + rf), nil
	case "-":
		return FloatVal(lf - rf), nil
	case "*":
		return FloatVal(lf * rf), nil
	case "/":
		if rf == 0 {
			return NullValue, nil
		}
		return FloatVal(lf / rf), nil
	case "%":
		if rf == 0 {
			return NullValue, nil
		}
		return FloatVal(math.Mod(lf, rf)), nil
	}
	return NullValue, execErrorf("unknown arithmetic operator %q", op)
}

// likeMatch implements SQL LIKE with % and _ wildcards (case-insensitive,
// matching common collations in the source systems).
func likeMatch(s, pattern string) bool {
	s = strings.ToLower(s)
	pattern = strings.ToLower(pattern)
	return likeRec(s, pattern)
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

func (e *Engine) evalIn(in *sqlast.In, ev *env) (Value, error) {
	x, err := e.evalExpr(in.X, ev)
	if err != nil {
		return NullValue, err
	}
	if x.Null {
		return NullValue, nil
	}
	found := false
	if in.Sub != nil {
		rel, err := e.execSelect(in.Sub, ev, nil)
		if err != nil {
			return NullValue, err
		}
		if len(rel.Cols) != 1 {
			return NullValue, execErrorf("IN subquery returns %d columns", len(rel.Cols))
		}
		for _, row := range rel.Rows {
			e.ops++
			if Equal(x, row[0]) {
				found = true
				break
			}
		}
	} else {
		for _, item := range in.List {
			v, err := e.evalExpr(item, ev)
			if err != nil {
				return NullValue, err
			}
			if Equal(x, v) {
				found = true
				break
			}
		}
	}
	if in.Not {
		found = !found
	}
	return BoolVal(found), nil
}

func (e *Engine) evalCase(c *sqlast.Case, ev *env) (Value, error) {
	if c.Operand != nil {
		op, err := e.evalExpr(c.Operand, ev)
		if err != nil {
			return NullValue, err
		}
		for _, w := range c.Whens {
			cv, err := e.evalExpr(w.Cond, ev)
			if err != nil {
				return NullValue, err
			}
			if Equal(op, cv) {
				return e.evalExpr(w.Result, ev)
			}
		}
	} else {
		for _, w := range c.Whens {
			cv, err := e.evalExpr(w.Cond, ev)
			if err != nil {
				return NullValue, err
			}
			if cv.Truthy() {
				return e.evalExpr(w.Result, ev)
			}
		}
	}
	if c.Else != nil {
		return e.evalExpr(c.Else, ev)
	}
	return NullValue, nil
}

func (e *Engine) evalScalarFunc(fc *sqlast.FuncCall, ev *env) (Value, error) {
	name := strings.ToUpper(fc.Name)
	if sqlast.IsAggregate(name) {
		return NullValue, execErrorf("aggregate %s used outside grouping context", name)
	}
	// Scalar calls rarely exceed four arguments; a stack buffer avoids the
	// per-call slice allocation on the row-evaluation hot path.
	var argBuf [4]Value
	var args []Value
	if len(fc.Args) <= len(argBuf) {
		args = argBuf[:len(fc.Args)]
	} else {
		args = make([]Value, len(fc.Args))
	}
	for i, a := range fc.Args {
		v, err := e.evalExpr(a, ev)
		if err != nil {
			return NullValue, err
		}
		args[i] = v
	}
	need := func(n int) error {
		if len(args) != n {
			return execErrorf("%s expects %d argument(s), got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "ABS":
		if err := need(1); err != nil {
			return NullValue, err
		}
		if args[0].Null {
			return NullValue, nil
		}
		if args[0].Kind == catalog.TypeInt {
			if args[0].I < 0 {
				return IntVal(-args[0].I), nil
			}
			return args[0], nil
		}
		return FloatVal(math.Abs(args[0].AsFloat())), nil
	case "ROUND":
		if len(args) == 0 || args[0].Null {
			return NullValue, nil
		}
		return FloatVal(math.Round(args[0].AsFloat())), nil
	case "FLOOR":
		if err := need(1); err != nil {
			return NullValue, err
		}
		return FloatVal(math.Floor(args[0].AsFloat())), nil
	case "CEILING", "CEIL":
		if err := need(1); err != nil {
			return NullValue, err
		}
		return FloatVal(math.Ceil(args[0].AsFloat())), nil
	case "SQRT":
		if err := need(1); err != nil {
			return NullValue, err
		}
		return FloatVal(math.Sqrt(args[0].AsFloat())), nil
	case "POWER":
		if err := need(2); err != nil {
			return NullValue, err
		}
		return FloatVal(math.Pow(args[0].AsFloat(), args[1].AsFloat())), nil
	case "LOG":
		if err := need(1); err != nil {
			return NullValue, err
		}
		return FloatVal(math.Log(args[0].AsFloat())), nil
	case "UPPER":
		if err := need(1); err != nil {
			return NullValue, err
		}
		return TextVal(strings.ToUpper(args[0].String())), nil
	case "LOWER":
		if err := need(1); err != nil {
			return NullValue, err
		}
		return TextVal(strings.ToLower(args[0].String())), nil
	case "LEN", "LENGTH":
		if err := need(1); err != nil {
			return NullValue, err
		}
		return IntVal(int64(len(args[0].String()))), nil
	case "CONCAT":
		var b strings.Builder
		for _, a := range args {
			if !a.Null {
				b.WriteString(a.String())
			}
		}
		return TextVal(b.String()), nil
	case "COALESCE":
		for _, a := range args {
			if !a.Null {
				return a, nil
			}
		}
		return NullValue, nil
	default:
		// Unknown (e.g. domain-specific SDSS) functions evaluate to a
		// deterministic numeric digest of their arguments so queries using
		// them remain executable.
		var h int64 = 1469598103934665603
		for _, a := range args {
			for _, c := range a.String() {
				h ^= int64(c)
				h *= 1099511628211
			}
		}
		return FloatVal(float64(h%1000) / 10), nil
	}
}

func castValue(v Value, typ string) (Value, error) {
	if v.Null {
		return NullValue, nil
	}
	u := strings.ToUpper(typ)
	switch {
	case strings.HasPrefix(u, "INT") || strings.HasPrefix(u, "BIGINT") || strings.HasPrefix(u, "SMALLINT"):
		switch v.Kind {
		case catalog.TypeInt:
			return v, nil
		case catalog.TypeFloat:
			return IntVal(int64(v.F)), nil
		case catalog.TypeText:
			i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
			if err != nil {
				return NullValue, nil
			}
			return IntVal(i), nil
		case catalog.TypeBool:
			if v.B {
				return IntVal(1), nil
			}
			return IntVal(0), nil
		}
	case strings.HasPrefix(u, "FLOAT") || strings.HasPrefix(u, "REAL") || strings.HasPrefix(u, "DECIMAL") || strings.HasPrefix(u, "NUMERIC"):
		switch v.Kind {
		case catalog.TypeFloat:
			return v, nil
		case catalog.TypeInt:
			return FloatVal(float64(v.I)), nil
		case catalog.TypeText:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
			if err != nil {
				return NullValue, nil
			}
			return FloatVal(f), nil
		}
	case strings.HasPrefix(u, "VARCHAR") || strings.HasPrefix(u, "CHAR") || strings.HasPrefix(u, "TEXT") || strings.HasPrefix(u, "NVARCHAR"):
		return TextVal(v.String()), nil
	}
	return v, nil
}

// selectHasAggregates reports whether the SELECT uses aggregate functions in
// its projection, HAVING, or ORDER BY (without descending into subqueries).
func selectHasAggregates(sel *sqlast.SelectStmt) bool {
	for _, item := range sel.Items {
		if exprHasAggregate(item.Expr) {
			return true
		}
	}
	if exprHasAggregate(sel.Having) {
		return true
	}
	for _, ob := range sel.OrderBy {
		if exprHasAggregate(ob.Expr) {
			return true
		}
	}
	return false
}

func exprHasAggregate(x sqlast.Expr) bool {
	if x == nil {
		return false
	}
	switch t := x.(type) {
	case *sqlast.FuncCall:
		if sqlast.IsAggregate(t.Name) {
			return true
		}
		for _, a := range t.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	case *sqlast.Binary:
		return exprHasAggregate(t.L) || exprHasAggregate(t.R)
	case *sqlast.Unary:
		return exprHasAggregate(t.X)
	case *sqlast.Case:
		if exprHasAggregate(t.Operand) || exprHasAggregate(t.Else) {
			return true
		}
		for _, w := range t.Whens {
			if exprHasAggregate(w.Cond) || exprHasAggregate(w.Result) {
				return true
			}
		}
	case *sqlast.Cast:
		return exprHasAggregate(t.X)
	case *sqlast.Between:
		return exprHasAggregate(t.X) || exprHasAggregate(t.Lo) || exprHasAggregate(t.Hi)
	case *sqlast.IsNull:
		return exprHasAggregate(t.X)
	}
	return false
}
