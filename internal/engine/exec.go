package engine

// The executor: Engine holds the database and execution knobs, lowers each
// SELECT into a cached logical plan (plan.go), instantiates the physical
// operator tree (operator.go and op_*.go), and drains it into a materialized
// Relation. Scalar expression evaluation lives in eval.go; grouped
// evaluation in agg.go.

import (
	"context"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

// Engine executes SELECT statements against a DB. An Engine is safe for
// concurrent use by multiple goroutines (it never mutates base tables), and
// additionally parallelizes inside single queries when Parallel > 1.
type Engine struct {
	DB *DB
	// MaxRows caps intermediate result sizes; exceeding it aborts the query.
	// Zero means the default of 1,000,000.
	MaxRows int
	// ForceNestedLoop disables the hash-join fast path (used by the join
	// strategy ablation benchmark).
	ForceNestedLoop bool
	// DisablePlanner turns off implicit-join planning, so comma joins fall
	// back to cross products with a post-filter (ablation). It also disables
	// the plan optimizer regardless of Optimize — pushdown would otherwise
	// undo the ablation. Set it before the first query: logical plans are
	// cached per statement.
	DisablePlanner bool
	// Parallel bounds the intra-query worker pool used by grouped
	// aggregation and set operations. 0 or 1 executes serially; results are
	// byte-identical at any setting.
	Parallel int
	// Optimize runs every plan through the rewrite pipeline in optimize.go
	// (predicate pushdown, join-order and join-strategy hints). New sets it;
	// clearing it (or engine construction by struct literal) executes the
	// raw BuildPlan lowering. Results are byte-identical either way — the
	// flag exists for ablation and differential testing.
	Optimize bool

	ops atomic.Int64

	planMu sync.RWMutex
	plans  map[planKey]*Plan
}

// planKey is the plan cache key: the statement plus every plan-shaping
// engine setting, so toggling a flag between queries can never serve a plan
// compiled under different settings.
type planKey struct {
	sel            *sqlast.SelectStmt
	disablePlanner bool
	optimize       bool
}

// New returns an Engine over the database, with the plan optimizer on.
func New(db *DB) *Engine { return &Engine{DB: db, Optimize: true} }

// Ops returns the number of row operations performed since construction;
// a cheap proxy for work done. The count does not depend on Parallel.
func (e *Engine) Ops() int64 { return e.ops.Load() }

func (e *Engine) maxRows() int {
	if e.MaxRows > 0 {
		return e.MaxRows
	}
	return 1_000_000
}

// QuerySQL parses and executes a SELECT statement.
func (e *Engine) QuerySQL(sql string) (*Relation, error) {
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	return e.Query(sel)
}

// Query executes a SELECT statement.
func (e *Engine) Query(sel *sqlast.SelectStmt) (*Relation, error) {
	return e.execSelect(sel, nil, nil)
}

// QueryCtx is Query wrapped in an "engine.exec" span when a tracer rides the
// context: the span records whether the logical plan came from the cache,
// the row operations the query performed (an ops-counter delta, approximate
// when other queries run concurrently on the same engine), and the result
// row count. Without a tracer it is exactly Query.
func (e *Engine) QueryCtx(ctx context.Context, sel *sqlast.SelectStmt) (*Relation, error) {
	_, span := obs.Start(ctx, "engine.exec")
	if span == nil {
		return e.Query(sel)
	}
	p, cached := e.planForHit(sel)
	span.SetBool("plan_cached", cached)
	span.SetString("plan", p.String())
	opsBefore := e.ops.Load()
	rel, err := e.execPlan(p, nil, nil)
	span.SetInt("row_ops", e.ops.Load()-opsBefore)
	if err == nil {
		span.SetInt("rows", int64(len(rel.Rows)))
	}
	span.EndErr(err)
	return rel, err
}

// PlanOf returns the (cached) logical plan the engine would execute for the
// statement — the EXPLAIN entry point.
func (e *Engine) PlanOf(sel *sqlast.SelectStmt) *Plan { return e.planFor(sel) }

// maxCachedPlans bounds the per-Engine plan cache. Long-lived engines that
// parse fresh SQL per call (every statement is a new AST pointer) would
// otherwise grow the cache — and GC scan work — without limit; on overflow
// the whole map is dropped, which at worst costs a cheap re-plan.
const maxCachedPlans = 4096

// planFor returns the cached logical plan for a statement, building it on
// first use. Plans are immutable and shared across concurrent executions
// (correlated subqueries re-plan per statement pointer, not per row).
func (e *Engine) planFor(sel *sqlast.SelectStmt) *Plan {
	p, _ := e.planForHit(sel)
	return p
}

// planForHit is planFor additionally reporting whether the plan was served
// from the cache — the plan_cached attribute on engine.exec spans.
func (e *Engine) planForHit(sel *sqlast.SelectStmt) (*Plan, bool) {
	key := planKey{sel: sel, disablePlanner: e.DisablePlanner, optimize: e.Optimize}
	e.planMu.RLock()
	p := e.plans[key]
	e.planMu.RUnlock()
	if p != nil {
		return p, true
	}
	p = BuildPlan(sel, PlanConfig{DisablePlanner: e.DisablePlanner, Optimize: e.Optimize})
	if e.Optimize && !e.DisablePlanner {
		// DisablePlanner wins: the ablation means "naive cross products with a
		// post-filter", and letting the optimizer push the filter back down
		// would quietly undo it.
		p = e.optimizePlan(p)
	}
	e.planMu.Lock()
	if e.plans == nil || len(e.plans) >= maxCachedPlans {
		e.plans = make(map[planKey]*Plan)
	}
	hit := false
	if cached, ok := e.plans[key]; ok {
		p, hit = cached, true
	} else {
		e.plans[key] = p
	}
	e.planMu.Unlock()
	return p, hit
}

// Explain returns the logical plan of a statement before and after
// optimization, rendered by the Describe printer. The after plan is what
// the engine would execute with Optimize set; the before plan is the raw
// BuildPlan lowering.
func (e *Engine) Explain(sel *sqlast.SelectStmt) (before, after string) {
	p := BuildPlan(sel, PlanConfig{DisablePlanner: e.DisablePlanner})
	return p.String(), e.optimizePlan(p).String()
}

// env is the row-evaluation context: the current relation and row, an
// optional outer context for correlated subqueries, and visible CTEs.
type env struct {
	rel   *Relation
	row   []Value
	outer *env
	ctes  map[string]*Relation
}

func (v *env) lookupCTE(name string) (*Relation, bool) {
	for cur := v; cur != nil; cur = cur.outer {
		if cur.ctes != nil {
			if rel, ok := cur.ctes[strings.ToLower(name)]; ok {
				return rel, true
			}
		}
	}
	return nil, false
}

// execSelect plans (or reuses the plan of) one query block and executes it.
func (e *Engine) execSelect(sel *sqlast.SelectStmt, outer *env, parentCTEs map[string]*Relation) (*Relation, error) {
	return e.execPlan(e.planFor(sel), outer, parentCTEs)
}

// execPlan executes a logical plan: CTEs are materialized first (each
// seeing the bindings before it), then the operator tree runs.
func (e *Engine) execPlan(p *Plan, outer *env, parentCTEs map[string]*Relation) (*Relation, error) {
	ctes := make(map[string]*Relation, len(parentCTEs)+len(p.CTEs))
	for k, v := range parentCTEs {
		ctes[k] = v
	}
	for _, cte := range p.CTEs {
		rel, err := e.execPlan(cte.Plan, outer, ctes)
		if err != nil {
			return nil, err
		}
		if len(cte.Columns) > 0 {
			if len(cte.Columns) != len(rel.Cols) {
				return nil, execErrorf("CTE %s declares %d columns but its query yields %d",
					cte.Name, len(cte.Columns), len(rel.Cols))
			}
			renamed := &Relation{Rows: rel.Rows}
			for i, c := range rel.Cols {
				renamed.Cols = append(renamed.Cols, Col{Name: cte.Columns[i], Type: c.Type})
			}
			rel = renamed
		}
		ctes[strings.ToLower(cte.Name)] = rel
	}

	oe := &opEnv{e: e, outer: outer, ctes: ctes, parentCTEs: parentCTEs}
	op := buildOperator(p.Root, oe)
	defer op.close()
	rel, err := drainInput(op)
	if err != nil {
		return nil, err
	}
	if op.hiddenCols() != 0 {
		// Cannot happen: every Project/Group with ORDER BY keys sits under a
		// SortNode or SetOpNode that consumes them.
		return nil, execErrorf("internal: hidden columns escaped the plan root")
	}
	return rel, nil
}

// buildOperator instantiates the physical operator for a logical node.
func buildOperator(n PlanNode, oe *opEnv) operator {
	switch t := n.(type) {
	case *OneRowNode:
		return &oneRowOp{}
	case *ScanNode:
		return &scanOp{oe: oe, node: t}
	case *SubqueryScanNode:
		return &subqueryScanOp{oe: oe, node: t}
	case *JoinNode:
		if t.Stream {
			return &streamJoinOp{oe: oe, node: t,
				left:  buildOperator(t.Left, oe),
				right: buildOperator(t.Right, oe)}
		}
		return &joinOp{oe: oe, node: t,
			left:  buildOperator(t.Left, oe),
			right: buildOperator(t.Right, oe)}
	case *CrossNode:
		return &crossOp{oe: oe, inputs: buildOperators(t.Inputs, oe)}
	case *ImplicitJoinNode:
		return &implicitJoinOp{oe: oe, node: t, inputs: buildOperators(t.Inputs, oe)}
	case *FilterNode:
		return &filterOp{oe: oe, node: t, child: buildOperator(t.Input, oe)}
	case *ProjectNode:
		return &projectOp{oe: oe, node: t, child: buildOperator(t.Input, oe)}
	case *GroupNode:
		return &groupOp{oe: oe, node: t, child: buildOperator(t.Input, oe)}
	case *DistinctNode:
		return &distinctOp{oe: oe, child: buildOperator(t.Input, oe)}
	case *SetOpNode:
		return &setOpOp{oe: oe, node: t, left: buildOperator(t.Left, oe)}
	case *SortNode:
		return &sortOp{oe: oe, node: t, child: buildOperator(t.Input, oe)}
	case *LimitNode:
		return &limitOp{node: t, child: buildOperator(t.Input, oe)}
	case *unsupportedRefNode:
		return &errorOp{err: execErrorf("unsupported table reference %T", t.ref)}
	default:
		return &errorOp{err: execErrorf("unsupported plan node %T", n)}
	}
}

func buildOperators(nodes []PlanNode, oe *opEnv) []operator {
	ops := make([]operator, len(nodes))
	for i, n := range nodes {
		ops[i] = buildOperator(n, oe)
	}
	return ops
}

// requalify stamps every column of rel with the given qualifier.
func requalify(rel *Relation, qualifier string) *Relation {
	out := &Relation{Rows: rel.Rows}
	out.Cols = make([]Col, len(rel.Cols))
	for i, c := range rel.Cols {
		out.Cols[i] = Col{Qualifier: qualifier, Name: c.Name, Type: c.Type}
	}
	return out
}

// sortRelation stably orders rel's rows by the per-row key vectors.
func sortRelation(rel *Relation, keys [][]Value, order []sqlast.OrderItem) *Relation {
	idx := make([]int, len(rel.Rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for j := range order {
			c := Compare(ka[j], kb[j])
			if c == 0 {
				continue
			}
			if order[j].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	out := &Relation{Cols: rel.Cols, Rows: make([][]Value, len(rel.Rows))}
	for i, j := range idx {
		out.Rows[i] = rel.Rows[j]
	}
	return out
}
