package engine_test

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/sqlparse"
)

func jobDB() *engine.DB {
	return datagen.Instance(catalog.IMDB(), datagen.Config{Seed: 42, Rows: 40})
}

// A JOB-style implicit join over several relations must run without
// materializing the cross product.
func TestPlannerHandlesImplicitJoins(t *testing.T) {
	e := engine.New(jobDB())
	e.MaxRows = 200_000 // would be exceeded instantly by a cross product
	sql := "SELECT MIN( t.title ) FROM title AS t , movie_companies AS mc , company_name AS cn , kind_type AS kt " +
		"WHERE t.id = mc.movie_id AND mc.company_id = cn.id AND t.kind_id = kt.id AND t.production_year > 1950"
	if _, err := e.QuerySQL(sql); err != nil {
		t.Fatalf("planned query failed: %v", err)
	}
}

// Planned and unplanned execution agree on small inputs.
func TestPlannerMatchesCrossProductSemantics(t *testing.T) {
	db := datagen.Instance(catalog.IMDB(), datagen.Config{Seed: 7, Rows: 12})
	sql := "SELECT t.id , cn.name FROM title AS t , movie_companies AS mc , company_name AS cn " +
		"WHERE t.id = mc.movie_id AND mc.company_id = cn.id AND t.production_year > 1960"
	planned, err := engine.New(db).QuerySQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	e2 := engine.New(db)
	e2.DisablePlanner = true
	unplanned, err := e2.QuerySQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !engine.EqualRelations(planned, unplanned, false) {
		t.Errorf("planner changed semantics: %d vs %d rows", len(planned.Rows), len(unplanned.Rows))
	}
}

// The planner must also agree when forced onto nested-loop equi-joins.
func TestPlannerNestedLoopAblation(t *testing.T) {
	db := datagen.Instance(catalog.IMDB(), datagen.Config{Seed: 9, Rows: 15})
	sql := "SELECT t.id FROM title AS t , movie_companies AS mc WHERE t.id = mc.movie_id"
	fast, err := engine.New(db).QuerySQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	e2 := engine.New(db)
	e2.ForceNestedLoop = true
	slow, err := e2.QuerySQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !engine.EqualRelations(fast, slow, false) {
		t.Error("nested-loop planning changed semantics")
	}
}

// Residual predicates (non-join conjuncts) still filter.
func TestPlannerKeepsResidualFilters(t *testing.T) {
	db := jobDB()
	e := engine.New(db)
	all, err := e.QuerySQL("SELECT t.id FROM title AS t , kind_type AS kt WHERE t.kind_id = kt.id")
	if err != nil {
		t.Fatal(err)
	}
	some, err := e.QuerySQL("SELECT t.id FROM title AS t , kind_type AS kt WHERE t.kind_id = kt.id AND t.production_year > 1975")
	if err != nil {
		t.Fatal(err)
	}
	if len(some.Rows) >= len(all.Rows) {
		t.Errorf("residual filter had no effect: %d >= %d", len(some.Rows), len(all.Rows))
	}
}

// The logical plan mirrors the paper pipeline: scan → join → filter →
// group → distinct → set-op → sort → limit.
func TestLogicalPlanShape(t *testing.T) {
	sel, err := sqlparse.ParseSelect(
		"SELECT kind_id , COUNT(*) FROM title WHERE production_year > 1950 " +
			"GROUP BY kind_id HAVING COUNT(*) > 2 ORDER BY kind_id ASC LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	plan := engine.New(jobDB()).PlanOf(sel)
	got := plan.String()
	for _, line := range []string{"Limit", "Sort", "GroupAggregate", "Filter", "Scan title"} {
		if !strings.Contains(got, line) {
			t.Errorf("plan missing %q:\n%s", line, got)
		}
	}
	// Node order: limit above sort above group above filter above scan.
	order := []string{"Limit", "Sort", "GroupAggregate", "Filter", "Scan"}
	last := -1
	for _, label := range order {
		i := strings.Index(got, label)
		if i < last {
			t.Fatalf("plan nodes out of order (%s):\n%s", label, got)
		}
		last = i
	}

	sel, err = sqlparse.ParseSelect(
		"SELECT id FROM title UNION SELECT movie_id FROM movie_companies ORDER BY id DESC")
	if err != nil {
		t.Fatal(err)
	}
	got = engine.New(jobDB()).PlanOf(sel).String()
	for _, line := range []string{"Sort", "UNION", "Project"} {
		if !strings.Contains(got, line) {
			t.Errorf("set-op plan missing %q:\n%s", line, got)
		}
	}
	if strings.Index(got, "Sort") > strings.Index(got, "UNION") {
		t.Errorf("ORDER BY after a set operation must sort above the set op:\n%s", got)
	}

	// Comma joins plan as an implicit-join node carrying the WHERE clause;
	// the greedy ordering happens at execution.
	sel, err = sqlparse.ParseSelect(
		"SELECT t.id FROM title AS t , movie_companies AS mc WHERE t.id = mc.movie_id")
	if err != nil {
		t.Fatal(err)
	}
	got = engine.New(jobDB()).PlanOf(sel).String()
	if !strings.Contains(got, "ImplicitJoin (2 inputs)") {
		t.Errorf("comma join did not plan as ImplicitJoin:\n%s", got)
	}
}

// Disconnected relations (no join predicate) still cross-product.
func TestPlannerFallsBackToCross(t *testing.T) {
	db := datagen.Instance(catalog.IMDB(), datagen.Config{Seed: 3, Rows: 5})
	e := engine.New(db)
	rel, err := e.QuerySQL("SELECT t.id FROM title AS t , keyword AS k WHERE t.production_year > 0 AND k.keyword LIKE '%a%'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) == 0 {
		t.Log("cross product yielded zero rows (acceptable if filters pruned everything)")
	}
}
