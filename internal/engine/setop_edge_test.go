package engine

// Set-operation edge cases, asserted identical at parallelism 1 and 8 (the
// parallel threshold is forced down so the partitioned implementations run
// even on these small handcrafted inputs).

import (
	"strings"
	"testing"

	"repro/internal/catalog"
)

// setOpDB builds two tables with overlapping values, duplicates, and NULL
// rows on both sides.
func setOpDB() *DB {
	schema := catalog.NewSchema("setops")
	schema.Add(catalog.T("a", "x", catalog.TypeInt, "y", catalog.TypeText))
	schema.Add(catalog.T("b", "x", catalog.TypeInt, "y", catalog.TypeText))
	db := NewDB(schema)
	cols := []Col{{Name: "x", Type: catalog.TypeInt}, {Name: "y", Type: catalog.TypeText}}
	db.Put("a", &Relation{Cols: cols, Rows: [][]Value{
		{IntVal(1), TextVal("one")},
		{NullValue, TextVal("null-x")},
		{IntVal(2), TextVal("two")},
		{IntVal(2), TextVal("two")}, // duplicate
		{NullValue, NullValue},      // all-NULL row
		{IntVal(3), TextVal("three")},
		{NullValue, NullValue}, // duplicate all-NULL row
	}})
	db.Put("b", &Relation{Cols: cols, Rows: [][]Value{
		{IntVal(2), TextVal("two")},
		{NullValue, NullValue}, // all-NULL row on the right too
		{IntVal(4), TextVal("four")},
		{NullValue, TextVal("null-x")},
	}})
	return db
}

// forceParallelThreshold lowers the parallel cutoff for the duration of a
// test so tiny inputs exercise the partitioned implementations.
func forceParallelThreshold(t *testing.T) {
	t.Helper()
	old := minParallelRows
	minParallelRows = 1
	t.Cleanup(func() { minParallelRows = old })
}

// bothParallelisms runs the query at parallel 1 and 8 and asserts identical
// results before returning the rows.
func bothParallelisms(t *testing.T, db *DB, sql string) *Relation {
	t.Helper()
	serial := New(db)
	serial.Parallel = 1
	want, err := serial.QuerySQL(sql)
	if err != nil {
		t.Fatalf("serial %q: %v", sql, err)
	}
	par := New(db)
	par.Parallel = 8
	got, err := par.QuerySQL(sql)
	if err != nil {
		t.Fatalf("parallel %q: %v", sql, err)
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("%q: serial %d rows, parallel %d rows", sql, len(want.Rows), len(got.Rows))
	}
	for i := range want.Rows {
		if Key(want.Rows[i]) != Key(got.Rows[i]) {
			t.Fatalf("%q: row %d differs: serial %q parallel %q",
				sql, i, Key(want.Rows[i]), Key(got.Rows[i]))
		}
	}
	return want
}

func keyedRows(rel *Relation) []string {
	out := make([]string, len(rel.Rows))
	for i, row := range rel.Rows {
		out[i] = strings.ReplaceAll(Key(row), "\x00N", "NULL")
	}
	return out
}

func TestIntersectWithNullRows(t *testing.T) {
	forceParallelThreshold(t)
	rel := bothParallelisms(t, setOpDB(), "SELECT x , y FROM a INTERSECT SELECT x , y FROM b")
	got := keyedRows(rel)
	// Set operations treat NULLs as equal (unlike = comparison), so the
	// all-NULL row and (2, two) intersect; first-occurrence order of a.
	want := []string{"NULL\x1fnull-x", "2\x1ftwo", "NULL\x1fNULL"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("INTERSECT rows = %q, want %q", got, want)
	}
}

func TestExceptWithNullRows(t *testing.T) {
	forceParallelThreshold(t)
	rel := bothParallelisms(t, setOpDB(), "SELECT x , y FROM a EXCEPT SELECT x , y FROM b")
	got := keyedRows(rel)
	want := []string{"1\x1fone", "3\x1fthree"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("EXCEPT rows = %q, want %q", got, want)
	}
	// EXCEPT ALL consumes right-side multiplicities: the second all-NULL
	// left row survives because b has only one.
	rel = bothParallelisms(t, setOpDB(), "SELECT x , y FROM a EXCEPT ALL SELECT x , y FROM b")
	got = keyedRows(rel)
	want = []string{"1\x1fone", "2\x1ftwo", "3\x1fthree", "NULL\x1fNULL"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("EXCEPT ALL rows = %q, want %q", got, want)
	}
}

func TestUnionWithNullRowsDeduplicates(t *testing.T) {
	forceParallelThreshold(t)
	rel := bothParallelisms(t, setOpDB(), "SELECT x , y FROM a UNION SELECT x , y FROM b")
	got := keyedRows(rel)
	want := []string{
		"1\x1fone", "NULL\x1fnull-x", "2\x1ftwo", "NULL\x1fNULL", "3\x1fthree", "4\x1ffour",
	}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("UNION rows = %q, want %q", got, want)
	}
	rel = bothParallelisms(t, setOpDB(), "SELECT x , y FROM a UNION ALL SELECT x , y FROM b")
	if len(rel.Rows) != 11 {
		t.Errorf("UNION ALL rows = %d, want 11", len(rel.Rows))
	}
}

func TestUnionColumnCountMismatchErrors(t *testing.T) {
	forceParallelThreshold(t)
	db := setOpDB()
	for _, parallel := range []int{1, 8} {
		e := New(db)
		e.Parallel = parallel
		for _, sql := range []string{
			"SELECT x , y FROM a UNION SELECT x FROM b",
			"SELECT x FROM a INTERSECT SELECT x , y FROM b",
			"SELECT x , y FROM a EXCEPT SELECT y FROM b",
		} {
			_, err := e.QuerySQL(sql)
			if err == nil {
				t.Errorf("parallel=%d: %q should fail on width mismatch", parallel, sql)
				continue
			}
			if !strings.Contains(err.Error(), "different widths") {
				t.Errorf("parallel=%d: %q error = %v, want width mismatch", parallel, sql, err)
			}
		}
	}
}

func TestOrderByAfterSetOps(t *testing.T) {
	forceParallelThreshold(t)
	rel := bothParallelisms(t, setOpDB(),
		"SELECT x FROM a UNION SELECT x FROM b ORDER BY x DESC")
	got := keyedRows(rel)
	// NULLs sort first, so descending puts them last.
	want := []string{"4", "3", "2", "1", "NULL"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("ORDER BY after UNION = %q, want %q", got, want)
	}
	rel = bothParallelisms(t, setOpDB(),
		"SELECT x , y FROM a INTERSECT SELECT x , y FROM b ORDER BY y ASC")
	got = keyedRows(rel)
	want = []string{"NULL\x1fNULL", "NULL\x1fnull-x", "2\x1ftwo"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("ORDER BY after INTERSECT = %q, want %q", got, want)
	}
	// ORDER BY must resolve against the set operation's output columns, not
	// the left block's scan scope.
	e := New(setOpDB())
	if _, err := e.QuerySQL("SELECT x FROM a UNION SELECT x FROM b ORDER BY y ASC"); err == nil {
		t.Error("ORDER BY on a non-output column after UNION should fail")
	}
}

// LIKE regression: the recursive matcher was exponential on patterns
// alternating % with literals; the iterative matcher must answer instantly.
func TestLikePathologicalPattern(t *testing.T) {
	s := strings.Repeat("a", 64)
	evil := strings.Repeat("%a", 24) + "%b" // never matches
	if likeMatch(s, evil) {
		t.Error("pathological pattern should not match")
	}
	if !likeMatch(s+"b", evil) {
		t.Error("pathological pattern should match when the tail is present")
	}
	// Semantics spot-checks against the old matcher's behavior.
	cases := []struct {
		s, p string
		want bool
	}{
		{"", "", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "abc", true},
		{"abc", "ABC", true}, // case-insensitive
		{"abc", "a%", true},
		{"abc", "%c", true},
		{"abc", "%b%", true},
		{"abc", "_b_", true},
		{"abc", "a_c", true},
		{"abc", "a__d", false},
		{"abc", "%%%", true},
		{"aaa", "a%a", true},
		{"ab", "b%a", false},
		{"mississippi", "%iss%ppi", true},
		{"mississippi", "%iss%ippi%", true},
		{"mississippi", "m%i%s%p_", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}
