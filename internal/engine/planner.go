package engine

import (
	"strings"

	"repro/internal/sqlast"
)

// orderImplicitJoins joins a list of materialized comma-joined relations
// using the conjunctive WHERE clause: any equality conjunct that connects
// the joined prefix to an unjoined relation becomes a (hash-) join
// condition, in greedy left-deep order; the conjuncts not consumed are
// returned as the residual filter. Without this, a Join-Order-Benchmark-
// style query with a dozen comma-joined relations would materialize the
// full cross product.
//
// The ordering runs at execution time, not plan time, because it depends on
// each relation's resolved column set (subqueries and CTEs included). The
// logical plan carries it as an ImplicitJoinNode; DisablePlanner lowers to
// CrossNode + FilterNode instead (ablation).
func (e *Engine) orderImplicitJoins(rels []*Relation, where sqlast.Expr) (*Relation, sqlast.Expr, error) {
	conjuncts := splitConjuncts(where)
	used := make([]bool, len(conjuncts))
	joinedIdx := map[int]bool{0: true}
	acc := rels[0]

	for len(joinedIdx) < len(rels) {
		progressed := false
		for ci, c := range conjuncts {
			if used[ci] {
				continue
			}
			li, ri, target, ok := e.connects(c, acc, rels, joinedIdx)
			if !ok {
				continue
			}
			out := &Relation{Cols: append(append([]Col{}, acc.Cols...), rels[target].Cols...)}
			var err error
			if e.ForceNestedLoop {
				acc, err = e.nestedEquiJoin(acc, rels[target], li, ri, out)
			} else {
				acc, err = e.hashJoin(acc, rels[target], li, ri, "INNER", out)
			}
			if err != nil {
				return nil, nil, err
			}
			joinedIdx[target] = true
			used[ci] = true
			progressed = true
		}
		if !progressed {
			// No connecting predicate: cross product with the next unjoined
			// relation and keep going.
			for i, rel := range rels {
				if !joinedIdx[i] {
					var err error
					acc, err = e.crossProduct(acc, rel)
					if err != nil {
						return nil, nil, err
					}
					joinedIdx[i] = true
					break
				}
			}
		}
	}

	var residual []sqlast.Expr
	for ci, c := range conjuncts {
		if !used[ci] {
			residual = append(residual, c)
		}
	}
	return acc, sqlast.And(residual...), nil
}

// connects reports whether conjunct c is an equality joining a column of the
// accumulated relation to a column of exactly one unjoined relation.
func (e *Engine) connects(c sqlast.Expr, acc *Relation, rels []*Relation, joined map[int]bool) (accIdx, relIdx, target int, ok bool) {
	bin, isBin := c.(*sqlast.Binary)
	if !isBin || bin.Op != "=" {
		return 0, 0, 0, false
	}
	lc, lok := bin.L.(*sqlast.ColumnRef)
	rc, rok := bin.R.(*sqlast.ColumnRef)
	if !lok || !rok {
		return 0, 0, 0, false
	}
	try := func(a, b *sqlast.ColumnRef) (int, int, int, bool) {
		ai := acc.find(a.Table, a.Name)
		if len(ai) != 1 {
			return 0, 0, 0, false
		}
		for i, rel := range rels {
			if joined[i] {
				continue
			}
			bi := rel.find(b.Table, b.Name)
			if len(bi) == 1 {
				return ai[0], bi[0], i, true
			}
		}
		return 0, 0, 0, false
	}
	if ai, bi, t, ok := try(lc, rc); ok {
		return ai, bi, t, true
	}
	if ai, bi, t, ok := try(rc, lc); ok {
		return ai, bi, t, true
	}
	return 0, 0, 0, false
}

// nestedEquiJoin is the nested-loop inner equi-join used when hash joins are
// disabled for ablation.
func (e *Engine) nestedEquiJoin(left, right *Relation, li, ri int, out *Relation) (*Relation, error) {
	e.ops.Add(int64(len(left.Rows)) * int64(len(right.Rows)))
	for _, lr := range left.Rows {
		for _, rr := range right.Rows {
			if Equal(lr[li], rr[ri]) {
				out.Rows = append(out.Rows, concatRows(lr, rr))
				if len(out.Rows) > e.maxRows() {
					return nil, execErrorf("join result exceeds row cap")
				}
			}
		}
	}
	return out, nil
}

// splitConjuncts flattens a tree of ANDs into its conjuncts.
func splitConjuncts(e sqlast.Expr) []sqlast.Expr {
	bin, ok := e.(*sqlast.Binary)
	if ok && strings.EqualFold(bin.Op, "AND") {
		return append(splitConjuncts(bin.L), splitConjuncts(bin.R)...)
	}
	return []sqlast.Expr{e}
}
