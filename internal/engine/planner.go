package engine

import (
	"sort"
	"strings"

	"repro/internal/sqlast"
)

// Implicit-join ordering: comma-joined relations are joined left-deep using
// the equality conjuncts of the WHERE clause, and the conjuncts not consumed
// as join conditions are returned as the residual filter. Without this, a
// Join-Order-Benchmark-style query with a dozen comma-joined relations would
// materialize the full cross product.
//
// The ordering runs at execution time, not plan time, because it depends on
// each relation's resolved column set (subqueries and CTEs included). The
// logical plan carries it as an ImplicitJoinNode; DisablePlanner lowers to
// CrossNode + FilterNode instead (ablation).
//
// Sequence selection is split from execution: planBaselineJoins /
// planCostJoins simulate a greedy ordering over column headers and row
// counts only (no rows move), producing joinSteps that executeJoinSteps
// then runs. The cost-ordered path (orderImplicitJoinsCost, used when the
// optimizer marked the node) picks whichever sequence the actual input
// cardinalities favor and — when it differs from the default — restores the
// default sequence's column layout and row order via per-input provenance
// columns, so the result is byte-identical to the default path.

// joinStep is one step of a left-deep implicit-join sequence: join relation
// `target` into the accumulated prefix, either on conjunct `conj` with the
// given key column indexes, or (conj < 0) as a cross product.
type joinStep struct {
	target int
	conj   int
	li, ri int
}

// orderImplicitJoins joins the relations in the default greedy order.
func (e *Engine) orderImplicitJoins(rels []*Relation, where sqlast.Expr) (*Relation, sqlast.Expr, error) {
	conjuncts := splitConjuncts(where)
	steps, used := e.planBaselineJoins(rels, conjuncts)
	acc, err := e.executeJoinSteps(rels, 0, steps)
	if err != nil {
		return nil, nil, err
	}
	return acc, residualOf(conjuncts, used), nil
}

// minCostOrderRows is the smallest total input size (rows across all
// relations) for which the cost-ordered path considers deviating from the
// default sequence; below it the provenance bookkeeping dominates any win.
// A variable so tests can force the restore path on small inputs.
var minCostOrderRows = 2048

// orderImplicitJoinsCost is orderImplicitJoins with cost-based sequence
// selection. It compares the default greedy sequence against a
// cardinality-greedy one (start at the smallest relation, always join the
// smallest connectable relation next) and, when they differ, executes the
// cheaper sequence with per-input provenance columns and restores the
// default sequence's layout and order afterwards. Restricted to sequences
// with no cross-product steps on both sides: reordering cross products can
// move an intermediate past the row cap in one order but not the other,
// which would change error presence relative to the default path.
func (e *Engine) orderImplicitJoinsCost(rels []*Relation, where sqlast.Expr) (*Relation, sqlast.Expr, error) {
	conjuncts := splitConjuncts(where)
	baseSteps, baseUsed := e.planBaselineJoins(rels, conjuncts)

	runBaseline := func() (*Relation, sqlast.Expr, error) {
		acc, err := e.executeJoinSteps(rels, 0, baseSteps)
		if err != nil {
			return nil, nil, err
		}
		return acc, residualOf(conjuncts, baseUsed), nil
	}

	total := 0
	for _, r := range rels {
		total += len(r.Rows)
	}
	if total < minCostOrderRows || hasCrossStep(baseSteps) {
		return runBaseline()
	}
	// The two sequences consume different conjunct subsets as join
	// conditions, so the residual filters — and the rows they short-circuit
	// over — differ. With total conjuncts that is invisible (same final rows,
	// no errors possible); a conjunct that can error (a subquery, arithmetic
	// on text) could fire under one sequence only, so any such conjunct pins
	// the default sequence.
	var allCols []Col
	for _, r := range rels {
		allCols = append(allCols, r.Cols...)
	}
	for _, c := range conjuncts {
		if !safeTotalExpr(c, nil, false) {
			return runBaseline()
		}
		// Every ref must also resolve to exactly one column of the joined
		// header. A ref that errors (unknown/ambiguous) — or one that only
		// resolves in an outer scope — sits in a residual filter, and the two
		// sequences' residuals see different row sets and short-circuit
		// differently, so such a conjunct pins the default sequence. The
		// check runs over the actual input headers, so it is complete.
		if !refsResolve(c, allCols) {
			return runBaseline()
		}
	}
	costStart, costSteps, _ := e.planCostJoins(rels, conjuncts)
	if hasCrossStep(costSteps) ||
		(costStart == 0 && sameSequence(baseSteps, costSteps)) {
		return runBaseline()
	}

	// Execute the cost sequence over provenance-widened inputs; the widened
	// relations have identical headers plus one trailing \x00prov column, so
	// the re-simulation makes the same decisions with key indexes valid in
	// widened coordinates.
	wide := make([]*Relation, len(rels))
	for i, r := range rels {
		wide[i] = widenWithProvenance(r)
	}
	wideStart, wideSteps, wideUsed := e.planCostJoins(wide, conjuncts)
	acc, err := e.executeJoinSteps(wide, wideStart, wideSteps)
	if err != nil {
		return nil, nil, err
	}
	restored := e.restoreBaselineOrder(acc, rels, wideStart, wideSteps, baseSteps)
	return restored, residualOf(conjuncts, wideUsed), nil
}

// planBaselineJoins simulates the default greedy ordering — repeated passes
// over the conjuncts in order, joining every one that connects the
// accumulated prefix to an unjoined relation, cross-producting the first
// unjoined relation when a pass makes no progress — over column headers
// only. The returned steps replay exactly the joins the pre-split
// implementation executed inline.
func (e *Engine) planBaselineJoins(rels []*Relation, conjuncts []sqlast.Expr) ([]joinStep, []bool) {
	used := make([]bool, len(conjuncts))
	joined := map[int]bool{0: true}
	acc := &Relation{Cols: rels[0].Cols}
	var steps []joinStep
	for len(joined) < len(rels) {
		progressed := false
		for ci, c := range conjuncts {
			if used[ci] {
				continue
			}
			li, ri, target, ok := e.connects(c, acc, rels, joined)
			if !ok {
				continue
			}
			steps = append(steps, joinStep{target: target, conj: ci, li: li, ri: ri})
			acc = &Relation{Cols: append(append([]Col{}, acc.Cols...), rels[target].Cols...)}
			joined[target] = true
			used[ci] = true
			progressed = true
		}
		if !progressed {
			// No connecting predicate: cross product with the next unjoined
			// relation and keep going.
			for i := range rels {
				if !joined[i] {
					steps = append(steps, joinStep{target: i, conj: -1})
					acc = &Relation{Cols: append(append([]Col{}, acc.Cols...), rels[i].Cols...)}
					joined[i] = true
					break
				}
			}
		}
	}
	return steps, used
}

// planCostJoins simulates a cardinality-greedy ordering: start from the
// smallest relation, then repeatedly join the smallest connectable unjoined
// relation (falling back to a cross product with the smallest unjoined one).
// Ties break toward lower relation indexes and earlier conjuncts, keeping
// the sequence deterministic.
func (e *Engine) planCostJoins(rels []*Relation, conjuncts []sqlast.Expr) (int, []joinStep, []bool) {
	start := 0
	for i, r := range rels {
		if len(r.Rows) < len(rels[start].Rows) {
			start = i
		}
	}
	used := make([]bool, len(conjuncts))
	joined := map[int]bool{start: true}
	acc := &Relation{Cols: rels[start].Cols}
	var steps []joinStep
	for len(joined) < len(rels) {
		best := -1
		var bs joinStep
		for ci, c := range conjuncts {
			if used[ci] {
				continue
			}
			li, ri, target, ok := e.connects(c, acc, rels, joined)
			if !ok {
				continue
			}
			if best < 0 || len(rels[target].Rows) < len(rels[bs.target].Rows) {
				best = ci
				bs = joinStep{target: target, conj: ci, li: li, ri: ri}
			}
		}
		if best < 0 {
			cross := -1
			for i := range rels {
				if !joined[i] && (cross < 0 || len(rels[i].Rows) < len(rels[cross].Rows)) {
					cross = i
				}
			}
			bs = joinStep{target: cross, conj: -1}
		} else {
			used[best] = true
		}
		steps = append(steps, bs)
		acc = &Relation{Cols: append(append([]Col{}, acc.Cols...), rels[bs.target].Cols...)}
		joined[bs.target] = true
	}
	return start, steps, used
}

// executeJoinSteps runs a simulated sequence: hash joins (nested-loop under
// ForceNestedLoop) for conjunct steps, cross products otherwise.
func (e *Engine) executeJoinSteps(rels []*Relation, start int, steps []joinStep) (*Relation, error) {
	acc := rels[start]
	for _, s := range steps {
		var err error
		if s.conj < 0 {
			acc, err = e.crossProduct(acc, rels[s.target])
		} else {
			out := &Relation{Cols: append(append([]Col{}, acc.Cols...), rels[s.target].Cols...)}
			if e.ForceNestedLoop {
				acc, err = e.nestedEquiJoin(acc, rels[s.target], s.li, s.ri, out)
			} else {
				acc, err = e.hashJoin(acc, rels[s.target], s.li, s.ri, "INNER", out)
			}
		}
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

func residualOf(conjuncts []sqlast.Expr, used []bool) sqlast.Expr {
	var residual []sqlast.Expr
	for ci, c := range conjuncts {
		if !used[ci] {
			residual = append(residual, c)
		}
	}
	return sqlast.And(residual...)
}

func hasCrossStep(steps []joinStep) bool {
	for _, s := range steps {
		if s.conj < 0 {
			return true
		}
	}
	return false
}

// sameSequence reports whether two step lists join the same relations on
// the same conjuncts in the same order (key indexes are derived data).
func sameSequence(a, b []joinStep) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].target != b[i].target || a[i].conj != b[i].conj {
			return false
		}
	}
	return true
}

// provCol is the hidden provenance column widenWithProvenance appends. The
// NUL prefix keeps it unreachable from SQL (no parsed identifier contains
// NUL), like the hidden ORDER BY key columns.
const provCol = "\x00prov"

// widenWithProvenance copies a relation with one extra trailing column
// holding each row's original index. Rows are fresh arena-backed slices:
// appending to them can never alias the input's backing arrays.
func widenWithProvenance(r *Relation) *Relation {
	cols := make([]Col, 0, len(r.Cols)+1)
	cols = append(cols, r.Cols...)
	cols = append(cols, Col{Name: provCol})
	out := &Relation{Cols: cols, Rows: make([][]Value, len(r.Rows))}
	arena := newRowArena(len(cols))
	for i, row := range r.Rows {
		w := arena.next()
		copy(w, row)
		w[len(row)] = IntVal(int64(i))
		out.Rows[i] = w
	}
	return out
}

// restoreBaselineOrder rewrites a cost-sequence result (over widened
// relations, column blocks in cost order) into the exact relation the
// baseline sequence produces: its column blocks permuted to baseline order
// with provenance dropped, and its rows sorted lexicographically by the
// per-input row indexes in baseline block order. The baseline's inner hash
// joins emit exactly that lexicographic order (probe-major, build rows in
// insertion order), and both sequences produce the same row multiset, so
// the rewrite reproduces the baseline result byte for byte.
func (e *Engine) restoreBaselineOrder(acc *Relation, rels []*Relation, costStart int, costSteps, baseSteps []joinStep) *Relation {
	n := len(rels)
	costLayout := make([]int, 0, n)
	costLayout = append(costLayout, costStart)
	for _, s := range costSteps {
		costLayout = append(costLayout, s.target)
	}
	baseLayout := make([]int, 0, n)
	baseLayout = append(baseLayout, 0)
	for _, s := range baseSteps {
		baseLayout = append(baseLayout, s.target)
	}

	// Block offsets of each relation inside the cost-ordered row (each block
	// is the relation's columns plus its trailing provenance column).
	blockOff := make([]int, n)
	off := 0
	for _, rel := range costLayout {
		blockOff[rel] = off
		off += len(rels[rel].Cols) + 1
	}
	provOff := make([]int, n)
	for _, rel := range costLayout {
		provOff[rel] = blockOff[rel] + len(rels[rel].Cols)
	}

	// Sort by provenance tuples in baseline block order. Tuples are unique
	// (each combination of input rows appears at most once), so the order is
	// total and sort.Slice is deterministic.
	e.ops.Add(int64(len(acc.Rows)))
	rows := acc.Rows
	sort.Slice(rows, func(a, b int) bool {
		ra, rb := rows[a], rows[b]
		for _, rel := range baseLayout {
			pa, pb := ra[provOff[rel]].I, rb[provOff[rel]].I
			if pa != pb {
				return pa < pb
			}
		}
		return false
	})

	outCols := make([]Col, 0, off-n)
	for _, rel := range baseLayout {
		outCols = append(outCols, rels[rel].Cols...)
	}
	out := &Relation{Cols: outCols, Rows: make([][]Value, len(rows))}
	arena := newRowArena(len(outCols))
	for i, row := range rows {
		w := arena.next()
		pos := 0
		for _, rel := range baseLayout {
			width := len(rels[rel].Cols)
			copy(w[pos:pos+width], row[blockOff[rel]:blockOff[rel]+width])
			pos += width
		}
		out.Rows[i] = w
	}
	return out
}

// connects reports whether conjunct c is an equality joining a column of the
// accumulated relation to a column of exactly one unjoined relation.
func (e *Engine) connects(c sqlast.Expr, acc *Relation, rels []*Relation, joined map[int]bool) (accIdx, relIdx, target int, ok bool) {
	bin, isBin := c.(*sqlast.Binary)
	if !isBin || bin.Op != "=" {
		return 0, 0, 0, false
	}
	lc, lok := bin.L.(*sqlast.ColumnRef)
	rc, rok := bin.R.(*sqlast.ColumnRef)
	if !lok || !rok {
		return 0, 0, 0, false
	}
	try := func(a, b *sqlast.ColumnRef) (int, int, int, bool) {
		ai := acc.find(a.Table, a.Name)
		if len(ai) != 1 {
			return 0, 0, 0, false
		}
		for i, rel := range rels {
			if joined[i] {
				continue
			}
			bi := rel.find(b.Table, b.Name)
			if len(bi) == 1 {
				return ai[0], bi[0], i, true
			}
		}
		return 0, 0, 0, false
	}
	if ai, bi, t, ok := try(lc, rc); ok {
		return ai, bi, t, true
	}
	if ai, bi, t, ok := try(rc, lc); ok {
		return ai, bi, t, true
	}
	return 0, 0, 0, false
}

// nestedEquiJoin is the nested-loop inner equi-join used when hash joins are
// disabled for ablation.
func (e *Engine) nestedEquiJoin(left, right *Relation, li, ri int, out *Relation) (*Relation, error) {
	e.ops.Add(int64(len(left.Rows)) * int64(len(right.Rows)))
	for _, lr := range left.Rows {
		for _, rr := range right.Rows {
			if Equal(lr[li], rr[ri]) {
				out.Rows = append(out.Rows, concatRows(lr, rr))
				if len(out.Rows) > e.maxRows() {
					return nil, execErrorf("join result exceeds row cap")
				}
			}
		}
	}
	return out, nil
}

// splitConjuncts flattens a tree of ANDs into its conjuncts.
func splitConjuncts(e sqlast.Expr) []sqlast.Expr {
	bin, ok := e.(*sqlast.Binary)
	if ok && strings.EqualFold(bin.Op, "AND") {
		return append(splitConjuncts(bin.L), splitConjuncts(bin.R)...)
	}
	return []sqlast.Expr{e}
}
