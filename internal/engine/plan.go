package engine

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlast"
)

// This file is the engine's logical-plan layer. BuildPlan lowers one SELECT
// statement (one query block) into a tree of relational plan nodes:
//
//	scan → join → filter → group/aggregate → distinct → set-op → sort → limit
//
// The plan is purely structural — it holds AST expressions but no data — so
// it is shared by the two downstream layers: the physical operator layer
// (operator.go and the op_*.go files) instantiates one operator per node and
// executes it, and the cost model (cost.go) walks the same nodes to estimate
// work without touching any rows. Plans are immutable once built and safe to
// share across goroutines.

// PlanNode is one node of a logical query plan.
type PlanNode interface {
	// Describe returns the node's one-line label for plan printing.
	Describe() string
}

// Plan is the logical plan of one SELECT statement: its WITH bindings, in
// order, plus the root of the node tree.
type Plan struct {
	CTEs []CTEPlan
	Root PlanNode
}

// CTEPlan is one planned WITH binding.
type CTEPlan struct {
	Name    string
	Columns []string // optional explicit column list
	Plan    *Plan
}

// PlanConfig controls plan construction.
type PlanConfig struct {
	// DisablePlanner lowers comma-joined FROM lists to cross products with a
	// post-filter instead of an ImplicitJoinNode (ablation).
	DisablePlanner bool
	// Optimize runs the plan through the rewrite pipeline in optimize.go
	// (predicate pushdown, join-order and join-strategy hints) after
	// lowering. It is part of the plan cache key: plans built under
	// different optimizer settings never alias.
	Optimize bool
}

// OneRowNode produces a single zero-width row (SELECT without FROM).
type OneRowNode struct{}

// ScanNode reads a named base table or CTE.
type ScanNode struct {
	Name      string // table name as written (possibly qualified)
	Qualifier string // alias, or the bare table name
}

// SubqueryScanNode executes a derived table.
type SubqueryScanNode struct {
	Plan      *Plan
	Qualifier string
}

// JoinNode is an explicit join of two inputs.
type JoinNode struct {
	Left, Right PlanNode
	Type        string // INNER, LEFT, RIGHT, FULL, CROSS
	On          sqlast.Expr

	// Stream is an optimizer hint: the ON clause is a plain column equality,
	// so the physical layer may use the streaming hash join (build one side,
	// stream the probe side batch by batch instead of materializing it).
	// Output is byte-identical to the materializing join.
	Stream bool
	// BuildLeft, with Stream, hashes the (estimated-smaller) left input and
	// streams the right one. Only ever set for INNER joins, where emitting
	// matches grouped by left row preserves the left-major output order of
	// the materializing join.
	BuildLeft bool
}

// CrossNode is a left-deep cross product of comma-joined inputs.
type CrossNode struct {
	Inputs []PlanNode
}

// ImplicitJoinNode joins comma-separated FROM inputs using the equality
// conjuncts of Where; the greedy left-deep join ordering is picked at
// execution time (it depends on resolved column sets), and conjuncts not
// consumed as join conditions become a residual filter over the result.
type ImplicitJoinNode struct {
	Inputs []PlanNode
	Where  sqlast.Expr

	// CostOrder is an optimizer hint: at execution time, compare the default
	// greedy join sequence against a cardinality-greedy one and run whichever
	// the actual input sizes favor, restoring the default sequence's column
	// layout and row order afterwards so results stay byte-identical.
	CostOrder bool
}

// FilterNode keeps the input rows whose condition is truthy.
type FilterNode struct {
	Input PlanNode
	Cond  sqlast.Expr
}

// ProjectNode evaluates the SELECT items for each input row. When OrderBy is
// non-empty it also evaluates the ORDER BY expressions in the same row
// context (so keys may reference non-projected columns and projection
// aliases) and emits them as trailing hidden key columns for a SortNode
// above to consume.
type ProjectNode struct {
	Input   PlanNode
	Items   []sqlast.SelectItem
	OrderBy []sqlast.OrderItem
}

// GroupNode evaluates grouped aggregation: rows are hashed into groups by
// the GroupBy keys (one global group when GroupBy is empty), HAVING filters
// groups, and the SELECT items fold aggregates over each group. Like
// ProjectNode it emits ORDER BY keys as trailing hidden columns.
type GroupNode struct {
	Input   PlanNode
	GroupBy []sqlast.Expr
	Items   []sqlast.SelectItem
	Having  sqlast.Expr
	OrderBy []sqlast.OrderItem
}

// DistinctNode removes duplicate rows (comparing visible columns only).
type DistinctNode struct {
	Input PlanNode
}

// SetOpNode combines the input with a second query block under
// UNION/INTERSECT/EXCEPT. Hidden key columns of the input are dropped before
// combining; Right is a full plan (its CTE scope is the parent query's, not
// the left block's).
type SetOpNode struct {
	Left  PlanNode
	Op    string
	All   bool
	Right *Plan
}

// SortNode orders rows. With KeysFromInput the sort keys are the input's
// trailing hidden columns (emitted by Project/Group), which are pruned from
// the output; otherwise — after a set operation — the ORDER BY expressions
// are resolved against the output columns themselves.
type SortNode struct {
	Input         PlanNode
	Order         []sqlast.OrderItem
	KeysFromInput bool
}

// LimitNode applies OFFSET/LIMIT/TOP. Limit -1 means no limit.
type LimitNode struct {
	Input  PlanNode
	Offset int
	Limit  int
}

// BuildPlan lowers a SELECT statement into a logical plan. The lowering is
// syntax-directed and total: every statement the parser accepts plans, and
// semantic errors (unknown tables, width mismatches) surface at execution.
func BuildPlan(sel *sqlast.SelectStmt, cfg PlanConfig) *Plan {
	p := &Plan{}
	for _, cte := range sel.With {
		p.CTEs = append(p.CTEs, CTEPlan{
			Name:    cte.Name,
			Columns: cte.Columns,
			Plan:    BuildPlan(cte.Select, cfg),
		})
	}

	var root PlanNode
	switch {
	case len(sel.From) == 0:
		root = &OneRowNode{}
		if sel.Where != nil {
			root = &FilterNode{Input: root, Cond: sel.Where}
		}
	case len(sel.From) > 1 && sel.Where != nil && !cfg.DisablePlanner:
		root = &ImplicitJoinNode{Inputs: planRefs(sel.From, cfg), Where: sel.Where}
	default:
		refs := planRefs(sel.From, cfg)
		if len(refs) == 1 {
			root = refs[0]
		} else {
			root = &CrossNode{Inputs: refs}
		}
		if sel.Where != nil {
			root = &FilterNode{Input: root, Cond: sel.Where}
		}
	}

	if len(sel.GroupBy) > 0 || selectHasAggregates(sel) {
		root = &GroupNode{Input: root, GroupBy: sel.GroupBy, Items: sel.Items,
			Having: sel.Having, OrderBy: sel.OrderBy}
	} else {
		root = &ProjectNode{Input: root, Items: sel.Items, OrderBy: sel.OrderBy}
	}
	if sel.Distinct {
		root = &DistinctNode{Input: root}
	}
	if sel.SetOp != nil {
		root = &SetOpNode{Left: root, Op: sel.SetOp.Op, All: sel.SetOp.All,
			Right: BuildPlan(sel.SetOp.Right, cfg)}
	}
	if len(sel.OrderBy) > 0 {
		root = &SortNode{Input: root, Order: sel.OrderBy, KeysFromInput: sel.SetOp == nil}
	}
	offset, limit := 0, -1
	if sel.Offset != nil {
		offset = *sel.Offset
	}
	if sel.Limit != nil {
		limit = *sel.Limit
	}
	if sel.Top != nil && (limit < 0 || *sel.Top < limit) {
		limit = *sel.Top
	}
	if offset > 0 || limit >= 0 {
		root = &LimitNode{Input: root, Offset: offset, Limit: limit}
	}
	p.Root = root
	return p
}

func planRefs(refs []sqlast.TableRef, cfg PlanConfig) []PlanNode {
	out := make([]PlanNode, len(refs))
	for i, ref := range refs {
		out[i] = planRef(ref, cfg)
	}
	return out
}

func planRef(ref sqlast.TableRef, cfg PlanConfig) PlanNode {
	switch t := ref.(type) {
	case *sqlast.TableName:
		qualifier := t.Alias
		if qualifier == "" {
			qualifier = catalog.BareName(t.Name)
		}
		return &ScanNode{Name: t.Name, Qualifier: qualifier}
	case *sqlast.SubqueryTable:
		return &SubqueryScanNode{Plan: BuildPlan(t.Select, cfg), Qualifier: t.Alias}
	case *sqlast.Join:
		return &JoinNode{
			Left:  planRef(t.Left, cfg),
			Right: planRef(t.Right, cfg),
			Type:  t.Type,
			On:    t.On,
		}
	default:
		return &unsupportedRefNode{ref: ref}
	}
}

// unsupportedRefNode defers "unsupported table reference" errors to
// execution, keeping BuildPlan total.
type unsupportedRefNode struct{ ref sqlast.TableRef }

func (n *unsupportedRefNode) Describe() string { return fmt.Sprintf("Unsupported(%T)", n.ref) }

// ---------------------------------------------------------------------------
// Plan printing (EXPLAIN-style)

func (*OneRowNode) Describe() string { return "OneRow" }
func (n *ScanNode) Describe() string {
	if n.Qualifier != catalog.BareName(n.Name) {
		return fmt.Sprintf("Scan %s AS %s", n.Name, n.Qualifier)
	}
	return "Scan " + n.Name
}
func (n *SubqueryScanNode) Describe() string { return "SubqueryScan AS " + n.Qualifier }
func (n *JoinNode) Describe() string {
	if n.On == nil || n.Type == "CROSS" {
		return "CrossJoin"
	}
	s := fmt.Sprintf("%s Join ON %s", n.Type, sqlast.PrintExpr(n.On))
	switch {
	case n.BuildLeft:
		s += " [stream hash, build left]"
	case n.Stream:
		s += " [stream hash, build right]"
	}
	return s
}
func (n *CrossNode) Describe() string { return "Cross" }
func (n *ImplicitJoinNode) Describe() string {
	s := fmt.Sprintf("ImplicitJoin (%d inputs) WHERE %s", len(n.Inputs), sqlast.PrintExpr(n.Where))
	if n.CostOrder {
		s += " [cost-ordered]"
	}
	return s
}
func (n *FilterNode) Describe() string { return "Filter " + sqlast.PrintExpr(n.Cond) }
func (n *ProjectNode) Describe() string {
	return fmt.Sprintf("Project (%d items, %d order keys)", len(n.Items), len(n.OrderBy))
}
func (n *GroupNode) Describe() string {
	return fmt.Sprintf("GroupAggregate (%d keys, %d items)", len(n.GroupBy), len(n.Items))
}
func (n *DistinctNode) Describe() string { return "Distinct" }
func (n *SetOpNode) Describe() string {
	op := n.Op
	if n.All {
		op += " ALL"
	}
	return op
}
func (n *SortNode) Describe() string {
	src := "output columns"
	if n.KeysFromInput {
		src = "precomputed keys"
	}
	return fmt.Sprintf("Sort (%d keys from %s)", len(n.Order), src)
}
func (n *LimitNode) Describe() string {
	return fmt.Sprintf("Limit offset=%d limit=%d", n.Offset, n.Limit)
}

// String renders the plan as an indented tree, one node per line.
func (p *Plan) String() string {
	var b strings.Builder
	p.format(&b, 0)
	return b.String()
}

func (p *Plan) format(b *strings.Builder, depth int) {
	for _, cte := range p.CTEs {
		indent(b, depth)
		fmt.Fprintf(b, "With %s:\n", cte.Name)
		cte.Plan.format(b, depth+1)
	}
	formatNode(b, p.Root, depth)
}

func formatNode(b *strings.Builder, n PlanNode, depth int) {
	indent(b, depth)
	b.WriteString(n.Describe())
	b.WriteByte('\n')
	for _, child := range planChildren(n) {
		formatNode(b, child, depth+1)
	}
	switch t := n.(type) {
	case *SubqueryScanNode:
		t.Plan.format(b, depth+1)
	case *SetOpNode:
		t.Right.format(b, depth+1)
	}
}

// planChildren returns a node's same-block inputs (sub-plans of
// SubqueryScanNode/SetOpNode are printed separately).
func planChildren(n PlanNode) []PlanNode {
	switch t := n.(type) {
	case *JoinNode:
		return []PlanNode{t.Left, t.Right}
	case *CrossNode:
		return t.Inputs
	case *ImplicitJoinNode:
		return t.Inputs
	case *FilterNode:
		return []PlanNode{t.Input}
	case *ProjectNode:
		return []PlanNode{t.Input}
	case *GroupNode:
		return []PlanNode{t.Input}
	case *DistinctNode:
		return []PlanNode{t.Input}
	case *SetOpNode:
		return []PlanNode{t.Left}
	case *SortNode:
		return []PlanNode{t.Input}
	case *LimitNode:
		return []PlanNode{t.Input}
	default:
		return nil
	}
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}
