package engine

// The plan optimizer: a pure plan→plan rewrite pipeline that runs between
// BuildPlan and physical lowering (planFor applies it when Engine.Optimize
// is set, which New defaults on). Three rewrites:
//
//  1. Predicate pushdown. Filter conjuncts that mention a single side of a
//     Join/Cross move below the join; single-input conjuncts of an
//     ImplicitJoinNode's WHERE move below the comma join; conjuncts over a
//     derived table map through its projection items and move inside the
//     subquery. Pushed filters see fewer columns but the same values, so
//     joins build and probe smaller inputs.
//  2. Join-order hints. ImplicitJoinNode is marked CostOrder, letting the
//     executor compare the default greedy sequence against a
//     cardinality-greedy one on the actual input sizes and run whichever is
//     cheaper (planner.go restores the default sequence's column layout and
//     row order, so results are byte-identical).
//  3. Join-strategy hints. Explicit equi-joins are marked Stream so the
//     physical layer uses the streaming hash join (op_join.go): build one
//     side, stream the probe side batch by batch instead of materializing
//     it. INNER joins whose left input is estimated smaller (cost.go over
//     the database's actual table sizes) additionally build left.
//
// Byte-identity contract: for every statement, the optimized plan yields
// the same columns, rows, and row order as the unoptimized plan, at any
// Engine.Parallel setting. Error *presence* is also preserved; pushdown is
// restricted to total predicates (comparisons, LIKE, BETWEEN, IS NULL,
// IN-list, boolean combinators over column refs and literals — nothing that
// can fail at evaluation time) so a pushed filter can never raise a value
// error on rows the unoptimized plan would not have evaluated, and every
// moved expression's column refs are verified to resolve uniquely at their
// destination (nodeColumns/refsResolve) so moving one can never raise — or
// suppress — an unknown- or ambiguous-column error either. Because the
// residual evaluates in original order with AND short-circuiting, pushing
// stops at the first fallible residual conjunct (conjCanError): a later
// conjunct moved below could drop rows before the fallible one runs and
// suppress its error. The ops counter
// may legitimately count fewer row operations under optimization; its
// semantics (one count per row touched) are unchanged.

import (
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlast"
)

// optimizePlan rewrites a logical plan, returning a new plan that shares
// unmodified subtrees with the input (plans are immutable, so sharing is
// safe). The input plan is never mutated.
func (e *Engine) optimizePlan(p *Plan) *Plan {
	o := &optimizer{e: e}
	return o.plan(p)
}

type optimizer struct {
	e  *Engine
	cm *CostModel
	// ctes holds the lower-cased CTE names in scope at the node being
	// rewritten. Scans resolve CTEs before base tables at execution time, so
	// a scan whose bare name is in this set has columns the optimizer cannot
	// know (nodeColumns reports them undeterminable, which blocks pushdown
	// into that subtree).
	ctes map[string]bool
}

// model returns the cost model over the engine's actual table sizes, built
// lazily (Explain and pure-pushdown plans never need it).
func (o *optimizer) model() *CostModel {
	if o.cm == nil {
		s := NewStats()
		if o.e != nil && o.e.DB != nil {
			for name, rel := range o.e.DB.Tables {
				s.RowCounts[name] = int64(len(rel.Rows))
			}
		}
		o.cm = NewCostModel(s)
	}
	return o.cm
}

// estRows estimates a node's output cardinality from the cost model.
func (o *optimizer) estRows(n PlanNode) float64 {
	return o.model().costNode(n, costScope{}).outRows
}

func (o *optimizer) plan(p *Plan) *Plan {
	np := &Plan{}
	saved := o.ctes
	if len(p.CTEs) > 0 {
		// Each CTE's plan sees the bindings before it; the root sees them
		// all. The scope is a copy so the caller's set is untouched.
		scope := make(map[string]bool, len(saved)+len(p.CTEs))
		for k := range saved {
			scope[k] = true
		}
		o.ctes = scope
		np.CTEs = make([]CTEPlan, len(p.CTEs))
		for i, c := range p.CTEs {
			np.CTEs[i] = CTEPlan{Name: c.Name, Columns: c.Columns, Plan: o.plan(c.Plan)}
			scope[strings.ToLower(c.Name)] = true
		}
	}
	np.Root = o.node(p.Root)
	o.ctes = saved
	return np
}

func (o *optimizer) node(n PlanNode) PlanNode {
	switch t := n.(type) {
	case *FilterNode:
		return o.filter(t)
	case *ImplicitJoinNode:
		return o.implicitJoin(t)
	case *JoinNode:
		return o.join(t)
	case *CrossNode:
		inputs := make([]PlanNode, len(t.Inputs))
		for i, in := range t.Inputs {
			inputs[i] = o.node(in)
		}
		return &CrossNode{Inputs: inputs}
	case *SubqueryScanNode:
		return &SubqueryScanNode{Plan: o.plan(t.Plan), Qualifier: t.Qualifier}
	case *ProjectNode:
		return &ProjectNode{Input: o.node(t.Input), Items: t.Items, OrderBy: t.OrderBy}
	case *GroupNode:
		return &GroupNode{Input: o.node(t.Input), GroupBy: t.GroupBy, Items: t.Items,
			Having: t.Having, OrderBy: t.OrderBy}
	case *DistinctNode:
		return &DistinctNode{Input: o.node(t.Input)}
	case *SetOpNode:
		return &SetOpNode{Left: o.node(t.Left), Op: t.Op, All: t.All, Right: o.plan(t.Right)}
	case *SortNode:
		return &SortNode{Input: o.node(t.Input), Order: t.Order, KeysFromInput: t.KeysFromInput}
	case *LimitNode:
		return &LimitNode{Input: o.node(t.Input), Offset: t.Offset, Limit: t.Limit}
	default:
		// OneRow, Scan, unsupported refs: leaves, nothing to rewrite.
		return n
	}
}

// join rebuilds an explicit join with optimized children and attaches the
// streaming/build-side hints.
func (o *optimizer) join(t *JoinNode) PlanNode {
	nt := &JoinNode{Left: o.node(t.Left), Right: o.node(t.Right), Type: t.Type, On: t.On}
	if nt.Type != "CROSS" && nt.On != nil && isColEquality(nt.On) {
		nt.Stream = true
		// Build on the estimated-smaller side. Only INNER joins may flip the
		// build side: their output order is probe-major either way the
		// buckets are emitted (see streamJoinOp), whereas outer-join padding
		// is tied to the probe side.
		if nt.Type == "INNER" && o.estRows(nt.Left) < o.estRows(nt.Right) {
			nt.BuildLeft = true
		}
	}
	return nt
}

// isColEquality matches the syntactic shape the hash-join path accepts:
// a single equality between two column references.
func isColEquality(on sqlast.Expr) bool {
	bin, ok := on.(*sqlast.Binary)
	if !ok || bin.Op != "=" {
		return false
	}
	_, l := bin.L.(*sqlast.ColumnRef)
	_, r := bin.R.(*sqlast.ColumnRef)
	return l && r
}

// filter collects a stack of FilterNodes (the optimizer's own wrapping can
// stack them), pushes what it can below the common input, and re-wraps the
// rest. Conjunct order is preserved for the residual.
func (o *optimizer) filter(t *FilterNode) PlanNode {
	var conjs []sqlast.Expr
	var stack []*FilterNode
	for cur := t; ; {
		stack = append(stack, cur)
		f, ok := cur.Input.(*FilterNode)
		if !ok {
			break
		}
		cur = f
	}
	// Innermost filter's conjuncts first: that is the order the unoptimized
	// plan evaluates them in.
	for i := len(stack) - 1; i >= 0; i-- {
		conjs = append(conjs, splitConjuncts(stack[i].Cond)...)
	}
	base := stack[len(stack)-1].Input
	newBase, rest := o.push(base, conjs)
	out := o.node(newBase)
	if len(rest) == 0 {
		return out
	}
	return &FilterNode{Input: out, Cond: sqlast.And(rest...)}
}

// push attempts to sink conjuncts below base, returning the rewritten node
// (children wrapped in FilterNodes; not yet recursed into) and the
// conjuncts that could not be pushed, in their original order.
func (o *optimizer) push(base PlanNode, conjs []sqlast.Expr) (PlanNode, []sqlast.Expr) {
	switch t := base.(type) {
	case *JoinNode:
		return o.pushJoin(t, conjs)
	case *CrossNode:
		return o.pushCross(t, conjs)
	case *SubqueryScanNode:
		return o.pushSubquery(t, conjs)
	default:
		return base, conjs
	}
}

// pushJoin sinks single-side conjuncts below an explicit join. Outer joins
// only accept pushdown on their row-preserving side's opposite: a LEFT
// join's left input (dropping left rows there drops exactly the output rows
// the filter would have dropped), a RIGHT join's right input; FULL joins
// accept none.
func (o *optimizer) pushJoin(t *JoinNode, conjs []sqlast.Expr) (PlanNode, []sqlast.Expr) {
	lq, lok := nodeQualifiers(t.Left)
	rq, rok := nodeQualifiers(t.Right)
	if !lok || !rok || qualsOverlap(lq, rq) {
		return t, conjs
	}
	// Pushing to a side also requires its column set: every pushed ref must
	// resolve to exactly one column there, or the pushed filter could raise
	// an unknown/ambiguous-column error the unoptimized plan — which may
	// never evaluate the conjunct — would not. With disjoint qualifier sets
	// and fully qualified refs, unique-in-side implies unique-in-join, so a
	// verified conjunct resolves identically above and below.
	lcols, lcok := o.nodeColumns(t.Left)
	rcols, rcok := o.nodeColumns(t.Right)
	pushLeft := lcok && (t.Type == "INNER" || t.Type == "CROSS" || t.Type == "LEFT")
	pushRight := rcok && (t.Type == "INNER" || t.Type == "CROSS" || t.Type == "RIGHT")
	wideOK := lcok && rcok
	var wide []Col
	if wideOK {
		wide = append(append(wide, lcols...), rcols...)
	}
	var left, right, rest []sqlast.Expr
	barrier := false
	for _, c := range conjs {
		qs := conjQualifiers(c)
		switch {
		case !barrier && qs != nil && pushLeft && qualsSubset(qs, lq) && refsResolve(c, lcols):
			left = append(left, c)
		case !barrier && qs != nil && pushRight && qualsSubset(qs, rq) && refsResolve(c, rcols):
			right = append(right, c)
		default:
			rest = append(rest, c)
			if !barrier && conjCanError(c, wide, wideOK) {
				barrier = true
			}
		}
	}
	if len(left) == 0 && len(right) == 0 {
		return t, conjs
	}
	return &JoinNode{
		Left:  wrapFilter(t.Left, left),
		Right: wrapFilter(t.Right, right),
		Type:  t.Type,
		On:    t.On,
	}, rest
}

// pushCross sinks single-input conjuncts below a cross product. A conjunct
// moves only when its refs resolve uniquely against the target input's
// columns (see pushJoin for why qualifier subsetting alone is not enough).
func (o *optimizer) pushCross(t *CrossNode, conjs []sqlast.Expr) (PlanNode, []sqlast.Expr) {
	qsets := make([]map[string]bool, len(t.Inputs))
	csets := make([][]Col, len(t.Inputs))
	cok := make([]bool, len(t.Inputs))
	for i, in := range t.Inputs {
		qs, ok := nodeQualifiers(in)
		if !ok {
			return t, conjs
		}
		for j := 0; j < i; j++ {
			if qualsOverlap(qsets[j], qs) {
				return t, conjs
			}
		}
		qsets[i] = qs
		// An input with undeterminable columns (CTE scan, missing table)
		// only blocks pushes into itself: qualifier disjointness means a
		// conjunct qualified for another input cannot match its columns.
		csets[i], cok[i] = o.nodeColumns(in)
	}
	wide, wideOK := o.concatColumns(t.Inputs)
	perInput := make([][]sqlast.Expr, len(t.Inputs))
	var rest []sqlast.Expr
	pushed := false
	barrier := false
	for _, c := range conjs {
		qs := conjQualifiers(c)
		target := -1
		if qs != nil && !barrier {
			for i, set := range qsets {
				if qualsSubset(qs, set) {
					target = i
					break
				}
			}
		}
		if target < 0 || !cok[target] || !refsResolve(c, csets[target]) {
			rest = append(rest, c)
			if !barrier && conjCanError(c, wide, wideOK) {
				barrier = true
			}
			continue
		}
		perInput[target] = append(perInput[target], c)
		pushed = true
	}
	if !pushed {
		return t, conjs
	}
	inputs := make([]PlanNode, len(t.Inputs))
	for i, in := range t.Inputs {
		inputs[i] = wrapFilter(in, perInput[i])
	}
	return &CrossNode{Inputs: inputs}, rest
}

// pushSubquery maps conjuncts over a derived table through its projection
// items and sinks them inside the subquery, below the Project (and below an
// ORDER BY sort: filtering before a stable sort yields the same rows in the
// same order as sorting then filtering). Applies only when every projection
// item is a total expression — otherwise dropping rows early could skip an
// item evaluation that would have errored, changing error presence.
func (o *optimizer) pushSubquery(t *SubqueryScanNode, conjs []sqlast.Expr) (PlanNode, []sqlast.Expr) {
	if len(t.Plan.CTEs) > 0 {
		// CTE names are in scope inside the subquery; a pushed filter would
		// be evaluated in that scope too, which is fine, but keeping the
		// rewrite away from CTE plans keeps the reasoning simple.
		return t, conjs
	}
	var proj *ProjectNode
	var sort *SortNode
	switch root := t.Plan.Root.(type) {
	case *ProjectNode:
		proj = root
	case *SortNode:
		if !root.KeysFromInput {
			return t, conjs
		}
		p, ok := root.Input.(*ProjectNode)
		if !ok {
			return t, conjs
		}
		// The project evaluates the ORDER BY keys for every input row; a
		// pushed filter would skip those evaluations on dropped rows, so the
		// keys must be total too.
		for _, ob := range p.OrderBy {
			if !safeTotalExpr(ob.Expr, nil, false) {
				return t, conjs
			}
		}
		sort, proj = root, p
	default:
		return t, conjs
	}
	// Pushing the filter below the Project means the items and ORDER BY keys
	// run on fewer rows. Beyond being total, every item must also resolve
	// uniquely against the project's input columns: an unknown or ambiguous
	// ref errors per evaluated row, and a pushed filter that drops every row
	// (or short-circuits past the mapped clone) would suppress an error the
	// unoptimized plan raises.
	inputCols, icok := o.nodeColumns(proj.Input)
	if !icok {
		return t, conjs
	}
	// Build the output-name → item map the filter's refs resolve against.
	// Names follow projectionHeader: alias, else the column name, else
	// "expr". Duplicate names resolve ambiguously and are not pushed.
	byName := make(map[string]projItem, len(proj.Items))
	outCols := make([]Col, 0, len(proj.Items))
	for _, it := range proj.Items {
		if _, isStar := it.Expr.(*sqlast.Star); isStar {
			return t, conjs // star expansion depends on resolved input columns
		}
		if !safeTotalExpr(it.Expr, nil, false) || !refsResolve(it.Expr, inputCols) {
			return t, conjs
		}
		name := it.Alias
		if name == "" {
			if cr, ok := it.Expr.(*sqlast.ColumnRef); ok {
				name = cr.Name
			} else {
				name = "expr"
			}
		}
		outCols = append(outCols, Col{Qualifier: t.Qualifier, Name: name})
		key := strings.ToLower(name)
		if prev, ok := byName[key]; ok {
			byName[key] = projItem{expr: prev.expr, dup: true}
		} else {
			byName[key] = projItem{expr: it.Expr}
		}
	}
	// ORDER BY keys must resolve too. A key that is a bare unqualified ref
	// naming a projection output reads the projected value (the evaluator's
	// alias path, which cannot error); any other key resolves against the
	// input like an item.
	for _, ob := range proj.OrderBy {
		if cr, isRef := ob.Expr.(*sqlast.ColumnRef); isRef && cr.Table == "" {
			if _, found := byName[strings.ToLower(cr.Name)]; found {
				continue
			}
		}
		if !refsResolve(ob.Expr, inputCols) {
			return t, conjs
		}
	}
	var pushed, rest []sqlast.Expr
	barrier := false
	for _, c := range conjs {
		if !barrier {
			if mapped, ok := o.mapThroughItems(c, t.Qualifier, byName); ok {
				pushed = append(pushed, mapped)
				continue
			}
		}
		rest = append(rest, c)
		// The residual filter sees the derived table's output columns; a
		// fallible residual conjunct bars later pushes (see conjCanError).
		if !barrier && conjCanError(c, outCols, true) {
			barrier = true
		}
	}
	if len(pushed) == 0 {
		return t, conjs
	}
	inner := wrapFilter(proj.Input, pushed)
	var root PlanNode = &ProjectNode{Input: inner, Items: proj.Items, OrderBy: proj.OrderBy}
	if sort != nil {
		root = &SortNode{Input: root, Order: sort.Order, KeysFromInput: true}
	}
	return &SubqueryScanNode{Plan: &Plan{Root: root}, Qualifier: t.Qualifier}, rest
}

// projItem is one named projection output during subquery pushdown.
type projItem struct {
	expr sqlast.Expr
	dup  bool
}

// mapThroughItems rewrites a conjunct over a derived table's output columns
// into one over its projection inputs, replacing each column ref with a
// clone of the item expression it names. Fails (not pushed) when the
// conjunct is not a total expression, a ref does not name exactly one item,
// or a ref is qualified with something other than the table's alias.
func (o *optimizer) mapThroughItems(c sqlast.Expr, qualifier string, byName map[string]projItem) (sqlast.Expr, bool) {
	if !safeTotalExpr(c, nil, true) {
		return nil, false
	}
	ok := true
	mapped := rewriteExpr(c, func(cr *sqlast.ColumnRef) sqlast.Expr {
		if cr.Table != "" && !strings.EqualFold(cr.Table, qualifier) {
			ok = false
			return cr
		}
		it, found := byName[strings.ToLower(cr.Name)]
		if !found || it.dup {
			ok = false
			return cr
		}
		return sqlast.CloneExpr(it.expr)
	})
	if !ok {
		return nil, false
	}
	return mapped, true
}

// implicitJoin sinks single-input WHERE conjuncts below a comma join and
// marks the node for cost-based ordering. Single-input conjuncts are never
// join conditions (connects() requires a column on each side of the joined
// frontier), so removing them from WHERE provably leaves the default greedy
// join sequence unchanged — the filtered inputs join in the same order into
// the same column layout.
func (o *optimizer) implicitJoin(t *ImplicitJoinNode) PlanNode {
	conjs := splitConjuncts(t.Where)
	qsets := make([]map[string]bool, len(t.Inputs))
	csets := make([][]Col, len(t.Inputs))
	cok := make([]bool, len(t.Inputs))
	analyzable := true
	for i, in := range t.Inputs {
		qs, ok := nodeQualifiers(in)
		if !ok {
			analyzable = false
			break
		}
		for j := 0; j < i; j++ {
			if qualsOverlap(qsets[j], qs) {
				analyzable = false
			}
		}
		qsets[i] = qs
		// Undeterminable columns (CTE scan, missing table) only block pushes
		// into that input; qualifier disjointness keeps other inputs' refs
		// from matching it.
		csets[i], cok[i] = o.nodeColumns(in)
	}
	perInput := make([][]sqlast.Expr, len(t.Inputs))
	var rest []sqlast.Expr
	if analyzable {
		wide, wideOK := o.concatColumns(t.Inputs)
		barrier := false
		for _, c := range conjs {
			qs := conjQualifiers(c)
			target := -1
			if qs != nil && len(qs) == 1 && !barrier {
				for i, set := range qsets {
					if qualsSubset(qs, set) {
						target = i
						break
					}
				}
			}
			// The refs must also resolve uniquely against the target input's
			// columns: a qualifier-matched conjunct naming a column the input
			// does not have would error below the join, while above it the
			// residual might never evaluate it (see pushJoin).
			if target < 0 || !cok[target] || !refsResolve(c, csets[target]) {
				rest = append(rest, c)
				if !barrier && conjCanError(c, wide, wideOK) {
					barrier = true
				}
				continue
			}
			perInput[target] = append(perInput[target], c)
		}
	} else {
		rest = conjs
	}
	inputs := make([]PlanNode, len(t.Inputs))
	for i, in := range t.Inputs {
		inputs[i] = o.node(wrapFilter(in, perInput[i]))
	}
	if len(rest) == 0 {
		// Every conjunct moved below: none of them connected two inputs, so
		// the default execution was cross products in input order plus a
		// filter — exactly what CrossNode over the filtered inputs runs.
		return &CrossNode{Inputs: inputs}
	}
	return &ImplicitJoinNode{Inputs: inputs, Where: sqlast.And(rest...), CostOrder: true}
}

// wrapFilter pushes conjuncts onto a node as a FilterNode (no-op for an
// empty list).
func wrapFilter(n PlanNode, conjs []sqlast.Expr) PlanNode {
	if len(conjs) == 0 {
		return n
	}
	return &FilterNode{Input: n, Cond: sqlast.And(conjs...)}
}

// nodeQualifiers returns the set of lower-cased column qualifiers a node's
// output columns carry, and whether the set is exhaustive (false for nodes
// whose output columns cannot be known at plan time).
func nodeQualifiers(n PlanNode) (map[string]bool, bool) {
	switch t := n.(type) {
	case *ScanNode:
		return map[string]bool{strings.ToLower(t.Qualifier): true}, true
	case *SubqueryScanNode:
		return map[string]bool{strings.ToLower(t.Qualifier): true}, true
	case *FilterNode:
		return nodeQualifiers(t.Input)
	case *JoinNode:
		lq, lok := nodeQualifiers(t.Left)
		rq, rok := nodeQualifiers(t.Right)
		if !lok || !rok {
			return nil, false
		}
		return qualsUnion(lq, rq), true
	case *CrossNode:
		return inputQualifiers(t.Inputs)
	case *ImplicitJoinNode:
		return inputQualifiers(t.Inputs)
	default:
		return nil, false
	}
}

func inputQualifiers(inputs []PlanNode) (map[string]bool, bool) {
	out := map[string]bool{}
	for _, in := range inputs {
		qs, ok := nodeQualifiers(in)
		if !ok {
			return nil, false
		}
		out = qualsUnion(out, qs)
	}
	return out, true
}

func qualsUnion(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func qualsOverlap(a, b map[string]bool) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

func qualsSubset(sub, super map[string]bool) bool {
	for k := range sub {
		if !super[k] {
			return false
		}
	}
	return true
}

// nodeColumns returns the columns a node's operator will expose at execution
// time, or ok=false when they cannot be determined at plan time. Qualifier
// sets alone are not enough to vet a pushed conjunct: a ref with a valid
// qualifier but a name the subtree does not produce would raise "unknown
// column" where the unoptimized plan — which might never evaluate the
// conjunct at all (empty join output, AND short-circuit) — raises nothing.
// Scans whose bare name is bound to an in-scope CTE are undeterminable: the
// executor resolves CTEs before base tables, and CTE columns are only known
// at execution time. (A correlated subquery planned on its own cannot see
// its parent statement's CTEs here; a parent CTE shadowing a base-table
// name could make these columns wrong. That needs shadowing plus a
// same-name conjunct that the unoptimized plan never evaluates — accepted.)
func (o *optimizer) nodeColumns(n PlanNode) ([]Col, bool) {
	switch t := n.(type) {
	case *ScanNode:
		if o.ctes[strings.ToLower(catalog.BareName(t.Name))] {
			return nil, false
		}
		if o.e == nil || o.e.DB == nil {
			return nil, false
		}
		var base []Col
		if rel, ok := o.e.DB.Table(t.Name); ok {
			base = rel.Cols
		} else if src := o.e.DB.Source; src != nil {
			if sc, ok := src.SourceCols(catalog.BareName(t.Name)); ok {
				base = sc
			}
		}
		if base == nil {
			return nil, false
		}
		cols := make([]Col, len(base))
		for i, c := range base {
			cols[i] = Col{Qualifier: t.Qualifier, Name: c.Name, Type: c.Type}
		}
		return cols, true
	case *SubqueryScanNode:
		names, ok := subqueryOutputNames(t.Plan.Root)
		if !ok {
			return nil, false
		}
		cols := make([]Col, len(names))
		for i, name := range names {
			cols[i] = Col{Qualifier: t.Qualifier, Name: name}
		}
		return cols, true
	case *FilterNode:
		return o.nodeColumns(t.Input)
	case *JoinNode:
		return o.concatColumns([]PlanNode{t.Left, t.Right})
	case *CrossNode:
		return o.concatColumns(t.Inputs)
	case *ImplicitJoinNode:
		// The joined column multiset is the inputs' columns regardless of the
		// join sequence; resolution counts only the multiset.
		return o.concatColumns(t.Inputs)
	default:
		return nil, false
	}
}

func (o *optimizer) concatColumns(inputs []PlanNode) ([]Col, bool) {
	var out []Col
	for _, in := range inputs {
		cols, ok := o.nodeColumns(in)
		if !ok {
			return nil, false
		}
		out = append(out, cols...)
	}
	return out, true
}

// subqueryOutputNames mirrors projectionHeader's naming for a derived
// table's visible output: alias, else the ref's column name, else "expr".
// Star items and non-projection roots are undeterminable.
func subqueryOutputNames(root PlanNode) ([]string, bool) {
	switch t := root.(type) {
	case *SortNode:
		return subqueryOutputNames(t.Input)
	case *LimitNode:
		return subqueryOutputNames(t.Input)
	case *DistinctNode:
		return subqueryOutputNames(t.Input)
	case *ProjectNode:
		names := make([]string, 0, len(t.Items))
		for _, it := range t.Items {
			if _, isStar := it.Expr.(*sqlast.Star); isStar {
				return nil, false
			}
			name := it.Alias
			if name == "" {
				if cr, ok := it.Expr.(*sqlast.ColumnRef); ok {
					name = cr.Name
				} else {
					name = "expr"
				}
			}
			names = append(names, name)
		}
		return names, true
	default:
		return nil, false
	}
}

// conjCanError reports whether a residual conjunct could raise an execution
// error when evaluated: it is not total, or one of its refs does not resolve
// uniquely against the columns the residual filter sees (wideOK false means
// those columns are unknown and the conjunct must be assumed fallible).
// Push sites use it as an ordering barrier: the unoptimized plan evaluates
// conjuncts in order with AND short-circuiting, so once a fallible conjunct
// stays behind, pushing any LATER conjunct below could drop rows before the
// fallible one runs and suppress an error the unoptimized plan raises.
func conjCanError(c sqlast.Expr, wide []Col, wideOK bool) bool {
	if !safeTotalExpr(c, nil, false) {
		return true
	}
	return !wideOK || !refsResolve(c, wide)
}

// refsResolve reports whether every column reference in a vetted expression
// resolves to exactly one of cols under the evaluator's rules: names and
// qualifiers compare case-insensitively, an unqualified ref matches any
// qualifier, and anything but exactly one match errors at evaluation time
// ("unknown column" / "ambiguous column"). Callers must have passed the
// expression through safeTotalExpr first — the walk covers exactly that
// grammar. Hidden \x00-prefixed columns are unreferencable from SQL and are
// skipped.
func refsResolve(e sqlast.Expr, cols []Col) bool {
	ok := true
	rewriteExpr(e, func(cr *sqlast.ColumnRef) sqlast.Expr {
		n := 0
		for _, c := range cols {
			if strings.HasPrefix(c.Name, "\x00") || !strings.EqualFold(c.Name, cr.Name) {
				continue
			}
			if cr.Table == "" || strings.EqualFold(c.Qualifier, cr.Table) {
				n++
			}
		}
		if n != 1 {
			ok = false
		}
		return cr
	})
	return ok
}

// conjQualifiers returns the set of qualifiers a conjunct references when
// the conjunct is safe to push — a total expression over fully qualified
// column refs — and nil otherwise.
func conjQualifiers(c sqlast.Expr) map[string]bool {
	quals := map[string]bool{}
	if !safeTotalExpr(c, quals, true) {
		return nil
	}
	if len(quals) == 0 {
		// Constant conjuncts stay put: pushing them is pointless and keeping
		// them in the residual preserves evaluation counts.
		return nil
	}
	return quals
}

// safeTotalExpr reports whether an expression is total — it cannot raise an
// execution error however it is evaluated — so moving it to a position
// where it sees more or fewer rows can never change error presence.
// Comparisons, LIKE, and || are total by construction (Compare is a total
// order, String never fails); arithmetic, function calls, casts, variables,
// CASE, and subqueries are excluded. When quals is non-nil, the lower-cased
// qualifier of every column ref is collected into it; requireQualified
// additionally rejects unqualified refs (pushdown across joins needs every
// ref attributable to one side).
func safeTotalExpr(e sqlast.Expr, quals map[string]bool, requireQualified bool) bool {
	switch t := e.(type) {
	case *sqlast.ColumnRef:
		if requireQualified && t.Table == "" && quals != nil {
			return false
		}
		if quals != nil && t.Table != "" {
			quals[strings.ToLower(t.Table)] = true
		}
		return true
	case *sqlast.Literal:
		return t.Kind != sqlast.LitNumber || numericLiteralOK(t.Text)
	case *sqlast.Binary:
		switch t.Op {
		case "=", "<>", "<", ">", "<=", ">=", "LIKE", "||", "AND", "OR":
			return safeTotalExpr(t.L, quals, requireQualified) &&
				safeTotalExpr(t.R, quals, requireQualified)
		}
		return false
	case *sqlast.Unary:
		return t.Op == "NOT" && safeTotalExpr(t.X, quals, requireQualified)
	case *sqlast.Between:
		return safeTotalExpr(t.X, quals, requireQualified) &&
			safeTotalExpr(t.Lo, quals, requireQualified) &&
			safeTotalExpr(t.Hi, quals, requireQualified)
	case *sqlast.IsNull:
		return safeTotalExpr(t.X, quals, requireQualified)
	case *sqlast.In:
		if t.Sub != nil {
			return false
		}
		if !safeTotalExpr(t.X, quals, requireQualified) {
			return false
		}
		for _, el := range t.List {
			if !safeTotalExpr(el, quals, requireQualified) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// numericLiteralOK mirrors the literal evaluator's parse: a number literal
// it cannot parse errors at evaluation time, making the literal non-total.
func numericLiteralOK(text string) bool {
	_, err := strconv.ParseFloat(text, 64)
	return err == nil
}

// rewriteExpr rebuilds an expression with every column ref replaced by
// repl's result. Only the node types safeTotalExpr admits are handled;
// callers must have vetted the expression first.
func rewriteExpr(e sqlast.Expr, repl func(*sqlast.ColumnRef) sqlast.Expr) sqlast.Expr {
	switch t := e.(type) {
	case *sqlast.ColumnRef:
		return repl(t)
	case *sqlast.Literal:
		return t
	case *sqlast.Binary:
		return &sqlast.Binary{Op: t.Op, L: rewriteExpr(t.L, repl), R: rewriteExpr(t.R, repl)}
	case *sqlast.Unary:
		return &sqlast.Unary{Op: t.Op, X: rewriteExpr(t.X, repl)}
	case *sqlast.Between:
		return &sqlast.Between{X: rewriteExpr(t.X, repl), Not: t.Not,
			Lo: rewriteExpr(t.Lo, repl), Hi: rewriteExpr(t.Hi, repl)}
	case *sqlast.IsNull:
		return &sqlast.IsNull{X: rewriteExpr(t.X, repl), Not: t.Not}
	case *sqlast.In:
		list := make([]sqlast.Expr, len(t.List))
		for i, el := range t.List {
			list[i] = rewriteExpr(el, repl)
		}
		return &sqlast.In{X: rewriteExpr(t.X, repl), Not: t.Not, List: list}
	default:
		return e
	}
}
