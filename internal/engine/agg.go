package engine

import (
	"math"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlast"
)

// execGrouped evaluates a SELECT with GROUP BY and/or aggregate functions.
// Sort keys for ORDER BY are computed per output group so ORDER BY may
// reference aggregates or projection aliases.
func (e *Engine) execGrouped(sel *sqlast.SelectStmt, src *Relation, scanEnv *env) (*Relation, [][]Value, error) {
	type group struct {
		rows [][]Value
	}
	groups := make(map[string]*group)
	var order []string

	if len(sel.GroupBy) == 0 {
		// Global aggregate: one group over everything (even zero rows).
		groups[""] = &group{rows: src.Rows}
		order = append(order, "")
	} else {
		for _, row := range src.Rows {
			e.ops++
			scanEnv.row = row
			keyVals := make([]Value, len(sel.GroupBy))
			for i, g := range sel.GroupBy {
				v, err := e.evalExpr(g, scanEnv)
				if err != nil {
					return nil, nil, err
				}
				keyVals[i] = v
			}
			k := Key(keyVals)
			grp, ok := groups[k]
			if !ok {
				grp = &group{}
				groups[k] = grp
				order = append(order, k)
			}
			grp.rows = append(grp.rows, row)
		}
	}

	// Output header.
	cols := make([]Col, len(sel.Items))
	for i, item := range sel.Items {
		name := item.Alias
		if name == "" {
			if cr, ok := item.Expr.(*sqlast.ColumnRef); ok {
				name = cr.Name
			} else if fc, ok := item.Expr.(*sqlast.FuncCall); ok {
				name = strings.ToLower(fc.Name)
			} else {
				name = "expr"
			}
		}
		cols[i] = Col{Name: name, Type: catalog.TypeAny}
	}
	out := &Relation{Cols: cols}
	var sortKeys [][]Value

	for _, k := range order {
		grp := groups[k]
		gctx := &groupEnv{engine: e, rows: grp.rows, scanEnv: scanEnv}
		if sel.Having != nil {
			hv, err := gctx.eval(sel.Having)
			if err != nil {
				return nil, nil, err
			}
			if !hv.Truthy() {
				continue
			}
		}
		rowOut := make([]Value, len(sel.Items))
		for i, item := range sel.Items {
			v, err := gctx.eval(item.Expr)
			if err != nil {
				return nil, nil, err
			}
			rowOut[i] = v
		}
		out.Rows = append(out.Rows, rowOut)
		if len(sel.OrderBy) > 0 {
			keys := make([]Value, len(sel.OrderBy))
			for j, ob := range sel.OrderBy {
				// Aliases refer to projected values.
				if cr, ok := ob.Expr.(*sqlast.ColumnRef); ok && cr.Table == "" {
					found := false
					for i, c := range cols {
						if strings.EqualFold(c.Name, cr.Name) {
							keys[j] = rowOut[i]
							found = true
							break
						}
					}
					if found {
						continue
					}
				}
				v, err := gctx.eval(ob.Expr)
				if err != nil {
					return nil, nil, err
				}
				keys[j] = v
			}
			sortKeys = append(sortKeys, keys)
		}
	}
	if len(sel.OrderBy) == 0 {
		sortKeys = nil
	}
	return out, sortKeys, nil
}

// groupEnv evaluates expressions in a grouped context: aggregates fold over
// the group's rows; everything else evaluates against the group's first row
// (the grouping columns are constant within a group).
type groupEnv struct {
	engine  *Engine
	rows    [][]Value
	scanEnv *env
}

func (g *groupEnv) eval(x sqlast.Expr) (Value, error) {
	switch t := x.(type) {
	case *sqlast.FuncCall:
		if sqlast.IsAggregate(t.Name) {
			return g.aggregate(t)
		}
		// Scalar function: evaluate args in grouped context.
		cp := &sqlast.FuncCall{Name: t.Name, Distinct: t.Distinct, Star: t.Star}
		for _, a := range t.Args {
			v, err := g.eval(a)
			if err != nil {
				return NullValue, err
			}
			cp.Args = append(cp.Args, valueLiteral(v))
		}
		return g.engine.evalScalarFunc(cp, g.repEnv())
	case *sqlast.Binary:
		if t.Op == "AND" || t.Op == "OR" {
			// Short-circuit semantics preserved via direct evaluation.
			l, err := g.eval(t.L)
			if err != nil {
				return NullValue, err
			}
			if t.Op == "AND" && !l.Null && !l.Truthy() {
				return BoolVal(false), nil
			}
			if t.Op == "OR" && l.Truthy() {
				return BoolVal(true), nil
			}
			r, err := g.eval(t.R)
			if err != nil {
				return NullValue, err
			}
			if t.Op == "AND" {
				if l.Null || r.Null {
					return NullValue, nil
				}
				return BoolVal(l.Truthy() && r.Truthy()), nil
			}
			if r.Truthy() {
				return BoolVal(true), nil
			}
			if l.Null || r.Null {
				return NullValue, nil
			}
			return BoolVal(false), nil
		}
		l, err := g.eval(t.L)
		if err != nil {
			return NullValue, err
		}
		r, err := g.eval(t.R)
		if err != nil {
			return NullValue, err
		}
		return g.engine.evalBinary(&sqlast.Binary{Op: t.Op, L: valueLiteral(l), R: valueLiteral(r)}, g.repEnv())
	case *sqlast.Unary:
		v, err := g.eval(t.X)
		if err != nil {
			return NullValue, err
		}
		return g.engine.evalExpr(&sqlast.Unary{Op: t.Op, X: valueLiteral(v)}, g.repEnv())
	case *sqlast.Case:
		if t.Operand == nil {
			for _, w := range t.Whens {
				cv, err := g.eval(w.Cond)
				if err != nil {
					return NullValue, err
				}
				if cv.Truthy() {
					return g.eval(w.Result)
				}
			}
			if t.Else != nil {
				return g.eval(t.Else)
			}
			return NullValue, nil
		}
		op, err := g.eval(t.Operand)
		if err != nil {
			return NullValue, err
		}
		for _, w := range t.Whens {
			cv, err := g.eval(w.Cond)
			if err != nil {
				return NullValue, err
			}
			if Equal(op, cv) {
				return g.eval(w.Result)
			}
		}
		if t.Else != nil {
			return g.eval(t.Else)
		}
		return NullValue, nil
	default:
		// Column refs, literals, subqueries: evaluate on a representative row.
		return g.engine.evalExpr(x, g.repEnv())
	}
}

// repEnv returns an env positioned on the group's representative (first)
// row; for empty global-aggregate groups the row is absent and column
// references fail, matching SQL semantics for non-grouped columns.
func (g *groupEnv) repEnv() *env {
	ev := &env{rel: g.scanEnv.rel, outer: g.scanEnv.outer, ctes: g.scanEnv.ctes}
	if len(g.rows) > 0 {
		ev.row = g.rows[0]
	}
	return ev
}

func (g *groupEnv) aggregate(fc *sqlast.FuncCall) (Value, error) {
	name := strings.ToUpper(fc.Name)
	if name == "COUNT" && fc.Star {
		return IntVal(int64(len(g.rows))), nil
	}
	if len(fc.Args) != 1 {
		return NullValue, execErrorf("%s expects exactly one argument", name)
	}
	arg := fc.Args[0]

	var vals []Value
	seen := map[string]bool{}
	ev := &env{rel: g.scanEnv.rel, outer: g.scanEnv.outer, ctes: g.scanEnv.ctes}
	for _, row := range g.rows {
		g.engine.ops++
		ev.row = row
		v, err := g.engine.evalExpr(arg, ev)
		if err != nil {
			return NullValue, err
		}
		if v.Null {
			continue
		}
		if fc.Distinct {
			k := v.String()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}

	switch name {
	case "COUNT":
		return IntVal(int64(len(vals))), nil
	case "SUM":
		if len(vals) == 0 {
			return NullValue, nil
		}
		allInt := true
		var fsum float64
		var isum int64
		for _, v := range vals {
			if v.Kind != catalog.TypeInt {
				allInt = false
			}
			fsum += v.AsFloat()
			isum += v.I
		}
		if allInt {
			return IntVal(isum), nil
		}
		return FloatVal(fsum), nil
	case "AVG":
		if len(vals) == 0 {
			return NullValue, nil
		}
		var sum float64
		for _, v := range vals {
			sum += v.AsFloat()
		}
		return FloatVal(sum / float64(len(vals))), nil
	case "MIN":
		if len(vals) == 0 {
			return NullValue, nil
		}
		min := vals[0]
		for _, v := range vals[1:] {
			if Compare(v, min) < 0 {
				min = v
			}
		}
		return min, nil
	case "MAX":
		if len(vals) == 0 {
			return NullValue, nil
		}
		max := vals[0]
		for _, v := range vals[1:] {
			if Compare(v, max) > 0 {
				max = v
			}
		}
		return max, nil
	case "STDEV", "VAR":
		if len(vals) < 2 {
			return NullValue, nil
		}
		var sum float64
		for _, v := range vals {
			sum += v.AsFloat()
		}
		mean := sum / float64(len(vals))
		var ss float64
		for _, v := range vals {
			d := v.AsFloat() - mean
			ss += d * d
		}
		variance := ss / float64(len(vals)-1)
		if name == "VAR" {
			return FloatVal(variance), nil
		}
		return FloatVal(math.Sqrt(variance)), nil
	default:
		return NullValue, execErrorf("unknown aggregate %s", name)
	}
}

// valueLiteral converts a runtime value back into a literal AST node so that
// already-computed sub-results can flow through the scalar evaluator.
func valueLiteral(v Value) sqlast.Expr {
	switch {
	case v.Null:
		return sqlast.Null()
	case v.Kind == catalog.TypeInt:
		return sqlast.Number(IntVal(v.I).String())
	case v.Kind == catalog.TypeFloat:
		return sqlast.Number(FloatVal(v.F).String())
	case v.Kind == catalog.TypeBool:
		if v.B {
			return &sqlast.Literal{Kind: sqlast.LitBool, Text: "TRUE"}
		}
		return &sqlast.Literal{Kind: sqlast.LitBool, Text: "FALSE"}
	default:
		return sqlast.Str(v.S)
	}
}
