package engine

// Grouped expression evaluation: groupEnv evaluates expressions in a
// grouping context for one group of rows (the groupOp in op_group.go holds
// the group-building and parallel fan-out machinery). Aggregates fold over
// the group's rows in input order through streaming accumulators, so the
// result — including float accumulation order — is identical no matter how
// groups are scheduled across workers.

import (
	"math"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlast"
)

// groupEnv evaluates expressions in a grouped context: aggregates fold over
// the group's rows; everything else evaluates against the group's first row
// (the grouping columns are constant within a group).
type groupEnv struct {
	engine  *Engine
	rows    [][]Value
	scanEnv *env
}

func (g *groupEnv) eval(x sqlast.Expr) (Value, error) {
	switch t := x.(type) {
	case *sqlast.FuncCall:
		if sqlast.IsAggregate(t.Name) {
			return g.aggregate(t)
		}
		// Scalar function: evaluate args in grouped context.
		cp := &sqlast.FuncCall{Name: t.Name, Distinct: t.Distinct, Star: t.Star}
		for _, a := range t.Args {
			v, err := g.eval(a)
			if err != nil {
				return NullValue, err
			}
			cp.Args = append(cp.Args, valueLiteral(v))
		}
		return g.engine.evalScalarFunc(cp, g.repEnv())
	case *sqlast.Binary:
		if t.Op == "AND" || t.Op == "OR" {
			// Short-circuit semantics preserved via direct evaluation.
			l, err := g.eval(t.L)
			if err != nil {
				return NullValue, err
			}
			if t.Op == "AND" && !l.Null && !l.Truthy() {
				return BoolVal(false), nil
			}
			if t.Op == "OR" && l.Truthy() {
				return BoolVal(true), nil
			}
			r, err := g.eval(t.R)
			if err != nil {
				return NullValue, err
			}
			if t.Op == "AND" {
				if l.Null || r.Null {
					return NullValue, nil
				}
				return BoolVal(l.Truthy() && r.Truthy()), nil
			}
			if r.Truthy() {
				return BoolVal(true), nil
			}
			if l.Null || r.Null {
				return NullValue, nil
			}
			return BoolVal(false), nil
		}
		l, err := g.eval(t.L)
		if err != nil {
			return NullValue, err
		}
		r, err := g.eval(t.R)
		if err != nil {
			return NullValue, err
		}
		return g.engine.evalBinary(&sqlast.Binary{Op: t.Op, L: valueLiteral(l), R: valueLiteral(r)}, g.repEnv())
	case *sqlast.Unary:
		v, err := g.eval(t.X)
		if err != nil {
			return NullValue, err
		}
		return g.engine.evalExpr(&sqlast.Unary{Op: t.Op, X: valueLiteral(v)}, g.repEnv())
	case *sqlast.Case:
		if t.Operand == nil {
			for _, w := range t.Whens {
				cv, err := g.eval(w.Cond)
				if err != nil {
					return NullValue, err
				}
				if cv.Truthy() {
					return g.eval(w.Result)
				}
			}
			if t.Else != nil {
				return g.eval(t.Else)
			}
			return NullValue, nil
		}
		op, err := g.eval(t.Operand)
		if err != nil {
			return NullValue, err
		}
		for _, w := range t.Whens {
			cv, err := g.eval(w.Cond)
			if err != nil {
				return NullValue, err
			}
			if Equal(op, cv) {
				return g.eval(w.Result)
			}
		}
		if t.Else != nil {
			return g.eval(t.Else)
		}
		return NullValue, nil
	default:
		// Column refs, literals, subqueries: evaluate on a representative row.
		return g.engine.evalExpr(x, g.repEnv())
	}
}

// repEnv returns an env positioned on the group's representative (first)
// row; for empty global-aggregate groups the row is absent and column
// references fail, matching SQL semantics for non-grouped columns.
func (g *groupEnv) repEnv() *env {
	ev := &env{rel: g.scanEnv.rel, outer: g.scanEnv.outer, ctes: g.scanEnv.ctes}
	if len(g.rows) > 0 {
		ev.row = g.rows[0]
	}
	return ev
}

// foldArg streams the aggregate argument's non-NULL values (deduplicated
// under DISTINCT) through visit, in input row order. When the argument is a
// plain column reference resolving uniquely in the group's source relation,
// values are read straight from the rows without entering the expression
// evaluator — the hot path for every aggregate over a base column.
func (g *groupEnv) foldArg(fc *sqlast.FuncCall, visit func(Value)) error {
	arg := fc.Args[0]
	g.engine.ops.Add(int64(len(g.rows)))
	var seen map[string]bool
	if fc.Distinct {
		seen = make(map[string]bool)
	}
	emit := func(v Value) {
		if v.Null {
			return
		}
		if seen != nil {
			k := v.String()
			if seen[k] {
				return
			}
			seen[k] = true
		}
		visit(v)
	}
	if cr, ok := arg.(*sqlast.ColumnRef); ok {
		if idx := g.scanEnv.rel.find(cr.Table, cr.Name); len(idx) == 1 {
			ci := idx[0]
			for _, row := range g.rows {
				emit(row[ci])
			}
			return nil
		}
	}
	ev := &env{rel: g.scanEnv.rel, outer: g.scanEnv.outer, ctes: g.scanEnv.ctes}
	for _, row := range g.rows {
		ev.row = row
		v, err := g.engine.evalExpr(arg, ev)
		if err != nil {
			return err
		}
		emit(v)
	}
	return nil
}

func (g *groupEnv) aggregate(fc *sqlast.FuncCall) (Value, error) {
	name := strings.ToUpper(fc.Name)
	if name == "COUNT" && fc.Star {
		return IntVal(int64(len(g.rows))), nil
	}
	if len(fc.Args) != 1 {
		return NullValue, execErrorf("%s expects exactly one argument", name)
	}

	switch name {
	case "COUNT":
		var n int64
		if err := g.foldArg(fc, func(Value) { n++ }); err != nil {
			return NullValue, err
		}
		return IntVal(n), nil
	case "SUM":
		var n, isum int64
		var fsum float64
		allInt := true
		err := g.foldArg(fc, func(v Value) {
			n++
			if v.Kind != catalog.TypeInt {
				allInt = false
			}
			fsum += v.AsFloat()
			isum += v.I
		})
		if err != nil {
			return NullValue, err
		}
		if n == 0 {
			return NullValue, nil
		}
		if allInt {
			return IntVal(isum), nil
		}
		return FloatVal(fsum), nil
	case "AVG":
		var n int64
		var sum float64
		err := g.foldArg(fc, func(v Value) {
			n++
			sum += v.AsFloat()
		})
		if err != nil {
			return NullValue, err
		}
		if n == 0 {
			return NullValue, nil
		}
		return FloatVal(sum / float64(n)), nil
	case "MIN", "MAX":
		var best Value
		var has bool
		wantMax := name == "MAX"
		err := g.foldArg(fc, func(v Value) {
			if !has {
				best, has = v, true
				return
			}
			c := Compare(v, best)
			if (wantMax && c > 0) || (!wantMax && c < 0) {
				best = v
			}
		})
		if err != nil {
			return NullValue, err
		}
		if !has {
			return NullValue, nil
		}
		return best, nil
	case "STDEV", "VAR":
		// Two passes over the materialized values, preserving the exact
		// accumulation order (a streaming variance would round differently).
		var vals []Value
		if err := g.foldArg(fc, func(v Value) { vals = append(vals, v) }); err != nil {
			return NullValue, err
		}
		if len(vals) < 2 {
			return NullValue, nil
		}
		var sum float64
		for _, v := range vals {
			sum += v.AsFloat()
		}
		mean := sum / float64(len(vals))
		var ss float64
		for _, v := range vals {
			d := v.AsFloat() - mean
			ss += d * d
		}
		variance := ss / float64(len(vals)-1)
		if name == "VAR" {
			return FloatVal(variance), nil
		}
		return FloatVal(math.Sqrt(variance)), nil
	default:
		return NullValue, execErrorf("unknown aggregate %s", name)
	}
}

// valueLiteral converts a runtime value back into a literal AST node so that
// already-computed sub-results can flow through the scalar evaluator.
func valueLiteral(v Value) sqlast.Expr {
	switch {
	case v.Null:
		return sqlast.Null()
	case v.Kind == catalog.TypeInt:
		return sqlast.Number(IntVal(v.I).String())
	case v.Kind == catalog.TypeFloat:
		return sqlast.Number(FloatVal(v.F).String())
	case v.Kind == catalog.TypeBool:
		if v.B {
			return &sqlast.Literal{Kind: sqlast.LitBool, Text: "TRUE"}
		}
		return &sqlast.Literal{Kind: sqlast.LitBool, Text: "FALSE"}
	default:
		return sqlast.Str(v.S)
	}
}
