package engine

// projectOp: the streaming projection operator. It evaluates the SELECT
// items per input batch and, when the plan carries ORDER BY, also evaluates
// the sort keys in the same row context (so keys may reference
// non-projected source columns and projection aliases) and appends them as
// trailing hidden columns for the SortNode above.

import (
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlast"
)

type projectOp struct {
	oe    *opEnv
	node  *ProjectNode
	child operator

	cols    []Col // visible output columns
	all     []Col // cols plus hidden order-key columns
	starIdx map[int][]int
	ev      *env
}

func (o *projectOp) columns() []Col  { return o.all }
func (o *projectOp) hiddenCols() int { return len(o.node.OrderBy) }
func (o *projectOp) close()          { o.child.close() }

func (o *projectOp) open() error {
	if err := o.child.open(); err != nil {
		return err
	}
	src := &Relation{Cols: o.child.columns()}
	cols, starIdx, err := projectionHeader(o.node.Items, src)
	if err != nil {
		return err
	}
	o.cols, o.starIdx = cols, starIdx
	o.all = cols
	if n := len(o.node.OrderBy); n > 0 {
		o.all = make([]Col, len(cols), len(cols)+n)
		copy(o.all, cols)
		for j := range o.node.OrderBy {
			o.all = append(o.all, orderKeyCol(j))
		}
	}
	o.ev = o.oe.evalEnv(o.child.columns())
	return nil
}

// orderKeyCol names a hidden sort-key column. The name is never resolvable
// from SQL (identifiers cannot start with \x00), so hidden columns can
// never capture a user column reference.
func orderKeyCol(j int) Col {
	return Col{Name: "\x00order" + string(rune('0'+j)), Type: catalog.TypeAny}
}

func (o *projectOp) next() ([][]Value, error) {
	batch, err := o.child.next()
	if err != nil || batch == nil {
		return nil, err
	}
	e := o.oe.e
	e.ops.Add(int64(len(batch)))
	nOrder := len(o.node.OrderBy)
	width := len(o.all)
	// Every output row is exactly `width` wide (star expansions are counted
	// in the header), so one backing allocation serves the whole batch.
	backing := make([]Value, 0, len(batch)*width)
	out := make([][]Value, 0, len(batch))
	for _, row := range batch {
		o.ev.row = row
		base := len(backing)
		for itemIdx, item := range o.node.Items {
			if idxs, isStar := o.starIdx[itemIdx]; isStar {
				for _, i := range idxs {
					backing = append(backing, row[i])
				}
				continue
			}
			v, err := e.evalExpr(item.Expr, o.ev)
			if err != nil {
				return nil, err
			}
			backing = append(backing, v)
		}
		if nOrder > 0 {
			visEnd := len(backing)
			backing = backing[:base+width]
			outRow := backing[base : base+width : base+width]
			if err := e.orderKeys(o.node.OrderBy, o.ev, o.cols, outRow[:visEnd-base], outRow[visEnd-base:]); err != nil {
				return nil, err
			}
			out = append(out, outRow)
		} else {
			out = append(out, backing[base:len(backing):len(backing)])
		}
	}
	return out, nil
}

// projectionHeader computes output columns and, for star items, the source
// column indexes they expand to.
func projectionHeader(items []sqlast.SelectItem, src *Relation) ([]Col, map[int][]int, error) {
	var cols []Col
	starIdx := make(map[int][]int)
	for itemIdx, item := range items {
		if star, ok := item.Expr.(*sqlast.Star); ok {
			var idxs []int
			for i, c := range src.Cols {
				if star.Table == "" || strings.EqualFold(c.Qualifier, star.Table) {
					idxs = append(idxs, i)
					cols = append(cols, Col{Name: c.Name, Type: c.Type})
				}
			}
			if len(idxs) == 0 && star.Table != "" {
				return nil, nil, execErrorf("star qualifier %q matches no table", star.Table)
			}
			starIdx[itemIdx] = idxs
			continue
		}
		name := item.Alias
		if name == "" {
			if cr, ok := item.Expr.(*sqlast.ColumnRef); ok {
				name = cr.Name
			} else {
				name = "expr"
			}
		}
		cols = append(cols, Col{Name: name, Type: catalog.TypeAny})
	}
	return cols, starIdx, nil
}

// orderKeys evaluates ORDER BY expressions for one row into keys (caller-
// allocated, len(order)). Projection aliases take precedence over source
// columns.
func (e *Engine) orderKeys(order []sqlast.OrderItem, scanEnv *env, outCols []Col, outRow []Value, keys []Value) error {
	for j, ob := range order {
		if cr, ok := ob.Expr.(*sqlast.ColumnRef); ok && cr.Table == "" {
			found := false
			for i, c := range outCols {
				if strings.EqualFold(c.Name, cr.Name) {
					keys[j] = outRow[i]
					found = true
					break
				}
			}
			if found {
				continue
			}
		}
		v, err := e.evalExpr(ob.Expr, scanEnv)
		if err != nil {
			return err
		}
		keys[j] = v
	}
	return nil
}
