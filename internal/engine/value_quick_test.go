package engine

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
)

// randomValue builds an arbitrary Value for quick checks.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return NullValue
	case 1:
		return IntVal(int64(r.Intn(200) - 100))
	case 2:
		return FloatVal(float64(r.Intn(2000))/10 - 100)
	case 3:
		return TextVal(string(rune('a' + r.Intn(26))))
	default:
		return BoolVal(r.Intn(2) == 0)
	}
}

type valueTriple struct{ A, B, C Value }

// Generate implements quick.Generator.
func (valueTriple) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(valueTriple{randomValue(r), randomValue(r), randomValue(r)})
}

// Property (testing/quick): Compare is a total order — antisymmetric,
// reflexive, and transitive — which sorting and grouping rely on.
func TestCompareTotalOrderQuick(t *testing.T) {
	f := func(tr valueTriple) bool {
		a, b, c := tr.A, tr.B, tr.C
		if Compare(a, a) != 0 {
			return false
		}
		if Compare(a, b) != -Compare(b, a) {
			return false
		}
		// Transitivity: a<=b and b<=c implies a<=c.
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): Equal is never true when either side is NULL,
// and agrees with Compare otherwise.
func TestEqualNullSemanticsQuick(t *testing.T) {
	f := func(tr valueTriple) bool {
		a, b := tr.A, tr.B
		if a.Null || b.Null {
			return !Equal(a, b)
		}
		return Equal(a, b) == (Compare(a, b) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): Key distinguishes NULL from the empty string and
// is injective on simple rows of scalar values with distinct renderings.
func TestKeyNullVsEmptyQuick(t *testing.T) {
	if Key([]Value{NullValue}) == Key([]Value{TextVal("")}) {
		t.Fatal("NULL and empty string must hash differently")
	}
	f := func(tr valueTriple) bool {
		rowA := []Value{tr.A, tr.B}
		rowB := []Value{tr.A, tr.C}
		if Equal(tr.B, tr.C) || (tr.B.Null && tr.C.Null) {
			return true // rows may collide when the values coincide
		}
		if tr.B.Null != tr.C.Null {
			return Key(rowA) != Key(rowB)
		}
		if tr.B.String() == tr.C.String() {
			return true // cross-kind renderings may legitimately coincide
		}
		return Key(rowA) != Key(rowB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Truthy never panics and NULL is never truthy.
func TestTruthyQuick(t *testing.T) {
	f := func(tr valueTriple) bool {
		if tr.A.Null && tr.A.Truthy() {
			return false
		}
		_ = tr.B.Truthy()
		_ = tr.C.Truthy()
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueStringRendering(t *testing.T) {
	cases := map[string]Value{
		"NULL":  NullValue,
		"42":    IntVal(42),
		"-7":    IntVal(-7),
		"3.5":   FloatVal(3.5),
		"x":     TextVal("x"),
		"true":  BoolVal(true),
		"false": BoolVal(false),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", v, got, want)
		}
	}
	if (Value{Kind: catalog.TypeAny}).String() != "?" {
		t.Error("unknown kind should render as ?")
	}
}
