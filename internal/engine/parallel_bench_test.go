package engine_test

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/engine"
)

// benchDB is a synthetic IMDB instance large enough that grouped aggregation
// and set operations dominate query time (matching the scale the PERF.md
// hot-path notes are written against).
func benchDB(b *testing.B) *engine.DB {
	b.Helper()
	return datagen.Instance(catalog.IMDB(), datagen.Config{Seed: 13, Rows: 4000})
}

func benchQuery(b *testing.B, parallel int, sql string) {
	db := benchDB(b)
	e := engine.New(db)
	e.Parallel = parallel
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.QuerySQL(sql); err != nil {
			b.Fatal(err)
		}
	}
}

const groupedAggSQL = "SELECT kind_id , COUNT(*) , AVG( production_year ) , MIN( title ) , MAX( production_year ) " +
	"FROM title GROUP BY kind_id ORDER BY kind_id ASC"

const groupedManySQL = "SELECT production_year , COUNT(*) , AVG( kind_id ) FROM title " +
	"GROUP BY production_year ORDER BY production_year ASC"

const unionSQL = "SELECT movie_id FROM movie_companies UNION SELECT movie_id FROM movie_keyword"

const intersectSQL = "SELECT movie_id FROM movie_companies INTERSECT SELECT movie_id FROM movie_keyword"

const exceptSQL = "SELECT movie_id FROM movie_companies EXCEPT SELECT movie_id FROM movie_keyword"

// BenchmarkGroupedAggregation measures grouped aggregation over a wide input
// (few groups, large groups: the aggregate-fold hot path).
func BenchmarkGroupedAggregation(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchQuery(b, 1, groupedAggSQL) })
	b.Run("parallel8", func(b *testing.B) { benchQuery(b, 8, groupedAggSQL) })
}

// BenchmarkGroupedManyGroups measures grouped aggregation with many small
// groups (the group-map and per-group evaluation hot path).
func BenchmarkGroupedManyGroups(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchQuery(b, 1, groupedManySQL) })
	b.Run("parallel8", func(b *testing.B) { benchQuery(b, 8, groupedManySQL) })
}

// BenchmarkSetOperations measures UNION/INTERSECT/EXCEPT over two large
// inputs (the row-keying and dedup hot path).
func BenchmarkSetOperations(b *testing.B) {
	b.Run("union/serial", func(b *testing.B) { benchQuery(b, 1, unionSQL) })
	b.Run("union/parallel8", func(b *testing.B) { benchQuery(b, 8, unionSQL) })
	b.Run("intersect/serial", func(b *testing.B) { benchQuery(b, 1, intersectSQL) })
	b.Run("intersect/parallel8", func(b *testing.B) { benchQuery(b, 8, intersectSQL) })
	b.Run("except/serial", func(b *testing.B) { benchQuery(b, 1, exceptSQL) })
	b.Run("except/parallel8", func(b *testing.B) { benchQuery(b, 8, exceptSQL) })
}
