package engine

import (
	"repro/internal/catalog"
)

// This file is the engine's physical-operator layer: a common batch-pull
// interface plus the simple operators (scan, filter, sort, limit). The
// heavier operators live in their own files: joins in op_join.go, projection
// in op_project.go, grouped aggregation in op_group.go, and
// distinct/set-operations in op_setop.go. Operators are instantiated per
// execution from the immutable logical plan (plan.go) by buildOperator in
// exec.go; they are single-use and not safe for concurrent calls (intra-
// query parallelism happens *inside* pipeline-breaking operators, bounded by
// Engine.Parallel, never across the operator tree).

// batchRows is the number of rows a streaming operator hands downstream per
// next() call.
const batchRows = 1024

// minParallelRows is the smallest input (total rows across operands) for
// which a pipeline breaker switches to its partitioned parallel
// implementation; below it the fan-out overhead dominates. Parallel and
// serial implementations are byte-identical, so the threshold affects only
// performance. A variable so tests can force the parallel paths on small
// handcrafted inputs.
var minParallelRows = 512

// operator is a physical plan operator. The contract is open-once,
// batch-pull until a nil batch, close-once:
//
//	open    prepares the operator; pipeline breakers (group, sort, set ops,
//	        joins) do all their work here.
//	next    returns the next batch of output rows, or nil at end of stream.
//	        Returned batches must not be retained across calls by streaming
//	        consumers that mutate them (none do).
//	columns is the output header — valid only after open, since most
//	        schemas depend on resolved child relations.
//	hiddenCols is the count of trailing hidden ORDER-BY-key columns
//	        included in columns(); they are consumed by sortOp and pruned
//	        before rows leave the query block.
type operator interface {
	columns() []Col
	hiddenCols() int
	open() error
	next() ([][]Value, error)
	close()
}

// opEnv is the per-execution context shared by every operator of one plan
// run: the engine, the outer row context for correlated subqueries, and the
// CTE scopes.
type opEnv struct {
	e     *Engine
	outer *env
	// ctes are the bindings visible to this query block (parent scope plus
	// this block's WITH clause).
	ctes map[string]*Relation
	// parentCTEs is the enclosing scope only; the right side of a set
	// operation resolves against it, not against the left block's WITH
	// bindings.
	parentCTEs map[string]*Relation
}

// evalEnv returns a row-evaluation env over the given header (rows are
// plugged in via env.row).
func (oe *opEnv) evalEnv(cols []Col) *env {
	return &env{rel: &Relation{Cols: cols}, outer: oe.outer, ctes: oe.ctes}
}

// drainInput opens op and materializes its whole output, reusing the
// operator's own backing relation when it is already materialized.
func drainInput(op operator) (*Relation, error) {
	if err := op.open(); err != nil {
		return nil, err
	}
	if m, ok := op.(interface{ materialized() *Relation }); ok {
		if rel := m.materialized(); rel != nil {
			return rel, nil
		}
	}
	rel := &Relation{Cols: op.columns()}
	for {
		batch, err := op.next()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			return rel, nil
		}
		rel.Rows = append(rel.Rows, batch...)
	}
}

// relCursor streams a materialized row set in batches.
type relCursor struct {
	rows [][]Value
	pos  int
}

func (c *relCursor) next() [][]Value {
	if c.pos >= len(c.rows) {
		return nil
	}
	end := c.pos + batchRows
	if end > len(c.rows) {
		end = len(c.rows)
	}
	batch := c.rows[c.pos:end]
	c.pos = end
	return batch
}

// ---------------------------------------------------------------------------
// oneRowOp: SELECT without FROM — a single zero-width row.

type oneRowOp struct {
	done bool
}

func (o *oneRowOp) columns() []Col  { return nil }
func (o *oneRowOp) hiddenCols() int { return 0 }
func (o *oneRowOp) open() error     { return nil }
func (o *oneRowOp) next() ([][]Value, error) {
	if o.done {
		return nil, nil
	}
	o.done = true
	return [][]Value{{}}, nil
}
func (o *oneRowOp) close() {}

// ---------------------------------------------------------------------------
// errorOp: a plan node that cannot execute (kept total at plan time).

type errorOp struct{ err error }

func (o *errorOp) columns() []Col           { return nil }
func (o *errorOp) hiddenCols() int          { return 0 }
func (o *errorOp) open() error              { return o.err }
func (o *errorOp) next() ([][]Value, error) { return nil, o.err }
func (o *errorOp) close()                   {}

// ---------------------------------------------------------------------------
// scanOp: base table or CTE scan, stamping the qualifier on every column.

type scanOp struct {
	oe   *opEnv
	node *ScanNode

	rel    *Relation
	cursor relCursor

	// Streaming mode: set when the table lives in DB.Source rather than
	// DB.Tables. materialized() reports nil, so consumers that want the whole
	// relation fall back to draining batches.
	src     ScanCursor
	srcCols []Col
}

func (o *scanOp) columns() []Col {
	if o.src != nil {
		return o.srcCols
	}
	return o.rel.Cols
}
func (o *scanOp) hiddenCols() int { return 0 }
func (o *scanOp) materialized() *Relation {
	if o.src != nil {
		return nil
	}
	return o.rel
}
func (o *scanOp) next() ([][]Value, error) {
	if o.src != nil {
		return o.src.Next()
	}
	return o.cursor.next(), nil
}
func (o *scanOp) close() {
	if o.src != nil {
		o.src.Close()
		o.src = nil
	}
}

func (o *scanOp) open() error {
	probe := &env{ctes: o.oe.ctes, outer: o.oe.outer}
	if rel, ok := probe.lookupCTE(catalog.BareName(o.node.Name)); ok {
		o.rel = requalify(rel, o.node.Qualifier)
	} else if rel, ok := o.oe.e.DB.Table(o.node.Name); ok {
		o.rel = requalify(rel, o.node.Qualifier)
	} else if src := o.oe.e.DB.Source; src != nil {
		bare := catalog.BareName(o.node.Name)
		cols, ok := src.SourceCols(bare)
		if !ok {
			return execErrorf("table %q does not exist", o.node.Name)
		}
		cur, err := src.OpenScan(bare)
		if err != nil {
			return err
		}
		o.srcCols = make([]Col, len(cols))
		for i, c := range cols {
			o.srcCols[i] = Col{Qualifier: o.node.Qualifier, Name: c.Name, Type: c.Type}
		}
		o.src = cur
		return nil
	} else {
		return execErrorf("table %q does not exist", o.node.Name)
	}
	o.cursor = relCursor{rows: o.rel.Rows}
	return nil
}

// ---------------------------------------------------------------------------
// subqueryScanOp: derived table — execute the sub-plan, stamp the alias.

type subqueryScanOp struct {
	oe   *opEnv
	node *SubqueryScanNode

	rel    *Relation
	cursor relCursor
}

func (o *subqueryScanOp) columns() []Col           { return o.rel.Cols }
func (o *subqueryScanOp) hiddenCols() int          { return 0 }
func (o *subqueryScanOp) materialized() *Relation  { return o.rel }
func (o *subqueryScanOp) next() ([][]Value, error) { return o.cursor.next(), nil }
func (o *subqueryScanOp) close()                   {}

func (o *subqueryScanOp) open() error {
	rel, err := o.oe.e.execPlan(o.node.Plan, o.oe.outer, o.oe.ctes)
	if err != nil {
		return err
	}
	o.rel = requalify(rel, o.node.Qualifier)
	o.cursor = relCursor{rows: o.rel.Rows}
	return nil
}

// ---------------------------------------------------------------------------
// filterOp: streaming predicate over the child's batches.

type filterOp struct {
	oe    *opEnv
	node  *FilterNode
	child operator

	ev *env
}

func (o *filterOp) columns() []Col  { return o.child.columns() }
func (o *filterOp) hiddenCols() int { return o.child.hiddenCols() }
func (o *filterOp) close()          { o.child.close() }

func (o *filterOp) open() error {
	if err := o.child.open(); err != nil {
		return err
	}
	o.ev = o.oe.evalEnv(o.child.columns())
	return nil
}

func (o *filterOp) next() ([][]Value, error) {
	for {
		batch, err := o.child.next()
		if err != nil || batch == nil {
			return nil, err
		}
		o.oe.e.ops.Add(int64(len(batch)))
		out := make([][]Value, 0, len(batch))
		for _, row := range batch {
			o.ev.row = row
			v, err := o.oe.e.evalExpr(o.node.Cond, o.ev)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				out = append(out, row)
			}
		}
		if len(out) > 0 {
			return out, nil
		}
	}
}

// ---------------------------------------------------------------------------
// sortOp: pipeline breaker ordering the input.

type sortOp struct {
	oe    *opEnv
	node  *SortNode
	child operator

	rel    *Relation
	cursor relCursor
}

func (o *sortOp) columns() []Col           { return o.rel.Cols }
func (o *sortOp) hiddenCols() int          { return 0 }
func (o *sortOp) materialized() *Relation  { return o.rel }
func (o *sortOp) next() ([][]Value, error) { return o.cursor.next(), nil }
func (o *sortOp) close()                   { o.child.close() }

func (o *sortOp) open() error {
	in, err := drainInput(o.child)
	if err != nil {
		return err
	}
	var keys [][]Value
	var visible *Relation
	if o.node.KeysFromInput {
		// The child (Project/Group) evaluated the ORDER BY expressions into
		// trailing hidden columns; split them off and sort the visible
		// prefix.
		vis := len(in.Cols) - o.child.hiddenCols()
		keys = make([][]Value, len(in.Rows))
		visRows := make([][]Value, len(in.Rows))
		for i, row := range in.Rows {
			keys[i] = row[vis:]
			visRows[i] = row[:vis:vis]
		}
		visible = &Relation{Cols: in.Cols[:vis], Rows: visRows}
	} else {
		// Post-set-operation ordering: resolve keys against the output
		// columns themselves.
		keys = make([][]Value, len(in.Rows))
		oenv := &env{rel: in, ctes: o.oe.ctes}
		for i, row := range in.Rows {
			oenv.row = row
			rowKeys := make([]Value, len(o.node.Order))
			for j, ob := range o.node.Order {
				v, err := o.oe.e.evalExpr(ob.Expr, oenv)
				if err != nil {
					return err
				}
				rowKeys[j] = v
			}
			keys[i] = rowKeys
		}
		visible = in
	}
	o.rel = sortRelation(visible, keys, o.node.Order)
	o.cursor = relCursor{rows: o.rel.Rows}
	return nil
}

// ---------------------------------------------------------------------------
// limitOp: OFFSET/LIMIT/TOP. The child is drained fully (the pre-refactor
// engine evaluated every row before slicing, and error behavior must not
// depend on the limit), then the window is sliced off.

type limitOp struct {
	node  *LimitNode
	child operator

	rel    *Relation
	cursor relCursor
}

func (o *limitOp) columns() []Col           { return o.rel.Cols }
func (o *limitOp) hiddenCols() int          { return 0 }
func (o *limitOp) materialized() *Relation  { return o.rel }
func (o *limitOp) next() ([][]Value, error) { return o.cursor.next(), nil }
func (o *limitOp) close()                   { o.child.close() }

func (o *limitOp) open() error {
	in, err := drainInput(o.child)
	if err != nil {
		return err
	}
	rows := in.Rows
	if o.node.Offset > 0 {
		if o.node.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[o.node.Offset:]
		}
	}
	if o.node.Limit >= 0 && o.node.Limit < len(rows) {
		rows = rows[:o.node.Limit]
	}
	o.rel = &Relation{Cols: in.Cols, Rows: rows}
	o.cursor = relCursor{rows: rows}
	return nil
}

// rowKey renders a row into the canonical grouping/set-operation key,
// appending to dst. Key (value.go) is defined in terms of this, so there is
// exactly one encoding.
func rowKey(dst []byte, row []Value) []byte {
	for i, v := range row {
		if i > 0 {
			dst = append(dst, '\x1f')
		}
		if v.Null {
			dst = append(dst, '\x00', 'N')
		} else {
			dst = appendValue(dst, v)
		}
	}
	return dst
}

func appendValue(dst []byte, v Value) []byte {
	switch v.Kind {
	case catalog.TypeText:
		return append(dst, v.S...)
	default:
		return append(dst, v.String()...)
	}
}
