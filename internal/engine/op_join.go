package engine

// Physical join operators and the shared row plumbing they use: hash join,
// nested-loop join with outer padding, cross product, and the implicit-join
// operator that orders comma-joined relations at execution time (the greedy
// ordering itself lives in planner.go).

import (
	"repro/internal/sqlast"
)

// rowArena block-allocates fixed-width result rows, replacing the per-row
// make in the join and cross-product inner loops with one allocation per
// block. Rows handed out are capacity-clipped so an append on one can never
// bleed into the next.
type rowArena struct {
	width int
	buf   []Value
}

const arenaBlockRows = 256

func newRowArena(width int) *rowArena { return &rowArena{width: width} }

func (a *rowArena) next() []Value {
	if a.width == 0 {
		return nil
	}
	if cap(a.buf)-len(a.buf) < a.width {
		a.buf = make([]Value, 0, a.width*arenaBlockRows)
	}
	n := len(a.buf)
	a.buf = a.buf[:n+a.width]
	return a.buf[n : n+a.width : n+a.width]
}

// concat returns l++r as an arena-backed row.
func (a *rowArena) concat(l, r []Value) []Value {
	row := a.next()
	copy(row, l)
	copy(row[len(l):], r)
	return row
}

func concatRows(a, b []Value) []Value {
	row := make([]Value, 0, len(a)+len(b))
	row = append(row, a...)
	return append(row, b...)
}

func nullRow(n int) []Value {
	row := make([]Value, n)
	for i := range row {
		row[i] = NullValue
	}
	return row
}

func (e *Engine) crossProduct(a, b *Relation) (*Relation, error) {
	out := &Relation{Cols: append(append([]Col{}, a.Cols...), b.Cols...)}
	n := len(a.Rows) * len(b.Rows)
	if n > e.maxRows() {
		return nil, execErrorf("cross product exceeds row cap (%d x %d)", len(a.Rows), len(b.Rows))
	}
	e.ops.Add(int64(n))
	arena := newRowArena(len(out.Cols))
	out.Rows = make([][]Value, 0, n)
	for _, ra := range a.Rows {
		for _, rb := range b.Rows {
			out.Rows = append(out.Rows, arena.concat(ra, rb))
		}
	}
	return out, nil
}

// joinRelations executes an explicit join of two materialized relations.
// Equi-joins on plain column references use a hash join unless
// ForceNestedLoop is set; everything else is nested-loop.
func (e *Engine) joinRelations(left, right *Relation, joinType string, on sqlast.Expr, oe *opEnv) (*Relation, error) {
	out := &Relation{Cols: append(append([]Col{}, left.Cols...), right.Cols...)}
	if joinType == "CROSS" || on == nil {
		return e.crossProduct(left, right)
	}

	if li, ri, ok := equiJoinCols(on, left, right); ok && !e.ForceNestedLoop {
		return e.hashJoin(left, right, li, ri, joinType, out)
	}

	// Nested-loop join with outer-join padding. The ON predicate evaluates
	// against one scratch row reused across candidates (expression
	// evaluation only reads the current row); only matching rows are
	// materialized, from the arena.
	joined := &env{rel: out, outer: oe.outer, ctes: oe.ctes}
	rightMatched := make([]bool, len(right.Rows))
	arena := newRowArena(len(out.Cols))
	scratch := make([]Value, len(left.Cols)+len(right.Cols))
	rightNulls := nullRow(len(right.Cols))
	var ops int64
	for _, lr := range left.Rows {
		matched := false
		copy(scratch, lr)
		for ri, rr := range right.Rows {
			ops++
			copy(scratch[len(lr):], rr)
			joined.row = scratch
			v, err := e.evalExpr(on, joined)
			if err != nil {
				e.ops.Add(ops)
				return nil, err
			}
			if v.Truthy() {
				matched = true
				rightMatched[ri] = true
				out.Rows = append(out.Rows, arena.concat(lr, rr))
				if len(out.Rows) > e.maxRows() {
					e.ops.Add(ops)
					return nil, execErrorf("join result exceeds row cap")
				}
			}
		}
		if !matched && (joinType == "LEFT" || joinType == "FULL") {
			out.Rows = append(out.Rows, arena.concat(lr, rightNulls))
		}
	}
	e.ops.Add(ops)
	if joinType == "RIGHT" || joinType == "FULL" {
		leftNulls := nullRow(len(left.Cols))
		for ri, rr := range right.Rows {
			if !rightMatched[ri] {
				out.Rows = append(out.Rows, arena.concat(leftNulls, rr))
			}
		}
	}
	return out, nil
}

// equiJoinCols recognizes ON a.x = b.y patterns and returns the column
// indexes on each side.
func equiJoinCols(on sqlast.Expr, left, right *Relation) (li, ri int, ok bool) {
	bin, isBin := on.(*sqlast.Binary)
	if !isBin || bin.Op != "=" {
		return 0, 0, false
	}
	lc, lok := bin.L.(*sqlast.ColumnRef)
	rc, rok := bin.R.(*sqlast.ColumnRef)
	if !lok || !rok {
		return 0, 0, false
	}
	tryResolve := func(rel *Relation, cr *sqlast.ColumnRef) (int, bool) {
		idx := rel.find(cr.Table, cr.Name)
		if len(idx) == 1 {
			return idx[0], true
		}
		return 0, false
	}
	if i, ok1 := tryResolve(left, lc); ok1 {
		if jx, ok2 := tryResolve(right, rc); ok2 {
			return i, jx, true
		}
	}
	if i, ok1 := tryResolve(left, rc); ok1 {
		if jx, ok2 := tryResolve(right, lc); ok2 {
			return i, jx, true
		}
	}
	return 0, 0, false
}

func (e *Engine) hashJoin(left, right *Relation, li, ri int, joinType string, out *Relation) (*Relation, error) {
	index := make(map[string][]int, len(right.Rows))
	for idx, rr := range right.Rows {
		v := rr[ri]
		if v.Null {
			continue
		}
		k := v.String()
		index[k] = append(index[k], idx)
	}
	e.ops.Add(int64(len(right.Rows)))
	rightMatched := make([]bool, len(right.Rows))
	arena := newRowArena(len(out.Cols))
	rightNulls := nullRow(len(right.Cols))
	out.Rows = make([][]Value, 0, len(left.Rows))
	for _, lr := range left.Rows {
		v := lr[li]
		matched := false
		if !v.Null {
			for _, idx := range index[v.String()] {
				// Guard against hash collisions across kinds via Equal.
				if Equal(v, right.Rows[idx][ri]) {
					matched = true
					rightMatched[idx] = true
					out.Rows = append(out.Rows, arena.concat(lr, right.Rows[idx]))
					if len(out.Rows) > e.maxRows() {
						return nil, execErrorf("join result exceeds row cap")
					}
				}
			}
		}
		if !matched && (joinType == "LEFT" || joinType == "FULL") {
			out.Rows = append(out.Rows, arena.concat(lr, rightNulls))
		}
	}
	e.ops.Add(int64(len(left.Rows)))
	if joinType == "RIGHT" || joinType == "FULL" {
		leftNulls := nullRow(len(left.Cols))
		for idx, rr := range right.Rows {
			if !rightMatched[idx] {
				out.Rows = append(out.Rows, arena.concat(leftNulls, rr))
			}
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// joinOp: explicit join — drain both children, join, stream the result.

type joinOp struct {
	oe          *opEnv
	node        *JoinNode
	left, right operator

	rel    *Relation
	cursor relCursor
}

func (o *joinOp) columns() []Col           { return o.rel.Cols }
func (o *joinOp) hiddenCols() int          { return 0 }
func (o *joinOp) materialized() *Relation  { return o.rel }
func (o *joinOp) next() ([][]Value, error) { return o.cursor.next(), nil }
func (o *joinOp) close()                   { o.left.close(); o.right.close() }

func (o *joinOp) open() error {
	left, err := drainInput(o.left)
	if err != nil {
		return err
	}
	right, err := drainInput(o.right)
	if err != nil {
		return err
	}
	rel, err := o.oe.e.joinRelations(left, right, o.node.Type, o.node.On, o.oe)
	if err != nil {
		return err
	}
	o.rel = rel
	o.cursor = relCursor{rows: rel.Rows}
	return nil
}

// ---------------------------------------------------------------------------
// crossOp: left-deep cross product of comma-joined inputs (planner disabled
// or no WHERE clause to mine for join conditions).

type crossOp struct {
	oe     *opEnv
	inputs []operator

	rel    *Relation
	cursor relCursor
}

func (o *crossOp) columns() []Col           { return o.rel.Cols }
func (o *crossOp) hiddenCols() int          { return 0 }
func (o *crossOp) materialized() *Relation  { return o.rel }
func (o *crossOp) next() ([][]Value, error) { return o.cursor.next(), nil }
func (o *crossOp) close() {
	for _, in := range o.inputs {
		in.close()
	}
}

func (o *crossOp) open() error {
	var acc *Relation
	for _, in := range o.inputs {
		rel, err := drainInput(in)
		if err != nil {
			return err
		}
		if acc == nil {
			acc = rel
			continue
		}
		acc, err = o.oe.e.crossProduct(acc, rel)
		if err != nil {
			return err
		}
	}
	o.rel = acc
	o.cursor = relCursor{rows: acc.Rows}
	return nil
}

// ---------------------------------------------------------------------------
// implicitJoinOp: comma-joined FROM list plus conjunctive WHERE. The greedy
// left-deep ordering (planner.go) decides at open time which equality
// conjuncts become hash-join conditions; the leftover conjuncts filter the
// joined result here, so downstream operators see exactly the rows the
// query's WHERE admits.

type implicitJoinOp struct {
	oe     *opEnv
	node   *ImplicitJoinNode
	inputs []operator

	rel    *Relation
	cursor relCursor
}

func (o *implicitJoinOp) columns() []Col           { return o.rel.Cols }
func (o *implicitJoinOp) hiddenCols() int          { return 0 }
func (o *implicitJoinOp) materialized() *Relation  { return o.rel }
func (o *implicitJoinOp) next() ([][]Value, error) { return o.cursor.next(), nil }
func (o *implicitJoinOp) close() {
	for _, in := range o.inputs {
		in.close()
	}
}

func (o *implicitJoinOp) open() error {
	rels := make([]*Relation, len(o.inputs))
	for i, in := range o.inputs {
		rel, err := drainInput(in)
		if err != nil {
			return err
		}
		rels[i] = rel
	}
	var joined *Relation
	var residual sqlast.Expr
	var err error
	if o.node.CostOrder {
		joined, residual, err = o.oe.e.orderImplicitJoinsCost(rels, o.node.Where)
	} else {
		joined, residual, err = o.oe.e.orderImplicitJoins(rels, o.node.Where)
	}
	if err != nil {
		return err
	}
	if residual != nil {
		ev := o.oe.evalEnv(joined.Cols)
		filtered := &Relation{Cols: joined.Cols, Rows: make([][]Value, 0, len(joined.Rows))}
		o.oe.e.ops.Add(int64(len(joined.Rows)))
		for _, row := range joined.Rows {
			ev.row = row
			v, err := o.oe.e.evalExpr(residual, ev)
			if err != nil {
				return err
			}
			if v.Truthy() {
				filtered.Rows = append(filtered.Rows, row)
			}
		}
		joined = filtered
	}
	o.rel = joined
	o.cursor = relCursor{rows: joined.Rows}
	return nil
}

// ---------------------------------------------------------------------------
// streamJoinOp: the optimizer's streaming hash join (JoinNode.Stream). One
// side is drained and hashed at open; the other — the probe side — streams
// through next() batch by batch, never materialized by the join. Output is
// byte-identical to joinOp: probe-major rows with build matches in build
// insertion order, the same outer-join padding, the same ops-counter totals
// (build size at open, probe size across batches), and the same row-cap
// error checked only as matches append.
//
// By default the right input is built and the left streamed, mirroring the
// materializing hashJoin exactly. BuildLeft (INNER only) flips that: the
// left input is built, the right streamed into per-left-row buckets, and
// matches are emitted left-major afterwards — the same output order, with
// the hash table on the estimated-smaller side.
//
// When the hinted equi-join does not pan out at execution time (the key
// columns fail to resolve against the actual inputs, the engine forces
// nested loops, or the join is a cross join), the operator falls back to
// the materializing joinRelations on the same inputs, preserving behavior
// bit for bit.

type streamJoinOp struct {
	oe          *opEnv
	node        *JoinNode
	left, right operator

	cols  []Col
	arena *rowArena

	// Fallback mode: fully materialized result.
	rel    *Relation
	cursor relCursor

	// Streaming state (probe-left by default).
	build     *Relation
	index     map[string][]int
	probeIdx  int // key column index in the probe row
	buildIdx  int // key column index in the build row
	probeCols int
	matched   []bool  // build rows matched so far (RIGHT/FULL padding)
	buildPad  []Value // null padding, build-side width
	emitted   int     // rows emitted, for the row-cap check
	probeDone bool
	tailSent  bool

	// BuildLeft state: per-build-row match buckets, filled from the streamed
	// right input at open, emitted left-major by next().
	buckets   [][][]Value
	bucketPos int
}

func (o *streamJoinOp) columns() []Col  { return o.cols }
func (o *streamJoinOp) hiddenCols() int { return 0 }
func (o *streamJoinOp) materialized() *Relation {
	return o.rel // nil while streaming: drainInput collects batches instead
}
func (o *streamJoinOp) close() { o.left.close(); o.right.close() }

func (o *streamJoinOp) open() error {
	e := o.oe.e
	if o.node.Type == "CROSS" || o.node.On == nil || e.ForceNestedLoop {
		left, err := drainInput(o.left)
		if err != nil {
			return err
		}
		right, err := drainInput(o.right)
		if err != nil {
			return err
		}
		return o.finishFallback(left, right)
	}
	if o.node.BuildLeft {
		return o.openBuildLeft()
	}

	// Default: build on the right, stream the left — the materializing
	// hashJoin's shape with the probe side left unmaterialized. The left
	// opens before the right is touched so open-time errors surface in the
	// same left-then-right order as the materializing join.
	if err := o.left.open(); err != nil {
		return err
	}
	build, err := drainInput(o.right)
	if err != nil {
		return err
	}
	probeCols := o.left.columns()
	li, ri, ok := equiJoinCols(o.node.On, &Relation{Cols: probeCols}, build)
	if !ok {
		left, err := drainOpened(o.left)
		if err != nil {
			return err
		}
		return o.finishFallback(left, build)
	}
	o.cols = append(append(make([]Col, 0, len(probeCols)+len(build.Cols)), probeCols...), build.Cols...)
	o.build = build
	o.probeIdx, o.buildIdx = li, ri
	o.probeCols = len(probeCols)
	o.index = buildJoinIndex(build, ri)
	e.ops.Add(int64(len(build.Rows)))
	if o.node.Type == "RIGHT" || o.node.Type == "FULL" {
		o.matched = make([]bool, len(build.Rows))
	}
	o.buildPad = nullRow(len(build.Cols))
	o.arena = newRowArena(len(o.cols))
	return nil
}

func (o *streamJoinOp) openBuildLeft() error {
	e := o.oe.e
	build, err := drainInput(o.left)
	if err != nil {
		return err
	}
	if err := o.right.open(); err != nil {
		return err
	}
	probeCols := o.right.columns()
	li, ri, ok := equiJoinCols(o.node.On, build, &Relation{Cols: probeCols})
	if !ok {
		right, err := drainOpened(o.right)
		if err != nil {
			return err
		}
		return o.finishFallback(build, right)
	}
	o.cols = append(append(make([]Col, 0, len(build.Cols)+len(probeCols)), build.Cols...), probeCols...)
	o.build = build
	o.index = buildJoinIndex(build, li)
	e.ops.Add(int64(len(build.Rows)))
	o.buckets = make([][][]Value, len(build.Rows))
	o.arena = newRowArena(len(o.cols))

	// Stream the right input into per-left-row buckets. Matches are counted
	// against the row cap here — the materializing join counts the same
	// matches, in a different order, against the same total.
	matches := 0
	for {
		batch, err := o.right.next()
		if err != nil {
			return err
		}
		if batch == nil {
			break
		}
		e.ops.Add(int64(len(batch)))
		for _, rr := range batch {
			v := rr[ri]
			if v.Null {
				continue
			}
			for _, idx := range o.index[v.String()] {
				if Equal(v, o.build.Rows[idx][li]) {
					o.buckets[idx] = append(o.buckets[idx], rr)
					matches++
					if matches > e.maxRows() {
						return execErrorf("join result exceeds row cap")
					}
				}
			}
		}
	}
	return nil
}

// finishFallback runs the materializing joinRelations over both (now
// materialized) inputs and serves the result through the cursor, exactly as
// joinOp would have.
func (o *streamJoinOp) finishFallback(left, right *Relation) error {
	rel, err := o.oe.e.joinRelations(left, right, o.node.Type, o.node.On, o.oe)
	if err != nil {
		return err
	}
	o.rel = rel
	o.cols = rel.Cols
	o.cursor = relCursor{rows: rel.Rows}
	return nil
}

func (o *streamJoinOp) next() ([][]Value, error) {
	if o.rel != nil {
		return o.cursor.next(), nil
	}
	if o.buckets != nil {
		return o.nextBuildLeft()
	}
	return o.nextProbeLeft()
}

// nextProbeLeft streams probe batches against the built right side,
// emitting matches (and LEFT/FULL padding) inline and RIGHT/FULL unmatched
// build rows after the probe drains.
func (o *streamJoinOp) nextProbeLeft() ([][]Value, error) {
	e := o.oe.e
	for !o.probeDone {
		batch, err := o.left.next()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			o.probeDone = true
			break
		}
		e.ops.Add(int64(len(batch)))
		out := make([][]Value, 0, len(batch))
		for _, lr := range batch {
			v := lr[o.probeIdx]
			rowMatched := false
			if !v.Null {
				for _, idx := range o.index[v.String()] {
					// Guard against hash collisions across kinds via Equal.
					if Equal(v, o.build.Rows[idx][o.buildIdx]) {
						rowMatched = true
						if o.matched != nil {
							o.matched[idx] = true
						}
						out = append(out, o.arena.concat(lr, o.build.Rows[idx]))
						o.emitted++
						if o.emitted > e.maxRows() {
							return nil, execErrorf("join result exceeds row cap")
						}
					}
				}
			}
			if !rowMatched && (o.node.Type == "LEFT" || o.node.Type == "FULL") {
				out = append(out, o.arena.concat(lr, o.buildPad))
				o.emitted++
			}
		}
		if len(out) > 0 {
			return out, nil
		}
	}
	if o.tailSent || o.matched == nil {
		return nil, nil
	}
	o.tailSent = true
	probePad := nullRow(o.probeCols)
	var out [][]Value
	for idx, rr := range o.build.Rows {
		if !o.matched[idx] {
			out = append(out, o.arena.concat(probePad, rr))
		}
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// nextBuildLeft emits the buckets in build (left) order: for each left row,
// its matches in right arrival order — the exact output order of the
// materializing probe-left join.
func (o *streamJoinOp) nextBuildLeft() ([][]Value, error) {
	var out [][]Value
	for o.bucketPos < len(o.buckets) {
		lr := o.build.Rows[o.bucketPos]
		for _, rr := range o.buckets[o.bucketPos] {
			out = append(out, o.arena.concat(lr, rr))
		}
		o.buckets[o.bucketPos] = nil // release matched rows as they stream out
		o.bucketPos++
		if len(out) >= batchRows {
			return out, nil
		}
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// buildJoinIndex hashes a relation's key column, skipping NULLs (a NULL key
// matches nothing). Slice order is row order, which downstream emission
// relies on.
func buildJoinIndex(rel *Relation, key int) map[string][]int {
	index := make(map[string][]int, len(rel.Rows))
	for idx, rr := range rel.Rows {
		v := rr[key]
		if v.Null {
			continue
		}
		index[v.String()] = append(index[v.String()], idx)
	}
	return index
}

// drainOpened materializes the remaining output of an operator whose open
// already ran (drainInput would open it a second time).
func drainOpened(op operator) (*Relation, error) {
	if m, ok := op.(interface{ materialized() *Relation }); ok {
		if rel := m.materialized(); rel != nil {
			return rel, nil
		}
	}
	rel := &Relation{Cols: op.columns()}
	for {
		batch, err := op.next()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			return rel, nil
		}
		rel.Rows = append(rel.Rows, batch...)
	}
}
