package engine

// Physical join operators and the shared row plumbing they use: hash join,
// nested-loop join with outer padding, cross product, and the implicit-join
// operator that orders comma-joined relations at execution time (the greedy
// ordering itself lives in planner.go).

import (
	"repro/internal/sqlast"
)

// rowArena block-allocates fixed-width result rows, replacing the per-row
// make in the join and cross-product inner loops with one allocation per
// block. Rows handed out are capacity-clipped so an append on one can never
// bleed into the next.
type rowArena struct {
	width int
	buf   []Value
}

const arenaBlockRows = 256

func newRowArena(width int) *rowArena { return &rowArena{width: width} }

func (a *rowArena) next() []Value {
	if a.width == 0 {
		return nil
	}
	if cap(a.buf)-len(a.buf) < a.width {
		a.buf = make([]Value, 0, a.width*arenaBlockRows)
	}
	n := len(a.buf)
	a.buf = a.buf[:n+a.width]
	return a.buf[n : n+a.width : n+a.width]
}

// concat returns l++r as an arena-backed row.
func (a *rowArena) concat(l, r []Value) []Value {
	row := a.next()
	copy(row, l)
	copy(row[len(l):], r)
	return row
}

func concatRows(a, b []Value) []Value {
	row := make([]Value, 0, len(a)+len(b))
	row = append(row, a...)
	return append(row, b...)
}

func nullRow(n int) []Value {
	row := make([]Value, n)
	for i := range row {
		row[i] = NullValue
	}
	return row
}

func (e *Engine) crossProduct(a, b *Relation) (*Relation, error) {
	out := &Relation{Cols: append(append([]Col{}, a.Cols...), b.Cols...)}
	n := len(a.Rows) * len(b.Rows)
	if n > e.maxRows() {
		return nil, execErrorf("cross product exceeds row cap (%d x %d)", len(a.Rows), len(b.Rows))
	}
	e.ops.Add(int64(n))
	arena := newRowArena(len(out.Cols))
	out.Rows = make([][]Value, 0, n)
	for _, ra := range a.Rows {
		for _, rb := range b.Rows {
			out.Rows = append(out.Rows, arena.concat(ra, rb))
		}
	}
	return out, nil
}

// joinRelations executes an explicit join of two materialized relations.
// Equi-joins on plain column references use a hash join unless
// ForceNestedLoop is set; everything else is nested-loop.
func (e *Engine) joinRelations(left, right *Relation, joinType string, on sqlast.Expr, oe *opEnv) (*Relation, error) {
	out := &Relation{Cols: append(append([]Col{}, left.Cols...), right.Cols...)}
	if joinType == "CROSS" || on == nil {
		return e.crossProduct(left, right)
	}

	if li, ri, ok := equiJoinCols(on, left, right); ok && !e.ForceNestedLoop {
		return e.hashJoin(left, right, li, ri, joinType, out)
	}

	// Nested-loop join with outer-join padding. The ON predicate evaluates
	// against one scratch row reused across candidates (expression
	// evaluation only reads the current row); only matching rows are
	// materialized, from the arena.
	joined := &env{rel: out, outer: oe.outer, ctes: oe.ctes}
	rightMatched := make([]bool, len(right.Rows))
	arena := newRowArena(len(out.Cols))
	scratch := make([]Value, len(left.Cols)+len(right.Cols))
	rightNulls := nullRow(len(right.Cols))
	var ops int64
	for _, lr := range left.Rows {
		matched := false
		copy(scratch, lr)
		for ri, rr := range right.Rows {
			ops++
			copy(scratch[len(lr):], rr)
			joined.row = scratch
			v, err := e.evalExpr(on, joined)
			if err != nil {
				e.ops.Add(ops)
				return nil, err
			}
			if v.Truthy() {
				matched = true
				rightMatched[ri] = true
				out.Rows = append(out.Rows, arena.concat(lr, rr))
				if len(out.Rows) > e.maxRows() {
					e.ops.Add(ops)
					return nil, execErrorf("join result exceeds row cap")
				}
			}
		}
		if !matched && (joinType == "LEFT" || joinType == "FULL") {
			out.Rows = append(out.Rows, arena.concat(lr, rightNulls))
		}
	}
	e.ops.Add(ops)
	if joinType == "RIGHT" || joinType == "FULL" {
		leftNulls := nullRow(len(left.Cols))
		for ri, rr := range right.Rows {
			if !rightMatched[ri] {
				out.Rows = append(out.Rows, arena.concat(leftNulls, rr))
			}
		}
	}
	return out, nil
}

// equiJoinCols recognizes ON a.x = b.y patterns and returns the column
// indexes on each side.
func equiJoinCols(on sqlast.Expr, left, right *Relation) (li, ri int, ok bool) {
	bin, isBin := on.(*sqlast.Binary)
	if !isBin || bin.Op != "=" {
		return 0, 0, false
	}
	lc, lok := bin.L.(*sqlast.ColumnRef)
	rc, rok := bin.R.(*sqlast.ColumnRef)
	if !lok || !rok {
		return 0, 0, false
	}
	tryResolve := func(rel *Relation, cr *sqlast.ColumnRef) (int, bool) {
		idx := rel.find(cr.Table, cr.Name)
		if len(idx) == 1 {
			return idx[0], true
		}
		return 0, false
	}
	if i, ok1 := tryResolve(left, lc); ok1 {
		if jx, ok2 := tryResolve(right, rc); ok2 {
			return i, jx, true
		}
	}
	if i, ok1 := tryResolve(left, rc); ok1 {
		if jx, ok2 := tryResolve(right, lc); ok2 {
			return i, jx, true
		}
	}
	return 0, 0, false
}

func (e *Engine) hashJoin(left, right *Relation, li, ri int, joinType string, out *Relation) (*Relation, error) {
	index := make(map[string][]int, len(right.Rows))
	for idx, rr := range right.Rows {
		v := rr[ri]
		if v.Null {
			continue
		}
		k := v.String()
		index[k] = append(index[k], idx)
	}
	e.ops.Add(int64(len(right.Rows)))
	rightMatched := make([]bool, len(right.Rows))
	arena := newRowArena(len(out.Cols))
	rightNulls := nullRow(len(right.Cols))
	out.Rows = make([][]Value, 0, len(left.Rows))
	for _, lr := range left.Rows {
		v := lr[li]
		matched := false
		if !v.Null {
			for _, idx := range index[v.String()] {
				// Guard against hash collisions across kinds via Equal.
				if Equal(v, right.Rows[idx][ri]) {
					matched = true
					rightMatched[idx] = true
					out.Rows = append(out.Rows, arena.concat(lr, right.Rows[idx]))
					if len(out.Rows) > e.maxRows() {
						return nil, execErrorf("join result exceeds row cap")
					}
				}
			}
		}
		if !matched && (joinType == "LEFT" || joinType == "FULL") {
			out.Rows = append(out.Rows, arena.concat(lr, rightNulls))
		}
	}
	e.ops.Add(int64(len(left.Rows)))
	if joinType == "RIGHT" || joinType == "FULL" {
		leftNulls := nullRow(len(left.Cols))
		for idx, rr := range right.Rows {
			if !rightMatched[idx] {
				out.Rows = append(out.Rows, arena.concat(leftNulls, rr))
			}
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// joinOp: explicit join — drain both children, join, stream the result.

type joinOp struct {
	oe          *opEnv
	node        *JoinNode
	left, right operator

	rel    *Relation
	cursor relCursor
}

func (o *joinOp) columns() []Col           { return o.rel.Cols }
func (o *joinOp) hiddenCols() int          { return 0 }
func (o *joinOp) materialized() *Relation  { return o.rel }
func (o *joinOp) next() ([][]Value, error) { return o.cursor.next(), nil }
func (o *joinOp) close()                   { o.left.close(); o.right.close() }

func (o *joinOp) open() error {
	left, err := drainInput(o.left)
	if err != nil {
		return err
	}
	right, err := drainInput(o.right)
	if err != nil {
		return err
	}
	rel, err := o.oe.e.joinRelations(left, right, o.node.Type, o.node.On, o.oe)
	if err != nil {
		return err
	}
	o.rel = rel
	o.cursor = relCursor{rows: rel.Rows}
	return nil
}

// ---------------------------------------------------------------------------
// crossOp: left-deep cross product of comma-joined inputs (planner disabled
// or no WHERE clause to mine for join conditions).

type crossOp struct {
	oe     *opEnv
	inputs []operator

	rel    *Relation
	cursor relCursor
}

func (o *crossOp) columns() []Col           { return o.rel.Cols }
func (o *crossOp) hiddenCols() int          { return 0 }
func (o *crossOp) materialized() *Relation  { return o.rel }
func (o *crossOp) next() ([][]Value, error) { return o.cursor.next(), nil }
func (o *crossOp) close() {
	for _, in := range o.inputs {
		in.close()
	}
}

func (o *crossOp) open() error {
	var acc *Relation
	for _, in := range o.inputs {
		rel, err := drainInput(in)
		if err != nil {
			return err
		}
		if acc == nil {
			acc = rel
			continue
		}
		acc, err = o.oe.e.crossProduct(acc, rel)
		if err != nil {
			return err
		}
	}
	o.rel = acc
	o.cursor = relCursor{rows: acc.Rows}
	return nil
}

// ---------------------------------------------------------------------------
// implicitJoinOp: comma-joined FROM list plus conjunctive WHERE. The greedy
// left-deep ordering (planner.go) decides at open time which equality
// conjuncts become hash-join conditions; the leftover conjuncts filter the
// joined result here, so downstream operators see exactly the rows the
// query's WHERE admits.

type implicitJoinOp struct {
	oe     *opEnv
	node   *ImplicitJoinNode
	inputs []operator

	rel    *Relation
	cursor relCursor
}

func (o *implicitJoinOp) columns() []Col           { return o.rel.Cols }
func (o *implicitJoinOp) hiddenCols() int          { return 0 }
func (o *implicitJoinOp) materialized() *Relation  { return o.rel }
func (o *implicitJoinOp) next() ([][]Value, error) { return o.cursor.next(), nil }
func (o *implicitJoinOp) close() {
	for _, in := range o.inputs {
		in.close()
	}
}

func (o *implicitJoinOp) open() error {
	rels := make([]*Relation, len(o.inputs))
	for i, in := range o.inputs {
		rel, err := drainInput(in)
		if err != nil {
			return err
		}
		rels[i] = rel
	}
	joined, residual, err := o.oe.e.orderImplicitJoins(rels, o.node.Where)
	if err != nil {
		return err
	}
	if residual != nil {
		ev := o.oe.evalEnv(joined.Cols)
		filtered := &Relation{Cols: joined.Cols, Rows: make([][]Value, 0, len(joined.Rows))}
		o.oe.e.ops.Add(int64(len(joined.Rows)))
		for _, row := range joined.Rows {
			ev.row = row
			v, err := o.oe.e.evalExpr(residual, ev)
			if err != nil {
				return err
			}
			if v.Truthy() {
				filtered.Rows = append(filtered.Rows, row)
			}
		}
		joined = filtered
	}
	o.rel = joined
	o.cursor = relCursor{rows: joined.Rows}
	return nil
}
