package engine

// TableSource supplies tables stored outside the DB's in-memory relations —
// the durable heap files of internal/store. DB.Table lookups that miss fall
// through to the source, and scans stream batches through a cursor instead of
// materializing the table, so a store-backed table may exceed RAM (and the
// buffer pool pages it in and out underneath the cursor).
type TableSource interface {
	// SourceCols reports the columns of a table, unqualified.
	SourceCols(name string) ([]Col, bool)
	// SourceRows reports the table's row count, for optimizer size estimates.
	SourceRows(name string) (int, bool)
	// OpenScan opens a streaming cursor over the table's rows.
	OpenScan(name string) (ScanCursor, error)
}

// ScanCursor streams batches of rows. Next returns a nil batch at the end of
// the table. Close must be called exactly once.
type ScanCursor interface {
	Next() ([][]Value, error)
	Close()
}
