package engine

// DML execution: the executor side of INSERT/UPDATE/DELETE, CREATE/DROP
// TABLE, and BEGIN/COMMIT/ROLLBACK. Statements evaluate their expressions
// with the engine's scalar evaluator and apply the resulting row changes
// through the Mutable interface, which both the in-memory MemStore below and
// the durable store (internal/store.Session) implement — so the same
// statement stream produces the same table contents on either backend, which
// is exactly what the DML differential fuzzer and the state-task oracle rely
// on.

import (
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlast"
)

// MutOp is the decision a Mutate callback returns for one row.
type MutOp int

// Mutate decisions.
const (
	MutKeep MutOp = iota
	MutUpdate
	MutDelete
)

// Mutable is a table store that DML statements can be applied to.
// Implementations decide transaction semantics: operations issued outside
// BEGIN..COMMIT auto-commit.
type Mutable interface {
	// CreateTable creates an empty table. Errors if it already exists.
	CreateTable(name string, cols []Col) error
	// DropTable removes a table. Errors if it does not exist.
	DropTable(name string) error
	// TableCols reports a table's columns.
	TableCols(name string) ([]Col, bool)
	// Append adds rows (already coerced to the table's column types).
	Append(name string, rows [][]Value) error
	// Mutate visits every row in scan order and applies the callback's
	// decision: MutKeep leaves it, MutUpdate replaces it with the returned
	// row, MutDelete removes it. All decisions are collected before any row
	// changes, so the visit order never observes in-flight mutations.
	// Returns the number of rows changed.
	Mutate(name string, fn func(row []Value) (MutOp, []Value, error)) (int, error)
	// Begin/Commit/Rollback bracket an explicit transaction. Begin errors if
	// one is already open; Commit and Rollback error if none is.
	Begin() error
	Commit() error
	Rollback() error
}

// Apply executes one DML/DDL/transaction statement against the store.
// SELECTs are rejected — they go through Query.
func (e *Engine) Apply(m Mutable, stmt sqlast.Stmt) error {
	switch t := stmt.(type) {
	case *sqlast.CreateTableStmt:
		return e.applyCreate(m, t)
	case *sqlast.DropStmt:
		if !strings.EqualFold(t.Kind, "TABLE") {
			return execErrorf("DROP %s is not supported by the DML executor", t.Kind)
		}
		return m.DropTable(catalog.BareName(t.Name))
	case *sqlast.InsertStmt:
		return e.applyInsert(m, t)
	case *sqlast.UpdateStmt:
		_, err := e.applyUpdate(m, t)
		return err
	case *sqlast.DeleteStmt:
		_, err := e.applyDelete(m, t)
		return err
	case *sqlast.TxnStmt:
		switch t.Kind {
		case "BEGIN":
			return m.Begin()
		case "COMMIT":
			return m.Commit()
		case "ROLLBACK":
			return m.Rollback()
		}
		return execErrorf("unknown transaction statement %q", t.Kind)
	default:
		return execErrorf("statement %T cannot be applied to a store", stmt)
	}
}

// ApplyScript executes a parsed statement sequence in order, stopping at the
// first error.
func (e *Engine) ApplyScript(m Mutable, stmts []sqlast.Stmt) error {
	for _, s := range stmts {
		if err := e.Apply(m, s); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) applyCreate(m Mutable, t *sqlast.CreateTableStmt) error {
	name := catalog.BareName(t.Name)
	if t.AsSelect != nil {
		rel, err := e.Query(t.AsSelect)
		if err != nil {
			return err
		}
		cols := make([]Col, len(rel.Cols))
		for i, c := range rel.Cols {
			cols[i] = Col{Name: c.Name, Type: c.Type}
		}
		if err := m.CreateTable(name, cols); err != nil {
			return err
		}
		return m.Append(name, rel.Rows)
	}
	if len(t.Cols) == 0 {
		return execErrorf("CREATE TABLE %s has no columns", t.Name)
	}
	cols := make([]Col, len(t.Cols))
	for i, cd := range t.Cols {
		cols[i] = Col{Name: cd.Name, Type: ColTypeFromSQL(cd.Type)}
	}
	return m.CreateTable(name, cols)
}

// ColTypeFromSQL maps a SQL type name (INT, VARCHAR(32), ...) to the engine's
// value type. Unknown names default to text, the forgiving choice for log
// replay.
func ColTypeFromSQL(sqlType string) catalog.Type {
	t := strings.ToUpper(sqlType)
	if i := strings.IndexByte(t, '('); i >= 0 {
		t = t[:i]
	}
	switch strings.TrimSpace(t) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT":
		return catalog.TypeInt
	case "FLOAT", "REAL", "DOUBLE", "DECIMAL", "NUMERIC", "MONEY":
		return catalog.TypeFloat
	case "BIT", "BOOL", "BOOLEAN":
		return catalog.TypeBool
	default:
		return catalog.TypeText
	}
}

func (e *Engine) applyInsert(m Mutable, t *sqlast.InsertStmt) error {
	name := catalog.BareName(t.Table)
	cols, ok := m.TableCols(name)
	if !ok {
		return execErrorf("table %q does not exist", t.Table)
	}
	// Map the statement's column list (or the table's natural order) to
	// target column indexes.
	target := make([]int, 0, len(cols))
	if len(t.Columns) == 0 {
		for i := range cols {
			target = append(target, i)
		}
	} else {
		for _, cn := range t.Columns {
			idx := -1
			for i, c := range cols {
				if strings.EqualFold(c.Name, cn) {
					idx = i
					break
				}
			}
			if idx < 0 {
				return execErrorf("table %q has no column %q", t.Table, cn)
			}
			target = append(target, idx)
		}
	}

	var src [][]Value
	if t.Select != nil {
		rel, err := e.Query(t.Select)
		if err != nil {
			return err
		}
		src = rel.Rows
	} else {
		ev := &env{}
		for _, exprs := range t.Rows {
			row := make([]Value, len(exprs))
			for i, x := range exprs {
				v, err := e.evalExpr(x, ev)
				if err != nil {
					return err
				}
				row[i] = v
			}
			src = append(src, row)
		}
	}

	out := make([][]Value, 0, len(src))
	for _, sr := range src {
		if len(sr) != len(target) {
			return execErrorf("INSERT into %q supplies %d values for %d columns",
				t.Table, len(sr), len(target))
		}
		row := make([]Value, len(cols))
		for i := range row {
			row[i] = NullValue
		}
		for i, ti := range target {
			v, err := coerceValue(sr[i], cols[ti].Type, cols[ti].Name)
			if err != nil {
				return err
			}
			row[ti] = v
		}
		out = append(out, row)
	}
	return m.Append(name, out)
}

func (e *Engine) applyUpdate(m Mutable, t *sqlast.UpdateStmt) (int, error) {
	name := catalog.BareName(t.Table)
	cols, ok := m.TableCols(name)
	if !ok {
		return 0, execErrorf("table %q does not exist", t.Table)
	}
	qual := t.Alias
	if qual == "" {
		qual = name
	}
	qcols := make([]Col, len(cols))
	for i, c := range cols {
		qcols[i] = Col{Qualifier: qual, Name: c.Name, Type: c.Type}
	}
	set := make([]int, len(t.Set))
	for i, a := range t.Set {
		idx := -1
		for j, c := range cols {
			if strings.EqualFold(c.Name, a.Column) {
				idx = j
				break
			}
		}
		if idx < 0 {
			return 0, execErrorf("table %q has no column %q", t.Table, a.Column)
		}
		set[i] = idx
	}
	rel := &Relation{Cols: qcols}
	return m.Mutate(name, func(row []Value) (MutOp, []Value, error) {
		ev := &env{rel: rel, row: row}
		hit, err := e.matchesWhere(t.Where, ev)
		if err != nil || !hit {
			return MutKeep, nil, err
		}
		// Assignments all evaluate against the pre-update row.
		next := make([]Value, len(row))
		copy(next, row)
		for i, a := range t.Set {
			v, err := e.evalExpr(a.Value, ev)
			if err != nil {
				return MutKeep, nil, err
			}
			ci := set[i]
			cv, err := coerceValue(v, cols[ci].Type, cols[ci].Name)
			if err != nil {
				return MutKeep, nil, err
			}
			next[ci] = cv
		}
		return MutUpdate, next, nil
	})
}

func (e *Engine) applyDelete(m Mutable, t *sqlast.DeleteStmt) (int, error) {
	name := catalog.BareName(t.Table)
	cols, ok := m.TableCols(name)
	if !ok {
		return 0, execErrorf("table %q does not exist", t.Table)
	}
	qcols := make([]Col, len(cols))
	for i, c := range cols {
		qcols[i] = Col{Qualifier: name, Name: c.Name, Type: c.Type}
	}
	rel := &Relation{Cols: qcols}
	return m.Mutate(name, func(row []Value) (MutOp, []Value, error) {
		ev := &env{rel: rel, row: row}
		hit, err := e.matchesWhere(t.Where, ev)
		if err != nil || !hit {
			return MutKeep, nil, err
		}
		return MutDelete, nil, nil
	})
}

// matchesWhere evaluates an optional WHERE clause; a nil clause matches.
func (e *Engine) matchesWhere(where sqlast.Expr, ev *env) (bool, error) {
	if where == nil {
		return true, nil
	}
	v, err := e.evalExpr(where, ev)
	if err != nil {
		return false, err
	}
	return !v.Null && v.Truthy(), nil
}

// coerceValue converts a value to a column's declared type: ints widen to
// float columns, integral floats narrow to int columns, NULL passes through,
// and anything else must already match. TypeAny columns accept everything.
func coerceValue(v Value, t catalog.Type, col string) (Value, error) {
	if v.Null || t == catalog.TypeAny || v.Kind == t {
		return v, nil
	}
	switch t {
	case catalog.TypeFloat:
		if v.Kind == catalog.TypeInt {
			return FloatVal(float64(v.I)), nil
		}
	case catalog.TypeInt:
		if v.Kind == catalog.TypeFloat && v.F == float64(int64(v.F)) {
			return IntVal(int64(v.F)), nil
		}
	}
	return NullValue, execErrorf("cannot store %s value in %s column %q",
		v.Kind, t, col)
}

// FormatLiteral renders a value as a SQL literal: single-quoted text,
// %g floats, NULL, true/false. This is the canonical form the state task
// grades against (respparse.ParseState canonicalizes model output to it).
func FormatLiteral(v Value) string {
	if v.Null {
		return "NULL"
	}
	if v.Kind == catalog.TypeText {
		return "'" + v.S + "'"
	}
	return v.String()
}

// FormatRow renders a row in the canonical tuple form "( 1 , 'alpha' )".
func FormatRow(row []Value) string {
	var b strings.Builder
	b.WriteString("(")
	for i, v := range row {
		if i > 0 {
			b.WriteString(" ,")
		}
		b.WriteString(" ")
		b.WriteString(FormatLiteral(v))
	}
	b.WriteString(" )")
	return b.String()
}

// ---------------------------------------------------------------------------
// MemStore: the in-memory Mutable over a DB's relations. Rollback restores a
// snapshot of the table map taken at Begin; since every mutation either
// replaces a table's Rows slice wholesale (Mutate) or appends past the
// snapshot's length (Append), the snapshot's slice headers still see the
// pre-transaction rows.

// MemStore applies DML to a DB's in-memory relations. It is the oracle the
// durable store is differentially tested against, and the executor behind
// sim/modelstub answers for the state task. Not safe for concurrent use.
type MemStore struct {
	db   *DB
	snap map[string]*Relation // nil when no transaction is open
}

// NewMemStore returns a MemStore over the database.
func NewMemStore(db *DB) *MemStore { return &MemStore{db: db} }

// CreateTable implements Mutable.
func (m *MemStore) CreateTable(name string, cols []Col) error {
	key := strings.ToLower(name)
	if _, ok := m.db.Tables[key]; ok {
		return execErrorf("table %q already exists", name)
	}
	own := make([]Col, len(cols))
	for i, c := range cols {
		own[i] = Col{Name: c.Name, Type: c.Type}
	}
	m.db.Tables[key] = &Relation{Cols: own}
	return nil
}

// DropTable implements Mutable.
func (m *MemStore) DropTable(name string) error {
	key := strings.ToLower(name)
	if _, ok := m.db.Tables[key]; !ok {
		return execErrorf("table %q does not exist", name)
	}
	delete(m.db.Tables, key)
	return nil
}

// TableCols implements Mutable.
func (m *MemStore) TableCols(name string) ([]Col, bool) {
	rel, ok := m.db.Tables[strings.ToLower(name)]
	if !ok {
		return nil, false
	}
	return rel.Cols, true
}

// Append implements Mutable.
func (m *MemStore) Append(name string, rows [][]Value) error {
	rel, ok := m.db.Tables[strings.ToLower(name)]
	if !ok {
		return execErrorf("table %q does not exist", name)
	}
	for _, r := range rows {
		if len(r) != len(rel.Cols) {
			return execErrorf("row arity %d does not match table %q (%d columns)",
				len(r), name, len(rel.Cols))
		}
		own := make([]Value, len(r))
		copy(own, r)
		rel.Rows = append(rel.Rows, own)
	}
	return nil
}

// Mutate implements Mutable.
func (m *MemStore) Mutate(name string, fn func(row []Value) (MutOp, []Value, error)) (int, error) {
	rel, ok := m.db.Tables[strings.ToLower(name)]
	if !ok {
		return 0, execErrorf("table %q does not exist", name)
	}
	type change struct {
		idx int
		op  MutOp
		row []Value
	}
	var changes []change
	for i, row := range rel.Rows {
		op, next, err := fn(row)
		if err != nil {
			return 0, err
		}
		if op != MutKeep {
			changes = append(changes, change{idx: i, op: op, row: next})
		}
	}
	if len(changes) == 0 {
		return 0, nil
	}
	out := make([][]Value, 0, len(rel.Rows))
	ci := 0
	for i, row := range rel.Rows {
		if ci < len(changes) && changes[ci].idx == i {
			c := changes[ci]
			ci++
			if c.op == MutDelete {
				continue
			}
			row = c.row
		}
		out = append(out, row)
	}
	rel.Rows = out
	return len(changes), nil
}

// Begin implements Mutable.
func (m *MemStore) Begin() error {
	if m.snap != nil {
		return execErrorf("transaction already open")
	}
	m.snap = make(map[string]*Relation, len(m.db.Tables))
	for k, rel := range m.db.Tables {
		m.snap[k] = &Relation{Cols: rel.Cols, Rows: rel.Rows}
	}
	return nil
}

// Commit implements Mutable.
func (m *MemStore) Commit() error {
	if m.snap == nil {
		return execErrorf("no open transaction")
	}
	m.snap = nil
	return nil
}

// Rollback implements Mutable.
func (m *MemStore) Rollback() error {
	if m.snap == nil {
		return execErrorf("no open transaction")
	}
	m.db.Tables = make(map[string]*Relation, len(m.snap))
	for k, rel := range m.snap {
		m.db.Tables[k] = &Relation{Cols: rel.Cols, Rows: rel.Rows}
	}
	m.snap = nil
	return nil
}

// InTxn reports whether an explicit transaction is open.
func (m *MemStore) InTxn() bool { return m.snap != nil }
