package engine

import (
	"hash/fnv"
	"math"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlast"
)

// Stats holds the table statistics the cost model estimates against. Row
// counts can reflect production-scale tables (hundreds of millions of rows
// for SDSS) without materializing them.
type Stats struct {
	RowCounts map[string]int64 // keyed by lowercase bare table name
}

// NewStats returns empty statistics.
func NewStats() Stats { return Stats{RowCounts: make(map[string]int64)} }

// Set records a table's row count.
func (s Stats) Set(table string, rows int64) {
	s.RowCounts[strings.ToLower(catalog.BareName(table))] = rows
}

// Rows returns a table's row count, defaulting to 1000 for unknown tables.
func (s Stats) Rows(table string) int64 {
	if n, ok := s.RowCounts[strings.ToLower(catalog.BareName(table))]; ok {
		return n
	}
	return 1000
}

// SDSSStats returns production-scale row counts for the SDSS schema,
// mirroring the published DR table sizes in spirit (PhotoObj is by far the
// largest relation).
func SDSSStats() Stats {
	s := NewStats()
	s.Set("PhotoObj", 80_000_000)
	s.Set("PhotoTag", 80_000_000)
	s.Set("SpecObj", 4_000_000)
	s.Set("SpecPhotoAll", 4_000_000)
	s.Set("PlateX", 3_000)
	s.Set("Field", 900_000)
	s.Set("Neighbors", 200_000_000)
	s.Set("galSpecLine", 1_800_000)
	return s
}

// CostModel estimates plan execution cost. The model follows the classic
// textbook shape: scans cost their input cardinality, equi-joins hash in
// linear time, non-equi joins cost a capped product, predicates reduce
// cardinality by fixed selectivities, and correlated subqueries multiply by
// the outer cardinality.
type CostModel struct {
	Stats Stats
	// RowsPerMS converts estimated row operations to milliseconds. The
	// default of 2,000,000 rows/ms reflects a warmed, column-scanned server.
	RowsPerMS float64
	// Noise adds a deterministic per-query perturbation (fraction of the
	// estimate, e.g. 0.15 for ±15%), keyed by the query text, standing in
	// for run-to-run variance in the SDSS logs.
	Noise float64
}

// NewCostModel returns a cost model over the given statistics.
func NewCostModel(stats Stats) *CostModel {
	return &CostModel{Stats: stats, RowsPerMS: 2_000_000}
}

// Selectivities assumed by the estimator.
const (
	selEquality = 0.001 // col = literal
	selRange    = 0.30  // col > literal etc.
	selLike     = 0.10
	selIn       = 0.02
	selDefault  = 0.25
	joinFanout  = 1.2 // avg matches per outer row on an equi-join
)

// planCost is the estimator's intermediate result.
type planCost struct {
	outRows float64 // estimated output cardinality
	work    float64 // estimated row operations
}

// EstimateCost returns estimated row operations for a statement.
func (m *CostModel) EstimateCost(stmt sqlast.Stmt) float64 {
	switch t := stmt.(type) {
	case *sqlast.SelectStmt:
		return m.selectCost(t, 1).work
	case *sqlast.CreateTableStmt:
		if t.AsSelect != nil {
			return m.selectCost(t.AsSelect, 1).work
		}
		return 100
	case *sqlast.CreateViewStmt:
		return 100 // metadata only
	case *sqlast.InsertStmt:
		if t.Select != nil {
			return m.selectCost(t.Select, 1).work
		}
		return float64(100 * (len(t.Rows) + 1))
	case *sqlast.UpdateStmt:
		return float64(m.Stats.Rows(t.Table))
	case *sqlast.DeleteStmt:
		return float64(m.Stats.Rows(t.Table))
	default:
		return 50 // DECLARE/SET/EXEC/DROP/WAITFOR: negligible
	}
}

// ElapsedMS converts a statement's estimated cost to simulated elapsed
// milliseconds, applying the deterministic noise channel.
func (m *CostModel) ElapsedMS(stmt sqlast.Stmt, sql string) float64 {
	work := m.EstimateCost(stmt)
	rate := m.RowsPerMS
	if rate <= 0 {
		rate = 2_000_000
	}
	ms := work/rate + 0.2 // fixed per-query overhead
	if m.Noise > 0 {
		h := fnv.New64a()
		h.Write([]byte(sql))
		frac := float64(h.Sum64()%2048)/1024 - 1 // [-1, 1)
		ms *= 1 + m.Noise*frac
	}
	if ms < 0.1 {
		ms = 0.1
	}
	return ms
}

func (m *CostModel) selectCost(sel *sqlast.SelectStmt, outerMult float64) planCost {
	var work float64
	cteRows := map[string]float64{}
	for _, cte := range sel.With {
		pc := m.selectCost(cte.Select, 1)
		work += pc.work
		cteRows[strings.ToLower(cte.Name)] = pc.outRows
	}

	rows := 1.0
	first := true
	for _, ref := range sel.From {
		rc, w := m.refCost(ref, cteRows)
		work += w
		if first {
			rows = rc
			first = false
		} else {
			// Comma join: assume join predicates in WHERE make it linear in
			// the larger side rather than a full cross product.
			rows = math.Max(rows, rc) * joinFanout
			work += rows
		}
	}

	// WHERE selectivity and evaluation work; correlated subqueries inside
	// the predicate re-execute per row.
	if sel.Where != nil {
		sel2, subWork := m.predicateCost(sel.Where, rows)
		work += rows // predicate evaluation pass
		work += subWork
		rows *= sel2
	}

	if len(sel.GroupBy) > 0 || selectHasAggregates(sel) {
		work += rows * math.Log2(math.Max(rows, 2)) * 0.1 // hash/sort aggregation
		if len(sel.GroupBy) > 0 {
			rows = math.Max(1, rows*0.1)
		} else {
			rows = 1
		}
	}
	if len(sel.OrderBy) > 0 {
		work += rows * math.Log2(math.Max(rows, 2)) * 0.05
	}
	if sel.SetOp != nil {
		pc := m.selectCost(sel.SetOp.Right, outerMult)
		work += pc.work
		rows += pc.outRows
	}
	if sel.Limit != nil && float64(*sel.Limit) < rows {
		rows = float64(*sel.Limit)
	}
	if sel.Top != nil && float64(*sel.Top) < rows {
		rows = float64(*sel.Top)
	}
	return planCost{outRows: rows, work: work * outerMult}
}

func (m *CostModel) refCost(ref sqlast.TableRef, cteRows map[string]float64) (rows, work float64) {
	switch t := ref.(type) {
	case *sqlast.TableName:
		if r, ok := cteRows[strings.ToLower(catalog.BareName(t.Name))]; ok {
			return r, r
		}
		n := float64(m.Stats.Rows(t.Name))
		return n, n // full scan
	case *sqlast.SubqueryTable:
		pc := m.selectCost(t.Select, 1)
		return pc.outRows, pc.work
	case *sqlast.Join:
		lr, lw := m.refCost(t.Left, cteRows)
		rr, rw := m.refCost(t.Right, cteRows)
		work = lw + rw
		if isEquiOn(t.On) {
			// Hash join: build + probe.
			work += lr + rr
			rows = math.Max(lr, rr) * joinFanout
		} else {
			// Nested loop, capped so a single pathological query does not
			// dominate the scale.
			product := lr * rr
			work += math.Min(product, 1e12)
			rows = math.Min(product*selDefault, 1e9)
		}
		if t.Type == "LEFT" || t.Type == "FULL" {
			rows = math.Max(rows, lr)
		}
		if t.Type == "RIGHT" || t.Type == "FULL" {
			rows = math.Max(rows, rr)
		}
		return rows, work
	default:
		return 1000, 1000
	}
}

func isEquiOn(on sqlast.Expr) bool {
	bin, ok := on.(*sqlast.Binary)
	if !ok {
		return false
	}
	if bin.Op == "AND" {
		return isEquiOn(bin.L) || isEquiOn(bin.R)
	}
	if bin.Op != "=" {
		return false
	}
	_, l := bin.L.(*sqlast.ColumnRef)
	_, r := bin.R.(*sqlast.ColumnRef)
	return l && r
}

// predicateCost returns the combined selectivity of a WHERE expression and
// any extra work from subqueries it contains (correlated subqueries cost
// their body once per outer row).
func (m *CostModel) predicateCost(e sqlast.Expr, outerRows float64) (selectivity, work float64) {
	switch t := e.(type) {
	case *sqlast.Binary:
		switch t.Op {
		case "AND":
			s1, w1 := m.predicateCost(t.L, outerRows)
			s2, w2 := m.predicateCost(t.R, outerRows)
			return s1 * s2, w1 + w2
		case "OR":
			s1, w1 := m.predicateCost(t.L, outerRows)
			s2, w2 := m.predicateCost(t.R, outerRows)
			s := s1 + s2 - s1*s2
			return s, w1 + w2
		case "=":
			return selEquality, m.sideSubqueryWork(t.L, t.R, outerRows)
		case "<", ">", "<=", ">=", "<>":
			return selRange, m.sideSubqueryWork(t.L, t.R, outerRows)
		case "LIKE":
			return selLike, 0
		default:
			return selDefault, 0
		}
	case *sqlast.Unary:
		if t.Op == "NOT" {
			s, w := m.predicateCost(t.X, outerRows)
			return 1 - s, w
		}
		return selDefault, 0
	case *sqlast.In:
		var w float64
		if t.Sub != nil {
			pc := m.selectCost(t.Sub, 1)
			w = pc.work // uncorrelated IN evaluates once (semi-join)
		}
		return selIn * math.Max(1, float64(len(t.List))), w
	case *sqlast.Exists:
		pc := m.selectCost(t.Sub, 1)
		// EXISTS subqueries in the workloads are typically correlated:
		// charge a per-outer-row probe against the subquery's input.
		return 0.5, pc.work + outerRows*math.Sqrt(math.Max(pc.work, 1))
	case *sqlast.Between:
		return selRange, 0
	case *sqlast.IsNull:
		return 0.05, 0
	default:
		return selDefault, 0
	}
}

// sideSubqueryWork charges scalar subqueries appearing on either side of a
// comparison; they evaluate once (uncorrelated scalar subqueries dominate in
// the workloads).
func (m *CostModel) sideSubqueryWork(l, r sqlast.Expr, outerRows float64) float64 {
	var w float64
	for _, side := range []sqlast.Expr{l, r} {
		if sub, ok := side.(*sqlast.Subquery); ok {
			pc := m.selectCost(sub.Select, 1)
			w += pc.work
		}
	}
	_ = outerRows
	return w
}
