package engine

import (
	"hash/fnv"
	"math"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlast"
)

// Stats holds the table statistics the cost model estimates against. Row
// counts can reflect production-scale tables (hundreds of millions of rows
// for SDSS) without materializing them.
type Stats struct {
	RowCounts map[string]int64 // keyed by lowercase bare table name
}

// NewStats returns empty statistics.
func NewStats() Stats { return Stats{RowCounts: make(map[string]int64)} }

// Set records a table's row count.
func (s Stats) Set(table string, rows int64) {
	s.RowCounts[strings.ToLower(catalog.BareName(table))] = rows
}

// Rows returns a table's row count, defaulting to 1000 for unknown tables.
func (s Stats) Rows(table string) int64 {
	if n, ok := s.RowCounts[strings.ToLower(catalog.BareName(table))]; ok {
		return n
	}
	return 1000
}

// SDSSStats returns production-scale row counts for the SDSS schema,
// mirroring the published DR table sizes in spirit (PhotoObj is by far the
// largest relation).
func SDSSStats() Stats {
	s := NewStats()
	s.Set("PhotoObj", 80_000_000)
	s.Set("PhotoTag", 80_000_000)
	s.Set("SpecObj", 4_000_000)
	s.Set("SpecPhotoAll", 4_000_000)
	s.Set("PlateX", 3_000)
	s.Set("Field", 900_000)
	s.Set("Neighbors", 200_000_000)
	s.Set("galSpecLine", 1_800_000)
	return s
}

// CostModel estimates plan execution cost. SELECT statements are lowered to
// the same logical plan the executor runs (BuildPlan), and cost is computed
// bottom-up over the plan nodes — the model never re-walks the AST. The
// per-node formulas follow the classic textbook shape: scans cost their
// input cardinality, equi-joins hash in linear time, non-equi joins cost a
// capped product, predicates reduce cardinality by fixed selectivities, and
// correlated subqueries multiply by the outer cardinality.
type CostModel struct {
	Stats Stats
	// RowsPerMS converts estimated row operations to milliseconds. The
	// default of 2,000,000 rows/ms reflects a warmed, column-scanned server.
	RowsPerMS float64
	// Noise adds a deterministic per-query perturbation (fraction of the
	// estimate, e.g. 0.15 for ±15%), keyed by the query text, standing in
	// for run-to-run variance in the SDSS logs.
	Noise float64
}

// NewCostModel returns a cost model over the given statistics.
func NewCostModel(stats Stats) *CostModel {
	return &CostModel{Stats: stats, RowsPerMS: 2_000_000}
}

// Selectivities assumed by the estimator.
const (
	selEquality = 0.001 // col = literal
	selRange    = 0.30  // col > literal etc.
	selLike     = 0.10
	selIn       = 0.02
	selDefault  = 0.25
	joinFanout  = 1.2 // avg matches per outer row on an equi-join
)

// planCost is the estimator's intermediate result.
type planCost struct {
	outRows float64 // estimated output cardinality
	work    float64 // estimated row operations
}

// EstimateCost returns estimated row operations for a statement.
func (m *CostModel) EstimateCost(stmt sqlast.Stmt) float64 {
	switch t := stmt.(type) {
	case *sqlast.SelectStmt:
		return m.selectCost(t).work
	case *sqlast.CreateTableStmt:
		if t.AsSelect != nil {
			return m.selectCost(t.AsSelect).work
		}
		return 100
	case *sqlast.CreateViewStmt:
		return 100 // metadata only
	case *sqlast.InsertStmt:
		if t.Select != nil {
			return m.selectCost(t.Select).work
		}
		return float64(100 * (len(t.Rows) + 1))
	case *sqlast.UpdateStmt:
		return float64(m.Stats.Rows(t.Table))
	case *sqlast.DeleteStmt:
		return float64(m.Stats.Rows(t.Table))
	default:
		return 50 // DECLARE/SET/EXEC/DROP/WAITFOR: negligible
	}
}

// ElapsedMS converts a statement's estimated cost to simulated elapsed
// milliseconds, applying the deterministic noise channel.
func (m *CostModel) ElapsedMS(stmt sqlast.Stmt, sql string) float64 {
	work := m.EstimateCost(stmt)
	rate := m.RowsPerMS
	if rate <= 0 {
		rate = 2_000_000
	}
	ms := work/rate + 0.2 // fixed per-query overhead
	if m.Noise > 0 {
		h := fnv.New64a()
		h.Write([]byte(sql))
		frac := float64(h.Sum64()%2048)/1024 - 1 // [-1, 1)
		ms *= 1 + m.Noise*frac
	}
	if ms < 0.1 {
		ms = 0.1
	}
	return ms
}

func (m *CostModel) selectCost(sel *sqlast.SelectStmt) planCost {
	return m.costPlan(BuildPlan(sel, PlanConfig{}), costScope{})
}

// costScope carries the estimated cardinality of in-scope CTEs down the
// plan walk.
type costScope struct {
	cteRows map[string]float64
}

func (s costScope) child(extra map[string]float64) costScope {
	if len(extra) == 0 {
		return s
	}
	merged := make(map[string]float64, len(s.cteRows)+len(extra))
	for k, v := range s.cteRows {
		merged[k] = v
	}
	for k, v := range extra {
		merged[k] = v
	}
	return costScope{cteRows: merged}
}

// costPlan estimates a full plan: CTEs are charged once each, then the node
// tree is costed with their cardinalities in scope.
func (m *CostModel) costPlan(p *Plan, scope costScope) planCost {
	var work float64
	local := make(map[string]float64, len(p.CTEs))
	for _, cte := range p.CTEs {
		pc := m.costPlan(cte.Plan, scope.child(local))
		work += pc.work
		local[strings.ToLower(cte.Name)] = pc.outRows
	}
	pc := m.costNode(p.Root, scope.child(local))
	pc.work += work
	return pc
}

// costNode estimates one plan node bottom-up.
func (m *CostModel) costNode(n PlanNode, scope costScope) planCost {
	switch t := n.(type) {
	case *OneRowNode:
		return planCost{outRows: 1}
	case *ScanNode:
		if r, ok := scope.cteRows[strings.ToLower(catalog.BareName(t.Name))]; ok {
			return planCost{outRows: r, work: r}
		}
		rows := float64(m.Stats.Rows(t.Name))
		return planCost{outRows: rows, work: rows} // full scan
	case *SubqueryScanNode:
		return m.costPlan(t.Plan, scope)
	case *JoinNode:
		return m.costJoin(t, scope)
	case *CrossNode:
		return m.costCommaJoin(t.Inputs, nil, scope)
	case *ImplicitJoinNode:
		return m.costCommaJoin(t.Inputs, t.Where, scope)
	case *FilterNode:
		in := m.costNode(t.Input, scope)
		return m.costPredicate(t.Cond, in)
	case *ProjectNode:
		return m.costNode(t.Input, scope) // projection is free in this model
	case *GroupNode:
		in := m.costNode(t.Input, scope)
		in.work += in.outRows * math.Log2(math.Max(in.outRows, 2)) * 0.1 // hash/sort aggregation
		if len(t.GroupBy) > 0 {
			in.outRows = math.Max(1, in.outRows*0.1)
		} else {
			in.outRows = 1
		}
		return in
	case *DistinctNode:
		return m.costNode(t.Input, scope)
	case *SetOpNode:
		left := m.costNode(t.Left, scope)
		right := m.costPlan(t.Right, scope)
		return planCost{outRows: left.outRows + right.outRows, work: left.work + right.work}
	case *SortNode:
		in := m.costNode(t.Input, scope)
		in.work += in.outRows * math.Log2(math.Max(in.outRows, 2)) * 0.05
		return in
	case *LimitNode:
		in := m.costNode(t.Input, scope)
		if t.Limit >= 0 && float64(t.Limit) < in.outRows {
			in.outRows = float64(t.Limit)
		}
		return in
	default:
		return planCost{outRows: 1000, work: 1000}
	}
}

// costCommaJoin estimates a comma-joined FROM list: join predicates in the
// WHERE clause are assumed to keep each step linear in the larger side
// rather than a full cross product, and the WHERE clause (when present, i.e.
// for ImplicitJoinNode) then filters the joined result.
func (m *CostModel) costCommaJoin(inputs []PlanNode, where sqlast.Expr, scope costScope) planCost {
	var work float64
	rows := 1.0
	for i, in := range inputs {
		pc := m.costNode(in, scope)
		work += pc.work
		if i == 0 {
			rows = pc.outRows
		} else {
			rows = math.Max(rows, pc.outRows) * joinFanout
			work += rows
		}
	}
	out := planCost{outRows: rows, work: work}
	if where != nil {
		out = m.costPredicate(where, out)
	}
	return out
}

// costPredicate charges one evaluation pass plus any subquery work over the
// input, and reduces cardinality by the predicate's selectivity.
func (m *CostModel) costPredicate(cond sqlast.Expr, in planCost) planCost {
	sel, subWork := m.predicateCost(cond, in.outRows)
	in.work += in.outRows // predicate evaluation pass
	in.work += subWork
	in.outRows *= sel
	return in
}

func (m *CostModel) costJoin(j *JoinNode, scope costScope) planCost {
	left := m.costNode(j.Left, scope)
	right := m.costNode(j.Right, scope)
	work := left.work + right.work
	var rows float64
	if isEquiOn(j.On) {
		// Hash join: build + probe.
		work += left.outRows + right.outRows
		rows = math.Max(left.outRows, right.outRows) * joinFanout
	} else {
		// Nested loop, capped so a single pathological query does not
		// dominate the scale.
		product := left.outRows * right.outRows
		work += math.Min(product, 1e12)
		rows = math.Min(product*selDefault, 1e9)
	}
	if j.Type == "LEFT" || j.Type == "FULL" {
		rows = math.Max(rows, left.outRows)
	}
	if j.Type == "RIGHT" || j.Type == "FULL" {
		rows = math.Max(rows, right.outRows)
	}
	return planCost{outRows: rows, work: work}
}

func isEquiOn(on sqlast.Expr) bool {
	bin, ok := on.(*sqlast.Binary)
	if !ok {
		return false
	}
	if bin.Op == "AND" {
		return isEquiOn(bin.L) || isEquiOn(bin.R)
	}
	if bin.Op != "=" {
		return false
	}
	_, l := bin.L.(*sqlast.ColumnRef)
	_, r := bin.R.(*sqlast.ColumnRef)
	return l && r
}

// predicateCost returns the combined selectivity of a WHERE expression and
// any extra work from subqueries it contains (correlated subqueries cost
// their body once per outer row).
func (m *CostModel) predicateCost(e sqlast.Expr, outerRows float64) (selectivity, work float64) {
	switch t := e.(type) {
	case *sqlast.Binary:
		switch t.Op {
		case "AND":
			s1, w1 := m.predicateCost(t.L, outerRows)
			s2, w2 := m.predicateCost(t.R, outerRows)
			return s1 * s2, w1 + w2
		case "OR":
			s1, w1 := m.predicateCost(t.L, outerRows)
			s2, w2 := m.predicateCost(t.R, outerRows)
			s := s1 + s2 - s1*s2
			return s, w1 + w2
		case "=":
			return selEquality, m.sideSubqueryWork(t.L, t.R)
		case "<", ">", "<=", ">=", "<>":
			return selRange, m.sideSubqueryWork(t.L, t.R)
		case "LIKE":
			return selLike, 0
		default:
			return selDefault, 0
		}
	case *sqlast.Unary:
		if t.Op == "NOT" {
			s, w := m.predicateCost(t.X, outerRows)
			return 1 - s, w
		}
		return selDefault, 0
	case *sqlast.In:
		var w float64
		if t.Sub != nil {
			pc := m.selectCost(t.Sub)
			w = pc.work // uncorrelated IN evaluates once (semi-join)
		}
		return selIn * math.Max(1, float64(len(t.List))), w
	case *sqlast.Exists:
		pc := m.selectCost(t.Sub)
		// EXISTS subqueries in the workloads are typically correlated:
		// charge a per-outer-row probe against the subquery's input.
		return 0.5, pc.work + outerRows*math.Sqrt(math.Max(pc.work, 1))
	case *sqlast.Between:
		return selRange, 0
	case *sqlast.IsNull:
		return 0.05, 0
	default:
		return selDefault, 0
	}
}

// sideSubqueryWork charges scalar subqueries appearing on either side of a
// comparison; they evaluate once (uncorrelated scalar subqueries dominate in
// the workloads).
func (m *CostModel) sideSubqueryWork(l, r sqlast.Expr) float64 {
	var w float64
	for _, side := range []sqlast.Expr{l, r} {
		if sub, ok := side.(*sqlast.Subquery); ok {
			pc := m.selectCost(sub.Select)
			w += pc.work
		}
	}
	return w
}
