// Package engine implements an in-memory relational query executor over the
// catalog schemas: scans, filters, nested-loop and hash joins, grouped
// aggregation, HAVING, ORDER BY, DISTINCT, TOP/LIMIT, scalar/IN/EXISTS
// subqueries, CTEs, and set operations. It also provides a plan cost model
// that estimates elapsed milliseconds from table statistics, standing in for
// the SDSS log runtimes used by the paper's performance-prediction task.
package engine

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/catalog"
)

// Value is a runtime SQL value: a tagged union over int, float, text, and
// bool, with NULL.
type Value struct {
	Kind catalog.Type
	Null bool
	I    int64
	F    float64
	S    string
	B    bool
}

// Null values and constructors.
var NullValue = Value{Null: true}

// IntVal returns an int value.
func IntVal(i int64) Value { return Value{Kind: catalog.TypeInt, I: i} }

// FloatVal returns a float value.
func FloatVal(f float64) Value { return Value{Kind: catalog.TypeFloat, F: f} }

// TextVal returns a text value.
func TextVal(s string) Value { return Value{Kind: catalog.TypeText, S: s} }

// BoolVal returns a bool value.
func BoolVal(b bool) Value { return Value{Kind: catalog.TypeBool, B: b} }

// IsNumeric reports whether the value is int or float (and not NULL).
func (v Value) IsNumeric() bool { return !v.Null && v.Kind.Numeric() }

// AsFloat converts a numeric value to float64; zero otherwise.
func (v Value) AsFloat() float64 {
	switch {
	case v.Null:
		return 0
	case v.Kind == catalog.TypeInt:
		return float64(v.I)
	case v.Kind == catalog.TypeFloat:
		return v.F
	default:
		return 0
	}
}

// Truthy reports whether the value counts as true in a WHERE context.
// NULL is not truthy.
func (v Value) Truthy() bool {
	if v.Null {
		return false
	}
	switch v.Kind {
	case catalog.TypeBool:
		return v.B
	case catalog.TypeInt:
		return v.I != 0
	case catalog.TypeFloat:
		return v.F != 0
	case catalog.TypeText:
		return v.S != ""
	default:
		return false
	}
}

// String renders the value for display and for hashing keys.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Kind {
	case catalog.TypeInt:
		return strconv.FormatInt(v.I, 10)
	case catalog.TypeFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case catalog.TypeText:
		return v.S
	case catalog.TypeBool:
		if v.B {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Compare orders two values: -1, 0, +1. NULLs sort first and compare equal
// to each other. Numeric kinds compare numerically across int/float; text
// compares case-sensitively; cross-kind comparisons fall back to string
// form so that sorting is always total.
func Compare(a, b Value) int {
	switch {
	case a.Null && b.Null:
		return 0
	case a.Null:
		return -1
	case b.Null:
		return 1
	}
	if a.IsNumeric() && b.IsNumeric() {
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.Kind == catalog.TypeText && b.Kind == catalog.TypeText {
		return strings.Compare(a.S, b.S)
	}
	if a.Kind == catalog.TypeBool && b.Kind == catalog.TypeBool {
		switch {
		case a.B == b.B:
			return 0
		case b.B:
			return -1
		default:
			return 1
		}
	}
	return strings.Compare(a.String(), b.String())
}

// Equal reports SQL equality; NULL equals nothing (including NULL).
func Equal(a, b Value) bool {
	if a.Null || b.Null {
		return false
	}
	return Compare(a, b) == 0
}

// Col describes one output column of a relation: an optional qualifier (the
// table alias it came from) and a name.
type Col struct {
	Qualifier string
	Name      string
	Type      catalog.Type
}

// Relation is a materialized table: a header plus rows.
type Relation struct {
	Cols []Col
	Rows [][]Value
}

// Width returns the number of columns.
func (r *Relation) Width() int { return len(r.Cols) }

// find returns the indexes of columns matching the (qualifier, name) pair,
// case-insensitively. An empty qualifier matches any column with the name.
func (r *Relation) find(qualifier, name string) []int {
	var idx []int
	for i, c := range r.Cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if qualifier == "" || strings.EqualFold(c.Qualifier, qualifier) {
			idx = append(idx, i)
		}
	}
	return idx
}

// Key renders a row into a canonical string for grouping and set operations
// (the allocating convenience form of rowKey, which operators use with a
// reused buffer).
func Key(row []Value) string {
	return string(rowKey(nil, row))
}

// EqualRelations compares two relations as multisets of rows (ignoring
// column names). When ordered is true, row order must match too.
func EqualRelations(a, b *Relation, ordered bool) bool {
	if len(a.Rows) != len(b.Rows) || len(a.Cols) != len(b.Cols) {
		return false
	}
	if ordered {
		for i := range a.Rows {
			if Key(a.Rows[i]) != Key(b.Rows[i]) {
				return false
			}
		}
		return true
	}
	counts := make(map[string]int, len(a.Rows))
	for _, row := range a.Rows {
		counts[Key(row)]++
	}
	for _, row := range b.Rows {
		k := Key(row)
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	return true
}

// DB is a named collection of materialized tables plus the schema they
// instantiate.
type DB struct {
	Schema *catalog.Schema
	Tables map[string]*Relation // keyed by lowercase bare table name
	// Source, when set, backs tables that are absent from Tables: ScanNode
	// lowers to a streaming cursor over the source instead of a materialized
	// relation, so store-backed tables never need to fit in memory.
	Source TableSource
}

// NewDB returns an empty database over a schema.
func NewDB(schema *catalog.Schema) *DB {
	return &DB{Schema: schema, Tables: make(map[string]*Relation)}
}

// Put registers a relation under the table name.
func (db *DB) Put(name string, rel *Relation) {
	db.Tables[strings.ToLower(catalog.BareName(name))] = rel
}

// Table returns the relation for a (possibly qualified) table name.
func (db *DB) Table(name string) (*Relation, bool) {
	rel, ok := db.Tables[strings.ToLower(catalog.BareName(name))]
	return rel, ok
}

// ErrExec wraps execution failures.
type ExecError struct {
	Msg string
}

func (e *ExecError) Error() string { return "exec error: " + e.Msg }

func execErrorf(format string, args ...any) error {
	return &ExecError{Msg: fmt.Sprintf(format, args...)}
}
