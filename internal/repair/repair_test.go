package repair

import (
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/mutate"
	"repro/internal/workload/sdss"
)

func TestDetectCleanQuery(t *testing.T) {
	schema := catalog.SDSS()
	res := Detect("SELECT plate FROM SpecObj WHERE z > 0.5", schema)
	if res.Found {
		t.Errorf("clean query flagged: %+v", res)
	}
}

func TestDetectMissingKeyword(t *testing.T) {
	schema := catalog.SDSS()
	// "FROM" removed.
	res := Detect("SELECT plate SpecObj WHERE z > 0.5", schema)
	if !res.Found {
		t.Fatal("missing FROM not found")
	}
	if res.Kind != mutate.TokKeyword {
		t.Errorf("kind = %s, want keyword (inserted %q)", res.Kind, res.Inserted)
	}
}

func TestDetectMissingComparison(t *testing.T) {
	schema := catalog.SDSS()
	res := Detect("SELECT plate FROM SpecObj WHERE z 0.5", schema)
	if !res.Found {
		t.Fatal("missing comparison not found")
	}
	if res.Kind != mutate.TokComparison {
		t.Errorf("kind = %s, want comparison", res.Kind)
	}
	if res.WordIndex < 4 || res.WordIndex > 6 {
		t.Errorf("word index = %d, want near 5-6", res.WordIndex)
	}
}

func TestDetectMissingValue(t *testing.T) {
	schema := catalog.SDSS()
	res := Detect("SELECT plate FROM SpecObj WHERE z >", schema)
	if !res.Found {
		t.Fatal("missing value not found")
	}
	// The repair inserts an identifier or value at the end; either reading
	// is plausible, but it must be found near the tail.
	if res.WordIndex < 4 {
		t.Errorf("word index = %d, want near tail", res.WordIndex)
	}
}

func TestDetectGarbage(t *testing.T) {
	schema := catalog.SDSS()
	res := Detect("'unterminated", schema)
	if !res.Found {
		t.Error("lex-level damage should report found")
	}
}

// Property: across the SDSS workload, the detector finds the vast majority
// of parse-breaking removals and never flags intact queries.
func TestDetectorAccuracyOverWorkload(t *testing.T) {
	w := sdss.Generate(1)
	r := rand.New(rand.NewSource(21))
	var removals, found, kindRight int
	var falseAlarms int
	for _, q := range w.Queries[:120] {
		if res := Detect(q.SQL, w.Schema); res.Found {
			falseAlarms++
		}
		for _, kind := range mutate.TokenKinds {
			rem, ok := mutate.RemoveToken(q.SQL, q.Stmt, kind, r)
			if !ok {
				continue
			}
			removals++
			res := Detect(rem.SQL, w.Schema)
			if res.Found {
				found++
				if res.Kind == kind {
					kindRight++
				}
			}
		}
	}
	if falseAlarms != 0 {
		t.Errorf("false alarms on intact queries: %d", falseAlarms)
	}
	if removals == 0 {
		t.Fatal("no removals")
	}
	foundRate := float64(found) / float64(removals)
	if foundRate < 0.80 {
		t.Errorf("detector found %.2f of removals, want >= 0.80", foundRate)
	}
	kindRate := float64(kindRight) / float64(found)
	if kindRate < 0.5 {
		t.Errorf("kind accuracy %.2f, want >= 0.5", kindRate)
	}
	t.Logf("detector: found %.3f, kind accuracy %.3f over %d removals", foundRate, kindRate, removals)
}
