// Package repair implements a missing-token detector: given a damaged SQL
// query, it searches for a single token insertion near the parse-failure
// point that makes the query parse (and classifies what was inserted). It
// backs the miss_token oracle inside the simulated models and the sqlcheck
// CLI's fix suggestions. Its natural error modes — keywords repair reliably,
// while table/column/alias insertions are often interchangeable — mirror the
// difficulty ordering the paper observes.
package repair

import (
	"errors"
	"strings"

	"repro/internal/catalog"
	"repro/internal/mutate"
	"repro/internal/semcheck"
	"repro/internal/sqlast"
	"repro/internal/sqllex"
	"repro/internal/sqlparse"
)

// Result describes a detected missing token.
type Result struct {
	Found bool
	Kind  mutate.TokenKind
	// WordIndex is the estimated word position of the missing token in the
	// damaged text (0-based, whitespace words).
	WordIndex int
	// Inserted is the token text whose insertion repaired the query.
	Inserted string
}

// keyword candidates tried during repair, most common first.
var keywordCandidates = []string{
	"SELECT", "FROM", "WHERE", "BY", "GROUP", "ON", "AND", "AS", "IN",
	"JOIN", "ORDER", "HAVING", "BETWEEN", "VALUES", "INTO", "SET", "TABLE",
}

// Detect analyzes a possibly damaged query. When the query parses and is
// semantically clean against the schema, it reports Found=false. Otherwise
// it tries single-token insertions around the failure point and returns the
// first repair that makes the query parse.
func Detect(sql string, schema *catalog.Schema) Result {
	toks, err := sqllex.LexWords(sql)
	if err != nil || len(toks) == 0 {
		return Result{Found: true, Kind: mutate.TokValue, WordIndex: 0, Inserted: "?"}
	}
	if _, perr := sqlparse.ParseStatement(sql); perr == nil {
		return detectSemanticGap(sql, toks, schema)
	} else {
		return repairAt(sql, toks, failureIndex(perr, toks))
	}
}

// failureIndex maps a parse error back to the index of the offending token.
func failureIndex(err error, toks []sqllex.Token) int {
	var pe *sqlparse.ParseError
	if !errors.As(err, &pe) {
		return len(toks)
	}
	for i, t := range toks {
		if t.Pos.Offset >= pe.Pos.Offset {
			return i
		}
	}
	return len(toks)
}

// repairAt tries inserting candidate tokens at gap positions around the
// failure token.
func repairAt(sql string, toks []sqllex.Token, fail int) Result {
	texts := make([]string, len(toks))
	for i, t := range toks {
		texts[i] = t.Text
	}
	lo := fail - 3
	if lo < 0 {
		lo = 0
	}
	hi := fail + 2
	if hi > len(toks) {
		hi = len(toks)
	}
	type candidate struct {
		text string
		kind mutate.TokenKind
	}
	baseCandidates := func(gap int) []candidate {
		var out []candidate
		// A gap flanked by value-like tokens most plausibly lost a
		// comparison operator; try it first there.
		if valueLike(toks, gap-1) && valueLike(toks, gap) {
			out = append(out, candidate{"=", mutate.TokComparison})
		}
		// A gap right after a comparison operator most plausibly lost the
		// literal operand.
		if gap > 0 && toks[gap-1].Kind == sqllex.Op && comparisonOp(toks[gap-1].Text) {
			out = append(out, candidate{"0", mutate.TokValue})
		}
		for _, kw := range keywordCandidates {
			out = append(out, candidate{kw, mutate.TokKeyword})
		}
		return append(out,
			candidate{"x0", mutate.TokColumn}, // identifier; kind refined by context
			candidate{"0", mutate.TokValue},
			candidate{"'v'", mutate.TokValue},
			candidate{"=", mutate.TokComparison},
		)
	}
	for gap := lo; gap <= hi; gap++ {
		for _, c := range baseCandidates(gap) {
			rebuilt := insertAt(texts, gap, c.text)
			if _, err := sqlparse.ParseStatement(rebuilt); err == nil {
				kind := c.kind
				if c.kind == mutate.TokColumn {
					kind = classifyIdentGap(toks, gap)
				}
				return Result{
					Found:     true,
					Kind:      kind,
					WordIndex: wordIndexOfToken(sql, toks, gap),
					Inserted:  c.text,
				}
			}
		}
	}
	// Unrepairable with one token: still clearly damaged.
	return Result{Found: true, Kind: mutate.TokKeyword, WordIndex: wordIndexOfToken(sql, toks, fail), Inserted: ""}
}

// comparisonOp reports whether the operator text is a comparison.
func comparisonOp(text string) bool {
	switch text {
	case "=", "<>", "!=", "<", ">", "<=", ">=":
		return true
	}
	return false
}

// valueLike reports whether the token at index i can be a comparison
// operand (identifier, number, or string).
func valueLike(toks []sqllex.Token, i int) bool {
	if i < 0 || i >= len(toks) {
		return false
	}
	switch toks[i].Kind {
	case sqllex.Ident, sqllex.QuotedIdent, sqllex.Number, sqllex.String:
		return true
	}
	return false
}

func insertAt(texts []string, gap int, tok string) string {
	parts := make([]string, 0, len(texts)+1)
	parts = append(parts, texts[:gap]...)
	parts = append(parts, tok)
	parts = append(parts, texts[gap:]...)
	return strings.Join(parts, " ")
}

// classifyIdentGap decides whether an identifier inserted at the gap plays
// the role of a table, alias, or column, from surrounding tokens.
func classifyIdentGap(toks []sqllex.Token, gap int) mutate.TokenKind {
	var prev, next sqllex.Token
	if gap > 0 {
		prev = toks[gap-1]
	}
	if gap < len(toks) {
		next = toks[gap]
	}
	switch {
	case prev.Is("FROM") || prev.Is("JOIN") || prev.Is("INTO") || prev.Is("UPDATE") || prev.Is("TABLE"):
		return mutate.TokTable
	case prev.Is("AS"):
		return mutate.TokAlias
	case next.Kind == sqllex.Op && next.Text == ".":
		return mutate.TokAlias // qualifier position
	case prev.Kind == sqllex.Op && prev.Text == ".":
		return mutate.TokColumn
	case prev.Kind == sqllex.Comma && inFromList(toks, gap):
		return mutate.TokTable // comma-separated FROM list (implicit joins)
	default:
		return mutate.TokColumn
	}
}

// inFromList reports whether the gap sits inside a comma-separated FROM
// clause (the nearest structural keyword looking backwards is FROM).
func inFromList(toks []sqllex.Token, gap int) bool {
	depth := 0
	for i := gap - 1; i >= 0; i-- {
		t := toks[i]
		switch {
		case t.Kind == sqllex.RParen:
			depth++
		case t.Kind == sqllex.LParen:
			depth--
		case depth == 0 && t.Is("FROM"):
			return true
		case depth == 0 && (t.Is("SELECT") || t.Is("WHERE") || t.Is("ON") || t.Is("BY")):
			return false
		}
	}
	return false
}

// wordIndexOfToken converts a token gap index to a whitespace-word index in
// the damaged text.
func wordIndexOfToken(sql string, toks []sqllex.Token, gap int) int {
	if gap >= len(toks) {
		gap = len(toks) - 1
	}
	if gap < 0 {
		return 0
	}
	// Count word starts up to and including the gap token's offset.
	offset := toks[gap].Pos.Offset
	idx := -1
	inWord := false
	for i := 0; i <= offset && i < len(sql); i++ {
		c := sql[i]
		space := c == ' ' || c == '\t' || c == '\n' || c == '\r'
		if !space && !inWord {
			idx++
			inWord = true
		} else if space {
			inWord = false
		}
	}
	if idx < 0 {
		return 0
	}
	return idx
}

// detectSemanticGap handles removals that leave the query parsable (dropped
// aliases, AS keywords, or a dropped FROM that turns the table name into an
// implicit alias): the semantic checker's diagnostics reveal them.
func detectSemanticGap(sql string, toks []sqllex.Token, schema *catalog.Schema) Result {
	if schema == nil {
		return Result{}
	}
	// A SELECT with no FROM whose projection "alias" names a known table is
	// the signature of a dropped FROM keyword.
	if stmt, err := sqlparse.ParseStatement(sql); err == nil {
		if sel, ok := stmt.(*sqlast.SelectStmt); ok && len(sel.From) == 0 {
			for _, item := range sel.Items {
				if item.Alias == "" {
					continue
				}
				if _, found := schema.Table(item.Alias); !found {
					continue
				}
				for i, t := range toks {
					if (t.Kind == sqllex.Ident || t.Kind == sqllex.QuotedIdent) &&
						strings.EqualFold(t.Val(), item.Alias) {
						return Result{Found: true, Kind: mutate.TokKeyword, WordIndex: wordIndexOfToken(sql, toks, i), Inserted: "FROM"}
					}
				}
			}
		}
	}
	diags := semcheck.New(schema).CheckSQL(sql)
	if len(diags) == 0 {
		return Result{}
	}
	mid := wordIndexOfToken(sql, toks, len(toks)/2)
	switch semcheck.Primary(diags) {
	case semcheck.CodeAliasAmbiguous:
		// A dropped qualifier: the first unqualified reference that is
		// ambiguous across the FROM tables marks the spot.
		if idx, ok := firstAmbiguousRef(sql, toks, schema); ok {
			return Result{Found: true, Kind: mutate.TokAlias, WordIndex: idx, Inserted: ""}
		}
		return Result{Found: true, Kind: mutate.TokAlias, WordIndex: mid, Inserted: ""}
	case semcheck.CodeAliasUndefined:
		for i, t := range toks {
			if t.Kind == sqllex.Op && t.Text == "." && i > 0 {
				return Result{Found: true, Kind: mutate.TokAlias, WordIndex: wordIndexOfToken(sql, toks, i-1), Inserted: ""}
			}
		}
		return Result{Found: true, Kind: mutate.TokAlias, WordIndex: mid, Inserted: ""}
	case semcheck.CodeUnknownColumn:
		if idx, ok := firstUnknownIdent(sql, toks, schema); ok {
			return Result{Found: true, Kind: mutate.TokColumn, WordIndex: idx, Inserted: ""}
		}
		return Result{Found: true, Kind: mutate.TokColumn, WordIndex: mid, Inserted: ""}
	case semcheck.CodeUnknownTable:
		for i, t := range toks {
			if t.Is("FROM") && i+1 < len(toks) {
				return Result{Found: true, Kind: mutate.TokTable, WordIndex: wordIndexOfToken(sql, toks, i+1), Inserted: ""}
			}
		}
		return Result{Found: true, Kind: mutate.TokTable, WordIndex: mid, Inserted: ""}
	case semcheck.CodeConditionMismatch:
		for i, t := range toks {
			if t.Kind == sqllex.Op && comparisonOp(t.Text) {
				return Result{Found: true, Kind: mutate.TokValue, WordIndex: wordIndexOfToken(sql, toks, i), Inserted: ""}
			}
		}
		return Result{Found: true, Kind: mutate.TokValue, WordIndex: mid, Inserted: ""}
	default:
		// Some other semantic damage: a token is evidently gone even though
		// its role is unclear; guess column at the query's middle.
		return Result{Found: true, Kind: mutate.TokColumn, WordIndex: mid, Inserted: ""}
	}
}

// fromTables extracts the base tables referenced by the query's FROM
// clauses (resolvable against the schema).
func fromTables(sql string, schema *catalog.Schema) []*catalog.Table {
	stmt, err := sqlparse.ParseStatement(sql)
	if err != nil {
		return nil
	}
	var out []*catalog.Table
	sqlast.Walk(stmt, func(n sqlast.Node) bool {
		if tn, ok := n.(*sqlast.TableName); ok {
			if tab, found := schema.Table(tn.Name); found {
				out = append(out, tab)
			}
		}
		return true
	})
	return out
}

// firstAmbiguousRef finds the first unqualified identifier whose name is a
// column of at least two FROM tables.
func firstAmbiguousRef(sql string, toks []sqllex.Token, schema *catalog.Schema) (int, bool) {
	tables := fromTables(sql, schema)
	if len(tables) < 2 {
		return 0, false
	}
	for i, t := range toks {
		if t.Kind != sqllex.Ident {
			continue
		}
		if i > 0 && toks[i-1].Text == "." {
			continue // qualified
		}
		if i+1 < len(toks) && (toks[i+1].Text == "." || toks[i+1].Kind == sqllex.LParen) {
			continue // qualifier or function
		}
		hits := 0
		for _, tab := range tables {
			if _, ok := tab.Column(t.Val()); ok {
				hits++
			}
		}
		if hits >= 2 {
			return wordIndexOfToken(sql, toks, i), true
		}
	}
	return 0, false
}

// firstUnknownIdent finds the first bare identifier that is neither a table,
// a known column of the FROM tables, nor a function name.
func firstUnknownIdent(sql string, toks []sqllex.Token, schema *catalog.Schema) (int, bool) {
	tables := fromTables(sql, schema)
	aliases := map[string]bool{}
	for i, t := range toks {
		if i > 0 && toks[i-1].Is("AS") && (t.Kind == sqllex.Ident || t.Kind == sqllex.QuotedIdent) {
			aliases[strings.ToLower(t.Val())] = true
		}
	}
	for i, t := range toks {
		if t.Kind != sqllex.Ident {
			continue
		}
		if i+1 < len(toks) && (toks[i+1].Kind == sqllex.LParen || toks[i+1].Text == ".") {
			continue // function or qualifier
		}
		if i > 0 && (toks[i-1].Is("AS") || toks[i-1].Text == ".") {
			continue // alias definition or qualified column
		}
		if _, isTable := schema.Table(t.Val()); isTable {
			continue
		}
		if aliases[strings.ToLower(t.Val())] {
			// A bare alias is exactly what a stripped qualified reference
			// looks like: the damage is here.
			return wordIndexOfToken(sql, toks, i), true
		}
		known := false
		for _, tab := range tables {
			if _, ok := tab.Column(t.Val()); ok {
				known = true
				break
			}
		}
		if !known {
			return wordIndexOfToken(sql, toks, i), true
		}
	}
	return 0, false
}
