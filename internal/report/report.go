// Package report renders benchmark outputs as fixed-width text: metric
// grids shaped like the paper's Tables 3-7, bar histograms shaped like
// Figures 1-3 and 5, correlation matrices (Figure 4), and per-outcome
// failure panels (Figures 6-12).
package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/metrics"
)

// PRF is one precision/recall/F1 cell.
type PRF struct {
	Prec, Rec, F1 float64
}

// FromBinary converts a confusion matrix to its PRF cell.
func FromBinary(b metrics.Binary) PRF {
	return PRF{Prec: b.Precision(), Rec: b.Recall(), F1: b.F1()}
}

// MetricTable renders a model × dataset grid of PRF cells in the paper's
// table layout.
func MetricTable(w io.Writer, title string, datasets, models []string, cells map[string]map[string]PRF) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-12s", "Model")
	for _, ds := range datasets {
		fmt.Fprintf(w, " | %-22s", ds)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s", "")
	for range datasets {
		fmt.Fprintf(w, " | %6s %6s %6s ", "Prec.", "Rec.", "F1")
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 14+25*len(datasets)))
	for _, m := range models {
		fmt.Fprintf(w, "%-12s", m)
		for _, ds := range datasets {
			c := cells[m][ds]
			fmt.Fprintf(w, " | %6.2f %6.2f %6.2f ", c.Prec, c.Rec, c.F1)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// TaskCell is one model×dataset cell of a registry-driven task accuracy
// grid: the headline accuracy plus precision/recall/F1 when the task's
// grading is binary (HasPRF); continuously graded tasks fill Accuracy only.
type TaskCell struct {
	N             int
	Accuracy      float64
	Prec, Rec, F1 float64
	HasPRF        bool
}

// TaskGrid renders any task's model × dataset accuracy table generically —
// the renderer behind the registry-wide grid, task-agnostic by
// construction. PRF columns print as dashes for tasks without a confusion
// matrix.
func TaskGrid(w io.Writer, title string, datasets, models []string, cells map[string]map[string]TaskCell) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-12s", "Model")
	for _, ds := range datasets {
		fmt.Fprintf(w, " | %-29s", ds)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s", "")
	for range datasets {
		fmt.Fprintf(w, " | %6s %6s %6s %6s ", "Acc.", "Prec.", "Rec.", "F1")
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 14+32*len(datasets)))
	for _, m := range models {
		fmt.Fprintf(w, "%-12s", m)
		for _, ds := range datasets {
			c := cells[m][ds]
			if c.HasPRF {
				fmt.Fprintf(w, " | %6.2f %6.2f %6.2f %6.2f ", c.Accuracy, c.Prec, c.Rec, c.F1)
			} else {
				fmt.Fprintf(w, " | %6.2f %6s %6s %6s ", c.Accuracy, "-", "-", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// LocRow is one MAE/HR cell for Table 5.
type LocRow struct {
	MAE, HR float64
}

// LocationTable renders the miss_token_loc table.
func LocationTable(w io.Writer, title string, datasets, models []string, cells map[string]map[string]LocRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-12s", "Model")
	for _, ds := range datasets {
		fmt.Fprintf(w, " | %-15s", ds)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s", "")
	for range datasets {
		fmt.Fprintf(w, " | %7s %7s", "MAE", "HR")
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 14+18*len(datasets)))
	for _, m := range models {
		fmt.Fprintf(w, "%-12s", m)
		for _, ds := range datasets {
			c := cells[m][ds]
			fmt.Fprintf(w, " | %7.2f %7.2f", c.MAE, c.HR)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// Histogram renders labeled counts as horizontal bars.
func Histogram(w io.Writer, title string, labels []string, counts []int) {
	fmt.Fprintf(w, "%s\n", title)
	max := 1
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	const width = 44
	for i, label := range labels {
		bar := counts[i] * width / max
		fmt.Fprintf(w, "  %-10s %4d  %s\n", label, counts[i], strings.Repeat("#", bar))
	}
	fmt.Fprintln(w)
}

// RateBars renders per-class rates (Figures 7 and 9) as percentage bars.
func RateBars(w io.Writer, title string, classes []string, rates map[string]float64) {
	fmt.Fprintf(w, "%s\n", title)
	for _, c := range classes {
		r := rates[c]
		bar := int(r * 40)
		fmt.Fprintf(w, "  %-20s %5.2f  %s\n", c, r, strings.Repeat("#", bar))
	}
	fmt.Fprintln(w)
}

// CorrMatrix renders a Pearson matrix with property names.
func CorrMatrix(w io.Writer, title string, names []string, m [][]float64) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-16s", "")
	for _, n := range names {
		fmt.Fprintf(w, "%8s", abbrev(n, 7))
	}
	fmt.Fprintln(w)
	for i, n := range names {
		fmt.Fprintf(w, "%-16s", n)
		for j := range names {
			fmt.Fprintf(w, "%8.2f", m[i][j])
		}
		fmt.Fprintln(w)
		_ = i
	}
	fmt.Fprintln(w)
}

func abbrev(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// OutcomePanel renders a Figure-6-style panel: per outcome, the average and
// median of a property plus the population size.
func OutcomePanel(w io.Writer, title string, bd *metrics.Breakdown) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "  %-4s %10s %10s %8s\n", "", "avg", "median", "n")
	for _, o := range metrics.Outcomes {
		fmt.Fprintf(w, "  %-4s %10.2f %10.2f %8d\n", o, bd.Avg(o), bd.Median(o), bd.Count(o))
	}
	fmt.Fprintln(w)
}

// KeyValues renders aligned key/value pairs.
func KeyValues(w io.Writer, title string, keys []string, values map[string]string) {
	fmt.Fprintf(w, "%s\n", title)
	for _, k := range keys {
		fmt.Fprintf(w, "  %-28s %s\n", k, values[k])
	}
	fmt.Fprintln(w)
}

// Section prints a prominent section header.
func Section(w io.Writer, name string) {
	fmt.Fprintln(w, strings.Repeat("=", 72))
	fmt.Fprintln(w, name)
	fmt.Fprintln(w, strings.Repeat("=", 72))
}
