package report

import (
	"bytes"
	"strings"
	"testing"
)

// TaskGrid must render any task's accuracy cells generically: PRF columns
// for confusion-graded tasks, dashes for continuously graded ones.
func TestTaskGrid(t *testing.T) {
	var buf bytes.Buffer
	TaskGrid(&buf, "fill (fill_token)", []string{"SDSS", "SQLShare"}, []string{"GPT4", "Gemini"},
		map[string]map[string]TaskCell{
			"GPT4": {
				"SDSS":     {N: 100, Accuracy: 0.61, Prec: 0.9, Rec: 0.95, F1: 0.92, HasPRF: true},
				"SQLShare": {N: 80, Accuracy: 0.55, Prec: 0.8, Rec: 0.85, F1: 0.82, HasPRF: true},
			},
			"Gemini": {
				"SDSS":     {N: 100, Accuracy: 0.72},
				"SQLShare": {N: 80, Accuracy: 0.68},
			},
		})
	out := buf.String()
	for _, want := range []string{"fill (fill_token)", "GPT4", "Gemini", "SDSS", "SQLShare", "Acc.", "0.61", "0.92"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
	// The non-PRF row renders dashes, not zeros.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Gemini") {
			if !strings.Contains(line, "-") {
				t.Errorf("non-PRF row has no dashes: %q", line)
			}
			if strings.Contains(line, "0.00") {
				t.Errorf("non-PRF row renders zero PRF: %q", line)
			}
		}
	}
	// Deterministic rendering.
	var again bytes.Buffer
	TaskGrid(&again, "fill (fill_token)", []string{"SDSS", "SQLShare"}, []string{"GPT4", "Gemini"},
		map[string]map[string]TaskCell{
			"GPT4": {
				"SDSS":     {N: 100, Accuracy: 0.61, Prec: 0.9, Rec: 0.95, F1: 0.92, HasPRF: true},
				"SQLShare": {N: 80, Accuracy: 0.55, Prec: 0.8, Rec: 0.85, F1: 0.82, HasPRF: true},
			},
			"Gemini": {
				"SDSS":     {N: 100, Accuracy: 0.72},
				"SQLShare": {N: 80, Accuracy: 0.68},
			},
		})
	if out != again.String() {
		t.Error("TaskGrid output is not deterministic")
	}
}
