package report

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestMetricTable(t *testing.T) {
	var b strings.Builder
	cells := map[string]map[string]PRF{
		"GPT4": {"SDSS": {Prec: 0.98, Rec: 0.95, F1: 0.97}},
	}
	MetricTable(&b, "syntax_error", []string{"SDSS"}, []string{"GPT4"}, cells)
	out := b.String()
	for _, want := range []string{"syntax_error", "GPT4", "0.98", "0.95", "0.97", "SDSS"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFromBinary(t *testing.T) {
	b := metrics.Binary{TPs: 9, FNs: 1, FPs: 1, TNs: 9}
	prf := FromBinary(b)
	if prf.Prec != 0.9 || prf.Rec != 0.9 {
		t.Errorf("prf = %+v", prf)
	}
}

func TestLocationTable(t *testing.T) {
	var b strings.Builder
	cells := map[string]map[string]LocRow{
		"GPT4": {"SDSS": {MAE: 4.69, HR: 0.56}},
	}
	LocationTable(&b, "loc", []string{"SDSS"}, []string{"GPT4"}, cells)
	if !strings.Contains(b.String(), "4.69") || !strings.Contains(b.String(), "0.56") {
		t.Errorf("output = %s", b.String())
	}
}

func TestHistogram(t *testing.T) {
	var b strings.Builder
	Histogram(&b, "words", []string{"1-30", "30+"}, []int{10, 5})
	out := b.String()
	if !strings.Contains(out, "1-30") || !strings.Contains(out, "10") {
		t.Errorf("output = %s", out)
	}
	// The larger bucket gets the longer bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[1], "#") <= strings.Count(lines[2], "#") {
		t.Errorf("bar lengths wrong:\n%s", out)
	}
}

func TestHistogramZeroCounts(t *testing.T) {
	var b strings.Builder
	Histogram(&b, "empty", []string{"a"}, []int{0}) // must not divide by zero
	if !strings.Contains(b.String(), "a") {
		t.Error("label missing")
	}
}

func TestRateBars(t *testing.T) {
	var b strings.Builder
	RateBars(&b, "fn rates", []string{"keyword", "value"}, map[string]float64{"keyword": 0.5, "value": 0.1})
	out := b.String()
	if !strings.Contains(out, "keyword") || !strings.Contains(out, "0.50") {
		t.Errorf("output = %s", out)
	}
}

func TestCorrMatrixRender(t *testing.T) {
	var b strings.Builder
	CorrMatrix(&b, "corr", []string{"A_Long_Name", "B"}, [][]float64{{1, 0.5}, {0.5, 1}})
	out := b.String()
	if !strings.Contains(out, "A_Long_Name") || !strings.Contains(out, "0.50") {
		t.Errorf("output = %s", out)
	}
}

func TestOutcomePanel(t *testing.T) {
	bd := metrics.NewBreakdown()
	bd.Add(true, true, 10)
	bd.Add(true, false, 99)
	var b strings.Builder
	OutcomePanel(&b, "panel", bd)
	out := b.String()
	for _, want := range []string{"TP", "FN", "10.00", "99.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestKeyValuesAndSection(t *testing.T) {
	var b strings.Builder
	Section(&b, "My Section")
	KeyValues(&b, "facts", []string{"k"}, map[string]string{"k": "v"})
	out := b.String()
	if !strings.Contains(out, "My Section") || !strings.Contains(out, "k") || !strings.Contains(out, "v") {
		t.Errorf("output = %s", out)
	}
}
