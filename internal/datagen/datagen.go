// Package datagen produces deterministic synthetic data instances for
// catalog schemas, used by the execution engine to test query equivalence
// empirically and by the examples. Values are generated per column with
// type-appropriate, skewed distributions and deliberate cross-table key
// overlap so joins and subqueries produce non-trivial results.
package datagen

import (
	"hash/fnv"
	"math/rand"
	"strings"

	"repro/internal/catalog"
	"repro/internal/engine"
)

// Config controls instance generation.
type Config struct {
	// Rows is the default number of rows per table (default 60).
	Rows int
	// Seed drives all randomness; the same seed always produces the same
	// instance.
	Seed int64
	// NullFraction is the probability that a non-key column is NULL
	// (default 0.05).
	NullFraction float64
}

func (c *Config) normalize() {
	if c.Rows <= 0 {
		c.Rows = 60
	}
	if c.NullFraction <= 0 {
		c.NullFraction = 0.05
	}
}

// Instance materializes every table of the schema into a DB.
func Instance(schema *catalog.Schema, cfg Config) *engine.DB {
	cfg.normalize()
	db := engine.NewDB(schema)
	for _, t := range schema.Tables() {
		db.Put(t.Name, GenTable(t, cfg))
	}
	return db
}

// GenTable materializes one table.
func GenTable(t *catalog.Table, cfg Config) *engine.Relation {
	cfg.normalize()
	r := rand.New(rand.NewSource(cfg.Seed ^ int64(hash(t.Name))))
	rel := &engine.Relation{}
	for _, c := range t.Columns {
		rel.Cols = append(rel.Cols, engine.Col{Name: c.Name, Type: c.Type})
	}
	for i := 0; i < cfg.Rows; i++ {
		row := make([]engine.Value, len(t.Columns))
		for j, c := range t.Columns {
			row[j] = genValue(r, t.Name, c, i, cfg)
		}
		rel.Rows = append(rel.Rows, row)
	}
	return rel
}

// words used for text columns; short and overlapping so equality predicates
// and LIKE patterns hit.
var textPool = []string{
	"GALAXY", "STAR", "QSO", "alpha", "beta", "gamma", "delta", "north",
	"south", "east", "west", "red", "blue", "green", "primary", "secondary",
}

func genValue(r *rand.Rand, table string, c catalog.Column, rowIdx int, cfg Config) engine.Value {
	name := strings.ToLower(c.Name)
	isKey := strings.HasSuffix(name, "id") || name == "plate" || name == "code" ||
		strings.HasSuffix(name, "_id")
	if !isKey && r.Float64() < cfg.NullFraction {
		return engine.NullValue
	}
	switch c.Type {
	case catalog.TypeInt:
		if isKey {
			// Keys are dense small integers shared across tables, so joins
			// on id columns match with high probability.
			return engine.IntVal(int64(1 + r.Intn(cfg.Rows)))
		}
		// Skewed small ints: many repeats, occasional large values.
		if r.Float64() < 0.1 {
			return engine.IntVal(int64(1000 + r.Intn(100000)))
		}
		return engine.IntVal(int64(r.Intn(200)))
	case catalog.TypeFloat:
		switch {
		case name == "z" || strings.Contains(name, "redshift"):
			return engine.FloatVal(r.Float64() * 3) // plausible redshift range
		case name == "ra":
			return engine.FloatVal(r.Float64() * 360)
		case name == "dec":
			return engine.FloatVal(r.Float64()*180 - 90)
		default:
			return engine.FloatVal(float64(int(r.Float64()*10000)) / 10)
		}
	case catalog.TypeText:
		return engine.TextVal(textPool[r.Intn(len(textPool))])
	case catalog.TypeBool:
		return engine.BoolVal(r.Intn(2) == 0)
	default:
		return engine.NullValue
	}
}

func hash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(strings.ToLower(s)))
	return h.Sum64()
}
