package datagen

import (
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/sqlparse"
)

func TestGenScriptRoundTripsAndExecutes(t *testing.T) {
	schema := catalog.SDSS()
	r := rand.New(rand.NewSource(42))
	tables := schema.Tables()
	for i := 0; i < 200; i++ {
		donor := tables[i%len(tables)]
		sc := GenScript(donor, r)
		// The canonical SQL must reparse to the same statements.
		stmts, err := sqlparse.ParseAll(sc.SQL)
		if err != nil {
			t.Fatalf("script %d does not reparse: %v\n%s", i, err, sc.SQL)
		}
		if got := ScriptSQL(stmts); got != sc.SQL {
			t.Fatalf("script %d not canonical:\n%s\n%s", i, sc.SQL, got)
		}
		// And execute cleanly against the in-memory store.
		db := engine.NewDB(nil)
		e := engine.New(db)
		if err := e.ApplyScript(engine.NewMemStore(db), stmts); err != nil {
			t.Fatalf("script %d does not execute: %v\n%s", i, err, sc.SQL)
		}
		if _, ok := db.Table(sc.Table); !ok {
			t.Fatalf("script %d left no table %q", i, sc.Table)
		}
	}
}

func TestGenScriptDeterministic(t *testing.T) {
	schema := catalog.SDSS()
	donor := schema.Tables()[0]
	a := GenScript(donor, rand.New(rand.NewSource(7)))
	b := GenScript(donor, rand.New(rand.NewSource(7)))
	if a.SQL != b.SQL {
		t.Fatal("same seed produced different scripts")
	}
}
