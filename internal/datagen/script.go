package datagen

// DML/transaction script generation for the state task and the store
// differential fuzzer. A script is self-contained: it creates one small
// table (columns borrowed from a real schema table), seeds it with INSERTs,
// then runs a few UPDATE/DELETE/INSERT statements, some wrapped in a
// BEGIN..COMMIT or BEGIN..ROLLBACK block — so answering "what does the table
// contain afterwards" requires tracking both DML semantics and transaction
// visibility.

import (
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlast"
)

// Script is a generated DML workload over one table.
type Script struct {
	Table string // the table every statement targets
	Stmts []sqlast.Stmt
	SQL   string // canonical single-line form, statements joined by " ; "
}

// scriptCol is a chosen column with its SQL declaration type.
type scriptCol struct {
	name    string
	typ     catalog.Type
	sqlType string
}

func sqlTypeName(t catalog.Type) string {
	switch t {
	case catalog.TypeInt:
		return "INT"
	case catalog.TypeFloat:
		return "FLOAT"
	case catalog.TypeBool:
		return "BIT"
	default:
		return "VARCHAR(32)"
	}
}

// GenScript generates a deterministic random script whose table borrows
// column names and types from the donor table.
func GenScript(donor *catalog.Table, r *rand.Rand) Script {
	name := strings.ToLower(catalog.BareName(donor.Name)) + "_wk"

	// Column 0 is always an int key (dense 1..N), then up to two donor
	// columns of any type.
	cols := []scriptCol{}
	keyName := "id"
	for _, c := range donor.Columns {
		if c.Type == catalog.TypeInt {
			keyName = c.Name
			break
		}
	}
	cols = append(cols, scriptCol{name: keyName, typ: catalog.TypeInt, sqlType: "INT"})
	for _, c := range donor.Columns {
		if len(cols) >= 3 {
			break
		}
		if strings.EqualFold(c.Name, keyName) || c.Type == catalog.TypeAny {
			continue
		}
		cols = append(cols, scriptCol{name: c.Name, typ: c.Type, sqlType: sqlTypeName(c.Type)})
	}
	if len(cols) == 1 {
		cols = append(cols, scriptCol{name: "label", typ: catalog.TypeText, sqlType: "VARCHAR(32)"})
	}

	g := &scriptGen{r: r, table: name, cols: cols}
	g.emitCreate()
	seed := 4 + r.Intn(4)
	g.emitInsert(seed)
	ops := 3 + r.Intn(4)
	txnDone := false
	for i := 0; i < ops; i++ {
		if !txnDone && r.Intn(100) < 40 {
			txnDone = true
			g.stmts = append(g.stmts, &sqlast.TxnStmt{Kind: "BEGIN"})
			inner := 1 + r.Intn(3)
			for j := 0; j < inner; j++ {
				g.emitDML()
			}
			end := "COMMIT"
			if r.Intn(2) == 0 {
				end = "ROLLBACK"
			}
			g.stmts = append(g.stmts, &sqlast.TxnStmt{Kind: end})
			continue
		}
		g.emitDML()
	}

	parts := make([]string, len(g.stmts))
	for i, s := range g.stmts {
		parts[i] = sqlast.Print(s)
	}
	return Script{Table: name, Stmts: g.stmts, SQL: strings.Join(parts, " ; ")}
}

type scriptGen struct {
	r       *rand.Rand
	table   string
	cols    []scriptCol
	nextKey int
	stmts   []sqlast.Stmt
}

func (g *scriptGen) emitCreate() {
	defs := make([]sqlast.ColumnDef, len(g.cols))
	for i, c := range g.cols {
		defs[i] = sqlast.ColumnDef{Name: c.name, Type: c.sqlType}
	}
	g.stmts = append(g.stmts, &sqlast.CreateTableStmt{Name: g.table, Cols: defs})
}

// value generates a literal for a column. Floats stay on quarter steps so
// every rendering (engine %g, model answers) agrees byte-for-byte.
func (g *scriptGen) value(c scriptCol, key int) sqlast.Expr {
	switch c.typ {
	case catalog.TypeInt:
		if key > 0 {
			return sqlast.Number(strconv.Itoa(key))
		}
		return sqlast.Number(strconv.Itoa(g.r.Intn(90) + 1))
	case catalog.TypeFloat:
		f := float64(g.r.Intn(200)) / 4
		return sqlast.Number(strconv.FormatFloat(f, 'g', -1, 64))
	case catalog.TypeBool:
		if g.r.Intn(2) == 0 {
			return &sqlast.Literal{Kind: sqlast.LitBool, Text: "TRUE"}
		}
		return &sqlast.Literal{Kind: sqlast.LitBool, Text: "FALSE"}
	default:
		return sqlast.Str(textPool[g.r.Intn(len(textPool))])
	}
}

func (g *scriptGen) emitInsert(n int) {
	names := make([]string, len(g.cols))
	for i, c := range g.cols {
		names[i] = c.name
	}
	rows := make([][]sqlast.Expr, n)
	for i := range rows {
		g.nextKey++
		row := make([]sqlast.Expr, len(g.cols))
		for j, c := range g.cols {
			if j == 0 {
				row[j] = sqlast.Number(strconv.Itoa(g.nextKey))
			} else {
				row[j] = g.value(c, 0)
			}
		}
		rows[i] = row
	}
	g.stmts = append(g.stmts, &sqlast.InsertStmt{Table: g.table, Columns: names, Rows: rows})
}

// where generates a predicate over the key column that hits part of the
// seeded key range.
func (g *scriptGen) where() sqlast.Expr {
	key := sqlast.Col("", g.cols[0].name)
	pivot := sqlast.Number(strconv.Itoa(g.r.Intn(g.nextKey) + 1))
	switch g.r.Intn(4) {
	case 0:
		return &sqlast.Binary{Op: "<", L: key, R: pivot}
	case 1:
		return &sqlast.Binary{Op: ">", L: key, R: pivot}
	default:
		return sqlast.Eq(key, pivot)
	}
}

func (g *scriptGen) emitDML() {
	switch g.r.Intn(10) {
	case 0, 1, 2: // INSERT one or two fresh rows
		g.emitInsert(1 + g.r.Intn(2))
	case 3, 4: // DELETE
		g.stmts = append(g.stmts, &sqlast.DeleteStmt{Table: g.table, Where: g.where()})
	default: // UPDATE a non-key column
		c := g.cols[1+g.r.Intn(len(g.cols)-1)]
		var val sqlast.Expr
		if c.typ.Numeric() && g.r.Intn(3) == 0 {
			// Arithmetic on the old value: col = col + k.
			val = &sqlast.Binary{Op: "+", L: sqlast.Col("", c.name),
				R: sqlast.Number(strconv.Itoa(g.r.Intn(5) + 1))}
		} else {
			val = g.value(c, 0)
		}
		g.stmts = append(g.stmts, &sqlast.UpdateStmt{
			Table: g.table,
			Set:   []sqlast.Assignment{{Column: c.name, Value: val}},
			Where: g.where(),
		})
	}
}

// ScriptSQL joins parsed statements back into the canonical script form.
func ScriptSQL(stmts []sqlast.Stmt) string {
	parts := make([]string, len(stmts))
	for i, s := range stmts {
		parts[i] = sqlast.Print(s)
	}
	return strings.Join(parts, " ; ")
}
