package datagen

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/engine"
)

func TestInstanceDeterministic(t *testing.T) {
	schema := catalog.SDSS()
	a := Instance(schema, Config{Seed: 1, Rows: 30})
	b := Instance(schema, Config{Seed: 1, Rows: 30})
	for name := range a.Tables {
		ra, rb := a.Tables[name], b.Tables[name]
		if !engine.EqualRelations(ra, rb, true) {
			t.Errorf("table %s differs across identical seeds", name)
		}
	}
	c := Instance(schema, Config{Seed: 2, Rows: 30})
	same := true
	for name := range a.Tables {
		if !engine.EqualRelations(a.Tables[name], c.Tables[name], true) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical instances")
	}
}

func TestInstanceShape(t *testing.T) {
	schema := catalog.SDSS()
	db := Instance(schema, Config{Seed: 7, Rows: 25})
	if len(db.Tables) != len(schema.Tables()) {
		t.Fatalf("tables = %d, want %d", len(db.Tables), len(schema.Tables()))
	}
	rel, ok := db.Table("SpecObj")
	if !ok {
		t.Fatal("SpecObj missing")
	}
	if len(rel.Rows) != 25 {
		t.Errorf("rows = %d, want 25", len(rel.Rows))
	}
	tab, _ := schema.Table("SpecObj")
	if rel.Width() != len(tab.Columns) {
		t.Errorf("width = %d, want %d", rel.Width(), len(tab.Columns))
	}
}

func TestKeysNeverNullAndJoinable(t *testing.T) {
	db := Instance(catalog.SDSS(), Config{Seed: 3, Rows: 50})
	spec, _ := db.Table("SpecObj")
	for _, row := range spec.Rows {
		if row[0].Null { // specobjid
			t.Fatal("key column generated NULL")
		}
	}
	// Joins on id columns must produce rows.
	e := engine.New(db)
	rel, err := e.QuerySQL("SELECT s.plate FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) == 0 {
		t.Error("generated keys never join")
	}
}

func TestTypedColumns(t *testing.T) {
	db := Instance(catalog.SDSS(), Config{Seed: 5, Rows: 40})
	spec, _ := db.Table("SpecObj")
	zIdx := -1
	for i, c := range spec.Cols {
		if c.Name == "z" {
			zIdx = i
		}
	}
	if zIdx < 0 {
		t.Fatal("z column missing")
	}
	for _, row := range spec.Rows {
		v := row[zIdx]
		if v.Null {
			continue
		}
		if v.Kind != catalog.TypeFloat || v.F < 0 || v.F > 3 {
			t.Fatalf("z = %v, want float in [0,3]", v)
		}
	}
}

func TestQueriesRunOverGeneratedData(t *testing.T) {
	db := Instance(catalog.SDSS(), Config{Seed: 11, Rows: 60})
	e := engine.New(db)
	for _, sql := range []string{
		"SELECT plate , mjd FROM SpecObj WHERE z > 0.5",
		"SELECT class , COUNT(*) FROM SpecObj GROUP BY class",
		"SELECT s.plate FROM SpecObj AS s WHERE s.bestobjid IN ( SELECT objid FROM PhotoObj WHERE ra > 180 )",
		"SELECT plate FROM SpecObj ORDER BY z DESC LIMIT 5",
	} {
		if _, err := e.QuerySQL(sql); err != nil {
			t.Errorf("QuerySQL(%q): %v", sql, err)
		}
	}
}
