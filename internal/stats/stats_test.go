package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int{1, 30, 60}, []string{"1-30", "30-60", "60+"})
	for _, v := range []int{1, 29, 30, 59, 60, 1000, 0} {
		h.Add(v)
	}
	// 0 falls in the first bucket (lowest bound is the floor).
	if h.Counts[0] != 3 || h.Counts[1] != 2 || h.Counts[2] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bounds/labels mismatch")
		}
	}()
	NewHistogram([]int{1}, []string{"a", "b"})
}

func TestPearsonKnownValues(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect positive = %v", got)
	}
	yNeg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, yNeg); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect negative = %v", got)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if got := Pearson(x, flat); got != 0 {
		t.Errorf("zero variance = %v", got)
	}
	if Pearson(nil, nil) != 0 || Pearson(x, x[:2]) != 0 {
		t.Error("degenerate inputs should be 0")
	}
}

// Property (testing/quick): Pearson stays within [-1, 1], is symmetric, and
// self-correlation of a non-constant vector is 1.
func TestPearsonQuick(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 3 {
			return true
		}
		x := make([]float64, len(raw))
		y := make([]float64, len(raw))
		varied := false
		for i, v := range raw {
			x[i] = float64(v)
			y[i] = float64(int(v)*3%17) - 4
			if i > 0 && raw[i] != raw[0] {
				varied = true
			}
		}
		r1, r2 := Pearson(x, y), Pearson(y, x)
		if r1 < -1-1e-9 || r1 > 1+1e-9 {
			return false
		}
		if math.Abs(r1-r2) > 1e-9 {
			return false
		}
		if varied && math.Abs(Pearson(x, x)-1) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCorrMatrix(t *testing.T) {
	cols := [][]float64{
		{1, 2, 3, 4},
		{2, 4, 6, 8},
		{4, 3, 2, 1},
	}
	m := CorrMatrix(cols)
	if m[0][0] != 1 || m[1][1] != 1 || m[2][2] != 1 {
		t.Error("diagonal must be 1")
	}
	if math.Abs(m[0][1]-1) > 1e-12 {
		t.Errorf("m[0][1] = %v", m[0][1])
	}
	if math.Abs(m[0][2]+1) > 1e-12 {
		t.Errorf("m[0][2] = %v", m[0][2])
	}
	if m[0][1] != m[1][0] {
		t.Error("matrix must be symmetric")
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("mean = %v", got)
	}
	if got := StdDev(xs); math.Abs(got-2.138) > 0.01 {
		t.Errorf("stddev = %v", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate stats should be 0")
	}
}
