// Package stats provides the descriptive statistics used in the paper's
// Section 2: bucketed histograms matching the figures' axes, and Pearson
// correlation matrices over query properties (Figure 4).
package stats

import "math"

// Histogram counts integer values into labeled buckets defined by ascending
// lower bounds: bounds [0,1,2] yields buckets [0,1), [1,2), [2,inf).
type Histogram struct {
	Bounds []int
	Labels []string
	Counts []int
}

// NewHistogram builds a histogram; labels and bounds must align.
func NewHistogram(bounds []int, labels []string) *Histogram {
	if len(bounds) != len(labels) {
		panic("stats: bounds and labels must have equal length")
	}
	return &Histogram{
		Bounds: append([]int{}, bounds...),
		Labels: append([]string{}, labels...),
		Counts: make([]int, len(bounds)),
	}
}

// Add counts one value.
func (h *Histogram) Add(v int) {
	idx := 0
	for i, b := range h.Bounds {
		if v >= b {
			idx = i
		}
	}
	h.Counts[idx]++
}

// Total returns the number of counted values.
func (h *Histogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Pearson computes the Pearson correlation coefficient of two equal-length
// samples; 0 when undefined (zero variance or empty).
func Pearson(x, y []float64) float64 {
	n := len(x)
	if n == 0 || n != len(y) {
		return 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx, vy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// CorrMatrix computes the pairwise Pearson matrix of column vectors.
func CorrMatrix(cols [][]float64) [][]float64 {
	n := len(cols)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			if i == j {
				out[i][j] = 1
				continue
			}
			out[i][j] = Pearson(cols[i], cols[j])
		}
	}
	return out
}

// Mean returns the sample mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for n < 2).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}
