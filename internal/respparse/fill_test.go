package respparse

import "testing"

func TestParseFill(t *testing.T) {
	cases := []struct {
		resp    string
		missing bool
		token   string
		wantErr bool
	}{
		{`Yes, a token is absent. The missing token is "FROM".`, true, "FROM", false},
		{`Yes. Missing token: "WHERE".`, true, "WHERE", false},
		{`Based on my analysis, the missing token is "objid".`, true, "objid", false},
		{`yes; token=GROUP`, true, "GROUP", false},
		{`The query appears to be missing the token "AND".`, true, "AND", false},
		{`No, the query is complete; nothing is missing.`, false, "", false},
		{`No. The query is complete.`, false, "", false},
		{`no; complete`, false, "", false},
		{`The query appears to be complete.`, false, "", false},
		{`yes`, true, "", false},
		{`no`, false, "", false},
		{`entirely unrelated text`, false, "", true},
		// A recovery that also mentions completeness is still a recovery:
		// positive phrases win over negative ones.
		{`The missing token is "FROM"; with it, the query is complete.`, true, "FROM", false},
		{`Missing token: "WHERE". Once added the query is complete.`, true, "WHERE", false},
		// A bare quoted token with no stock phrasing reads as a recovery.
		{`Probably "GROUP".`, true, "GROUP", false},
	}
	for _, tc := range cases {
		v, err := ParseFill(tc.resp)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseFill(%q) should fail", tc.resp)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseFill(%q): %v", tc.resp, err)
			continue
		}
		if v.Missing != tc.missing || v.Token != tc.token {
			t.Errorf("ParseFill(%q) = %+v, want missing=%v token=%q", tc.resp, v, tc.missing, tc.token)
		}
	}
}
