// Package respparse post-processes verbose LLM responses into task labels —
// the "automated scripts" of the paper's Section 3.4. Models phrase answers
// differently (terse key=value, hedged prose, markdown), so extraction works
// from negation-aware patterns rather than fixed formats.
package respparse

import (
	"errors"
	"regexp"
	"strconv"
	"strings"
)

// ErrUnparseable is returned when no label can be extracted.
var ErrUnparseable = errors.New("response could not be parsed")

// SyntaxVerdict is the label pair for syntax_error / syntax_error_type.
type SyntaxVerdict struct {
	HasError  bool
	ErrorType string // one of the six codes, "" when absent
}

// syntax error type vocabulary.
var errorTypes = []string{
	"aggr-attr", "aggr-having", "nested-mismatch", "condition-mismatch",
	"alias-undefined", "alias-ambiguous",
}

var syntaxNegatives = []string{
	"no syntax errors", "does not contain any syntax errors", "no error",
	"free of syntax errors", "no, the query does not", "looks fine",
	"no errors", "well-formed", "is valid",
}

var syntaxPositives = []string{
	"contains an error", "has an error", "there is a problem", "type=",
	"error type", "contain a", "syntax error at", "has an issue",
}

// ParseSyntax extracts the syntax_error verdict.
func ParseSyntax(resp string) (SyntaxVerdict, error) {
	lower := strings.ToLower(resp)
	for _, neg := range syntaxNegatives {
		if strings.Contains(lower, neg) {
			return SyntaxVerdict{HasError: false}, nil
		}
	}
	for _, pos := range syntaxPositives {
		if strings.Contains(lower, pos) {
			return SyntaxVerdict{HasError: true, ErrorType: findVocab(lower, errorTypes)}, nil
		}
	}
	// Fall back to leading yes/no.
	switch leadingYesNo(lower) {
	case "yes":
		return SyntaxVerdict{HasError: true, ErrorType: findVocab(lower, errorTypes)}, nil
	case "no":
		return SyntaxVerdict{HasError: false}, nil
	}
	return SyntaxVerdict{}, ErrUnparseable
}

// MissTokenVerdict is the label triple for the miss_token tasks.
type MissTokenVerdict struct {
	Missing  bool
	Kind     string // keyword/table/column/value/alias/comparison
	Token    string
	Position int // 0-based word index; -1 when absent
}

var tokenKinds = []string{"keyword", "table", "column", "value", "alias", "comparison"}

var missingNegatives = []string{
	"no missing", "nothing missing", "nothing is missing", "no syntax errors and no missing",
	"not missing", "does not appear to be missing", "appears complete", "no, the query has no",
}

var missingPositives = []string{
	"missing word", "word is missing", "token is missing", "kind=", "is missing a",
	"missing a", "a word is missing",
}

var posPattern = regexp.MustCompile(`(?i)(?:position|word)\D{0,12}?(\d+)`)
var quotedToken = regexp.MustCompile(`"([^"]+)"|token=([^;\s]+)|\(([^)]+)\)`)

// ParseMissToken extracts the miss_token verdict. Reported positions are
// 1-based in prose and converted to 0-based indexes.
func ParseMissToken(resp string) (MissTokenVerdict, error) {
	lower := strings.ToLower(resp)
	for _, neg := range missingNegatives {
		if strings.Contains(lower, neg) {
			return MissTokenVerdict{Missing: false, Position: -1}, nil
		}
	}
	positive := false
	for _, pos := range missingPositives {
		if strings.Contains(lower, pos) {
			positive = true
			break
		}
	}
	if !positive && leadingYesNo(lower) != "yes" {
		if leadingYesNo(lower) == "no" {
			return MissTokenVerdict{Missing: false, Position: -1}, nil
		}
		return MissTokenVerdict{Position: -1}, ErrUnparseable
	}
	v := MissTokenVerdict{Missing: true, Position: -1}
	v.Kind = findVocab(lower, tokenKinds)
	if mres := posPattern.FindStringSubmatch(resp); mres != nil {
		if n, err := strconv.Atoi(mres[1]); err == nil && n > 0 {
			v.Position = n - 1
		}
	}
	if qm := quotedToken.FindStringSubmatch(resp); qm != nil {
		for _, g := range qm[1:] {
			if g != "" {
				v.Token = g
				break
			}
		}
	}
	return v, nil
}

// FillVerdict is the label pair for the fill_token task.
type FillVerdict struct {
	Missing bool
	Token   string // the recovered token text; "" when none was extracted
}

var fillNegatives = []string{
	"query is complete", "appears to be complete", "is complete", "complete;",
	"nothing missing", "nothing is missing", "no missing",
}

var fillPositives = []string{
	"missing token is", "missing the token", "missing token:", "token=",
}

// ParseFill extracts the fill_token verdict: whether the model thinks a
// token is absent and, if so, which token it supplied. Tokens are accepted
// quoted, as token=..., or parenthesized (the forms the model styles use).
// Positive phrases win over completeness talk — "the missing token is
// \"FROM\"; with it, the query is complete" names a token and must grade
// as missing, so negatives are only consulted when no positive phrase
// matched.
func ParseFill(resp string) (FillVerdict, error) {
	lower := strings.ToLower(resp)
	for _, pos := range fillPositives {
		if !strings.Contains(lower, pos) {
			continue
		}
		v := FillVerdict{Missing: true}
		if qm := quotedToken.FindStringSubmatch(resp); qm != nil {
			for _, g := range qm[1:] {
				if g != "" {
					v.Token = g
					break
				}
			}
		}
		return v, nil
	}
	for _, neg := range fillNegatives {
		if strings.Contains(lower, neg) {
			return FillVerdict{}, nil
		}
	}
	// No stock phrase either way: a bare quoted token still reads as a
	// recovery attempt, else fall back to leading yes/no.
	if qm := quotedToken.FindStringSubmatch(resp); qm != nil {
		for _, g := range qm[1:] {
			if g != "" {
				return FillVerdict{Missing: true, Token: g}, nil
			}
		}
	}
	switch leadingYesNo(lower) {
	case "yes":
		return FillVerdict{Missing: true}, nil
	case "no":
		return FillVerdict{}, nil
	}
	return FillVerdict{}, ErrUnparseable
}

// EquivVerdict is the label pair for query_equiv / query_equiv_type.
type EquivVerdict struct {
	Equivalent bool
	Type       string
}

var equivTypes = []string{
	"reorder-conditions", "cte", "join-nested", "nested-join", "swap-subqueries",
	"between-split", "in-list-or", "not-pushdown", "distinct-groupby", "commute-join",
	"agg-function", "change-join-condition", "logical-conditions", "value-change",
	"comparison-op", "drop-predicate", "projection-change", "distinct-toggle",
}

var equivNegatives = []string{
	"not equivalent", "are not equivalent", "do not appear to be equivalent",
	"differ in their results", "not the same results",
}

// ParseEquiv extracts the equivalence verdict.
func ParseEquiv(resp string) (EquivVerdict, error) {
	lower := strings.ToLower(resp)
	typ := findVocab(lower, equivTypes)
	for _, neg := range equivNegatives {
		if strings.Contains(lower, neg) {
			return EquivVerdict{Equivalent: false, Type: typ}, nil
		}
	}
	if strings.Contains(lower, "equivalent") || leadingYesNo(lower) == "yes" {
		return EquivVerdict{Equivalent: true, Type: typ}, nil
	}
	if leadingYesNo(lower) == "no" {
		return EquivVerdict{Equivalent: false, Type: typ}, nil
	}
	return EquivVerdict{}, ErrUnparseable
}

var perfPositives = []string{
	"take longer", "takes longer", "high cost", "likely to take longer",
	"heavy query", "will be slow", "longer than usual to run",
}

var perfNegatives = []string{
	"run quickly", "low cost", "unlikely to take longer", "light query",
	"should be fast", "not take longer",
}

// ParsePerf extracts the performance_pred verdict (true = costly).
func ParsePerf(resp string) (bool, error) {
	lower := strings.ToLower(resp)
	for _, neg := range perfNegatives {
		if strings.Contains(lower, neg) {
			return false, nil
		}
	}
	for _, pos := range perfPositives {
		if strings.Contains(lower, pos) {
			return true, nil
		}
	}
	switch leadingYesNo(lower) {
	case "yes":
		return true, nil
	case "no":
		return false, nil
	}
	return false, ErrUnparseable
}

// ParseExplanation returns the explanation text, trimmed of boilerplate.
func ParseExplanation(resp string) string {
	out := strings.TrimSpace(resp)
	for _, prefix := range []string{"Explanation:", "Answer:", "Summary:"} {
		out = strings.TrimSpace(strings.TrimPrefix(out, prefix))
	}
	return out
}

// leadingYesNo classifies the first word of the response.
func leadingYesNo(lower string) string {
	trimmed := strings.TrimLeft(lower, " \t\n*->")
	switch {
	case strings.HasPrefix(trimmed, "yes"):
		return "yes"
	case strings.HasPrefix(trimmed, "no"):
		return "no"
	default:
		return ""
	}
}

// findVocab returns the longest vocabulary item present in the text
// (longest first avoids "cte" matching inside "distinct-groupby" etc.).
func findVocab(lower string, vocab []string) string {
	best := ""
	for _, v := range vocab {
		if strings.Contains(lower, v) && len(v) > len(best) {
			best = v
		}
	}
	return best
}
