package respparse

import (
	"reflect"
	"testing"
)

func TestParseStateTuples(t *testing.T) {
	cases := []struct {
		resp string
		want []string
	}{
		{"The final contents are: ( 1 , 'alpha' , 2.5 )", []string{"( 1 , 'alpha' , 2.5 )"}},
		{"(1,'a')\n(2,'b')", []string{"( 1 , 'a' )", "( 2 , 'b' )"}},
		{`Rows: (3, "quoted text", true) and (4, NULL, false)`,
			[]string{"( 3 , 'quoted text' , true )", "( 4 , NULL , false )"}},
		// Prose parentheticals must not be mistaken for rows.
		{"After the update (which touches two rows) the table holds ( 7 , 'x' )",
			[]string{"( 7 , 'x' )"}},
		// Float canonicalization: 2.50 and 2.5 agree, 7.0 renders as 7 only
		// when written as an int.
		{"( 2.50 , 'y' )", []string{"( 2.5 , 'y' )"}},
		// Commas and parens inside quotes stay inside the value.
		{"( 1 , 'a, (b)' )", []string{"( 1 , 'a, (b)' )"}},
		{"answer: (  -4 , 'neg' )", []string{"( -4 , 'neg' )"}},
	}
	for _, c := range cases {
		v, err := ParseState(c.resp)
		if err != nil {
			t.Errorf("%q: %v", c.resp, err)
			continue
		}
		if v.Empty {
			t.Errorf("%q: unexpected Empty", c.resp)
		}
		if !reflect.DeepEqual(v.Rows, c.want) {
			t.Errorf("%q:\n got %v\nwant %v", c.resp, v.Rows, c.want)
		}
	}
}

func TestParseStateEmpty(t *testing.T) {
	for _, resp := range []string{
		"After the DELETE the table is empty.",
		"No rows remain after running the script.",
		"The table will be empty",
		"empty",
		"Final contents: the table contains no rows.",
	} {
		v, err := ParseState(resp)
		if err != nil {
			t.Errorf("%q: %v", resp, err)
			continue
		}
		if !v.Empty || len(v.Rows) != 0 {
			t.Errorf("%q: got %+v, want Empty", resp, v)
		}
	}
}

func TestParseStateRowsWinOverEmptyTalk(t *testing.T) {
	v, err := ParseState("the table is not empty: ( 1 , 'a' )")
	if err != nil {
		t.Fatal(err)
	}
	if v.Empty || len(v.Rows) != 1 {
		t.Fatalf("got %+v", v)
	}
}

func TestParseStateUnparseable(t *testing.T) {
	for _, resp := range []string{
		"I cannot determine the final contents.",
		"(this is prose, not a row)",
		"",
	} {
		if _, err := ParseState(resp); err == nil {
			t.Errorf("%q: expected error", resp)
		}
	}
}
