package respparse

import (
	"errors"
	"testing"
)

func TestParseSyntaxVariants(t *testing.T) {
	cases := []struct {
		resp    string
		has     bool
		errType string
	}{
		{"No, the query does not contain any syntax errors. It is well-formed SQL.", false, ""},
		{"Yes, the query contains an error. **Error type:** aggr-attr. Explanation: mixed aggregates.", true, "aggr-attr"},
		{"Yes. There is a problem with this query (nested-mismatch): subquery rows.", true, "nested-mismatch"},
		{"Based on my analysis, there are no syntax errors in this query.", false, ""},
		{"Based on my analysis, yes — the query has an error. Error type: alias-ambiguous. Details: x.", true, "alias-ambiguous"},
		{"no error", false, ""},
		{"yes; type=condition-mismatch; detail=types differ", true, "condition-mismatch"},
		{"The query appears to be free of syntax errors.", false, ""},
		{"The query appears to contain a alias-undefined error. Bad alias.", true, "alias-undefined"},
	}
	for _, c := range cases {
		v, err := ParseSyntax(c.resp)
		if err != nil {
			t.Errorf("ParseSyntax(%q): %v", c.resp, err)
			continue
		}
		if v.HasError != c.has || v.ErrorType != c.errType {
			t.Errorf("ParseSyntax(%q) = %+v, want has=%v type=%q", c.resp, v, c.has, c.errType)
		}
	}
}

func TestParseMissTokenVariants(t *testing.T) {
	cases := []struct {
		resp    string
		missing bool
		kind    string
		pos     int // 0-based, -1 none
	}{
		{"No, the query has no syntax errors and no missing words.", false, "", -1},
		{`Yes, there is a missing word. Type: keyword. The missing word is "FROM", at word position 3.`, true, "keyword", 2},
		{"yes; kind=comparison; token==; position=7", true, "comparison", 6},
		{"Based on my analysis, nothing is missing from this query.", false, "", -1},
		{`Based on my analysis, yes — a token is missing. Kind: alias, token "s", around word 5.`, true, "alias", 4},
		{"The query does not appear to be missing any words.", false, "", -1},
		{`The query appears to be missing a table ("SpecObj") near word 4.`, true, "table", 3},
		{"no; nothing missing", false, "", -1},
	}
	for _, c := range cases {
		v, err := ParseMissToken(c.resp)
		if err != nil {
			t.Errorf("ParseMissToken(%q): %v", c.resp, err)
			continue
		}
		if v.Missing != c.missing || v.Kind != c.kind || v.Position != c.pos {
			t.Errorf("ParseMissToken(%q) = %+v, want missing=%v kind=%q pos=%d", c.resp, v, c.missing, c.kind, c.pos)
		}
	}
}

func TestParseEquivVariants(t *testing.T) {
	cases := []struct {
		resp  string
		equal bool
		typ   string
	}{
		{"Yes, the two queries are equivalent: the rewrite is a cte transformation that preserves results.", true, "cte"},
		{"No, the two queries are not equivalent; they can return different results. The difference is a value-change change.", false, "value-change"},
		{"equivalent; type=reorder-conditions", true, "reorder-conditions"},
		{"not equivalent; type=logical-conditions", false, "logical-conditions"},
		{"The two queries appear to be equivalent (a join-nested rewrite).", true, "join-nested"},
		{"The two queries do not appear to be equivalent. The modification resembles agg-function.", false, "agg-function"},
		{"No — the queries differ in their results. It appears to be a drop-predicate modification.", false, "drop-predicate"},
	}
	for _, c := range cases {
		v, err := ParseEquiv(c.resp)
		if err != nil {
			t.Errorf("ParseEquiv(%q): %v", c.resp, err)
			continue
		}
		if v.Equivalent != c.equal || v.Type != c.typ {
			t.Errorf("ParseEquiv(%q) = %+v, want equal=%v type=%q", c.resp, v, c.equal, c.typ)
		}
	}
}

func TestParsePerfVariants(t *testing.T) {
	costly := []string{
		"Yes, this query will likely take longer than usual to run, given its joins and scan volume.",
		"yes; high cost",
		"Yes — this looks like a heavy query that takes longer than usual.",
		"This query is likely to take longer than usual.",
	}
	fast := []string{
		"No, this query should run quickly; it touches limited data.",
		"no; low cost",
		"No — this looks like a light query.",
		"This query is unlikely to take longer than usual.",
	}
	for _, r := range costly {
		got, err := ParsePerf(r)
		if err != nil || !got {
			t.Errorf("ParsePerf(%q) = %v, %v; want true", r, got, err)
		}
	}
	for _, r := range fast {
		got, err := ParsePerf(r)
		if err != nil || got {
			t.Errorf("ParsePerf(%q) = %v, %v; want false", r, got, err)
		}
	}
}

func TestUnparseable(t *testing.T) {
	if _, err := ParseSyntax("the weather is nice"); !errors.Is(err, ErrUnparseable) {
		t.Error("expected ErrUnparseable for syntax")
	}
	if _, err := ParsePerf("the weather is nice"); !errors.Is(err, ErrUnparseable) {
		t.Error("expected ErrUnparseable for perf")
	}
	if _, err := ParseEquiv("the weather is nice"); !errors.Is(err, ErrUnparseable) {
		t.Error("expected ErrUnparseable for equiv")
	}
}

func TestParseExplanation(t *testing.T) {
	if got := ParseExplanation("  Explanation: This query lists plates.  "); got != "This query lists plates." {
		t.Errorf("ParseExplanation = %q", got)
	}
}

func TestLongestVocabWins(t *testing.T) {
	v, err := ParseEquiv("equivalent; type=distinct-groupby")
	if err != nil || v.Type != "distinct-groupby" {
		t.Errorf("got %+v, want distinct-groupby (not a shorter substring match)", v)
	}
}
