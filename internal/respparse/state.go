package respparse

import "strconv"
import "strings"

// StateVerdict is the label for the state task: the final table contents as
// canonical tuples, or an explicit empty-table claim.
type StateVerdict struct {
	Rows  []string // canonical "( 1 , 'alpha' )" form, response order
	Empty bool     // the response says the table ends up empty
}

var emptyPhrases = []string{
	"table is empty", "table will be empty", "table ends up empty",
	"no rows remain", "contains no rows", "contain no rows", "has no rows",
	"no rows at the end", "empty table",
	"zero rows", "empty;", "empty.",
}

// ParseState extracts the state verdict: every parenthesized group in the
// response whose comma-separated items all canonicalize as SQL literals is
// taken as a row; parentheticals containing prose are skipped. When no row
// is found, an empty-table phrase yields Empty. Rows win over empty talk —
// "after the DELETE the table is not empty: ( 1 , 'a' )" lists a row.
func ParseState(resp string) (StateVerdict, error) {
	var rows []string
	for _, group := range parenGroups(resp) {
		if row, ok := canonRow(group); ok {
			rows = append(rows, row)
		}
	}
	if len(rows) > 0 {
		return StateVerdict{Rows: rows}, nil
	}
	lower := strings.ToLower(resp)
	if strings.TrimSpace(lower) == "empty" {
		return StateVerdict{Empty: true}, nil
	}
	for _, ph := range emptyPhrases {
		if strings.Contains(lower, ph) {
			return StateVerdict{Empty: true}, nil
		}
	}
	return StateVerdict{}, ErrUnparseable
}

// parenGroups returns the contents of every top-level (...) group, honoring
// quotes so a parenthesis inside a text value does not end the group.
func parenGroups(s string) []string {
	var groups []string
	for i := 0; i < len(s); i++ {
		if s[i] != '(' {
			continue
		}
		depth := 1
		var quote byte
		for j := i + 1; j < len(s); j++ {
			c := s[j]
			if quote != 0 {
				if c == quote {
					quote = 0
				}
				continue
			}
			switch c {
			case '\'', '"':
				quote = c
			case '(':
				depth++
			case ')':
				depth--
				if depth == 0 {
					groups = append(groups, s[i+1:j])
					i = j
					j = len(s)
				}
			}
		}
		// An unclosed group is dropped.
	}
	return groups
}

// canonRow splits a group on top-level commas and canonicalizes each item;
// any non-literal item rejects the whole group as prose.
func canonRow(group string) (string, bool) {
	items := splitTopLevel(group)
	if len(items) == 0 {
		return "", false
	}
	parts := make([]string, len(items))
	for i, it := range items {
		lit, ok := canonLiteral(strings.TrimSpace(it))
		if !ok {
			return "", false
		}
		parts[i] = lit
	}
	return "( " + strings.Join(parts, " , ") + " )", true
}

// splitTopLevel splits on commas outside quotes and nested parentheses.
func splitTopLevel(s string) []string {
	var items []string
	depth, start := 0, 0
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			quote = c
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				items = append(items, s[start:i])
				start = i + 1
			}
		}
	}
	items = append(items, s[start:])
	return items
}

// canonLiteral normalizes one value to the engine.FormatLiteral rendering:
// integers base-10, floats %g, text single-quoted, booleans lowercase,
// NULL uppercase. Anything else is not a literal.
func canonLiteral(item string) (string, bool) {
	if item == "" {
		return "", false
	}
	if n := len(item); n >= 2 {
		if (item[0] == '\'' && item[n-1] == '\'') || (item[0] == '"' && item[n-1] == '"') {
			return "'" + item[1:n-1] + "'", true
		}
	}
	switch strings.ToLower(item) {
	case "null":
		return "NULL", true
	case "true":
		return "true", true
	case "false":
		return "false", true
	}
	if i, err := strconv.ParseInt(item, 10, 64); err == nil {
		return strconv.FormatInt(i, 10), true
	}
	if f, err := strconv.ParseFloat(item, 64); err == nil {
		return strconv.FormatFloat(f, 'g', -1, 64), true
	}
	return "", false
}
