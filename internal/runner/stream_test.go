package runner

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Streamed delivery must be exactly the input order, whatever the worker
// count and however unevenly items take to compute.
func TestMapStreamOrdered(t *testing.T) {
	items := make([]int, 200)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 8, 64} {
		var got []int
		err := MapStream(context.Background(), workers, items, func(_ context.Context, _ int, v int) (int, error) {
			time.Sleep(time.Duration(rand.Intn(300)) * time.Microsecond)
			return v * 3, nil
		}, func(idx int, r int) error {
			if r != idx*3 {
				t.Errorf("workers=%d: idx %d got %d", workers, idx, r)
			}
			got = append(got, r)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(items) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(items))
		}
		for i, v := range got {
			if v != i*3 {
				t.Fatalf("workers=%d: out of order at %d: %v", workers, i, got[:i+1])
			}
		}
	}
}

// The sink must see a clean prefix: every index before the failing one,
// nothing at or after it, even when later items finish first.
func TestMapStreamErrorPrefix(t *testing.T) {
	items := make([]int, 50)
	boom := errors.New("boom")
	const failAt = 23
	var delivered []int
	err := MapStream(context.Background(), 8, items, func(_ context.Context, idx int, _ int) (int, error) {
		if idx == failAt {
			return 0, boom
		}
		time.Sleep(time.Duration(rand.Intn(200)) * time.Microsecond)
		return idx, nil
	}, func(idx int, _ int) error {
		delivered = append(delivered, idx)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(delivered) > failAt {
		t.Fatalf("delivered %d results, want <= %d", len(delivered), failAt)
	}
	for i, idx := range delivered {
		if idx != i {
			t.Fatalf("delivery out of order: %v", delivered)
		}
	}
}

// A sink error must cancel remaining work and surface to the caller.
func TestMapStreamSinkError(t *testing.T) {
	items := make([]int, 100)
	stop := errors.New("stop")
	var calls int
	err := MapStream(context.Background(), 4, items, func(_ context.Context, idx int, _ int) (int, error) {
		return idx, nil
	}, func(idx int, _ int) error {
		calls++
		if idx == 10 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want stop", err)
	}
	if calls != 11 {
		t.Fatalf("sink called %d times, want 11", calls)
	}
}

// The sink must never run concurrently with itself.
func TestMapStreamSinkSerialized(t *testing.T) {
	items := make([]int, 300)
	var mu sync.Mutex
	inSink := false
	err := MapStream(context.Background(), 16, items, func(_ context.Context, idx int, _ int) (int, error) {
		return idx, nil
	}, func(int, int) error {
		mu.Lock()
		if inSink {
			mu.Unlock()
			return errors.New("concurrent sink call")
		}
		inSink = true
		mu.Unlock()
		time.Sleep(5 * time.Microsecond)
		mu.Lock()
		inSink = false
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("MapStream: %v", err)
	}
}

// A slow early item must not let the pool buffer the whole result set:
// workers stall at the reorder window until the frontier advances, then the
// full stream still arrives complete and in order.
func TestMapStreamBoundedWindow(t *testing.T) {
	const n, workers = 500, 8
	window := 4 * workers // must match MapStream's sizing
	items := make([]int, n)
	release := make(chan struct{})
	var maxStarted atomic.Int64
	var delivered int
	done := make(chan error, 1)
	go func() {
		done <- MapStream(context.Background(), workers, items, func(_ context.Context, idx int, _ int) (int, error) {
			for {
				cur := maxStarted.Load()
				if int64(idx) <= cur || maxStarted.CompareAndSwap(cur, int64(idx)) {
					break
				}
			}
			if idx == 0 {
				<-release // stall the frontier; everyone else runs ahead
			}
			return idx, nil
		}, func(idx int, _ int) error {
			if idx != delivered {
				return fmt.Errorf("out of order: got %d, want %d", idx, delivered)
			}
			delivered++
			return nil
		})
	}()
	// Let the pool run as far ahead as it can while item 0 blocks.
	time.Sleep(50 * time.Millisecond)
	if got := maxStarted.Load(); got >= int64(window) {
		t.Errorf("worker started index %d while frontier stalled at 0 (window %d)", got, window)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("MapStream: %v", err)
	}
	if delivered != n {
		t.Fatalf("delivered %d results, want %d", delivered, n)
	}
}

func TestMapStreamEmpty(t *testing.T) {
	err := MapStream(context.Background(), 4, nil, func(_ context.Context, _ int, v int) (int, error) {
		return v, nil
	}, func(int, int) error {
		t.Fatal("sink called for empty input")
		return nil
	})
	if err != nil {
		t.Fatalf("MapStream: %v", err)
	}
}

// DoShared must report exactly one computing caller per key; everyone else
// is a coalescing or cache hit.
func TestFlightDoShared(t *testing.T) {
	var f Flight[string, int]
	const callers = 16
	var wg sync.WaitGroup
	computed := make(chan struct{}) // closed when the single fn runs
	shared := make(chan bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, sh, err := f.DoShared("k", func() (int, error) {
				close(computed)
				time.Sleep(2 * time.Millisecond)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("DoShared = %d, %v", v, err)
			}
			shared <- sh
		}()
	}
	wg.Wait()
	close(shared)
	var computers int
	for sh := range shared {
		if !sh {
			computers++
		}
	}
	if computers != 1 {
		t.Fatalf("%d callers computed, want exactly 1", computers)
	}
	select {
	case <-computed:
	default:
		t.Fatal("fn never ran")
	}
	// A later call is a cache hit.
	if _, sh, _ := f.DoShared("k", func() (int, error) { return 0, fmt.Errorf("must not run") }); !sh {
		t.Fatal("warm call not reported as shared")
	}
	if f.Len() != 1 {
		t.Fatalf("Len = %d, want 1", f.Len())
	}
}
