package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 8, 64} {
		out, err := Map(context.Background(), workers, items, func(_ context.Context, idx int, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != len(items) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(out), len(items))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), 4, nil, func(_ context.Context, _ int, v int) (int, error) {
		return v, nil
	})
	if err != nil || out != nil {
		t.Fatalf("Map(nil) = %v, %v; want nil, nil", out, err)
	}
}

func TestMapErrorPropagation(t *testing.T) {
	items := make([]int, 200)
	boom := errors.New("boom")
	for _, workers := range []int{1, 8} {
		var calls atomic.Int64
		_, err := Map(context.Background(), workers, items, func(_ context.Context, idx int, _ int) (int, error) {
			calls.Add(1)
			if idx >= 10 {
				return 0, fmt.Errorf("item %d: %w", idx, boom)
			}
			return idx, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
		if int(calls.Load()) == len(items) && workers > 1 {
			t.Errorf("workers=%d: error did not cancel remaining work", workers)
		}
	}
}

// The reported error must be the lowest-index failure among the items that
// ran, matching sequential semantics for deterministic fns.
func TestMapErrorLowestIndex(t *testing.T) {
	items := make([]int, 64)
	_, err := Map(context.Background(), 8, items, func(_ context.Context, idx int, _ int) (int, error) {
		if idx%2 == 1 {
			time.Sleep(time.Duration(idx) * time.Microsecond)
			return 0, fmt.Errorf("fail@%d", idx)
		}
		return idx, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	var got int
	if _, scanErr := fmt.Sscanf(err.Error(), "fail@%d", &got); scanErr != nil {
		t.Fatalf("unexpected error %q", err)
	}
	// The reported index must be a genuine failure (odd), and with 8 workers
	// the initial wave claims indexes 0..7 before any failure can cancel,
	// so the winner is one of the low odd indexes, never from the tail.
	if got%2 != 1 || got > 7 {
		t.Errorf("reported failure index %d, want a low odd index", got)
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 1000)
	var calls atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Map(ctx, 4, items, func(c context.Context, idx int, _ int) (int, error) {
			calls.Add(1)
			select {
			case <-c.Done():
			case <-time.After(5 * time.Millisecond):
			}
			return idx, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	}()
	cancel()
	<-done
	if int(calls.Load()) == len(items) {
		t.Error("cancellation did not stop the pool")
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	items := make([]int, 100)
	_, err := Map(context.Background(), workers, items, func(_ context.Context, idx int, _ int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		cur.Add(-1)
		return idx, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent workers, budget %d", p, workers)
	}
}

func TestDo(t *testing.T) {
	var a, b atomic.Bool
	err := Do(context.Background(), 2,
		func(context.Context) error { a.Store(true); return nil },
		func(context.Context) error { b.Store(true); return nil },
	)
	if err != nil || !a.Load() || !b.Load() {
		t.Fatalf("Do: err=%v a=%v b=%v", err, a.Load(), b.Load())
	}
	boom := errors.New("boom")
	if err := Do(context.Background(), 2, func(context.Context) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Do error = %v, want boom", err)
	}
}

func TestWithParallelism(t *testing.T) {
	ctx := WithParallelism(context.Background(), 7)
	if got := FromContext(ctx); got != 7 {
		t.Fatalf("FromContext = %d, want 7", got)
	}
	if got := FromContext(context.Background()); got != 0 {
		t.Fatalf("FromContext(background) = %d, want 0", got)
	}
	// Budget flows through to Map when parallel arg is 0.
	var cur, peak atomic.Int64
	items := make([]int, 50)
	_, err := Map(WithParallelism(context.Background(), 2), 0, items, func(_ context.Context, idx int, _ int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(50 * time.Microsecond)
		cur.Add(-1)
		return idx, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("context budget 2 exceeded: peak %d", p)
	}
}

func TestFlightMemoizes(t *testing.T) {
	var f Flight[string, int]
	var calls atomic.Int64
	const n = 32
	results := make([]int, n)
	errs := make([]error, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			results[i], errs[i] = f.Do("k", func() (int, error) {
				calls.Add(1)
				time.Sleep(time.Millisecond)
				return 42, nil
			})
			done <- i
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil || results[i] != 42 {
			t.Fatalf("call %d: got %d, %v", i, results[i], errs[i])
		}
	}
	if c := calls.Load(); c != 1 {
		t.Errorf("fn ran %d times, want 1 (coalesced)", c)
	}
	if !f.Cached("k") {
		t.Error("Cached(k) = false after success")
	}
	if f.Cached("other") {
		t.Error("Cached(other) = true")
	}
}

func TestFlightErrorNotCached(t *testing.T) {
	var f Flight[int, string]
	boom := errors.New("boom")
	var calls atomic.Int64
	_, err := f.Do(1, func() (string, error) { calls.Add(1); return "", boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if f.Cached(1) {
		t.Error("failed call must not be cached")
	}
	v, err := f.Do(1, func() (string, error) { calls.Add(1); return "ok", nil })
	if err != nil || v != "ok" {
		t.Fatalf("retry: %q, %v", v, err)
	}
	if c := calls.Load(); c != 2 {
		t.Errorf("fn ran %d times, want 2 (error evicted)", c)
	}
}
