package runner

import (
	"fmt"
	"sync"
	"testing"
)

func TestFlightLRUEvicts(t *testing.T) {
	var f Flight[int, int]
	f.SetLimit(2)
	calls := 0
	get := func(k int) int {
		v, err := f.Do(k, func() (int, error) { calls++; return k * 10, nil })
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	get(1)
	get(2)
	get(3) // evicts 1
	if f.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", f.Evictions())
	}
	if f.Cached(1) {
		t.Error("key 1 should have been evicted")
	}
	if !f.Cached(2) || !f.Cached(3) {
		t.Error("keys 2 and 3 should still be cached")
	}
	if got := get(1); got != 10 {
		t.Fatalf("recomputed value = %d", got)
	}
	if calls != 4 {
		t.Errorf("calls = %d, want 4 (three cold + one recompute)", calls)
	}
	if f.Len() != 2 {
		t.Errorf("Len = %d, want 2", f.Len())
	}
}

func TestFlightLRURecencyOrder(t *testing.T) {
	var f Flight[string, int]
	f.SetLimit(2)
	f.Do("a", func() (int, error) { return 1, nil })
	f.Do("b", func() (int, error) { return 2, nil })
	// Touch a so b becomes least recently used.
	f.Do("a", func() (int, error) { t.Fatal("a should be cached"); return 0, nil })
	f.Do("c", func() (int, error) { return 3, nil })
	if f.Cached("b") {
		t.Error("b was most stale and should have been evicted")
	}
	if !f.Cached("a") || !f.Cached("c") {
		t.Error("a and c should survive")
	}
}

func TestFlightLRUErrorsDoNotEvict(t *testing.T) {
	var f Flight[int, int]
	f.SetLimit(1)
	f.Do(1, func() (int, error) { return 1, nil })
	f.Do(2, func() (int, error) { return 0, fmt.Errorf("boom") })
	if !f.Cached(1) {
		t.Error("failed call must not push out a cached success")
	}
	if f.Evictions() != 0 {
		t.Errorf("evictions = %d, want 0", f.Evictions())
	}
}

// In-flight computations are never evicted, so concurrent duplicates keep
// coalescing even when the cache is at capacity.
func TestFlightLRUPreservesCoalescing(t *testing.T) {
	var f Flight[int, int]
	f.SetLimit(1)
	release := make(chan struct{})
	started := make(chan struct{})
	var slowCalls int
	go f.Do(100, func() (int, error) {
		close(started)
		<-release
		slowCalls++
		return 100, nil
	})
	<-started
	// Fill and overflow the cache while 100 is still in flight.
	f.Do(1, func() (int, error) { return 1, nil })
	f.Do(2, func() (int, error) { return 2, nil })

	var wg sync.WaitGroup
	var shared int
	var mu sync.Mutex
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, wasShared, err := f.DoShared(100, func() (int, error) {
				t.Error("duplicate execution: coalescing broken")
				return 0, nil
			})
			if err != nil || v != 100 {
				t.Errorf("DoShared = %d, %v", v, err)
			}
			mu.Lock()
			if wasShared {
				shared++
			}
			mu.Unlock()
		}()
	}
	close(release)
	wg.Wait()
	if slowCalls != 1 {
		t.Errorf("slow fn ran %d times, want 1", slowCalls)
	}
	if shared != 4 {
		t.Errorf("shared = %d, want 4", shared)
	}
}

func TestFlightShrinkLimitEvictsImmediately(t *testing.T) {
	var f Flight[int, int]
	for i := 0; i < 5; i++ {
		k := i
		f.Do(k, func() (int, error) { return k, nil })
	}
	f.SetLimit(2)
	if f.Len() != 2 {
		t.Errorf("Len after shrink = %d, want 2", f.Len())
	}
	if f.Evictions() != 3 {
		t.Errorf("evictions = %d, want 3", f.Evictions())
	}
	// Most recent survive.
	if !f.Cached(3) || !f.Cached(4) {
		t.Error("most recent entries should survive the shrink")
	}
}

func TestFlightUnlimitedByDefault(t *testing.T) {
	var f Flight[int, int]
	for i := 0; i < 100; i++ {
		k := i
		f.Do(k, func() (int, error) { return k, nil })
	}
	if f.Len() != 100 || f.Evictions() != 0 {
		t.Errorf("unbounded flight evicted: len=%d evictions=%d", f.Len(), f.Evictions())
	}
}
