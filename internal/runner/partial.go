package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// This file adds the partial-failure mode of the map primitives: instead of
// cancelling the whole fan-out on the first error (Map/MapStream semantics),
// MapPartial and MapStreamPartial record per-index errors and keep going, so
// one dead completion costs one example rather than one run. A failure
// budget acts as the trip wire that keeps a fully-dead backend from burning
// through an entire dataset: once more than MaxFailures items have failed,
// remaining work is cancelled and the run returns a *BudgetError.

// ItemError records one failed item of a partial run.
type ItemError struct {
	Index int
	Err   error
}

// Error implements error.
func (e ItemError) Error() string { return fmt.Sprintf("item %d: %v", e.Index, e.Err) }

// Unwrap exposes the item's underlying error to errors.Is/As.
func (e ItemError) Unwrap() error { return e.Err }

// BudgetError reports that a partial run tripped its failure budget: more
// than Budget items failed. Last is the failure that tripped the wire.
type BudgetError struct {
	Budget   int
	Failures int
	Last     error
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("runner: failure budget exceeded (%d failures > budget %d): %v", e.Failures, e.Budget, e.Last)
}

// Unwrap exposes the tripping failure to errors.Is/As.
func (e *BudgetError) Unwrap() error { return e.Last }

// IsBudget reports whether err is (or wraps) a failure-budget trip.
func IsBudget(err error) bool {
	var be *BudgetError
	return errors.As(err, &be)
}

// outcome carries one item's result or failure through the ordering
// machinery of MapStream, which only ever sees successes.
type outcome[R any] struct {
	val R
	err error
}

// MapStreamPartial is MapStream in continue-on-error mode: fn failures are
// delivered to sink as per-index errors (r is the zero value then) instead
// of aborting the run, and the next item proceeds under an uncancelled
// context. Successes and failures alike arrive strictly in input order, each
// as soon as its whole prefix has completed, and the sink is never called
// concurrently with itself.
//
// maxFailures is the failure budget: once more than maxFailures items have
// failed, remaining work is cancelled and the run returns a *BudgetError
// (<= 0 means unlimited — every item runs regardless of failures). Which
// failure trips the wire depends on completion order under parallelism, but
// the budget bounds the wasted work either way.
//
// A sink error or a parent-context cancellation still aborts the run as in
// MapStream. The returned error is nil when every item was attempted —
// even if all of them failed.
func MapStreamPartial[T, R any](ctx context.Context, parallel int, items []T, maxFailures int, fn func(ctx context.Context, idx int, item T) (R, error), sink func(idx int, r R, err error) error) error {
	var failures atomic.Int64
	var tripped atomic.Pointer[BudgetError]
	err := MapStream(ctx, parallel, items, func(ctx context.Context, idx int, item T) (outcome[R], error) {
		r, err := fn(ctx, idx, item)
		if err == nil {
			return outcome[R]{val: r}, nil
		}
		// Don't convert a run cancellation into an error row: the run is
		// over (budget tripped elsewhere, sink failed, or the caller hung
		// up), and the abort path reports why.
		if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
			return outcome[R]{}, err
		}
		if n := int(failures.Add(1)); maxFailures > 0 && n > maxFailures {
			be := &BudgetError{Budget: maxFailures, Failures: n, Last: ItemError{Index: idx, Err: err}}
			tripped.CompareAndSwap(nil, be)
			return outcome[R]{}, be
		}
		return outcome[R]{err: err}, nil
	}, func(idx int, o outcome[R]) error {
		return sink(idx, o.val, o.err)
	})
	if err != nil {
		// The trip cancels the run, so workers at lower indices may report
		// the cancellation first; the budget error is still the cause.
		if be := tripped.Load(); be != nil {
			return be
		}
		return err
	}
	return nil
}

// MapPartial is Map in continue-on-error mode: it applies fn to every item
// with at most `parallel` concurrent workers and returns the results in
// input order alongside the per-index failures (in index order). A failed
// index holds the zero value in the result slice and appears in the errors
// slice instead. The run error is non-nil only when the run did not attempt
// every item: failure-budget trip (*BudgetError) or context cancellation.
func MapPartial[T, R any](ctx context.Context, parallel int, items []T, maxFailures int, fn func(ctx context.Context, idx int, item T) (R, error)) ([]R, []ItemError, error) {
	out := make([]R, len(items))
	var errs []ItemError
	err := MapStreamPartial(ctx, parallel, items, maxFailures, fn, func(idx int, r R, ierr error) error {
		if ierr != nil {
			errs = append(errs, ItemError{Index: idx, Err: ierr})
			return nil
		}
		out[idx] = r
		return nil
	})
	if err != nil {
		return nil, errs, err
	}
	return out, errs, nil
}
