// Package runner provides the bounded-concurrency primitives behind the
// evaluation pipeline: an order-preserving parallel map over a slice, a
// heterogeneous task group, and per-key singleflight memoization. All
// experiment fan-out (examples within a task run, model×dataset cells,
// benchmark build stages, equivalence-check seeds) goes through this package
// so that results stay deterministic regardless of goroutine scheduling.
// Budgets are per-Map call: nested fan-out (a prefetch whose cells each run
// their own Map) multiplies in-flight goroutines, which is intentional —
// goroutines are cheap, OS-thread parallelism stays capped at GOMAXPROCS by
// the Go runtime, and per-call budgets avoid the nested-pool deadlocks a
// single shared semaphore would invite.
package runner

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

type parallelismKey struct{}

// WithParallelism returns a context carrying a worker budget for runner
// calls that do not specify one explicitly. n <= 0 leaves the default
// (GOMAXPROCS) in effect.
func WithParallelism(ctx context.Context, n int) context.Context {
	return context.WithValue(ctx, parallelismKey{}, n)
}

// FromContext returns the worker budget carried by ctx, or 0 when none is
// set.
func FromContext(ctx context.Context) int {
	if n, ok := ctx.Value(parallelismKey{}).(int); ok {
		return n
	}
	return 0
}

// Parallelism returns the effective worker budget for ctx: the carried
// value when positive, else GOMAXPROCS. Use this when handing the budget to
// code outside runner (e.g. a struct field) so that "unset" keeps meaning
// "default" rather than "sequential".
func Parallelism(ctx context.Context) int {
	return resolve(ctx, 0)
}

// resolve picks the effective worker count: the explicit argument if
// positive, else the context's budget, else GOMAXPROCS.
func resolve(ctx context.Context, n int) int {
	if n > 0 {
		return n
	}
	if c := FromContext(ctx); c > 0 {
		return c
	}
	return runtime.GOMAXPROCS(0)
}

// Map applies fn to every item with at most `parallel` concurrent workers
// (0 means the context's budget, or GOMAXPROCS) and returns the results in
// input order. The first error cancels the remaining work; among the items
// that did run, the error with the lowest index is returned, so error
// reporting matches a sequential run whenever fn is deterministic. fn
// receives a context that is cancelled once any item fails.
func Map[T, R any](ctx context.Context, parallel int, items []T, fn func(ctx context.Context, idx int, item T) (R, error)) ([]R, error) {
	if len(items) == 0 {
		return nil, ctx.Err()
	}
	workers := resolve(ctx, parallel)
	if workers > len(items) {
		workers = len(items)
	}
	out := make([]R, len(items))
	if workers <= 1 {
		for i, item := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := fn(ctx, i, item)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstErr error
		errIdx   = len(items)
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				if err := cctx.Err(); err != nil {
					return
				}
				r, err := fn(cctx, i, items[i])
				if err != nil {
					fail(i, err)
					return
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Do runs the given task functions with at most `parallel` concurrent
// workers and returns the lowest-index error, if any.
func Do(ctx context.Context, parallel int, fns ...func(ctx context.Context) error) error {
	_, err := Map(ctx, parallel, fns, func(ctx context.Context, _ int, fn func(ctx context.Context) error) (struct{}, error) {
		return struct{}{}, fn(ctx)
	})
	return err
}

// Flight memoizes the result of an expensive computation per key, coalescing
// concurrent duplicate requests onto a single execution. Unlike classic
// singleflight, successful results are cached — for the lifetime of the
// Flight by default, or up to SetLimit entries with least-recently-used
// eviction. Failed calls are forgotten so a later request retries.
type Flight[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*flightCall[V]

	limit     int // 0 = unbounded
	evictions int64
	// LRU bookkeeping over *completed* entries: mru is most recent. Entries
	// still in flight are not on the list (they cannot be evicted, which is
	// what preserves coalescing under any limit).
	lru map[K]*lruEntry[K]
	mru *lruEntry[K]
	lrs *lruEntry[K] // least recent
}

type lruEntry[K comparable] struct {
	key        K
	prev, next *lruEntry[K]
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// SetLimit caps the number of cached completed entries; the least recently
// used entry is evicted when the cap is exceeded. 0 (the default) means
// unbounded. In-flight computations never count against the cap and are
// never evicted, so concurrent duplicate requests still coalesce. Call
// before or during use; shrinking the limit evicts immediately.
func (f *Flight[K, V]) SetLimit(n int) {
	f.mu.Lock()
	f.limit = n
	f.evictLocked()
	f.mu.Unlock()
}

// Evictions reports how many completed entries have been evicted to honor
// the limit.
func (f *Flight[K, V]) Evictions() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.evictions
}

// Do returns the cached value for key, or runs fn to compute it. Concurrent
// calls for the same key block until the single in-flight fn returns and
// share its result.
func (f *Flight[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	v, _, err := f.DoShared(key, fn)
	return v, err
}

// DoShared is Do, additionally reporting whether the result was shared —
// served from the completed cache or coalesced onto another caller's
// in-flight computation — rather than computed by this call. The flag is
// what lets callers (e.g. the serve layer's metrics) count coalescing hits.
func (f *Flight[K, V]) DoShared(key K, fn func() (V, error)) (V, bool, error) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[K]*flightCall[V])
	}
	if c, ok := f.calls[key]; ok {
		f.touchLocked(key)
		f.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall[V]{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	c.val, c.err = fn()
	f.mu.Lock()
	if c.err != nil {
		delete(f.calls, key)
	} else {
		f.insertLocked(key)
		f.evictLocked()
	}
	f.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}

// touchLocked marks an already-listed key as most recently used. Hits on
// still-in-flight calls are not listed yet; their entry is added when the
// call completes. Callers hold f.mu.
func (f *Flight[K, V]) touchLocked(key K) {
	if _, ok := f.lru[key]; ok {
		f.insertLocked(key)
	}
}

// insertLocked puts key at the most-recently-used position, adding it to
// the list if absent. Callers hold f.mu.
func (f *Flight[K, V]) insertLocked(key K) {
	if f.lru == nil {
		f.lru = make(map[K]*lruEntry[K])
	}
	e, ok := f.lru[key]
	if !ok {
		e = &lruEntry[K]{key: key}
		f.lru[key] = e
	} else {
		f.unlinkLocked(e)
	}
	e.prev = nil
	e.next = f.mru
	if f.mru != nil {
		f.mru.prev = e
	}
	f.mru = e
	if f.lrs == nil {
		f.lrs = e
	}
}

func (f *Flight[K, V]) unlinkLocked(e *lruEntry[K]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if f.mru == e {
		f.mru = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if f.lrs == e {
		f.lrs = e.prev
	}
	e.prev, e.next = nil, nil
}

// evictLocked drops least-recently-used completed entries until the cache
// honors the limit. Callers hold f.mu.
func (f *Flight[K, V]) evictLocked() {
	if f.limit <= 0 {
		return
	}
	for len(f.lru) > f.limit && f.lrs != nil {
		victim := f.lrs
		f.unlinkLocked(victim)
		delete(f.lru, victim.key)
		delete(f.calls, victim.key)
		f.evictions++
	}
}

// Len reports the number of successfully completed or in-flight entries.
func (f *Flight[K, V]) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}

// Cached reports whether a completed successful result exists for key.
func (f *Flight[K, V]) Cached(key K) bool {
	f.mu.Lock()
	c, ok := f.calls[key]
	f.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-c.done:
		return c.err == nil
	default:
		return false
	}
}
