package runner

import (
	"context"
	"sync"
	"sync/atomic"
)

// MapStream applies fn to every item with at most `parallel` concurrent
// workers (0 means the context's budget, or GOMAXPROCS) and delivers results
// to sink strictly in input order, each as soon as its whole prefix has
// completed. It is the streaming counterpart of Map: the set of sink calls a
// successful MapStream makes is exactly the slice Map would have returned,
// in the same order, but delivery overlaps computation instead of waiting
// for the last item.
//
// Memory is bounded by a reorder window of a few multiples of the worker
// count, not by the result set: a worker that runs ahead of the delivery
// frontier (because an early item is slow) blocks before computing its next
// item until the frontier catches up, so at most O(workers) completed
// results are ever buffered.
//
// The sink is never called concurrently with itself, and never called for an
// index at or beyond the first failing index, so a consumer observes a clean
// prefix of results followed by at most one error. The first error (lowest
// index among items that ran, matching Map) cancels remaining work; an error
// returned by sink likewise cancels remaining work and is returned.
func MapStream[T, R any](ctx context.Context, parallel int, items []T, fn func(ctx context.Context, idx int, item T) (R, error), sink func(idx int, r R) error) error {
	if len(items) == 0 {
		return ctx.Err()
	}
	workers := resolve(ctx, parallel)
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i, item := range items {
			if err := ctx.Err(); err != nil {
				return err
			}
			r, err := fn(ctx, i, item)
			if err != nil {
				return err
			}
			if err := sink(i, r); err != nil {
				return err
			}
		}
		return nil
	}

	// The reorder window caps how far any worker may run ahead of the
	// delivery frontier. 4× workers keeps the pool busy through moderately
	// uneven item costs while bounding buffered results.
	window := 4 * workers
	if window < 16 {
		window = 16
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		mu       sync.Mutex // guards pending, flushed, errIdx, firstErr, and sink calls
		pending  = make(map[int]R, window)
		flushed  int
		firstErr error
		errIdx   = len(items)
		wg       sync.WaitGroup
	)
	cond := sync.NewCond(&mu)
	// Workers blocked on the window must also wake on cancellation —
	// including a parent-context cancellation no fail() call announces.
	go func() {
		<-cctx.Done()
		mu.Lock()
		cond.Broadcast()
		mu.Unlock()
	}()
	fail := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel() // wakes window waiters via the watcher goroutine
	}
	// deliver registers a completed result and flushes the contiguous prefix
	// through the sink. Sink runs are serialized under mu, which both keeps
	// delivery in index order and prevents concurrent sink invocations.
	deliver := func(i int, r R) {
		mu.Lock()
		defer mu.Unlock()
		pending[i] = r
		for {
			if flushed >= errIdx {
				return
			}
			v, ok := pending[flushed]
			if !ok {
				return
			}
			delete(pending, flushed)
			if err := sink(flushed, v); err != nil {
				if flushed < errIdx {
					errIdx, firstErr = flushed, err
				}
				cancel()
				return
			}
			flushed++
			cond.Broadcast() // frontier advanced; window waiters may proceed
		}
	}
	// admit blocks until index i fits in the reorder window (or the run is
	// cancelled). Returns false when the worker should exit instead.
	admit := func(i int) bool {
		mu.Lock()
		defer mu.Unlock()
		for i >= flushed+window && cctx.Err() == nil {
			cond.Wait()
		}
		return cctx.Err() == nil
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				if !admit(i) {
					return
				}
				r, err := fn(cctx, i, items[i])
				if err != nil {
					fail(i, err)
					return
				}
				deliver(i, r)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
