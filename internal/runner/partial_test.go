package runner

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// Partial mode must deliver every index exactly once, in input order, with
// error rows interleaved at exactly the failing indices — at parallel 1 and
// at parallel 8 alike.
func TestMapStreamPartialInterleavedOrdered(t *testing.T) {
	const n = 120
	items := make([]int, n)
	boom := errors.New("boom")
	failing := map[int]bool{0: true, 7: true, 8: true, 50: true, n - 1: true}
	for _, workers := range []int{1, 8} {
		var rows, errRows []int
		next := 0
		err := MapStreamPartial(context.Background(), workers, items, 0, func(_ context.Context, idx int, _ int) (int, error) {
			time.Sleep(time.Duration(rand.Intn(200)) * time.Microsecond)
			if failing[idx] {
				return 0, fmt.Errorf("idx %d: %w", idx, boom)
			}
			return idx * 2, nil
		}, func(idx int, r int, err error) error {
			if idx != next {
				t.Fatalf("workers=%d: delivery out of order: got %d, want %d", workers, idx, next)
			}
			next++
			if err != nil {
				if !errors.Is(err, boom) {
					t.Fatalf("workers=%d: idx %d unexpected error %v", workers, idx, err)
				}
				errRows = append(errRows, idx)
				return nil
			}
			if r != idx*2 {
				t.Fatalf("workers=%d: idx %d got %d", workers, idx, r)
			}
			rows = append(rows, idx)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(rows)+len(errRows) != n {
			t.Fatalf("workers=%d: %d rows + %d errors, want %d total", workers, len(rows), len(errRows), n)
		}
		if len(errRows) != len(failing) {
			t.Fatalf("workers=%d: error rows %v, want indices of %v", workers, errRows, failing)
		}
		for _, idx := range errRows {
			if !failing[idx] {
				t.Fatalf("workers=%d: spurious error row at %d", workers, idx)
			}
		}
	}
}

// The failure budget must trip the run: more than maxFailures failures
// cancel remaining work and surface a *BudgetError, terminating promptly
// even though every item of a fully-dead backend would fail.
func TestMapStreamPartialBudgetTrips(t *testing.T) {
	const n, budget = 10_000, 5
	items := make([]int, n)
	dead := errors.New("backend dead")
	var attempts atomic.Int64
	for _, workers := range []int{1, 8} {
		attempts.Store(0)
		err := MapStreamPartial(context.Background(), workers, items, budget, func(_ context.Context, idx int, _ int) (int, error) {
			attempts.Add(1)
			return 0, dead
		}, func(idx int, _ int, err error) error {
			if err == nil {
				t.Fatalf("workers=%d: success row at %d from a dead backend", workers, idx)
			}
			return nil
		})
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("workers=%d: err = %v, want *BudgetError", workers, err)
		}
		if !IsBudget(err) {
			t.Fatalf("workers=%d: IsBudget(%v) = false", workers, err)
		}
		if !errors.Is(err, dead) {
			t.Fatalf("workers=%d: budget error does not wrap the cause: %v", workers, err)
		}
		if be.Budget != budget || be.Failures <= budget {
			t.Fatalf("workers=%d: BudgetError = %+v", workers, be)
		}
		// Prompt termination: the pool must stop near the trip point, not
		// grind through the whole dataset.
		if got := attempts.Load(); got > int64(budget+4*workers+64) {
			t.Fatalf("workers=%d: %d attempts after budget %d tripped", workers, got, budget)
		}
	}
}

// With an unlimited budget, a run where every item fails still attempts
// everything and reports a nil run error: all-failed is a complete run.
func TestMapStreamPartialAllFail(t *testing.T) {
	items := make([]int, 64)
	var errRows int
	err := MapStreamPartial(context.Background(), 8, items, 0, func(_ context.Context, idx int, _ int) (int, error) {
		return 0, errors.New("nope")
	}, func(_ int, _ int, err error) error {
		if err != nil {
			errRows++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run error = %v, want nil", err)
	}
	if errRows != len(items) {
		t.Fatalf("%d error rows, want %d", errRows, len(items))
	}
}

// A sink error still aborts the whole run, exactly as in MapStream.
func TestMapStreamPartialSinkError(t *testing.T) {
	items := make([]int, 100)
	stop := errors.New("stop")
	var calls int
	err := MapStreamPartial(context.Background(), 4, items, 0, func(_ context.Context, idx int, _ int) (int, error) {
		return idx, nil
	}, func(idx int, _ int, _ error) error {
		calls++
		if idx == 10 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want stop", err)
	}
	if calls != 11 {
		t.Fatalf("sink called %d times, want 11", calls)
	}
}

// Parent-context cancellation aborts the run with the context error rather
// than recording cancellations as per-item failures.
func TestMapStreamPartialParentCancel(t *testing.T) {
	items := make([]int, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	var delivered atomic.Int64
	err := MapStreamPartial(ctx, 4, items, 0, func(ctx context.Context, idx int, _ int) (int, error) {
		if idx == 20 {
			cancel()
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return idx, nil
	}, func(_ int, _ int, err error) error {
		if err != nil {
			t.Fatalf("cancellation surfaced as an error row: %v", err)
		}
		delivered.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// MapPartial must collect successes in order and failures as indexed errors.
func TestMapPartial(t *testing.T) {
	items := []int{10, 20, 30, 40, 50}
	boom := errors.New("boom")
	out, errs, err := MapPartial(context.Background(), 2, items, 0, func(_ context.Context, idx int, v int) (int, error) {
		if idx == 1 || idx == 3 {
			return 0, boom
		}
		return v + 1, nil
	})
	if err != nil {
		t.Fatalf("run error = %v", err)
	}
	want := []int{11, 0, 31, 0, 51}
	for i, v := range out {
		if v != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
	if len(errs) != 2 || errs[0].Index != 1 || errs[1].Index != 3 {
		t.Fatalf("errs = %v, want indices 1 and 3", errs)
	}
	for _, e := range errs {
		if !errors.Is(e, boom) {
			t.Fatalf("item error does not wrap cause: %v", e)
		}
	}
}
