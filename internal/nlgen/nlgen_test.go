package nlgen

import (
	"strings"
	"testing"

	"repro/internal/sqlparse"
)

func facts(t *testing.T, sql string) Facts {
	t.Helper()
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return Extract(sel)
}

func TestExtractBasicFacts(t *testing.T) {
	f := facts(t, "SELECT plate , mjd FROM SpecObj WHERE z > 0.5")
	if f.Action != "lists" {
		t.Errorf("action = %q", f.Action)
	}
	if len(f.Columns) != 2 || f.Columns[0] != "plate" {
		t.Errorf("columns = %v", f.Columns)
	}
	if len(f.Tables) != 1 || f.Tables[0] != "SpecObj" {
		t.Errorf("tables = %v", f.Tables)
	}
	if len(f.Filters) != 1 || !strings.Contains(f.Filters[0], "z > 0.5") {
		t.Errorf("filters = %v", f.Filters)
	}
}

func TestExtractAggregates(t *testing.T) {
	f := facts(t, "SELECT COUNT(*) , cName FROM tryout GROUP BY cName ORDER BY COUNT(*) DESC")
	if f.Action != "computes" {
		t.Errorf("action = %q", f.Action)
	}
	if f.Columns[0] != "the number of rows" {
		t.Errorf("columns = %v", f.Columns)
	}
	if len(f.Grouping) != 1 || f.Grouping[0] != "cName" {
		t.Errorf("grouping = %v", f.Grouping)
	}
	if f.Superlative {
		t.Error("no limit-1: not superlative")
	}
}

func TestExtractSuperlative(t *testing.T) {
	// The paper's Q18: ASC LIMIT 1 means "the least".
	f := facts(t, "SELECT C.cylinders FROM CARS_DATA AS C JOIN CAR_NAMES AS T ON C.Id = T.MakeId WHERE T.Model = 'volvo' ORDER BY C.accelerate ASC LIMIT 1")
	if !f.Superlative {
		t.Fatal("superlative not detected")
	}
	if f.Descending {
		t.Error("ASC misread as descending")
	}
	if !strings.Contains(f.Ordering, "lowest accelerate") {
		t.Errorf("ordering = %q", f.Ordering)
	}
	f2 := facts(t, "SELECT name FROM stadium ORDER BY capacity DESC LIMIT 1")
	if !strings.Contains(f2.Ordering, "highest capacity") {
		t.Errorf("ordering = %q", f2.Ordering)
	}
}

func TestExtractSetOpAndSubquery(t *testing.T) {
	f := facts(t, "SELECT name FROM singer WHERE singer_id IN ( SELECT singer_id FROM singer_in_concert )")
	if len(f.Subqueries) != 1 || !strings.Contains(f.Subqueries[0], "singer_in_concert") {
		t.Errorf("subqueries = %v", f.Subqueries)
	}
	f2 := facts(t, "SELECT a FROM t WHERE x = 1 INTERSECT SELECT a FROM t WHERE y = 2")
	if !strings.Contains(f2.SetOp, "both") {
		t.Errorf("setop = %q", f2.SetOp)
	}
}

func TestRenderFull(t *testing.T) {
	f := facts(t, "SELECT name , capacity FROM stadium WHERE capacity > 1000 ORDER BY capacity DESC LIMIT 1")
	out := Render(f, RenderOptions{})
	for _, want := range []string{"name", "capacity", "stadium", "highest"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render = %q, missing %q", out, want)
		}
	}
}

func TestRenderDropOptions(t *testing.T) {
	f := facts(t, "SELECT name FROM stadium WHERE capacity > 1000")
	full := Render(f, RenderOptions{})
	noCols := Render(f, RenderOptions{DropColumns: true})
	if strings.Contains(noCols, "name") {
		t.Errorf("DropColumns kept columns: %q", noCols)
	}
	noCtx := Render(f, RenderOptions{DropContext: true})
	if strings.Contains(noCtx, "stadium") || strings.Contains(noCtx, "capacity > 1000") {
		t.Errorf("DropContext kept context: %q", noCtx)
	}
	if len(full) <= len(noCtx) {
		t.Error("full render should be longer")
	}
}

func TestRenderFlipSuperlative(t *testing.T) {
	f := facts(t, "SELECT cylinders FROM CARS_DATA ORDER BY accelerate ASC LIMIT 1")
	right := Render(f, RenderOptions{})
	wrong := Render(f, RenderOptions{FlipSuperlative: true})
	if !strings.Contains(right, "lowest") {
		t.Errorf("correct render = %q", right)
	}
	if !strings.Contains(wrong, "highest") {
		t.Errorf("flipped render = %q (the Q18 failure mode)", wrong)
	}
}

func TestCoverageScoring(t *testing.T) {
	f := facts(t, "SELECT name FROM stadium WHERE capacity > 1000")
	full := Render(f, RenderOptions{})
	if c := Coverage(full, f); c < 0.99 {
		t.Errorf("full coverage = %v, want ~1", c)
	}
	partial := Coverage("This query counts things.", f)
	if partial > 0.5 {
		t.Errorf("empty-ish coverage = %v, want low", partial)
	}
	if full := Coverage(Render(f, RenderOptions{DropContext: true}), f); full >= 1 {
		t.Error("dropping context must reduce coverage")
	}
}

func TestCoverageNoFacts(t *testing.T) {
	sel, _ := sqlparse.ParseSelect("SELECT 1")
	f := Extract(sel)
	// Only the literal column phrase; coverage of arbitrary text may be 0,
	// but must not panic or divide by zero.
	_ = Coverage("anything", f)
}
