// Package nlgen generates natural-language explanations of SQL queries from
// their ASTs, and extracts the "fact set" an explanation should cover. The
// query_exp task uses it twice: to build ground-truth reference facts, and
// inside the simulated models, which drop or distort facts according to
// their capability profile.
package nlgen

import (
	"fmt"
	"strings"

	"repro/internal/sqlast"
)

// Facts is the structured content of a query explanation. Every field is a
// human-readable fragment; empty fields do not apply.
type Facts struct {
	Action      string   // "counts", "lists", "computes the average of", ...
	Columns     []string // projected columns / aggregate descriptions
	Tables      []string // source tables
	Filters     []string // rendered filter conditions
	Grouping    []string // group-by keys
	Ordering    string   // superlative semantics, e.g. "with the highest capacity"
	Limit       string   // "top 3", "" for none
	SetOp       string   // "appearing in both ...", for INTERSECT etc.
	Subqueries  []string // membership conditions
	Superlative bool     // ordering+limit-1 encodes a superlative
	// Descending is the direction of the first ORDER BY key; meaningful when
	// Superlative is set. The paper's Q18 failure is misreading this.
	Descending bool
}

// Extract derives the fact set of a SELECT statement.
func Extract(sel *sqlast.SelectStmt) Facts {
	f := Facts{}
	agg := false
	for _, item := range sel.Items {
		switch e := item.Expr.(type) {
		case *sqlast.FuncCall:
			if sqlast.IsAggregate(e.Name) {
				agg = true
				f.Columns = append(f.Columns, describeAggregate(e))
				continue
			}
			f.Columns = append(f.Columns, strings.ToLower(e.Name)+" of "+describeArgs(e))
		case *sqlast.Star:
			f.Columns = append(f.Columns, "all columns")
		case *sqlast.ColumnRef:
			f.Columns = append(f.Columns, columnPhrase(e))
		default:
			f.Columns = append(f.Columns, sqlast.PrintExpr(item.Expr))
		}
	}
	if agg {
		f.Action = "computes"
	} else {
		f.Action = "lists"
	}
	for _, ref := range sel.From {
		collectTables(ref, &f.Tables)
	}
	f.Filters = filterPhrases(sel.Where)
	for _, g := range sel.GroupBy {
		f.Grouping = append(f.Grouping, columnPhraseExpr(g))
	}
	if len(sel.OrderBy) > 0 {
		f.Descending = sel.OrderBy[0].Desc
		limitOne := (sel.Limit != nil && *sel.Limit == 1) || (sel.Top != nil && *sel.Top == 1)
		if limitOne {
			f.Superlative = true
			key := strings.TrimPrefix(columnPhraseExpr(sel.OrderBy[0].Expr), "the ")
			if f.Descending {
				f.Ordering = "with the highest " + key
			} else {
				f.Ordering = "with the lowest " + key
			}
		} else {
			dir := "ascending"
			if f.Descending {
				dir = "descending"
			}
			f.Ordering = "ordered by " + columnPhraseExpr(sel.OrderBy[0].Expr) + " " + dir
		}
	}
	if sel.Limit != nil && *sel.Limit > 1 {
		f.Limit = fmt.Sprintf("top %d", *sel.Limit)
	}
	if sel.SetOp != nil {
		switch sel.SetOp.Op {
		case "INTERSECT":
			f.SetOp = "keeping only rows appearing in both branches"
		case "EXCEPT":
			f.SetOp = "excluding rows from the second branch"
		default:
			f.SetOp = "combined with a second query"
		}
		right := Extract(sel.SetOp.Right)
		f.Filters = append(f.Filters, right.Filters...)
	}
	collectSubqueryFacts(sel.Where, &f.Subqueries)
	return f
}

func describeAggregate(fc *sqlast.FuncCall) string {
	name := strings.ToUpper(fc.Name)
	if fc.Star {
		return "the number of rows"
	}
	arg := describeArgs(fc)
	switch name {
	case "COUNT":
		return "the number of " + arg
	case "AVG":
		return "the average " + arg
	case "SUM":
		return "the total " + arg
	case "MIN":
		return "the minimum " + arg
	case "MAX":
		return "the maximum " + arg
	default:
		return strings.ToLower(name) + " of " + arg
	}
}

func describeArgs(fc *sqlast.FuncCall) string {
	var parts []string
	for _, a := range fc.Args {
		parts = append(parts, columnPhraseExpr(a))
	}
	return strings.Join(parts, ", ")
}

func columnPhrase(cr *sqlast.ColumnRef) string { return cr.Name }

func columnPhraseExpr(e sqlast.Expr) string {
	if cr, ok := e.(*sqlast.ColumnRef); ok {
		return cr.Name
	}
	if fc, ok := e.(*sqlast.FuncCall); ok && sqlast.IsAggregate(fc.Name) {
		return describeAggregate(fc)
	}
	return sqlast.PrintExpr(e)
}

func collectTables(ref sqlast.TableRef, out *[]string) {
	switch t := ref.(type) {
	case *sqlast.TableName:
		*out = append(*out, t.Name)
	case *sqlast.Join:
		collectTables(t.Left, out)
		collectTables(t.Right, out)
	case *sqlast.SubqueryTable:
		inner := Extract(t.Select)
		*out = append(*out, inner.Tables...)
	}
}

// filterPhrases renders each non-join WHERE conjunct as a phrase. Join
// conditions (column = column) are treated as structure, not filters.
func filterPhrases(e sqlast.Expr) []string {
	var out []string
	var walk func(x sqlast.Expr)
	walk = func(x sqlast.Expr) {
		if x == nil {
			return
		}
		switch t := x.(type) {
		case *sqlast.Binary:
			if t.Op == "AND" || t.Op == "OR" {
				walk(t.L)
				walk(t.R)
				return
			}
			if _, l := t.L.(*sqlast.ColumnRef); l {
				if _, r := t.R.(*sqlast.ColumnRef); r {
					return // join condition
				}
			}
			out = append(out, sqlast.PrintExpr(t))
		case *sqlast.In:
			if t.Sub == nil {
				out = append(out, sqlast.PrintExpr(t.X)+" in a fixed list")
			}
		case *sqlast.Between:
			out = append(out, sqlast.PrintExpr(t))
		case *sqlast.IsNull:
			out = append(out, sqlast.PrintExpr(t))
		case *sqlast.Unary:
			walk(t.X)
		}
	}
	walk(e)
	return out
}

func collectSubqueryFacts(e sqlast.Expr, out *[]string) {
	if e == nil {
		return
	}
	switch t := e.(type) {
	case *sqlast.Binary:
		collectSubqueryFacts(t.L, out)
		collectSubqueryFacts(t.R, out)
	case *sqlast.In:
		if t.Sub != nil {
			inner := Extract(t.Sub)
			phrase := columnPhraseExpr(t.X) + " appearing in " + strings.Join(inner.Tables, ", ")
			*out = append(*out, phrase)
		}
	case *sqlast.Exists:
		inner := Extract(t.Sub)
		*out = append(*out, "matching rows exist in "+strings.Join(inner.Tables, ", "))
	case *sqlast.Unary:
		collectSubqueryFacts(t.X, out)
	}
}

// Render produces a one-sentence explanation covering the given facts.
// Include flags allow the simulated models to drop facts; FlipSuperlative
// reproduces the paper's Q18 failure (reading ASC LIMIT 1 as "fastest").
type RenderOptions struct {
	DropColumns     bool // omit the selected attributes (the paper's Q17 failure)
	DropContext     bool // omit tables/filters context (the Q15/Q16 failures)
	FlipSuperlative bool // invert highest/lowest (the Q18 failure)
	MaxFilters      int  // cap on rendered filters; 0 = all
}

// Render builds the explanation sentence.
func Render(f Facts, opt RenderOptions) string {
	var b strings.Builder
	b.WriteString("This query ")
	b.WriteString(f.Action)
	b.WriteString(" ")
	if opt.DropColumns || len(f.Columns) == 0 {
		b.WriteString("results")
	} else {
		b.WriteString(strings.Join(f.Columns, ", "))
	}
	if len(f.Grouping) > 0 {
		b.WriteString(" for each ")
		b.WriteString(strings.Join(f.Grouping, ", "))
	}
	if !opt.DropContext && len(f.Tables) > 0 {
		b.WriteString(" from ")
		b.WriteString(strings.Join(f.Tables, ", "))
	}
	filters := f.Filters
	if opt.DropContext {
		filters = nil
	}
	if opt.MaxFilters > 0 && len(filters) > opt.MaxFilters {
		filters = filters[:opt.MaxFilters]
	}
	if len(filters) > 0 {
		b.WriteString(" where ")
		b.WriteString(strings.Join(filters, " and "))
	}
	if !opt.DropContext {
		for _, s := range f.Subqueries {
			b.WriteString(", with ")
			b.WriteString(s)
		}
	}
	if f.Ordering != "" {
		ordering := f.Ordering
		if opt.FlipSuperlative && f.Superlative {
			ordering = flipOrdering(ordering)
		}
		b.WriteString(" ")
		b.WriteString(ordering)
	}
	if f.Limit != "" {
		b.WriteString(", returning the ")
		b.WriteString(f.Limit)
	}
	if f.SetOp != "" {
		b.WriteString(", ")
		b.WriteString(f.SetOp)
	}
	b.WriteString(".")
	return b.String()
}

func flipOrdering(s string) string {
	switch {
	case strings.Contains(s, "highest"):
		return strings.Replace(s, "highest", "lowest", 1)
	case strings.Contains(s, "lowest"):
		return strings.Replace(s, "lowest", "highest", 1)
	default:
		return s
	}
}

// Coverage scores an explanation against reference facts: the fraction of
// key facts (columns, tables, filters, grouping, ordering) whose anchor
// terms appear in the explanation. It is the quantitative backbone of the
// paper's qualitative case study.
func Coverage(explanation string, f Facts) float64 {
	lower := strings.ToLower(explanation)
	var total, hit int
	check := func(term string) {
		if term == "" {
			return
		}
		total++
		if strings.Contains(lower, strings.ToLower(anchor(term))) {
			hit++
		}
	}
	for _, c := range f.Columns {
		check(c)
	}
	for _, t := range f.Tables {
		check(t)
	}
	for _, fl := range f.Filters {
		check(fl)
	}
	for _, g := range f.Grouping {
		check(g)
	}
	check(f.Ordering)
	if total == 0 {
		return 1
	}
	return float64(hit) / float64(total)
}

// anchor reduces a fact phrase to its most identifying token.
func anchor(term string) string {
	fields := strings.Fields(term)
	if len(fields) == 0 {
		return term
	}
	// Prefer the last identifier-looking token (column/table names end the
	// generated phrases).
	for i := len(fields) - 1; i >= 0; i-- {
		f := strings.Trim(fields[i], ".,'")
		if f != "" && f != "and" && f != "the" {
			return f
		}
	}
	return fields[len(fields)-1]
}
