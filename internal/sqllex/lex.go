// Package sqllex implements a lexical scanner for the SQL dialect used by the
// benchmark workloads (ANSI SQL plus the T-SQL constructs that appear in the
// SDSS and SQLShare logs: TOP, bracketed identifiers, DECLARE/SET/EXEC,
// WAITFOR). Tokens carry byte, line, column, and word-index positions; the
// word index is the position metric used by the miss_token_loc task.
package sqllex

import (
	"fmt"
	"strings"
	"unicode"
)

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	Ident
	QuotedIdent // "name" or [name]
	Keyword
	Number
	String // 'literal'
	Op     // operators and punctuation such as = <> . +
	Comma
	LParen
	RParen
	Semi
	Comment
	Variable // @name (T-SQL variable)
)

var kindNames = map[Kind]string{
	EOF:         "EOF",
	Ident:       "Ident",
	QuotedIdent: "QuotedIdent",
	Keyword:     "Keyword",
	Number:      "Number",
	String:      "String",
	Op:          "Op",
	Comma:       "Comma",
	LParen:      "LParen",
	RParen:      "RParen",
	Semi:        "Semi",
	Comment:     "Comment",
	Variable:    "Variable",
}

// String returns the human-readable name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Pos locates a token within the input text.
type Pos struct {
	Offset int // byte offset, 0-based
	Line   int // 1-based
	Col    int // 1-based, in bytes
}

// String renders the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical element.
type Token struct {
	Kind Kind
	Text string // exactly as written, including quotes/brackets
	Pos  Pos
	Word int // index among non-comment tokens, 0-based
}

// Upper returns the uppercase form of Text for case-insensitive matching.
// It is computed on demand rather than stored per token: for text with no
// lowercase ASCII letters (keywords, operators, numbers — the bulk of SQL)
// it returns Text itself without allocating, and consumers that never look
// at a token's case pay nothing at all.
func (t Token) Upper() string { return upper(t.Text) }

// Val returns the semantic value: unquoted identifier text, string contents
// without quotes, or Text otherwise.
func (t Token) Val() string {
	switch t.Kind {
	case QuotedIdent:
		if len(t.Text) >= 2 {
			inner := t.Text[1 : len(t.Text)-1]
			if t.Text[0] == '"' {
				return strings.ReplaceAll(inner, `""`, `"`)
			}
			return inner // [name]
		}
		return t.Text
	case String:
		if len(t.Text) >= 2 {
			return strings.ReplaceAll(t.Text[1:len(t.Text)-1], "''", "'")
		}
		return t.Text
	default:
		return t.Text
	}
}

// Is reports whether the token is a keyword with the given uppercase name.
func (t Token) Is(kw string) bool { return t.Kind == Keyword && MatchUpper(t.Text, kw) }

// MatchUpper reports whether text equals word ignoring ASCII case, without
// allocating. word must already be uppercase ASCII (the form keywords and
// operators are written in); non-ASCII text never matches.
func MatchUpper(text, word string) bool {
	if len(text) != len(word) {
		return false
	}
	for i := 0; i < len(text); i++ {
		c := text[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != word[i] {
			return false
		}
	}
	return true
}

// keywords is the set of reserved words recognized by the scanner. Function
// names (COUNT, AVG, ...) are deliberately not keywords; they lex as Ident.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"OFFSET": true, "TOP": true, "DISTINCT": true, "ALL": true, "AS": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "FULL": true,
	"OUTER": true, "CROSS": true, "ON": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "EXISTS": true, "BETWEEN": true, "LIKE": true,
	"IS": true, "NULL": true, "UNION": true, "INTERSECT": true, "EXCEPT": true,
	"WITH": true, "CASE": true, "WHEN": true, "THEN": true, "ELSE": true,
	"END": true, "CREATE": true, "TABLE": true, "VIEW": true, "INSERT": true,
	"INTO": true, "VALUES": true, "UPDATE": true, "SET": true, "DELETE": true,
	"DECLARE": true, "EXEC": true, "DROP": true, "CAST": true, "WAITFOR": true,
	"DELAY": true, "TRUE": true, "FALSE": true,
}

// IsKeyword reports whether the uppercase word is a reserved keyword.
func IsKeyword(upper string) bool { return keywords[upper] }

// maxKeywordLen bounds the stack buffer isKeywordWord uppercases into;
// INTERSECT (9 bytes) is the longest current keyword. init asserts the
// table fits so a future addition cannot silently stop matching.
const maxKeywordLen = 12

func init() {
	for kw := range keywords {
		if len(kw) > maxKeywordLen {
			panic("sqllex: keyword " + kw + " exceeds maxKeywordLen")
		}
	}
}

// isKeywordWord reports whether text names a keyword, ignoring ASCII case,
// without allocating: the candidate is uppercased into a stack buffer and
// looked up directly (the compiler elides the string conversion in the map
// access).
func isKeywordWord(text string) bool {
	if len(text) > maxKeywordLen {
		return false
	}
	var buf [maxKeywordLen]byte
	for i := 0; i < len(text); i++ {
		c := text[i]
		if c >= 0x80 {
			return false // keywords are pure ASCII
		}
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		buf[i] = c
	}
	return keywords[string(buf[:len(text)])]
}

// Error is a lexical error with a position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("lex error at %s: %s", e.Pos, e.Msg) }

type scanner struct {
	src  string
	off  int
	line int
	col  int
	word int
}

// Lex scans the input and returns its tokens, excluding the trailing EOF
// token. Comments are returned in place but do not consume word indices.
func Lex(src string) ([]Token, error) {
	s := &scanner{src: src, line: 1, col: 1}
	// SQL averages one token per ~5 source bytes; pre-sizing skips the
	// doubling reallocations that otherwise dominate lexing cost.
	toks := make([]Token, 0, len(src)/5+8)
	for {
		tok, err := s.next()
		if err != nil {
			return toks, err
		}
		if tok.Kind == EOF {
			return toks, nil
		}
		toks = append(toks, tok)
	}
}

// LexWords scans the input and returns only word-bearing tokens (no
// comments), which is the view used for word-position bookkeeping.
func LexWords(src string) ([]Token, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	out := toks[:0]
	for _, t := range toks {
		if t.Kind != Comment {
			out = append(out, t)
		}
	}
	return out, nil
}

func (s *scanner) pos() Pos { return Pos{Offset: s.off, Line: s.line, Col: s.col} }

func (s *scanner) peek() byte {
	if s.off >= len(s.src) {
		return 0
	}
	return s.src[s.off]
}

func (s *scanner) peekAt(n int) byte {
	if s.off+n >= len(s.src) {
		return 0
	}
	return s.src[s.off+n]
}

func (s *scanner) advance() byte {
	c := s.src[s.off]
	s.off++
	if c == '\n' {
		s.line++
		s.col = 1
	} else {
		s.col++
	}
	return c
}

func (s *scanner) skipSpace() {
	for s.off < len(s.src) {
		c := s.src[s.off]
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			s.advance()
			continue
		}
		return
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '#' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '#' || c == '$' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (s *scanner) next() (Token, error) {
	s.skipSpace()
	start := s.pos()
	if s.off >= len(s.src) {
		return Token{Kind: EOF, Pos: start, Word: s.word}, nil
	}
	c := s.peek()
	switch {
	case c == '-' && s.peekAt(1) == '-':
		return s.lineComment(start), nil
	case c == '/' && s.peekAt(1) == '*':
		return s.blockComment(start)
	case isIdentStart(c):
		return s.identifier(start), nil
	case isDigit(c) || (c == '.' && isDigit(s.peekAt(1))):
		return s.number(start), nil
	case c == '\'':
		return s.stringLit(start)
	case c == '"':
		return s.quotedIdent(start, '"', '"')
	case c == '[':
		return s.quotedIdent(start, '[', ']')
	case c == '@':
		return s.variable(start), nil
	case c == ',':
		s.advance()
		return s.emit(Comma, ",", start), nil
	case c == '(':
		s.advance()
		return s.emit(LParen, "(", start), nil
	case c == ')':
		s.advance()
		return s.emit(RParen, ")", start), nil
	case c == ';':
		s.advance()
		return s.emit(Semi, ";", start), nil
	default:
		return s.operator(start)
	}
}

func (s *scanner) emit(k Kind, text string, pos Pos) Token {
	t := Token{Kind: k, Text: text, Pos: pos, Word: s.word}
	s.word++
	return t
}

// upper is strings.ToUpper with a manual ASCII fast path: already-uppercase
// text (keywords, operators, numbers — the bulk of SQL) returns the input
// string without allocating.
func upper(s string) string {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 0x80 {
			return strings.ToUpper(s)
		}
	}
	return s
}

func (s *scanner) lineComment(start Pos) Token {
	begin := s.off
	for s.off < len(s.src) && s.src[s.off] != '\n' {
		s.advance()
	}
	return Token{Kind: Comment, Text: s.src[begin:s.off], Pos: start, Word: s.word}
}

func (s *scanner) blockComment(start Pos) (Token, error) {
	begin := s.off
	s.advance() // '/'
	s.advance() // '*'
	for s.off < len(s.src) {
		if s.peek() == '*' && s.peekAt(1) == '/' {
			s.advance()
			s.advance()
			return Token{Kind: Comment, Text: s.src[begin:s.off], Pos: start, Word: s.word}, nil
		}
		s.advance()
	}
	return Token{}, &Error{Pos: start, Msg: "unterminated block comment"}
}

func (s *scanner) identifier(start Pos) Token {
	begin := s.off
	for s.off < len(s.src) && isIdentPart(s.src[s.off]) {
		s.advance()
	}
	text := s.src[begin:s.off]
	kind := Ident
	if isKeywordWord(text) {
		kind = Keyword
	}
	t := Token{Kind: kind, Text: text, Pos: start, Word: s.word}
	s.word++
	return t
}

func (s *scanner) number(start Pos) Token {
	begin := s.off
	for s.off < len(s.src) && isDigit(s.src[s.off]) {
		s.advance()
	}
	if s.peek() == '.' && isDigit(s.peekAt(1)) {
		s.advance()
		for s.off < len(s.src) && isDigit(s.src[s.off]) {
			s.advance()
		}
	} else if s.peek() == '.' && !isIdentStart(s.peekAt(1)) {
		// trailing-dot float such as "1."
		s.advance()
	}
	if c := s.peek(); c == 'e' || c == 'E' {
		save := s.off
		s.advance()
		if s.peek() == '+' || s.peek() == '-' {
			s.advance()
		}
		if isDigit(s.peek()) {
			for s.off < len(s.src) && isDigit(s.src[s.off]) {
				s.advance()
			}
		} else {
			// not an exponent after all; back out is impossible with the
			// line-tracking scanner, but 'e' not followed by digits cannot
			// occur mid-number in valid SQL, so treat as boundary.
			s.off = save
		}
	}
	return s.emit(Number, s.src[begin:s.off], start)
}

func (s *scanner) stringLit(start Pos) (Token, error) {
	begin := s.off
	s.advance() // opening quote
	for s.off < len(s.src) {
		c := s.advance()
		if c == '\'' {
			if s.peek() == '\'' { // escaped quote
				s.advance()
				continue
			}
			return s.emit(String, s.src[begin:s.off], start), nil
		}
	}
	return Token{}, &Error{Pos: start, Msg: "unterminated string literal"}
}

func (s *scanner) quotedIdent(start Pos, open, close byte) (Token, error) {
	begin := s.off
	s.advance() // opening delimiter
	for s.off < len(s.src) {
		c := s.advance()
		if c == close {
			if close == '"' && s.peek() == '"' {
				s.advance()
				continue
			}
			return s.emit(QuotedIdent, s.src[begin:s.off], start), nil
		}
	}
	return Token{}, &Error{Pos: start, Msg: fmt.Sprintf("unterminated quoted identifier (%c...%c)", open, close)}
}

func (s *scanner) variable(start Pos) Token {
	begin := s.off
	s.advance() // '@'
	if s.peek() == '@' {
		s.advance() // system variable @@x
	}
	for s.off < len(s.src) && isIdentPart(s.src[s.off]) {
		s.advance()
	}
	return s.emit(Variable, s.src[begin:s.off], start)
}

// twoByteOps are the multi-byte operators, checked before single-byte ones.
var twoByteOps = []string{"<>", "!=", "<=", ">=", "||"}

func (s *scanner) operator(start Pos) (Token, error) {
	if s.off+1 < len(s.src) {
		two := s.src[s.off : s.off+2]
		for _, op := range twoByteOps {
			if two == op {
				s.advance()
				s.advance()
				return s.emit(Op, op, start), nil
			}
		}
	}
	c := s.peek()
	switch c {
	case '=', '<', '>', '+', '-', '*', '/', '%', '.':
		s.advance()
		return s.emit(Op, string(c), start), nil
	}
	return Token{}, &Error{Pos: start, Msg: fmt.Sprintf("unexpected character %q", string(c))}
}

// Words splits raw SQL text into whitespace-separated words, the unit the
// paper uses for word_count and missing-token positions.
func Words(src string) []string { return strings.Fields(src) }
