package sqllex

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicSelect(t *testing.T) {
	toks, err := Lex("SELECT plate, mjd FROM SpecObj WHERE z > 0.5;")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	want := []Kind{Keyword, Ident, Comma, Ident, Keyword, Ident, Keyword, Ident, Op, Number, Semi}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v (%q)", i, got[i], want[i], toks[i].Text)
		}
	}
}

func TestLexKeywordCaseInsensitive(t *testing.T) {
	toks, err := Lex("select From wHeRe")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	for _, tok := range toks {
		if tok.Kind != Keyword {
			t.Errorf("%q should be keyword, got %v", tok.Text, tok.Kind)
		}
	}
	if toks[0].Upper() != "SELECT" {
		t.Errorf("Upper = %q, want SELECT", toks[0].Upper())
	}
}

func TestLexWordIndices(t *testing.T) {
	toks, err := Lex("SELECT a -- comment\nFROM b")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	// SELECT=0 a=1 comment(no word) FROM=2 b=3
	var nonComment []Token
	for _, tok := range toks {
		if tok.Kind != Comment {
			nonComment = append(nonComment, tok)
		}
	}
	for i, tok := range nonComment {
		if tok.Word != i {
			t.Errorf("token %q word index = %d, want %d", tok.Text, tok.Word, i)
		}
	}
}

func TestLexStringLiterals(t *testing.T) {
	cases := []struct{ in, val string }{
		{"'hello'", "hello"},
		{"'it''s'", "it's"},
		{"''", ""},
	}
	for _, c := range cases {
		toks, err := Lex(c.in)
		if err != nil {
			t.Fatalf("Lex(%q): %v", c.in, err)
		}
		if len(toks) != 1 || toks[0].Kind != String {
			t.Fatalf("Lex(%q) = %v, want one String", c.in, toks)
		}
		if got := toks[0].Val(); got != c.val {
			t.Errorf("Val(%q) = %q, want %q", c.in, got, c.val)
		}
	}
}

func TestLexQuotedIdentifiers(t *testing.T) {
	cases := []struct{ in, val string }{
		{`"My Table"`, "My Table"},
		{`[My Table]`, "My Table"},
		{`"a""b"`, `a"b`},
	}
	for _, c := range cases {
		toks, err := Lex(c.in)
		if err != nil {
			t.Fatalf("Lex(%q): %v", c.in, err)
		}
		if len(toks) != 1 || toks[0].Kind != QuotedIdent {
			t.Fatalf("Lex(%q) = %v, want one QuotedIdent", c.in, toks)
		}
		if got := toks[0].Val(); got != c.val {
			t.Errorf("Val(%q) = %q, want %q", c.in, got, c.val)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	for _, in := range []string{"42", "3.14", "0.5", ".5", "1e10", "2.5E-3", "1."} {
		toks, err := Lex(in)
		if err != nil {
			t.Fatalf("Lex(%q): %v", in, err)
		}
		if len(toks) != 1 || toks[0].Kind != Number {
			t.Errorf("Lex(%q) = %v, want one Number", in, toks)
		}
		if toks[0].Text != in {
			t.Errorf("Lex(%q) text = %q", in, toks[0].Text)
		}
	}
}

func TestLexOperators(t *testing.T) {
	in := "= <> != < > <= >= + - * / % || ."
	toks, err := Lex(in)
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	wantTexts := strings.Fields(in)
	if len(toks) != len(wantTexts) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(wantTexts))
	}
	for i, tok := range toks {
		if tok.Kind != Op || tok.Text != wantTexts[i] {
			t.Errorf("token %d = (%v %q), want (Op %q)", i, tok.Kind, tok.Text, wantTexts[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("SELECT 1 -- line\n/* block\ncomment */ + 2")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	var comments int
	for _, tok := range toks {
		if tok.Kind == Comment {
			comments++
		}
	}
	if comments != 2 {
		t.Errorf("got %d comments, want 2", comments)
	}
	words, err := LexWords("SELECT 1 -- line\n+ 2")
	if err != nil {
		t.Fatalf("LexWords: %v", err)
	}
	if len(words) != 4 {
		t.Errorf("LexWords returned %d tokens, want 4", len(words))
	}
}

func TestLexVariables(t *testing.T) {
	toks, err := Lex("DECLARE @x INT SET @x = @@rowcount")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	var vars []string
	for _, tok := range toks {
		if tok.Kind == Variable {
			vars = append(vars, tok.Text)
		}
	}
	if len(vars) != 3 || vars[0] != "@x" || vars[2] != "@@rowcount" {
		t.Errorf("variables = %v", vars)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("SELECT a\nFROM b")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	from := toks[2]
	if from.Pos.Line != 2 || from.Pos.Col != 1 {
		t.Errorf("FROM at %v, want 2:1", from.Pos)
	}
	if from.Pos.Offset != 9 {
		t.Errorf("FROM offset = %d, want 9", from.Pos.Offset)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{"'unterminated", `"unterminated`, "[unterminated", "/* unterminated", "SELECT ?"}
	for _, in := range cases {
		if _, err := Lex(in); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", in)
		}
	}
}

func TestLexErrorPosition(t *testing.T) {
	_, err := Lex("SELECT ?")
	lexErr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type = %T, want *Error", err)
	}
	if lexErr.Pos.Col != 8 {
		t.Errorf("error at col %d, want 8", lexErr.Pos.Col)
	}
}

func TestWords(t *testing.T) {
	got := Words("SELECT a ,  b\n FROM t")
	if len(got) != 6 {
		t.Errorf("Words = %v, want 6 fields", got)
	}
}

func TestIsKeyword(t *testing.T) {
	if !IsKeyword("SELECT") || !IsKeyword("WAITFOR") {
		t.Error("expected SELECT and WAITFOR to be keywords")
	}
	if IsKeyword("COUNT") || IsKeyword("PLATE") {
		t.Error("COUNT and PLATE must not be keywords")
	}
}

func TestTokenIs(t *testing.T) {
	toks, _ := Lex("select count")
	if !toks[0].Is("SELECT") {
		t.Error("Is(SELECT) = false")
	}
	if toks[1].Is("COUNT") {
		t.Error("Ident must not satisfy Is")
	}
}

func TestKindString(t *testing.T) {
	if Keyword.String() != "Keyword" {
		t.Errorf("Keyword.String() = %q", Keyword.String())
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}
