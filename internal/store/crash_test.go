package store

// Crash-recovery property test: a committed transaction's WAL block is
// truncated at every possible byte offset — simulating kill -9 mid-write —
// and reopening the store must either fully replay the transaction (every
// frame landed) or fully discard it (torn tail), never expose torn state.
// This mirrors the torn-tail checkpoint tests of the evaluation harness.

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/engine"
)

// copyDir clones a store directory so each truncation point starts from the
// identical on-disk state.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrashRecoveryAtEveryWALByte(t *testing.T) {
	base := t.TempDir()
	src := filepath.Join(base, "src")
	s, err := Open(src, Options{PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	ses := NewSession(s)
	if err := ses.CreateTable("t", testCols); err != nil {
		t.Fatal(err)
	}
	var seed [][]engine.Value
	for i := 0; i < 30; i++ {
		seed = append(seed, mixedRow(int64(i), fmt.Sprintf("seed%02d", i), float64(i)))
	}
	if err := ses.Append("t", seed); err != nil {
		t.Fatal(err)
	}
	withoutTxn2 := sortedRows(t, s, "t")
	walBefore := s.wal.size

	// Transaction 2: a mixed insert/update/delete batch in one transaction.
	tx, _ := s.Begin()
	if _, err := tx.Mutate("t", func(row []engine.Value) (engine.MutOp, []engine.Value, error) {
		switch row[0].I % 3 {
		case 0:
			return engine.MutDelete, nil, nil
		case 1:
			next := append([]engine.Value(nil), row...)
			next[1] = engine.TextVal("updated-" + row[1].S)
			return engine.MutUpdate, next, nil
		}
		return engine.MutKeep, nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Append("t", [][]engine.Value{mixedRow(100, "tail", 9.5)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	withTxn2 := sortedRows(t, s, "t")
	walAfter := s.wal.size
	// Abandon without Close so the directory models a crash right after
	// commit: heap pages unflushed, WAL complete.
	s.closeFiles()

	if reflect.DeepEqual(withoutTxn2, withTxn2) {
		t.Fatal("test is vacuous: transaction 2 changed nothing")
	}

	walPath := filepath.Join(src, walFileName)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != walAfter {
		t.Fatalf("WAL size %d, expected %d", len(full), walAfter)
	}

	var replayed, discarded int
	for cut := walBefore; cut <= walAfter; cut++ {
		dir := filepath.Join(base, fmt.Sprintf("cut%05d", cut))
		copyDir(t, src, dir)
		if err := os.WriteFile(filepath.Join(dir, walFileName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rs, err := Open(dir, Options{PoolPages: 4})
		if err != nil {
			t.Fatalf("cut=%d: reopen failed: %v", cut, err)
		}
		got := sortedRows(t, rs, "t")
		rs.Close()
		switch {
		case reflect.DeepEqual(got, withTxn2):
			replayed++
		case reflect.DeepEqual(got, withoutTxn2):
			discarded++
		default:
			t.Fatalf("cut=%d: torn state: %d rows, matches neither before (%d) nor after (%d)",
				cut, len(got), len(withoutTxn2), len(withTxn2))
		}
		os.RemoveAll(dir)
	}
	// Only the final cut (the complete block) can replay; every shorter
	// prefix is missing the commit record and must discard.
	if replayed == 0 {
		t.Error("no truncation point replayed the transaction")
	}
	if discarded == 0 {
		t.Error("no truncation point discarded the transaction")
	}
	t.Logf("offsets: %d discarded, %d replayed", discarded, replayed)
}

func TestRecoveryIdempotentOverFlushedPages(t *testing.T) {
	// Crash in the middle of a recovery checkpoint leaves flushed heap pages
	// next to a still-untruncated WAL and the pre-crash catalog. A second
	// recovery then replays records whose effects are already on disk; the
	// page-LSN gate (and convergent replay under it) must make that a no-op.
	base := t.TempDir()
	src := filepath.Join(base, "src")
	s, err := Open(src, Options{PoolPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	ses := NewSession(s)
	if err := ses.CreateTable("t", testCols); err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 4; batch++ {
		var rows [][]engine.Value
		for i := 0; i < 40; i++ {
			rows = append(rows, mixedRow(int64(batch*40+i), fmt.Sprintf("b%d-%02d", batch, i), float64(i)))
		}
		if err := ses.Append("t", rows); err != nil {
			t.Fatal(err)
		}
	}
	want := sortedRows(t, s, "t")
	s.closeFiles() // crash: WAL full, heap partially flushed by eviction

	// Fully recover a copy to obtain the flushed heap files.
	recovered := filepath.Join(base, "recovered")
	copyDir(t, src, recovered)
	rs, err := Open(recovered, Options{PoolPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := sortedRows(t, rs, "t"); !reflect.DeepEqual(got, want) {
		t.Fatal("first recovery diverges")
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}

	// Mid-checkpoint crash state: recovered (flushed) heap files + the old
	// catalog + the untruncated WAL.
	mixed := filepath.Join(base, "mixed")
	copyDir(t, recovered, mixed)
	for _, name := range []string{catalogFileName, walFileName} {
		data, err := os.ReadFile(filepath.Join(src, name))
		if os.IsNotExist(err) {
			// The crash happened before the very first checkpoint: no
			// catalog existed yet.
			os.Remove(filepath.Join(mixed, name))
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(mixed, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ms, err := Open(mixed, Options{PoolPages: 2})
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	defer ms.Close()
	if got := sortedRows(t, ms, "t"); !reflect.DeepEqual(got, want) {
		t.Fatal("replay over flushed pages diverges")
	}
}
