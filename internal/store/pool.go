package store

// Fixed-size buffer pool with pin/unpin and clock (second-chance) eviction.
// Frames dirtied by the active transaction are never evicted — the WAL holds
// only committed transactions, so flushing an uncommitted page would break
// redo-only recovery. When every frame is pinned or transaction-protected
// the pool temporarily over-allocates instead of deadlocking; the next
// eviction sweep shrinks it back.

import "sync"

// pageKey addresses a page by table identity (not name: a table dropped and
// recreated under the same name must not alias the old frames).
type pageKey struct {
	tid  uint64
	page int
}

type frame struct {
	key    pageKey
	buf    []byte
	pinned int
	dirty  bool // has changes not yet on disk
	txn    bool // dirtied by the active (uncommitted) transaction
	ref    bool // clock reference bit
	dead   bool // evicted; awaiting removal from the ring
}

type pool struct {
	mu     sync.Mutex
	cap    int
	frames map[pageKey]*frame
	ring   []*frame // clock order; dead entries compacted lazily
	hand   int

	readPage  func(key pageKey, buf []byte) error
	writePage func(key pageKey, buf []byte) error

	hits, misses, reads, writes int64
}

func newPool(capacity int, read, write func(pageKey, []byte) error) *pool {
	if capacity < 1 {
		capacity = 1
	}
	return &pool{
		cap:       capacity,
		frames:    make(map[pageKey]*frame),
		readPage:  read,
		writePage: write,
	}
}

// fetch returns the pinned frame for a page, reading it from disk on a miss.
// fresh pages (beyond the table's current extent) are initialized empty
// instead of read. The caller must unpin.
func (p *pool) fetch(key pageKey, fresh bool) (*frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[key]; ok {
		p.hits++
		f.ref = true
		f.pinned++
		return f, nil
	}
	p.misses++
	if err := p.evictFor(1); err != nil {
		return nil, err
	}
	f := &frame{key: key, buf: make([]byte, PageSize), pinned: 1, ref: true}
	if fresh {
		initPage(f.buf)
		f.dirty = true
	} else {
		p.reads++
		if err := p.readPage(key, f.buf); err != nil {
			return nil, err
		}
	}
	p.frames[key] = f
	p.ring = append(p.ring, f)
	return f, nil
}

func (p *pool) unpin(f *frame) {
	p.mu.Lock()
	f.pinned--
	p.mu.Unlock()
}

// evictFor makes room for n new frames if the pool is at capacity. Called
// with p.mu held.
func (p *pool) evictFor(n int) error {
	for len(p.frames)+n > p.cap {
		f := p.victim()
		if f == nil {
			return nil // everything pinned or txn-protected: over-allocate
		}
		if f.dirty {
			p.writes++
			if err := p.writePage(f.key, f.buf); err != nil {
				return err
			}
		}
		delete(p.frames, f.key)
		f.dead = true
	}
	return nil
}

// victim runs the clock hand over the ring: referenced frames get a second
// chance, pinned or transaction-dirty frames are skipped.
func (p *pool) victim() *frame {
	if len(p.ring) > 4*p.cap {
		p.compactRing()
	}
	for sweep := 0; sweep < 2*len(p.ring); sweep++ {
		if p.hand >= len(p.ring) {
			p.hand = 0
		}
		f := p.ring[p.hand]
		p.hand++
		if f == nil || f.dead || f.pinned > 0 || f.txn {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		return f
	}
	return nil
}

func (p *pool) compactRing() {
	out := p.ring[:0]
	for _, f := range p.ring {
		if f != nil && !f.dead {
			out = append(out, f)
		}
	}
	// Zero the tail so dead frames are collectable.
	for i := len(out); i < len(p.ring); i++ {
		p.ring[i] = nil
	}
	p.ring = out
	p.hand = 0
}

// flushAll writes every dirty frame (checkpoint). Frames stay resident.
// Transaction-dirty frames must not exist when this is called.
func (p *pool) flushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if !f.dirty {
			continue
		}
		p.writes++
		if err := p.writePage(f.key, f.buf); err != nil {
			return err
		}
		f.dirty = false
	}
	return nil
}

// invalidateTable discards all frames of a dropped table without writing.
func (p *pool) invalidateTable(tid uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for key, f := range p.frames {
		if key.tid == tid {
			delete(p.frames, key)
			f.dead = true
		}
	}
}
