package store

// Transactions. A Tx holds the store's write lock from Begin to
// Commit/Rollback (single writer, readers excluded for the duration).
// Mutations apply to buffer-pool pages immediately and append redo records
// to an in-memory buffer; COMMIT writes the buffered records plus a commit
// marker to the WAL in one fsynced block, then stamps the touched pages with
// the commit LSN. ROLLBACK applies the in-memory undo log (before-images) in
// reverse and writes nothing — the WAL never sees uncommitted work.

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/obs"
)

type undoKind int

const (
	undoInsert undoKind = iota // revert: delete the inserted tuple
	undoDelete                 // revert: restore the before-image
	undoUpdate                 // revert: restore the before-image
	undoCreate                 // revert: unlink the created table
	undoDrop                   // revert: restore the dropped table
)

type undoEntry struct {
	kind   undoKind
	t      *table
	page   int
	slot   int
	before []byte
}

// Tx is an open transaction. All methods must be called from one goroutine.
type Tx struct {
	s       *Store
	id      uint64
	recs    []walRec
	undo    []undoEntry
	touched map[pageKey]*frame
	dropped []*table // unlinked at commit; restored by rollback
	done    bool
}

// Begin opens a transaction, blocking until concurrent readers and any
// earlier writer finish.
func (s *Store) Begin() (*Tx, error) {
	s.mu.Lock()
	s.txnSeq++
	return &Tx{s: s, id: s.txnSeq, touched: make(map[pageKey]*frame)}, nil
}

func (tx *Tx) lookup(name string) (*table, bool) {
	t, ok := tx.s.tables[strings.ToLower(catalog.BareName(name))]
	return t, ok
}

// markTouched flags a frame as transaction-dirty: un-evictable until the
// transaction resolves.
func (tx *Tx) markTouched(key pageKey, f *frame) {
	tx.s.pool.mu.Lock()
	f.dirty = true
	f.txn = true
	tx.s.pool.mu.Unlock()
	tx.touched[key] = f
}

// CreateTable implements the table half of engine.Mutable.
func (tx *Tx) CreateTable(name string, cols []engine.Col) error {
	if tx.done {
		return fmt.Errorf("store: transaction already resolved")
	}
	t, err := tx.s.createTableLocked(name, cols)
	if err != nil {
		return err
	}
	tx.recs = append(tx.recs, walRec{typ: recCreate, txn: tx.id, table: t.name, cols: t.cols})
	tx.undo = append(tx.undo, undoEntry{kind: undoCreate, t: t})
	return nil
}

// DropTable removes a table. The heap file is unlinked only at commit so
// rollback can restore it.
func (tx *Tx) DropTable(name string) error {
	if tx.done {
		return fmt.Errorf("store: transaction already resolved")
	}
	t, ok := tx.lookup(name)
	if !ok {
		return fmt.Errorf("store: table %q does not exist", name)
	}
	delete(tx.s.tables, strings.ToLower(t.name))
	tx.recs = append(tx.recs, walRec{typ: recDrop, txn: tx.id, table: t.name})
	tx.undo = append(tx.undo, undoEntry{kind: undoDrop, t: t})
	tx.dropped = append(tx.dropped, t)
	return nil
}

// TableCols implements engine.Mutable.
func (tx *Tx) TableCols(name string) ([]engine.Col, bool) {
	t, ok := tx.lookup(name)
	if !ok {
		return nil, false
	}
	return t.cols, true
}

// Append inserts rows at the tail of the heap (last page, then fresh pages).
func (tx *Tx) Append(name string, rows [][]engine.Value) error {
	if tx.done {
		return fmt.Errorf("store: transaction already resolved")
	}
	t, ok := tx.lookup(name)
	if !ok {
		return fmt.Errorf("store: table %q does not exist", name)
	}
	for _, row := range rows {
		if len(row) != len(t.cols) {
			return fmt.Errorf("store: row arity %d does not match table %q (%d columns)",
				len(row), t.name, len(t.cols))
		}
		if err := tx.insertTuple(t, encodeTuple(nil, row)); err != nil {
			return err
		}
	}
	return nil
}

func (tx *Tx) insertTuple(t *table, tuple []byte) error {
	if len(tuple) > PageSize-pageHeaderSize-slotSize {
		return fmt.Errorf("store: tuple of %d bytes exceeds page capacity", len(tuple))
	}
	pg := t.pages - 1
	var (
		f    *frame
		slot int
		err  error
	)
	if pg >= 0 {
		key := pageKey{tid: t.id, page: pg}
		if f, err = tx.s.pool.fetch(key, pg >= t.diskPages); err != nil {
			return err
		}
		if slot = pageInsert(f.buf, tuple); slot >= 0 {
			tx.markTouched(key, f)
			tx.s.pool.unpin(f)
			tx.logInsert(t, pg, slot, tuple)
			return nil
		}
		tx.s.pool.unpin(f)
	}
	pg = t.pages
	key := pageKey{tid: t.id, page: pg}
	if f, err = tx.s.pool.fetch(key, true); err != nil {
		return err
	}
	slot = pageInsert(f.buf, tuple)
	t.pages = pg + 1
	tx.markTouched(key, f)
	tx.s.pool.unpin(f)
	tx.logInsert(t, pg, slot, tuple)
	return nil
}

func (tx *Tx) logInsert(t *table, pg, slot int, tuple []byte) {
	t.rows++
	tx.recs = append(tx.recs, walRec{typ: recInsert, txn: tx.id, table: t.name,
		page: pg, slot: slot, after: tuple})
	tx.undo = append(tx.undo, undoEntry{kind: undoInsert, t: t, page: pg, slot: slot})
}

// Mutate implements engine.Mutable: decisions are collected over a full scan
// first, then applied, so relocated tuples are never revisited.
func (tx *Tx) Mutate(name string, fn func(row []engine.Value) (engine.MutOp, []engine.Value, error)) (int, error) {
	if tx.done {
		return 0, fmt.Errorf("store: transaction already resolved")
	}
	t, ok := tx.lookup(name)
	if !ok {
		return 0, fmt.Errorf("store: table %q does not exist", name)
	}
	type change struct {
		page, slot int
		op         engine.MutOp
		tuple      []byte
	}
	var changes []change
	for pg := 0; pg < t.pages; pg++ {
		f, err := tx.s.pool.fetch(pageKey{tid: t.id, page: pg}, pg >= t.diskPages)
		if err != nil {
			return 0, err
		}
		for slot, n := 0, slotCount(f.buf); slot < n; slot++ {
			tb, ok := pageRead(f.buf, slot)
			if !ok {
				continue
			}
			row, err := decodeTuple(tb, len(t.cols))
			if err != nil {
				tx.s.pool.unpin(f)
				return 0, err
			}
			op, next, err := fn(row)
			if err != nil {
				tx.s.pool.unpin(f)
				return 0, err
			}
			switch op {
			case engine.MutDelete:
				changes = append(changes, change{page: pg, slot: slot, op: op})
			case engine.MutUpdate:
				changes = append(changes, change{page: pg, slot: slot, op: op,
					tuple: encodeTuple(nil, next)})
			}
		}
		tx.s.pool.unpin(f)
	}
	for _, c := range changes {
		key := pageKey{tid: t.id, page: c.page}
		f, err := tx.s.pool.fetch(key, false)
		if err != nil {
			return 0, err
		}
		tb, ok := pageRead(f.buf, c.slot)
		if !ok {
			tx.s.pool.unpin(f)
			return 0, fmt.Errorf("store: tuple %s:%d/%d vanished mid-mutate", t.name, c.page, c.slot)
		}
		before := append([]byte(nil), tb...)
		if c.op == engine.MutDelete {
			pageDelete(f.buf, c.slot)
			t.rows--
			tx.markTouched(key, f)
			tx.s.pool.unpin(f)
			tx.recs = append(tx.recs, walRec{typ: recDelete, txn: tx.id, table: t.name,
				page: c.page, slot: c.slot, before: before})
			tx.undo = append(tx.undo, undoEntry{kind: undoDelete, t: t,
				page: c.page, slot: c.slot, before: before})
			continue
		}
		if pageReplace(f.buf, c.slot, c.tuple) {
			tx.markTouched(key, f)
			tx.s.pool.unpin(f)
			tx.recs = append(tx.recs, walRec{typ: recUpdate, txn: tx.id, table: t.name,
				page: c.page, slot: c.slot, before: before, after: c.tuple})
			tx.undo = append(tx.undo, undoEntry{kind: undoUpdate, t: t,
				page: c.page, slot: c.slot, before: before})
			continue
		}
		// The grown tuple no longer fits on its page: delete here, re-insert
		// at the heap tail (scan order changes, which is why all store/memory
		// comparisons are order-insensitive).
		pageDelete(f.buf, c.slot)
		tx.markTouched(key, f)
		tx.s.pool.unpin(f)
		tx.recs = append(tx.recs, walRec{typ: recDelete, txn: tx.id, table: t.name,
			page: c.page, slot: c.slot, before: before})
		tx.undo = append(tx.undo, undoEntry{kind: undoDelete, t: t,
			page: c.page, slot: c.slot, before: before})
		t.rows-- // insertTuple re-increments
		if err := tx.insertTuple(t, c.tuple); err != nil {
			return 0, err
		}
	}
	return len(changes), nil
}

// Commit makes the transaction durable: records + commit marker in one
// fsynced WAL append, pages stamped with the commit LSN, dropped tables
// unlinked. A WAL write failure rolls the transaction back.
func (tx *Tx) Commit() error {
	if tx.done {
		return fmt.Errorf("store: transaction already resolved")
	}
	s := tx.s
	if len(tx.recs) == 0 {
		tx.finish()
		return nil
	}
	payloads := make([][]byte, 0, len(tx.recs)+1)
	for _, r := range tx.recs {
		payloads = append(payloads, encodeWalRec(r))
	}
	payloads = append(payloads, encodeWalRec(walRec{typ: recCommit, txn: tx.id}))
	_, sp := obs.Start(s.ctx, "wal.append")
	offsets, err := s.wal.appendAll(payloads)
	if sp != nil {
		sp.SetInt("records", int64(len(payloads)))
		sp.EndErr(err)
	}
	if err != nil {
		tx.rollbackLocked()
		tx.finish()
		return fmt.Errorf("store: commit failed, transaction rolled back: %w", err)
	}
	commitLSN := s.lsnBase + uint64(offsets[len(offsets)-1])
	s.pool.mu.Lock()
	for _, f := range tx.touched {
		setPageLSN(f.buf, commitLSN)
		f.txn = false
		f.dirty = true
	}
	s.pool.mu.Unlock()
	for _, t := range tx.dropped {
		delete(s.byID, t.id)
		s.pool.invalidateTable(t.id)
		t.file.Close()
		os.Remove(s.heapPath(t.id))
	}
	tx.finish()
	return nil
}

// Rollback undoes every mutation from the in-memory before-images, in
// reverse order. Nothing reaches the WAL.
func (tx *Tx) Rollback() error {
	if tx.done {
		return fmt.Errorf("store: transaction already resolved")
	}
	tx.rollbackLocked()
	tx.finish()
	return nil
}

func (tx *Tx) rollbackLocked() {
	s := tx.s
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		switch u.kind {
		case undoCreate:
			delete(s.tables, strings.ToLower(u.t.name))
			delete(s.byID, u.t.id)
			s.pool.invalidateTable(u.t.id)
			u.t.file.Close()
			os.Remove(s.heapPath(u.t.id))
			continue
		case undoDrop:
			s.tables[strings.ToLower(u.t.name)] = u.t
			continue
		}
		key := pageKey{tid: u.t.id, page: u.page}
		f, err := s.pool.fetch(key, false)
		if err != nil {
			// The frame is transaction-protected, so it cannot have been
			// evicted; a fetch failure here means the table vanished, which
			// undoCreate handles before we get here.
			continue
		}
		switch u.kind {
		case undoInsert:
			pageDelete(f.buf, u.slot)
			u.t.rows--
		case undoDelete:
			pageInsertAt(f.buf, u.slot, u.before)
			u.t.rows++
		case undoUpdate:
			if !pageReplace(f.buf, u.slot, u.before) {
				pageInsertAt(f.buf, u.slot, u.before)
			}
		}
		s.pool.unpin(f)
	}
	// The pages now hold only committed state again; clear protection but
	// leave them dirty (they may carry committed-but-unflushed changes).
	s.pool.mu.Lock()
	for _, f := range tx.touched {
		f.txn = false
	}
	s.pool.mu.Unlock()
}

func (tx *Tx) finish() {
	tx.done = true
	tx.recs, tx.undo, tx.dropped = nil, nil, nil
	tx.touched = nil
	tx.s.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Tx as a table source: scans inside an open transaction reuse the held
// write lock (taking the read lock would self-deadlock) and see the
// transaction's own uncommitted changes, which INSERT ... SELECT needs.

type txSource struct{ tx *Tx }

func (ts txSource) SourceCols(name string) ([]engine.Col, bool) {
	t, ok := ts.tx.lookup(name)
	if !ok {
		return nil, false
	}
	out := make([]engine.Col, len(t.cols))
	copy(out, t.cols)
	return out, true
}

func (ts txSource) SourceRows(name string) (int, bool) {
	t, ok := ts.tx.lookup(name)
	if !ok {
		return 0, false
	}
	return t.rows, true
}

func (ts txSource) OpenScan(name string) (engine.ScanCursor, error) {
	t, ok := ts.tx.lookup(name)
	if !ok {
		return nil, fmt.Errorf("store: table %q does not exist", name)
	}
	return &heapCursor{s: ts.tx.s, t: t}, nil
}

// ---------------------------------------------------------------------------
// Session: the engine.Mutable + engine.TableSource adapter. Statements
// issued outside BEGIN..COMMIT auto-commit; BEGIN/COMMIT/ROLLBACK map to
// store transactions. A Session is single-goroutine like the Tx it wraps.

// Session adapts a Store for the engine's DML executor.
type Session struct {
	s  *Store
	tx *Tx
}

// NewSession returns a session in auto-commit mode.
func NewSession(s *Store) *Session { return &Session{s: s} }

// InTxn reports whether an explicit transaction is open.
func (se *Session) InTxn() bool { return se.tx != nil }

func (se *Session) auto(fn func(tx *Tx) error) error {
	if se.tx != nil {
		return fn(se.tx)
	}
	tx, err := se.s.Begin()
	if err != nil {
		return err
	}
	if err := fn(tx); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// CreateTable implements engine.Mutable.
func (se *Session) CreateTable(name string, cols []engine.Col) error {
	return se.auto(func(tx *Tx) error { return tx.CreateTable(name, cols) })
}

// DropTable implements engine.Mutable.
func (se *Session) DropTable(name string) error {
	return se.auto(func(tx *Tx) error { return tx.DropTable(name) })
}

// TableCols implements engine.Mutable.
func (se *Session) TableCols(name string) ([]engine.Col, bool) {
	if se.tx != nil {
		return se.tx.TableCols(name)
	}
	return se.s.Cols(name)
}

// Append implements engine.Mutable.
func (se *Session) Append(name string, rows [][]engine.Value) error {
	return se.auto(func(tx *Tx) error { return tx.Append(name, rows) })
}

// Mutate implements engine.Mutable.
func (se *Session) Mutate(name string, fn func(row []engine.Value) (engine.MutOp, []engine.Value, error)) (int, error) {
	var n int
	err := se.auto(func(tx *Tx) error {
		var err error
		n, err = tx.Mutate(name, fn)
		return err
	})
	return n, err
}

// Begin implements engine.Mutable.
func (se *Session) Begin() error {
	if se.tx != nil {
		return fmt.Errorf("store: transaction already open")
	}
	tx, err := se.s.Begin()
	if err != nil {
		return err
	}
	se.tx = tx
	return nil
}

// Commit implements engine.Mutable.
func (se *Session) Commit() error {
	if se.tx == nil {
		return fmt.Errorf("store: no open transaction")
	}
	tx := se.tx
	se.tx = nil
	return tx.Commit()
}

// Rollback implements engine.Mutable.
func (se *Session) Rollback() error {
	if se.tx == nil {
		return fmt.Errorf("store: no open transaction")
	}
	tx := se.tx
	se.tx = nil
	return tx.Rollback()
}

// SourceCols implements engine.TableSource.
func (se *Session) SourceCols(name string) ([]engine.Col, bool) {
	if se.tx != nil {
		return txSource{se.tx}.SourceCols(name)
	}
	return se.s.Cols(name)
}

// SourceRows implements engine.TableSource.
func (se *Session) SourceRows(name string) (int, bool) {
	if se.tx != nil {
		return txSource{se.tx}.SourceRows(name)
	}
	return se.s.Rows(name)
}

// OpenScan implements engine.TableSource.
func (se *Session) OpenScan(name string) (engine.ScanCursor, error) {
	if se.tx != nil {
		return txSource{se.tx}.OpenScan(name)
	}
	return se.s.Scan(name)
}
