// Package store is the durable storage engine: slotted heap-file pages
// cached in a fixed-size buffer pool, a redo-only write-ahead log with
// fsync-on-commit and torn-tail-tolerant recovery, a persistent catalog
// mapping table schemas to heap files, and single-writer/multi-reader
// transactions with in-memory before-image undo.
//
// The recovery invariant: pages dirtied by the active transaction are never
// evicted (no-steal), and the WAL receives only committed transactions —
// each commit appends the transaction's records plus a commit marker in one
// fsynced write. A crash at any byte therefore leaves the log as a sequence
// of complete committed transactions followed by at most one torn tail;
// reopening replays the complete ones (page-LSN gated, idempotent) and
// discards the tail, so a transaction is recovered fully or not at all.
package store

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/obs"
)

// Options configures Open.
type Options struct {
	// PoolPages caps the buffer pool, in pages. Zero means 64 (256 KiB).
	PoolPages int
	// Ctx carries an obs tracer; store.read/store.write/wal.append spans are
	// emitted against it. nil means no tracing.
	Ctx context.Context
}

// Stats is a snapshot of the store's I/O counters since Open.
type Stats struct {
	PagesRead    int64 // heap pages read from disk
	PagesWritten int64 // heap pages written (eviction + checkpoint)
	PoolHits     int64
	PoolMisses   int64
	WALBytes     int64 // bytes appended to the WAL
	WALRecords   int64
}

// Add accumulates another snapshot into s.
func (s *Stats) Add(o Stats) {
	s.PagesRead += o.PagesRead
	s.PagesWritten += o.PagesWritten
	s.PoolHits += o.PoolHits
	s.PoolMisses += o.PoolMisses
	s.WALBytes += o.WALBytes
	s.WALRecords += o.WALRecords
}

// HitRate is the buffer-pool hit fraction, 0 when no fetches happened.
func (s Stats) HitRate() float64 {
	if s.PoolHits+s.PoolMisses == 0 {
		return 0
	}
	return float64(s.PoolHits) / float64(s.PoolHits+s.PoolMisses)
}

type table struct {
	name      string // canonical name as created
	id        uint64
	cols      []engine.Col
	pages     int // logical page count (may exceed what is on disk)
	diskPages int // pages known to exist in the heap file
	rows      int
	file      *os.File
}

// Store is a durable table store rooted at a directory. A Store is safe for
// concurrent use: Begin serializes writers, reads proceed concurrently
// between transactions.
type Store struct {
	dir  string
	opts Options
	ctx  context.Context

	mu      sync.RWMutex // writer holds W for the whole transaction
	tables  map[string]*table
	byID    map[uint64]*table
	nextID  uint64
	txnSeq  uint64
	lsnBase uint64 // epoch base: LSN = lsnBase + WAL file offset

	wal  *wal
	pool *pool
}

type colMetaJSON struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

type tableMetaJSON struct {
	Name  string        `json:"name"`
	ID    uint64        `json:"id"`
	Cols  []colMetaJSON `json:"cols"`
	Pages int           `json:"pages"`
	Rows  int           `json:"rows"`
}

type catalogJSON struct {
	NextID  uint64          `json:"next_id"`
	WALBase uint64          `json:"wal_base"`
	Tables  []tableMetaJSON `json:"tables"`
}

const (
	catalogFileName = "catalog.json"
	walFileName     = "wal.log"
)

// Open opens (or creates) a store in dir, running crash recovery if the WAL
// holds records from an unclean shutdown.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if opts.PoolPages == 0 {
		opts.PoolPages = 64
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	s := &Store{
		dir:    dir,
		opts:   opts,
		ctx:    ctx,
		tables: make(map[string]*table),
		byID:   make(map[uint64]*table),
	}
	s.pool = newPool(opts.PoolPages, s.readPageAt, s.writePageAt)

	w, err := openWAL(filepath.Join(dir, walFileName))
	if err != nil {
		return nil, err
	}
	s.wal = w

	if err := s.loadCatalog(); err != nil {
		w.close()
		return nil, err
	}
	recs, err := w.scan()
	if err != nil {
		s.closeFiles()
		return nil, err
	}
	if len(recs) > 0 {
		if err := s.recover(recs); err != nil {
			s.closeFiles()
			return nil, err
		}
	}
	return s, nil
}

func (s *Store) loadCatalog() error {
	data, err := os.ReadFile(filepath.Join(s.dir, catalogFileName))
	if os.IsNotExist(err) {
		s.nextID = 1
		return nil
	}
	if err != nil {
		return err
	}
	var cat catalogJSON
	if err := json.Unmarshal(data, &cat); err != nil {
		return fmt.Errorf("store: corrupt catalog: %w", err)
	}
	s.nextID = cat.NextID
	if s.nextID == 0 {
		s.nextID = 1
	}
	s.lsnBase = cat.WALBase
	for _, tm := range cat.Tables {
		t := &table{name: tm.Name, id: tm.ID, pages: tm.Pages, rows: tm.Rows}
		for _, c := range tm.Cols {
			t.cols = append(t.cols, engine.Col{Name: c.Name, Type: typeFromName(c.Type)})
		}
		f, err := os.OpenFile(s.heapPath(t.id), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return err
		}
		t.file = f
		t.diskPages = int(st.Size() / PageSize)
		s.tables[strings.ToLower(t.name)] = t
		s.byID[t.id] = t
	}
	return nil
}

func (s *Store) heapPath(id uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("t%04d.heap", id))
}

func typeFromName(name string) catalog.Type {
	for _, t := range []catalog.Type{catalog.TypeInt, catalog.TypeFloat, catalog.TypeText, catalog.TypeBool} {
		if t.String() == name {
			return t
		}
	}
	return catalog.TypeAny
}

// readPageAt and writePageAt are the pool's I/O callbacks. They run while
// the store's RW discipline already excludes conflicting access.
func (s *Store) readPageAt(key pageKey, buf []byte) error {
	t, ok := s.byID[key.tid]
	if !ok {
		return fmt.Errorf("store: read of unknown table id %d", key.tid)
	}
	_, sp := obs.Start(s.ctx, "store.read")
	if sp != nil {
		sp.SetString("table", t.name)
		sp.SetInt("page", int64(key.page))
		defer sp.End()
	}
	_, err := t.file.ReadAt(buf, int64(key.page)*PageSize)
	return err
}

func (s *Store) writePageAt(key pageKey, buf []byte) error {
	t, ok := s.byID[key.tid]
	if !ok {
		return fmt.Errorf("store: write of unknown table id %d", key.tid)
	}
	_, sp := obs.Start(s.ctx, "store.write")
	if sp != nil {
		sp.SetString("table", t.name)
		sp.SetInt("page", int64(key.page))
		defer sp.End()
	}
	if _, err := t.file.WriteAt(buf, int64(key.page)*PageSize); err != nil {
		return err
	}
	if key.page >= t.diskPages {
		t.diskPages = key.page + 1
	}
	return nil
}

// Stats returns a snapshot of the I/O counters.
func (s *Store) Stats() Stats {
	s.pool.mu.Lock()
	st := Stats{
		PagesRead:    s.pool.reads,
		PagesWritten: s.pool.writes,
		PoolHits:     s.pool.hits,
		PoolMisses:   s.pool.misses,
	}
	s.pool.mu.Unlock()
	st.WALBytes = s.wal.bytes.Load()
	st.WALRecords = s.wal.recs.Load()
	return st
}

// ---------------------------------------------------------------------------
// Recovery

// recover replays the committed transactions found in the WAL, then
// checkpoints (flush, catalog rewrite, WAL truncate) so the next open is
// clean. Row counts are recomputed from the heap pages: mid-run evictions
// make the checkpointed counts stale.
func (s *Store) recover(recs []walRec) error {
	committed := make(map[uint64]uint64) // txn -> commit LSN (epoch-adjusted)
	for _, r := range recs {
		if r.typ == recCommit {
			committed[r.txn] = s.lsnBase + r.lsn
		}
	}
	// Transactions are contiguous in the log (single writer, written at
	// commit), so replaying record order replays commit order. Pages are
	// stamped per transaction after all its records applied.
	touched := make(map[pageKey]*frame)
	var curTxn uint64
	stamp := func(lsn uint64) {
		for _, f := range touched {
			if pageLSN(f.buf) < lsn {
				setPageLSN(f.buf, lsn)
				f.dirty = true
			}
		}
		touched = make(map[pageKey]*frame)
	}
	for _, r := range recs {
		commitLSN, ok := committed[r.txn]
		if !ok {
			continue // uncommitted tail transaction: discard
		}
		if r.txn != curTxn {
			curTxn = r.txn
		}
		switch r.typ {
		case recCommit:
			stamp(commitLSN)
			continue
		case recCreate:
			if _, exists := s.tables[strings.ToLower(r.table)]; exists {
				continue // crash after a checkpoint that captured the create
			}
			if _, err := s.createTableLocked(r.table, r.cols); err != nil {
				return err
			}
			continue
		case recDrop:
			t, exists := s.tables[strings.ToLower(r.table)]
			if !exists {
				continue
			}
			s.dropTableLocked(t)
			continue
		}
		t, exists := s.tables[strings.ToLower(r.table)]
		if !exists {
			return fmt.Errorf("store: WAL record for unknown table %q", r.table)
		}
		key := pageKey{tid: t.id, page: r.page}
		f, err := s.pool.fetch(key, r.page >= t.diskPages)
		if err != nil {
			return err
		}
		if r.page >= t.pages {
			t.pages = r.page + 1
		}
		if pageLSN(f.buf) >= commitLSN {
			// The page was flushed after this transaction committed: its
			// effects (and possibly later ones) are already present.
			s.pool.unpin(f)
			continue
		}
		switch r.typ {
		case recInsert:
			if _, occupied := pageRead(f.buf, r.slot); !occupied {
				if !pageInsertAt(f.buf, r.slot, r.after) {
					s.pool.unpin(f)
					return fmt.Errorf("store: redo insert does not fit on %s page %d", t.name, r.page)
				}
			}
		case recDelete:
			pageDelete(f.buf, r.slot)
		case recUpdate:
			if !pageReplace(f.buf, r.slot, r.after) {
				// Slot dead on a page flushed mid-epoch: restore then replace.
				if !pageInsertAt(f.buf, r.slot, r.after) {
					s.pool.unpin(f)
					return fmt.Errorf("store: redo update does not fit on %s page %d", t.name, r.page)
				}
			}
		}
		f.dirty = true
		touched[key] = f
		s.pool.unpin(f)
	}

	// Recompute row counts by scanning the heap: the checkpointed counts
	// predate any evicted-but-uncheckpointed writes.
	for _, t := range s.tables {
		n := 0
		for pg := 0; pg < t.pages; pg++ {
			f, err := s.pool.fetch(pageKey{tid: t.id, page: pg}, pg >= t.diskPages)
			if err != nil {
				return err
			}
			n += pageLiveSlots(f.buf)
			s.pool.unpin(f)
		}
		t.rows = n
	}
	return s.checkpointLocked()
}

// ---------------------------------------------------------------------------
// Checkpoint / close

// checkpointLocked flushes dirty pages, fsyncs heap files, atomically
// rewrites the catalog (with the advanced LSN epoch base), and truncates the
// WAL — in that order, so a crash at any point between steps recovers: until
// the truncate, the WAL still replays idempotently over whatever subset of
// pages reached disk.
func (s *Store) checkpointLocked() error {
	if err := s.pool.flushAll(); err != nil {
		return err
	}
	names := make([]string, 0, len(s.tables))
	for k := range s.tables {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if err := s.tables[k].file.Sync(); err != nil {
			return err
		}
	}
	cat := catalogJSON{NextID: s.nextID, WALBase: s.lsnBase + uint64(s.wal.size)}
	for _, k := range names {
		t := s.tables[k]
		tm := tableMetaJSON{Name: t.name, ID: t.id, Pages: t.pages, Rows: t.rows}
		for _, c := range t.cols {
			tm.Cols = append(tm.Cols, colMetaJSON{Name: c.Name, Type: c.Type.String()})
		}
		cat.Tables = append(cat.Tables, tm)
	}
	data, err := json.MarshalIndent(cat, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, catalogFileName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, catalogFileName)); err != nil {
		return err
	}
	truncated, err := s.wal.reset()
	if err != nil {
		return err
	}
	s.lsnBase += uint64(truncated)
	return nil
}

// Checkpoint flushes all committed state to the heap files and truncates the
// WAL. Must not be called with a transaction open.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

// Close checkpoints and releases all files.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.checkpointLocked()
	s.closeFiles()
	return err
}

func (s *Store) closeFiles() {
	for _, t := range s.byID {
		if t.file != nil {
			t.file.Close()
		}
	}
	s.wal.close()
}

// ---------------------------------------------------------------------------
// Internal (lock-free) table helpers, shared by Tx and recovery.

func (s *Store) createTableLocked(name string, cols []engine.Col) (*table, error) {
	key := strings.ToLower(name)
	if _, ok := s.tables[key]; ok {
		return nil, fmt.Errorf("store: table %q already exists", name)
	}
	own := make([]engine.Col, len(cols))
	for i, c := range cols {
		own[i] = engine.Col{Name: c.Name, Type: c.Type}
	}
	id := s.nextID
	s.nextID++
	f, err := os.OpenFile(s.heapPath(id), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	t := &table{name: name, id: id, cols: own, file: f}
	s.tables[key] = t
	s.byID[id] = t
	return t, nil
}

// dropTableLocked unlinks the table immediately (recovery / commit path).
func (s *Store) dropTableLocked(t *table) {
	delete(s.tables, strings.ToLower(t.name))
	delete(s.byID, t.id)
	s.pool.invalidateTable(t.id)
	t.file.Close()
	os.Remove(s.heapPath(t.id))
}

// ---------------------------------------------------------------------------
// Reads

// Cols reports a table's columns.
func (s *Store) Cols(name string) ([]engine.Col, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[strings.ToLower(catalog.BareName(name))]
	if !ok {
		return nil, false
	}
	out := make([]engine.Col, len(t.cols))
	copy(out, t.cols)
	return out, true
}

// Rows reports a table's row count.
func (s *Store) Rows(name string) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[strings.ToLower(catalog.BareName(name))]
	if !ok {
		return 0, false
	}
	return t.rows, true
}

// Tables lists the store's table names, sorted.
func (s *Store) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for _, t := range s.tables {
		out = append(out, t.name)
	}
	sort.Strings(out)
	return out
}

// heapCursor streams one page's live tuples per Next call.
type heapCursor struct {
	s      *Store
	t      *table
	page   int
	unlock bool // holds the store read lock until Close
	closed bool
}

func (c *heapCursor) Next() ([][]engine.Value, error) {
	for c.page < c.t.pages {
		pg := c.page
		c.page++
		f, err := c.s.pool.fetch(pageKey{tid: c.t.id, page: pg}, pg >= c.t.diskPages)
		if err != nil {
			return nil, err
		}
		var rows [][]engine.Value
		for slot, n := 0, slotCount(f.buf); slot < n; slot++ {
			tb, ok := pageRead(f.buf, slot)
			if !ok {
				continue
			}
			row, err := decodeTuple(tb, len(c.t.cols))
			if err != nil {
				c.s.pool.unpin(f)
				return nil, fmt.Errorf("store: %s page %d slot %d: %w", c.t.name, pg, slot, err)
			}
			rows = append(rows, row)
		}
		c.s.pool.unpin(f)
		if len(rows) > 0 {
			return rows, nil
		}
	}
	return nil, nil
}

func (c *heapCursor) Close() {
	if c.closed {
		return
	}
	c.closed = true
	if c.unlock {
		c.s.mu.RUnlock()
	}
}

// Scan opens a streaming cursor over a table. The cursor holds the store's
// read lock until Close, so a scan never observes a concurrent transaction.
func (s *Store) Scan(name string) (engine.ScanCursor, error) {
	s.mu.RLock()
	t, ok := s.tables[strings.ToLower(catalog.BareName(name))]
	if !ok {
		s.mu.RUnlock()
		return nil, fmt.Errorf("store: table %q does not exist", name)
	}
	return &heapCursor{s: s, t: t, unlock: true}, nil
}

// ScanAll materializes a table's rows — convenience for tests and oracles.
func (s *Store) ScanAll(name string) ([][]engine.Value, error) {
	cur, err := s.Scan(name)
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	var out [][]engine.Value
	for {
		batch, err := cur.Next()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			return out, nil
		}
		out = append(out, batch...)
	}
}

// ---------------------------------------------------------------------------
// engine.TableSource: a Store can directly back a read-only engine DB.

// SourceCols implements engine.TableSource.
func (s *Store) SourceCols(name string) ([]engine.Col, bool) { return s.Cols(name) }

// SourceRows implements engine.TableSource.
func (s *Store) SourceRows(name string) (int, bool) { return s.Rows(name) }

// OpenScan implements engine.TableSource.
func (s *Store) OpenScan(name string) (engine.ScanCursor, error) { return s.Scan(name) }
