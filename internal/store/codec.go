package store

// Tuple codec: each value is a 1-byte tag followed by its payload, so tuples
// are self-describing and columns of any declared type (including the `any`
// type CREATE TABLE AS SELECT can produce) round-trip exactly.

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/catalog"
	"repro/internal/engine"
)

const (
	tagNull  byte = 0
	tagInt   byte = 1
	tagFloat byte = 2
	tagText  byte = 3
	tagBool  byte = 4
)

// encodeTuple appends the row's encoding to dst.
func encodeTuple(dst []byte, row []engine.Value) []byte {
	for _, v := range row {
		switch {
		case v.Null:
			dst = append(dst, tagNull)
		case v.Kind == catalog.TypeInt:
			dst = append(dst, tagInt)
			dst = binary.AppendVarint(dst, v.I)
		case v.Kind == catalog.TypeFloat:
			dst = append(dst, tagFloat)
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
		case v.Kind == catalog.TypeBool:
			b := byte(0)
			if v.B {
				b = 1
			}
			dst = append(dst, tagBool, b)
		default: // text and any other textual kind
			dst = append(dst, tagText)
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		}
	}
	return dst
}

// decodeTuple decodes a tuple of the given arity.
func decodeTuple(data []byte, arity int) ([]engine.Value, error) {
	row := make([]engine.Value, arity)
	for i := 0; i < arity; i++ {
		if len(data) == 0 {
			return nil, fmt.Errorf("store: truncated tuple at value %d", i)
		}
		tag := data[0]
		data = data[1:]
		switch tag {
		case tagNull:
			row[i] = engine.NullValue
		case tagInt:
			n, sz := binary.Varint(data)
			if sz <= 0 {
				return nil, fmt.Errorf("store: bad int at value %d", i)
			}
			data = data[sz:]
			row[i] = engine.IntVal(n)
		case tagFloat:
			if len(data) < 8 {
				return nil, fmt.Errorf("store: bad float at value %d", i)
			}
			row[i] = engine.FloatVal(math.Float64frombits(binary.LittleEndian.Uint64(data)))
			data = data[8:]
		case tagText:
			n, sz := binary.Uvarint(data)
			if sz <= 0 || uint64(len(data)-sz) < n {
				return nil, fmt.Errorf("store: bad text at value %d", i)
			}
			row[i] = engine.TextVal(string(data[sz : sz+int(n)]))
			data = data[sz+int(n):]
		case tagBool:
			if len(data) < 1 {
				return nil, fmt.Errorf("store: bad bool at value %d", i)
			}
			row[i] = engine.BoolVal(data[0] != 0)
			data = data[1:]
		default:
			return nil, fmt.Errorf("store: unknown value tag %d", tag)
		}
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("store: %d trailing tuple bytes", len(data))
	}
	return row, nil
}
