package store

// Slotted heap pages. Each 4 KiB page holds a small header, a slot directory
// growing up from the header, and tuple data growing down from the end:
//
//	[0:8)   pageLSN — the WAL LSN of the last committed transaction applied
//	[8:10)  slotCount
//	[10:12) freeEnd — start of the lowest tuple byte (data grows down)
//	[12:16) reserved
//	[16+4i) slot i: offset u16, length u16; offset 0 marks a dead slot
//
// Deleting a tuple kills its slot but leaves the bytes; insertion compacts
// the data area when the contiguous gap is too small but the live bytes
// would fit. Slot numbers are stable across compaction (scans and WAL
// records address tuples as page/slot), and dead slots are reused by later
// inserts, so a page's slot directory never shrinks but also never leaks.

import "encoding/binary"

// PageSize is the fixed on-disk page size.
const PageSize = 4096

const (
	pageHeaderSize = 16
	slotSize       = 4
)

func pageLSN(b []byte) uint64         { return binary.LittleEndian.Uint64(b[0:8]) }
func setPageLSN(b []byte, lsn uint64) { binary.LittleEndian.PutUint64(b[0:8], lsn) }

func slotCount(b []byte) int       { return int(binary.LittleEndian.Uint16(b[8:10])) }
func setSlotCount(b []byte, n int) { binary.LittleEndian.PutUint16(b[8:10], uint16(n)) }

func freeEnd(b []byte) int       { return int(binary.LittleEndian.Uint16(b[10:12])) }
func setFreeEnd(b []byte, n int) { binary.LittleEndian.PutUint16(b[10:12], uint16(n)) }

// initPage formats b as an empty page. PageSize is an exact u16 overflow
// (4096 fits), so freeEnd stores 4096 directly.
func initPage(b []byte) {
	for i := range b[:pageHeaderSize] {
		b[i] = 0
	}
	setFreeEnd(b, PageSize)
}

func slotAt(b []byte, i int) (offset, length int) {
	base := pageHeaderSize + i*slotSize
	return int(binary.LittleEndian.Uint16(b[base : base+2])),
		int(binary.LittleEndian.Uint16(b[base+2 : base+4]))
}

func setSlot(b []byte, i, offset, length int) {
	base := pageHeaderSize + i*slotSize
	binary.LittleEndian.PutUint16(b[base:base+2], uint16(offset))
	binary.LittleEndian.PutUint16(b[base+2:base+4], uint16(length))
}

// pageRead returns the tuple bytes at a slot, or nil,false for a dead or
// out-of-range slot. The returned slice aliases the page buffer.
func pageRead(b []byte, slot int) ([]byte, bool) {
	if slot < 0 || slot >= slotCount(b) {
		return nil, false
	}
	off, ln := slotAt(b, slot)
	if off == 0 {
		return nil, false
	}
	return b[off : off+ln], true
}

// pageFreeContig is the contiguous gap between the slot directory and the
// tuple data.
func pageFreeContig(b []byte) int {
	return freeEnd(b) - (pageHeaderSize + slotCount(b)*slotSize)
}

// pageLiveBytes sums the live tuple lengths.
func pageLiveBytes(b []byte) int {
	total := 0
	for i, n := 0, slotCount(b); i < n; i++ {
		if off, ln := slotAt(b, i); off != 0 {
			total += ln
		}
	}
	return total
}

// compact rewrites the data area so the live tuples sit contiguously at the
// page end, reclaiming dead-tuple bytes. Slot numbers are preserved.
func compact(b []byte) {
	var scratch [PageSize]byte
	end := PageSize
	n := slotCount(b)
	type placed struct{ slot, off, ln int }
	var live []placed
	for i := 0; i < n; i++ {
		off, ln := slotAt(b, i)
		if off == 0 {
			continue
		}
		end -= ln
		copy(scratch[end:end+ln], b[off:off+ln])
		live = append(live, placed{i, end, ln})
	}
	copy(b[end:], scratch[end:])
	setFreeEnd(b, end)
	for _, p := range live {
		setSlot(b, p.slot, p.off, p.ln)
	}
}

// pageCanFit reports whether a tuple of the given length fits, counting a
// fresh slot entry unless a dead slot is available, allowing compaction.
func pageCanFit(b []byte, ln int) bool {
	need := ln
	if firstDeadSlot(b) < 0 {
		need += slotSize
	}
	if pageFreeContig(b) >= need {
		return true
	}
	// Compaction reclaims dead tuple bytes but not slot entries.
	slots := slotCount(b)
	if firstDeadSlot(b) < 0 {
		slots++
	}
	return PageSize-pageLiveBytes(b)-pageHeaderSize-slots*slotSize >= ln
}

func firstDeadSlot(b []byte) int {
	for i, n := 0, slotCount(b); i < n; i++ {
		if off, _ := slotAt(b, i); off == 0 {
			return i
		}
	}
	return -1
}

// pageInsert places a tuple in the first dead slot (or a new one) and
// reports the slot, or -1 when the tuple cannot fit even after compaction.
func pageInsert(b []byte, tuple []byte) int {
	slot := firstDeadSlot(b)
	if slot < 0 {
		slot = slotCount(b)
	}
	if !pageInsertAt(b, slot, tuple) {
		return -1
	}
	return slot
}

// pageInsertAt places a tuple at a specific slot (which must be dead or
// one past the current count — redo replays recorded placements exactly).
func pageInsertAt(b []byte, slot int, tuple []byte) bool {
	n := slotCount(b)
	if slot > n {
		// Recovery of a page that lost a trailing rolled-back slot: grow the
		// directory with dead slots up to the target.
		for n < slot {
			if pageFreeContig(b) < slotSize {
				return false
			}
			setSlot(b, n, 0, 0)
			n++
			setSlotCount(b, n)
		}
	}
	if slot < n {
		if off, _ := slotAt(b, slot); off != 0 {
			return false // occupied
		}
	}
	newSlot := 0
	if slot == n {
		newSlot = slotSize
	}
	if pageFreeContig(b) < len(tuple)+newSlot {
		if PageSize-pageLiveBytes(b)-pageHeaderSize-(n*slotSize+newSlot) < len(tuple) {
			return false
		}
		compact(b)
		if pageFreeContig(b) < len(tuple)+newSlot {
			return false
		}
	}
	if slot == n {
		setSlotCount(b, n+1)
	}
	end := freeEnd(b) - len(tuple)
	copy(b[end:], tuple)
	setFreeEnd(b, end)
	setSlot(b, slot, end, len(tuple))
	return true
}

// pageDelete kills a slot; reports whether it was live.
func pageDelete(b []byte, slot int) bool {
	if slot < 0 || slot >= slotCount(b) {
		return false
	}
	if off, _ := slotAt(b, slot); off == 0 {
		return false
	}
	setSlot(b, slot, 0, 0)
	return true
}

// pageReplace overwrites the tuple at a live slot, in place when the new
// tuple is no longer than the old one, otherwise via delete + re-insert at
// the same slot (compacting as needed). Reports success; on failure the
// page is unchanged.
func pageReplace(b []byte, slot int, tuple []byte) bool {
	off, ln := slotAt(b, slot)
	if off == 0 || slot >= slotCount(b) {
		return false
	}
	if len(tuple) <= ln {
		copy(b[off:], tuple)
		setSlot(b, slot, off, len(tuple))
		return true
	}
	setSlot(b, slot, 0, 0)
	if pageInsertAt(b, slot, tuple) {
		return true
	}
	setSlot(b, slot, off, ln)
	return false
}

// pageLiveSlots counts live tuples.
func pageLiveSlots(b []byte) int {
	n := 0
	for i, c := 0, slotCount(b); i < c; i++ {
		if off, _ := slotAt(b, i); off != 0 {
			n++
		}
	}
	return n
}
