package store

// Write-ahead log. Frames are [4B payload length][4B CRC32(payload)][payload]
// — the same torn-tail-tolerant framing as the checkpoint store: a scan stops
// at the first short or corrupt frame, so a crash mid-append loses at most
// the unsynced tail, never earlier records.
//
// The log is redo-only and holds committed transactions exclusively: a
// transaction's records are buffered in memory while it runs, written and
// fsynced as one contiguous block (mutation records then a commit record) at
// COMMIT, and never written at all on ROLLBACK. Recovery therefore has no
// undo phase — every complete record sequence ending in a commit record
// replays, anything after the last complete frame is discarded.
//
// LSNs are byte offsets of frame starts, plus a persistent epoch base that
// advances by the truncated size at every checkpoint, so LSNs stay monotonic
// across WAL truncations and page-LSN comparisons remain sound forever.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/engine"
)

// WAL record types.
const (
	recCreate byte = 1 // create table: table + cols in payload
	recDrop   byte = 2 // drop table
	recInsert byte = 3 // tuple placed at page/slot
	recDelete byte = 4 // tuple removed from page/slot (before-image kept)
	recUpdate byte = 5 // tuple replaced in place at page/slot
	recCommit byte = 6 // transaction commit marker
)

const walFrameHeader = 8

type walRec struct {
	lsn    uint64
	typ    byte
	txn    uint64
	table  string
	page   int
	slot   int
	before []byte
	after  []byte
	cols   []engine.Col // create only
}

type wal struct {
	f     *os.File
	size  int64
	bytes atomic.Int64 // appended this process, for Stats
	recs  atomic.Int64
}

func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &wal{f: f, size: st.Size()}, nil
}

// appendAll writes the payloads as one contiguous block and fsyncs. It
// returns the file offset of each frame start.
func (w *wal) appendAll(payloads [][]byte) ([]int64, error) {
	total := 0
	for _, p := range payloads {
		total += walFrameHeader + len(p)
	}
	buf := make([]byte, 0, total)
	offsets := make([]int64, len(payloads))
	off := w.size
	for i, p := range payloads {
		offsets[i] = off
		var hdr [walFrameHeader]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(p))
		buf = append(buf, hdr[:]...)
		buf = append(buf, p...)
		off += int64(walFrameHeader + len(p))
	}
	if _, err := w.f.WriteAt(buf, w.size); err != nil {
		return nil, err
	}
	if err := w.f.Sync(); err != nil {
		return nil, err
	}
	w.size = off
	w.bytes.Add(int64(total))
	w.recs.Add(int64(len(payloads)))
	return offsets, nil
}

// scan decodes every complete frame, stopping silently at a torn tail.
func (w *wal) scan() ([]walRec, error) {
	data := make([]byte, w.size)
	if w.size > 0 {
		if _, err := w.f.ReadAt(data, 0); err != nil {
			return nil, err
		}
	}
	var recs []walRec
	off := 0
	for off+walFrameHeader <= len(data) {
		ln := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if ln <= 0 || off+walFrameHeader+ln > len(data) {
			break // torn tail
		}
		payload := data[off+walFrameHeader : off+walFrameHeader+ln]
		if crc32.ChecksumIEEE(payload) != sum {
			break // torn tail
		}
		rec, err := decodeWalRec(payload)
		if err != nil {
			return nil, fmt.Errorf("store: corrupt WAL record at offset %d: %w", off, err)
		}
		rec.lsn = uint64(off)
		recs = append(recs, rec)
		off += walFrameHeader + ln
	}
	return recs, nil
}

// reset truncates the log (checkpoint) and returns the truncated size so the
// caller can advance the LSN epoch base.
func (w *wal) reset() (int64, error) {
	n := w.size
	if err := w.f.Truncate(0); err != nil {
		return 0, err
	}
	if err := w.f.Sync(); err != nil {
		return 0, err
	}
	w.size = 0
	return n, nil
}

func (w *wal) close() error { return w.f.Close() }

func encodeWalRec(r walRec) []byte {
	b := []byte{r.typ}
	b = binary.AppendUvarint(b, r.txn)
	b = binary.AppendUvarint(b, uint64(len(r.table)))
	b = append(b, r.table...)
	b = binary.AppendUvarint(b, uint64(r.page))
	b = binary.AppendUvarint(b, uint64(r.slot))
	b = binary.AppendUvarint(b, uint64(len(r.before)))
	b = append(b, r.before...)
	b = binary.AppendUvarint(b, uint64(len(r.after)))
	b = append(b, r.after...)
	b = binary.AppendUvarint(b, uint64(len(r.cols)))
	for _, c := range r.cols {
		b = binary.AppendUvarint(b, uint64(len(c.Name)))
		b = append(b, c.Name...)
		b = append(b, byte(c.Type))
	}
	return b
}

func decodeWalRec(p []byte) (walRec, error) {
	var r walRec
	fail := func() (walRec, error) { return r, fmt.Errorf("short record") }
	if len(p) < 1 {
		return fail()
	}
	r.typ = p[0]
	p = p[1:]
	uv := func() (uint64, bool) {
		n, sz := binary.Uvarint(p)
		if sz <= 0 {
			return 0, false
		}
		p = p[sz:]
		return n, true
	}
	bytesField := func() ([]byte, bool) {
		n, ok := uv()
		if !ok || uint64(len(p)) < n {
			return nil, false
		}
		out := append([]byte(nil), p[:n]...)
		p = p[n:]
		return out, true
	}
	var ok bool
	if r.txn, ok = uv(); !ok {
		return fail()
	}
	tb, ok := bytesField()
	if !ok {
		return fail()
	}
	r.table = string(tb)
	pg, ok := uv()
	if !ok {
		return fail()
	}
	sl, ok := uv()
	if !ok {
		return fail()
	}
	r.page, r.slot = int(pg), int(sl)
	if r.before, ok = bytesField(); !ok {
		return fail()
	}
	if r.after, ok = bytesField(); !ok {
		return fail()
	}
	nc, ok := uv()
	if !ok {
		return fail()
	}
	for i := uint64(0); i < nc; i++ {
		nb, ok := bytesField()
		if !ok {
			return fail()
		}
		if len(p) < 1 {
			return fail()
		}
		r.cols = append(r.cols, engine.Col{Name: string(nb), Type: catalog.Type(p[0])})
		p = p[1:]
	}
	if len(p) != 0 {
		return r, fmt.Errorf("%d trailing record bytes", len(p))
	}
	return r, nil
}
