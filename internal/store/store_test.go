package store

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/catalog"
	"repro/internal/engine"
)

func intRow(vals ...int64) []engine.Value {
	row := make([]engine.Value, len(vals))
	for i, v := range vals {
		row[i] = engine.IntVal(v)
	}
	return row
}

var testCols = []engine.Col{
	{Name: "id", Type: catalog.TypeInt},
	{Name: "name", Type: catalog.TypeText},
	{Name: "score", Type: catalog.TypeFloat},
}

func mixedRow(id int64, name string, score float64) []engine.Value {
	return []engine.Value{engine.IntVal(id), engine.TextVal(name), engine.FloatVal(score)}
}

func sortedRows(t *testing.T, s *Store, table string) []string {
	t.Helper()
	rows, err := s.ScanAll(table)
	if err != nil {
		t.Fatalf("ScanAll(%s): %v", table, err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = engine.FormatRow(r)
	}
	sort.Strings(out)
	return out
}

func TestStoreBasicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.CreateTable("users", testCols); err != nil {
		t.Fatal(err)
	}
	want := make([]string, 0, 100)
	var rows [][]engine.Value
	for i := 0; i < 100; i++ {
		r := mixedRow(int64(i), fmt.Sprintf("user%03d", i), float64(i)/4)
		rows = append(rows, r)
		want = append(want, engine.FormatRow(r))
	}
	if err := tx.Append("users", rows); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	sort.Strings(want)
	if got := sortedRows(t, s, "users"); !reflect.DeepEqual(got, want) {
		t.Fatalf("round-trip mismatch:\ngot  %v\nwant %v", got[:3], want[:3])
	}
	if n, _ := s.Rows("users"); n != 100 {
		t.Fatalf("Rows = %d, want 100", n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean reopen: catalog-backed, no recovery.
	s2, err := Open(dir, Options{PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := sortedRows(t, s2, "users"); !reflect.DeepEqual(got, want) {
		t.Fatal("rows diverge after clean reopen")
	}
	if n, _ := s2.Rows("users"); n != 100 {
		t.Fatalf("Rows after reopen = %d, want 100", n)
	}
}

func TestStoreRollbackRestoresBeforeImages(t *testing.T) {
	s, err := Open(t.TempDir(), Options{PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tx, _ := s.Begin()
	if err := tx.CreateTable("t", testCols); err != nil {
		t.Fatal(err)
	}
	var rows [][]engine.Value
	for i := 0; i < 50; i++ {
		rows = append(rows, mixedRow(int64(i), fmt.Sprintf("n%02d", i), float64(i)))
	}
	if err := tx.Append("t", rows); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	before := sortedRows(t, s, "t")

	tx, _ = s.Begin()
	if _, err := tx.Mutate("t", func(row []engine.Value) (engine.MutOp, []engine.Value, error) {
		if row[0].I%2 == 0 {
			return engine.MutDelete, nil, nil
		}
		next := append([]engine.Value(nil), row...)
		next[1] = engine.TextVal("changed-to-a-much-longer-value-" + row[1].S)
		return engine.MutUpdate, next, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Append("t", [][]engine.Value{mixedRow(999, "extra", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := sortedRows(t, s, "t"); !reflect.DeepEqual(got, before) {
		t.Fatalf("rollback did not restore state:\ngot  %d rows\nwant %d rows", len(got), len(before))
	}
	if n, _ := s.Rows("t"); n != 50 {
		t.Fatalf("Rows after rollback = %d, want 50", n)
	}
}

func TestStoreDropAndRecreate(t *testing.T) {
	s, err := Open(t.TempDir(), Options{PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ses := NewSession(s)
	if err := ses.CreateTable("t", testCols); err != nil {
		t.Fatal(err)
	}
	if err := ses.Append("t", [][]engine.Value{mixedRow(1, "a", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := ses.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Cols("t"); ok {
		t.Fatal("table still visible after drop")
	}
	// Recreate under the same name: must not alias the old heap.
	if err := ses.CreateTable("t", testCols[:1]); err != nil {
		t.Fatal(err)
	}
	if err := ses.Append("t", [][]engine.Value{intRow(7)}); err != nil {
		t.Fatal(err)
	}
	got := sortedRows(t, s, "t")
	if len(got) != 1 || got[0] != "( 7 )" {
		t.Fatalf("recreated table contents = %v", got)
	}

	// Rollback across drop restores the old table.
	tx, _ := s.Begin()
	if err := tx.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := tx.CreateTable("t", testCols); err != nil {
		t.Fatal(err)
	}
	if err := tx.Append("t", [][]engine.Value{mixedRow(8, "b", 2)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := sortedRows(t, s, "t"); len(got) != 1 || got[0] != "( 7 )" {
		t.Fatalf("rollback across drop/create: contents = %v", got)
	}
}

func TestStoreEvictionBeyondPoolCapacity(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{PoolPages: 2}) // force heavy eviction
	if err != nil {
		t.Fatal(err)
	}
	ses := NewSession(s)
	if err := ses.CreateTable("big", testCols); err != nil {
		t.Fatal(err)
	}
	want := make([]string, 0, 2000)
	var rows [][]engine.Value
	for i := 0; i < 2000; i++ {
		r := mixedRow(int64(i), fmt.Sprintf("padding-padding-%06d", i), float64(i))
		rows = append(rows, r)
		want = append(want, engine.FormatRow(r))
	}
	// Several separate commits so committed-dirty pages cycle through
	// eviction.
	for i := 0; i < len(rows); i += 250 {
		if err := ses.Append("big", rows[i:i+250]); err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(want)
	if got := sortedRows(t, s, "big"); !reflect.DeepEqual(got, want) {
		t.Fatal("contents diverge under forced eviction")
	}
	st := s.Stats()
	if st.PagesWritten == 0 || st.PagesRead == 0 {
		t.Fatalf("expected eviction I/O, got stats %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{PoolPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := sortedRows(t, s2, "big"); !reflect.DeepEqual(got, want) {
		t.Fatal("contents diverge after reopen")
	}
}

func TestStoreRecoveryAfterUncleanShutdown(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	ses := NewSession(s)
	if err := ses.CreateTable("t", testCols); err != nil {
		t.Fatal(err)
	}
	var rows [][]engine.Value
	for i := 0; i < 120; i++ {
		rows = append(rows, mixedRow(int64(i), fmt.Sprintf("r%03d", i), float64(i)))
	}
	if err := ses.Append("t", rows); err != nil {
		t.Fatal(err)
	}
	want := sortedRows(t, s, "t")
	// Simulate kill -9: drop the store on the floor without Close — the WAL
	// has the committed transactions, the heap may have any subset of pages.
	s.closeFiles()

	s2, err := Open(dir, Options{PoolPages: 4})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer s2.Close()
	if got := sortedRows(t, s2, "t"); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered contents diverge: got %d rows, want %d", len(got), len(want))
	}
	if n, _ := s2.Rows("t"); n != 120 {
		t.Fatalf("recovered Rows = %d, want 120", n)
	}
}
