package store

import (
	"bytes"
	"fmt"
	"testing"
)

func TestPageInsertDeleteCompact(t *testing.T) {
	b := make([]byte, PageSize)
	initPage(b)
	var slots []int
	for i := 0; i < 20; i++ {
		s := pageInsert(b, bytes.Repeat([]byte{byte(i)}, 50+i))
		if s < 0 {
			t.Fatalf("insert %d failed", i)
		}
		slots = append(slots, s)
	}
	// Kill every other tuple, then insert something that only fits after
	// compaction reclaims the dead bytes.
	for i := 0; i < 20; i += 2 {
		if !pageDelete(b, slots[i]) {
			t.Fatalf("delete slot %d failed", slots[i])
		}
	}
	free := pageFreeContig(b)
	big := bytes.Repeat([]byte{0xAB}, free+100)
	if !pageCanFit(b, len(big)) {
		t.Fatalf("pageCanFit(%d) = false with dead space available", len(big))
	}
	s := pageInsert(b, big)
	if s < 0 {
		t.Fatal("insert after compaction failed")
	}
	got, ok := pageRead(b, s)
	if !ok || !bytes.Equal(got, big) {
		t.Fatal("compaction corrupted the inserted tuple")
	}
	// Survivors intact?
	for i := 1; i < 20; i += 2 {
		tb, ok := pageRead(b, slots[i])
		if !ok || !bytes.Equal(tb, bytes.Repeat([]byte{byte(i)}, 50+i)) {
			t.Fatalf("tuple at slot %d corrupted after compaction", slots[i])
		}
	}
}

func TestPageReplaceGrowAndShrink(t *testing.T) {
	b := make([]byte, PageSize)
	initPage(b)
	s1 := pageInsert(b, []byte("aaaa"))
	s2 := pageInsert(b, []byte("bbbb"))
	if !pageReplace(b, s1, []byte("cc")) { // shrink in place
		t.Fatal("shrink replace failed")
	}
	if got, _ := pageRead(b, s1); !bytes.Equal(got, []byte("cc")) {
		t.Fatal("shrink lost data")
	}
	long := bytes.Repeat([]byte{'x'}, 300)
	if !pageReplace(b, s1, long) { // grow: delete + reinsert at same slot
		t.Fatal("grow replace failed")
	}
	if got, _ := pageRead(b, s1); !bytes.Equal(got, long) {
		t.Fatal("grow lost data")
	}
	if got, _ := pageRead(b, s2); !bytes.Equal(got, []byte("bbbb")) {
		t.Fatal("neighbor tuple disturbed")
	}
}

func TestPageSlotReuse(t *testing.T) {
	b := make([]byte, PageSize)
	initPage(b)
	s0 := pageInsert(b, []byte("one"))
	pageInsert(b, []byte("two"))
	pageDelete(b, s0)
	s2 := pageInsert(b, []byte("three"))
	if s2 != s0 {
		t.Fatalf("dead slot not reused: got slot %d, want %d", s2, s0)
	}
	if slotCount(b) != 2 {
		t.Fatalf("slot directory grew to %d", slotCount(b))
	}
}

func TestPageInsertAtExtendsDirectory(t *testing.T) {
	b := make([]byte, PageSize)
	initPage(b)
	if !pageInsertAt(b, 3, []byte("redo")) {
		t.Fatal("insertAt past directory end failed")
	}
	if slotCount(b) != 4 {
		t.Fatalf("slotCount = %d, want 4", slotCount(b))
	}
	for i := 0; i < 3; i++ {
		if _, ok := pageRead(b, i); ok {
			t.Fatalf("filler slot %d is live", i)
		}
	}
	if got, ok := pageRead(b, 3); !ok || !bytes.Equal(got, []byte("redo")) {
		t.Fatal("tuple missing at forced slot")
	}
}

func TestTupleCodecFuzzLengths(t *testing.T) {
	for n := 0; n < 40; n++ {
		row := intRow()
		for i := 0; i < n%5; i++ {
			row = append(row, intRow(int64(i * 7))[0])
		}
		enc := encodeTuple(nil, row)
		dec, err := decodeTuple(enc, len(row))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if fmt.Sprint(dec) != fmt.Sprint(row) {
			t.Fatalf("n=%d: round-trip mismatch", n)
		}
	}
}
