package equiv

// Store-backed instances. Memory mode materializes one engine.DB per
// (seed, rows) and caches it forever; store mode instead shares ONE durable
// store across every seed. The schema's tables are created once (empty);
// each per-seed check loads that seed's generated rows inside a transaction,
// runs both queries over streaming heap scans, and rolls the transaction
// back, leaving the tables empty again for the next seed. Rollback restores
// before-images in the buffer pool and writes nothing to the WAL, so the
// heap files are reused across seeds instead of being rebuilt — the speedup
// is measured by BenchmarkStoreSeed{Rollback,Rebuild} and recorded in
// PERF.md.

import (
	"context"
	"fmt"

	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/sqlast"
	"repro/internal/store"
)

// openStore opens (or creates) the shared store and ensures every schema
// table exists, empty. Safe for concurrent use; the first caller does the
// work.
func (c *Checker) openStore() (*store.Store, error) {
	c.storeOnce.Do(func() {
		st, err := store.Open(c.StoreDir, store.Options{PoolPages: c.StorePoolPages})
		if err != nil {
			c.storeErr = err
			return
		}
		ses := store.NewSession(st)
		for _, t := range c.Schema.Tables() {
			if _, ok := st.Cols(t.Name); ok {
				continue // reopened directory: the table persists
			}
			cols := make([]engine.Col, len(t.Columns))
			for i, col := range t.Columns {
				cols[i] = engine.Col{Name: col.Name, Type: col.Type}
			}
			if err := ses.CreateTable(t.Name, cols); err != nil {
				st.Close()
				c.storeErr = fmt.Errorf("creating %s: %w", t.Name, err)
				return
			}
		}
		c.store = st
	})
	return c.store, c.storeErr
}

// checkSeedStore is the store-mode per-seed check: load the seed's rows in a
// transaction, query both sides through the session's streaming scans, roll
// back. The store is single-writer, so concurrent seeds serialize on Begin;
// verdicts are unaffected (each seed sees exactly its own rows).
func (c *Checker) checkSeedStore(ctx context.Context, seed int64, rows int, a, b *sqlast.SelectStmt) (bool, error) {
	st, err := c.openStore()
	if err != nil {
		return false, err
	}
	ses := store.NewSession(st)
	if err := ses.Begin(); err != nil {
		return false, err
	}
	defer func() {
		if ses.InTxn() {
			ses.Rollback()
		}
	}()
	for _, t := range c.Schema.Tables() {
		rel := datagen.GenTable(t, datagen.Config{Seed: seed, Rows: rows})
		if err := ses.Append(t.Name, rel.Rows); err != nil {
			return false, fmt.Errorf("loading %s: %w", t.Name, err)
		}
	}
	db := engine.NewDB(c.Schema)
	db.Source = ses
	e := engine.New(db)
	e.Parallel = c.Parallel
	e.Optimize = !c.NoOptimize
	defer func() { c.engineOps.Add(e.Ops()) }()
	ra, err := e.QueryCtx(ctx, a)
	if err != nil {
		return false, fmt.Errorf("left query failed: %w", err)
	}
	rb, err := e.QueryCtx(ctx, b)
	if err != nil {
		return false, fmt.Errorf("right query failed: %w", err)
	}
	ordered := len(a.OrderBy) > 0 && len(b.OrderBy) > 0
	return engine.EqualRelations(ra, rb, ordered), nil
}

// StoreStats reports the shared store's I/O counters (zero value in memory
// mode or before the first store-mode check).
func (c *Checker) StoreStats() store.Stats {
	if c.store == nil {
		return store.Stats{}
	}
	return c.store.Stats()
}

// Close releases the store backing store-mode instances. Memory-mode
// checkers need no cleanup; Close is then a no-op.
func (c *Checker) Close() error {
	if c.store != nil {
		return c.store.Close()
	}
	return nil
}
