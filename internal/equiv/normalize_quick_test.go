package equiv

import (
	"math/rand"
	"testing"

	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

// Property: Normalize is idempotent — normalizing an already-normalized
// query changes nothing — over a large population of random ASTs.
func TestNormalizeIdempotentRandom(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 300; i++ {
		sel := sqlast.RandSelect(r, sqlast.RandConfig{})
		once := Normalize(sel)
		reparsed, err := sqlparse.ParseSelect(once)
		if err != nil {
			t.Fatalf("iteration %d: normalized form does not parse: %v\n%s", i, err, once)
		}
		twice := Normalize(reparsed)
		if once != twice {
			t.Fatalf("iteration %d: Normalize not idempotent:\n once: %s\ntwice: %s", i, once, twice)
		}
	}
}

// Property: Normalize never changes query semantics — the original and the
// normalized form are empirically equivalent on the engine.
func TestNormalizePreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	checker := sdssChecker()
	queries := []string{
		"SELECT plate FROM SpecObj WHERE z BETWEEN 0.5 AND 1.5 AND plate IN ( 1 , 2 , 3 )",
		"SELECT plate FROM SpecObj WHERE NOT ( z <= 0.5 ) AND mjd > 55000",
		"SELECT DISTINCT plate , mjd FROM SpecObj WHERE class = 'GALAXY'",
		"SELECT s.plate , p.ra FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid WHERE p.dec > 0",
		"WITH sub_q AS ( SELECT plate FROM SpecObj WHERE z > 1 ) SELECT * FROM sub_q",
	}
	for _, sql := range queries {
		sel, err := sqlparse.ParseSelect(sql)
		if err != nil {
			t.Fatal(err)
		}
		normalized, err := sqlparse.ParseSelect(Normalize(sel))
		if err != nil {
			t.Fatalf("normalized form of %q does not parse: %v", sql, err)
		}
		equal, err := checker.Equivalent(sel, normalized)
		if err != nil {
			t.Fatalf("executing %q: %v", sql, err)
		}
		if !equal {
			t.Errorf("Normalize changed semantics of %q ->\n%s", sql, Normalize(sel))
		}
	}
	_ = r
}

// Property: rule equivalence is symmetric.
func TestRuleEquivalentSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 150; i++ {
		a := sqlast.RandSelect(r, sqlast.RandConfig{})
		b := sqlast.RandSelect(r, sqlast.RandConfig{})
		if RuleEquivalent(a, b) != RuleEquivalent(b, a) {
			t.Fatalf("asymmetric rule equivalence:\nA: %s\nB: %s", sqlast.Print(a), sqlast.Print(b))
		}
		// Self-equivalence must always hold.
		if !RuleEquivalent(a, a) {
			t.Fatalf("self-equivalence failed for %s", sqlast.Print(a))
		}
	}
}

// Property: every equivalence transformation yields a pair the classifier
// maps to *some* type and Similarity stays within [0,1].
func TestSimilarityBoundsAndClassifier(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	base := "SELECT s.plate FROM SpecObj AS s JOIN PlateX AS px ON s.plate = px.plate WHERE s.z > 0.5 AND s.mjd BETWEEN 50000 AND 58000 AND s.plate IN ( 1 , 2 )"
	sel, err := sqlparse.ParseSelect(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, typ := range append(EquivTypes(), NonEquivTypes()...) {
		out, ok := Transform(sel, typ, r)
		if !ok {
			continue
		}
		s := Similarity(base, sqlast.Print(out))
		if s < 0 || s > 1 {
			t.Errorf("Similarity out of range for %s: %v", typ, s)
		}
		if got := ClassifyPair(sel, out); got == "" {
			t.Errorf("ClassifyPair returned empty for %s", typ)
		}
	}
	if Similarity(base, base) != 1 {
		t.Error("self-similarity must be 1")
	}
}

// DiffStats must be symmetric under operand swap (added/removed exchange).
func TestDiffStatsSymmetry(t *testing.T) {
	a := "SELECT plate FROM SpecObj WHERE z > 0.5"
	b := "SELECT plate , mjd FROM SpecObj"
	add1, rem1 := DiffStats(a, b)
	add2, rem2 := DiffStats(b, a)
	if add1 != rem2 || rem1 != add2 {
		t.Errorf("DiffStats not symmetric: (%d,%d) vs (%d,%d)", add1, rem1, add2, rem2)
	}
	if add, rem := DiffStats(a, a); add != 0 || rem != 0 {
		t.Errorf("self diff = (%d,%d)", add, rem)
	}
}
