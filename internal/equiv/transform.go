// Package equiv implements the query-equivalence machinery: ten
// equivalence-preserving and eight non-equivalence AST transformations used
// to build the query_equiv datasets, plus rule-based and engine-backed
// checkers that validate generated pairs.
package equiv

import (
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/sqlast"
)

// Type names one transformation. Equivalence types follow the paper's
// terminology where given (swap-subqueries, join-nested, cte,
// reorder-conditions, agg-function, change-join-condition,
// logical-conditions, value-change); the rest complete the paper's "ten
// equivalences, eight non-equivalences".
type Type string

// Equivalence-preserving transformations.
const (
	ReorderConditions Type = "reorder-conditions"
	CTEWrap           Type = "cte"
	JoinNested        Type = "join-nested"
	NestedJoin        Type = "nested-join"
	SwapSubqueries    Type = "swap-subqueries" // IN <-> correlated EXISTS
	BetweenSplit      Type = "between-split"
	InListOr          Type = "in-list-or"
	NotPushdown       Type = "not-pushdown"
	DistinctGroupBy   Type = "distinct-groupby"
	CommuteJoin       Type = "commute-join"
)

// Non-equivalence transformations.
const (
	AggFunction         Type = "agg-function"
	ChangeJoinCondition Type = "change-join-condition"
	LogicalConditions   Type = "logical-conditions"
	ValueChange         Type = "value-change"
	ComparisonOp        Type = "comparison-op"
	DropPredicate       Type = "drop-predicate"
	ProjectionChange    Type = "projection-change"
	DistinctToggle      Type = "distinct-toggle"
)

// EquivTypes lists the ten equivalence-preserving transformations.
func EquivTypes() []Type {
	return []Type{
		ReorderConditions, CTEWrap, JoinNested, NestedJoin, SwapSubqueries,
		BetweenSplit, InListOr, NotPushdown, DistinctGroupBy, CommuteJoin,
	}
}

// NonEquivTypes lists the eight non-equivalence transformations.
func NonEquivTypes() []Type {
	return []Type{
		AggFunction, ChangeJoinCondition, LogicalConditions, ValueChange,
		ComparisonOp, DropPredicate, ProjectionChange, DistinctToggle,
	}
}

// IsEquivalence reports whether the type preserves query semantics.
func IsEquivalence(t Type) bool {
	for _, e := range EquivTypes() {
		if e == t {
			return true
		}
	}
	return false
}

// Transform applies the named transformation to a copy of the SELECT. It
// returns false when the query has no applicable site.
func Transform(sel *sqlast.SelectStmt, typ Type, r *rand.Rand) (*sqlast.SelectStmt, bool) {
	out := sqlast.CloneSelect(sel)
	var ok bool
	switch typ {
	case ReorderConditions:
		ok = reorderConditions(out, r)
	case CTEWrap:
		out, ok = cteWrap(out)
	case JoinNested:
		ok = joinToNested(out)
	case NestedJoin:
		ok = nestedToJoin(out)
	case SwapSubqueries:
		ok = inToExists(out)
	case BetweenSplit:
		ok = betweenSplit(out)
	case InListOr:
		ok = inListToOr(out)
	case NotPushdown:
		ok = notPushdown(out)
	case DistinctGroupBy:
		ok = distinctToGroupBy(out)
	case CommuteJoin:
		ok = commuteJoin(out)
	case AggFunction:
		ok = swapAggFunction(out)
	case ChangeJoinCondition:
		ok = changeJoinType(out)
	case LogicalConditions:
		ok = flipLogical(out)
	case ValueChange:
		ok = changeValue(out, r)
	case ComparisonOp:
		ok = weakenComparison(out)
	case DropPredicate:
		ok = dropPredicate(out)
	case ProjectionChange:
		ok = changeProjection(out)
	case DistinctToggle:
		ok = toggleDistinct(out)
	default:
		return nil, false
	}
	if !ok {
		return nil, false
	}
	return out, true
}

// ---------------------------------------------------------------------------
// Equivalence-preserving transformations

// reorderConditions rotates the top-level AND conjuncts of WHERE.
func reorderConditions(sel *sqlast.SelectStmt, r *rand.Rand) bool {
	conj := conjuncts(sel.Where)
	if len(conj) < 2 {
		return false
	}
	// Rotate by a non-zero offset so the result always differs.
	k := 1 + r.Intn(len(conj)-1)
	rotated := append(append([]sqlast.Expr{}, conj[k:]...), conj[:k]...)
	sel.Where = sqlast.And(rotated...)
	return true
}

func conjuncts(e sqlast.Expr) []sqlast.Expr {
	bin, ok := e.(*sqlast.Binary)
	if ok && bin.Op == "AND" {
		return append(conjuncts(bin.L), conjuncts(bin.R)...)
	}
	if e == nil {
		return nil
	}
	return []sqlast.Expr{e}
}

// cteWrap rewrites q as WITH sub AS ( q ) SELECT * FROM sub (the paper's Q9
// pattern). Queries that already use CTEs or set ops are skipped to avoid
// scope capture.
func cteWrap(sel *sqlast.SelectStmt) (*sqlast.SelectStmt, bool) {
	if len(sel.With) > 0 || sel.SetOp != nil {
		return nil, false
	}
	// Star projections through a derived name change column sets only when
	// duplicated names exist; accept plain selects.
	return &sqlast.SelectStmt{
		With:  []sqlast.CTE{{Name: "sub_q", Select: sel}},
		Items: []sqlast.SelectItem{{Expr: &sqlast.Star{}}},
		From:  []sqlast.TableRef{&sqlast.TableName{Name: "sub_q"}},
	}, true
}

// joinToNested converts a two-table equi-join whose projection touches only
// the left side into an IN subquery (the paper's Q8). Multiplicity can in
// principle differ; generated pairs are validated empirically before use.
func joinToNested(sel *sqlast.SelectStmt) bool {
	if len(sel.From) != 1 {
		return false
	}
	j, ok := sel.From[0].(*sqlast.Join)
	if !ok || j.Type != "INNER" || j.On == nil {
		return false
	}
	left, lok := j.Left.(*sqlast.TableName)
	right, rok := j.Right.(*sqlast.TableName)
	if !lok || !rok {
		return false
	}
	on, ok := j.On.(*sqlast.Binary)
	if !ok || on.Op != "=" {
		return false
	}
	lc, lcok := on.L.(*sqlast.ColumnRef)
	rc, rcok := on.R.(*sqlast.ColumnRef)
	if !lcok || !rcok {
		return false
	}
	leftBinding := bindingOf(left)
	rightBinding := bindingOf(right)
	// Orient so lc belongs to the left table.
	if strings.EqualFold(lc.Table, rightBinding) && strings.EqualFold(rc.Table, leftBinding) {
		lc, rc = rc, lc
	} else if !strings.EqualFold(lc.Table, leftBinding) || !strings.EqualFold(rc.Table, rightBinding) {
		return false
	}
	// Projection and WHERE must reference only the left binding.
	if referencesBinding(sel, rightBinding, leftBinding) {
		return false
	}
	sel.From = []sqlast.TableRef{left}
	membership := &sqlast.In{
		X: sqlast.Col(lc.Table, lc.Name),
		Sub: &sqlast.SelectStmt{
			Items: []sqlast.SelectItem{{Expr: sqlast.Col("", rc.Name)}},
			From:  []sqlast.TableRef{&sqlast.TableName{Name: right.Name}},
		},
	}
	sel.Where = sqlast.And(sel.Where, membership)
	return true
}

func bindingOf(t *sqlast.TableName) string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// referencesBinding reports whether any reference outside the join condition
// uses the given binding; other references must use onlyBinding.
func referencesBinding(sel *sqlast.SelectStmt, binding, onlyBinding string) bool {
	found := false
	check := func(e sqlast.Expr) {
		sqlast.Walk(e, func(n sqlast.Node) bool {
			if cr, ok := n.(*sqlast.ColumnRef); ok {
				if strings.EqualFold(cr.Table, binding) {
					found = true
				}
				if cr.Table == "" {
					found = true // unqualified: could come from either side
				}
			}
			if _, ok := n.(*sqlast.Star); ok {
				found = true
			}
			return true
		})
	}
	for _, item := range sel.Items {
		check(item.Expr)
	}
	check(sel.Where)
	check(sel.Having)
	for _, gexpr := range sel.GroupBy {
		check(gexpr)
	}
	for _, o := range sel.OrderBy {
		check(o.Expr)
	}
	return found
}

// nestedToJoin converts x IN (SELECT y FROM B [WHERE p]) into a join with a
// DISTINCT-protected derived table, preserving multiplicity.
func nestedToJoin(sel *sqlast.SelectStmt) bool {
	if len(sel.From) != 1 {
		return false
	}
	base, ok := sel.From[0].(*sqlast.TableName)
	if !ok {
		return false
	}
	conj := conjuncts(sel.Where)
	for i, c := range conj {
		in, ok := c.(*sqlast.In)
		if !ok || in.Sub == nil || in.Not {
			continue
		}
		if len(in.Sub.Items) != 1 || len(in.Sub.From) != 1 {
			continue
		}
		innerCol, ok := in.Sub.Items[0].Expr.(*sqlast.ColumnRef)
		if !ok {
			continue
		}
		outerCol, ok := in.X.(*sqlast.ColumnRef)
		if !ok {
			continue
		}
		// Derived table with DISTINCT keeps the semi-join semantics.
		derived := sqlast.CloneSelect(in.Sub)
		derived.Distinct = true
		outerBinding := bindingOf(base)
		join := &sqlast.Join{
			Left:  base,
			Right: &sqlast.SubqueryTable{Select: derived, Alias: "dj"},
			Type:  "INNER",
			On: sqlast.Eq(
				sqlast.Col(outerBinding, outerCol.Name),
				sqlast.Col("dj", innerCol.Name),
			),
		}
		// Requalify unqualified outer references so they stay unambiguous.
		if outerCol.Table == "" {
			requalifyColumns(sel, outerBinding)
			join.On = sqlast.Eq(
				sqlast.Col(outerBinding, outerCol.Name),
				sqlast.Col("dj", innerCol.Name),
			)
		}
		sel.From = []sqlast.TableRef{join}
		rest := append(append([]sqlast.Expr{}, conj[:i]...), conj[i+1:]...)
		sel.Where = sqlast.And(rest...)
		return true
	}
	return false
}

// requalifyColumns qualifies every unqualified column reference of the
// top-level select with the binding (used when a join introduces a second
// relation).
func requalifyColumns(sel *sqlast.SelectStmt, binding string) {
	fix := func(e sqlast.Expr) {
		sqlast.Walk(e, func(n sqlast.Node) bool {
			if _, isSub := n.(*sqlast.SelectStmt); isSub {
				return false
			}
			if cr, ok := n.(*sqlast.ColumnRef); ok && cr.Table == "" {
				cr.Table = binding
			}
			return true
		})
	}
	for _, item := range sel.Items {
		fix(item.Expr)
	}
	fix(sel.Where)
	fix(sel.Having)
	for _, gexpr := range sel.GroupBy {
		fix(gexpr)
	}
	for _, o := range sel.OrderBy {
		fix(o.Expr)
	}
}

// inToExists rewrites x IN (SELECT y FROM B WHERE p) as
// EXISTS (SELECT 1 FROM B WHERE p AND y = x) — the subquery-form swap.
func inToExists(sel *sqlast.SelectStmt) bool {
	conj := conjuncts(sel.Where)
	for i, c := range conj {
		in, ok := c.(*sqlast.In)
		if !ok || in.Sub == nil || in.Not {
			continue
		}
		if len(in.Sub.Items) != 1 || len(in.Sub.From) != 1 {
			continue
		}
		innerCol, ok := in.Sub.Items[0].Expr.(*sqlast.ColumnRef)
		if !ok {
			continue
		}
		outerCol, ok := in.X.(*sqlast.ColumnRef)
		if !ok {
			continue
		}
		if outerCol.Table == "" {
			// Correlation requires a distinguishable outer qualifier.
			continue
		}
		inner := sqlast.CloneSelect(in.Sub)
		inner.Items = []sqlast.SelectItem{{Expr: sqlast.Number("1")}}
		corr := sqlast.Eq(sqlast.Col(innerCol.Table, innerCol.Name), sqlast.Col(outerCol.Table, outerCol.Name))
		if innerCol.Table == "" {
			corr = sqlast.Eq(sqlast.Col("", innerCol.Name), sqlast.Col(outerCol.Table, outerCol.Name))
		}
		inner.Where = sqlast.And(inner.Where, corr)
		conj[i] = &sqlast.Exists{Sub: inner}
		sel.Where = sqlast.And(conj...)
		return true
	}
	return false
}

// betweenSplit rewrites x BETWEEN a AND b as x >= a AND x <= b.
func betweenSplit(sel *sqlast.SelectStmt) bool {
	conj := conjuncts(sel.Where)
	for i, c := range conj {
		if btw, ok := c.(*sqlast.Between); ok && !btw.Not {
			conj[i] = sqlast.And(
				&sqlast.Binary{Op: ">=", L: btw.X, R: btw.Lo},
				&sqlast.Binary{Op: "<=", L: sqlast.CloneExpr(btw.X), R: btw.Hi},
			)
			sel.Where = sqlast.And(conj...)
			return true
		}
	}
	return false
}

// inListToOr rewrites x IN (v1, v2, ...) as x = v1 OR x = v2 ...
func inListToOr(sel *sqlast.SelectStmt) bool {
	conj := conjuncts(sel.Where)
	for i, c := range conj {
		in, ok := c.(*sqlast.In)
		if !ok || in.Sub != nil || in.Not || len(in.List) == 0 {
			continue
		}
		var ors []sqlast.Expr
		for _, v := range in.List {
			ors = append(ors, sqlast.Eq(sqlast.CloneExpr(in.X), v))
		}
		conj[i] = sqlast.Or(ors...)
		sel.Where = sqlast.And(conj...)
		return true
	}
	return false
}

// notPushdown rewrites a comparison into double negation: x > v becomes
// NOT ( x <= v ), which is equivalent under SQL three-valued logic.
func notPushdown(sel *sqlast.SelectStmt) bool {
	negate := map[string]string{">": "<=", "<": ">=", ">=": "<", "<=": ">", "=": "<>", "<>": "="}
	conj := conjuncts(sel.Where)
	for i, c := range conj {
		bin, ok := c.(*sqlast.Binary)
		if !ok {
			continue
		}
		neg, ok := negate[bin.Op]
		if !ok {
			continue
		}
		conj[i] = &sqlast.Unary{Op: "NOT", X: &sqlast.Binary{Op: neg, L: bin.L, R: bin.R}}
		sel.Where = sqlast.And(conj...)
		return true
	}
	return false
}

// distinctToGroupBy rewrites SELECT DISTINCT cols as SELECT cols GROUP BY cols.
func distinctToGroupBy(sel *sqlast.SelectStmt) bool {
	if !sel.Distinct || len(sel.GroupBy) > 0 || sel.Having != nil {
		return false
	}
	for _, item := range sel.Items {
		if _, ok := item.Expr.(*sqlast.ColumnRef); !ok {
			return false
		}
	}
	sel.Distinct = false
	for _, item := range sel.Items {
		sel.GroupBy = append(sel.GroupBy, sqlast.CloneExpr(item.Expr))
	}
	return true
}

// commuteJoin swaps the two sides of an inner equi-join whose operands are
// both base tables (projection column order is unchanged because items are
// explicit). Deeper joins are left alone: swapping a leaf inside a
// left-deep tree would force a right-nested tree for no expressive gain.
func commuteJoin(sel *sqlast.SelectStmt) bool {
	if len(sel.From) != 1 {
		return false
	}
	j, ok := sel.From[0].(*sqlast.Join)
	if !ok || j.Type != "INNER" {
		return false
	}
	if _, leftIsTable := j.Left.(*sqlast.TableName); !leftIsTable {
		return false
	}
	if _, rightIsTable := j.Right.(*sqlast.TableName); !rightIsTable {
		return false
	}
	// Star projections depend on column order; require explicit items.
	for _, item := range sel.Items {
		if _, isStar := item.Expr.(*sqlast.Star); isStar {
			return false
		}
	}
	j.Left, j.Right = j.Right, j.Left
	return true
}

// ---------------------------------------------------------------------------
// Non-equivalence transformations

// swapAggFunction changes an aggregate function (AVG <-> SUM, MIN <-> MAX),
// the paper's Q11.
func swapAggFunction(sel *sqlast.SelectStmt) bool {
	swap := map[string]string{"AVG": "SUM", "SUM": "AVG", "MIN": "MAX", "MAX": "MIN", "COUNT": "SUM"}
	for _, item := range sel.Items {
		if fc, ok := item.Expr.(*sqlast.FuncCall); ok {
			upper := strings.ToUpper(fc.Name)
			if repl, found := swap[upper]; found && !fc.Star {
				fc.Name = repl
				return true
			}
		}
	}
	return false
}

// changeJoinType switches INNER to LEFT join (the paper's Q12).
func changeJoinType(sel *sqlast.SelectStmt) bool {
	changed := false
	var visit func(ref sqlast.TableRef)
	visit = func(ref sqlast.TableRef) {
		if changed {
			return
		}
		if j, ok := ref.(*sqlast.Join); ok {
			if j.Type == "INNER" {
				j.Type = "LEFT"
				changed = true
				return
			}
			visit(j.Left)
			visit(j.Right)
		}
	}
	for _, ref := range sel.From {
		visit(ref)
	}
	return changed
}

// flipLogical changes one AND to OR (the paper's Q13).
func flipLogical(sel *sqlast.SelectStmt) bool {
	var flip func(e sqlast.Expr) bool
	flip = func(e sqlast.Expr) bool {
		bin, ok := e.(*sqlast.Binary)
		if !ok {
			return false
		}
		if bin.Op == "AND" {
			bin.Op = "OR"
			return true
		}
		return flip(bin.L) || flip(bin.R)
	}
	return flip(sel.Where)
}

// changeValue perturbs one literal in a comparison (the paper's Q14).
func changeValue(sel *sqlast.SelectStmt, r *rand.Rand) bool {
	done := false
	var walk func(e sqlast.Expr)
	walk = func(e sqlast.Expr) {
		if done || e == nil {
			return
		}
		switch t := e.(type) {
		case *sqlast.Binary:
			if t.Op == "AND" || t.Op == "OR" {
				walk(t.L)
				walk(t.R)
				return
			}
			if lit, ok := t.R.(*sqlast.Literal); ok && lit.Kind == sqlast.LitNumber {
				lit.Text = perturbNumber(lit.Text, r)
				done = true
			}
		case *sqlast.Between:
			if lit, ok := t.Hi.(*sqlast.Literal); ok && lit.Kind == sqlast.LitNumber {
				lit.Text = perturbNumber(lit.Text, r)
				done = true
			}
		case *sqlast.Unary:
			walk(t.X)
		}
	}
	walk(sel.Where)
	return done
}

func perturbNumber(text string, r *rand.Rand) string {
	if strings.Contains(text, ".") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return text + "1"
		}
		return strconv.FormatFloat(f*10+1, 'f', 1, 64)
	}
	n, err := strconv.Atoi(text)
	if err != nil {
		return text + "1"
	}
	return strconv.Itoa(n*3 + 7)
}

// weakenComparison swaps a strict comparison for its non-strict form.
func weakenComparison(sel *sqlast.SelectStmt) bool {
	weaken := map[string]string{">": ">=", "<": "<=", ">=": ">", "<=": "<"}
	done := false
	var walk func(e sqlast.Expr)
	walk = func(e sqlast.Expr) {
		if done || e == nil {
			return
		}
		if bin, ok := e.(*sqlast.Binary); ok {
			if bin.Op == "AND" || bin.Op == "OR" {
				walk(bin.L)
				walk(bin.R)
				return
			}
			if repl, found := weaken[bin.Op]; found {
				bin.Op = repl
				done = true
			}
		}
	}
	walk(sel.Where)
	return done
}

// dropPredicate removes one WHERE conjunct.
func dropPredicate(sel *sqlast.SelectStmt) bool {
	conj := conjuncts(sel.Where)
	if len(conj) < 2 {
		return false
	}
	sel.Where = sqlast.And(conj[1:]...)
	return true
}

// changeProjection replaces the first projected column with a different
// column reference.
func changeProjection(sel *sqlast.SelectStmt) bool {
	for i, item := range sel.Items {
		if cr, ok := item.Expr.(*sqlast.ColumnRef); ok {
			// Find a second distinct column elsewhere in the query.
			var other *sqlast.ColumnRef
			sqlast.Walk(sel, func(n sqlast.Node) bool {
				if other != nil {
					return false
				}
				if c2, ok := n.(*sqlast.ColumnRef); ok &&
					!strings.EqualFold(c2.Name, cr.Name) {
					other = c2
				}
				return true
			})
			if other == nil {
				return false
			}
			sel.Items[i].Expr = sqlast.Col(other.Table, other.Name)
			return true
		}
	}
	return false
}

// toggleDistinct flips DISTINCT, changing result multiplicity.
func toggleDistinct(sel *sqlast.SelectStmt) bool {
	if len(sel.GroupBy) > 0 {
		return false // grouped output is already duplicate-free
	}
	sel.Distinct = !sel.Distinct
	return true
}
