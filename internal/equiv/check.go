package equiv

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/runner"
	"repro/internal/sqlast"
	"repro/internal/store"
)

// RuleEquivalent reports whether two SELECTs are equivalent under the
// rule-based normalizer: both are normalized (conjunct sorting, BETWEEN and
// IN-list expansion, double-negation elimination, DISTINCT/GROUP BY
// canonicalization, trivial CTE inlining) and compared by printed form.
// It is sound but incomplete: a false result only means "not provably
// equivalent by rules".
func RuleEquivalent(a, b *sqlast.SelectStmt) bool {
	return Normalize(a) == Normalize(b)
}

// Normalize renders a SELECT into its canonical comparison form.
func Normalize(sel *sqlast.SelectStmt) string {
	n := sqlast.CloneSelect(sel)
	n = inlineTrivialCTE(n)
	normalizeSelect(n)
	return sqlast.Print(n)
}

func normalizeSelect(sel *sqlast.SelectStmt) {
	// DISTINCT over plain columns == GROUP BY those columns: canonicalize to
	// the GROUP BY form.
	if sel.Distinct && len(sel.GroupBy) == 0 && sel.Having == nil {
		allCols := true
		for _, item := range sel.Items {
			if _, ok := item.Expr.(*sqlast.ColumnRef); !ok {
				allCols = false
				break
			}
		}
		if allCols && len(sel.Items) > 0 {
			sel.Distinct = false
			for _, item := range sel.Items {
				sel.GroupBy = append(sel.GroupBy, sqlast.CloneExpr(item.Expr))
			}
		}
	}
	sel.Where = normalizeExpr(sel.Where)
	sel.Having = normalizeExpr(sel.Having)
	// Sort GROUP BY keys (grouping is order-insensitive).
	sort.Slice(sel.GroupBy, func(i, j int) bool {
		return sqlast.PrintExpr(sel.GroupBy[i]) < sqlast.PrintExpr(sel.GroupBy[j])
	})
	for i := range sel.With {
		normalizeSelect(sel.With[i].Select)
	}
	for _, ref := range sel.From {
		normalizeRef(ref)
	}
	for _, item := range sel.Items {
		normalizeItemExpr(item.Expr)
	}
	if sel.SetOp != nil {
		normalizeSelect(sel.SetOp.Right)
	}
}

func normalizeRef(ref sqlast.TableRef) {
	switch t := ref.(type) {
	case *sqlast.Join:
		t.On = normalizeExpr(t.On)
		normalizeRef(t.Left)
		normalizeRef(t.Right)
		// Inner joins commute: order operands canonically.
		if t.Type == "INNER" && sqlast.PrintTableRef(t.Left) > sqlast.PrintTableRef(t.Right) {
			t.Left, t.Right = t.Right, t.Left
		}
	case *sqlast.SubqueryTable:
		normalizeSelect(t.Select)
	}
}

func normalizeItemExpr(e sqlast.Expr) {
	if sub, ok := e.(*sqlast.Subquery); ok {
		normalizeSelect(sub.Select)
	}
}

// normalizeExpr canonicalizes a boolean expression: BETWEEN and IN-lists
// expand, NOT pushes through comparisons, equality operands order
// canonically, and AND/OR conjunct lists sort by printed form.
func normalizeExpr(e sqlast.Expr) sqlast.Expr {
	if e == nil {
		return nil
	}
	switch t := e.(type) {
	case *sqlast.Between:
		if !t.Not {
			return normalizeExpr(sqlast.And(
				&sqlast.Binary{Op: ">=", L: t.X, R: t.Lo},
				&sqlast.Binary{Op: "<=", L: sqlast.CloneExpr(t.X), R: t.Hi},
			))
		}
		return t
	case *sqlast.In:
		if t.Sub == nil && !t.Not && len(t.List) > 0 {
			var ors []sqlast.Expr
			for _, v := range t.List {
				ors = append(ors, sqlast.Eq(sqlast.CloneExpr(t.X), v))
			}
			return normalizeExpr(sqlast.Or(ors...))
		}
		if t.Sub != nil {
			normalizeSelect(t.Sub)
		}
		return t
	case *sqlast.Exists:
		normalizeSelect(t.Sub)
		return t
	case *sqlast.Unary:
		if t.Op == "NOT" {
			inner := normalizeExpr(t.X)
			if bin, ok := inner.(*sqlast.Binary); ok {
				if neg, found := negations[bin.Op]; found {
					return normalizeExpr(&sqlast.Binary{Op: neg, L: bin.L, R: bin.R})
				}
			}
			if u, ok := inner.(*sqlast.Unary); ok && u.Op == "NOT" {
				return u.X // double negation
			}
			return &sqlast.Unary{Op: "NOT", X: inner}
		}
		return t
	case *sqlast.Binary:
		switch t.Op {
		case "AND", "OR":
			parts := flatten(t, t.Op)
			for i := range parts {
				parts[i] = normalizeExpr(parts[i])
			}
			// Normalization can introduce nested conjunctions (BETWEEN
			// expansion); re-flatten to a fixpoint before sorting.
			var flat []sqlast.Expr
			for _, p := range parts {
				flat = append(flat, flatten(p, t.Op)...)
			}
			sort.Slice(flat, func(i, j int) bool {
				return sqlast.PrintExpr(flat[i]) < sqlast.PrintExpr(flat[j])
			})
			if t.Op == "AND" {
				return sqlast.And(flat...)
			}
			return sqlast.Or(flat...)
		case "=", "<>":
			l, r := t.L, t.R
			if sqlast.PrintExpr(l) > sqlast.PrintExpr(r) {
				l, r = r, l
			}
			return &sqlast.Binary{Op: t.Op, L: l, R: r}
		case "<", "<=":
			// Canonicalize direction: a < b stays; but b > a becomes a < b.
			return t
		case ">", ">=":
			flip := map[string]string{">": "<", ">=": "<="}
			return &sqlast.Binary{Op: flip[t.Op], L: t.R, R: t.L}
		default:
			return t
		}
	case *sqlast.Subquery:
		normalizeSelect(t.Select)
		return t
	default:
		return e
	}
}

var negations = map[string]string{
	">": "<=", "<": ">=", ">=": "<", "<=": ">", "=": "<>", "<>": "=",
}

func flatten(e sqlast.Expr, op string) []sqlast.Expr {
	bin, ok := e.(*sqlast.Binary)
	if ok && bin.Op == op {
		return append(flatten(bin.L, op), flatten(bin.R, op)...)
	}
	return []sqlast.Expr{e}
}

// inlineTrivialCTE unwraps WITH c AS ( q ) SELECT * FROM c into q.
func inlineTrivialCTE(sel *sqlast.SelectStmt) *sqlast.SelectStmt {
	if len(sel.With) != 1 || len(sel.Items) != 1 || len(sel.From) != 1 {
		return sel
	}
	star, isStar := sel.Items[0].Expr.(*sqlast.Star)
	if !isStar || star.Table != "" {
		return sel
	}
	tn, isName := sel.From[0].(*sqlast.TableName)
	if !isName || !strings.EqualFold(tn.Name, sel.With[0].Name) || tn.Alias != "" {
		return sel
	}
	if sel.Where != nil || len(sel.GroupBy) > 0 || sel.Having != nil ||
		len(sel.OrderBy) > 0 || sel.Distinct || sel.SetOp != nil ||
		sel.Limit != nil || sel.Offset != nil || sel.Top != nil {
		return sel
	}
	return sel.With[0].Select
}

// Checker validates candidate pairs empirically by executing both queries
// over seeded synthetic instances of a schema. Instances are generated once
// per (seed, rows) and reused across pairs — the engine never mutates base
// tables, so a cached instance is safe to share, including across
// goroutines. A Checker is safe for concurrent use.
type Checker struct {
	Schema *catalog.Schema
	// Seeds are the instance seeds to test against (more seeds, higher
	// confidence). Defaults to three instances.
	Seeds []int64
	// Rows per generated table (default 24; kept small so wide joins stay
	// fast).
	Rows int
	// Parallel bounds the per-seed execution fan-out of Equivalent and is
	// threaded through to each engine's intra-query parallelism (grouped
	// aggregation and set operations). 0 or 1 executes sequentially.
	Parallel int
	// NoOptimize executes queries without the engine's plan optimizer
	// (predicate pushdown, join reordering, streaming hash joins). Verdicts
	// and row outputs are byte-identical either way; the switch exists for
	// ablation and differential testing.
	NoOptimize bool
	// StoreDir, when set, backs instances with the durable storage engine
	// instead of in-memory relations: the schema's tables are created once in
	// a single store under this directory, each seed loads its rows inside a
	// transaction, both queries stream over heap scans, and the transaction
	// rolls back — so every seed reuses the same heap files instead of
	// rebuilding a store. Call Close when done.
	StoreDir string
	// StorePoolPages sizes the store's buffer pool (0 = store default).
	StorePoolPages int

	instances runner.Flight[instanceKey, *engine.DB]
	engineOps atomic.Int64

	storeOnce sync.Once
	store     *store.Store
	storeErr  error
}

// Ops returns the total engine row operations executed by this checker's
// query runs — the work the CLI reports per dataset so engine speedups are
// visible end to end.
func (c *Checker) Ops() int64 { return c.engineOps.Load() }

type instanceKey struct {
	seed int64
	rows int
}

// NewChecker returns an engine-backed checker over the schema.
func NewChecker(schema *catalog.Schema) *Checker {
	return &Checker{Schema: schema, Seeds: []int64{11, 29, 47}, Rows: 24}
}

// instance returns the cached synthetic database for a seed, generating it
// on first use. Concurrent requests for the same seed coalesce.
func (c *Checker) instance(seed int64, rows int) *engine.DB {
	db, _ := c.instances.Do(instanceKey{seed, rows}, func() (*engine.DB, error) {
		return datagen.Instance(c.Schema, datagen.Config{Seed: seed, Rows: rows}), nil
	})
	return db
}

// Equivalent executes both queries on every seeded instance and reports
// whether the results always match (as multisets, or ordered when the
// queries declare ORDER BY). An execution error on either side is returned.
// With Parallel > 1 the seeds run concurrently; verdicts combine in seed
// order, so the outcome is identical to a sequential check.
func (c *Checker) Equivalent(a, b *sqlast.SelectStmt) (bool, error) {
	return c.EquivalentCtx(context.Background(), a, b)
}

// EquivalentCtx is Equivalent threading the caller's context into each
// engine execution, so a tracer riding the context produces per-seed
// engine.exec child spans (plan-cache hits, row operations, result sizes).
// The context does not cancel the check — every seed still runs to
// completion so the verdict stays order-deterministic.
func (c *Checker) EquivalentCtx(ctx context.Context, a, b *sqlast.SelectStmt) (bool, error) {
	rows := c.Rows
	if rows <= 0 {
		rows = 24
	}
	check := func(ctx context.Context, seed int64) (bool, error) {
		if c.StoreDir != "" {
			return c.checkSeedStore(ctx, seed, rows, a, b)
		}
		e := engine.New(c.instance(seed, rows))
		e.Parallel = c.Parallel
		e.Optimize = !c.NoOptimize
		defer func() { c.engineOps.Add(e.Ops()) }()
		ra, err := e.QueryCtx(ctx, a)
		if err != nil {
			return false, fmt.Errorf("left query failed: %w", err)
		}
		rb, err := e.QueryCtx(ctx, b)
		if err != nil {
			return false, fmt.Errorf("right query failed: %w", err)
		}
		ordered := len(a.OrderBy) > 0 && len(b.OrderBy) > 0
		return engine.EqualRelations(ra, rb, ordered), nil
	}
	if c.Parallel <= 1 || len(c.Seeds) <= 1 {
		for _, seed := range c.Seeds {
			equal, err := check(ctx, seed)
			if err != nil || !equal {
				return false, err
			}
		}
		return true, nil
	}
	type verdict struct {
		equal bool
		err   error
	}
	// Every seed runs to completion and the verdicts combine in seed order,
	// reproducing the sequential outcome exactly (including which seed's
	// error or mismatch is reported first). The span context is carried
	// explicitly into the workers; the Map context stays Background so a
	// caller cancellation cannot make the verdict seed-dependent.
	spanCtx := ctx
	verdicts, _ := runner.Map(context.Background(), c.Parallel, c.Seeds, func(_ context.Context, _ int, seed int64) (verdict, error) {
		equal, err := check(spanCtx, seed)
		return verdict{equal, err}, nil
	})
	for _, v := range verdicts {
		if v.err != nil || !v.equal {
			return false, v.err
		}
	}
	return true, nil
}
