package equiv

import (
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

// storePairs are transform pairs spanning both verdicts, reused by the
// memory/store differential test and the benchmarks.
var storePairs = []struct {
	typ Type
	sql string
}{
	{ReorderConditions, "SELECT plate FROM SpecObj WHERE z > 0.5 AND mjd > 55000 AND plate < 3000"},
	{BetweenSplit, "SELECT plate FROM SpecObj WHERE z BETWEEN 0.5 AND 1.5"},
	{CommuteJoin, "SELECT s.plate , p.ra FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid"},
	{DistinctGroupBy, "SELECT DISTINCT plate , mjd FROM SpecObj"},
	{DropPredicate, "SELECT plate FROM SpecObj WHERE z > 0.5 AND z < 2.5"},
	{ValueChange, "SELECT plate FROM SpecObj WHERE z > 0.5"},
	{DistinctToggle, "SELECT class FROM SpecObj"},
}

// Store-backed checking must reach the same verdict as the in-memory
// instances on every pair, sequentially and with parallel seeds, and the
// per-seed rollback must leave the shared tables empty for the next seed.
func TestStoreCheckerMatchesMemory(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	mem := sdssChecker()
	st := NewChecker(catalog.SDSS())
	st.StoreDir = t.TempDir()
	defer st.Close()
	stPar := NewChecker(catalog.SDSS())
	stPar.StoreDir = t.TempDir()
	stPar.Parallel = 4
	defer stPar.Close()

	for _, p := range storePairs {
		sel := parse(t, p.sql)
		out, ok := Transform(sel, p.typ, r)
		if !ok {
			t.Fatalf("Transform(%s) not applicable to %q", p.typ, p.sql)
		}
		want, err := mem.Equivalent(sel, out)
		if err != nil {
			t.Fatalf("memory check failed on %s: %v", p.typ, err)
		}
		got, err := st.Equivalent(sel, out)
		if err != nil {
			t.Fatalf("store check failed on %s: %v", p.typ, err)
		}
		if got != want {
			t.Errorf("%s: store verdict %v, memory verdict %v\n left: %s\nright: %s",
				p.typ, got, want, p.sql, sqlast.Print(out))
		}
		gotPar, err := stPar.Equivalent(sel, out)
		if err != nil {
			t.Fatalf("parallel store check failed on %s: %v", p.typ, err)
		}
		if gotPar != want {
			t.Errorf("%s: parallel store verdict %v, memory verdict %v", p.typ, gotPar, want)
		}
	}

	// Rollback-based reuse: between checks every shared table is empty.
	for _, tab := range catalog.SDSS().Tables() {
		if n, ok := st.store.Rows(tab.Name); !ok || n != 0 {
			t.Errorf("table %s has %d rows after rollback, want 0", tab.Name, n)
		}
	}
	if s := st.StoreStats(); s.WALRecords == 0 {
		t.Error("store stats recorded no WAL records — table creation never committed?")
	}
}

// A reopened store directory keeps its (empty) tables; the checker must not
// fail creating them again.
func TestStoreCheckerReopenDirectory(t *testing.T) {
	dir := t.TempDir()
	sel := parse(t, "SELECT plate FROM SpecObj WHERE z > 0.5")
	for i := 0; i < 2; i++ {
		c := NewChecker(catalog.SDSS())
		c.StoreDir = dir
		if equal, err := c.Equivalent(sel, sel); err != nil || !equal {
			t.Fatalf("round %d: Equivalent(q, q) = %v, %v", i, equal, err)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("round %d: Close: %v", i, err)
		}
	}
}

func benchQueries(b *testing.B) (*sqlast.SelectStmt, *sqlast.SelectStmt) {
	b.Helper()
	r := rand.New(rand.NewSource(5))
	sel, err := sqlparse.ParseSelect("SELECT plate FROM SpecObj WHERE z > 0.5 AND mjd > 55000 AND plate < 3000")
	if err != nil {
		b.Fatal(err)
	}
	out, ok := Transform(sel, ReorderConditions, r)
	if !ok {
		b.Fatal("transform not applicable")
	}
	return sel, out
}

// BenchmarkStoreSeedRollback measures one store-backed seed check when the
// heap files are shared across seeds via load-then-rollback (the shipping
// path).
func BenchmarkStoreSeedRollback(b *testing.B) {
	c := NewChecker(catalog.SDSS())
	c.StoreDir = b.TempDir()
	c.Seeds = []int64{11}
	defer c.Close()
	qa, qb := benchQueries(b)
	if _, err := c.Equivalent(qa, qb); err != nil { // create tables once, warm the pool
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Equivalent(qa, qb); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreSeedRebuild measures the same seed check when every seed
// rebuilds its store from scratch (open, create tables, load, check, close).
func BenchmarkStoreSeedRebuild(b *testing.B) {
	qa, qb := benchQueries(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewChecker(catalog.SDSS())
		c.StoreDir = b.TempDir()
		c.Seeds = []int64{11}
		if _, err := c.Equivalent(qa, qb); err != nil {
			b.Fatal(err)
		}
		if err := c.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
