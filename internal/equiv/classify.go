package equiv

import (
	"strings"

	"repro/internal/sqlast"
	"repro/internal/sqllex"
)

// Similarity measures the lexical overlap of two queries as Jaccard
// similarity over their token multisets. Subtle edits (a changed literal or
// operator) score near 1; structural rewrites (join <-> subquery) score
// much lower.
func Similarity(sql1, sql2 string) float64 {
	a := tokenCounts(sql1)
	b := tokenCounts(sql2)
	var inter, union int
	for tok, ca := range a {
		cb := b[tok]
		if ca < cb {
			inter += ca
			union += cb
		} else {
			inter += cb
			union += ca
		}
	}
	for tok, cb := range b {
		if _, seen := a[tok]; !seen {
			union += cb
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// DiffStats measures the absolute token-multiset difference between two
// queries: how many token occurrences each side has that the other lacks.
// Subtle single-token edits yield tiny diffs regardless of query length,
// which is how the simulated models distinguish "modified condition" pairs
// from structural rewrites.
func DiffStats(sql1, sql2 string) (added, removed int) {
	a := tokenCounts(sql1)
	b := tokenCounts(sql2)
	for tok, cb := range b {
		if ca := a[tok]; cb > ca {
			added += cb - ca
		}
	}
	for tok, ca := range a {
		if cb := b[tok]; ca > cb {
			removed += ca - cb
		}
	}
	return added, removed
}

func tokenCounts(sql string) map[string]int {
	toks, err := sqllex.LexWords(sql)
	out := map[string]int{}
	if err != nil {
		for _, w := range sqllex.Words(sql) {
			out[strings.ToLower(w)]++
		}
		return out
	}
	for _, t := range toks {
		out[t.Upper()]++
	}
	return out
}

// ClassifyPair guesses which transformation relates two SELECTs, using the
// same structural signals a careful reader would: presence of CTEs, IN vs
// EXISTS vs JOIN forms, operator and literal diffs, DISTINCT/GROUP BY
// changes. It is heuristic; the simulated models add calibrated noise on
// top, and its own mistakes are part of the channel.
func ClassifyPair(a, b *sqlast.SelectStmt) Type {
	fa, fb := pairFeatures(a), pairFeatures(b)
	switch {
	case fa.ctes != fb.ctes:
		return CTEWrap
	case fa.exists != fb.exists && fa.inSubs != fb.inSubs:
		return SwapSubqueries
	case fa.joins > fb.joins && fb.inSubs > fa.inSubs:
		return JoinNested
	case fb.joins > fa.joins && fa.inSubs > fb.inSubs:
		return NestedJoin
	case fa.betweens != fb.betweens:
		return BetweenSplit
	case fa.inLists != fb.inLists && fa.ors != fb.ors:
		return InListOr
	case fa.nots != fb.nots:
		return NotPushdown
	case fa.distinct != fb.distinct && fa.groupBys != fb.groupBys:
		return DistinctGroupBy
	case fa.joinTypes != fb.joinTypes:
		return ChangeJoinCondition
	case fa.aggNames != fb.aggNames:
		return AggFunction
	case fa.ands != fb.ands && fa.ors != fb.ors:
		return LogicalConditions
	case fa.distinct != fb.distinct:
		return DistinctToggle
	case fa.predCount != fb.predCount:
		return DropPredicate
	case fa.literals != fb.literals:
		return ValueChange
	case fa.cmpOps != fb.cmpOps:
		return ComparisonOp
	case fa.projection != fb.projection:
		return ProjectionChange
	case fa.firstTable != fb.firstTable:
		return CommuteJoin
	default:
		return ReorderConditions
	}
}

// ConfusePair returns the transformation most often mistaken for the given
// one (used when the calibrated type-accuracy roll fails).
func ConfusePair(t Type) Type {
	confusion := map[Type]Type{
		ReorderConditions:   NotPushdown,
		CTEWrap:             NestedJoin,
		JoinNested:          NestedJoin,
		NestedJoin:          JoinNested,
		SwapSubqueries:      JoinNested,
		BetweenSplit:        ReorderConditions,
		InListOr:            LogicalConditions,
		NotPushdown:         ComparisonOp,
		DistinctGroupBy:     DistinctToggle,
		CommuteJoin:         ReorderConditions,
		AggFunction:         ProjectionChange,
		ChangeJoinCondition: CommuteJoin,
		LogicalConditions:   ReorderConditions,
		ValueChange:         ComparisonOp,
		ComparisonOp:        ValueChange,
		DropPredicate:       ReorderConditions,
		ProjectionChange:    AggFunction,
		DistinctToggle:      DistinctGroupBy,
	}
	if c, ok := confusion[t]; ok {
		return c
	}
	return ReorderConditions
}

type pairFeature struct {
	ctes       int
	exists     int
	inSubs     int
	inLists    int
	joins      int
	joinTypes  string
	betweens   int
	nots       int
	ands       int
	ors        int
	distinct   bool
	groupBys   int
	aggNames   string
	literals   string
	cmpOps     string
	predCount  int
	projection string
	firstTable string
}

func pairFeatures(sel *sqlast.SelectStmt) pairFeature {
	f := pairFeature{distinct: sel.Distinct, groupBys: len(sel.GroupBy)}
	f.ctes = len(sel.With)
	var aggs, lits, ops []string
	sqlast.Walk(sel, func(n sqlast.Node) bool {
		switch t := n.(type) {
		case *sqlast.Exists:
			f.exists++
		case *sqlast.In:
			if t.Sub != nil {
				f.inSubs++
			} else {
				f.inLists++
			}
		case *sqlast.Join:
			f.joins++
			f.joinTypes += t.Type + ","
		case *sqlast.Between:
			f.betweens++
		case *sqlast.Unary:
			if t.Op == "NOT" {
				f.nots++
			}
		case *sqlast.Binary:
			switch t.Op {
			case "AND":
				f.ands++
			case "OR":
				f.ors++
			case "=", "<>", "<", ">", "<=", ">=":
				ops = append(ops, t.Op)
				f.predCount++
			case "LIKE":
				f.predCount++
			}
		case *sqlast.FuncCall:
			if sqlast.IsAggregate(t.Name) {
				aggs = append(aggs, strings.ToUpper(t.Name))
			}
		case *sqlast.Literal:
			lits = append(lits, t.Text)
		}
		return true
	})
	f.aggNames = strings.Join(sortCopy(aggs), ",")
	f.literals = strings.Join(sortCopy(lits), ",")
	f.cmpOps = strings.Join(sortCopy(ops), ",")
	for _, item := range sel.Items {
		f.projection += sqlast.PrintExpr(item.Expr) + ","
	}
	if len(sel.From) > 0 {
		if tn, ok := firstTableOf(sel.From[0]); ok {
			f.firstTable = strings.ToLower(tn)
		}
	}
	return f
}

func firstTableOf(ref sqlast.TableRef) (string, bool) {
	switch t := ref.(type) {
	case *sqlast.TableName:
		return t.Name, true
	case *sqlast.Join:
		return firstTableOf(t.Left)
	case *sqlast.SubqueryTable:
		return "", false
	}
	return "", false
}

func sortCopy(ss []string) []string {
	out := append([]string{}, ss...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
