package equiv

import (
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

func parse(t *testing.T, sql string) *sqlast.SelectStmt {
	t.Helper()
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return sel
}

func sdssChecker() *Checker { return NewChecker(catalog.SDSS()) }

// Each equivalence transformation, applied to a suitable query, must produce
// a pair the execution engine confirms equivalent on every test instance.
func TestEquivalenceTransformsVerify(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	cases := map[Type]string{
		ReorderConditions: "SELECT plate FROM SpecObj WHERE z > 0.5 AND mjd > 55000 AND plate < 3000",
		CTEWrap:           "SELECT plate , mjd FROM SpecObj WHERE z > 0.5",
		NestedJoin:        "SELECT plate FROM SpecObj WHERE bestobjid IN ( SELECT objid FROM PhotoObj WHERE ra > 180 )",
		SwapSubqueries:    "SELECT s.plate FROM SpecObj AS s WHERE s.bestobjid IN ( SELECT p.objid FROM PhotoObj AS p WHERE p.ra > 180 )",
		BetweenSplit:      "SELECT plate FROM SpecObj WHERE z BETWEEN 0.5 AND 1.5",
		InListOr:          "SELECT plate FROM SpecObj WHERE plate IN ( 1 , 2 , 3 )",
		NotPushdown:       "SELECT plate FROM SpecObj WHERE z > 0.5",
		DistinctGroupBy:   "SELECT DISTINCT plate , mjd FROM SpecObj",
		CommuteJoin:       "SELECT s.plate , p.ra FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid",
	}
	checker := sdssChecker()
	for typ, sql := range cases {
		sel := parse(t, sql)
		out, ok := Transform(sel, typ, r)
		if !ok {
			t.Errorf("Transform(%s) not applicable to %q", typ, sql)
			continue
		}
		if sqlast.Print(out) == sqlast.Print(sel) {
			t.Errorf("Transform(%s) produced an identical query", typ)
			continue
		}
		equal, err := checker.Equivalent(sel, out)
		if err != nil {
			t.Errorf("Transform(%s) execution failed: %v\n left: %s\nright: %s", typ, err, sql, sqlast.Print(out))
			continue
		}
		if !equal {
			t.Errorf("Transform(%s) is not empirically equivalent\n left: %s\nright: %s", typ, sql, sqlast.Print(out))
		}
	}
}

// join-nested can change multiplicity in general; on a key-joined pair it
// must verify.
func TestJoinNestedTransform(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	sql := "SELECT s.plate FROM SpecObj AS s JOIN PlateX AS px ON s.plate = px.plate WHERE s.z > 0.5"
	sel := parse(t, sql)
	out, ok := Transform(sel, JoinNested, r)
	if !ok {
		t.Fatal("join-nested not applicable")
	}
	if _, isIn := findIn(out); !isIn {
		t.Errorf("expected IN subquery in %s", sqlast.Print(out))
	}
}

func findIn(sel *sqlast.SelectStmt) (*sqlast.In, bool) {
	var in *sqlast.In
	sqlast.Walk(sel, func(n sqlast.Node) bool {
		if x, ok := n.(*sqlast.In); ok {
			in = x
		}
		return true
	})
	return in, in != nil
}

// Non-equivalence transformations must change semantics on at least one test
// instance (for the value classes where the difference is data-visible).
func TestNonEquivalenceTransformsDiffer(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	cases := map[Type]string{
		AggFunction:       "SELECT plate , AVG( z ) FROM SpecObj GROUP BY plate",
		LogicalConditions: "SELECT plate FROM SpecObj WHERE z > 0.5 AND mjd > 55000",
		ValueChange:       "SELECT plate FROM SpecObj WHERE z > 0.5",
		DropPredicate:     "SELECT plate FROM SpecObj WHERE z > 0.5 AND z < 2.5",
		ProjectionChange:  "SELECT plate FROM SpecObj WHERE mjd > 55000",
		DistinctToggle:    "SELECT class FROM SpecObj",
	}
	checker := sdssChecker()
	for typ, sql := range cases {
		sel := parse(t, sql)
		out, ok := Transform(sel, typ, r)
		if !ok {
			t.Errorf("Transform(%s) not applicable to %q", typ, sql)
			continue
		}
		equal, err := checker.Equivalent(sel, out)
		if err != nil {
			t.Errorf("Transform(%s) execution failed: %v", typ, err)
			continue
		}
		if equal {
			t.Errorf("Transform(%s) produced an empirically equal pair\n left: %s\nright: %s", typ, sql, sqlast.Print(out))
		}
	}
}

func TestChangeJoinTypeTransform(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	sql := "SELECT s.plate , p.ra FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid"
	out, ok := Transform(parse(t, sql), ChangeJoinCondition, r)
	if !ok {
		t.Fatal("change-join-condition not applicable")
	}
	printed := sqlast.Print(out)
	if want := "LEFT JOIN"; !contains(printed, want) {
		t.Errorf("expected %q in %q", want, printed)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})())
}

func TestComparisonOpTransform(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	sql := "SELECT plate FROM SpecObj WHERE plate > 100"
	out, ok := Transform(parse(t, sql), ComparisonOp, r)
	if !ok {
		t.Fatal("comparison-op not applicable")
	}
	if !contains(sqlast.Print(out), ">=") {
		t.Errorf("expected >= in %q", sqlast.Print(out))
	}
}

func TestTransformNotApplicable(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	sel := parse(t, "SELECT plate FROM SpecObj")
	for _, typ := range []Type{ReorderConditions, BetweenSplit, InListOr, AggFunction, LogicalConditions, DropPredicate, ChangeJoinCondition} {
		if _, ok := Transform(sel, typ, r); ok {
			t.Errorf("Transform(%s) should not apply to a bare select", typ)
		}
	}
}

func TestTransformDoesNotMutateInput(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	sql := "SELECT plate FROM SpecObj WHERE z > 0.5 AND mjd > 55000"
	sel := parse(t, sql)
	before := sqlast.Print(sel)
	for _, typ := range append(EquivTypes(), NonEquivTypes()...) {
		Transform(sel, typ, r)
		if sqlast.Print(sel) != before {
			t.Fatalf("Transform(%s) mutated its input", typ)
		}
	}
}

func TestRuleEquivalentNormalization(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{
			"SELECT plate FROM SpecObj WHERE z > 0.5 AND mjd > 55000",
			"SELECT plate FROM SpecObj WHERE mjd > 55000 AND z > 0.5",
			true,
		},
		{
			"SELECT plate FROM SpecObj WHERE z BETWEEN 0.5 AND 1.5",
			"SELECT plate FROM SpecObj WHERE z >= 0.5 AND z <= 1.5",
			true,
		},
		{
			"SELECT plate FROM SpecObj WHERE plate IN ( 1 , 2 )",
			"SELECT plate FROM SpecObj WHERE plate = 1 OR plate = 2",
			true,
		},
		{
			"SELECT plate FROM SpecObj WHERE NOT ( z <= 0.5 )",
			"SELECT plate FROM SpecObj WHERE z > 0.5",
			true,
		},
		{
			"SELECT DISTINCT plate , mjd FROM SpecObj",
			"SELECT plate , mjd FROM SpecObj GROUP BY plate , mjd",
			true,
		},
		{
			"WITH sub_q AS ( SELECT plate FROM SpecObj WHERE z > 0.5 ) SELECT * FROM sub_q",
			"SELECT plate FROM SpecObj WHERE z > 0.5",
			true,
		},
		{
			"SELECT plate FROM SpecObj WHERE z > 0.5",
			"SELECT plate FROM SpecObj WHERE 0.5 < z",
			true,
		},
		{
			"SELECT plate FROM SpecObj WHERE z > 0.5",
			"SELECT plate FROM SpecObj WHERE z > 5",
			false,
		},
		{
			"SELECT plate FROM SpecObj WHERE z > 0.5 AND mjd > 1",
			"SELECT plate FROM SpecObj WHERE z > 0.5 OR mjd > 1",
			false,
		},
		{
			"SELECT plate , AVG( z ) FROM SpecObj GROUP BY plate",
			"SELECT plate , SUM( z ) FROM SpecObj GROUP BY plate",
			false,
		},
	}
	for _, c := range cases {
		a, b := parse(t, c.a), parse(t, c.b)
		if got := RuleEquivalent(a, b); got != c.want {
			t.Errorf("RuleEquivalent(\n %s,\n %s) = %v, want %v\nnormA: %s\nnormB: %s",
				c.a, c.b, got, c.want, Normalize(a), Normalize(b))
		}
	}
}

func TestTypeLists(t *testing.T) {
	if len(EquivTypes()) != 10 {
		t.Errorf("EquivTypes = %d, want 10", len(EquivTypes()))
	}
	if len(NonEquivTypes()) != 8 {
		t.Errorf("NonEquivTypes = %d, want 8", len(NonEquivTypes()))
	}
	if !IsEquivalence(CTEWrap) || IsEquivalence(ValueChange) {
		t.Error("IsEquivalence misclassifies")
	}
}

func TestCheckerReportsExecutionErrors(t *testing.T) {
	checker := sdssChecker()
	bad := parse(t, "SELECT nosuchcolumn FROM SpecObj")
	good := parse(t, "SELECT plate FROM SpecObj")
	if _, err := checker.Equivalent(bad, good); err == nil {
		t.Error("expected execution error for unknown column")
	}
}
