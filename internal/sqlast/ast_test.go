package sqlast

import (
	"math/rand"
	"strings"
	"testing"
)

func TestPrintSimple(t *testing.T) {
	s := &SelectStmt{
		Items: []SelectItem{{Expr: Col("", "plate")}, {Expr: Col("", "mjd")}},
		From:  []TableRef{&TableName{Name: "SpecObj"}},
		Where: &Binary{Op: ">", L: Col("", "z"), R: Number("0.5")},
	}
	got := Print(s)
	want := "SELECT plate , mjd FROM SpecObj WHERE z > 0.5"
	if got != want {
		t.Errorf("Print = %q, want %q", got, want)
	}
}

func TestPrintPrecedenceParens(t *testing.T) {
	// (a OR b) AND c must keep its parentheses.
	e := &Binary{
		Op: "AND",
		L:  &Binary{Op: "OR", L: Col("", "a"), R: Col("", "b")},
		R:  Col("", "c"),
	}
	got := PrintExpr(e)
	if !strings.Contains(got, "(") {
		t.Errorf("PrintExpr = %q, expected parentheses", got)
	}
	// a OR (b AND c) needs no parentheses.
	e2 := &Binary{
		Op: "OR",
		L:  Col("", "a"),
		R:  &Binary{Op: "AND", L: Col("", "b"), R: Col("", "c")},
	}
	got2 := PrintExpr(e2)
	if strings.Contains(got2, "(") {
		t.Errorf("PrintExpr = %q, expected no parentheses", got2)
	}
}

func TestPrintStringEscaping(t *testing.T) {
	got := PrintExpr(Str("it's"))
	if got != "'it''s'" {
		t.Errorf("PrintExpr = %q", got)
	}
}

func TestPrintJoinVariants(t *testing.T) {
	j := &Join{
		Left:  &TableName{Name: "a"},
		Right: &TableName{Name: "b"},
		Type:  "LEFT",
		On:    Eq(Col("a", "x"), Col("b", "x")),
	}
	s := &SelectStmt{Items: []SelectItem{{Expr: &Star{}}}, From: []TableRef{j}}
	got := Print(s)
	if !strings.Contains(got, "LEFT JOIN") {
		t.Errorf("Print = %q", got)
	}
	j.Type = "CROSS"
	j.On = nil
	got = Print(s)
	if !strings.Contains(got, "CROSS JOIN") || strings.Contains(got, "ON") {
		t.Errorf("Print = %q", got)
	}
}

func TestPrintNullAndBool(t *testing.T) {
	if got := PrintExpr(Null()); got != "NULL" {
		t.Errorf("NULL prints as %q", got)
	}
	if got := PrintExpr(&Literal{Kind: LitBool, Text: "true"}); got != "TRUE" {
		t.Errorf("bool prints as %q", got)
	}
}

func TestAndOrFold(t *testing.T) {
	if And() != nil {
		t.Error("And() should be nil")
	}
	a, b, c := Col("", "a"), Col("", "b"), Col("", "c")
	e := And(a, nil, b, c)
	bin, ok := e.(*Binary)
	if !ok || bin.Op != "AND" {
		t.Fatalf("And = %#v", e)
	}
	if PrintExpr(e) != "a AND b AND c" {
		t.Errorf("fold = %q", PrintExpr(e))
	}
	if PrintExpr(Or(a, b)) != "a OR b" {
		t.Errorf("or fold = %q", PrintExpr(Or(a, b)))
	}
	if Or(a) != Expr(a) {
		t.Error("single-arg Or should return the arg")
	}
}

func TestIsAggregate(t *testing.T) {
	for _, name := range []string{"COUNT", "count", "Avg", "SUM", "min", "MAX"} {
		if !IsAggregate(name) {
			t.Errorf("IsAggregate(%q) = false", name)
		}
	}
	for _, name := range []string{"abs", "ROUND", "fGetNearbyObjEq"} {
		if IsAggregate(name) {
			t.Errorf("IsAggregate(%q) = true", name)
		}
	}
}

func TestWalkVisitsAllNodes(t *testing.T) {
	s := &SelectStmt{
		With: []CTE{{Name: "c", Select: &SelectStmt{Items: []SelectItem{{Expr: Number("1")}}}}},
		Items: []SelectItem{
			{Expr: &FuncCall{Name: "COUNT", Star: true}},
			{Expr: &Case{Whens: []When{{Cond: Eq(Col("", "a"), Number("1")), Result: Str("x")}}, Else: Null()}},
		},
		From: []TableRef{&Join{
			Left:  &TableName{Name: "t"},
			Right: &SubqueryTable{Select: &SelectStmt{Items: []SelectItem{{Expr: Col("", "b")}}}, Alias: "s"},
			Type:  "INNER",
			On:    Eq(Col("t", "x"), Col("s", "b")),
		}},
		Where: &In{X: Col("", "a"), Sub: &SelectStmt{Items: []SelectItem{{Expr: Col("", "z")}}}},
	}
	counts := map[string]int{}
	Walk(s, func(n Node) bool {
		switch n.(type) {
		case *SelectStmt:
			counts["select"]++
		case *Join:
			counts["join"]++
		case *ColumnRef:
			counts["col"]++
		case *FuncCall:
			counts["func"]++
		case *Case:
			counts["case"]++
		}
		return true
	})
	if counts["select"] != 4 {
		t.Errorf("select visits = %d, want 4", counts["select"])
	}
	if counts["join"] != 1 || counts["func"] != 1 || counts["case"] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if counts["col"] < 5 {
		t.Errorf("col visits = %d, want >= 5", counts["col"])
	}
}

func TestWalkStopsDescent(t *testing.T) {
	s := &SelectStmt{
		Items: []SelectItem{{Expr: Col("", "a")}},
		From:  []TableRef{&SubqueryTable{Select: &SelectStmt{Items: []SelectItem{{Expr: Col("", "b")}}}, Alias: "s"}},
	}
	var cols int
	Walk(s, func(n Node) bool {
		if _, ok := n.(*SubqueryTable); ok {
			return false // don't descend into the derived table
		}
		if _, ok := n.(*ColumnRef); ok {
			cols++
		}
		return true
	})
	if cols != 1 {
		t.Errorf("cols = %d, want 1 (descent should have stopped)", cols)
	}
}

func TestSubqueries(t *testing.T) {
	inner := &SelectStmt{Items: []SelectItem{{Expr: Col("", "b")}}}
	s := &SelectStmt{
		With:  []CTE{{Name: "c", Select: &SelectStmt{Items: []SelectItem{{Expr: Number("1")}}}}},
		Items: []SelectItem{{Expr: &Subquery{Select: inner}}},
		From:  []TableRef{&TableName{Name: "t"}},
		Where: &Exists{Sub: &SelectStmt{Items: []SelectItem{{Expr: Number("1")}}}},
		SetOp: &SetOp{Op: "UNION", Right: &SelectStmt{Items: []SelectItem{{Expr: Col("", "z")}}}},
	}
	subs := Subqueries(s)
	if len(subs) != 4 {
		t.Errorf("Subqueries = %d, want 4 (cte, scalar, exists, union right)", len(subs))
	}
}

func TestCloneStmtAllKinds(t *testing.T) {
	n := 3
	stmts := []Stmt{
		&SelectStmt{Items: []SelectItem{{Expr: Col("", "a")}}, From: []TableRef{&TableName{Name: "t"}}, Top: &n},
		&CreateTableStmt{Name: "t", Cols: []ColumnDef{{Name: "a", Type: "INT"}}},
		&CreateTableStmt{Name: "t", AsSelect: &SelectStmt{Items: []SelectItem{{Expr: Number("1")}}}},
		&CreateViewStmt{Name: "v", Select: &SelectStmt{Items: []SelectItem{{Expr: Number("1")}}}},
		&InsertStmt{Table: "t", Columns: []string{"a"}, Rows: [][]Expr{{Number("1")}}},
		&UpdateStmt{Table: "t", Set: []Assignment{{Column: "a", Value: Number("1")}}, Where: Eq(Col("", "b"), Number("2"))},
		&DeleteStmt{Table: "t", Where: Eq(Col("", "a"), Number("1"))},
		&DeclareStmt{Name: "@x", Type: "INT", Init: Number("0")},
		&SetVarStmt{Name: "@x", Value: Number("1")},
		&ExecStmt{Proc: "sp", Args: []Expr{Number("1")}},
		&DropStmt{Kind: "TABLE", Name: "t"},
		&WaitforStmt{Delay: "00:00:01"},
	}
	for _, s := range stmts {
		before := Print(s)
		c := CloneStmt(s)
		if Print(c) != before {
			t.Errorf("clone of %T prints differently: %q vs %q", s, Print(c), before)
		}
	}
}

func TestCloneNils(t *testing.T) {
	if CloneStmt(nil) != nil {
		t.Error("CloneStmt(nil) != nil")
	}
	if CloneExpr(nil) != nil {
		t.Error("CloneExpr(nil) != nil")
	}
	if CloneSelect(nil) != nil {
		t.Error("CloneSelect(nil) != nil")
	}
}

func TestRandSelectDeterministic(t *testing.T) {
	a := Print(RandSelect(rand.New(rand.NewSource(7)), RandConfig{}))
	b := Print(RandSelect(rand.New(rand.NewSource(7)), RandConfig{}))
	if a != b {
		t.Errorf("same seed produced different ASTs:\n%s\n%s", a, b)
	}
	c := Print(RandSelect(rand.New(rand.NewSource(8)), RandConfig{}))
	if a == c {
		t.Log("different seeds produced equal ASTs (possible but unlikely)")
	}
}

func TestPrintExecAndInsert(t *testing.T) {
	got := Print(&ExecStmt{Proc: "dbo.sp", Args: []Expr{Number("1"), Number("2")}})
	if got != "EXEC dbo.sp 1 , 2" {
		t.Errorf("exec prints as %q", got)
	}
	ins := &InsertStmt{Table: "t", Select: &SelectStmt{Items: []SelectItem{{Expr: Col("", "a")}}, From: []TableRef{&TableName{Name: "u"}}}}
	if got := Print(ins); got != "INSERT INTO t SELECT a FROM u" {
		t.Errorf("insert-select prints as %q", got)
	}
}
